#!/usr/bin/env bash
# Tier-1 verification: static analysis (dfv-lint + strict warnings), then
# configure + build + full ctest, then rebuild the concurrency-sensitive
# targets under ThreadSanitizer and run the exec pool and campaign
# determinism tests with real data races fatal.
#
#   scripts/tier1.sh            # full run
#   DFV_SKIP_TSAN=1 scripts/tier1.sh   # skip the TSan stage
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -G Ninja
cmake --build build -j

# Fail-fast lint stage: the tree must be dfv-lint clean (zero violations,
# no dead suppressions) before anything heavier runs.
echo "=== dfv-lint ==="
./build/tools/lint/dfv-lint --root .
echo "dfv-lint: clean"

# Strict-warning stage: src/common, src/mon, src/ml and every public
# common/ml header (self-containment TUs) must compile warning-free under
# the curated -Werror set (see DFV_STRICT in CMakeLists.txt).
echo "=== strict warnings (DFV_STRICT) ==="
cmake --preset lint >/dev/null
cmake --build --preset lint -j
echo "strict build: clean"

(cd build && ctest --output-on-failure -j)

# Benchmark smoke run: the perf binaries must build and execute (one
# iteration each), so perf-path regressions that only compile under the
# bench target cannot slip through tier-1. Numbers from this run are
# meaningless; scripts/bench.sh produces the real trajectory.
./build/bench/micro_benchmarks \
  --benchmark_filter='BM_RfeCv|BM_GbrFit$|BM_GbrFitBinned|BM_TreeFitNode|BM_AttentionFit|BM_BuildWindows|BM_ForecastGrid' \
  --benchmark_min_time=0.01 >/dev/null
# Compiled-inference smoke (BM_ForecastOne is excluded: it would build a
# second campaign; the serve smoke below covers that path end to end).
./build/bench/micro_benchmarks \
  --benchmark_filter='BM_GbrPredict|BM_AttentionPredict' \
  --benchmark_min_time=0.01 >/dev/null
# Serving smoke: the sharded server must start, answer real loopback
# traffic on both hot paths, and drain cleanly (short window; the real
# QPS/latency trajectory comes from scripts/bench.sh serve).
./build/bench/bench_serve --shards 4 --clients 4 --seconds 0.3 >/dev/null
# Out-of-core store smoke: generate a small longitudinal store, train
# off the mmap'd codes, and require GBR bit-identity with the in-RAM
# path (bench_store aborts on divergence). Real numbers come from
# scripts/bench.sh store.
./build/bench/bench_store --runs 20000 --campaign-days 3 >/dev/null
echo "bench smoke: OK"

if [[ "${DFV_SKIP_TSAN:-0}" != "1" ]]; then
  echo "=== ThreadSanitizer pass (exec, campaign, faults, cache, store, gbr, rfe, attention, compiled, forecast, api, serve) ==="
  cmake --preset tsan
  cmake --build build-tsan -j --target test_exec test_campaign test_faults \
    test_cache_integrity test_store test_gbr test_rfe test_attention \
    test_compiled test_forecast test_api test_serve test_serve_chaos
  # TSan needs real concurrency to observe races; force an oversubscribed
  # pool so worker interleavings actually happen even on small machines.
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_exec
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_campaign
  # Faulted-campaign determinism (parallel injection + repair) and the
  # corrupt-cache detect/evict/regenerate path, also race-checked.
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_faults
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_cache_integrity
  # The column store pairs one live appender with concurrent snapshot
  # pins (the snapshot-under-append test); race-checked end to end.
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_store
  # Tree node scans, binning, and the boosting update are parallel; the
  # GBR/RFE suites race-check them end to end.
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_gbr
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_rfe
  # The attention fast path runs slab-parallel minibatches and the
  # forecast grid nests cell/fold tasks over the shared window cache;
  # both are race-checked, including the 1/2/8-thread identity sweeps.
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_attention
  # Compiled inference fans predict_many chunks across the pool and flips
  # the route toggle concurrently with readers; race-checked with the
  # 1/2/8-thread bit-identity sweeps.
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_compiled
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_forecast
  # The serve stack is the one place shard threads, the acceptor, and
  # client threads share state (mailboxes, wake pipes, shutdown flags);
  # the session/wire layer underneath is race-checked with it.
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_api
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_serve
  # Chaos stage: the retrying client against a fault-injecting proxy plus
  # overload/deadline/eviction/drain edge paths — the harshest scheduler
  # pressure the serve stack sees, so it runs race-checked too.
  echo "=== chaos stage (test_serve_chaos under TSan) ==="
  DFV_THREADS=4 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_serve_chaos
fi

echo "tier-1: OK"
