#!/usr/bin/env bash
# Run dfv-lint over the tree and print per-rule violation counts.
#
#   scripts/lint.sh              # lint src/ tools/ tests/ bench/
#   scripts/lint.sh src/ml       # lint a subtree
#
# Exit code: 0 clean, 1 violations found. Builds the linter first if the
# build tree is missing or stale (cheap: two TUs).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ! -d build ]]; then
  cmake -B build -S . -G Ninja >/dev/null
fi
cmake --build build --target dfv_lint >/dev/null

LINT=build/tools/lint/dfv-lint
rc=0
"$LINT" --root . "$@" || rc=$?

echo
echo "=== per-rule counts ==="
"$LINT" --root . --counts "$@" | awk -F'\t' '{printf "  %-16s %s\n", $2, $3}' || true
exit "$rc"
