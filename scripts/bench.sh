#!/usr/bin/env bash
# Perf trajectory runners. Four modes:
#
#   scripts/bench.sh [ml]        # model-training microbenchmarks  -> BENCH_ml.json
#   scripts/bench.sh ml-predict  # compiled-inference benchmarks   -> BENCH_ml.json
#   scripts/bench.sh serve       # dfv serve load generator        -> BENCH_serve.json
#   scripts/bench.sh store       # out-of-core column store        -> BENCH_store.json
#
#   DFV_BENCH_MIN_TIME=1.0 scripts/bench.sh        # longer per-bench min time (ml*)
#   DFV_BENCH_SECONDS=5 scripts/bench.sh serve     # longer per-phase window (serve)
#   DFV_BENCH_STORE_RUNS=100000 scripts/bench.sh store   # smaller longitudinal store
#
# Measurements come from the Release preset (build-release/) so the
# committed numbers reflect optimized code, and the context block records
# the git SHA, compiler, and project build type they were taken under.
#
# Both JSON files keep two snapshots: "baseline" (frozen numbers from
# before the corresponding fast path landed; a metric name with no
# recorded baseline is initialized from its first run) and "current"
# (refreshed every run), so speedups are always readable from the
# committed file.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-ml}"
BUILD="${BUILD:-build-release}"

if [[ "$BUILD" == "build-release" ]]; then
  cmake --preset release >/dev/null
else
  cmake -B "$BUILD" -S . -G Ninja >/dev/null
fi

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")
compiler_path=$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' "$BUILD/CMakeCache.txt")
compiler="$("$compiler_path" --version 2>/dev/null | head -n1 || echo unknown)"
git_sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# Merge a {name: value} "current" snapshot into $2, preserving baselines.
# stdin: raw JSON; argv: raw_path out_path schema note higher_is_better_regex
merge_snapshot() {
  python3 - "$raw" "$@" "$build_type" "$compiler" "$git_sha" "$(nproc)" <<'PY'
import json, re, sys

raw_path, out_path, schema, note, higher_re, build_type, compiler, git_sha, cpus = (
    sys.argv[1:10])
with open(raw_path) as f:
    current = json.load(f)

try:
    with open(out_path) as f:
        doc = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    doc = {}

doc.setdefault("schema", schema)
doc["note"] = note
baseline = doc.setdefault("baseline", {})
for name, v in current.items():
    baseline.setdefault(name, v if isinstance(v, dict) else v)
# Per-key merge, not replacement: modes that share one file (ml and
# ml-predict both land in BENCH_ml.json) must not wipe each other's
# latest numbers.
doc.setdefault("current", {}).update(current)
doc["context"] = {
    "host_cpus": int(cpus),
    "build_type": build_type or "unknown",
    "compiler": compiler,
    "git_sha": git_sha,
}

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")

def scalar(v):
    return list(v.values())[0] if isinstance(v, dict) else v

for name, v in sorted(current.items()):
    base = baseline.get(name)
    line = f"{name}: {scalar(v)}"
    if base is not None and scalar(base):
        ratio = scalar(v) / scalar(base)
        if not re.search(higher_re, name):
            ratio = 1.0 / ratio if ratio else 0.0
        line += f"  ({ratio:.2f}x vs baseline)"
    print(line)
PY
}

case "$MODE" in
  ml)
    FILTER='BM_RfeCv|BM_GbrFit$|BM_GbrFitBinned|BM_TreeFitNode|BM_AttentionFit|BM_BuildWindows|BM_ForecastGrid'
    cmake --build "$BUILD" -j --target micro_benchmarks >/dev/null
    gbench=$(mktemp)
    "./$BUILD/bench/micro_benchmarks" \
      --benchmark_filter="$FILTER" \
      --benchmark_min_time="${DFV_BENCH_MIN_TIME:-0.3}" \
      --benchmark_format=json >"$gbench" 2>/dev/null
    python3 - "$gbench" >"$raw" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    raw = json.load(f)
print(json.dumps({
    b["name"]: {"real_time_ms": round(b["real_time"], 3)}
    for b in raw["benchmarks"] if b["time_unit"] == "ms"
}))
PY
    rm -f "$gbench"
    merge_snapshot BENCH_ml.json dfv-bench-ml-v1 \
      "baseline = pre-fast-path numbers per benchmark; current = last scripts/bench.sh run" \
      '_items_per_sec$'
    echo "wrote BENCH_ml.json"
    ;;
  ml-predict)
    # Compiled-inference benches (ml/compiled.{hpp,cpp}); all run in
    # microseconds, and the batch benches also report predictions/sec as
    # separate _items_per_sec metrics (kept as their own top-level names
    # so the one-value-per-metric snapshot schema stays intact).
    FILTER='BM_GbrPredict|BM_AttentionPredict|BM_ForecastOne'
    cmake --build "$BUILD" -j --target micro_benchmarks >/dev/null
    gbench=$(mktemp)
    "./$BUILD/bench/micro_benchmarks" \
      --benchmark_filter="$FILTER" \
      --benchmark_min_time="${DFV_BENCH_MIN_TIME:-0.3}" \
      --benchmark_format=json >"$gbench" 2>/dev/null
    python3 - "$gbench" >"$raw" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    raw = json.load(f)
out = {}
for b in raw["benchmarks"]:
    if b["time_unit"] != "us":
        continue
    out[b["name"]] = {"real_time_us": round(b["real_time"], 3)}
    if "items_per_second" in b:
        out[b["name"] + "_items_per_sec"] = round(b["items_per_second"])
print(json.dumps(out))
PY
    rm -f "$gbench"
    merge_snapshot BENCH_ml.json dfv-bench-ml-v1 \
      "baseline = pre-fast-path numbers per benchmark; current = last scripts/bench.sh run" \
      '_items_per_sec$'
    echo "wrote BENCH_ml.json"
    ;;
  serve)
    cmake --build "$BUILD" -j --target bench_serve >/dev/null
    "./$BUILD/bench/bench_serve" \
      --shards "${DFV_BENCH_SHARDS:-8}" \
      --clients "${DFV_BENCH_CLIENTS:-16}" \
      --seconds "${DFV_BENCH_SECONDS:-3}" \
      --json "$raw"
    merge_snapshot BENCH_serve.json dfv-bench-serve-v1 \
      "8-shard dfv serve over loopback TCP; qps higher is better, latency lower; current = last scripts/bench.sh serve run" \
      '_qps$|^shards$|^clients$|_requests$'
    echo "wrote BENCH_serve.json"
    ;;
  store)
    cmake --build "$BUILD" -j --target bench_store >/dev/null
    "./$BUILD/bench/bench_store" \
      --runs "${DFV_BENCH_STORE_RUNS:-1000000}" \
      --campaign-days "${DFV_BENCH_STORE_DAYS:-120}" \
      --json "$raw"
    merge_snapshot BENCH_store.json dfv-bench-store-v1 \
      "out-of-core column store vs in-RAM: append throughput, cold-open latency, OOC training time + peak RSS; current = last scripts/bench.sh store run" \
      '_per_sec$|_speedup$|_identical$|^runs$|^features$|^campaign_runs$|^rss_reset_ok$'
    echo "wrote BENCH_store.json"
    ;;
  *)
    echo "usage: scripts/bench.sh [ml|ml-predict|serve|store]" >&2
    exit 2
    ;;
esac
