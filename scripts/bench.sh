#!/usr/bin/env bash
# ML perf trajectory: run the model-training microbenchmarks and refresh
# BENCH_ml.json at the repo root.
#
#   scripts/bench.sh                     # build + run, update "current"
#   DFV_BENCH_MIN_TIME=1.0 scripts/bench.sh   # longer per-bench min time
#
# Measurements come from the Release preset (build-release/) so the
# committed numbers reflect optimized code, and the context block records
# the git SHA, compiler, and project build type they were taken under.
#
# BENCH_ml.json keeps two snapshots: "baseline" (frozen numbers from
# before the corresponding fast path landed; a benchmark name with no
# recorded baseline is initialized from its first run) and "current"
# (refreshed every run), so speedups are always readable from the
# committed file.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER='BM_RfeCv|BM_GbrFit$|BM_GbrFitBinned|BM_TreeFitNode|BM_AttentionFit|BM_BuildWindows|BM_ForecastGrid'
BUILD="${BUILD:-build-release}"

if [[ "$BUILD" == "build-release" ]]; then
  cmake --preset release >/dev/null
else
  cmake -B "$BUILD" -S . -G Ninja >/dev/null
fi
cmake --build "$BUILD" -j --target micro_benchmarks >/dev/null

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")
compiler_path=$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' "$BUILD/CMakeCache.txt")
compiler="$("$compiler_path" --version 2>/dev/null | head -n1 || echo unknown)"
git_sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
"./$BUILD/bench/micro_benchmarks" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time="${DFV_BENCH_MIN_TIME:-0.3}" \
  --benchmark_format=json >"$raw" 2>/dev/null

python3 - "$raw" BENCH_ml.json "$build_type" "$compiler" "$git_sha" <<'PY'
import json, sys

raw_path, out_path, build_type, compiler, git_sha = sys.argv[1:6]
with open(raw_path) as f:
    raw = json.load(f)

current = {
    b["name"]: {"real_time_ms": round(b["real_time"], 3)}
    for b in raw["benchmarks"]
    if b["time_unit"] == "ms"
}

try:
    with open(out_path) as f:
        doc = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    doc = {}

doc.setdefault("schema", "dfv-bench-ml-v1")
doc["note"] = (
    "baseline = pre-fast-path numbers per benchmark; current = last scripts/bench.sh run"
)
baseline = doc.setdefault("baseline", {})
for name, v in current.items():
    baseline.setdefault(name, dict(v))
doc["current"] = current
doc["context"] = {
    "host_cpus": raw["context"]["num_cpus"],
    "build_type": build_type or "unknown",
    "compiler": compiler,
    "git_sha": git_sha,
}

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")

for name, v in sorted(current.items()):
    base = baseline.get(name, {}).get("real_time_ms")
    speedup = f"  ({base / v['real_time_ms']:.2f}x vs baseline)" if base else ""
    print(f"{name}: {v['real_time_ms']} ms{speedup}")
PY
echo "wrote BENCH_ml.json"
