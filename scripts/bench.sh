#!/usr/bin/env bash
# ML perf trajectory: run the model-training microbenchmarks and refresh
# BENCH_ml.json at the repo root.
#
#   scripts/bench.sh                     # build + run, update "current"
#   DFV_BENCH_MIN_TIME=1.0 scripts/bench.sh   # longer per-bench min time
#
# BENCH_ml.json keeps two snapshots: "baseline" (frozen numbers from
# before the bin-once fast path landed; initialized to the first run on
# a machine that has no baseline yet) and "current" (refreshed every
# run), so speedups are always readable from the committed file.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER='BM_RfeCv|BM_GbrFit$|BM_GbrFitBinned|BM_TreeFitNode'
BUILD="${BUILD:-build}"

cmake -B "$BUILD" -S . -G Ninja >/dev/null
cmake --build "$BUILD" -j --target micro_benchmarks >/dev/null

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
"./$BUILD/bench/micro_benchmarks" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time="${DFV_BENCH_MIN_TIME:-0.3}" \
  --benchmark_format=json >"$raw" 2>/dev/null

python3 - "$raw" BENCH_ml.json <<'PY'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

current = {
    b["name"]: {"real_time_ms": round(b["real_time"], 3)}
    for b in raw["benchmarks"]
    if b["time_unit"] == "ms"
}

try:
    with open(out_path) as f:
        doc = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    doc = {}

doc.setdefault("schema", "dfv-bench-ml-v1")
doc.setdefault(
    "note",
    "baseline = pre-BinnedDataset fast path; current = last scripts/bench.sh run",
)
doc.setdefault("baseline", current)
doc["current"] = current
doc["context"] = {
    "host_cpus": raw["context"]["num_cpus"],
    "build_type": raw["context"].get("library_build_type", "unknown"),
}

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")

for name, v in sorted(current.items()):
    base = doc["baseline"].get(name, {}).get("real_time_ms")
    speedup = f"  ({base / v['real_time_ms']:.2f}x vs baseline)" if base else ""
    print(f"{name}: {v['real_time_ms']} ms{speedup}")
PY
echo "wrote BENCH_ml.json"
