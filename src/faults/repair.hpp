// Repair of degraded telemetry: anomaly detection (non-finite cells,
// spikes, negative wrapped deltas, truncated runs), exact 2^32 wraparound
// unwinding, and gap imputation by linear interpolation over usable
// neighbor steps. Pure and deterministic — no RNG — so repair commutes
// with any parallel schedule.
#pragma once

#include <span>

#include "faults/inject.hpp"

namespace dfv::faults {

struct RepairOptions {
  /// |value| above this is garbage: no real per-step counter delta gets
  /// anywhere near it (Cori-scale deltas top out around 1e10-1e12).
  double spike_threshold = 1e15;
  /// A run with more than this fraction of bad steps is beyond repair and
  /// is dropped instead of imputed.
  double max_bad_fraction = 0.5;
};

/// Per-run repair/scan tally.
struct RunRepairStats {
  int steps = 0;
  int bad_steps = 0;      ///< steps flagged Dropped or Corrupt
  int imputed_steps = 0;  ///< bad steps reconstructed (Repair policy)
  int wrapped_cells = 0;  ///< negative deltas unwound (or flagged, Drop)
  int corrupt_cells = 0;  ///< non-finite / spike cells detected
  bool truncated = false; ///< run shorter than the dataset's step count
  bool dropped = false;   ///< run must be removed by the caller
  bool profile_missing = false;

  [[nodiscard]] bool any_anomaly() const noexcept {
    return bad_steps > 0 || wrapped_cells > 0 || corrupt_cells > 0 || truncated ||
           profile_missing;
  }
};

/// Impute non-usable entries of `values` in place: entries with
/// `bad[i] != 0` are replaced by linear interpolation between the nearest
/// good neighbors (nearest-fill at the edges). A series with no good
/// entry at all is left untouched. Exposed for tests.
void impute_linear(std::span<double> values, std::span<const std::uint8_t> bad);

/// Detect and (per policy) fix anomalies in one run:
///  Strict — scan and tally only; the caller throws if any_anomaly().
///  Repair — unwind wraps exactly, normalize corrupt cells to NaN, impute
///           every bad step, mark kQualityImputed; sets `dropped` when the
///           run is truncated or damage exceeds max_bad_fraction.
///  Drop   — flag anomalous steps kQualityCorrupt (consumers skip them);
///           sets `dropped` for truncated / mostly-damaged runs.
///  Keep   — no-op.
/// `expected_steps` is the dataset's nominal step count; shorter runs are
/// treated as truncated.
[[nodiscard]] RunRepairStats repair_run(RunTelemetry run, RepairPolicy policy, const RepairOptions& opt,
                          int expected_steps);

}  // namespace dfv::faults
