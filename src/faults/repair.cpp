#include "faults/repair.hpp"

#include <cmath>
#include <limits>
#include <vector>

namespace dfv::faults {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool garbage(double v, double spike_threshold) {
  return !std::isfinite(v) || std::fabs(v) > spike_threshold;
}

/// Impute one strided series (e.g. counter c across steps) through a
/// gather/impute/scatter round trip keyed on non-finiteness.
template <typename Get, typename Set>
void impute_series(std::size_t n, Get get, Set set) {
  std::vector<double> tmp(n);
  std::vector<std::uint8_t> bad(n);
  bool any_bad = false;
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = get(i);
    bad[i] = std::isfinite(tmp[i]) ? 0 : 1;
    any_bad |= bad[i] != 0;
  }
  if (!any_bad) return;
  impute_linear(tmp, bad);
  for (std::size_t i = 0; i < n; ++i)
    if (bad[i]) set(i, tmp[i]);
}

}  // namespace

void impute_linear(std::span<double> values, std::span<const std::uint8_t> bad) {
  const std::size_t n = values.size();
  // prev_good[i] / next_good[i]: nearest good index at or before/after i.
  constexpr std::ptrdiff_t kNone = -1;
  std::vector<std::ptrdiff_t> prev_good(n, kNone), next_good(n, kNone);
  std::ptrdiff_t last = kNone;
  for (std::size_t i = 0; i < n; ++i) {
    if (!bad[i]) last = std::ptrdiff_t(i);
    prev_good[i] = last;
  }
  last = kNone;
  for (std::size_t i = n; i-- > 0;) {
    if (!bad[i]) last = std::ptrdiff_t(i);
    next_good[i] = last;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!bad[i]) continue;
    const std::ptrdiff_t p = prev_good[i], q = next_good[i];
    if (p != kNone && q != kNone) {
      const double f = double(std::ptrdiff_t(i) - p) / double(q - p);
      values[i] = values[std::size_t(p)] + f * (values[std::size_t(q)] - values[std::size_t(p)]);
    } else if (p != kNone) {
      values[i] = values[std::size_t(p)];
    } else if (q != kNone) {
      values[i] = values[std::size_t(q)];
    }
    // else: no good entry anywhere; leave as-is (caller drops the run).
  }
}

RunRepairStats repair_run(RunTelemetry run, RepairPolicy policy, const RepairOptions& opt,
                          int expected_steps) {
  RunRepairStats stats;
  const std::size_t steps = run.step_times.size();
  stats.steps = int(steps);
  stats.profile_missing = run.profile_missing;
  if (policy == RepairPolicy::Keep || steps == 0) return stats;

  const bool quality_was_empty = run.step_quality.empty();
  if (run.step_quality.size() != steps) run.step_quality.assign(steps, kQualityOk);
  const bool fix = policy == RepairPolicy::Repair;
  const bool flag = policy != RepairPolicy::Strict;  // Repair or Drop mark quality

  if (expected_steps > 0 && int(steps) < expected_steps) {
    stats.truncated = true;
    // The lost tail cannot be reconstructed from in-run neighbors; both
    // Repair and Drop remove the run rather than invent data.
    if (flag) stats.dropped = true;
  }

  for (std::size_t t = 0; t < steps; ++t) {
    bool bad = (run.step_quality[t] & kQualityDropped) != 0;
    bool detected = false;

    if (garbage(run.step_times[t], opt.spike_threshold)) {
      stats.corrupt_cells += 1;
      detected = true;
      if (fix) run.step_times[t] = kNaN;
    }
    for (int c = 0; c < mon::kNumCounters; ++c) {
      double& v = run.step_counters[t][std::size_t(c)];
      if (std::isfinite(v) && v < 0.0 && v >= -kCounterWrap) {
        // Negative delta of a non-decreasing 32-bit counter: wraparound.
        stats.wrapped_cells += 1;
        if (fix) {
          // Exact recovery for integer counter readings (what hardware
          // produces); within 1 ulp of the wrap magnitude otherwise.
          v += kCounterWrap;
          run.step_quality[t] |= kQualityWrapped;
        } else {
          detected = true;  // Strict tallies; Drop discards the step
        }
      } else if (garbage(v, opt.spike_threshold) || v < 0.0) {
        stats.corrupt_cells += 1;
        detected = true;
        if (fix) v = kNaN;
      }
    }
    auto scan_ldms = [&](double& v) {
      if (garbage(v, opt.spike_threshold) || v < 0.0) {
        stats.corrupt_cells += 1;
        detected = true;
        if (fix) v = kNaN;
      }
    };
    for (double& v : run.step_ldms[t].io) scan_ldms(v);
    for (double& v : run.step_ldms[t].sys) scan_ldms(v);

    if (detected && flag) run.step_quality[t] |= kQualityCorrupt;
    if (bad || detected) stats.bad_steps += 1;
  }

  if (stats.bad_steps > 0 &&
      double(stats.bad_steps) > opt.max_bad_fraction * double(steps) && flag)
    stats.dropped = true;

  if (fix && !stats.dropped && stats.bad_steps > 0) {
    impute_series(
        steps, [&](std::size_t i) { return run.step_times[i]; },
        [&](std::size_t i, double v) { run.step_times[i] = v; });
    for (int c = 0; c < mon::kNumCounters; ++c)
      impute_series(
          steps, [&](std::size_t i) { return run.step_counters[i][std::size_t(c)]; },
          [&](std::size_t i, double v) { run.step_counters[i][std::size_t(c)] = v; });
    for (int k = 0; k < mon::kNumIoFeatures; ++k)
      impute_series(
          steps, [&](std::size_t i) { return run.step_ldms[i].io[std::size_t(k)]; },
          [&](std::size_t i, double v) { run.step_ldms[i].io[std::size_t(k)] = v; });
    for (int k = 0; k < mon::kNumSysFeatures; ++k)
      impute_series(
          steps, [&](std::size_t i) { return run.step_ldms[i].sys[std::size_t(k)]; },
          [&](std::size_t i, double v) { run.step_ldms[i].sys[std::size_t(k)] = v; });
    for (std::size_t t = 0; t < steps; ++t)
      if ((run.step_quality[t] & (kQualityDropped | kQualityCorrupt)) != 0) {
        run.step_quality[t] |= kQualityImputed;
        stats.imputed_steps += 1;
      }
  }

  // Pristine run: restore the empty-quality fast path so repair of clean
  // data is a true no-op.
  if (quality_was_empty && stats.bad_steps == 0 && stats.wrapped_cells == 0 &&
      stats.corrupt_cells == 0)
    run.step_quality.clear();
  return stats;
}

}  // namespace dfv::faults
