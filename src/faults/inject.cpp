#include "faults/inject.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dfv::faults {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

void blank_step_telemetry(RunTelemetry& run, std::size_t t) {
  run.step_counters[t].fill(kNaN);
  run.step_ldms[t].io.fill(kNaN);
  run.step_ldms[t].sys.fill(kNaN);
}

/// Corrupt one uniformly chosen cell of step `t` with one of three garbage
/// classes. Victim index: [0, 13) counter, [13, 21) LDMS feature, 21 the
/// step time itself.
void corrupt_cell(RunTelemetry& run, std::size_t t, Rng& rng, const FaultSpec& spec) {
  const std::uint64_t victim =
      rng.uniform_index(std::uint64_t(mon::kNumCounters + mon::kNumIoFeatures +
                                      mon::kNumSysFeatures + 1));
  const double u = rng.uniform();
  double garbage;
  if (u < 1.0 / 3.0)
    garbage = kNaN;
  else if (u < 2.0 / 3.0)
    garbage = std::numeric_limits<double>::infinity();
  else
    garbage = spec.spike_magnitude * (1.0 + rng.uniform());

  if (victim < std::uint64_t(mon::kNumCounters)) {
    run.step_counters[t][std::size_t(victim)] = garbage;
  } else if (victim < std::uint64_t(mon::kNumCounters + mon::kNumIoFeatures)) {
    run.step_ldms[t].io[std::size_t(victim - mon::kNumCounters)] = garbage;
  } else if (victim <
             std::uint64_t(mon::kNumCounters + mon::kNumIoFeatures + mon::kNumSysFeatures)) {
    run.step_ldms[t].sys[std::size_t(victim - mon::kNumCounters - mon::kNumIoFeatures)] =
        garbage;
  } else {
    run.step_times[t] = garbage;
  }
}

/// Wrap one eligible counter (non-negative, below 2^32 so the unwind is
/// unambiguous) of step `t`; skip silently when none qualifies.
bool wrap_cell(RunTelemetry& run, std::size_t t, Rng& rng) {
  int eligible[mon::kNumCounters];
  int n = 0;
  for (int c = 0; c < mon::kNumCounters; ++c) {
    const double v = run.step_counters[t][std::size_t(c)];
    if (std::isfinite(v) && v >= 0.0 && v < kCounterWrap) eligible[n++] = c;
  }
  if (n == 0) return false;
  const int c = eligible[rng.uniform_index(std::uint64_t(n))];
  run.step_counters[t][std::size_t(c)] -= kCounterWrap;
  return true;
}

}  // namespace

InjectStats inject_run(RunTelemetry run, const FaultSpec& spec, std::uint64_t run_seed) {
  InjectStats stats;
  if (!spec.enabled()) return stats;
  spec.validate();
  const std::size_t steps = run.step_times.size();
  DFV_CHECK_MSG(run.step_counters.size() == steps && run.step_ldms.size() == steps,
                "telemetry streams disagree on step count");
  Rng rng(run_seed);

  // Truncation first: the surviving prefix then takes per-step faults, so
  // the per-step RNG draws line up with the steps that actually exist.
  if (spec.has(FaultKind::Truncate) && rng.bernoulli(spec.rate) && steps > 1) {
    const double keep_frac = rng.uniform(spec.truncate_min_keep, 0.95);
    const std::size_t keep =
        std::clamp<std::size_t>(std::size_t(std::ceil(double(steps) * keep_frac)), 1,
                                steps - 1);
    stats.truncated_steps = int(steps - keep);
    run.step_times.resize(keep);
    run.step_counters.resize(keep);
    run.step_ldms.resize(keep);
  }
  const std::size_t kept = run.step_times.size();
  run.step_quality.assign(kept, kQualityOk);

  for (std::size_t t = 0; t < kept; ++t) {
    if (spec.has(FaultKind::Dropout) && rng.bernoulli(spec.rate)) {
      // A missed LDMS interval is an observable gap: flag it at injection.
      blank_step_telemetry(run, t);
      run.step_quality[t] |= kQualityDropped;
      stats.dropped_steps += 1;
      continue;  // nothing left in this step worth corrupting
    }
    if (spec.has(FaultKind::Corrupt) && rng.bernoulli(spec.rate)) {
      corrupt_cell(run, t, rng, spec);
      stats.corrupt_cells += 1;  // silent: repair must detect it
    }
    if (spec.has(FaultKind::Wraparound) && rng.bernoulli(spec.rate)) {
      if (wrap_cell(run, t, rng)) stats.wrapped_cells += 1;  // silent
    }
  }

  if (spec.has(FaultKind::MissingProfile) && rng.bernoulli(spec.rate)) {
    run.profile = mon::MpiProfile{};
    run.profile_missing = true;
    stats.profile_lost = true;
  }
  return stats;
}

}  // namespace dfv::faults
