#include "faults/faults.hpp"

#include <sstream>

#include "common/check.hpp"

namespace dfv::faults {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::Dropout: return "dropout";
    case FaultKind::Wraparound: return "wraparound";
    case FaultKind::Corrupt: return "corrupt";
    case FaultKind::Truncate: return "truncate";
    case FaultKind::MissingProfile: return "missing-profile";
  }
  return "?";
}

namespace {

constexpr FaultKind kAllKinds[] = {FaultKind::Dropout, FaultKind::Wraparound,
                                   FaultKind::Corrupt, FaultKind::Truncate,
                                   FaultKind::MissingProfile};

}  // namespace

std::uint8_t parse_fault_kinds(const std::string& list) {
  DFV_CHECK_MSG(!list.empty(), "fault kind list is empty (use 'all' or 'none')");
  if (list == "all") return kAllFaultKinds;
  if (list == "none") return 0;
  std::uint8_t mask = 0;
  std::istringstream is(list);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    bool known = false;
    for (FaultKind k : kAllKinds)
      if (tok == to_string(k)) {
        mask |= std::uint8_t(k);
        known = true;
      }
    DFV_CHECK_MSG(known, "unknown fault kind '"
                             << tok
                             << "' (known: dropout, wraparound, corrupt, truncate, "
                                "missing-profile, all, none)");
  }
  return mask;
}

std::string fault_kinds_to_string(std::uint8_t kinds) {
  if (kinds == kAllFaultKinds) return "all";
  if (kinds == 0) return "none";
  std::string out;
  for (FaultKind k : kAllKinds)
    if (kinds & std::uint8_t(k)) {
      if (!out.empty()) out += ',';
      out += to_string(k);
    }
  return out;
}

void FaultSpec::validate() const {
  DFV_CHECK_MSG(rate >= 0.0 && rate <= 1.0,
                "fault rate must be in [0, 1] (got " << rate << ")");
  DFV_CHECK_MSG((kinds & ~kAllFaultKinds) == 0,
                "fault kinds mask has unknown bits (got " << int(kinds) << ")");
  DFV_CHECK_MSG(spike_magnitude > 0.0,
                "spike_magnitude must be > 0 (got " << spike_magnitude << ")");
  DFV_CHECK_MSG(truncate_min_keep > 0.0 && truncate_min_keep <= 1.0,
                "truncate_min_keep must be in (0, 1] (got " << truncate_min_keep << ")");
}

const char* to_string(RepairPolicy p) noexcept {
  switch (p) {
    case RepairPolicy::Strict: return "strict";
    case RepairPolicy::Repair: return "repair";
    case RepairPolicy::Drop: return "drop";
    case RepairPolicy::Keep: return "keep";
  }
  return "?";
}

RepairPolicy parse_repair_policy(const std::string& name) {
  for (RepairPolicy p : {RepairPolicy::Strict, RepairPolicy::Repair, RepairPolicy::Drop,
                         RepairPolicy::Keep})
    if (name == to_string(p)) return p;
  DFV_CHECK_MSG(false, "unknown repair policy '" << name
                                                 << "' (strict | repair | drop | keep)");
  return RepairPolicy::Strict;  // unreachable
}

}  // namespace dfv::faults
