// Fault injection over one run's telemetry streams.
//
// Operates on a non-owning view of the monitoring data (all mon-layer
// types), so the sim layer can wrap its RunRecords without this library
// depending on dfv_sim. Every decision for a run comes from the single
// `run_seed` passed in; callers derive it with exec::substream_seed so
// injection is independent of thread count and iteration order.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/faults.hpp"
#include "mon/counters.hpp"
#include "mon/ldms.hpp"
#include "mon/mpip.hpp"

namespace dfv::faults {

/// 32-bit hardware counters wrap at 2^32; a wrapped per-step delta comes
/// back exactly this much too small.
inline constexpr double kCounterWrap = 4294967296.0;

/// Non-owning view of one run's telemetry (the fault surface).
struct RunTelemetry {
  std::vector<double>& step_times;
  std::vector<mon::CounterVec>& step_counters;
  std::vector<mon::LdmsFeatures>& step_ldms;
  std::vector<std::uint8_t>& step_quality;
  mon::MpiProfile& profile;
  bool& profile_missing;
};

/// Per-run injection tally (for logs/tests).
struct InjectStats {
  int dropped_steps = 0;
  int corrupt_cells = 0;
  int wrapped_cells = 0;
  int truncated_steps = 0;  ///< steps removed from the tail
  bool profile_lost = false;
};

/// Inject faults per `spec` into one run, drawing every decision from a
/// fresh Rng seeded with `run_seed`. Dropout marks steps kQualityDropped
/// (a stream gap is observable); wraparound and corruption are silent —
/// detecting them is the repair layer's job, as in production.
[[nodiscard]] InjectStats inject_run(RunTelemetry run, const FaultSpec& spec, std::uint64_t run_seed);

}  // namespace dfv::faults
