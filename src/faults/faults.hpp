// dfv::faults — seeded, deterministic telemetry fault injection and the
// degraded-data contract shared by every consumer of monitoring data.
//
// The paper's analysis chain hangs off three lossy production telemetry
// sources: LDMS counter streams (dropped one-second samples), AriesNCL/
// PAPI counter reads (32-bit hardware counters that wrap, garbage values
// under node failures), and mpiP/sacct logs (profiles missing when a job
// is killed). The synthetic campaign emits perfect data; this subsystem
// perturbs it with configurable fault models so the downstream pipeline
// (dataset CSV round-trip, deviation GBR, attention forecasting) can be
// exercised — and quantified — against realistic dirt instead of silently
// assuming clean, complete, finite inputs.
//
// Determinism contract: injection draws every random decision from a
// per-run RNG substream (`exec::substream_seed`), never from a shared
// generator, so a faulted campaign is bit-identical across thread counts
// exactly like a clean one.
#pragma once

#include <cstdint>
#include <string>

namespace dfv::faults {

// ---------------------------------------------------------------------------
// Per-step quality masks (carried in sim::RunRecord::step_quality).
// ---------------------------------------------------------------------------

/// Bitmask describing what happened to one step's telemetry. An empty
/// quality vector on a run means "all steps Ok" (the clean fast path).
enum : std::uint8_t {
  kQualityOk = 0,
  kQualityDropped = 1 << 0,    ///< LDMS/counter sample lost (gap in stream)
  kQualityCorrupt = 1 << 1,    ///< NaN/Inf/spike garbage detected in a cell
  kQualityWrapped = 1 << 2,    ///< 2^32 counter wraparound detected & unwound
  kQualityTruncated = 1 << 3,  ///< step lost to an early end of the run
  kQualityImputed = 1 << 4,    ///< values reconstructed by repair
};

/// A step is usable by the analyses when nothing bad happened to it, or
/// when repair reconstructed it. A wrapped-then-unwound counter is exact,
/// so kQualityWrapped alone does not disqualify a step.
[[nodiscard]] constexpr bool step_usable(std::uint8_t quality) noexcept {
  constexpr std::uint8_t bad = kQualityDropped | kQualityCorrupt | kQualityTruncated;
  return (quality & bad) == 0 || (quality & kQualityImputed) != 0;
}

// ---------------------------------------------------------------------------
// Fault kinds and the injection spec.
// ---------------------------------------------------------------------------

/// What each kind models on a Cori-like production system:
///  Dropout        — LDMS misses a sampling interval; the step's counter and
///                   io/sys aggregates are simply absent (NaN).
///  Wraparound     — a 32-bit Aries counter wraps between reads; the delta
///                   comes back 2^32 too small (negative).
///  Corrupt        — garbage from a flaky node: NaN, Inf, or an absurd spike
///                   in one telemetry cell (counter, LDMS feature, or the
///                   step time itself).
///  Truncate       — the run dies early; the tail steps never get recorded.
///  MissingProfile — mpiP output lost (job killed before MPI_Finalize).
enum class FaultKind : std::uint8_t {
  Dropout = 1 << 0,
  Wraparound = 1 << 1,
  Corrupt = 1 << 2,
  Truncate = 1 << 3,
  MissingProfile = 1 << 4,
};

inline constexpr std::uint8_t kAllFaultKinds = 0x1f;

[[nodiscard]] const char* to_string(FaultKind k) noexcept;

/// Parse a comma-separated kind list ("dropout,wraparound", "all").
/// Throws ContractError on an empty list or an unknown kind name.
[[nodiscard]] std::uint8_t parse_fault_kinds(const std::string& list);
[[nodiscard]] std::string fault_kinds_to_string(std::uint8_t kinds);

/// Configuration of the injection layer. Part of CampaignConfig, so every
/// field participates in config_fingerprint(): clean and faulted caches
/// can never collide.
struct FaultSpec {
  /// Base probability of each fault event (per step for Dropout/Corrupt/
  /// Wraparound, per run for Truncate/MissingProfile). 0 disables.
  double rate = 0.0;
  /// Fault stream seed, hashed with the campaign seed and the per-run
  /// substream index; two campaigns differing only here get different
  /// fault placements on identical underlying data.
  std::uint64_t seed = 0xfa17;
  /// Bitwise-or of FaultKind values to enable.
  std::uint8_t kinds = kAllFaultKinds;
  /// Magnitude of injected spike garbage (well above any real counter).
  double spike_magnitude = 1e17;
  /// Truncation keeps at least this fraction of a run's steps.
  double truncate_min_keep = 0.5;

  [[nodiscard]] bool enabled() const noexcept { return rate > 0.0 && kinds != 0; }
  [[nodiscard]] bool has(FaultKind k) const noexcept {
    return (kinds & std::uint8_t(k)) != 0;
  }

  /// DFV_CHECK: rate in [0,1], kinds within the known set, positive spike
  /// magnitude, truncate_min_keep in (0,1].
  void validate() const;
};

// ---------------------------------------------------------------------------
// Degraded-data policy threaded through the pipeline.
// ---------------------------------------------------------------------------

/// What to do with degraded telemetry:
///  Strict — refuse: throw ContractError on any anomaly (clean data passes).
///  Repair — unwind wraparound exactly, impute dropped/corrupt cells by
///           linear interpolation over usable neighbor steps, drop only
///           runs beyond repair (truncated or mostly damaged).
///  Drop   — excise: flag every anomalous step unusable (consumers skip
///           it), drop truncated and mostly-damaged runs. No imputation.
///  Keep   — parse/flag nothing; raw pass-through (cache-internal).
enum class RepairPolicy : int { Strict = 0, Repair, Drop, Keep };

[[nodiscard]] const char* to_string(RepairPolicy p) noexcept;
/// Parse "strict" | "repair" | "drop" | "keep"; throws ContractError.
[[nodiscard]] RepairPolicy parse_repair_policy(const std::string& name);

}  // namespace dfv::faults
