// MILC (su3_rmd): lattice QCD, 4-D stencil on a 4x4x4x4 per-rank grid.
//
// Characterization targets (§III-B, Figs. 3-4): 80 time steps of which
// the first 20 are fast "warmup" trajectories; ~89% of time in MPI;
// large point-to-point messages; dominant routines Allreduce, Wait,
// Isend, Irecv. Deviation driver (Fig. 9): router-tile transit stalls
// (RT_RB_STL) — MILC is bandwidth-bound, so congestion on the links its
// large messages traverse (including I/O traffic) hurts it most.
#include <cmath>

#include "apps/app_model.hpp"
#include "apps/comm_patterns.hpp"
#include "common/check.hpp"

namespace dfv::apps {

namespace {

inline constexpr int kWarmupSteps = 20;

class MilcModel final : public AppModel {
 public:
  explicit MilcModel(int nodes, int time_steps = 80) {
    DFV_CHECK_MSG(nodes == 128 || nodes == 512, "MILC datasets use 128 or 512 nodes");
    DFV_CHECK(time_steps > kWarmupSteps);
    info_.name = "MILC";
    info_.version = "7.8.0";
    info_.nodes = nodes;
    info_.input_params = nodes == 128 ? "n128 large.in" : "n512 large.in";
    info_.time_steps = time_steps;
    if (nodes == 128) {
      compute_s_ = 0.70;
      p2p_base_s_ = 4.6;
      coll_base_s_ = 1.6;
    } else {
      compute_s_ = 0.75;
      p2p_base_s_ = 5.2;
      coll_base_s_ = 1.8;
    }
    coeffs_ = {/*pt=*/0.2, /*rt=*/0.85, /*coll=*/0.6};
    dims_ = factor4(nodes);
  }

  [[nodiscard]] const AppInfo& info() const override { return info_; }
  [[nodiscard]] const AppCoefficients& coefficients() const override { return coeffs_; }

  [[nodiscard]] StepSpec step(int step_idx, const sched::Placement& placement,
                              const net::Topology& topo, Rng& rng) const override {
    DFV_CHECK(step_idx >= 0 && step_idx < info_.time_steps);
    // Warmup trajectories run ~3.5x faster than production steps (Fig. 3
    // middle), with a short ramp into the steady regime.
    double shape;
    if (step_idx < kWarmupSteps) {
      shape = 0.28;
    } else {
      const double ramp = std::min(1.0, double(step_idx - kWarmupSteps + 1) / 3.0);
      shape = 0.28 + (1.0 - 0.28) * ramp;
    }

    StepSpec s;
    s.compute_s = compute_s_ * shape * (1.0 + 0.015 * rng.normal());

    // CG solves: large 4-D halo exchanges every iteration; we aggregate
    // the step's exchanges into one phase with the step's full volume.
    PhaseSpec p2p;
    p2p.kind = PhaseSpec::Kind::PointToPoint;
    p2p.base_seconds = p2p_base_s_ * shape;
    p2p.demands = stencil4d(placement, topo, dims_, 60.0e6 * shape);
    p2p.attribution = {{mon::MpiRoutine::Wait, 0.50},
                       {mon::MpiRoutine::Isend, 0.22},
                       {mon::MpiRoutine::Irecv, 0.20},
                       {mon::MpiRoutine::Other, 0.08}};
    s.phases.push_back(std::move(p2p));

    // CG residual reductions: many small allreduces per trajectory.
    PhaseSpec coll;
    coll.kind = PhaseSpec::Kind::Allreduce;
    coll.base_seconds = coll_base_s_ * shape;
    coll.rounds = 60;
    coll.bytes = 64;
    coll.attribution = {{mon::MpiRoutine::Allreduce, 1.0}};
    s.phases.push_back(std::move(coll));
    return s;
  }

 private:
  AppInfo info_;
  AppCoefficients coeffs_;
  std::array<int, 4> dims_{};
  double compute_s_ = 0.0, p2p_base_s_ = 0.0, coll_base_s_ = 0.0;
};

}  // namespace

std::unique_ptr<AppModel> make_milc(int nodes) { return std::make_unique<MilcModel>(nodes); }

std::unique_ptr<AppModel> make_milc_long(int nodes, int time_steps) {
  return std::make_unique<MilcModel>(nodes, time_steps);
}

}  // namespace dfv::apps
