// Helpers for building router-level traffic from logical node
// communication patterns (stencils, irregular graph exchange).
#pragma once

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "net/traffic.hpp"
#include "sched/placement.hpp"

namespace dfv::apps {

/// Factor n into a near-cubic 3-D grid (a*b*c == n, a >= b >= c).
[[nodiscard]] std::array<int, 3> factor3(int n);
/// Factor n into a near-hypercubic 4-D grid.
[[nodiscard]] std::array<int, 4> factor4(int n);

/// Accumulates node-pair traffic and merges it into router-level demands
/// (ranks on the same router exchange through shared memory / the local
/// router and produce no network demand).
class DemandBuilder {
 public:
  DemandBuilder(const sched::Placement& placement, const net::Topology& topo)
      : placement_(&placement), topo_(&topo) {}

  /// Add `bytes` from the node at placement rank-index `a` to index `b`.
  void add(int a, int b, double bytes);

  /// Merge duplicates and return the demand list.
  [[nodiscard]] std::vector<net::Demand> build();

 private:
  const sched::Placement* placement_;
  const net::Topology* topo_;
  std::vector<std::pair<std::uint64_t, double>> edges_;
};

/// 3-D halo exchange over the placement's nodes arranged in `dims`
/// (placement order = lexicographic grid order): each node sends
/// `bytes_per_face` to each of its (up to 6) neighbors.
[[nodiscard]] std::vector<net::Demand> stencil3d(const sched::Placement& placement,
                                                 const net::Topology& topo,
                                                 const std::array<int, 3>& dims,
                                                 double bytes_per_face);

/// 4-D halo exchange (MILC's pattern), 8 neighbors per node.
[[nodiscard]] std::vector<net::Demand> stencil4d(const sched::Placement& placement,
                                                 const net::Topology& topo,
                                                 const std::array<int, 4>& dims,
                                                 double bytes_per_face);

/// Irregular graph exchange (miniVite): each node exchanges with
/// `peers_per_node` random peers; per-pair volume is lognormal with the
/// given sigma, scaled so the expected total equals `total_bytes`.
[[nodiscard]] std::vector<net::Demand> irregular_exchange(
    const sched::Placement& placement, const net::Topology& topo, int peers_per_node,
    double total_bytes, double lognormal_sigma, Rng& rng);

}  // namespace dfv::apps
