#include "apps/registry.hpp"

#include "common/check.hpp"

namespace dfv::apps {

const std::vector<DatasetSpec>& paper_datasets() {
  static const std::vector<DatasetSpec> kDatasets = {
      {"AMG", 128}, {"AMG", 512},      {"MILC", 128},
      {"MILC", 512}, {"miniVite", 128}, {"UMT", 128},
  };
  return kDatasets;
}

std::unique_ptr<AppModel> make_app(const std::string& name, int nodes) {
  if (name == "AMG") return make_amg(nodes);
  if (name == "MILC") return make_milc(nodes);
  if (name == "miniVite") return make_minivite(nodes);
  if (name == "UMT") return make_umt(nodes);
  DFV_CHECK_MSG(false, "unknown application '" << name << "'");
  return nullptr;  // unreachable
}

std::vector<AppInfo> table1_rows() {
  std::vector<AppInfo> rows;
  for (const auto& d : paper_datasets()) rows.push_back(make_app(d.app, d.nodes)->info());
  return rows;
}

}  // namespace dfv::apps
