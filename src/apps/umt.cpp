// UMT: discrete-ordinates (Sn) deterministic radiation transport over a
// 3-D unstructured mesh (custom_8k.cmg 4 2 4 4 4 0.04 input).
//
// Characterization targets (§III-B, Fig. 5): only ~30% of time in MPI —
// the smallest communication fraction of the four codes — yet among the
// highest variability (slowest run 3.3x the best); dominant routines
// Allreduce, Barrier, Wait. Deviation driver (Fig. 9): endpoint request
// stalls (PT_RB_STL_RQ): 64 ranks per node hammer the NIC with sweep
// wavefront messages, so processor-tile back-pressure stretches the
// tightly synchronized sweep.
#include <cmath>

#include "apps/app_model.hpp"
#include "apps/comm_patterns.hpp"
#include "common/check.hpp"

namespace dfv::apps {

namespace {

class UmtModel final : public AppModel {
 public:
  explicit UmtModel(int nodes) {
    DFV_CHECK_MSG(nodes == 128, "the UMT dataset uses 128 nodes");
    info_.name = "UMT";
    info_.version = "2.0";
    info_.nodes = nodes;
    info_.input_params = "custom_8k.cmg 4 2 4 4 4 0.04";
    info_.time_steps = 7;
    coeffs_ = {/*pt=*/4.2, /*rt=*/0.35, /*coll=*/0.9};
    dims_ = factor3(nodes);
  }

  [[nodiscard]] const AppInfo& info() const override { return info_; }
  [[nodiscard]] const AppCoefficients& coefficients() const override { return coeffs_; }

  [[nodiscard]] StepSpec step(int step_idx, const sched::Placement& placement,
                              const net::Topology& topo, Rng& rng) const override {
    DFV_CHECK(step_idx >= 0 && step_idx < info_.time_steps);
    // Transport iterations deepen as the radiation field develops
    // (Fig. 3 right, rising curve).
    static constexpr double kShape[7] = {0.62, 0.78, 0.90, 1.00, 1.08, 1.15, 1.20};
    const double shape = kShape[step_idx];

    StepSpec s;
    s.compute_s = 110.0 * shape * (1.0 + 0.012 * rng.normal());

    // Sweep wavefront: small/medium downwind face messages, strictly
    // pipelined, so the phase is latency- and endpoint-bound.
    PhaseSpec sweep;
    sweep.kind = PhaseSpec::Kind::PointToPoint;
    sweep.base_seconds = 26.0 * shape;
    sweep.demands = stencil3d(placement, topo, dims_, 1.5e6 * shape);
    sweep.attribution = {{mon::MpiRoutine::Wait, 0.78}, {mon::MpiRoutine::Other, 0.22}};
    s.phases.push_back(std::move(sweep));

    // Flux convergence reductions per sweep ordinate set.
    PhaseSpec coll;
    coll.kind = PhaseSpec::Kind::Allreduce;
    coll.base_seconds = 9.0 * shape;
    coll.rounds = 16;
    coll.bytes = 512;
    coll.attribution = {{mon::MpiRoutine::Allreduce, 1.0}};
    s.phases.push_back(std::move(coll));

    // Synchronization barrier between angle sets.
    PhaseSpec bar;
    bar.kind = PhaseSpec::Kind::Barrier;
    bar.base_seconds = 6.0 * shape;
    bar.rounds = 16;
    bar.attribution = {{mon::MpiRoutine::Barrier, 1.0}};
    s.phases.push_back(std::move(bar));
    return s;
  }

 private:
  AppInfo info_;
  AppCoefficients coeffs_;
  std::array<int, 3> dims_{};
};

}  // namespace

std::unique_ptr<AppModel> make_umt(int nodes) { return std::make_unique<UmtModel>(nodes); }

}  // namespace dfv::apps
