// Application registry: Table I of the paper as data plus factory lookup.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/app_model.hpp"

namespace dfv::apps {

/// One dataset of the study: an application at a node count (Table I row).
struct DatasetSpec {
  std::string app;  ///< "AMG", "MILC", "miniVite", "UMT"
  int nodes = 0;

  [[nodiscard]] std::string label() const { return app + "-" + std::to_string(nodes); }
};

/// The six datasets of the paper, in Table I order.
[[nodiscard]] const std::vector<DatasetSpec>& paper_datasets();

/// Factory by name; throws ContractError on unknown app/nodes combination.
[[nodiscard]] std::unique_ptr<AppModel> make_app(const std::string& name, int nodes);

/// Table I contents (used by bench/table01_inputs).
[[nodiscard]] std::vector<AppInfo> table1_rows();

}  // namespace dfv::apps
