// AMG: parallel algebraic multigrid solver (Hypre BoomerAMG proxy) in a
// time-dependent AMG-GMRES loop on a 3-D problem, 32x32x32 per rank.
//
// Characterization targets (§III-B, Figs. 3-4): 20 time steps; ~76% of
// time in MPI at 128 nodes, ~82% at 512; a large number of small
// messages; dominant routines Iprobe, Test, Testall, Waitall, Allreduce.
// Deviation drivers (Fig. 9): endpoint request stalls and row-bus 2x
// usage (PT_RB_STL_RQ, PT_RB_2X_USG), plus transit stalls (RT_RB_STL)
// at 512 nodes where the job spreads over more groups.
#include <cmath>

#include "apps/app_model.hpp"
#include "apps/comm_patterns.hpp"
#include "common/check.hpp"

namespace dfv::apps {

namespace {

class AmgModel final : public AppModel {
 public:
  explicit AmgModel(int nodes) {
    DFV_CHECK_MSG(nodes == 128 || nodes == 512, "AMG datasets use 128 or 512 nodes");
    info_.name = "AMG";
    info_.version = "1.1";
    info_.nodes = nodes;
    info_.input_params = nodes == 128 ? "-P 32 16 16 -n 32 32 32 -problem 2"
                                      : "-P 32 32 32 -n 32 32 32 -problem 2";
    info_.time_steps = 20;
    if (nodes == 128) {
      compute_s_ = 6.3;
      p2p_base_s_ = 14.0;
      coll_base_s_ = 6.0;
      coeffs_ = {/*pt=*/1.2, /*rt=*/0.35, /*coll=*/0.6};
    } else {
      compute_s_ = 8.0;
      p2p_base_s_ = 25.0;
      coll_base_s_ = 12.0;
      // At 512 nodes the job spans more groups: transit congestion joins
      // endpoint congestion as a deviation driver.
      coeffs_ = {/*pt=*/0.45, /*rt=*/0.45, /*coll=*/0.4};
    }
    dims_ = factor3(nodes);
  }

  [[nodiscard]] const AppInfo& info() const override { return info_; }
  [[nodiscard]] const AppCoefficients& coefficients() const override { return coeffs_; }

  [[nodiscard]] StepSpec step(int step_idx, const sched::Placement& placement,
                              const net::Topology& topo, Rng& rng) const override {
    DFV_CHECK(step_idx >= 0 && step_idx < info_.time_steps);
    // Mild per-step structure (Fig. 3 left): nearly flat with a gentle
    // wiggle from the GMRES restart cadence.
    const double shape =
        1.0 + 0.12 * std::sin(0.7 * double(step_idx)) + 0.006 * double(step_idx);

    StepSpec s;
    s.compute_s = compute_s_ * shape * (1.0 + 0.015 * rng.normal());

    // V-cycle halo exchanges: many small messages, aggregated per node
    // face. Volume scales with the step's work so that mean counter
    // trends mirror the mean time-per-step trend (Fig. 7).
    PhaseSpec p2p;
    p2p.kind = PhaseSpec::Kind::PointToPoint;
    p2p.base_seconds = p2p_base_s_ * shape;
    p2p.demands = stencil3d(placement, topo, dims_, 2.0e6 * shape);
    p2p.attribution = {{mon::MpiRoutine::Waitall, 0.33},
                       {mon::MpiRoutine::Iprobe, 0.27},
                       {mon::MpiRoutine::Test, 0.20},
                       {mon::MpiRoutine::Testall, 0.13},
                       {mon::MpiRoutine::Other, 0.07}};
    s.phases.push_back(std::move(p2p));

    // GMRES dot products: ~40 small allreduces per step.
    PhaseSpec coll;
    coll.kind = PhaseSpec::Kind::Allreduce;
    coll.base_seconds = coll_base_s_ * shape;
    coll.rounds = 40;
    coll.bytes = 1024;
    coll.attribution = {{mon::MpiRoutine::Allreduce, 1.0}};
    s.phases.push_back(std::move(coll));
    return s;
  }

 private:
  AppInfo info_;
  AppCoefficients coeffs_;
  std::array<int, 3> dims_{};
  double compute_s_ = 0.0, p2p_base_s_ = 0.0, coll_base_s_ = 0.0;
};

}  // namespace

std::unique_ptr<AppModel> make_amg(int nodes) { return std::make_unique<AmgModel>(nodes); }

}  // namespace dfv::apps
