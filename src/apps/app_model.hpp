// Application models for the paper's four workloads (§III-A/B).
//
// Each model emits, per time step, a compute duration plus a list of
// communication phases (point-to-point traffic at router granularity,
// collectives as round counts). The cluster simulator turns phases into
// elapsed time using the network state, so run-to-run variability comes
// from the network — matching the paper's observation that compute time
// barely varies (no OS noise) while MPI time does.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "mon/mpip.hpp"
#include "net/traffic.hpp"
#include "sched/placement.hpp"

namespace dfv::apps {

/// Table I row: application version, node count, input parameters.
struct AppInfo {
  std::string name;           ///< "AMG", "MILC", "miniVite", "UMT"
  std::string version;        ///< e.g. "1.1"
  int nodes = 0;              ///< 128 or 512
  std::string input_params;   ///< Table I input string
  int time_steps = 0;         ///< loop iterations per run
  int ranks_per_node = 64;    ///< 64 of 68 KNL cores (4 reserved for OS)
};

/// Share of one phase's time attributed to an MPI routine in the
/// mpiP-style profile (Figures 4-5).
struct RoutineShare {
  mon::MpiRoutine routine;
  double share;  ///< fractions within a phase sum to ~1
};

/// One communication phase of a step.
struct PhaseSpec {
  enum class Kind : std::uint8_t { PointToPoint, Allreduce, Barrier };
  Kind kind = Kind::PointToPoint;

  /// Router-level traffic (PointToPoint), aggregated from node pairs.
  std::vector<net::Demand> demands;

  /// Latency/software-bound baseline duration at zero congestion [s].
  /// Congestion multiplies it; actual data movement (transfer makespan)
  /// adds on top for PointToPoint phases.
  double base_seconds = 0.0;

  double rounds = 1.0;  ///< collective rounds (Allreduce/Barrier)
  double bytes = 0.0;   ///< collective payload bytes per round

  std::vector<RoutineShare> attribution;
};

/// Everything a step does.
struct StepSpec {
  double compute_s = 0.0;
  std::vector<PhaseSpec> phases;
};

/// Sensitivity of the app's MPI time to the two congestion channels the
/// paper distinguishes: endpoint (processor-tile) stalls vs. transit
/// (router-tile) congestion; plus collective sensitivity.
struct AppCoefficients {
  double pt_weight = 1.0;    ///< multiplier on endpoint stall fraction
  double rt_weight = 1.0;    ///< multiplier on (transit congestion factor - 1)
  double coll_weight = 1.0;  ///< multiplier for collectives
};

/// Interface implemented by the four application models.
class AppModel {
 public:
  virtual ~AppModel() = default;

  [[nodiscard]] virtual const AppInfo& info() const = 0;
  [[nodiscard]] virtual const AppCoefficients& coefficients() const = 0;

  /// Build step `step_idx` (0-based) for the given placement. `rng` only
  /// feeds small compute noise and workload-inherent randomness (e.g.
  /// miniVite's per-step exchange volume); network effects are external.
  [[nodiscard]] virtual StepSpec step(int step_idx, const sched::Placement& placement,
                                      const net::Topology& topo, Rng& rng) const = 0;

  [[nodiscard]] int num_steps() const { return info().time_steps; }
};

[[nodiscard]] std::unique_ptr<AppModel> make_amg(int nodes);       ///< 128 or 512
[[nodiscard]] std::unique_ptr<AppModel> make_milc(int nodes);      ///< 128 or 512
[[nodiscard]] std::unique_ptr<AppModel> make_minivite(int nodes);  ///< 128
[[nodiscard]] std::unique_ptr<AppModel> make_umt(int nodes);       ///< 128

/// MILC with a custom step count: the paper's Fig. 12 runs a 620-step
/// MILC production job on 128 nodes (1h45m) and forecasts its segments.
[[nodiscard]] std::unique_ptr<AppModel> make_milc_long(int nodes, int time_steps);

}  // namespace dfv::apps
