// miniVite: one phase of distributed Louvain community detection on the
// nlpkkt240 graph (~28M vertices, ~373M edges), wrapped in an added
// outer loop that repeats the computation six times (§III-A).
//
// Characterization targets (§III-B, Fig. 5): >98% of time in MPI, almost
// all of it in Waitall; slowest run 3.76x the best. Deviation drivers
// (Fig. 9): flit counters (PT_FLIT_VC0, RT_FLIT_TOT) — the per-step
// exchange volume itself varies with the evolving community structure,
// so time tracks data volume.
#include <cmath>

#include "apps/app_model.hpp"
#include "apps/comm_patterns.hpp"
#include "common/check.hpp"

namespace dfv::apps {

namespace {

class MiniViteModel final : public AppModel {
 public:
  explicit MiniViteModel(int nodes) {
    DFV_CHECK_MSG(nodes == 128, "the miniVite dataset uses 128 nodes");
    info_.name = "miniVite";
    info_.version = "1.0";
    info_.nodes = nodes;
    info_.input_params = "-f nlpkkt240.bin -t 1E-02 -i 6";
    info_.time_steps = 6;
    coeffs_ = {/*pt=*/0.3, /*rt=*/0.45, /*coll=*/0.3};
  }

  [[nodiscard]] const AppInfo& info() const override { return info_; }
  [[nodiscard]] const AppCoefficients& coefficients() const override { return coeffs_; }

  [[nodiscard]] StepSpec step(int step_idx, const sched::Placement& placement,
                              const net::Topology& topo, Rng& rng) const override {
    DFV_CHECK(step_idx >= 0 && step_idx < info_.time_steps);
    // Louvain iterations get cheaper as communities stabilize (Fig. 3
    // right, declining curve).
    static constexpr double kShape[6] = {1.25, 1.10, 1.00, 0.95, 0.90, 0.88};
    const double shape = kShape[step_idx];
    // Per-step exchange volume is inherently stochastic: ghost-vertex
    // updates depend on the evolving partition. Time tracks volume, which
    // is why flit counters predict miniVite's deviations.
    const double volume_mult = rng.lognormal(0.0, 0.38);

    StepSpec s;
    s.compute_s = 2.5 * shape * (1.0 + 0.02 * rng.normal());

    PhaseSpec p2p;
    p2p.kind = PhaseSpec::Kind::PointToPoint;
    p2p.base_seconds = 130.0 * shape * volume_mult;
    p2p.demands = irregular_exchange(placement, topo, /*peers_per_node=*/24,
                                     /*total_bytes=*/250.0e9 * shape * volume_mult,
                                     /*lognormal_sigma=*/0.8, rng);
    p2p.attribution = {{mon::MpiRoutine::Waitall, 0.72},
                       {mon::MpiRoutine::Irecv, 0.12},
                       {mon::MpiRoutine::Isend, 0.09},
                       {mon::MpiRoutine::Other, 0.07}};
    s.phases.push_back(std::move(p2p));

    // Modularity reduction at the end of each outer iteration.
    PhaseSpec coll;
    coll.kind = PhaseSpec::Kind::Allreduce;
    coll.base_seconds = 1.2 * shape;
    coll.rounds = 4;
    coll.bytes = 64;
    coll.attribution = {{mon::MpiRoutine::Allreduce, 1.0}};
    s.phases.push_back(std::move(coll));
    return s;
  }

 private:
  AppInfo info_;
  AppCoefficients coeffs_;
};

}  // namespace

std::unique_ptr<AppModel> make_minivite(int nodes) {
  return std::make_unique<MiniViteModel>(nodes);
}

}  // namespace dfv::apps
