#include "analysis/deviation.hpp"

#include <cmath>

#include "common/check.hpp"

namespace dfv::analysis {

namespace {

/// A run-step contributes a sample only when its quality mask allows it
/// and every cell the sample touches is finite (degraded-data contract).
bool sample_usable(const sim::RunRecord& run, int t) {
  if (!run.step_usable(t)) return false;
  if (!std::isfinite(run.step_times[std::size_t(t)])) return false;
  for (int c = 0; c < mon::kNumCounters; ++c)
    if (!std::isfinite(run.step_counters[std::size_t(t)][std::size_t(c)])) return false;
  return true;
}

}  // namespace

CenteredSamples build_centered_samples(const sim::Dataset& ds) {
  DFV_CHECK_MSG(!ds.runs.empty(), "dataset has no runs");
  const int T = ds.steps_per_run();
  const std::size_t N = ds.runs.size();

  // Per-step mean trends over runs, for the target and for each counter
  // (the paper removes these because mean counter values track the mean
  // step-time curve — Fig. 7). Each step averages over the runs that
  // actually observed it usably, so dropped/corrupt steps cannot poison
  // the trend.
  std::vector<double> mean_time(std::size_t(T), 0.0);
  std::vector<int> obs(std::size_t(T), 0);
  std::vector<std::vector<double>> mean_counter(mon::kNumCounters,
                                                std::vector<double>(std::size_t(T), 0.0));
  for (const auto& run : ds.runs) {
    const int steps = std::min(T, run.steps());
    for (int t = 0; t < steps; ++t) {
      if (!sample_usable(run, t)) continue;
      mean_time[std::size_t(t)] += run.step_times[std::size_t(t)];
      for (int c = 0; c < mon::kNumCounters; ++c)
        mean_counter[std::size_t(c)][std::size_t(t)] +=
            run.step_counters[std::size_t(t)][std::size_t(c)];
      obs[std::size_t(t)] += 1;
    }
  }
  for (int t = 0; t < T; ++t) {
    if (obs[std::size_t(t)] == 0) continue;  // no usable sample will reference it
    mean_time[std::size_t(t)] /= double(obs[std::size_t(t)]);
    for (int c = 0; c < mon::kNumCounters; ++c)
      mean_counter[std::size_t(c)][std::size_t(t)] /= double(obs[std::size_t(t)]);
  }

  CenteredSamples out;
  out.x = ml::Matrix(0, mon::kNumCounters);
  out.x.reserve_rows(N * std::size_t(T));
  out.y.reserve(N * std::size_t(T));
  out.mean_offset.reserve(N * std::size_t(T));
  out.run_of.reserve(N * std::size_t(T));

  double row_buf[mon::kNumCounters];
  for (std::size_t r = 0; r < N; ++r) {
    const auto& run = ds.runs[r];
    const int steps = std::min(T, run.steps());
    for (int t = 0; t < steps; ++t) {
      if (!sample_usable(run, t)) continue;
      for (int c = 0; c < mon::kNumCounters; ++c)
        row_buf[c] = run.step_counters[std::size_t(t)][std::size_t(c)] -
                     mean_counter[std::size_t(c)][std::size_t(t)];
      out.x.append_row(std::span<const double>(row_buf, mon::kNumCounters));
      out.y.push_back(run.step_times[std::size_t(t)] - mean_time[std::size_t(t)]);
      out.mean_offset.push_back(mean_time[std::size_t(t)]);
      out.run_of.push_back(r);
    }
  }
  DFV_CHECK_MSG(!out.y.empty(),
                "dataset '" << ds.spec.app << "' has no usable run-steps left");
  return out;
}

DeviationResult analyze_deviation(const sim::Dataset& ds, const DeviationConfig& config) {
  DFV_CHECK_MSG(!ds.runs.empty(), "analyze_deviation: dataset has no runs");
  DFV_CHECK(config.rfe.folds >= 1);
  const CenteredSamples samples = build_centered_samples(ds);
  // Bin the sample matrix once; every fold, RFE stage, and tree of the
  // CV pipeline shares this view through row-index views and feature
  // masks (no per-stage submatrix copies).
  const ml::BinnedDataset binned(samples.x, config.rfe.gbr.tree.histogram_bins);
  const ml::RfeResult rfe = ml::rfe_cv(binned, samples.y, config.rfe,
                                       samples.mean_offset, samples.run_of);
  DeviationResult result;
  result.relevance = rfe.relevance;
  result.survival = rfe.survival;
  result.cv_mape = rfe.cv_mape_full;
  result.cv_mape_linear = rfe.cv_mape_linear;
  result.samples = samples.y.size();
  return result;
}

}  // namespace dfv::analysis
