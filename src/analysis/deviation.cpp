#include "analysis/deviation.hpp"

#include "common/check.hpp"

namespace dfv::analysis {

CenteredSamples build_centered_samples(const sim::Dataset& ds) {
  DFV_CHECK_MSG(!ds.runs.empty(), "dataset has no runs");
  const int T = ds.steps_per_run();
  const std::size_t N = ds.runs.size();

  // Per-step mean trends over runs, for the target and for each counter
  // (the paper removes these because mean counter values track the mean
  // step-time curve — Fig. 7).
  const std::vector<double> mean_time = ds.mean_step_curve();
  std::vector<std::vector<double>> mean_counter(mon::kNumCounters,
                                                std::vector<double>(std::size_t(T), 0.0));
  for (const auto& run : ds.runs)
    for (int t = 0; t < T; ++t)
      for (int c = 0; c < mon::kNumCounters; ++c)
        mean_counter[std::size_t(c)][std::size_t(t)] +=
            run.step_counters[std::size_t(t)][std::size_t(c)] / double(N);

  CenteredSamples out;
  out.x = ml::Matrix(N * std::size_t(T), mon::kNumCounters);
  out.y.reserve(N * std::size_t(T));
  out.mean_offset.reserve(N * std::size_t(T));
  out.run_of.reserve(N * std::size_t(T));

  std::size_t row = 0;
  for (std::size_t r = 0; r < N; ++r) {
    const auto& run = ds.runs[r];
    for (int t = 0; t < T; ++t, ++row) {
      auto dst = out.x.row(row);
      for (int c = 0; c < mon::kNumCounters; ++c)
        dst[std::size_t(c)] = run.step_counters[std::size_t(t)][std::size_t(c)] -
                              mean_counter[std::size_t(c)][std::size_t(t)];
      out.y.push_back(run.step_times[std::size_t(t)] - mean_time[std::size_t(t)]);
      out.mean_offset.push_back(mean_time[std::size_t(t)]);
      out.run_of.push_back(r);
    }
  }
  return out;
}

DeviationResult analyze_deviation(const sim::Dataset& ds, const DeviationConfig& config) {
  const CenteredSamples samples = build_centered_samples(ds);
  const ml::RfeResult rfe = ml::rfe_cv(samples.x, samples.y, config.rfe,
                                       samples.mean_offset, samples.run_of);
  DeviationResult result;
  result.relevance = rfe.relevance;
  result.survival = rfe.survival;
  result.cv_mape = rfe.cv_mape_full;
  result.cv_mape_linear = rfe.cv_mape_linear;
  result.samples = samples.y.size();
  return result;
}

}  // namespace dfv::analysis
