#include "analysis/forecast.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/window_cache.hpp"
#include "common/check.hpp"
#include "common/stats.hpp"
#include "exec/exec.hpp"
#include "ml/kfold.hpp"
#include "ml/metrics.hpp"

namespace dfv::analysis {

const char* to_string(FeatureSet fs) noexcept {
  switch (fs) {
    case FeatureSet::App: return "app";
    case FeatureSet::AppPlacement: return "app+placement";
    case FeatureSet::AppPlacementIo: return "app+placement+io";
    case FeatureSet::AppPlacementIoSys: return "app+placement+io+sys";
  }
  return "?";
}

int feature_count(FeatureSet fs) noexcept {
  switch (fs) {
    case FeatureSet::App: return mon::kNumCounters;
    case FeatureSet::AppPlacement: return mon::kNumCounters + 2;
    case FeatureSet::AppPlacementIo: return mon::kNumCounters + 2 + mon::kNumIoFeatures;
    case FeatureSet::AppPlacementIoSys:
      return mon::kNumCounters + 2 + mon::kNumIoFeatures + mon::kNumSysFeatures;
  }
  return mon::kNumCounters;
}

std::vector<std::string> feature_names(FeatureSet fs) {
  DFV_CHECK(int(fs) >= int(FeatureSet::App) && int(fs) <= int(FeatureSet::AppPlacementIoSys));
  std::vector<std::string> names;
  for (int c = 0; c < mon::kNumCounters; ++c)
    names.emplace_back(mon::counter_name(mon::counter_from_index(c)));
  if (int(fs) >= int(FeatureSet::AppPlacement)) {
    names.emplace_back("NUM_ROUTERS");
    names.emplace_back("NUM_GROUPS");
  }
  if (int(fs) >= int(FeatureSet::AppPlacementIo))
    for (const char* n : mon::ldms_io_feature_names()) names.emplace_back(n);
  if (int(fs) >= int(FeatureSet::AppPlacementIoSys))
    for (const char* n : mon::ldms_sys_feature_names()) names.emplace_back(n);
  return names;
}

void step_features(const sim::RunRecord& run, int t, FeatureSet fs, std::span<double> out) {
  DFV_CHECK(out.size() == std::size_t(feature_count(fs)));
  std::size_t i = 0;
  // Job-router counters are normalized to per-router *rates*: AriesNCL
  // aggregates are per-step deltas summed over the job's routers, so raw
  // values confound congestion level with placement size and with the
  // step's own duration (longer steps integrate more background traffic).
  // Rates isolate the congestion level; placement size still enters via
  // NUM_ROUTERS / NUM_GROUPS.
  const double inv = 1.0 / (double(std::max(1, run.num_routers)) *
                            std::max(1e-9, run.step_times[std::size_t(t)]));
  for (int c = 0; c < mon::kNumCounters; ++c)
    out[i++] = run.step_counters[std::size_t(t)][std::size_t(c)] * inv;
  if (int(fs) >= int(FeatureSet::AppPlacement)) {
    out[i++] = double(run.num_routers);
    out[i++] = double(run.num_groups);
  }
  if (int(fs) >= int(FeatureSet::AppPlacementIo))
    for (double v : run.step_ldms[std::size_t(t)].io) out[i++] = v;
  if (int(fs) >= int(FeatureSet::AppPlacementIoSys))
    for (double v : run.step_ldms[std::size_t(t)].sys) out[i++] = v;
}

WindowData build_windows(const sim::Dataset& ds, const WindowConfig& cfg) {
  DFV_CHECK(cfg.m >= 1 && cfg.k >= 1);
  const StepFeatureCache cache(ds);
  const WindowIndex index = build_window_index(ds, cache, cfg.m, cfg.k);
  const WindowViews views = make_window_views(cache, index, cfg.features);
  WindowData out;
  out.x = materialize(views.all());
  out.y = index.y;
  out.persistence = index.persistence;
  out.run_of = index.run_of;
  return out;
}

namespace {

/// Dataset-level mean baseline over observed steps (the tolerant curve
/// reports NaN for steps no run observed usably).
double dataset_mean_step(const sim::Dataset& ds) {
  double mean_step = 0.0;
  int n = 0;
  for (double v : ds.mean_step_curve())
    if (std::isfinite(v)) {
      mean_step += v;
      ++n;
    }
  return n > 0 ? mean_step / double(n) : 0.0;
}

/// One (m, k, feature-set) cell evaluated against the shared cache: the
/// fold design matrices are strided views into the cached per-run
/// feature tables, never materialized copies.
ForecastEval evaluate_forecast_cached(const StepFeatureCache& cache,
                                      const WindowIndex& index, double mean_step,
                                      const WindowConfig& wcfg,
                                      const ForecastConfig& fcfg) {
  ForecastEval eval;
  eval.windows = index.size();
  DFV_CHECK_MSG(index.size() >= std::size_t(2 * fcfg.folds),
                "too few forecasting windows for CV: " << index.size() << " windows < 2*"
                                                       << fcfg.folds << " folds at (m="
                                                       << wcfg.m << ", k=" << wcfg.k << ")");
  const WindowViews views = make_window_views(cache, index, wcfg.features);

  Rng rng(fcfg.seed);
  const auto folds = ml::group_kfold(index.run_of, std::size_t(fcfg.folds), rng);
  // Fold-parallel CV: each fold trains from its own substream seed and
  // writes a private partial; partials combine in fold order, so the
  // result is identical for any thread count.
  struct FoldPartial {
    double attention = 0.0, persistence = 0.0, mean = 0.0;
  };
  std::vector<FoldPartial> parts(folds.size());
  ml::run_folds(folds.size(), [&](std::size_t fold_i) {
    const auto& fold = folds[fold_i];
    std::vector<const double*> train_ptrs, test_ptrs;
    const ml::RowBatch x_train = views.select(fold.train, train_ptrs);
    std::vector<double> y_train(fold.train.size());
    for (std::size_t i = 0; i < fold.train.size(); ++i) y_train[i] = index.y[fold.train[i]];

    ml::AttentionParams ap = fcfg.attention;
    ap.seed = exec::substream_seed(fcfg.attention.seed, fold_i);
    ml::AttentionForecaster model(wcfg.m, feature_count(wcfg.features), ap);
    model.fit(x_train, y_train);

    const std::vector<double> pred = model.predict(views.select(fold.test, test_ptrs));
    std::vector<double> y_test(fold.test.size()), persist(fold.test.size()),
        mean_pred(fold.test.size());
    for (std::size_t i = 0; i < fold.test.size(); ++i) {
      y_test[i] = index.y[fold.test[i]];
      persist[i] = index.persistence[fold.test[i]];
      mean_pred[i] = mean_step * double(wcfg.k);
    }
    parts[fold_i] = {ml::mape(y_test, pred), ml::mape(y_test, persist),
                     ml::mape(y_test, mean_pred)};
  });
  for (const FoldPartial& p : parts) {
    eval.mape_attention += p.attention / double(folds.size());
    eval.mape_persistence += p.persistence / double(folds.size());
    eval.mape_mean += p.mean / double(folds.size());
  }
  return eval;
}

}  // namespace

ForecastEval evaluate_forecast(const sim::Dataset& ds, const WindowConfig& wcfg,
                               const ForecastConfig& fcfg) {
  DFV_CHECK(wcfg.m >= 1 && wcfg.k >= 1 && fcfg.folds >= 1);
  const StepFeatureCache cache(ds);
  const WindowIndex index = build_window_index(ds, cache, wcfg.m, wcfg.k);
  return evaluate_forecast_cached(cache, index, dataset_mean_step(ds), wcfg, fcfg);
}

std::vector<ForecastGridCell> evaluate_forecast_grid(const sim::Dataset& ds,
                                                     std::span<const WindowConfig> cells,
                                                     const ForecastConfig& fcfg) {
  DFV_CHECK(fcfg.folds >= 1);
  for (const WindowConfig& c : cells) DFV_CHECK(c.m >= 1 && c.k >= 1);
  // Features and window indices are shared across the whole grid: the
  // cache is built once, and cells differing only in feature set reuse
  // the same (m, k) index (window admission never depends on features).
  const StepFeatureCache cache(ds);
  const double mean_step = dataset_mean_step(ds);
  std::vector<std::pair<int, int>> mks;
  std::vector<std::size_t> index_of(cells.size());
  std::vector<WindowIndex> indices;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::pair<int, int> mk{cells[i].m, cells[i].k};
    const auto it = std::find(mks.begin(), mks.end(), mk);
    if (it == mks.end()) {
      index_of[i] = mks.size();
      mks.push_back(mk);
      indices.push_back(build_window_index(ds, cache, mk.first, mk.second));
    } else {
      index_of[i] = std::size_t(it - mks.begin());
    }
  }

  std::vector<ForecastGridCell> out(cells.size());
  // One task per (m, k, feature-set) cell; cells are fully independent, so
  // each slot holds exactly what a standalone evaluate_forecast would
  // return (inner fold tasks run inline when cells already occupy the
  // pool).
  exec::parallel_for(0, cells.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      out[i] = {cells[i],
                evaluate_forecast_cached(cache, indices[index_of[i]], mean_step, cells[i], fcfg)};
  });
  return out;
}

std::vector<double> forecast_feature_importance(const sim::Dataset& ds,
                                                const WindowConfig& wcfg,
                                                const ForecastConfig& fcfg) {
  DFV_CHECK(wcfg.m >= 1 && wcfg.k >= 1);
  const StepFeatureCache cache(ds);
  const WindowIndex index = build_window_index(ds, cache, wcfg.m, wcfg.k);
  const WindowViews views = make_window_views(cache, index, wcfg.features);
  ml::AttentionForecaster model(wcfg.m, feature_count(wcfg.features), fcfg.attention);
  model.fit(views.all(), index.y);
  // The permutation scan mutates one feature column at a time, so it
  // works on the one materialized copy it would build anyway.
  const ml::Matrix x = materialize(views.all());
  Rng rng(hash_combine(fcfg.seed, 0x1397));
  return model.permutation_importance(x, index.y, rng);
}

LongRunForecast forecast_long_run(const sim::Dataset& train,
                                  const sim::RunRecord& long_run,
                                  const WindowConfig& wcfg, const ForecastConfig& fcfg) {
  const StepFeatureCache cache(train);
  const WindowIndex index = build_window_index(train, cache, wcfg.m, wcfg.k);
  const WindowViews views = make_window_views(cache, index, wcfg.features);
  ml::AttentionForecaster model(wcfg.m, feature_count(wcfg.features), fcfg.attention);
  model.fit(views.all(), index.y);

  const int T = long_run.steps();
  LongRunForecast out;
  // The long run gets its own feature table; each clean segment is a
  // strided window view into it, predicted in one batch.
  const RunFeatureTable table = build_run_table(long_run);
  std::vector<const double*> seg_base;
  for (int seg = wcfg.m; seg + wcfg.k <= T; seg += wcfg.k) {
    if (!table.span_clean(seg - wcfg.m, seg + wcfg.k)) continue;
    double observed = 0.0;
    for (int j = 0; j < wcfg.k; ++j) observed += long_run.step_times[std::size_t(seg + j)];
    out.segment_start.push_back(seg);
    out.observed.push_back(observed);
    seg_base.push_back(table.step_row(seg - wcfg.m));
  }
  DFV_CHECK_MSG(!out.observed.empty(), "long run yields no clean forecast segments");
  out.predicted = model.predict(ml::RowBatch{seg_base, std::size_t(wcfg.m),
                                             std::size_t(feature_count(wcfg.features)),
                                             std::size_t(superset_feature_count())});
  out.mape = ml::mape(out.observed, out.predicted);
  return out;
}

}  // namespace dfv::analysis
