#include "analysis/forecast.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "exec/exec.hpp"
#include "ml/kfold.hpp"
#include "ml/metrics.hpp"

namespace dfv::analysis {

const char* to_string(FeatureSet fs) noexcept {
  switch (fs) {
    case FeatureSet::App: return "app";
    case FeatureSet::AppPlacement: return "app+placement";
    case FeatureSet::AppPlacementIo: return "app+placement+io";
    case FeatureSet::AppPlacementIoSys: return "app+placement+io+sys";
  }
  return "?";
}

int feature_count(FeatureSet fs) noexcept {
  switch (fs) {
    case FeatureSet::App: return mon::kNumCounters;
    case FeatureSet::AppPlacement: return mon::kNumCounters + 2;
    case FeatureSet::AppPlacementIo: return mon::kNumCounters + 2 + mon::kNumIoFeatures;
    case FeatureSet::AppPlacementIoSys:
      return mon::kNumCounters + 2 + mon::kNumIoFeatures + mon::kNumSysFeatures;
  }
  return mon::kNumCounters;
}

std::vector<std::string> feature_names(FeatureSet fs) {
  std::vector<std::string> names;
  for (int c = 0; c < mon::kNumCounters; ++c)
    names.emplace_back(mon::counter_name(mon::counter_from_index(c)));
  if (int(fs) >= int(FeatureSet::AppPlacement)) {
    names.emplace_back("NUM_ROUTERS");
    names.emplace_back("NUM_GROUPS");
  }
  if (int(fs) >= int(FeatureSet::AppPlacementIo))
    for (const char* n : mon::ldms_io_feature_names()) names.emplace_back(n);
  if (int(fs) >= int(FeatureSet::AppPlacementIoSys))
    for (const char* n : mon::ldms_sys_feature_names()) names.emplace_back(n);
  return names;
}

void step_features(const sim::RunRecord& run, int t, FeatureSet fs, std::span<double> out) {
  DFV_CHECK(out.size() == std::size_t(feature_count(fs)));
  std::size_t i = 0;
  // Job-router counters are normalized to per-router *rates*: AriesNCL
  // aggregates are per-step deltas summed over the job's routers, so raw
  // values confound congestion level with placement size and with the
  // step's own duration (longer steps integrate more background traffic).
  // Rates isolate the congestion level; placement size still enters via
  // NUM_ROUTERS / NUM_GROUPS.
  const double inv = 1.0 / (double(std::max(1, run.num_routers)) *
                            std::max(1e-9, run.step_times[std::size_t(t)]));
  for (int c = 0; c < mon::kNumCounters; ++c)
    out[i++] = run.step_counters[std::size_t(t)][std::size_t(c)] * inv;
  if (int(fs) >= int(FeatureSet::AppPlacement)) {
    out[i++] = double(run.num_routers);
    out[i++] = double(run.num_groups);
  }
  if (int(fs) >= int(FeatureSet::AppPlacementIo))
    for (double v : run.step_ldms[std::size_t(t)].io) out[i++] = v;
  if (int(fs) >= int(FeatureSet::AppPlacementIoSys))
    for (double v : run.step_ldms[std::size_t(t)].sys) out[i++] = v;
}

namespace {

/// A step may enter a forecasting window only when its quality mask
/// allows it and every telemetry cell a window reads is finite.
bool step_clean(const sim::RunRecord& run, int t) {
  if (!run.step_usable(t)) return false;
  if (!std::isfinite(run.step_times[std::size_t(t)])) return false;
  for (int c = 0; c < mon::kNumCounters; ++c)
    if (!std::isfinite(run.step_counters[std::size_t(t)][std::size_t(c)])) return false;
  for (double v : run.step_ldms[std::size_t(t)].io)
    if (!std::isfinite(v)) return false;
  for (double v : run.step_ldms[std::size_t(t)].sys)
    if (!std::isfinite(v)) return false;
  return true;
}

/// bad_before[t] = number of unclean steps in [0, t): windows test any
/// span for cleanliness in O(1).
std::vector<int> bad_prefix(const sim::RunRecord& run) {
  std::vector<int> out(std::size_t(run.steps()) + 1, 0);
  for (int t = 0; t < run.steps(); ++t)
    out[std::size_t(t) + 1] = out[std::size_t(t)] + (step_clean(run, t) ? 0 : 1);
  return out;
}

bool span_clean(const std::vector<int>& bad_before, int lo, int hi) {
  return bad_before[std::size_t(hi)] == bad_before[std::size_t(lo)];
}

}  // namespace

WindowData build_windows(const sim::Dataset& ds, const WindowConfig& cfg) {
  DFV_CHECK(cfg.m >= 1 && cfg.k >= 1);
  const int T = ds.steps_per_run();
  DFV_CHECK_MSG(cfg.m + cfg.k <= T, "window m+k=" << cfg.m + cfg.k
                                                  << " exceeds steps per run " << T);
  const int F = feature_count(cfg.features);

  WindowData out;
  out.x = ml::Matrix(0, std::size_t(cfg.m) * std::size_t(F));
  // Upper bound on window count (every run full-length and clean), so
  // the per-window append never reallocates the design matrix.
  out.x.reserve_rows(ds.runs.size() * std::size_t(std::max(0, T - cfg.m - cfg.k + 1)));
  std::vector<double> row(std::size_t(cfg.m) * std::size_t(F));

  for (std::size_t r = 0; r < ds.runs.size(); ++r) {
    const auto& run = ds.runs[r];
    // Truncated runs (shorter than the dataset's nominal length) still
    // contribute the windows that fit; windows touching any degraded step
    // are skipped rather than imputed-by-accident.
    const int Tr = std::min(T, run.steps());
    if (Tr < cfg.m + cfg.k) continue;
    const std::vector<int> bad_before = bad_prefix(run);
    // Slide t_c from m to T-k: history [t_c-m, t_c), target (t_c, t_c+k].
    for (int tc = cfg.m; tc + cfg.k <= Tr; ++tc) {
      if (!span_clean(bad_before, tc - cfg.m, tc + cfg.k)) continue;
      for (int j = 0; j < cfg.m; ++j)
        step_features(run, tc - cfg.m + j, cfg.features,
                      {row.data() + std::size_t(j) * std::size_t(F), std::size_t(F)});
      double target = 0.0;
      for (int j = 0; j < cfg.k; ++j) target += run.step_times[std::size_t(tc + j)];
      double recent = 0.0;
      for (int j = 0; j < cfg.m; ++j) recent += run.step_times[std::size_t(tc - 1 - j)];

      out.x.append_row(row);
      out.y.push_back(target);
      out.persistence.push_back(recent / double(cfg.m) * double(cfg.k));
      out.run_of.push_back(r);
    }
  }
  DFV_CHECK_MSG(!out.y.empty(), "dataset '" << ds.spec.app
                                            << "' yields no clean forecasting windows");
  return out;
}

ForecastEval evaluate_forecast(const sim::Dataset& ds, const WindowConfig& wcfg,
                               const ForecastConfig& fcfg) {
  const WindowData wd = build_windows(ds, wcfg);
  ForecastEval eval;
  eval.windows = wd.y.size();
  DFV_CHECK(wd.y.size() >= std::size_t(2 * fcfg.folds));

  // Dataset-level mean baseline over observed steps (the tolerant curve
  // reports NaN for steps no run observed usably).
  double mean_step = 0.0;
  {
    int n = 0;
    for (double v : ds.mean_step_curve())
      if (std::isfinite(v)) {
        mean_step += v;
        ++n;
      }
    if (n > 0) mean_step /= double(n);
  }

  Rng rng(fcfg.seed);
  const auto folds = ml::group_kfold(wd.run_of, std::size_t(fcfg.folds), rng);
  // Fold-parallel CV: each fold trains from its own substream seed and
  // writes a private partial; partials combine in fold order, so the
  // result is identical for any thread count.
  struct FoldPartial {
    double attention = 0.0, persistence = 0.0, mean = 0.0;
  };
  std::vector<FoldPartial> parts(folds.size());
  ml::run_folds(folds.size(), [&](std::size_t fold_i) {
    const auto& fold = folds[fold_i];
    const ml::Matrix x_train = wd.x.select_rows(fold.train);
    std::vector<double> y_train(fold.train.size());
    for (std::size_t i = 0; i < fold.train.size(); ++i) y_train[i] = wd.y[fold.train[i]];

    ml::AttentionParams ap = fcfg.attention;
    ap.seed = exec::substream_seed(fcfg.attention.seed, fold_i);
    ml::AttentionForecaster model(wcfg.m, feature_count(wcfg.features), ap);
    model.fit(x_train, y_train);

    std::vector<double> y_test(fold.test.size()), pred(fold.test.size()),
        persist(fold.test.size()), mean_pred(fold.test.size());
    for (std::size_t i = 0; i < fold.test.size(); ++i) {
      y_test[i] = wd.y[fold.test[i]];
      pred[i] = model.predict_one(wd.x.row(fold.test[i]));
      persist[i] = wd.persistence[fold.test[i]];
      mean_pred[i] = mean_step * double(wcfg.k);
    }
    parts[fold_i] = {ml::mape(y_test, pred), ml::mape(y_test, persist),
                     ml::mape(y_test, mean_pred)};
  });
  for (const FoldPartial& p : parts) {
    eval.mape_attention += p.attention / double(folds.size());
    eval.mape_persistence += p.persistence / double(folds.size());
    eval.mape_mean += p.mean / double(folds.size());
  }
  return eval;
}

std::vector<ForecastGridCell> evaluate_forecast_grid(const sim::Dataset& ds,
                                                     std::span<const WindowConfig> cells,
                                                     const ForecastConfig& fcfg) {
  std::vector<ForecastGridCell> out(cells.size());
  // One task per (m, k, feature-set) cell; cells are fully independent, so
  // each slot holds exactly what a standalone evaluate_forecast would
  // return (inner fold tasks run inline when cells already occupy the
  // pool).
  exec::parallel_for(0, cells.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      out[i] = {cells[i], evaluate_forecast(ds, cells[i], fcfg)};
  });
  return out;
}

std::vector<double> forecast_feature_importance(const sim::Dataset& ds,
                                                const WindowConfig& wcfg,
                                                const ForecastConfig& fcfg) {
  const WindowData wd = build_windows(ds, wcfg);
  ml::AttentionForecaster model(wcfg.m, feature_count(wcfg.features), fcfg.attention);
  model.fit(wd.x, wd.y);
  Rng rng(hash_combine(fcfg.seed, 0x1397));
  return model.permutation_importance(wd.x, wd.y, rng);
}

LongRunForecast forecast_long_run(const sim::Dataset& train,
                                  const sim::RunRecord& long_run,
                                  const WindowConfig& wcfg, const ForecastConfig& fcfg) {
  const WindowData wd = build_windows(train, wcfg);
  ml::AttentionForecaster model(wcfg.m, feature_count(wcfg.features), fcfg.attention);
  model.fit(wd.x, wd.y);

  const int F = feature_count(wcfg.features);
  const int T = long_run.steps();
  LongRunForecast out;
  std::vector<double> window(std::size_t(wcfg.m) * std::size_t(F));

  const std::vector<int> bad_before = bad_prefix(long_run);
  for (int seg = wcfg.m; seg + wcfg.k <= T; seg += wcfg.k) {
    if (!span_clean(bad_before, seg - wcfg.m, seg + wcfg.k)) continue;
    for (int j = 0; j < wcfg.m; ++j)
      step_features(long_run, seg - wcfg.m + j, wcfg.features,
                    {window.data() + std::size_t(j) * std::size_t(F), std::size_t(F)});
    double observed = 0.0;
    for (int j = 0; j < wcfg.k; ++j) observed += long_run.step_times[std::size_t(seg + j)];
    out.segment_start.push_back(seg);
    out.observed.push_back(observed);
    out.predicted.push_back(model.predict_one(window));
  }
  DFV_CHECK_MSG(!out.observed.empty(), "long run yields no clean forecast segments");
  out.mape = ml::mape(out.observed, out.predicted);
  return out;
}

}  // namespace dfv::analysis
