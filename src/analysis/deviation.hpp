// Deviation prediction (§IV-B, §V-B, Fig. 9): treat every time step of
// every run as an independent sample; remove the per-step mean trends
// from both counters and execution times; fit GBR with 10-fold CV and
// recursive feature elimination; report per-counter relevance scores and
// the CV MAPE of the reconstructed (mean + deviation) step times.
#pragma once

#include "ml/rfe.hpp"
#include "sim/dataset.hpp"

namespace dfv::analysis {

struct DeviationConfig {
  ml::RfeParams rfe;

  DeviationConfig() {
    rfe.folds = 10;
    rfe.gbr.n_trees = 60;
    rfe.gbr.learning_rate = 0.10;
    rfe.gbr.subsample = 0.40;
    rfe.gbr.tree.max_depth = 4;
    rfe.gbr.tree.min_samples_leaf = 15;
  }
};

struct DeviationResult {
  std::vector<double> relevance;  ///< per counter (Table II order), Fig. 9
  std::vector<double> survival;   ///< RFE survival scores (secondary)
  double cv_mape = 0.0;           ///< GBR, reconstructed absolute times
  double cv_mape_linear = 0.0;    ///< ridge linear baseline (Groves et al.)
  std::size_t samples = 0;        ///< N*T
};

/// Mean-centered design matrix: rows = run-steps, cols = the 13 counters.
/// Exposed for tests and the forecasting pipeline.
struct CenteredSamples {
  ml::Matrix x;                       ///< NT x 13, mean trend removed
  std::vector<double> y;              ///< NT, mean trend removed
  std::vector<double> mean_offset;    ///< NT, the removed per-step mean time
  std::vector<std::size_t> run_of;    ///< NT, originating run index
};

[[nodiscard]] CenteredSamples build_centered_samples(const sim::Dataset& ds);

[[nodiscard]] DeviationResult analyze_deviation(const sim::Dataset& ds,
                                                const DeviationConfig& config = {});

}  // namespace dfv::analysis
