// Neighborhood analysis (§IV-A, §V-A, Table III): quantify, via mutual
// information, the dependency between the users running concurrently
// with each run and the run's optimality (t_r < tau * t_mean).
#pragma once

#include <vector>

#include "sim/dataset.hpp"

namespace dfv::analysis {

struct UserScore {
  int user_id = 0;
  double mi = 0.0;           ///< mutual information with optimality [nats]
  double presence = 0.0;     ///< fraction of runs the user overlapped
  double optimal_when_present = 0.0;  ///< P(optimal | user present)
  double optimal_overall = 0.0;       ///< P(optimal)

  /// True when the user's presence is associated with *worse* outcomes
  /// (the direction Table III reports).
  [[nodiscard]] bool negatively_correlated() const noexcept {
    return optimal_when_present < optimal_overall;
  }
};

struct NeighborhoodResult {
  double tau = 1.0;
  double mean_total_time = 0.0;
  double optimal_fraction = 0.0;
  std::vector<UserScore> ranked;  ///< all users, by MI descending
};

/// Run the analysis on one dataset.
[[nodiscard]] NeighborhoodResult analyze_neighborhood(const sim::Dataset& ds,
                                                      double tau = 1.0);

/// Table III row: the top-`top_k` users by MI that are negatively
/// correlated with optimality and clear `min_mi`; sorted by user id.
[[nodiscard]] std::vector<int> blamed_users(const NeighborhoodResult& r,
                                            std::size_t top_k = 9, double min_mi = 1e-3);

}  // namespace dfv::analysis
