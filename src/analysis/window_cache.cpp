#include "analysis/window_cache.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace dfv::analysis {

int superset_feature_count() noexcept {
  return feature_count(FeatureSet::AppPlacementIoSys);
}

namespace {

/// A step may enter a forecasting window only when its quality mask
/// allows it and every telemetry cell a window reads is finite.
bool step_clean(const sim::RunRecord& run, int t) {
  if (!run.step_usable(t)) return false;
  if (!std::isfinite(run.step_times[std::size_t(t)])) return false;
  for (int c = 0; c < mon::kNumCounters; ++c)
    if (!std::isfinite(run.step_counters[std::size_t(t)][std::size_t(c)])) return false;
  for (double v : run.step_ldms[std::size_t(t)].io)
    if (!std::isfinite(v)) return false;
  for (double v : run.step_ldms[std::size_t(t)].sys)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace

const double* RunFeatureTable::step_row(int t) const noexcept {
  return features.data() + std::size_t(t) * std::size_t(superset_feature_count());
}

RunFeatureTable build_run_table(const sim::RunRecord& run) {
  DFV_CHECK(run.step_counters.size() == run.step_times.size());
  DFV_CHECK(run.step_ldms.size() == run.step_times.size());
  const int W = superset_feature_count();
  const int T = run.steps();
  RunFeatureTable out;
  out.steps = T;
  out.features.resize(std::size_t(T) * std::size_t(W));
  out.bad_before.assign(std::size_t(T) + 1, 0);
  for (int t = 0; t < T; ++t) {
    // Extract the superset row even for degraded steps (cells may be
    // NaN): cleanliness is tracked separately, and no clean window ever
    // reads a degraded row.
    step_features(run, t, FeatureSet::AppPlacementIoSys,
                  {out.features.data() + std::size_t(t) * std::size_t(W), std::size_t(W)});
    out.bad_before[std::size_t(t) + 1] =
        out.bad_before[std::size_t(t)] + (step_clean(run, t) ? 0 : 1);
  }
  return out;
}

StepFeatureCache::StepFeatureCache(const sim::Dataset& ds) {
  tables_.reserve(ds.runs.size());
  for (const auto& run : ds.runs) tables_.push_back(build_run_table(run));
  DFV_CHECK(tables_.size() == ds.runs.size());
}

WindowIndex build_window_index(const sim::Dataset& ds, const StepFeatureCache& cache,
                               int m, int k) {
  DFV_CHECK(m >= 1 && k >= 1);
  DFV_CHECK(cache.runs() == ds.runs.size());
  const int T = ds.steps_per_run();
  DFV_CHECK_MSG(m + k <= T, "window m+k=" << m + k << " exceeds steps per run " << T);

  WindowIndex out;
  out.m = m;
  out.k = k;
  // Upper bound on window count (every run full-length and clean), so
  // the per-window appends never reallocate.
  const std::size_t cap = ds.runs.size() * std::size_t(std::max(0, T - m - k + 1));
  out.run_of.reserve(cap);
  out.t_c.reserve(cap);
  out.y.reserve(cap);
  out.persistence.reserve(cap);
  for (std::size_t r = 0; r < ds.runs.size(); ++r) {
    const auto& run = ds.runs[r];
    const RunFeatureTable& table = cache.run(r);
    // Truncated runs (shorter than the dataset's nominal length) still
    // contribute the windows that fit; windows touching any degraded step
    // are skipped rather than imputed-by-accident.
    const int Tr = std::min(T, run.steps());
    if (Tr < m + k) continue;
    // Slide t_c from m to T-k: history [t_c-m, t_c), target (t_c, t_c+k].
    for (int tc = m; tc + k <= Tr; ++tc) {
      if (!table.span_clean(tc - m, tc + k)) continue;
      double target = 0.0;
      for (int j = 0; j < k; ++j) target += run.step_times[std::size_t(tc + j)];
      double recent = 0.0;
      for (int j = 0; j < m; ++j) recent += run.step_times[std::size_t(tc - 1 - j)];
      out.run_of.push_back(r);
      out.t_c.push_back(tc);
      out.y.push_back(target);
      out.persistence.push_back(recent / double(m) * double(k));
    }
  }
  DFV_CHECK_MSG(!out.y.empty(), "dataset '" << ds.spec.app
                                            << "' yields no clean forecasting windows");
  return out;
}

ml::RowBatch WindowViews::select(std::span<const std::size_t> idx,
                                 std::vector<const double*>& scratch) const {
  scratch.resize(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) scratch[i] = base[idx[i]];
  return {scratch, m, width, stride};
}

WindowViews make_window_views(const StepFeatureCache& cache, const WindowIndex& index,
                              FeatureSet fs) {
  DFV_CHECK(index.m >= 1);
  DFV_CHECK(feature_count(fs) <= superset_feature_count());
  WindowViews out;
  out.m = std::size_t(index.m);
  out.width = std::size_t(feature_count(fs));
  out.stride = std::size_t(superset_feature_count());
  out.base.resize(index.size());
  for (std::size_t w = 0; w < index.size(); ++w)
    out.base[w] = cache.run(index.run_of[w]).step_row(index.t_c[w] - index.m);
  return out;
}

ml::Matrix materialize(const ml::RowBatch& batch) {
  DFV_CHECK(batch.size() == 0 || batch.row_len() > 0);
  // Append gathered rows instead of constructing rows x len up front:
  // the zero-fill of a pre-sized matrix costs a full extra memory pass.
  ml::Matrix out(0, batch.row_len());
  out.reserve_rows(batch.size());
  std::vector<double> row(batch.row_len());
  for (std::size_t r = 0; r < batch.size(); ++r) {
    batch.gather(r, row.data());
    out.append_row(row);
  }
  return out;
}

}  // namespace dfv::analysis
