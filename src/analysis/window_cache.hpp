// Shared window-view cache for the forecasting fast path. The ablation
// grid (Figs. 8/10) evaluates the same dataset at many (m, k, feature
// set) cells; the naive path re-extracts per-step features and re-copies
// m x F window rows for every cell, fold, and importance repeat. The
// cumulative feature sets are exact column prefixes of the superset
// (AppPlacementIoSys), so one per-run feature table serves all four:
// a window becomes m strided row views into the table (ml::RowBatch)
// instead of a materialized copy, and the per-run cleanliness prefix is
// computed once instead of per cell.
#pragma once

#include <vector>

#include "analysis/forecast.hpp"
#include "ml/matrix.hpp"
#include "sim/dataset.hpp"

namespace dfv::analysis {

/// Width of a superset (AppPlacementIoSys) per-step feature row. Every
/// narrower FeatureSet is an exact column prefix of it (tests pin this).
[[nodiscard]] int superset_feature_count() noexcept;

/// One run's step features and cleanliness, extracted once.
struct RunFeatureTable {
  /// steps x superset_feature_count(), row-major; rows of degraded steps
  /// may hold NaN — they are never read because no clean window spans them.
  std::vector<double> features;
  /// bad_before[t] = unclean steps in [0, t); span checks are O(1).
  std::vector<int> bad_before;
  int steps = 0;

  [[nodiscard]] bool span_clean(int lo, int hi) const noexcept {
    return bad_before[std::size_t(hi)] == bad_before[std::size_t(lo)];
  }
  /// Pointer to the superset feature row of step `t`.
  [[nodiscard]] const double* step_row(int t) const noexcept;
};

/// Build the table for a single run (the long-run forecast path).
[[nodiscard]] RunFeatureTable build_run_table(const sim::RunRecord& run);

/// Per-run feature tables for a whole dataset, built once and shared
/// across every grid cell, fold, and importance repeat.
class StepFeatureCache {
 public:
  explicit StepFeatureCache(const sim::Dataset& ds);

  [[nodiscard]] const RunFeatureTable& run(std::size_t r) const { return tables_[r]; }
  [[nodiscard]] std::size_t runs() const noexcept { return tables_.size(); }

 private:
  std::vector<RunFeatureTable> tables_;
};

/// The windows of one (m, k): centers, targets, and baselines. Window
/// admission depends only on (m, k) and step cleanliness — never on the
/// feature set — so one index is shared by all feature-set cells.
struct WindowIndex {
  int m = 0, k = 0;
  std::vector<std::size_t> run_of;  ///< originating run per window
  std::vector<int> t_c;             ///< window center: history [t_c-m, t_c)
  std::vector<double> y;            ///< sum of the next k step times
  std::vector<double> persistence;  ///< k * mean(last m step times)

  [[nodiscard]] std::size_t size() const noexcept { return y.size(); }
};

/// Enumerate the clean windows of `ds` for one (m, k); identical window
/// set, order, targets, and baselines to the legacy build_windows.
/// Throws ContractError when no clean window exists.
[[nodiscard]] WindowIndex build_window_index(const sim::Dataset& ds,
                                             const StepFeatureCache& cache, int m, int k);

/// Strided row views of an index's windows for one feature set: window w
/// is m chunks of `width` doubles, stride superset_feature_count(),
/// starting at the cached feature row of its first history step. No
/// per-window copies are made; narrower feature sets read the same
/// tables through a narrower chunk width.
struct WindowViews {
  std::vector<const double*> base;  ///< per window: row (t_c - m) of its run table
  std::size_t m = 1;                ///< chunks per window
  std::size_t width = 0;            ///< feature_count(fs)
  std::size_t stride = 0;           ///< superset_feature_count()

  /// All windows as one batch.
  [[nodiscard]] ml::RowBatch all() const noexcept { return {base, m, width, stride}; }
  /// The windows selected by `idx` (pointers gathered into `scratch`,
  /// which must outlive the returned batch).
  [[nodiscard]] ml::RowBatch select(std::span<const std::size_t> idx,
                                    std::vector<const double*>& scratch) const;
};

[[nodiscard]] WindowViews make_window_views(const StepFeatureCache& cache,
                                            const WindowIndex& index, FeatureSet fs);

/// Materialize a batch into a dense design matrix (row r = gathered row
/// r), bit-identical to the rows the legacy copy path produced.
[[nodiscard]] ml::Matrix materialize(const ml::RowBatch& batch);

}  // namespace dfv::analysis
