#include "analysis/neighborhood.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "ml/mutual_info.hpp"

namespace dfv::analysis {

NeighborhoodResult analyze_neighborhood(const sim::Dataset& ds, double tau) {
  NeighborhoodResult result;
  result.tau = tau;
  const std::size_t n = ds.runs.size();
  DFV_CHECK_MSG(n >= 2, "neighborhood analysis needs at least two runs");

  // Optimality vector: t_r < tau * mean(t).
  const std::vector<double> totals = ds.total_times();
  result.mean_total_time = stats::mean(totals);
  std::vector<int> optimal(n);
  std::size_t n_opt = 0;
  for (std::size_t r = 0; r < n; ++r) {
    optimal[r] = totals[r] < tau * result.mean_total_time ? 1 : 0;
    n_opt += std::size_t(optimal[r]);
  }
  result.optimal_fraction = double(n_opt) / double(n);

  // User vocabulary over all runs' neighborhoods.
  std::map<int, std::vector<int>> presence;  // user -> binary column
  for (std::size_t r = 0; r < n; ++r)
    for (int u : ds.runs[r].neighborhood_users)
      presence.emplace(u, std::vector<int>(n, 0)).first->second[r] = 1;

  for (auto& [user, column] : presence) {
    UserScore s;
    s.user_id = user;
    s.mi = ml::mutual_information(column, optimal);
    std::size_t np = 0, np_opt = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (!column[r]) continue;
      ++np;
      np_opt += std::size_t(optimal[r]);
    }
    s.presence = double(np) / double(n);
    s.optimal_when_present = np > 0 ? double(np_opt) / double(np) : 0.0;
    s.optimal_overall = result.optimal_fraction;
    result.ranked.push_back(s);
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const UserScore& a, const UserScore& b) { return a.mi > b.mi; });
  return result;
}

std::vector<int> blamed_users(const NeighborhoodResult& r, std::size_t top_k,
                              double min_mi) {
  DFV_CHECK_MSG(min_mi >= 0.0, "mutual information is non-negative; min_mi must be too");
  std::vector<int> users;
  for (const UserScore& s : r.ranked) {
    if (users.size() >= top_k) break;
    if (s.mi < min_mi) break;
    if (!s.negatively_correlated()) continue;
    users.push_back(s.user_id);
  }
  std::sort(users.begin(), users.end());
  return users;
}

}  // namespace dfv::analysis
