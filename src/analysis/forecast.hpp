// Forecasting pipeline (§IV-C, §V-C, Figs. 8/10/11/12): predict the sum
// of the next k step times from the last m steps of features with the
// attention forecaster, sweeping the temporal context m, horizon k, and
// feature sets {app, +placement, +io, +sys}.
#pragma once

#include <string>
#include <vector>

#include "ml/attention.hpp"
#include "sim/dataset.hpp"

namespace dfv::analysis {

/// Cumulative feature sets of the paper's ablations (Figs. 8 and 10).
enum class FeatureSet : int {
  App = 0,              ///< the 13 job-router counters
  AppPlacement,         ///< + NUM_ROUTERS, NUM_GROUPS
  AppPlacementIo,       ///< + 4 LDMS I/O-router aggregates
  AppPlacementIoSys,    ///< + 4 LDMS non-job ("sys") aggregates
};

[[nodiscard]] const char* to_string(FeatureSet fs) noexcept;
[[nodiscard]] int feature_count(FeatureSet fs) noexcept;  // 13 / 15 / 19 / 23
[[nodiscard]] std::vector<std::string> feature_names(FeatureSet fs);

struct WindowConfig {
  int m = 3;  ///< history length (steps)
  int k = 5;  ///< horizon (steps whose total time is predicted)
  FeatureSet features = FeatureSet::App;
};

/// Sliding windows built from a dataset ("slide t_c between m and T-k").
struct WindowData {
  ml::Matrix x;                      ///< rows of length m * F, time-major
  std::vector<double> y;             ///< sum of next k step times
  std::vector<double> persistence;   ///< baseline: k * mean(last m step times)
  std::vector<std::size_t> run_of;   ///< originating run per window
};

[[nodiscard]] WindowData build_windows(const sim::Dataset& ds, const WindowConfig& cfg);

/// Extract the per-step feature vector (used by build_windows and the
/// long-run forecaster).
void step_features(const sim::RunRecord& run, int t, FeatureSet fs,
                   std::span<double> out);

struct ForecastConfig {
  ml::AttentionParams attention;
  int folds = 3;  ///< run-grouped CV folds
  std::uint64_t seed = 0xf0ca;

  ForecastConfig() {
    attention.d_model = 12;
    attention.d_hidden = 16;
    attention.epochs = 30;
    attention.batch = 32;
  }
};

struct ForecastEval {
  double mape_attention = 0.0;
  double mape_persistence = 0.0;  ///< k * mean of last m observed step times
  double mape_mean = 0.0;         ///< k * dataset mean step time
  std::size_t windows = 0;
};

/// Cross-validated forecasting MAPE for one (m, k, feature set) cell of
/// Fig. 8 / Fig. 10.
[[nodiscard]] ForecastEval evaluate_forecast(const sim::Dataset& ds,
                                             const WindowConfig& wcfg,
                                             const ForecastConfig& fcfg);

/// One evaluated cell of the Fig. 8 / Fig. 10 ablation grids.
struct ForecastGridCell {
  WindowConfig window;
  ForecastEval eval;
};

/// Evaluate a whole (m, k, feature-set) ablation grid. Cells are
/// independent and run as parallel tasks on the dfv::exec pool; the
/// result order matches `cells`, and every cell's numbers are identical
/// to evaluating it alone.
[[nodiscard]] std::vector<ForecastGridCell> evaluate_forecast_grid(
    const sim::Dataset& ds, std::span<const WindowConfig> cells,
    const ForecastConfig& fcfg);

/// Permutation feature importances of a forecaster trained on the full
/// dataset (Fig. 11).
[[nodiscard]] std::vector<double> forecast_feature_importance(const sim::Dataset& ds,
                                                              const WindowConfig& wcfg,
                                                              const ForecastConfig& fcfg);

/// Fig. 12: train on `train`, then forecast a long run in consecutive
/// segments of k steps using the previous m steps.
struct LongRunForecast {
  std::vector<double> observed;   ///< per segment: actual sum of k step times
  std::vector<double> predicted;  ///< per segment: forecast
  std::vector<int> segment_start; ///< first step index of each segment
  double mape = 0.0;
};

[[nodiscard]] LongRunForecast forecast_long_run(const sim::Dataset& train,
                                                const sim::RunRecord& long_run,
                                                const WindowConfig& wcfg,
                                                const ForecastConfig& fcfg);

}  // namespace dfv::analysis
