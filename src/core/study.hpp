// VariabilityStudy: the library's front door. One object owns a campaign
// configuration, lazily generates (or loads from cache) the six datasets,
// and exposes the paper's three analyses. Every bench binary and example
// builds on this API.
//
//   dfv::core::VariabilityStudy study;            // Cori-scale defaults
//   const auto& milc = study.dataset("MILC", 128);
//   auto blame = study.neighborhood("MILC", 128); // Table III
//   auto dev = study.deviation("MILC", 128);      // Fig. 9
//   auto fc = study.forecast("MILC", 128, {30, 40,
//                            dfv::analysis::FeatureSet::AppPlacementIoSys});
#pragma once

#include <optional>
#include <string>

#include "analysis/deviation.hpp"
#include "analysis/forecast.hpp"
#include "analysis/neighborhood.hpp"
#include "sim/campaign.hpp"

namespace dfv::core {

class VariabilityStudy {
 public:
  /// `cache_dir`: when non-empty, datasets are cached there on disk and
  /// reused by later studies with an identical configuration. The config
  /// is validated on construction (throws ContractError on nonsense).
  /// `repair_policy` governs what happens to degraded telemetry when the
  /// config injects faults (it is not consulted for clean campaigns).
  explicit VariabilityStudy(sim::CampaignConfig config = {}, std::string cache_dir = {},
                            faults::RepairPolicy repair_policy = faults::RepairPolicy::Repair);

  /// Construct straight from a fluent builder:
  ///   VariabilityStudy study(sim::CampaignConfig::cori().days(30).seed(7),
  ///                          "dfv_cache");
  explicit VariabilityStudy(sim::CampaignBuilder builder, std::string cache_dir = {},
                            faults::RepairPolicy repair_policy = faults::RepairPolicy::Repair);

  [[nodiscard]] const sim::CampaignConfig& config() const noexcept { return config_; }
  [[nodiscard]] faults::RepairPolicy repair_policy() const noexcept {
    return repair_policy_;
  }

  /// The campaign result (generated or loaded on first access). When the
  /// config injects faults, every dataset has already been passed through
  /// Dataset::repair with the study's policy by the time this returns.
  const sim::CampaignResult& campaign();
  [[nodiscard]] const sim::Dataset& dataset(const std::string& app, int nodes);

  /// Per-dataset repair outcomes (parallel to campaign().datasets; empty
  /// until the campaign has been materialized or when faults are off).
  [[nodiscard]] const std::vector<sim::RepairReport>& repair_reports() const noexcept {
    return repair_reports_;
  }

  /// Table III: neighborhood/blame analysis.
  [[nodiscard]] analysis::NeighborhoodResult neighborhood(const std::string& app,
                                                          int nodes, double tau = 1.0);

  /// Fig. 9: deviation prediction relevance scores + CV MAPE.
  [[nodiscard]] analysis::DeviationResult deviation(
      const std::string& app, int nodes, const analysis::DeviationConfig& cfg = {});

  /// Figs. 8/10: forecasting MAPE for one (m, k, feature-set) cell.
  [[nodiscard]] analysis::ForecastEval forecast(const std::string& app, int nodes,
                                                const analysis::WindowConfig& wcfg,
                                                const analysis::ForecastConfig& fcfg = {});

  /// Figs. 8/10: a whole (m, k, feature-set) ablation grid, evaluated
  /// cell-parallel on the dfv::exec pool.
  [[nodiscard]] std::vector<analysis::ForecastGridCell> forecast_grid(
      const std::string& app, int nodes, std::span<const analysis::WindowConfig> cells,
      const analysis::ForecastConfig& fcfg = {});

  /// Fig. 11: forecaster permutation feature importances.
  [[nodiscard]] std::vector<double> forecast_importance(
      const std::string& app, int nodes, const analysis::WindowConfig& wcfg,
      const analysis::ForecastConfig& fcfg = {});

  /// Fig. 12: generate one long instrumented run (outside the campaign)
  /// and forecast it in k-step segments with a model trained on the
  /// dataset. `steps` defaults to the paper's 620-step MILC job.
  [[nodiscard]] analysis::LongRunForecast long_run_forecast(
      int nodes = 128, int steps = 620, const analysis::WindowConfig& wcfg = {30, 40,
          analysis::FeatureSet::AppPlacementIoSys},
      const analysis::ForecastConfig& fcfg = {});

 private:
  sim::CampaignConfig config_;
  std::string cache_dir_;
  faults::RepairPolicy repair_policy_;
  std::optional<sim::CampaignResult> campaign_;
  std::vector<sim::RepairReport> repair_reports_;
};

}  // namespace dfv::core
