#include "core/study.hpp"

#include "common/check.hpp"
#include "common/log.hpp"

namespace dfv::core {

VariabilityStudy::VariabilityStudy(sim::CampaignConfig config, std::string cache_dir,
                                   faults::RepairPolicy repair_policy)
    : config_(std::move(config)),
      cache_dir_(std::move(cache_dir)),
      repair_policy_(repair_policy) {
  config_.validate();
}

VariabilityStudy::VariabilityStudy(sim::CampaignBuilder builder, std::string cache_dir,
                                   faults::RepairPolicy repair_policy)
    : VariabilityStudy(builder.build(), std::move(cache_dir), repair_policy) {}

const sim::CampaignResult& VariabilityStudy::campaign() {
  if (!campaign_) {
    campaign_ = cache_dir_.empty() ? sim::run_campaign(config_)
                                   : sim::run_campaign_cached(config_, cache_dir_);
    // Apply the degraded-data policy at the study boundary so every
    // analysis downstream sees repaired (or flagged) telemetry. Clean
    // campaigns skip the scan entirely.
    if (config_.faults.enabled()) {
      for (auto& ds : campaign_->datasets) {
        repair_reports_.push_back(ds.repair(repair_policy_));
        DFV_LOG_INFO("repair " << ds.spec.label() << ": "
                               << repair_reports_.back().summary());
      }
    }
  }
  return *campaign_;
}

const sim::Dataset& VariabilityStudy::dataset(const std::string& app, int nodes) {
  return campaign().dataset(app, nodes);
}

analysis::NeighborhoodResult VariabilityStudy::neighborhood(const std::string& app,
                                                            int nodes, double tau) {
  return analysis::analyze_neighborhood(dataset(app, nodes), tau);
}

analysis::DeviationResult VariabilityStudy::deviation(
    const std::string& app, int nodes, const analysis::DeviationConfig& cfg) {
  return analysis::analyze_deviation(dataset(app, nodes), cfg);
}

analysis::ForecastEval VariabilityStudy::forecast(const std::string& app, int nodes,
                                                  const analysis::WindowConfig& wcfg,
                                                  const analysis::ForecastConfig& fcfg) {
  return analysis::evaluate_forecast(dataset(app, nodes), wcfg, fcfg);
}

std::vector<analysis::ForecastGridCell> VariabilityStudy::forecast_grid(
    const std::string& app, int nodes, std::span<const analysis::WindowConfig> cells,
    const analysis::ForecastConfig& fcfg) {
  return analysis::evaluate_forecast_grid(dataset(app, nodes), cells, fcfg);
}

std::vector<double> VariabilityStudy::forecast_importance(
    const std::string& app, int nodes, const analysis::WindowConfig& wcfg,
    const analysis::ForecastConfig& fcfg) {
  return analysis::forecast_feature_importance(dataset(app, nodes), wcfg, fcfg);
}

analysis::LongRunForecast VariabilityStudy::long_run_forecast(
    int nodes, int steps, const analysis::WindowConfig& wcfg,
    const analysis::ForecastConfig& fcfg) {
  const sim::Dataset& train = dataset("MILC", nodes);

  // Generate the long production-style run on a fresh cluster seeded
  // differently from the campaign: "no data from this run was included in
  // training the model" (§V-C).
  sim::CampaignConfig cfg = config_;
  sim::ClusterParams cp = cfg.cluster;
  std::vector<sched::UserArchetype> users = sched::default_user_population(cfg.quiet_users);
  for (auto& u : users) {
    u.min_nodes = std::min(u.min_nodes, cfg.max_bg_job_nodes);
    u.max_nodes = std::min(u.max_nodes, cfg.max_bg_job_nodes);
  }
  sim::Cluster cluster(cfg.machine, cp, std::move(users),
                       hash_combine(cfg.seed, 0x106e6));
  cluster.slurm().advance_to(2.5 * 86400.0);  // warm into a busy regime

  const auto app = apps::make_milc_long(nodes, steps);

  // The paper's 620-step production run visibly suffered congestion
  // swings (Fig. 12's 380-620 s segments). Advance until a probe
  // placement actually sees network pressure so the forecaster has
  // variability to predict, bounded at five simulated days.
  for (double waited = 0.0; waited < 5.0 * 86400.0; waited += 7200.0) {
    const auto probe = cluster.slurm().start_instrumented_job("probe", nodes,
                                                              sched::kCampaignUserId);
    double slowdown = 0.0;
    if (probe) {
      const sched::Placement pl = cluster.slurm().placement_of(*probe);
      const sim::CongestionView v = cluster.congestion(pl.routers);
      // Gate on the channel MILC actually responds to (transit), so the
      // run's counter excursions are the kind the model saw co-varying
      // with time during training.
      const auto& c = app->coefficients();
      slowdown = c.rt_weight * (v.transit - 1.0);
      cluster.slurm().end_instrumented_job(*probe);
    }
    if (slowdown > 0.15) break;
    cluster.slurm().advance_to(cluster.slurm().now() + 7200.0);
    cluster.slurm().step_intensities(7200.0);
    cluster.invalidate_background();
  }
  const sim::RunRecord long_run = cluster.run_app(*app);
  DFV_LOG_INFO("long run: " << steps << " steps, " << long_run.total_time_s() / 60.0
                            << " minutes");
  return analysis::forecast_long_run(train, long_run, wcfg, fcfg);
}

}  // namespace dfv::core
