// dfv::api — the versioned session layer shared by the CLI and `dfv serve`.
//
// Every analysis the toolkit exposes is phrased as a request struct; a
// Session owns the resident state (a loaded campaign, trained GBR and
// attention models, window caches) and answers any request through one
// dispatch point:
//
//   api::Session session(api::SessionOptions{...});
//   api::Response r = session.handle(api::DeviationRequest{}.app("MILC").nodes(128));
//
// `handle` never throws: contract violations and internal failures come
// back as a structured ErrorResponse, so a server can report them over
// the wire and the CLI can re-raise them. Requests carry no session
// state; two sessions built from the same options answer every request
// bit-identically regardless of thread count or shard placement (the
// serving determinism contract builds on this).
//
// The wire codec for these structs lives in api/wire.hpp; the protocol
// version below is embedded in every serialized request and response and
// checked in the `dfv serve` handshake.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "analysis/deviation.hpp"
#include "analysis/forecast.hpp"
#include "analysis/neighborhood.hpp"
#include "common/check.hpp"

namespace dfv::api {

/// Wire/request schema version. Bump on any incompatible change to the
/// request/response structs or their encoding; the serve handshake and
/// every envelope carry it, and a mismatch yields ErrorResponse
/// (ErrorCode::VersionMismatch), never undefined decoding.
///
/// v2: request envelope gained [u64 request_id][u32 deadline_ms] between
/// the version and the tag (idempotent retries + server-side deadlines);
/// ErrorResponse gained retry_after_ms; StatsRequest/StatsResponse added.
inline constexpr std::uint32_t kApiVersion = 2;

// ---------------------------------------------------------------------------
// Requests. Each struct has fluent setters so call sites read like the
// CLI flags they replace; all fields have sensible defaults.
// ---------------------------------------------------------------------------

/// Summary of the resident campaign: one row per dataset, with repair
/// outcomes when the campaign injected faults.
struct CampaignSummaryRequest {};

/// Export every resident dataset as CSV into `dir` (CLI `campaign --out`).
struct ExportRequest {
  std::string dir;

  ExportRequest& out_dir(std::string v) { dir = std::move(v); return *this; }
};

/// Look up one run by (app, nodes, run index) — the serving hot path.
struct RunLookupRequest {
  std::string app_name = "MILC";
  int node_count = 128;
  std::uint32_t run_index = 0;

  RunLookupRequest& app(std::string v) { app_name = std::move(v); return *this; }
  RunLookupRequest& nodes(int v) { node_count = v; return *this; }
  RunLookupRequest& run(std::uint32_t v) { run_index = v; return *this; }
};

/// Table III: rank neighbor users by blame for slow runs.
struct NeighborhoodRequest {
  std::string app_name = "MILC";
  int node_count = 128;
  double tau = 1.0;

  NeighborhoodRequest& app(std::string v) { app_name = std::move(v); return *this; }
  NeighborhoodRequest& nodes(int v) { node_count = v; return *this; }
  NeighborhoodRequest& threshold(double v) { tau = v; return *this; }
};

/// Fig. 9: per-counter relevance + CV MAPE of deviation prediction.
struct DeviationRequest {
  std::string app_name = "MILC";
  int node_count = 128;

  DeviationRequest& app(std::string v) { app_name = std::move(v); return *this; }
  DeviationRequest& nodes(int v) { node_count = v; return *this; }
};

/// Point forecast — the serving hot path. Predict the total time of the
/// next `k` steps of run `run_index` from the `m` steps before `t`
/// (history window [t - m, t)), using a session-resident attention model
/// trained once per (app, nodes, m, k, feature set).
struct ForecastRequest {
  std::string app_name = "MILC";
  int node_count = 128;
  std::uint32_t run_index = 0;
  int t = 10;  ///< window center: history is [t - m, t)
  analysis::WindowConfig window{10, 20, analysis::FeatureSet::App};

  ForecastRequest& app(std::string v) { app_name = std::move(v); return *this; }
  ForecastRequest& nodes(int v) { node_count = v; return *this; }
  ForecastRequest& run(std::uint32_t v) { run_index = v; return *this; }
  ForecastRequest& center(int v) { t = v; return *this; }
  ForecastRequest& m(int v) { window.m = v; return *this; }
  ForecastRequest& k(int v) { window.k = v; return *this; }
  ForecastRequest& features(analysis::FeatureSet v) { window.features = v; return *this; }
};

/// Figs. 8/10, one cell: cross-validated forecasting MAPE.
struct ForecastEvalRequest {
  std::string app_name = "MILC";
  int node_count = 128;
  analysis::WindowConfig window{10, 20, analysis::FeatureSet::App};

  ForecastEvalRequest& app(std::string v) { app_name = std::move(v); return *this; }
  ForecastEvalRequest& nodes(int v) { node_count = v; return *this; }
  ForecastEvalRequest& m(int v) { window.m = v; return *this; }
  ForecastEvalRequest& k(int v) { window.k = v; return *this; }
  ForecastEvalRequest& features(analysis::FeatureSet v) {
    window.features = v;
    return *this;
  }
};

/// Figs. 8/10, the whole ablation grid (cell-parallel on the exec pool).
struct ForecastGridRequest {
  std::string app_name = "MILC";
  int node_count = 128;
  std::vector<analysis::WindowConfig> cells;

  ForecastGridRequest& app(std::string v) { app_name = std::move(v); return *this; }
  ForecastGridRequest& nodes(int v) { node_count = v; return *this; }
  ForecastGridRequest& cell(const analysis::WindowConfig& c) {
    cells.push_back(c);
    return *this;
  }
};

/// Describe the dragonfly topology (stateless; no campaign needed).
struct TopologyRequest {
  int groups = 0;  ///< 0 = Cori-scale, else a small machine with N groups

  TopologyRequest& group_count(int v) { groups = v; return *this; }
};

/// Live serving counters (connections, shed/evicted totals). Answered by
/// the server itself from its atomics — a bare Session knows nothing of
/// connections and answers all-zero. Keyless, so it is never forwarded
/// and works even when every shard is saturated.
struct StatsRequest {};

/// Packet-level engines on synthetic traffic (stateless).
struct SimulateRequest {
  int groups = 6;
  std::string pattern = "uniform";  ///< uniform | adversarial | hotspot
  std::string policy = "ugal";      ///< minimal | valiant | ugal
  double load = 0.3;
  int packets = 300;

  SimulateRequest& group_count(int v) { groups = v; return *this; }
  SimulateRequest& traffic(std::string v) { pattern = std::move(v); return *this; }
  SimulateRequest& routing(std::string v) { policy = std::move(v); return *this; }
  SimulateRequest& offered_load(double v) { load = v; return *this; }
  SimulateRequest& packet_count(int v) { packets = v; return *this; }
};

using Request =
    std::variant<CampaignSummaryRequest, ExportRequest, RunLookupRequest,
                 NeighborhoodRequest, DeviationRequest, ForecastRequest,
                 ForecastEvalRequest, ForecastGridRequest, TopologyRequest,
                 SimulateRequest, StatsRequest>;

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

enum class ErrorCode : std::uint32_t {
  Contract = 1,          ///< DFV_CHECK violation while handling the request
  BadRequest = 2,        ///< malformed/truncated wire payload
  VersionMismatch = 3,   ///< envelope version != kApiVersion
  Internal = 4,          ///< any other exception
  Overloaded = 5,        ///< shed by the admission gate; retry_after_ms is set
  DeadlineExceeded = 6,  ///< the envelope deadline expired server-side
  ShuttingDown = 7,      ///< server stopped before the response was ready
};

[[nodiscard]] const char* to_string(ErrorCode c) noexcept;

/// Structured failure. `message` is the full contract/what() text so the
/// CLI can re-raise it with identical wording.
struct ErrorResponse {
  ErrorCode code = ErrorCode::Internal;
  std::string message;
  /// Backoff hint, nonzero only for Overloaded: the server suggests the
  /// client wait at least this long before the retry.
  std::uint32_t retry_after_ms = 0;
};

struct CampaignSummaryRow {
  std::string label;
  std::uint32_t runs = 0;
  std::uint32_t steps_per_run = 0;
  // Repair outcomes (meaningful only when the campaign injected faults).
  std::uint32_t runs_dropped = 0;
  std::uint32_t bad_steps = 0;
  std::uint32_t imputed_steps = 0;
  std::uint32_t wrapped_cells = 0;
  std::uint32_t profiles_missing = 0;
};

struct CampaignSummaryResponse {
  bool faulted = false;  ///< true when repair reports are populated
  std::vector<CampaignSummaryRow> rows;
};

struct ExportResponse {
  struct Item {
    std::string path;
    bool ok = false;
  };
  std::vector<Item> items;
};

struct RunLookupResponse {
  std::int32_t job_id = 0;
  double submit_time_s = 0.0;
  double start_time_s = 0.0;
  double end_time_s = 0.0;
  double total_time_s = 0.0;
  std::int32_t num_routers = 0;
  std::int32_t num_groups = 0;
  std::uint32_t steps = 0;
  bool profile_missing = false;
};

struct NeighborhoodResponse {
  analysis::NeighborhoodResult result;
};

struct DeviationResponse {
  analysis::DeviationResult result;
};

struct ForecastResponse {
  double predicted = 0.0;    ///< attention forecast of the next k steps' total
  double persistence = 0.0;  ///< baseline: k * mean(last m observed step times)
  std::uint32_t model_windows = 0;  ///< training windows behind the resident model
};

struct ForecastEvalResponse {
  analysis::ForecastEval eval;
};

struct ForecastGridResponse {
  std::vector<analysis::ForecastGridCell> cells;
};

struct TopologyResponse {
  std::string description;
};

struct SimulateResponse {
  struct Engine {
    std::string name;
    bool deadlocked = false;
    double mean_latency_s = 0.0;
    double p99_latency_s = 0.0;
    double mean_hops = 0.0;
    double throughput_bps = 0.0;
  };
  std::string pattern;
  std::string policy;
  double load = 0.0;
  std::vector<Engine> engines;
};

/// Serving counters (see StatsRequest). All totals are since start().
struct StatsResponse {
  std::uint32_t shards = 0;
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t local = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t shed_overload = 0;     ///< requests refused by the admission gate
  std::uint64_t shed_deadline = 0;     ///< requests answered DeadlineExceeded
  std::uint64_t evicted_stalled = 0;   ///< connections dropped by I/O timeouts
  std::uint64_t shutdown_aborted = 0;  ///< requests answered ShuttingDown at drain expiry
};

using Response =
    std::variant<ErrorResponse, CampaignSummaryResponse, ExportResponse,
                 RunLookupResponse, NeighborhoodResponse, DeviationResponse,
                 ForecastResponse, ForecastEvalResponse, ForecastGridResponse,
                 TopologyResponse, SimulateResponse, StatsResponse>;

/// Re-raise an ErrorResponse as the exception it came from: Contract ->
/// ContractError (so CLI error paths keep their exact pre-api wording and
/// exit codes), anything else -> std::runtime_error.
[[noreturn]] void rethrow(const ErrorResponse& err);

/// Parse helper shared by the CLI and SimulateRequest handling; throws
/// ContractError on an unknown name.
[[nodiscard]] analysis::FeatureSet parse_feature_set(const std::string& name);

}  // namespace dfv::api
