// dfv::api::Session — resident query state behind Session::handle().
//
// A Session owns (or shares) one loaded campaign plus every model the
// requests need: deviation GBR/RFE results, forecast evaluations, and
// the attention forecasters behind the point-forecast hot path, all
// memoized after first use. The CLI builds one Session per invocation;
// `dfv serve` builds one Session per shard, all sharing one immutable
// ResidentCampaign, so N shards hold one copy of the data and N
// independent (shard-owned, unsynchronized) model caches.
//
// Determinism: handling a request mutates only the session's own caches,
// and every cached artifact is produced by the deterministic analysis /
// ml layers — so any two sessions over the same options answer any
// request sequence bit-identically. This is the property that lets
// test_serve demand byte-identical wire payloads from 1-shard and
// 8-shard servers.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "analysis/window_cache.hpp"
#include "api/api.hpp"
#include "sim/campaign.hpp"

namespace dfv::api {

/// How to build (or find in a cache directory) the resident campaign.
struct SessionOptions {
  sim::CampaignConfig config;
  std::string cache_dir;
  faults::RepairPolicy repair = faults::RepairPolicy::Repair;
  /// Cache entry format: Store opens resident campaigns by mmap (large
  /// campaigns stay off-heap until a dataset is materialized); Auto
  /// prefers an existing store entry and otherwise picks by size.
  sim::CacheFormat cache_format = sim::CacheFormat::Auto;
};

/// One campaign loaded into memory, repaired per policy, then immutable.
/// Shards of a server share a single instance read-only.
class ResidentCampaign {
 public:
  /// Generate (or load from `opt.cache_dir`) and repair the campaign.
  /// Validates the config; throws ContractError on nonsense.
  [[nodiscard]] static std::shared_ptr<const ResidentCampaign> load(
      const SessionOptions& opt);

  [[nodiscard]] const sim::CampaignConfig& config() const noexcept { return config_; }
  [[nodiscard]] const sim::CampaignResult& result() const noexcept { return result_; }
  /// Per-dataset repair outcomes (empty when faults are off).
  [[nodiscard]] const std::vector<sim::RepairReport>& repair_reports() const noexcept {
    return repair_reports_;
  }
  [[nodiscard]] const sim::Dataset& dataset(const std::string& app, int nodes) const {
    return result_.dataset(app, nodes);
  }

 private:
  ResidentCampaign() = default;
  sim::CampaignConfig config_;
  sim::CampaignResult result_;
  std::vector<sim::RepairReport> repair_reports_;
};

class Session {
 public:
  /// A session owning its campaign (loaded lazily on the first request
  /// that needs one — stateless requests never pay for it).
  explicit Session(SessionOptions opt);

  /// A session sharing an already-loaded campaign (the server shard
  /// path). `campaign` may be null, in which case it loads lazily.
  Session(SessionOptions opt, std::shared_ptr<const ResidentCampaign> campaign);

  // Out-of-line: the cache values are incomplete types here.
  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;

  [[nodiscard]] const SessionOptions& options() const noexcept { return opt_; }

  /// Answer any request. Never throws: a ContractError surfaces as
  /// ErrorResponse{Contract}, anything else as ErrorResponse{Internal}.
  [[nodiscard]] Response handle(const Request& req);

  /// The resident campaign, loading it on first use.
  [[nodiscard]] const ResidentCampaign& campaign();

 private:
  struct ResidentForecaster;

  [[nodiscard]] Response dispatch(const Request& req);
  [[nodiscard]] Response on(const CampaignSummaryRequest& q);
  [[nodiscard]] Response on(const ExportRequest& q);
  [[nodiscard]] Response on(const RunLookupRequest& q);
  [[nodiscard]] Response on(const NeighborhoodRequest& q);
  [[nodiscard]] Response on(const DeviationRequest& q);
  [[nodiscard]] Response on(const ForecastRequest& q);
  [[nodiscard]] Response on(const ForecastEvalRequest& q);
  [[nodiscard]] Response on(const ForecastGridRequest& q);
  [[nodiscard]] Response on(const TopologyRequest& q);
  [[nodiscard]] Response on(const SimulateRequest& q);
  [[nodiscard]] Response on(const StatsRequest& q);

  [[nodiscard]] const sim::Dataset& dataset(const std::string& app, int nodes);
  /// Per-dataset step-feature tables, built once and reused by every
  /// forecast request against that dataset.
  [[nodiscard]] const analysis::StepFeatureCache& feature_cache(const std::string& app,
                                                                int nodes);
  /// The resident attention model for one (app, nodes, window) key,
  /// trained on first use.
  [[nodiscard]] const ResidentForecaster& forecaster(const std::string& app, int nodes,
                                                     const analysis::WindowConfig& wcfg);

  SessionOptions opt_;
  std::shared_ptr<const ResidentCampaign> campaign_;

  // Model/result caches, keyed by deterministic strings. Session-owned
  // and unsynchronized: in the server each shard has its own.
  std::map<std::string, analysis::StepFeatureCache> feature_caches_;
  std::map<std::string, std::unique_ptr<ResidentForecaster>> forecasters_;
  std::map<std::string, analysis::DeviationResult> deviation_cache_;
  std::map<std::string, analysis::ForecastEval> forecast_eval_cache_;
};

/// Server-side request path: decode `bytes`, dispatch on `session`,
/// encode the result. A malformed payload becomes ErrorResponse
/// {BadRequest} and a version mismatch ErrorResponse{VersionMismatch};
/// the return value is always exactly one encoded Response.
[[nodiscard]] std::string handle_encoded(Session& session, std::string_view bytes);

}  // namespace dfv::api
