#include "api/wire.hpp"

#include <bit>
#include <cstring>

namespace dfv::api {

namespace {

// Tags are wire contract: append-only, never renumber.
enum class ReqTag : std::uint8_t {
  CampaignSummary = 1,
  Export = 2,
  RunLookup = 3,
  Neighborhood = 4,
  Deviation = 5,
  Forecast = 6,
  ForecastEval = 7,
  ForecastGrid = 8,
  Topology = 9,
  Simulate = 10,
  Stats = 11,
};

enum class RespTag : std::uint8_t {
  Error = 0,
  CampaignSummary = 1,
  Export = 2,
  RunLookup = 3,
  Neighborhood = 4,
  Deviation = 5,
  Forecast = 6,
  ForecastEval = 7,
  ForecastGrid = 8,
  Topology = 9,
  Simulate = 10,
  Stats = 11,
};

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(char(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(char((v >> (8 * i)) & 0xff));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(char((v >> (8 * i)) & 0xff));
  }
  void i32(std::int32_t v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u32(std::uint32_t(s.size()));
    buf_.append(s);
  }
  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& element) {
    u32(std::uint32_t(v.size()));
    for (const T& e : v) element(e);
  }
  void doubles(const std::vector<double>& v) {
    vec(v, [&](double d) { f64(d); });
  }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Checked cursor over an encoded buffer; every read validates bounds.
class Reader {
 public:
  explicit Reader(std::string_view b) : b_(b) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return std::uint8_t(b_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(std::uint8_t(b_[pos_++])) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(std::uint8_t(b_[pos_++])) << (8 * i);
    return v;
  }
  [[nodiscard]] std::int32_t i32() { return std::bit_cast<std::int32_t>(u32()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] bool boolean() { return u8() != 0; }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(b_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  /// Element count of a vector; bounded so a corrupt length cannot drive
  /// a multi-gigabyte allocation before the per-element reads fail.
  [[nodiscard]] std::uint32_t count() {
    const std::uint32_t n = u32();
    DFV_CHECK_MSG(std::size_t(n) <= b_.size(), "wire: element count exceeds buffer");
    return n;
  }
  [[nodiscard]] std::vector<double> doubles() {
    const std::uint32_t n = count();
    std::vector<double> v(n);
    for (auto& d : v) d = f64();
    return v;
  }
  void done() const {
    DFV_CHECK_MSG(pos_ == b_.size(), "wire: trailing bytes after payload");
  }

 private:
  void need(std::size_t n) const {
    DFV_CHECK_MSG(pos_ + n <= b_.size(), "wire: truncated buffer");
  }
  std::string_view b_;
  std::size_t pos_ = 0;
};

void check_version(Reader& r) {
  const std::uint32_t v = r.u32();
  if (v != kApiVersion)
    throw VersionError(v, "wire: protocol version " + std::to_string(v) +
                              " is not the supported version " +
                              std::to_string(kApiVersion));
}

// ---- WindowConfig ----------------------------------------------------------

void put_window(Writer& w, const analysis::WindowConfig& c) {
  w.i32(c.m);
  w.i32(c.k);
  w.u8(std::uint8_t(enum_int(c.features)));
}

[[nodiscard]] analysis::WindowConfig get_window(Reader& r) {
  analysis::WindowConfig c;
  c.m = r.i32();
  c.k = r.i32();
  const std::uint8_t fs = r.u8();
  DFV_CHECK_MSG(fs <= std::uint8_t(enum_int(analysis::FeatureSet::AppPlacementIoSys)),
                "wire: unknown feature-set code " << int(fs));
  c.features = analysis::FeatureSet(fs);
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

std::string encode_request(const Request& req) { return encode_request(req, {}); }

// dfv-lint: allow(contract): any in-memory Request encodes; decode validates
std::string encode_request(const Request& req, const RequestMeta& meta) {
  Writer w;
  w.u32(kApiVersion);
  w.u64(meta.request_id);
  w.u32(meta.deadline_ms);
  std::visit(
      [&](const auto& q) {
        using T = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<T, CampaignSummaryRequest>) {
          w.u8(std::uint8_t(ReqTag::CampaignSummary));
        } else if constexpr (std::is_same_v<T, ExportRequest>) {
          w.u8(std::uint8_t(ReqTag::Export));
          w.str(q.dir);
        } else if constexpr (std::is_same_v<T, RunLookupRequest>) {
          w.u8(std::uint8_t(ReqTag::RunLookup));
          w.str(q.app_name);
          w.i32(q.node_count);
          w.u32(q.run_index);
        } else if constexpr (std::is_same_v<T, NeighborhoodRequest>) {
          w.u8(std::uint8_t(ReqTag::Neighborhood));
          w.str(q.app_name);
          w.i32(q.node_count);
          w.f64(q.tau);
        } else if constexpr (std::is_same_v<T, DeviationRequest>) {
          w.u8(std::uint8_t(ReqTag::Deviation));
          w.str(q.app_name);
          w.i32(q.node_count);
        } else if constexpr (std::is_same_v<T, ForecastRequest>) {
          w.u8(std::uint8_t(ReqTag::Forecast));
          w.str(q.app_name);
          w.i32(q.node_count);
          w.u32(q.run_index);
          w.i32(q.t);
          put_window(w, q.window);
        } else if constexpr (std::is_same_v<T, ForecastEvalRequest>) {
          w.u8(std::uint8_t(ReqTag::ForecastEval));
          w.str(q.app_name);
          w.i32(q.node_count);
          put_window(w, q.window);
        } else if constexpr (std::is_same_v<T, ForecastGridRequest>) {
          w.u8(std::uint8_t(ReqTag::ForecastGrid));
          w.str(q.app_name);
          w.i32(q.node_count);
          w.vec(q.cells, [&](const analysis::WindowConfig& c) { put_window(w, c); });
        } else if constexpr (std::is_same_v<T, TopologyRequest>) {
          w.u8(std::uint8_t(ReqTag::Topology));
          w.i32(q.groups);
        } else if constexpr (std::is_same_v<T, SimulateRequest>) {
          w.u8(std::uint8_t(ReqTag::Simulate));
          w.i32(q.groups);
          w.str(q.pattern);
          w.str(q.policy);
          w.f64(q.load);
          w.i32(q.packets);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          w.u8(std::uint8_t(ReqTag::Stats));
        }
      },
      req);
  return w.take();
}

Request decode_request(std::string_view bytes) {
  return decode_request_envelope(bytes).request;
}

RequestEnvelope decode_request_envelope(std::string_view bytes) {
  Reader r(bytes);
  check_version(r);
  RequestEnvelope env;
  env.meta.request_id = r.u64();
  env.meta.deadline_ms = r.u32();
  const auto tag = ReqTag(r.u8());
  Request out;
  switch (tag) {
    case ReqTag::CampaignSummary:
      out = CampaignSummaryRequest{};
      break;
    case ReqTag::Export: {
      ExportRequest q;
      q.dir = r.str();
      out = q;
      break;
    }
    case ReqTag::RunLookup: {
      RunLookupRequest q;
      q.app_name = r.str();
      q.node_count = r.i32();
      q.run_index = r.u32();
      out = q;
      break;
    }
    case ReqTag::Neighborhood: {
      NeighborhoodRequest q;
      q.app_name = r.str();
      q.node_count = r.i32();
      q.tau = r.f64();
      out = q;
      break;
    }
    case ReqTag::Deviation: {
      DeviationRequest q;
      q.app_name = r.str();
      q.node_count = r.i32();
      out = q;
      break;
    }
    case ReqTag::Forecast: {
      ForecastRequest q;
      q.app_name = r.str();
      q.node_count = r.i32();
      q.run_index = r.u32();
      q.t = r.i32();
      q.window = get_window(r);
      out = q;
      break;
    }
    case ReqTag::ForecastEval: {
      ForecastEvalRequest q;
      q.app_name = r.str();
      q.node_count = r.i32();
      q.window = get_window(r);
      out = q;
      break;
    }
    case ReqTag::ForecastGrid: {
      ForecastGridRequest q;
      q.app_name = r.str();
      q.node_count = r.i32();
      const std::uint32_t n = r.count();
      q.cells.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) q.cells.push_back(get_window(r));
      out = q;
      break;
    }
    case ReqTag::Topology: {
      TopologyRequest q;
      q.groups = r.i32();
      out = q;
      break;
    }
    case ReqTag::Simulate: {
      SimulateRequest q;
      q.groups = r.i32();
      q.pattern = r.str();
      q.policy = r.str();
      q.load = r.f64();
      q.packets = r.i32();
      out = q;
      break;
    }
    case ReqTag::Stats:
      out = StatsRequest{};
      break;
    default:
      DFV_CHECK_MSG(false, "wire: unknown request tag " << int(tag));
  }
  r.done();
  env.request = std::move(out);
  return env;
}

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

// dfv-lint: allow(contract): any in-memory Response encodes; decode validates
std::string encode_response(const Response& resp) {
  Writer w;
  w.u32(kApiVersion);
  std::visit(
      [&](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, ErrorResponse>) {
          w.u8(std::uint8_t(RespTag::Error));
          w.u32(std::uint32_t(p.code));
          w.str(p.message);
          w.u32(p.retry_after_ms);
        } else if constexpr (std::is_same_v<T, CampaignSummaryResponse>) {
          w.u8(std::uint8_t(RespTag::CampaignSummary));
          w.boolean(p.faulted);
          w.vec(p.rows, [&](const CampaignSummaryRow& row) {
            w.str(row.label);
            w.u32(row.runs);
            w.u32(row.steps_per_run);
            w.u32(row.runs_dropped);
            w.u32(row.bad_steps);
            w.u32(row.imputed_steps);
            w.u32(row.wrapped_cells);
            w.u32(row.profiles_missing);
          });
        } else if constexpr (std::is_same_v<T, ExportResponse>) {
          w.u8(std::uint8_t(RespTag::Export));
          w.vec(p.items, [&](const ExportResponse::Item& it) {
            w.str(it.path);
            w.boolean(it.ok);
          });
        } else if constexpr (std::is_same_v<T, RunLookupResponse>) {
          w.u8(std::uint8_t(RespTag::RunLookup));
          w.i32(p.job_id);
          w.f64(p.submit_time_s);
          w.f64(p.start_time_s);
          w.f64(p.end_time_s);
          w.f64(p.total_time_s);
          w.i32(p.num_routers);
          w.i32(p.num_groups);
          w.u32(p.steps);
          w.boolean(p.profile_missing);
        } else if constexpr (std::is_same_v<T, NeighborhoodResponse>) {
          w.u8(std::uint8_t(RespTag::Neighborhood));
          w.f64(p.result.tau);
          w.f64(p.result.mean_total_time);
          w.f64(p.result.optimal_fraction);
          w.vec(p.result.ranked, [&](const analysis::UserScore& s) {
            w.i32(s.user_id);
            w.f64(s.mi);
            w.f64(s.presence);
            w.f64(s.optimal_when_present);
            w.f64(s.optimal_overall);
          });
        } else if constexpr (std::is_same_v<T, DeviationResponse>) {
          w.u8(std::uint8_t(RespTag::Deviation));
          w.doubles(p.result.relevance);
          w.doubles(p.result.survival);
          w.f64(p.result.cv_mape);
          w.f64(p.result.cv_mape_linear);
          w.u64(p.result.samples);
        } else if constexpr (std::is_same_v<T, ForecastResponse>) {
          w.u8(std::uint8_t(RespTag::Forecast));
          w.f64(p.predicted);
          w.f64(p.persistence);
          w.u32(p.model_windows);
        } else if constexpr (std::is_same_v<T, ForecastEvalResponse>) {
          w.u8(std::uint8_t(RespTag::ForecastEval));
          w.f64(p.eval.mape_attention);
          w.f64(p.eval.mape_persistence);
          w.f64(p.eval.mape_mean);
          w.u64(p.eval.windows);
        } else if constexpr (std::is_same_v<T, ForecastGridResponse>) {
          w.u8(std::uint8_t(RespTag::ForecastGrid));
          w.vec(p.cells, [&](const analysis::ForecastGridCell& c) {
            put_window(w, c.window);
            w.f64(c.eval.mape_attention);
            w.f64(c.eval.mape_persistence);
            w.f64(c.eval.mape_mean);
            w.u64(c.eval.windows);
          });
        } else if constexpr (std::is_same_v<T, TopologyResponse>) {
          w.u8(std::uint8_t(RespTag::Topology));
          w.str(p.description);
        } else if constexpr (std::is_same_v<T, SimulateResponse>) {
          w.u8(std::uint8_t(RespTag::Simulate));
          w.str(p.pattern);
          w.str(p.policy);
          w.f64(p.load);
          w.vec(p.engines, [&](const SimulateResponse::Engine& e) {
            w.str(e.name);
            w.boolean(e.deadlocked);
            w.f64(e.mean_latency_s);
            w.f64(e.p99_latency_s);
            w.f64(e.mean_hops);
            w.f64(e.throughput_bps);
          });
        } else if constexpr (std::is_same_v<T, StatsResponse>) {
          w.u8(std::uint8_t(RespTag::Stats));
          w.u32(p.shards);
          w.u64(p.connections);
          w.u64(p.requests);
          w.u64(p.local);
          w.u64(p.forwarded);
          w.u64(p.shed_overload);
          w.u64(p.shed_deadline);
          w.u64(p.evicted_stalled);
          w.u64(p.shutdown_aborted);
        }
      },
      resp);
  return w.take();
}

Response decode_response(std::string_view bytes) {
  Reader r(bytes);
  check_version(r);
  const auto tag = RespTag(r.u8());
  Response out;
  switch (tag) {
    case RespTag::Error: {
      ErrorResponse p;
      const std::uint32_t code = r.u32();
      DFV_CHECK_MSG(code >= std::uint32_t(enum_int(ErrorCode::Contract)) &&
                        code <= std::uint32_t(enum_int(ErrorCode::ShuttingDown)),
                    "wire: unknown error code " << code);
      p.code = ErrorCode(code);
      p.message = r.str();
      p.retry_after_ms = r.u32();
      out = p;
      break;
    }
    case RespTag::CampaignSummary: {
      CampaignSummaryResponse p;
      p.faulted = r.boolean();
      const std::uint32_t n = r.count();
      p.rows.resize(n);
      for (auto& row : p.rows) {
        row.label = r.str();
        row.runs = r.u32();
        row.steps_per_run = r.u32();
        row.runs_dropped = r.u32();
        row.bad_steps = r.u32();
        row.imputed_steps = r.u32();
        row.wrapped_cells = r.u32();
        row.profiles_missing = r.u32();
      }
      out = p;
      break;
    }
    case RespTag::Export: {
      ExportResponse p;
      const std::uint32_t n = r.count();
      p.items.resize(n);
      for (auto& it : p.items) {
        it.path = r.str();
        it.ok = r.boolean();
      }
      out = p;
      break;
    }
    case RespTag::RunLookup: {
      RunLookupResponse p;
      p.job_id = r.i32();
      p.submit_time_s = r.f64();
      p.start_time_s = r.f64();
      p.end_time_s = r.f64();
      p.total_time_s = r.f64();
      p.num_routers = r.i32();
      p.num_groups = r.i32();
      p.steps = r.u32();
      p.profile_missing = r.boolean();
      out = p;
      break;
    }
    case RespTag::Neighborhood: {
      NeighborhoodResponse p;
      p.result.tau = r.f64();
      p.result.mean_total_time = r.f64();
      p.result.optimal_fraction = r.f64();
      const std::uint32_t n = r.count();
      p.result.ranked.resize(n);
      for (auto& s : p.result.ranked) {
        s.user_id = r.i32();
        s.mi = r.f64();
        s.presence = r.f64();
        s.optimal_when_present = r.f64();
        s.optimal_overall = r.f64();
      }
      out = p;
      break;
    }
    case RespTag::Deviation: {
      DeviationResponse p;
      p.result.relevance = r.doubles();
      p.result.survival = r.doubles();
      p.result.cv_mape = r.f64();
      p.result.cv_mape_linear = r.f64();
      p.result.samples = std::size_t(r.u64());
      out = p;
      break;
    }
    case RespTag::Forecast: {
      ForecastResponse p;
      p.predicted = r.f64();
      p.persistence = r.f64();
      p.model_windows = r.u32();
      out = p;
      break;
    }
    case RespTag::ForecastEval: {
      ForecastEvalResponse p;
      p.eval.mape_attention = r.f64();
      p.eval.mape_persistence = r.f64();
      p.eval.mape_mean = r.f64();
      p.eval.windows = std::size_t(r.u64());
      out = p;
      break;
    }
    case RespTag::ForecastGrid: {
      ForecastGridResponse p;
      const std::uint32_t n = r.count();
      p.cells.resize(n);
      for (auto& c : p.cells) {
        c.window = get_window(r);
        c.eval.mape_attention = r.f64();
        c.eval.mape_persistence = r.f64();
        c.eval.mape_mean = r.f64();
        c.eval.windows = std::size_t(r.u64());
      }
      out = p;
      break;
    }
    case RespTag::Topology: {
      TopologyResponse p;
      p.description = r.str();
      out = p;
      break;
    }
    case RespTag::Simulate: {
      SimulateResponse p;
      p.pattern = r.str();
      p.policy = r.str();
      p.load = r.f64();
      const std::uint32_t n = r.count();
      p.engines.resize(n);
      for (auto& e : p.engines) {
        e.name = r.str();
        e.deadlocked = r.boolean();
        e.mean_latency_s = r.f64();
        e.p99_latency_s = r.f64();
        e.mean_hops = r.f64();
        e.throughput_bps = r.f64();
      }
      out = p;
      break;
    }
    case RespTag::Stats: {
      StatsResponse p;
      p.shards = r.u32();
      p.connections = r.u64();
      p.requests = r.u64();
      p.local = r.u64();
      p.forwarded = r.u64();
      p.shed_overload = r.u64();
      p.shed_deadline = r.u64();
      p.evicted_stalled = r.u64();
      p.shutdown_aborted = r.u64();
      out = p;
      break;
    }
    default:
      DFV_CHECK_MSG(false, "wire: unknown response tag " << int(tag));
  }
  r.done();
  return out;
}

}  // namespace dfv::api
