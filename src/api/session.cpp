#include "api/session.hpp"

#include <cmath>

#include "api/wire.hpp"
#include "common/log.hpp"
#include "ml/attention.hpp"
#include "ml/compiled.hpp"
#include "net/packet_sim.hpp"
#include "net/topology.hpp"
#include "net/vc_sim.hpp"

namespace dfv::api {

const char* to_string(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::Contract: return "contract";
    case ErrorCode::BadRequest: return "bad-request";
    case ErrorCode::VersionMismatch: return "version-mismatch";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::DeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::ShuttingDown: return "shutting-down";
  }
  return "unknown";
}

void rethrow(const ErrorResponse& err) {
  if (err.code == ErrorCode::Contract) throw ContractError(err.message);
  throw std::runtime_error(err.message);
}

analysis::FeatureSet parse_feature_set(const std::string& name) {
  for (auto cand : {analysis::FeatureSet::App, analysis::FeatureSet::AppPlacement,
                    analysis::FeatureSet::AppPlacementIo,
                    analysis::FeatureSet::AppPlacementIoSys})
    if (name == analysis::to_string(cand)) return cand;
  DFV_CHECK_MSG(false, "unknown feature set '"
                           << name
                           << "' (expected app | app+placement | app+placement+io | "
                              "app+placement+io+sys)");
}

// ---------------------------------------------------------------------------
// ResidentCampaign.
// ---------------------------------------------------------------------------

std::shared_ptr<const ResidentCampaign> ResidentCampaign::load(
    const SessionOptions& opt) {
  opt.config.validate();
  auto rc = std::shared_ptr<ResidentCampaign>(new ResidentCampaign());
  rc->config_ = opt.config;
  rc->result_ = opt.cache_dir.empty()
                    ? sim::run_campaign(opt.config)
                    : sim::run_campaign_cached(opt.config, opt.cache_dir, opt.cache_format);
  // Apply the degraded-data policy at the load boundary so every request
  // downstream sees repaired (or flagged) telemetry, exactly like
  // core::VariabilityStudy does for the batch pipeline.
  if (opt.config.faults.enabled()) {
    for (auto& ds : rc->result_.datasets) {
      rc->repair_reports_.push_back(ds.repair(opt.repair));
      DFV_LOG_INFO("repair " << ds.spec.label() << ": "
                             << rc->repair_reports_.back().summary());
    }
  }
  return rc;
}

// ---------------------------------------------------------------------------
// Session.
// ---------------------------------------------------------------------------

/// A trained attention model pinned in the session, plus the training
/// metadata the response reports. Compiling at build time moves the
/// operand packing out of the per-request path; the scratch arena makes
/// a steady-state forecast allocation-free. Requests on one session are
/// serialized (each serve shard owns its session), so the mutable
/// scratch is only ever touched by one request at a time.
struct Session::ResidentForecaster {
  ml::AttentionForecaster model;
  ml::CompiledAttention compiled;
  std::uint32_t windows = 0;
  mutable ml::CompiledAttention::Scratch scratch;

  ResidentForecaster(ml::AttentionForecaster m, std::uint32_t w)
      : model(std::move(m)), compiled(model.compile()), windows(w) {}
};

Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

Session::Session(SessionOptions opt) : Session(std::move(opt), nullptr) {}

Session::Session(SessionOptions opt, std::shared_ptr<const ResidentCampaign> campaign)
    : opt_(std::move(opt)), campaign_(std::move(campaign)) {
  opt_.config.validate();
}

const ResidentCampaign& Session::campaign() {
  if (!campaign_) campaign_ = ResidentCampaign::load(opt_);
  return *campaign_;
}

// Error boundary: per-request validation lives in the on() handlers and
// the analysis layer; this frame only maps exceptions to responses.
// dfv-lint: allow(contract): the on() handlers own the DFV_CHECK validation
Response Session::handle(const Request& req) {
  try {
    return dispatch(req);
  } catch (const ContractError& e) {
    return ErrorResponse{ErrorCode::Contract, e.what()};
  } catch (const std::exception& e) {
    return ErrorResponse{ErrorCode::Internal, e.what()};
  }
}

// dfv-lint: allow(contract): pure fan-out; each on() overload validates
Response Session::dispatch(const Request& req) {
  return std::visit([&](const auto& q) { return on(q); }, req);
}

const sim::Dataset& Session::dataset(const std::string& app, int nodes) {
  return campaign().dataset(app, nodes);
}

const analysis::StepFeatureCache& Session::feature_cache(const std::string& app,
                                                         int nodes) {
  DFV_CHECK_MSG(nodes > 0, "node count must be positive");
  const std::string key = app + "/" + std::to_string(nodes);
  auto it = feature_caches_.find(key);
  if (it == feature_caches_.end())
    it = feature_caches_.emplace(key, analysis::StepFeatureCache(dataset(app, nodes)))
             .first;
  return it->second;
}

const Session::ResidentForecaster& Session::forecaster(
    const std::string& app, int nodes, const analysis::WindowConfig& wcfg) {
  DFV_CHECK_MSG(wcfg.m >= 1 && wcfg.k >= 1, "forecast window needs m >= 1 and k >= 1");
  const std::string key = app + "/" + std::to_string(nodes) + "/" +
                          std::to_string(wcfg.m) + "/" + std::to_string(wcfg.k) + "/" +
                          analysis::to_string(wcfg.features);
  auto it = forecasters_.find(key);
  if (it == forecasters_.end()) {
    const sim::Dataset& ds = dataset(app, nodes);
    const analysis::StepFeatureCache& cache = feature_cache(app, nodes);
    const analysis::WindowIndex index =
        analysis::build_window_index(ds, cache, wcfg.m, wcfg.k);
    const analysis::WindowViews views =
        analysis::make_window_views(cache, index, wcfg.features);
    const analysis::ForecastConfig fcfg;
    ml::AttentionForecaster model(wcfg.m, analysis::feature_count(wcfg.features),
                                  fcfg.attention);
    model.fit(views.all(), index.y);
    it = forecasters_
             .emplace(key, std::make_unique<ResidentForecaster>(
                               std::move(model), std::uint32_t(index.size())))
             .first;
  }
  return *it->second;
}

// dfv-lint: allow(contract): the request carries no inputs to validate
Response Session::on(const CampaignSummaryRequest&) {
  const ResidentCampaign& c = campaign();
  CampaignSummaryResponse resp;
  resp.faulted = !c.repair_reports().empty();
  for (std::size_t i = 0; i < c.result().datasets.size(); ++i) {
    const sim::Dataset& ds = c.result().datasets[i];
    CampaignSummaryRow row;
    row.label = ds.spec.label();
    row.runs = std::uint32_t(ds.num_runs());
    row.steps_per_run = std::uint32_t(ds.steps_per_run());
    if (resp.faulted) {
      const sim::RepairReport& rep = c.repair_reports()[i];
      row.runs_dropped = std::uint32_t(rep.runs_dropped);
      row.bad_steps = std::uint32_t(rep.bad_steps);
      row.imputed_steps = std::uint32_t(rep.imputed_steps);
      row.wrapped_cells = std::uint32_t(rep.wrapped_cells);
      row.profiles_missing = std::uint32_t(rep.profiles_missing);
    }
    resp.rows.push_back(std::move(row));
  }
  return resp;
}

Response Session::on(const ExportRequest& q) {
  DFV_CHECK_MSG(!q.dir.empty(), "export needs a destination directory");
  ExportResponse resp;
  for (const sim::Dataset& ds : campaign().result().datasets) {
    ExportResponse::Item item;
    item.path = q.dir + "/" + ds.spec.label() + ".csv";
    item.ok = sim::save_dataset(ds, item.path);
    resp.items.push_back(std::move(item));
  }
  return resp;
}

Response Session::on(const RunLookupRequest& q) {
  const sim::Dataset& ds = dataset(q.app_name, q.node_count);
  DFV_CHECK_MSG(std::size_t(q.run_index) < ds.num_runs(),
                "run index " << q.run_index << " out of range for " << ds.spec.label()
                             << " (" << ds.num_runs() << " runs)");
  const sim::RunRecord& run = ds.runs[q.run_index];
  RunLookupResponse resp;
  resp.job_id = run.job_id;
  resp.submit_time_s = run.submit_time_s;
  resp.start_time_s = run.start_time_s;
  resp.end_time_s = run.end_time_s;
  resp.total_time_s = run.total_time_s();
  resp.num_routers = run.num_routers;
  resp.num_groups = run.num_groups;
  resp.steps = std::uint32_t(run.steps());
  resp.profile_missing = run.profile_missing;
  return resp;
}

Response Session::on(const NeighborhoodRequest& q) {
  DFV_CHECK_MSG(q.node_count > 0, "node count must be positive");
  return NeighborhoodResponse{
      analysis::analyze_neighborhood(dataset(q.app_name, q.node_count), q.tau)};
}

Response Session::on(const DeviationRequest& q) {
  DFV_CHECK_MSG(q.node_count > 0, "node count must be positive");
  const std::string key = q.app_name + "/" + std::to_string(q.node_count);
  auto it = deviation_cache_.find(key);
  if (it == deviation_cache_.end())
    it = deviation_cache_
             .emplace(key, analysis::analyze_deviation(dataset(q.app_name, q.node_count)))
             .first;
  return DeviationResponse{it->second};
}

Response Session::on(const ForecastRequest& q) {
  const sim::Dataset& ds = dataset(q.app_name, q.node_count);
  DFV_CHECK_MSG(std::size_t(q.run_index) < ds.num_runs(),
                "run index " << q.run_index << " out of range for " << ds.spec.label()
                             << " (" << ds.num_runs() << " runs)");
  const ResidentForecaster& rf = forecaster(q.app_name, q.node_count, q.window);
  const analysis::StepFeatureCache& cache = feature_cache(q.app_name, q.node_count);
  const analysis::RunFeatureTable& table = cache.run(q.run_index);
  const int m = q.window.m;
  DFV_CHECK_MSG(q.t >= m && q.t <= table.steps,
                "window [" << (q.t - m) << ", " << q.t << ") not contained in run of "
                           << table.steps << " steps");
  DFV_CHECK_MSG(table.span_clean(q.t - m, q.t),
                "history window touches degraded telemetry steps");

  // Gather the m strided superset rows into one contiguous window.
  const int width = analysis::feature_count(q.window.features);
  std::vector<double> window(std::size_t(m) * std::size_t(width));
  for (int i = 0; i < m; ++i) {
    const double* row = table.step_row(q.t - m + i);
    for (int f = 0; f < width; ++f)
      window[std::size_t(i) * std::size_t(width) + std::size_t(f)] = row[f];
  }

  ForecastResponse resp;
  // Compiled and reference paths are bit-identical (pinned by
  // test_compiled and the serve A/B goldens); the compiled one skips the
  // per-call operand packing and reuses the resident scratch arena.
  resp.predicted = ml::compiled_enabled() ? rf.compiled.predict_one(window, rf.scratch)
                                          : rf.model.predict_one(window);
  // Persistence baseline, summed in the same (reverse) order as the
  // window index builds it so the two paths agree bitwise.
  const sim::RunRecord& run = ds.runs[q.run_index];
  double recent = 0.0;
  for (int j = 0; j < m; ++j) recent += run.step_times[std::size_t(q.t - 1 - j)];
  resp.persistence = recent / double(m) * double(q.window.k);
  resp.model_windows = rf.windows;
  return resp;
}

Response Session::on(const ForecastEvalRequest& q) {
  DFV_CHECK_MSG(q.window.m >= 1 && q.window.k >= 1,
                "forecast window needs m >= 1 and k >= 1");
  const std::string key = q.app_name + "/" + std::to_string(q.node_count) + "/" +
                          std::to_string(q.window.m) + "/" + std::to_string(q.window.k) +
                          "/" + analysis::to_string(q.window.features);
  auto it = forecast_eval_cache_.find(key);
  if (it == forecast_eval_cache_.end())
    it = forecast_eval_cache_
             .emplace(key, analysis::evaluate_forecast(dataset(q.app_name, q.node_count),
                                                       q.window, {}))
             .first;
  return ForecastEvalResponse{it->second};
}

Response Session::on(const ForecastGridRequest& q) {
  DFV_CHECK_MSG(!q.cells.empty(), "forecast grid needs at least one cell");
  return ForecastGridResponse{
      analysis::evaluate_forecast_grid(dataset(q.app_name, q.node_count), q.cells, {})};
}

Response Session::on(const TopologyRequest& q) {
  DFV_CHECK_MSG(q.groups >= 0, "group count must be >= 0 (0 = Cori-scale)");
  const net::DragonflyConfig cfg = q.groups > 0 ? net::DragonflyConfig::small(q.groups)
                                                : net::DragonflyConfig::cori();
  return TopologyResponse{net::Topology(cfg).describe()};
}

Response Session::on(const SimulateRequest& q) {
  DFV_CHECK_MSG(q.packets > 0, "packet count must be positive");
  DFV_CHECK_MSG(q.load > 0.0, "offered load must be positive");
  const net::Topology topo(net::DragonflyConfig::small(q.groups));
  net::TrafficPattern pattern = net::TrafficPattern::Uniform;
  if (q.pattern == "adversarial") pattern = net::TrafficPattern::AdversarialShift;
  else if (q.pattern == "hotspot") pattern = net::TrafficPattern::Hotspot;
  net::RoutingPolicy policy = net::RoutingPolicy::Ugal;
  if (q.policy == "minimal") policy = net::RoutingPolicy::Minimal;
  else if (q.policy == "valiant") policy = net::RoutingPolicy::Valiant;

  SimulateResponse resp;
  resp.pattern = net::to_string(pattern);
  resp.policy = net::to_string(policy);
  resp.load = q.load;
  {
    net::PacketSimParams params;
    params.policy = policy;
    net::PacketSim sim(topo, params, 1);
    const auto s = sim.run_synthetic(pattern, q.load, q.packets);
    resp.engines.push_back({"source-routed", false, s.mean_latency, s.p99_latency,
                            s.mean_hops, s.throughput});
  }
  {
    net::VcSimParams params;
    params.policy = policy;
    net::VcPacketSim sim(topo, params, 1);
    const auto s = sim.run_synthetic(pattern, q.load, q.packets);
    resp.engines.push_back({"credit/VC", s.deadlocked, s.mean_latency, s.p99_latency,
                            s.mean_hops, s.throughput});
  }
  return resp;
}

// A bare Session has no serving counters; the server intercepts
// StatsRequest before dispatch and fills this in from its atomics. The
// zeroed answer here keeps the in-process (CLI) path total.
Response Session::on(const StatsRequest&) { return StatsResponse{}; }

// ---------------------------------------------------------------------------
// Encoded entry point (shared by serve shards and the protocol tests).
// ---------------------------------------------------------------------------

// dfv-lint: allow(contract): decode_request IS the validation; failures map to errors
std::string handle_encoded(Session& session, std::string_view bytes) {
  Request req;
  try {
    req = decode_request(bytes);
  } catch (const VersionError& e) {
    return encode_response(Response{ErrorResponse{ErrorCode::VersionMismatch, e.what()}});
  } catch (const ContractError& e) {
    return encode_response(Response{ErrorResponse{ErrorCode::BadRequest, e.what()}});
  }
  return encode_response(session.handle(req));
}

}  // namespace dfv::api
