// Binary wire codec for dfv::api requests and responses.
//
// Envelope layout (all integers little-endian, doubles as IEEE-754 bit
// patterns in a u64):
//
//   [u32 version = kApiVersion][u8 tag][payload…]
//
// Strings are u32 length + bytes; vectors are u32 count + elements. The
// encoding is canonical: a value encodes to exactly one byte sequence,
// so "bit-identical responses" and "byte-identical wire payloads" are
// the same statement (test_serve compares encoded bytes across shard
// counts).
//
// Decoding is defensive: a truncated or malformed buffer throws
// ContractError ("wire: …"), and an envelope whose version differs from
// kApiVersion throws VersionError, which carries the offending version
// so servers can answer with a structured ErrorResponse instead of
// guessing at an incompatible layout.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "api/api.hpp"

namespace dfv::api {

/// Thrown by decode_* when the envelope version is not kApiVersion.
class VersionError : public ContractError {
 public:
  VersionError(std::uint32_t found_version, const std::string& what)
      : ContractError(what), found(found_version) {}
  std::uint32_t found = 0;
};

[[nodiscard]] std::string encode_request(const Request& req);
[[nodiscard]] Request decode_request(std::string_view bytes);

[[nodiscard]] std::string encode_response(const Response& resp);
[[nodiscard]] Response decode_response(std::string_view bytes);

}  // namespace dfv::api
