// Binary wire codec for dfv::api requests and responses.
//
// Envelope layouts (all integers little-endian, doubles as IEEE-754 bit
// patterns in a u64):
//
//   request:  [u32 version = kApiVersion][u64 request_id][u32 deadline_ms]
//             [u8 tag][payload…]
//   response: [u32 version = kApiVersion][u8 tag][payload…]
//
// `request_id` names the logical request for idempotent retries: a
// retrying client resends a request under the same id after a transport
// failure, and the id makes the duplicate visible server-side (the store
// is immutable, so re-execution is harmless — the id exists for
// observability and future dedup, not correctness). `deadline_ms` is the
// server-side budget measured from the moment the frame is fully
// received; 0 means no deadline. Neither field changes the response
// bytes, so the serving determinism contract is untouched.
//
// Strings are u32 length + bytes; vectors are u32 count + elements. The
// encoding is canonical: a value encodes to exactly one byte sequence,
// so "bit-identical responses" and "byte-identical wire payloads" are
// the same statement (test_serve compares encoded bytes across shard
// counts).
//
// Decoding is defensive: a truncated or malformed buffer throws
// ContractError ("wire: …"), and an envelope whose version differs from
// kApiVersion throws VersionError, which carries the offending version
// so servers can answer with a structured ErrorResponse instead of
// guessing at an incompatible layout. In particular a v1 frame (no
// request_id/deadline) decodes as a structured VersionMismatch, never as
// a misparsed v2 frame. Every length/count is bounds-checked against the
// buffer before any allocation, so a forged [u32 len] cannot drive a
// multi-gigabyte allocation (test_wire_adversarial pins this).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "api/api.hpp"

namespace dfv::api {

/// Thrown by decode_* when the envelope version is not kApiVersion.
class VersionError : public ContractError {
 public:
  VersionError(std::uint32_t found_version, const std::string& what)
      : ContractError(what), found(found_version) {}
  std::uint32_t found = 0;
};

/// Per-request envelope fields that ride beside the Request itself.
struct RequestMeta {
  std::uint64_t request_id = 0;  ///< 0 = unnamed (one-shot, no retries)
  std::uint32_t deadline_ms = 0;  ///< server-side budget; 0 = none
};

/// A decoded request frame: the envelope metadata plus the request.
struct RequestEnvelope {
  RequestMeta meta;
  Request request;
};

[[nodiscard]] std::string encode_request(const Request& req);
[[nodiscard]] std::string encode_request(const Request& req, const RequestMeta& meta);
/// Decode ignoring the envelope metadata (CLI and tests).
[[nodiscard]] Request decode_request(std::string_view bytes);
/// Decode keeping the envelope metadata (the server admission path).
[[nodiscard]] RequestEnvelope decode_request_envelope(std::string_view bytes);

[[nodiscard]] std::string encode_response(const Response& resp);
[[nodiscard]] Response decode_response(std::string_view bytes);

}  // namespace dfv::api
