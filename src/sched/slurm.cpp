#include "sched/slurm.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/log.hpp"

namespace dfv::sched {

double BackgroundJob::intensity() const noexcept {
  // log-scale OU => lognormal multiplier with median 1.
  return std::exp(log_intensity.value());
}

SlurmSim::SlurmSim(const net::Topology& topo, std::vector<UserArchetype> users,
                   std::vector<net::RouterId> io_routers, std::uint64_t seed,
                   AllocPolicy policy)
    : topo_(&topo),
      users_(std::move(users)),
      io_routers_(std::move(io_routers)),
      alloc_(topo),
      policy_(policy),
      rng_(seed) {
  for (std::size_t u = 0; u < users_.size(); ++u) schedule_next_arrival(u, 0.0);
}

void SlurmSim::schedule_next_arrival(std::size_t user_idx, double after) {
  const double rate_per_s = users_[user_idx].jobs_per_day / 86400.0;
  if (rate_per_s <= 0.0) return;
  arrivals_.push(Arrival{after + rng_.exponential(rate_per_s), user_idx});
}

void SlurmSim::finish_due_jobs() {
  bool changed = false;
  for (std::size_t i = 0; i < running_.size();) {
    if (running_[i].end_s <= now_) {
      alloc_.release(running_nodes_[i]);
      for (auto& rec : sacct_)
        if (rec.job_id == running_[i].job_id) rec.end_s = running_[i].end_s;
      running_[i] = std::move(running_.back());
      running_.pop_back();
      running_nodes_[i] = std::move(running_nodes_.back());
      running_nodes_.pop_back();
      changed = true;
    } else {
      ++i;
    }
  }
  if (changed) ++bg_epoch_;
}

void SlurmSim::start_background_job(std::size_t user_idx) {
  const UserArchetype& u = users_[user_idx];
  const int span = u.max_nodes - u.min_nodes;
  const int nodes =
      u.min_nodes + (span > 0 ? int(rng_.uniform_index(std::uint64_t(span + 1))) : 0);
  const bool over_cap =
      double(busy_nodes() + nodes) > max_bg_util_ * double(alloc_.total_nodes());
  auto alloc = over_cap ? std::vector<net::NodeId>{} : alloc_.allocate(nodes, policy_, rng_);
  if (alloc.empty()) {
    // Machine at capacity: the job is dropped rather than queued. The
    // Poisson arrival stream keeps offering jobs, so the background load
    // stays saturated at the utilization cap without the event queue
    // growing without bound.
    return;
  }
  BackgroundJob job;
  job.job_id = next_job_id_++;
  job.user_id = u.user_id;
  const double duration = u.duration_mean_s * rng_.lognormal(0.0, u.duration_sigma);
  job.end_s = now_ + std::max(300.0, duration);
  job.placement = make_placement(alloc, *topo_);
  job.demands_per_s =
      generate_background_demands(job.placement, u.traffic, io_routers_, *topo_, rng_);
  // ou_sigma is the *stationary* stdev of the log-intensity; the OU SDE
  // volatility that produces it is sigma * sqrt(2 * theta).
  const double sde_sigma = u.traffic.ou_sigma * std::sqrt(2.0 * u.traffic.ou_theta);
  job.log_intensity = OuProcess(u.traffic.ou_theta, 0.0, sde_sigma,
                                rng_.normal(0.0, u.traffic.ou_sigma * 0.5));
  sacct_.push_back(JobRecord{job.job_id, u.user_id, u.description, nodes, now_, now_, -1.0});
  running_.push_back(std::move(job));
  running_nodes_.push_back(std::move(alloc));
  ++bg_epoch_;
}

void SlurmSim::advance_to(double t) {
  DFV_CHECK_MSG(t >= now_, "scheduler time cannot go backwards");
  while (true) {
    // Next event: earliest of (arrival, completion) that is <= t.
    double next_event = t;
    bool is_arrival = false;
    std::size_t arrival_user = 0;
    if (!arrivals_.empty() && arrivals_.top().time <= next_event) {
      next_event = arrivals_.top().time;
      is_arrival = true;
      arrival_user = arrivals_.top().user_idx;
    }
    double next_end = std::numeric_limits<double>::infinity();
    for (const auto& j : running_) next_end = std::min(next_end, j.end_s);
    if (next_end <= next_event) {
      now_ = next_end;
      finish_due_jobs();
      continue;
    }
    if (is_arrival) {
      arrivals_.pop();
      now_ = next_event;
      start_background_job(arrival_user);
      schedule_next_arrival(arrival_user, now_);
      continue;
    }
    now_ = t;
    finish_due_jobs();
    break;
  }
}

void SlurmSim::step_intensities(double dt) {
  // Advance the OU state (and consume its RNG draw); the sample itself is
  // only needed when the job's intensity is read.
  for (auto& j : running_) (void)j.log_intensity.step(dt, rng_);
}

std::optional<int> SlurmSim::start_instrumented_job(const std::string& name, int nodes,
                                                    int user_id) {
  auto alloc = alloc_.allocate(nodes, policy_, rng_);
  if (alloc.empty()) return std::nullopt;
  InstrumentedJob job;
  job.job_id = next_job_id_++;
  job.placement = make_placement(alloc, *topo_);
  job.nodes = std::move(alloc);
  job.sacct_idx = sacct_.size();
  sacct_.push_back(JobRecord{job.job_id, user_id, name, nodes, now_, now_, -1.0});
  const int id = job.job_id;
  instrumented_.push_back(std::move(job));
  ++bg_epoch_;
  return id;
}

const Placement& SlurmSim::placement_of(int job_id) const {
  for (const auto& j : instrumented_)
    if (j.job_id == job_id) return j.placement;
  DFV_CHECK_MSG(false, "no instrumented job with id " << job_id);
  static const Placement kEmpty;
  return kEmpty;  // unreachable
}

void SlurmSim::end_instrumented_job(int job_id) {
  for (std::size_t i = 0; i < instrumented_.size(); ++i) {
    if (instrumented_[i].job_id != job_id) continue;
    alloc_.release(instrumented_[i].nodes);
    sacct_[instrumented_[i].sacct_idx].end_s = now_;
    instrumented_[i] = std::move(instrumented_.back());
    instrumented_.pop_back();
    ++bg_epoch_;
    return;
  }
  DFV_CHECK_MSG(false, "no instrumented job with id " << job_id);
}

std::vector<int> SlurmSim::neighborhood_users(double t0, double t1, int min_nodes) const {
  std::vector<int> users;
  for (const auto& rec : sacct_) {
    if (rec.num_nodes < min_nodes) continue;
    const double end = rec.end_s < 0.0 ? std::numeric_limits<double>::infinity() : rec.end_s;
    if (rec.start_s < t1 && end > t0) users.push_back(rec.user_id);
  }
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  return users;
}

}  // namespace dfv::sched
