// Node allocation policies. Slurm on Cori hands out whole nodes; under
// load, allocations fragment across routers and groups, which is exactly
// what NUM_ROUTERS / NUM_GROUPS measure. Routers host 4 nodes each, so a
// fragmented system also makes jobs *share routers*, the main path for
// endpoint (processor-tile) interference.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "net/topology.hpp"

namespace dfv::sched {

enum class AllocPolicy : std::uint8_t {
  Packed,      ///< lowest-numbered free nodes (contiguous, few groups)
  Fragmented,  ///< uniformly random free nodes (worst-case spread)
  Clustered,   ///< group-local first from a random group, spill randomly
               ///< (approximates Slurm's behavior on a busy system)
};

[[nodiscard]] const char* to_string(AllocPolicy p) noexcept;

/// Tracks free/busy nodes and serves allocations.
class NodeAllocator {
 public:
  explicit NodeAllocator(const net::Topology& topo);

  /// Allocate `n` nodes with the given policy; returns an empty vector if
  /// fewer than `n` nodes are free.
  [[nodiscard]] std::vector<net::NodeId> allocate(int n, AllocPolicy policy, Rng& rng);

  /// Return nodes to the free pool. Double-free throws ContractError.
  void release(const std::vector<net::NodeId>& nodes);

  [[nodiscard]] int free_nodes() const noexcept { return free_count_; }
  [[nodiscard]] int total_nodes() const noexcept { return int(busy_.size()); }
  [[nodiscard]] bool is_busy(net::NodeId n) const { return busy_[std::size_t(n)] != 0; }

 private:
  const net::Topology* topo_;
  std::vector<char> busy_;
  int free_count_ = 0;
};

}  // namespace dfv::sched
