// Job placement: the set of nodes allocated to a job and the derived
// fragmentation features NUM_ROUTERS / NUM_GROUPS (§III-C of the paper).
#pragma once

#include <span>
#include <vector>

#include "net/topology.hpp"

namespace dfv::sched {

/// Nodes assigned to a job, in rank-block order, plus derived views.
struct Placement {
  std::vector<net::NodeId> nodes;      ///< allocated nodes (rank order)
  std::vector<net::RouterId> routers;  ///< unique routers, sorted
  int num_groups = 0;                  ///< unique dragonfly groups

  [[nodiscard]] int num_nodes() const noexcept { return int(nodes.size()); }
  [[nodiscard]] int num_routers() const noexcept { return int(routers.size()); }
};

/// Build a Placement (derived features included) from a node list.
[[nodiscard]] Placement make_placement(std::span<const net::NodeId> nodes,
                                       const net::Topology& topo);

/// Router of the i-th node of the placement.
[[nodiscard]] inline net::RouterId router_of_rank_node(const Placement& p, std::size_t i,
                                                       const net::Topology& topo) {
  return topo.router_of_node(p.nodes[i]);
}

}  // namespace dfv::sched
