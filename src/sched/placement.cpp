#include "sched/placement.hpp"

#include <algorithm>

namespace dfv::sched {

Placement make_placement(std::span<const net::NodeId> nodes, const net::Topology& topo) {
  Placement p;
  p.nodes.assign(nodes.begin(), nodes.end());
  p.routers.reserve(nodes.size());
  for (net::NodeId n : nodes) p.routers.push_back(topo.router_of_node(n));
  std::sort(p.routers.begin(), p.routers.end());
  p.routers.erase(std::unique(p.routers.begin(), p.routers.end()), p.routers.end());

  std::vector<net::GroupId> groups;
  groups.reserve(p.routers.size());
  for (net::RouterId r : p.routers) groups.push_back(topo.group_of(r));
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  p.num_groups = int(groups.size());
  return p;
}

}  // namespace dfv::sched
