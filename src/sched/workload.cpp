#include "sched/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace dfv::sched {

const char* to_string(BgPattern p) noexcept {
  switch (p) {
    case BgPattern::NearestNeighbor: return "nearest-neighbor";
    case BgPattern::UniformPairs: return "uniform-pairs";
    case BgPattern::AllreduceHeavy: return "allreduce-heavy";
    case BgPattern::IoHeavy: return "io-heavy";
  }
  return "?";
}

std::vector<UserArchetype> default_user_population(int quiet_users) {
  // Intensities in bytes/node/s. "Heavy" users sustain several hundred
  // MB/s/node, which is what communication-bound codes drive on Aries.
  auto mk = [](int id, const char* desc, double jobs_day, int lo, int hi, double dur_h,
               double net, double io, BgPattern pat) {
    UserArchetype u;
    u.user_id = id;
    u.description = desc;
    u.jobs_per_day = jobs_day;
    u.min_nodes = lo;
    u.max_nodes = hi;
    u.duration_mean_s = dur_h * 3600.0;
    u.duration_sigma = 0.45;
    u.traffic.net_bytes_per_node_per_s = net;
    u.traffic.io_bytes_per_node_per_s = io;
    u.traffic.pattern = pat;
    return u;
  };

  std::vector<UserArchetype> users = {
      // The paper's recurring "blamed" users, by archetype:
      mk(2, "HipMer-like genome assembly (comm + heavy I/O)", 8.0, 256, 1024, 6.0,
         1.80e9, 0.60e9, BgPattern::UniformPairs),
      mk(9, "FastPM-like N-body (allreduce-heavy + burst-buffer I/O)", 5.0, 512, 1024,
         5.0, 1.50e9, 0.45e9, BgPattern::AllreduceHeavy),
      mk(11, "E3SM-like climate modeling (comm-heavy)", 7.0, 512, 1024, 6.0, 1.70e9,
         0.30e9, BgPattern::NearestNeighbor),
      // Materials-science users (6, 10, 14): moderately heavy.
      mk(6, "materials DFT (comm-heavy collectives)", 5.0, 256, 512, 5.0, 1.10e9, 0.04e9,
         BgPattern::AllreduceHeavy),
      mk(10, "materials MD (comm-heavy)", 5.0, 256, 512, 4.0, 0.55e9, 0.03e9,
         BgPattern::UniformPairs),
      mk(14, "materials science (comm-heavy collectives)", 4.0, 256, 512, 5.0, 0.95e9,
         0.05e9, BgPattern::AllreduceHeavy),
      // Users that appear in one or two lists: moderate traffic.
      mk(1, "lattice QCD (moderate comm)", 6.0, 128, 512, 4.0, 0.40e9, 0.02e9,
         BgPattern::NearestNeighbor),
      mk(3, "CFD stencil", 5.0, 128, 256, 4.0, 1.00e9, 0.04e9,
         BgPattern::NearestNeighbor),
      mk(4, "weather ensemble", 6.0, 64, 256, 3.0, 0.45e9, 0.04e9,
         BgPattern::NearestNeighbor),
      mk(5, "molecular dynamics", 6.0, 64, 128, 3.0, 0.65e9, 0.02e9,
         BgPattern::UniformPairs),
      mk(7, "astrophysics hydro", 4.0, 128, 512, 5.0, 0.55e9, 0.06e9,
         BgPattern::NearestNeighbor),
      mk(12, "bioinformatics pipeline (I/O bound)", 5.0, 128, 256, 3.0, 0.15e9, 0.70e9,
         BgPattern::IoHeavy),
      mk(13, "graph analytics", 4.0, 128, 512, 4.0, 0.80e9, 0.03e9,
         BgPattern::UniformPairs),
  };

  // Quiet crowd: small, low-intensity jobs that should *not* be blamed.
  for (int i = 0; i < quiet_users; ++i) {
    UserArchetype u = mk(100 + i, "quiet user", 6.0, 8, 64, 2.0, 0.05e9, 0.005e9,
                         BgPattern::UniformPairs);
    users.push_back(u);
  }
  return users;
}

std::vector<int> ground_truth_aggressors() { return {2, 8, 9, 11}; }

std::vector<net::Demand> generate_background_demands(
    const Placement& placement, const TrafficSpec& spec,
    std::span<const net::RouterId> io_routers, const net::Topology& topo, Rng& rng) {
  std::vector<net::Demand> demands;
  const auto& routers = placement.routers;
  if (routers.empty()) return demands;
  const double total_net =
      spec.net_bytes_per_node_per_s * double(placement.num_nodes());
  const double total_io = spec.io_bytes_per_node_per_s * double(placement.num_nodes());

  if (total_net <= 0.0 && total_io <= 0.0) return demands;
  switch (spec.pattern) {
    case BgPattern::NearestNeighbor: {
      // Ring over the job's routers: each router exchanges with its two
      // neighbors in allocation order (stencil-like locality).
      const std::size_t n = routers.size();
      if (n >= 2 && total_net > 0.0) {
        const double per = total_net / double(2 * n);
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t j = (i + 1) % n;
          demands.push_back({routers[i], routers[j], per});
          demands.push_back({routers[j], routers[i], per});
        }
      }
      break;
    }
    case BgPattern::UniformPairs: {
      // ~3 random peer flows per router.
      const std::size_t n = routers.size();
      const std::size_t flows = std::max<std::size_t>(1, 3 * n);
      const double per = total_net / double(flows);
      if (per <= 0.0) break;
      for (std::size_t f = 0; f < flows; ++f) {
        const auto a = routers[rng.uniform_index(n)];
        auto b = routers[rng.uniform_index(n)];
        if (a == b && n > 1) b = routers[(rng.uniform_index(n - 1) + 1) % n];
        if (a != b) demands.push_back({a, b, per});
      }
      break;
    }
    case BgPattern::AllreduceHeavy: {
      // Reduction-tree hotspot: everyone exchanges with a few roots.
      const std::size_t n = routers.size();
      const std::size_t roots = std::max<std::size_t>(2, n / 5);
      const double per = total_net / double(2 * n);
      if (per <= 0.0) break;
      for (std::size_t i = 0; i < n; ++i) {
        const net::RouterId root = routers[i % roots];
        if (routers[i] == root) continue;
        demands.push_back({routers[i], root, per});
        demands.push_back({root, routers[i], per});
      }
      break;
    }
    case BgPattern::IoHeavy: {
      // Light intra-job traffic; the I/O share below dominates.
      const std::size_t n = routers.size();
      if (n >= 2 && total_net > 0.0) {
        const double per = total_net / double(n);
        for (std::size_t i = 0; i + 1 < n; i += 2)
          demands.push_back({routers[i], routers[i + 1], per});
      }
      break;
    }
  }

  // Filesystem traffic: each router streams to / from its nearest I/O
  // router (same group when possible), writes twice as heavy as reads.
  if (total_io > 0.0 && !io_routers.empty()) {
    const double per = total_io / double(routers.size());
    for (net::RouterId r : routers) {
      net::RouterId target = io_routers[0];
      const net::GroupId g = topo.group_of(r);
      for (net::RouterId io : io_routers)
        if (topo.group_of(io) == g) {
          target = io;
          break;
        }
      if (target == r) continue;
      demands.push_back({r, target, per * (2.0 / 3.0)});
      demands.push_back({target, r, per * (1.0 / 3.0)});
    }
  }
  return demands;
}

}  // namespace dfv::sched
