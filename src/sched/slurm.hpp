// Slurm-like scheduler simulation: background users submit jobs with
// Poisson arrivals, jobs occupy nodes for lognormal durations, and every
// job leaves an sacct-style accounting record. The instrumented campaign
// jobs are inserted through start_instrumented_job(), mirroring how the
// paper's authors submitted 1-2 jobs per app/day under their own user id.
#pragma once

#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timeseries.hpp"
#include "sched/allocator.hpp"
#include "sched/placement.hpp"
#include "sched/workload.hpp"

namespace dfv::sched {

/// One sacct accounting row.
struct JobRecord {
  int job_id = 0;
  int user_id = 0;
  std::string job_name;
  int num_nodes = 0;
  double submit_s = 0.0;
  double start_s = 0.0;
  double end_s = -1.0;  ///< -1 while running
};

/// A running background job with its traffic generator state.
struct BackgroundJob {
  int job_id = 0;
  int user_id = 0;
  double end_s = 0.0;
  Placement placement;
  std::vector<net::Demand> demands_per_s;  ///< traffic matrix at multiplier 1
  OuProcess log_intensity{1.0 / 1800.0, 0.0, 0.35, 0.0};

  /// Current intensity multiplier (lognormal around 1).
  [[nodiscard]] double intensity() const noexcept;
};

class SlurmSim {
 public:
  SlurmSim(const net::Topology& topo, std::vector<UserArchetype> users,
           std::vector<net::RouterId> io_routers, std::uint64_t seed,
           AllocPolicy policy = AllocPolicy::Clustered);

  /// Background jobs queue (retry later) rather than start when they would
  /// push utilization above this fraction — the headroom a production
  /// scheduler's priority/backfill gives short instrumented jobs.
  void set_max_background_utilization(double frac) noexcept { max_bg_util_ = frac; }

  /// Change the allocation policy used for subsequent jobs (ablations).
  void set_allocation_policy(AllocPolicy policy) noexcept { policy_ = policy; }
  [[nodiscard]] AllocPolicy allocation_policy() const noexcept { return policy_; }

  /// Advance the system clock to absolute time `t` seconds: process
  /// background arrivals and completions.
  void advance_to(double t);

  /// Advance the OU intensity processes of running jobs by `dt` seconds.
  void step_intensities(double dt);

  /// Allocate and start an instrumented job right now (at current time).
  /// Returns nullopt if the machine cannot fit it; callers should advance
  /// time and retry (mirroring queue wait).
  [[nodiscard]] std::optional<int> start_instrumented_job(const std::string& name, int nodes,
                                            int user_id);
  /// Placement of a running instrumented job.
  [[nodiscard]] const Placement& placement_of(int job_id) const;
  /// Finish an instrumented job at the current time.
  void end_instrumented_job(int job_id);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] const std::vector<BackgroundJob>& running_background() const noexcept {
    return running_;
  }
  [[nodiscard]] const std::vector<JobRecord>& sacct() const noexcept { return sacct_; }
  [[nodiscard]] int busy_nodes() const noexcept {
    return alloc_.total_nodes() - alloc_.free_nodes();
  }
  [[nodiscard]] double utilization() const noexcept {
    return double(busy_nodes()) / double(alloc_.total_nodes());
  }
  /// Monotonically increasing epoch that changes whenever the running job
  /// set changes (used to invalidate cached background link loads).
  [[nodiscard]] std::uint64_t background_epoch() const noexcept { return bg_epoch_; }

  /// Users with at least one job of >= `min_nodes` nodes whose execution
  /// overlapped [t0, t1] (the paper's per-job "neighborhood", §V-A).
  [[nodiscard]] std::vector<int> neighborhood_users(double t0, double t1,
                                                    int min_nodes) const;

 private:
  struct Arrival {
    double time;
    std::size_t user_idx;
    bool operator>(const Arrival& o) const noexcept { return time > o.time; }
  };

  void schedule_next_arrival(std::size_t user_idx, double after);
  void start_background_job(std::size_t user_idx);
  void finish_due_jobs();

  const net::Topology* topo_;
  std::vector<UserArchetype> users_;
  std::vector<net::RouterId> io_routers_;
  NodeAllocator alloc_;
  AllocPolicy policy_;
  Rng rng_;
  double now_ = 0.0;
  int next_job_id_ = 1;
  std::uint64_t bg_epoch_ = 0;
  double max_bg_util_ = 0.85;

  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>> arrivals_;
  std::vector<BackgroundJob> running_;
  std::vector<std::vector<net::NodeId>> running_nodes_;  ///< parallel to running_
  std::vector<JobRecord> sacct_;

  struct InstrumentedJob {
    int job_id;
    Placement placement;
    std::vector<net::NodeId> nodes;
    std::size_t sacct_idx;
  };
  std::vector<InstrumentedJob> instrumented_;
};

}  // namespace dfv::sched
