// Background-user workload model.
//
// The paper's neighborhood analysis identified anonymized users whose
// jobs correlate with slowdowns of the instrumented runs (Table III):
// User 2 ran HipMer (genome assembly; communication + heavy filesystem
// I/O), User 8 is the authors' own account, User 9 ran FastPM (many
// MPI_Allreduce calls + burst-buffer I/O), User 11 ran E3SM climate
// simulations, and Users 6/10/14 ran materials-science codes. We model a
// user population with matching archetypes — plus a crowd of quiet
// users — as ground truth the mutual-information analysis must recover.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timeseries.hpp"
#include "net/traffic.hpp"
#include "sched/placement.hpp"

namespace dfv::sched {

/// Internal communication shape of a background job.
enum class BgPattern : std::uint8_t {
  NearestNeighbor,  ///< stencil-like ring over the job's routers
  UniformPairs,     ///< random router pairs within the job
  AllreduceHeavy,   ///< tree/hotspot traffic toward root routers
  IoHeavy,          ///< most traffic flows to filesystem (I/O) routers
};

[[nodiscard]] const char* to_string(BgPattern p) noexcept;

/// Sustained traffic characteristics of one user's jobs.
struct TrafficSpec {
  double net_bytes_per_node_per_s = 0.0;  ///< intra-job network intensity
  double io_bytes_per_node_per_s = 0.0;   ///< filesystem traffic intensity
  BgPattern pattern = BgPattern::UniformPairs;
  /// OU modulation of intensity (log scale): theta = mean reversion rate
  /// [1/s], sigma = *stationary* standard deviation of the log-intensity
  /// (multipliers stay within ~exp(+-3 sigma)). Gives background traffic
  /// the temporal autocorrelation the forecasting models exploit.
  double ou_theta = 1.0 / 1800.0;
  double ou_sigma = 0.55;
};

/// One background user: job-submission statistics plus traffic profile.
struct UserArchetype {
  int user_id = 0;
  std::string description;
  double jobs_per_day = 1.0;
  int min_nodes = 32;
  int max_nodes = 256;
  double duration_mean_s = 4.0 * 3600;  ///< lognormal median
  double duration_sigma = 0.5;
  TrafficSpec traffic;
};

/// The anonymized-user population matching the paper's Table III ground
/// truth (users 1..14 with the archetypes above) plus `quiet_users`
/// low-traffic users. User 8 (the authors' account) is *not* in this
/// list — the campaign driver submits those jobs itself.
[[nodiscard]] std::vector<UserArchetype> default_user_population(int quiet_users = 24);

/// User id the campaign driver submits jobs under (the paper's User 8).
inline constexpr int kCampaignUserId = 8;

/// Aggressor user ids built into default_user_population() — the ground
/// truth that Table III's analysis should rank highly. (8 is the
/// campaign account itself; its MILC jobs congest the network too.)
[[nodiscard]] std::vector<int> ground_truth_aggressors();

/// Generate the per-second traffic matrix (at intensity multiplier 1) of
/// a background job: intra-job demands per `spec.pattern` plus flows to
/// the nearest I/O routers for the filesystem share.
[[nodiscard]] std::vector<net::Demand> generate_background_demands(
    const Placement& placement, const TrafficSpec& spec,
    std::span<const net::RouterId> io_routers, const net::Topology& topo, Rng& rng);

}  // namespace dfv::sched
