#include "sched/allocator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dfv::sched {

const char* to_string(AllocPolicy p) noexcept {
  switch (p) {
    case AllocPolicy::Packed: return "packed";
    case AllocPolicy::Fragmented: return "fragmented";
    case AllocPolicy::Clustered: return "clustered";
  }
  return "?";
}

NodeAllocator::NodeAllocator(const net::Topology& topo)
    : topo_(&topo),
      busy_(std::size_t(topo.config().num_nodes()), 0),
      free_count_(topo.config().num_nodes()) {}

std::vector<net::NodeId> NodeAllocator::allocate(int n, AllocPolicy policy, Rng& rng) {
  DFV_CHECK(n > 0);
  if (n > free_count_) return {};
  std::vector<net::NodeId> out;
  out.reserve(std::size_t(n));

  const int total = int(busy_.size());
  auto take = [&](net::NodeId id) {
    busy_[std::size_t(id)] = 1;
    --free_count_;
    out.push_back(id);
  };

  switch (policy) {
    case AllocPolicy::Packed: {
      for (net::NodeId id = 0; id < total && int(out.size()) < n; ++id)
        if (!busy_[std::size_t(id)]) take(id);
      break;
    }
    case AllocPolicy::Fragmented: {
      // Rejection-sample free nodes; fall back to a scan when the system
      // is nearly full.
      int attempts = 0;
      while (int(out.size()) < n && attempts < 8 * n) {
        const auto id = net::NodeId(rng.uniform_index(std::uint64_t(total)));
        if (!busy_[std::size_t(id)]) take(id);
        ++attempts;
      }
      for (net::NodeId id = 0; id < total && int(out.size()) < n; ++id)
        if (!busy_[std::size_t(id)]) take(id);
      break;
    }
    case AllocPolicy::Clustered: {
      // Start from a random group and sweep forward, preferring group
      // locality, then wrap. This mimics Slurm's tendency to produce
      // mostly-local allocations that spill when the system is busy.
      const int nodes_per_group =
          topo_->config().routers_per_group() * topo_->config().nodes_per_router;
      const int groups = topo_->config().groups;
      const int g0 = int(rng.uniform_index(std::uint64_t(groups)));
      const int npr = topo_->config().nodes_per_router;
      const int rpg = topo_->config().routers_per_group();
      for (int gi = 0; gi < groups && int(out.size()) < n; ++gi) {
        const int g = (g0 + gi) % groups;
        const net::NodeId base = net::NodeId(g * nodes_per_group);
        // Occasionally skip a group entirely (drained/occupied elsewhere),
        // increasing fragmentation variance between runs.
        if (gi > 0 && rng.bernoulli(0.45)) continue;
        // Offset-major sweep: nodes are taken round-robin across the
        // group's routers, so concurrent jobs in one group end up sharing
        // routers — the processor-tile interference path (4 nodes per
        // Aries router rarely belong to a single job on a busy system).
        for (int offset = 0; offset < npr && int(out.size()) < n; ++offset)
          for (int r = 0; r < rpg && int(out.size()) < n; ++r) {
            const net::NodeId id = base + r * npr + offset;
            if (!busy_[std::size_t(id)]) take(id);
          }
      }
      for (net::NodeId id = 0; id < total && int(out.size()) < n; ++id)
        if (!busy_[std::size_t(id)]) take(id);
      break;
    }
  }

  DFV_CHECK(int(out.size()) == n);
  return out;
}

void NodeAllocator::release(const std::vector<net::NodeId>& nodes) {
  for (net::NodeId id : nodes) {
    DFV_CHECK_MSG(busy_[std::size_t(id)], "releasing node " << id << " that is not busy");
    busy_[std::size_t(id)] = 0;
    ++free_count_;
  }
}

}  // namespace dfv::sched
