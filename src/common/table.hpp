// ASCII table rendering for benchmark harnesses: every bench binary
// regenerates a paper table/figure as plain-text rows, so the output
// format lives in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dfv {

/// Column alignment for Table cells.
enum class Align { Left, Right };

/// Simple column-oriented ASCII table.
///
/// Usage:
///   Table t({"app", "nodes", "mean (s)"});
///   t.add_row({"AMG", "128", format_double(12.3)});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void set_align(std::size_t col, Align a);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }

  /// Render with box-drawing separators.
  [[nodiscard]] std::string str() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

/// Format a double with fixed precision, trimming to a compact width.
[[nodiscard]] std::string format_double(double v, int precision = 3);

/// Format a double in engineering style (e.g. 1.2e+08) for counters.
[[nodiscard]] std::string format_sci(double v, int precision = 2);

/// Format bytes as a human-readable quantity (KiB/MiB/GiB).
[[nodiscard]] std::string format_bytes(double bytes);

}  // namespace dfv
