// Time-series building blocks used by the simulator (temporally
// autocorrelated background traffic) and by the analysis pipeline
// (mean-centering, sliding windows).
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"

namespace dfv {

/// Ornstein–Uhlenbeck process, discretized: mean-reverting noise whose
/// autocorrelation over lag dt decays as exp(-theta * dt). Drives the
/// traffic intensity of background jobs so that past network counters
/// carry information about future steps (the property the forecasting
/// experiments of the paper rely on).
class OuProcess {
 public:
  /// theta: mean reversion rate [1/s]; mu: long-run mean; sigma: volatility.
  OuProcess(double theta, double mu, double sigma, double x0) noexcept
      : theta_(theta), mu_(mu), sigma_(sigma), x_(x0) {}

  /// Advance by dt seconds and return the new value.
  [[nodiscard]] double step(double dt, Rng& rng) noexcept;

  [[nodiscard]] double value() const noexcept { return x_; }
  void set_value(double x) noexcept { x_ = x; }

 private:
  double theta_, mu_, sigma_, x_;
};

/// First-order autoregressive process: x' = phi * x + noise.
class Ar1 {
 public:
  Ar1(double phi, double noise_stddev, double x0 = 0.0) noexcept
      : phi_(phi), sigma_(noise_stddev), x_(x0) {}

  [[nodiscard]] double step(Rng& rng) noexcept;
  [[nodiscard]] double value() const noexcept { return x_; }

 private:
  double phi_, sigma_, x_;
};

/// Centered moving average with window 2*half+1 (shrinks at boundaries).
[[nodiscard]] std::vector<double> moving_average(std::span<const double> xs, std::size_t half);

/// Subtract `mean_curve[i]` from `xs[i]` elementwise (sizes must match).
[[nodiscard]] std::vector<double> remove_mean_curve(std::span<const double> xs,
                                      std::span<const double> mean_curve);

/// Column means over a set of equal-length series: result[t] = mean_i series[i][t].
[[nodiscard]] std::vector<double> mean_curve(const std::vector<std::vector<double>>& series);

/// Lag-1 autocorrelation of a series (0 if too short or constant).
[[nodiscard]] double autocorrelation_lag1(std::span<const double> xs);

}  // namespace dfv
