// Descriptive statistics and correlation utilities shared by the
// simulator, the ML library, and the analysis pipeline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dfv::stats {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);  ///< sample variance, 0 if n < 2
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);
[[nodiscard]] double sum(std::span<const double> xs);

/// Linear-interpolated percentile; q in [0, 1]. Sorts a copy.
[[nodiscard]] double percentile(std::span<const double> xs, double q);
[[nodiscard]] double median(std::span<const double> xs);

[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Pearson correlation coefficient; 0 when either side is constant.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (average ranks for ties).
[[nodiscard]] double spearman(std::span<const double> xs, std::span<const double> ys);

/// Ranks with ties averaged, 1-based (as used by Spearman).
[[nodiscard]] std::vector<double> ranks(std::span<const double> xs);

/// Coefficient of variation: stddev / mean (0 when mean == 0).
[[nodiscard]] double coeff_variation(std::span<const double> xs);

/// Welford-style streaming moments.
class Online {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Equal-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the boundary buckets.
[[nodiscard]] std::vector<std::size_t> histogram(std::span<const double> xs, double lo, double hi,
                                   std::size_t bins);

}  // namespace dfv::stats
