#include "common/rng.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

#include "common/check.hpp"

namespace dfv {

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling.
  if (n == 0) return 0;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  return lo + static_cast<std::int64_t>(uniform_index(std::uint64_t(hi - lo) + 1));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.5 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.empty() ? 0 : uniform_index(weights.size());
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) noexcept {
  if (k > n) k = n;
  // Partial Fisher–Yates over an index vector. The draw sequence (one
  // uniform_index(n - i) per pick) never depends on the index type, so
  // the scratch narrows to uint32 whenever n fits: the transient buffer
  // is the sampler's whole memory footprint, and at a million rows the
  // narrow type halves it (8 MB -> 4 MB at peak).
  // The result is handed back as a capacity-k vector either way:
  // resize(k) alone would keep the full n-element buffer alive in the
  // caller for as long as the sample is retained.
  if (n <= std::size_t(std::numeric_limits<std::uint32_t>::max())) {
    std::vector<std::uint32_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = std::uint32_t(i);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + uniform_index(n - i);
      std::swap(idx[i], idx[j]);
    }
    return {idx.begin(), idx.begin() + std::ptrdiff_t(k)};
  }
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(idx[i], idx[j]);
  }
  return {idx.begin(), idx.begin() + std::ptrdiff_t(k)};
}

}  // namespace dfv
