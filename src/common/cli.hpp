// Declarative command-line interface.
//
// A tool declares each subcommand once — name, summary, and a table of
// typed ArgSpec entries — and App::run() does the rest: dispatch,
// `--key value` and `--key=value` syntax, boolean flags, typed defaults,
// generated `--help` / `tool help <cmd>` text, and non-zero exit with a
// diagnostic for unknown flags, missing values, or malformed numbers.
//
//   cli::App app("dfv", "dragonfly performance-variability toolkit");
//   app.command("campaign", "generate the run campaign",
//               {{"days", cli::ArgType::Int, "120", "campaign length"},
//                {"out", cli::ArgType::String, "", "export CSVs here"}},
//               [](const cli::ParsedArgs& a) { ... return 0; });
//   return app.run(argc, argv);
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dfv::cli {

enum class ArgType { Flag, Int, Double, String };

/// One argument of a subcommand. `name` has no leading dashes; `dflt` is
/// the textual default (ignored for flags, which default to absent).
struct ArgSpec {
  std::string name;
  ArgType type = ArgType::String;
  std::string dflt;
  std::string help;
};

/// Type-checked view of one parsed command line. Lookups of names not in
/// the command's spec table are programmer errors and throw ContractError.
class ParsedArgs {
 public:
  ParsedArgs(const std::vector<ArgSpec>* specs, std::map<std::string, std::string> kv);

  /// True when the argument appeared on the command line.
  [[nodiscard]] bool given(const std::string& name) const;
  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;

 private:
  [[nodiscard]] const ArgSpec& spec(const std::string& name) const;
  const std::vector<ArgSpec>* specs_;
  std::map<std::string, std::string> kv_;
};

struct Command {
  std::string name;
  std::string summary;
  std::vector<ArgSpec> args;
  std::function<int(const ParsedArgs&)> run;
};

class App {
 public:
  App(std::string name, std::string tagline);

  /// Register a subcommand. Registration order is the help order.
  void command(std::string name, std::string summary, std::vector<ArgSpec> args,
               std::function<int(const ParsedArgs&)> run);

  /// Arguments appended to every subcommand (e.g. --threads, --cache).
  void common_arg(ArgSpec spec);

  /// Dispatch. Returns the handler's exit code; 0 for help requests; 1
  /// for a missing/unknown subcommand; 2 for malformed arguments.
  [[nodiscard]] int run(int argc, char** argv) const;

  [[nodiscard]] std::string usage() const;
  [[nodiscard]] std::string usage(const Command& cmd) const;

 private:
  [[nodiscard]] const Command* find(const std::string& name) const;

  std::string name_;
  std::string tagline_;
  std::vector<Command> commands_;
  std::vector<ArgSpec> common_args_;
};

}  // namespace dfv::cli
