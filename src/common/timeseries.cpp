#include "common/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace dfv {

double OuProcess::step(double dt, Rng& rng) noexcept {
  // Exact discretization of the OU SDE over a step of length dt.
  const double e = std::exp(-theta_ * dt);
  const double var = (sigma_ * sigma_) / (2.0 * theta_) * (1.0 - e * e);
  x_ = mu_ + (x_ - mu_) * e + std::sqrt(std::max(var, 0.0)) * rng.normal();
  return x_;
}

double Ar1::step(Rng& rng) noexcept {
  x_ = phi_ * x_ + sigma_ * rng.normal();
  return x_;
}

std::vector<double> moving_average(std::span<const double> xs, std::size_t half) {
  std::vector<double> out(xs.size(), 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(xs.size() - 1, i + half);
    double s = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) s += xs[j];
    out[i] = s / double(hi - lo + 1);
  }
  return out;
}

std::vector<double> remove_mean_curve(std::span<const double> xs,
                                      std::span<const double> mean) {
  DFV_CHECK(xs.size() == mean.size());
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = xs[i] - mean[i];
  return out;
}

std::vector<double> mean_curve(const std::vector<std::vector<double>>& series) {
  if (series.empty()) return {};
  const std::size_t T = series.front().size();
  std::vector<double> out(T, 0.0);
  for (const auto& s : series) {
    DFV_CHECK(s.size() == T);
    for (std::size_t t = 0; t < T; ++t) out[t] += s[t];
  }
  for (double& v : out) v /= double(series.size());
  return out;
}

double autocorrelation_lag1(std::span<const double> xs) {
  if (xs.size() < 3) return 0.0;
  const double m = stats::mean(xs);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d = xs[i] - m;
    den += d * d;
    if (i + 1 < xs.size()) num += d * (xs[i + 1] - m);
  }
  if (den <= 0.0) return 0.0;
  return num / den;
}

}  // namespace dfv
