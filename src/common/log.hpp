// Tiny leveled logger. The campaign driver emits progress at Info;
// tests run with the level raised to Warn to keep output clean.
#pragma once

#include <sstream>
#include <string>

namespace dfv {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a message (used by the DFV_LOG_* macros; callable directly too).
void log_message(LogLevel level, const std::string& msg);

}  // namespace dfv

#define DFV_LOG_AT(lvl, expr)                           \
  do {                                                  \
    if (static_cast<int>(lvl) >= static_cast<int>(::dfv::log_level())) { \
      std::ostringstream dfv_log_os_;                   \
      dfv_log_os_ << expr;                              \
      ::dfv::log_message(lvl, dfv_log_os_.str());       \
    }                                                   \
  } while (0)

#define DFV_LOG_DEBUG(expr) DFV_LOG_AT(::dfv::LogLevel::Debug, expr)
#define DFV_LOG_INFO(expr) DFV_LOG_AT(::dfv::LogLevel::Info, expr)
#define DFV_LOG_WARN(expr) DFV_LOG_AT(::dfv::LogLevel::Warn, expr)
#define DFV_LOG_ERROR(expr) DFV_LOG_AT(::dfv::LogLevel::Error, expr)
