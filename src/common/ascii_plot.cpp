#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace dfv {

namespace {
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

std::string y_tick(double v) {
  std::ostringstream os;
  if (std::abs(v) >= 1e5 || (std::abs(v) > 0 && std::abs(v) < 1e-2))
    os << std::scientific << std::setprecision(1) << v;
  else
    os << std::fixed << std::setprecision(2) << v;
  return os.str();
}
}  // namespace

std::string line_plot(std::span<const Series> series, const PlotOptions& opts) {
  std::ostringstream out;
  if (!opts.title.empty()) out << opts.title << '\n';

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::size_t max_n = 0;
  for (const auto& s : series) {
    max_n = std::max(max_n, s.ys.size());
    for (double y : s.ys) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
  }
  if (max_n == 0) return out.str() + "(no data)\n";
  if (opts.y_from_zero) lo = std::min(lo, 0.0);
  if (hi <= lo) hi = lo + 1.0;

  const std::size_t W = std::max<std::size_t>(opts.width, 8);
  const std::size_t H = std::max<std::size_t>(opts.height, 4);
  std::vector<std::string> grid(H, std::string(W, ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& ys = series[si].ys;
    const char g = kGlyphs[si % sizeof(kGlyphs)];
    for (std::size_t i = 0; i < ys.size(); ++i) {
      const std::size_t x =
          ys.size() <= 1 ? 0 : std::size_t(std::round(double(i) * double(W - 1) /
                                                      double(ys.size() - 1)));
      const double fy = (ys[i] - lo) / (hi - lo);
      const std::size_t y = std::size_t(std::round(fy * double(H - 1)));
      grid[H - 1 - std::min(y, H - 1)][std::min(x, W - 1)] = g;
    }
  }

  const std::string top = y_tick(hi), bot = y_tick(lo);
  const std::size_t label_w = std::max(top.size(), bot.size());
  for (std::size_t r = 0; r < H; ++r) {
    std::string label(label_w, ' ');
    if (r == 0) label = std::string(label_w - top.size(), ' ') + top;
    if (r == H - 1) label = std::string(label_w - bot.size(), ' ') + bot;
    out << label << " |" << grid[r] << '\n';
  }
  out << std::string(label_w, ' ') << " +" << std::string(W, '-') << '\n';
  if (!opts.x_label.empty())
    out << std::string(label_w + 2, ' ') << opts.x_label << " (0.." << max_n - 1 << ")\n";
  if (series.size() > 1 || !series.empty()) {
    out << std::string(label_w + 2, ' ') << "legend:";
    for (std::size_t si = 0; si < series.size(); ++si)
      out << "  [" << kGlyphs[si % sizeof(kGlyphs)] << "] " << series[si].name;
    out << '\n';
  }
  return out.str();
}

std::string line_plot(const Series& s, const PlotOptions& opts) {
  return line_plot(std::span<const Series>(&s, 1), opts);
}

std::string bar_chart(std::span<const std::string> labels, std::span<const double> values,
                      std::size_t width, const std::string& title) {
  DFV_CHECK(labels.size() == values.size());
  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  if (labels.empty()) return out.str() + "(no data)\n";

  std::size_t label_w = 0;
  double vmax = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    label_w = std::max(label_w, labels[i].size());
    vmax = std::max(vmax, values[i]);
  }
  if (vmax <= 0.0) vmax = 1.0;

  for (std::size_t i = 0; i < labels.size(); ++i) {
    const double frac = std::max(0.0, values[i]) / vmax;
    const auto n = static_cast<std::size_t>(std::round(frac * double(width)));
    out << "  " << labels[i] << std::string(label_w - labels[i].size(), ' ') << " |"
        << std::string(n, '#') << ' ' << y_tick(values[i]) << '\n';
  }
  return out.str();
}

}  // namespace dfv
