// Deterministic, splittable pseudo-random number generation.
//
// Everything in the simulator is seeded from a single campaign seed so
// that runs are bit-reproducible. We use xoshiro256** (public-domain
// algorithm by Blackman & Vigna) seeded through SplitMix64, which is the
// standard way to expand a 64-bit seed into generator state.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dfv {

/// SplitMix64: stateless 64-bit mix used for seeding and hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash-combine two 64-bit values (used to derive substream seeds).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** PRNG with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to
/// <random> distributions, but the built-in helpers below are preferred
/// because their output is stable across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x8badf00ddeadbeefULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  /// Derive an independent child generator (substream) for component `tag`.
  [[nodiscard]] Rng split(std::uint64_t tag) const noexcept {
    Rng child(hash_combine(state_[0] ^ state_[3], tag));
    return child;
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept { return double((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (cached second draw).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Log-normal: exp(N(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential with given rate (mean = 1/rate).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Poisson-distributed count with given mean (Knuth for small, normal approx for large).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Pareto (heavy-tailed) sample with scale xm > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  /// Sample an index according to non-negative weights (linear scan).
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k) noexcept;

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace dfv
