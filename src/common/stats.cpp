#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace dfv::stats {

double sum(std::span<const double> xs) {
  // Kahan summation: campaign aggregations add millions of small terms.
  double s = 0.0, c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return sum(xs) / double(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / double(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  DFV_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * double(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - double(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min(xs);
  s.p25 = percentile(xs, 0.25);
  s.median = median(xs);
  s.p75 = percentile(xs, 0.75);
  s.max = max(xs);
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  DFV_CHECK(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = 0.5 * (double(i) + double(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  DFV_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

double coeff_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

void Online::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
}

double Online::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / double(n_ - 1);
}

double Online::stddev() const noexcept { return std::sqrt(variance()); }

std::vector<std::size_t> histogram(std::span<const double> xs, double lo, double hi,
                                   std::size_t bins) {
  DFV_CHECK(bins > 0);
  DFV_CHECK(hi > lo);
  std::vector<std::size_t> h(bins, 0);
  const double w = (hi - lo) / double(bins);
  for (double x : xs) {
    auto b = static_cast<std::ptrdiff_t>((x - lo) / w);
    b = std::clamp<std::ptrdiff_t>(b, 0, std::ptrdiff_t(bins) - 1);
    ++h[std::size_t(b)];
  }
  return h;
}

}  // namespace dfv::stats
