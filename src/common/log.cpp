#include "common/log.hpp"

#include "common/check.hpp"

#include <atomic>
#include <iostream>

namespace dfv {

namespace {
std::atomic<int> g_level{enum_int(LogLevel::Info)};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(enum_int(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& msg) {
  if (enum_int(level) < g_level.load()) return;
  std::ostream& os = (level >= LogLevel::Warn) ? std::cerr : std::clog;
  os << "[dfv " << level_name(level) << "] " << msg << '\n';
}

}  // namespace dfv
