#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace dfv {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), align_(headers_.size(), Align::Right) {
  DFV_CHECK(!headers_.empty());
  align_[0] = Align::Left;
}

void Table::add_row(std::vector<std::string> cells) {
  DFV_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, table has " << headers_.size()
                           << " columns");
  rows_.push_back(std::move(cells));
}

void Table::set_align(std::size_t col, Align a) {
  DFV_CHECK(col < align_.size());
  align_[col] = a;
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto emit_sep = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = width[c] - cells[c].size();
      if (align_[c] == Align::Left)
        os << ' ' << cells[c] << std::string(pad, ' ') << " |";
      else
        os << ' ' << std::string(pad, ' ') << cells[c] << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_sep(os);
  emit_row(os, headers_);
  emit_sep(os);
  for (const auto& row : rows_) emit_row(os, row);
  emit_sep(os);
  return os.str();
}

void Table::print(std::ostream& os) const { os << str(); }

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(bytes < 10 ? 2 : 1) << bytes << ' ' << kUnits[u];
  return os.str();
}

}  // namespace dfv
