#include "common/integrity.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace dfv {

std::uint64_t fnv1a64(std::string_view data) noexcept {
  return fnv1a64_update(kFnvBasis, data.data(), data.size());
}

std::uint64_t fnv1a64_update(std::uint64_t state, const void* data,
                             std::size_t n) noexcept {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state ^= p[i];
    state *= 0x100000001b3ull;
  }
  return state;
}

void append_checksum_footer(std::string& content) {
  if (!content.empty() && content.back() != '\n') content += '\n';
  const std::uint64_t h = fnv1a64(content);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  content.append(kChecksumPrefix);
  content.append(buf);
  content += '\n';
}

ChecksumStatus verify_and_strip_checksum(std::string& content) {
  // The footer is the final line: "#dfv-crc <16 hex>\n".
  const std::size_t footer_len = kChecksumPrefix.size() + 16 + 1;
  if (content.size() < footer_len || content.back() != '\n')
    return ChecksumStatus::Missing;
  const std::size_t line_start = content.size() - footer_len;
  if (line_start != 0 && content[line_start - 1] != '\n') return ChecksumStatus::Missing;
  if (content.compare(line_start, kChecksumPrefix.size(), kChecksumPrefix) != 0)
    return ChecksumStatus::Missing;

  std::uint64_t stored = 0;
  for (std::size_t i = line_start + kChecksumPrefix.size(); i + 1 < content.size(); ++i) {
    const char c = content[i];
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else
      return ChecksumStatus::Missing;  // not a well-formed footer after all
    stored = (stored << 4) | std::uint64_t(digit);
  }

  const std::string_view body(content.data(), line_start);
  const std::uint64_t actual = fnv1a64(body);
  content.resize(line_start);
  return actual == stored ? ChecksumStatus::Ok : ChecksumStatus::Mismatch;
}

bool atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f << content;
    f.flush();
    if (!f) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace dfv
