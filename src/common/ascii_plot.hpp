// Terminal line/bar plots so benchmark binaries can render the *shape*
// of each paper figure directly in their stdout.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace dfv {

/// Options for line plots.
struct PlotOptions {
  std::size_t width = 72;   ///< plot area width in characters
  std::size_t height = 16;  ///< plot area height in rows
  std::string title;
  std::string x_label;
  std::string y_label;
  bool y_from_zero = false;  ///< force the y axis to start at 0
};

/// One named series for a multi-series line plot.
struct Series {
  std::string name;
  std::vector<double> ys;  ///< y values; x is the index
};

/// Render one or more series as an ASCII line plot (distinct glyph per series).
[[nodiscard]] std::string line_plot(std::span<const Series> series, const PlotOptions& opts = {});
[[nodiscard]] std::string line_plot(const Series& s, const PlotOptions& opts = {});
[[nodiscard]] inline std::string line_plot(std::initializer_list<Series> series,
                             const PlotOptions& opts = {}) {
  return line_plot(std::span<const Series>(series.begin(), series.size()), opts);
}

/// Render labeled horizontal bars scaled to the maximum value.
[[nodiscard]] std::string bar_chart(std::span<const std::string> labels, std::span<const double> values,
                      std::size_t width = 48, const std::string& title = {});

}  // namespace dfv
