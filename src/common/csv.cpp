#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace dfv {

namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

void emit_cell(std::ostream& os, const std::string& s) {
  if (!needs_quoting(s)) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void emit_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) os << ',';
    emit_cell(os, row[i]);
  }
  os << '\n';
}

}  // namespace

std::size_t Csv::col(const std::string& name) const {
  const std::size_t i = col_if(name);
  DFV_CHECK_MSG(i != npos, "no CSV column named '" << name << "'");
  return i;
}

std::size_t Csv::col_if(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  return npos;
}

std::string Csv::str() const {
  std::ostringstream os;
  emit_row(os, header);
  for (const auto& r : rows) emit_row(os, r);
  return os.str();
}

bool write_csv(const Csv& csv, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << csv.str();
  return bool(f);
}

Csv parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> all;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
  };
  auto end_row = [&] {
    end_cell();
    all.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_cell();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n':
        if (row_has_content || !cell.empty() || !row.empty()) end_row();
        break;
      default:
        cell += c;
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !cell.empty() || !row.empty()) end_row();

  Csv csv;
  if (!all.empty()) {
    csv.header = std::move(all.front());
    csv.rows.assign(std::make_move_iterator(all.begin() + 1),
                    std::make_move_iterator(all.end()));
  }
  return csv;
}

Csv read_csv(const std::string& path) {
  std::ifstream f(path);
  DFV_CHECK_MSG(bool(f), "cannot open CSV file '" << path << "'");
  std::ostringstream os;
  os << f.rdbuf();
  return parse_csv(os.str());
}

}  // namespace dfv
