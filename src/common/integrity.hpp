// File integrity for the on-disk campaign cache: a FNV-1a 64 checksum
// footer appended to text artifacts, and atomic publish via
// write-to-temp + rename so readers never observe a half-written file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dfv {

/// FNV-1a 64-bit hash (dependency-free, stable across platforms).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data) noexcept;

/// FNV-1a offset basis: the running-hash seed for an empty prefix.
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;

/// Incremental FNV-1a: fold `n` bytes into a running hash state. Seeding
/// with `kFnvBasis` and chaining calls over consecutive chunks yields
/// exactly `fnv1a64` of the concatenation, which lets the column store
/// keep a running CRC for its unsealed tail segment across appends.
[[nodiscard]] std::uint64_t fnv1a64_update(std::uint64_t state, const void* data,
                                           std::size_t n) noexcept;

/// Footer line marker; the full footer is "#dfv-crc <16 hex digits>\n".
inline constexpr std::string_view kChecksumPrefix = "#dfv-crc ";

/// Append a checksum footer covering the current content.
void append_checksum_footer(std::string& content);

enum class ChecksumStatus {
  Ok,        ///< footer present and matches the content
  Missing,   ///< no footer (legacy / external file)
  Mismatch,  ///< footer present but the content hash differs: corruption
};

/// Verify the trailing checksum footer and strip it from `content`.
/// On Missing the content is left untouched; on Mismatch the footer is
/// stripped so the caller can still inspect the (untrusted) body.
[[nodiscard]] ChecksumStatus verify_and_strip_checksum(std::string& content);

/// Write `content` to `path` atomically: write to "<path>.tmp", then
/// rename over the destination. Returns false on any I/O failure (the
/// temp file is cleaned up; the destination is never left half-written).
[[nodiscard]] bool atomic_write_file(const std::string& path, const std::string& content);

}  // namespace dfv
