// Lightweight runtime contract checks used across the library.
//
// DFV_CHECK is always on (cheap conditions only: index bounds on public
// entry points, configuration validation). Violations throw
// dfv::ContractError so tests can assert on misuse, per I.6/E.x of the
// C++ Core Guidelines (prefer exceptions over abort for recoverable
// precondition reporting in a library context).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace dfv {

/// Thrown when a DFV_CHECK precondition fails.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}
}  // namespace detail

/// Checked integral narrowing: throws ContractError if the value does not
/// round-trip (magnitude or sign lost). Use through DFV_NARROW so the intent
/// is greppable and dfv-lint can see the annotation.
template <typename To, typename From>
[[nodiscard]] constexpr To narrow_cast(From v) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "narrow_cast is for integral conversions");
  const To out = static_cast<To>(v);
  if (static_cast<From>(out) != v || ((out < To{}) != (v < From{})))
    detail::contract_fail("narrowing lost value", "narrow_cast", 0, {});
  return out;
}

/// The canonical enum -> index conversion. Value-preserving by definition
/// (the enumerators are the type's domain), so exempt from the narrow rule.
template <typename E>
[[nodiscard]] constexpr int enum_int(E e) noexcept {
  static_assert(std::is_enum_v<E>, "enum_int is for enums");
  // dfv-lint: allow(narrow): enum -> int over the enumerator domain is value-preserving
  return static_cast<int>(e);
}

}  // namespace dfv

#define DFV_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) ::dfv::detail::contract_fail(#cond, __FILE__, __LINE__, {}); \
  } while (0)

/// Annotated narrowing conversion: `DFV_NARROW(int, big)` — checked at
/// runtime, visible to dfv-lint's narrow rule as the sanctioned spelling.
#define DFV_NARROW(To, v) (::dfv::narrow_cast<To>(v))

#define DFV_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream dfv_os_;                                            \
      dfv_os_ << msg;                                                        \
      ::dfv::detail::contract_fail(#cond, __FILE__, __LINE__, dfv_os_.str()); \
    }                                                                        \
  } while (0)
