// Lightweight runtime contract checks used across the library.
//
// DFV_CHECK is always on (cheap conditions only: index bounds on public
// entry points, configuration validation). Violations throw
// dfv::ContractError so tests can assert on misuse, per I.6/E.x of the
// C++ Core Guidelines (prefer exceptions over abort for recoverable
// precondition reporting in a library context).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dfv {

/// Thrown when a DFV_CHECK precondition fails.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}
}  // namespace detail

}  // namespace dfv

#define DFV_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) ::dfv::detail::contract_fail(#cond, __FILE__, __LINE__, {}); \
  } while (0)

#define DFV_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream dfv_os_;                                            \
      dfv_os_ << msg;                                                        \
      ::dfv::detail::contract_fail(#cond, __FILE__, __LINE__, dfv_os_.str()); \
    }                                                                        \
  } while (0)
