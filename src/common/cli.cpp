#include "common/cli.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace dfv::cli {

namespace {

const char* type_label(ArgType t) {
  switch (t) {
    case ArgType::Flag: return "";
    case ArgType::Int: return "N";
    case ArgType::Double: return "X";
    case ArgType::String: return "S";
  }
  return "S";
}

}  // namespace

ParsedArgs::ParsedArgs(const std::vector<ArgSpec>* specs,
                       std::map<std::string, std::string> kv)
    : specs_(specs), kv_(std::move(kv)) {}

const ArgSpec& ParsedArgs::spec(const std::string& name) const {
  for (const ArgSpec& s : *specs_)
    if (s.name == name) return s;
  DFV_CHECK_MSG(false, "argument --" << name << " is not in this command's spec table");
  return specs_->front();  // unreachable
}

bool ParsedArgs::given(const std::string& name) const {
  (void)spec(name);  // validate the lookup even when absent
  return kv_.count(name) > 0;
}

bool ParsedArgs::flag(const std::string& name) const {
  DFV_CHECK_MSG(spec(name).type == ArgType::Flag, "--" << name << " is not a flag");
  return kv_.count(name) > 0;
}

std::string ParsedArgs::get(const std::string& name) const {
  const ArgSpec& s = spec(name);
  const auto it = kv_.find(name);
  return it == kv_.end() ? s.dflt : it->second;
}

int ParsedArgs::get_int(const std::string& name) const {
  DFV_CHECK_MSG(spec(name).type == ArgType::Int, "--" << name << " is not an int");
  return std::stoi(get(name));
}

double ParsedArgs::get_double(const std::string& name) const {
  DFV_CHECK_MSG(spec(name).type == ArgType::Double, "--" << name << " is not a double");
  return std::stod(get(name));
}

App::App(std::string name, std::string tagline)
    : name_(std::move(name)), tagline_(std::move(tagline)) {}

void App::command(std::string name, std::string summary, std::vector<ArgSpec> args,
                  std::function<int(const ParsedArgs&)> run) {
  commands_.push_back(
      {std::move(name), std::move(summary), std::move(args), std::move(run)});
}

void App::common_arg(ArgSpec spec) { common_args_.push_back(std::move(spec)); }

const Command* App::find(const std::string& name) const {
  for (const Command& c : commands_)
    if (c.name == name) return &c;
  return nullptr;
}

std::string App::usage() const {
  std::ostringstream os;
  os << name_ << " — " << tagline_ << "\n\nusage: " << name_
     << " <command> [--key value | --key=value ...]\n\ncommands:\n";
  std::size_t width = 0;
  for (const Command& c : commands_) width = std::max(width, c.name.size());
  for (const Command& c : commands_) {
    os << "  " << c.name;
    os.write("                    ", std::streamsize(width - c.name.size() + 2));
    os << c.summary << "\n";
  }
  os << "\n`" << name_ << " help <command>` or `" << name_
     << " <command> --help` shows that command's arguments.\n";
  return os.str();
}

std::string App::usage(const Command& cmd) const {
  std::ostringstream os;
  os << "usage: " << name_ << " " << cmd.name << " [options]\n  " << cmd.summary
     << "\n\noptions:\n";
  std::vector<ArgSpec> all = cmd.args;
  all.insert(all.end(), common_args_.begin(), common_args_.end());
  std::size_t width = 0;
  std::vector<std::string> lhs;
  for (const ArgSpec& a : all) {
    std::string l = "--" + a.name;
    if (a.type != ArgType::Flag) l += std::string(" ") + type_label(a.type);
    width = std::max(width, l.size());
    lhs.push_back(std::move(l));
  }
  width = std::max(width, std::string("--help").size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    os << "  " << lhs[i];
    os.write("                                ", std::streamsize(width - lhs[i].size() + 2));
    os << all[i].help;
    if (all[i].type != ArgType::Flag && !all[i].dflt.empty())
      os << " [default: " << all[i].dflt << "]";
    os << "\n";
  }
  os << "  --help";
  os.write("                                ", std::streamsize(width - 6 + 2));
  os << "show this help\n";
  return os.str();
}

int App::run(int argc, char** argv) const {
  if (argc < 2) {
    std::cout << usage();
    return 1;
  }
  std::string cmd_name = argv[1];
  int from = 2;
  if (cmd_name == "--help" || cmd_name == "-h" || cmd_name == "help") {
    if (cmd_name == "help" && argc >= 3) {
      const Command* c = find(argv[2]);
      if (c == nullptr) {
        std::cerr << name_ << ": unknown command '" << argv[2] << "'\n\n" << usage();
        return 1;
      }
      std::cout << usage(*c);
      return 0;
    }
    std::cout << usage();
    return 0;
  }

  const Command* cmd = find(cmd_name);
  if (cmd == nullptr) {
    std::cerr << name_ << ": unknown command '" << cmd_name << "'\n\n" << usage();
    return 1;
  }

  std::vector<ArgSpec> specs = cmd->args;
  specs.insert(specs.end(), common_args_.begin(), common_args_.end());
  const auto find_spec = [&](const std::string& key) -> const ArgSpec* {
    for (const ArgSpec& s : specs)
      if (s.name == key) return &s;
    return nullptr;
  };

  std::map<std::string, std::string> kv;
  for (int i = from; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::cout << usage(*cmd);
      return 0;
    }
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      std::cerr << name_ << " " << cmd->name << ": expected --key, got '" << token
                << "'\n\n"
                << usage(*cmd);
      return 2;
    }
    std::string key = token.substr(2);
    std::string value;
    bool have_value = false;
    if (const auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
      have_value = true;
    }
    const ArgSpec* spec = find_spec(key);
    if (spec == nullptr) {
      std::cerr << name_ << " " << cmd->name << ": unknown flag --" << key << "\n\n"
                << usage(*cmd);
      return 2;
    }
    if (spec->type == ArgType::Flag) {
      if (have_value && value != "true" && value != "1" && value != "false" &&
          value != "0") {
        std::cerr << name_ << " " << cmd->name << ": --" << key
                  << " is a flag; got '=" << value << "'\n";
        return 2;
      }
      if (!have_value || value == "true" || value == "1")
        kv.insert_or_assign(key, std::string("1"));
      continue;
    }
    if (!have_value) {
      if (i + 1 >= argc) {
        std::cerr << name_ << " " << cmd->name << ": --" << key
                  << " expects a value\n\n"
                  << usage(*cmd);
        return 2;
      }
      value = argv[++i];
    }
    // Validate numeric values at parse time so typos fail before work
    // starts, with a message naming the flag.
    try {
      std::size_t pos = 0;
      if (spec->type == ArgType::Int) {
        (void)std::stoi(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      } else if (spec->type == ArgType::Double) {
        (void)std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      }
    } catch (const std::exception&) {
      std::cerr << name_ << " " << cmd->name << ": --" << key << " expects a"
                << (spec->type == ArgType::Int ? "n integer" : " number") << ", got '"
                << value << "'\n";
      return 2;
    }
    kv[key] = value;
  }

  return cmd->run(ParsedArgs(&specs, std::move(kv)));
}

}  // namespace dfv::cli
