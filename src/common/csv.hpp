// Minimal CSV read/write used to export campaign datasets so they can be
// inspected outside the benchmarks (the paper's datasets are tabular).
#pragma once

#include <string>
#include <vector>

namespace dfv {

/// In-memory CSV document: a header row plus string cells.
struct Csv {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index for a header name; throws ContractError if absent.
  [[nodiscard]] std::size_t col(const std::string& name) const;
  /// Column index for a header name, or npos if absent (optional columns).
  [[nodiscard]] std::size_t col_if(const std::string& name) const noexcept;
  static constexpr std::size_t npos = std::size_t(-1);
  [[nodiscard]] std::string str() const;
};

/// Write to a file (overwrites). Returns false on I/O failure.
[[nodiscard]] bool write_csv(const Csv& csv, const std::string& path);

/// Parse from a string. Handles quoted fields with embedded commas/quotes.
[[nodiscard]] Csv parse_csv(const std::string& text);

/// Read and parse a file; throws ContractError if the file cannot be read.
[[nodiscard]] Csv read_csv(const std::string& path);

}  // namespace dfv
