#include "sim/campaign_store.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/integrity.hpp"

namespace dfv::sim {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kMetaMagic = "dfv-campaign-store";
constexpr int kMetaVersion = 1;

[[nodiscard]] std::string idx2(const char* prefix, std::size_t k) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%02zu", prefix, k);
  return buf;
}

/// Per-run scalar columns. Ints ride as f64 (exact for every value the
/// simulator produces); the two u8 flags keep round-trip fidelity for
/// profile_missing and the empty-vs-explicit quality distinction.
[[nodiscard]] std::vector<store::ColumnSpec> runs_schema() {
  std::vector<store::ColumnSpec> s;
  for (const char* n : {"job_id", "submit_s", "start_s", "end_s", "num_routers",
                        "num_groups", "steps", "neigh_count", "prof_compute"})
    s.push_back({n, store::ColumnKind::F64});
  for (std::size_t k = 0; k < std::size_t(mon::kNumRoutines); ++k)
    s.push_back({idx2("prof_r", k), store::ColumnKind::F64});
  s.push_back({"profile_missing", store::ColumnKind::U8});
  s.push_back({"has_quality", store::ColumnKind::U8});
  return s;
}

/// Per-step telemetry columns (one row per run-step, runs concatenated
/// in order).
[[nodiscard]] std::vector<store::ColumnSpec> steps_schema() {
  std::vector<store::ColumnSpec> s;
  s.push_back({"step_time", store::ColumnKind::F64});
  for (std::size_t k = 0; k < std::size_t(mon::kNumCounters); ++k)
    s.push_back({idx2("ctr_", k), store::ColumnKind::F64});
  for (std::size_t k = 0; k < std::size_t(mon::kNumIoFeatures); ++k)
    s.push_back({idx2("io_", k), store::ColumnKind::F64});
  for (std::size_t k = 0; k < std::size_t(mon::kNumSysFeatures); ++k)
    s.push_back({idx2("sys_", k), store::ColumnKind::F64});
  s.push_back({"quality", store::ColumnKind::U8});
  return s;
}

[[nodiscard]] std::vector<store::ColumnSpec> neigh_schema() {
  return {{"user_id", store::ColumnKind::F64}};
}

/// Column-major staging buffers for one sub-store, appended in one shot.
struct Staging {
  std::vector<std::vector<double>> f64;
  std::vector<std::vector<std::uint8_t>> u8;
  std::size_t rows = 0;

  explicit Staging(const std::vector<store::ColumnSpec>& schema) {
    for (const store::ColumnSpec& s : schema) {
      if (s.kind == store::ColumnKind::F64)
        f64.emplace_back();
      else
        u8.emplace_back();
    }
  }
  void flush_into(store::ColumnStore& cs) {
    if (rows == 0) {
      cs.publish();
      return;
    }
    store::AppendChunk chunk;
    chunk.rows = rows;
    for (const auto& col : f64) chunk.f64.emplace_back(col.data(), col.size());
    for (const auto& col : u8) chunk.u8.emplace_back(col.data(), col.size());
    cs.append(chunk);
    cs.publish();
  }
};

void stage_dataset(const Dataset& ds, Staging& runs, Staging& steps, Staging& neigh) {
  for (const RunRecord& run : ds.runs) {
    std::size_t c = 0;
    runs.f64[c++].push_back(double(run.job_id));
    runs.f64[c++].push_back(run.submit_time_s);
    runs.f64[c++].push_back(run.start_time_s);
    runs.f64[c++].push_back(run.end_time_s);
    runs.f64[c++].push_back(double(run.num_routers));
    runs.f64[c++].push_back(double(run.num_groups));
    runs.f64[c++].push_back(double(run.step_times.size()));
    runs.f64[c++].push_back(double(run.neighborhood_users.size()));
    runs.f64[c++].push_back(run.profile.compute_s);
    for (std::size_t k = 0; k < std::size_t(mon::kNumRoutines); ++k)
      runs.f64[c++].push_back(run.profile.routine_s[k]);
    runs.u8[0].push_back(run.profile_missing ? 1 : 0);
    runs.u8[1].push_back(run.step_quality.empty() ? 0 : 1);
    runs.rows += 1;

    const std::size_t T = run.step_times.size();
    DFV_CHECK_MSG(run.step_counters.size() == T && run.step_ldms.size() == T &&
                      (run.step_quality.empty() || run.step_quality.size() == T),
                  "campaign store: ragged run telemetry");
    for (std::size_t t = 0; t < T; ++t) {
      std::size_t sc = 0;
      steps.f64[sc++].push_back(run.step_times[t]);
      for (std::size_t k = 0; k < std::size_t(mon::kNumCounters); ++k)
        steps.f64[sc++].push_back(run.step_counters[t][k]);
      for (std::size_t k = 0; k < std::size_t(mon::kNumIoFeatures); ++k)
        steps.f64[sc++].push_back(run.step_ldms[t].io[k]);
      for (std::size_t k = 0; k < std::size_t(mon::kNumSysFeatures); ++k)
        steps.f64[sc++].push_back(run.step_ldms[t].sys[k]);
      steps.u8[0].push_back(run.step_quality.empty() ? std::uint8_t(faults::kQualityOk)
                                                     : run.step_quality[t]);
    }
    steps.rows += T;

    for (int u : run.neighborhood_users) neigh.f64[0].push_back(double(u));
    neigh.rows += run.neighborhood_users.size();
  }
}

[[nodiscard]] std::string meta_path(const std::string& dir) { return dir + "/META"; }

struct MetaEntry {
  apps::DatasetSpec spec;
  std::uint64_t runs = 0, steps = 0, neigh = 0;
};

[[nodiscard]] std::vector<MetaEntry> parse_meta(const std::string& dir) {
  std::ifstream in(meta_path(dir), std::ios::binary);
  DFV_CHECK_MSG(bool(in), "campaign store: missing META in " + dir);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  DFV_CHECK_MSG(verify_and_strip_checksum(text) == ChecksumStatus::Ok,
                "campaign store: corrupt META in " + dir);
  std::istringstream is(text);
  std::string kw;
  int version = 0;
  std::size_t n = 0;
  is >> kw >> version;
  DFV_CHECK_MSG(kw == kMetaMagic && version == kMetaVersion,
                "campaign store: unrecognized META header in " + dir);
  is >> kw >> n;
  DFV_CHECK_MSG(kw == "datasets" && n > 0, "campaign store: bad dataset count");
  std::vector<MetaEntry> entries(n);
  for (MetaEntry& e : entries) {
    is >> kw >> e.spec.app >> e.spec.nodes >> e.runs >> e.steps >> e.neigh;
    DFV_CHECK_MSG(bool(is) && kw == "dataset" && !e.spec.app.empty() &&
                      e.spec.nodes >= 1,
                  "campaign store: bad dataset line in " + dir);
  }
  return entries;
}

}  // namespace

bool campaign_store_exists(const std::string& dir) {
  return store::file_size_or_zero(meta_path(dir)) > 0;
}

bool save_campaign_store(const CampaignResult& result, const std::string& dir) {
  DFV_CHECK_MSG(!result.datasets.empty(), "campaign store: nothing to save");
  try {
    fs::create_directories(dir);
    std::ostringstream meta;
    meta << kMetaMagic << ' ' << kMetaVersion << '\n';
    meta << "datasets " << result.datasets.size() << '\n';
    for (const Dataset& ds : result.datasets) {
      const std::string base = dir + "/" + ds.spec.label();
      Staging runs(runs_schema()), steps(steps_schema()), neigh(neigh_schema());
      stage_dataset(ds, runs, steps, neigh);
      store::ColumnStore runs_cs = store::ColumnStore::create(base + "/runs", runs_schema());
      store::ColumnStore steps_cs = store::ColumnStore::create(base + "/steps", steps_schema());
      store::ColumnStore neigh_cs = store::ColumnStore::create(base + "/neigh", neigh_schema());
      runs.flush_into(runs_cs);
      steps.flush_into(steps_cs);
      neigh.flush_into(neigh_cs);
      meta << "dataset " << ds.spec.app << ' ' << ds.spec.nodes << ' '
           << ds.runs.size() << ' ' << steps.rows << ' ' << neigh.rows << '\n';
    }
    std::string text = meta.str();
    append_checksum_footer(text);
    return atomic_write_file(meta_path(dir), text);
  } catch (const ContractError&) {
    return false;
  }
}

CampaignStorePin CampaignStorePin::open(const std::string& dir) {
  CampaignStorePin pin;
  for (const MetaEntry& e : parse_meta(dir)) {
    const std::string base = dir + "/" + e.spec.label();
    DatasetPins p;
    p.runs = store::ColumnStore::open_pin(base + "/runs");
    p.steps = store::ColumnStore::open_pin(base + "/steps");
    p.neigh = store::ColumnStore::open_pin(base + "/neigh");
    DFV_CHECK_MSG(p.runs->rows() == e.runs && p.steps->rows() == e.steps &&
                      p.neigh->rows() == e.neigh,
                  "campaign store: META row counts disagree with the stores in " + dir);
    pin.specs_.push_back(e.spec);
    pin.pins_.push_back(std::move(p));
  }
  return pin;
}

Dataset CampaignStorePin::load_dataset(std::size_t i) const {
  DFV_CHECK(i < pins_.size());
  const DatasetPins& p = pins_[i];
  // Verify at materialization (already O(bytes)), not at open: cold opens
  // stay O(MANIFEST parse + mmap), and corruption is still caught before
  // a single damaged value reaches an analysis.
  p.runs->verify_integrity();
  p.steps->verify_integrity();
  p.neigh->verify_integrity();
  Dataset ds;
  ds.spec = specs_[i];

  const auto job_id = p.runs->f64("job_id");
  const auto submit_s = p.runs->f64("submit_s");
  const auto start_s = p.runs->f64("start_s");
  const auto end_s = p.runs->f64("end_s");
  const auto num_routers = p.runs->f64("num_routers");
  const auto num_groups = p.runs->f64("num_groups");
  const auto steps = p.runs->f64("steps");
  const auto neigh_count = p.runs->f64("neigh_count");
  const auto prof_compute = p.runs->f64("prof_compute");
  std::vector<std::span<const double>> prof_r;
  for (std::size_t k = 0; k < std::size_t(mon::kNumRoutines); ++k)
    prof_r.push_back(p.runs->f64(idx2("prof_r", k)));
  const auto profile_missing = p.runs->u8("profile_missing");
  const auto has_quality = p.runs->u8("has_quality");

  const auto step_time = p.steps->f64("step_time");
  std::vector<std::span<const double>> ctr, io, sys;
  for (std::size_t k = 0; k < std::size_t(mon::kNumCounters); ++k)
    ctr.push_back(p.steps->f64(idx2("ctr_", k)));
  for (std::size_t k = 0; k < std::size_t(mon::kNumIoFeatures); ++k)
    io.push_back(p.steps->f64(idx2("io_", k)));
  for (std::size_t k = 0; k < std::size_t(mon::kNumSysFeatures); ++k)
    sys.push_back(p.steps->f64(idx2("sys_", k)));
  const auto quality = p.steps->u8("quality");
  const auto user_id = p.neigh->f64("user_id");

  ds.runs.resize(job_id.size());
  std::size_t step_off = 0, neigh_off = 0;
  for (std::size_t r = 0; r < ds.runs.size(); ++r) {
    RunRecord& run = ds.runs[r];
    run.job_id = int(job_id[r]);
    run.submit_time_s = submit_s[r];
    run.start_time_s = start_s[r];
    run.end_time_s = end_s[r];
    run.num_routers = int(num_routers[r]);
    run.num_groups = int(num_groups[r]);
    run.profile.compute_s = prof_compute[r];
    for (std::size_t k = 0; k < std::size_t(mon::kNumRoutines); ++k)
      run.profile.routine_s[k] = prof_r[k][r];
    run.profile_missing = profile_missing[r] != 0;

    const std::size_t T = std::size_t(steps[r]);
    DFV_CHECK_MSG(step_off + T <= step_time.size(),
                  "campaign store: step table shorter than the run index");
    run.step_times.assign(step_time.begin() + std::ptrdiff_t(step_off),
                          step_time.begin() + std::ptrdiff_t(step_off + T));
    run.step_counters.resize(T);
    run.step_ldms.resize(T);
    for (std::size_t t = 0; t < T; ++t) {
      for (std::size_t k = 0; k < std::size_t(mon::kNumCounters); ++k)
        run.step_counters[t][k] = ctr[k][step_off + t];
      for (std::size_t k = 0; k < std::size_t(mon::kNumIoFeatures); ++k)
        run.step_ldms[t].io[k] = io[k][step_off + t];
      for (std::size_t k = 0; k < std::size_t(mon::kNumSysFeatures); ++k)
        run.step_ldms[t].sys[k] = sys[k][step_off + t];
    }
    if (has_quality[r] != 0)
      run.step_quality.assign(quality.begin() + std::ptrdiff_t(step_off),
                              quality.begin() + std::ptrdiff_t(step_off + T));
    step_off += T;

    const std::size_t N = std::size_t(neigh_count[r]);
    DFV_CHECK_MSG(neigh_off + N <= user_id.size(),
                  "campaign store: neighborhood table shorter than the run index");
    run.neighborhood_users.resize(N);
    for (std::size_t k = 0; k < N; ++k)
      run.neighborhood_users[k] = int(user_id[neigh_off + k]);
    neigh_off += N;
  }
  DFV_CHECK_MSG(step_off == step_time.size() && neigh_off == user_id.size(),
                "campaign store: trailing rows not owned by any run");
  return ds;
}

CampaignResult CampaignStorePin::load_all() const {
  CampaignResult result;
  for (std::size_t i = 0; i < pins_.size(); ++i)
    result.datasets.push_back(load_dataset(i));
  return result;
}

}  // namespace dfv::sim
