#include "sim/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "common/log.hpp"

namespace dfv::sim {

namespace fs = std::filesystem;

CampaignConfig CampaignConfig::small(std::uint64_t seed) {
  CampaignConfig c;
  c.seed = seed;
  c.machine = net::DragonflyConfig::small(8);
  c.machine.nodes_per_router = 4;  // 8 groups x 12 routers x 4 nodes = 384 nodes
  c.days = 10;
  c.jobs_per_day = 1.5;
  c.warmup_days = 0.5;
  c.quiet_users = 6;
  c.neighborhood_min_nodes = 32;
  c.max_bg_job_nodes = 96;
  // 384-node machine running 128-node instrumented jobs: keep headroom.
  c.cluster.max_bg_utilization = 0.55;
  c.datasets = {{"AMG", 128}, {"MILC", 128}, {"miniVite", 128}, {"UMT", 128}};
  return c;
}

namespace {

/// The campaign account's *other* jobs: the paper's User 8 submitted many
/// jobs (several apps x node counts per day); since instrumented runs are
/// simulated sequentially, concurrent submissions from the same account
/// are represented as background jobs with MILC-like traffic.
sched::UserArchetype campaign_account_archetype(int max_nodes) {
  sched::UserArchetype u;
  u.user_id = sched::kCampaignUserId;
  u.description = "controlled experiments (this study)";
  u.jobs_per_day = 5.0;
  u.min_nodes = std::min(128, max_nodes);
  u.max_nodes = std::min(512, max_nodes);
  u.duration_mean_s = 700.0;
  u.duration_sigma = 0.25;
  u.traffic.net_bytes_per_node_per_s = 0.5e9;
  u.traffic.io_bytes_per_node_per_s = 0.01e9;
  u.traffic.pattern = sched::BgPattern::NearestNeighbor;
  return u;
}

std::vector<sched::UserArchetype> build_population(const CampaignConfig& cfg) {
  auto users = sched::default_user_population(cfg.quiet_users);
  for (auto& u : users) {
    u.min_nodes = std::min(u.min_nodes, cfg.max_bg_job_nodes);
    u.max_nodes = std::min(u.max_nodes, cfg.max_bg_job_nodes);
  }
  users.push_back(campaign_account_archetype(cfg.max_bg_job_nodes));
  return users;
}

}  // namespace

const Dataset& CampaignResult::dataset(const std::string& app, int nodes) const {
  for (const auto& d : datasets)
    if (d.spec.app == app && d.spec.nodes == nodes) return d;
  DFV_CHECK_MSG(false, "no dataset " << app << "-" << nodes << " in campaign result");
  static const Dataset kEmpty;
  return kEmpty;  // unreachable
}

CampaignResult run_campaign(const CampaignConfig& cfg) {
  CampaignResult result;
  Cluster cluster(cfg.machine, cfg.cluster, build_population(cfg), cfg.seed);
  Rng rng(hash_combine(cfg.seed, 0xca3b));

  // Instantiate the app models once per dataset.
  std::vector<std::unique_ptr<apps::AppModel>> models;
  result.datasets.resize(cfg.datasets.size());
  for (std::size_t i = 0; i < cfg.datasets.size(); ++i) {
    result.datasets[i].spec = cfg.datasets[i];
    models.push_back(apps::make_app(cfg.datasets[i].app, cfg.datasets[i].nodes));
  }

  // Let the background fill the machine before the first run.
  cluster.slurm().advance_to(cfg.warmup_days * 86400.0);

  // Build the submission schedule: 1-2 jobs per dataset per day at random
  // times, exactly the paper's protocol.
  struct Submission {
    double time;
    std::size_t dataset;
  };
  std::vector<Submission> schedule;
  for (int day = 0; day < cfg.days; ++day) {
    const double day_start = (cfg.warmup_days + double(day)) * 86400.0;
    for (std::size_t i = 0; i < cfg.datasets.size(); ++i) {
      int count = 1;
      if (cfg.jobs_per_day > 1.0 && rng.bernoulli(cfg.jobs_per_day - 1.0)) count = 2;
      for (int j = 0; j < count; ++j)
        schedule.push_back({day_start + rng.uniform(0.0, 86400.0), i});
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const Submission& a, const Submission& b) { return a.time < b.time; });

  for (std::size_t s = 0; s < schedule.size(); ++s) {
    const Submission& sub = schedule[s];
    if (sub.time > cluster.slurm().now()) {
      const double gap = sub.time - cluster.slurm().now();
      cluster.slurm().advance_to(sub.time);
      cluster.slurm().step_intensities(gap);
      cluster.invalidate_background();
    }
    RunRecord rec = cluster.run_app(*models[sub.dataset]);
    result.datasets[sub.dataset].runs.push_back(std::move(rec));
    if (s % 100 == 0)
      DFV_LOG_INFO("campaign: " << s << "/" << schedule.size() << " runs, day "
                                << cluster.slurm().now() / 86400.0 << ", utilization "
                                << cluster.slurm().utilization());
  }

  // Fill each run's neighborhood from the accounting log: users with at
  // least one qualified job overlapping the run, excluding the run itself.
  result.sacct = cluster.slurm().sacct();
  for (auto& ds : result.datasets)
    for (auto& run : ds.runs) {
      std::vector<int> users;
      for (const auto& rec : result.sacct) {
        if (rec.job_id == run.job_id || rec.num_nodes < cfg.neighborhood_min_nodes)
          continue;
        const double end =
            rec.end_s < 0.0 ? std::numeric_limits<double>::infinity() : rec.end_s;
        if (rec.start_s < run.end_time_s && end > run.start_time_s)
          users.push_back(rec.user_id);
      }
      std::sort(users.begin(), users.end());
      users.erase(std::unique(users.begin(), users.end()), users.end());
      run.neighborhood_users = std::move(users);
    }
  return result;
}

std::uint64_t config_fingerprint(const CampaignConfig& cfg) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t v) { h = hash_combine(h, v); };
  mix(cfg.seed);
  mix(std::uint64_t(cfg.machine.groups));
  mix(std::uint64_t(cfg.machine.row_size));
  mix(std::uint64_t(cfg.machine.col_size));
  mix(std::uint64_t(cfg.machine.nodes_per_router));
  mix(std::uint64_t(cfg.days));
  mix(std::uint64_t(cfg.jobs_per_day * 1000));
  mix(std::uint64_t(cfg.warmup_days * 1000));
  mix(std::uint64_t(cfg.quiet_users));
  mix(std::uint64_t(cfg.neighborhood_min_nodes));
  mix(std::uint64_t(cfg.max_bg_job_nodes));
  mix(std::uint64_t(cfg.cluster.bg_refresh_interval_s * 1000));
  mix(std::uint64_t(cfg.cluster.mpi_noise_sigma * 1.0e6));
  mix(std::uint64_t(int(cfg.cluster.policy)));
  for (const auto& d : cfg.datasets) {
    for (char c : d.app) mix(std::uint64_t(c));
    mix(std::uint64_t(d.nodes));
  }
  // Version tag: bump when the generator's behavior changes so stale
  // caches are not reused.
  mix(0xDFC0DE06);
  return h;
}

CampaignResult run_campaign_cached(const CampaignConfig& cfg, const std::string& cache_dir) {
  std::ostringstream dir_name;
  dir_name << cache_dir << "/campaign_" << std::hex << config_fingerprint(cfg);
  const fs::path dir(dir_name.str());
  const fs::path meta = dir / "META";

  if (fs::exists(meta)) {
    DFV_LOG_INFO("loading cached campaign from " << dir.string());
    CampaignResult result;
    for (const auto& spec : cfg.datasets) {
      Dataset ds = load_dataset((dir / (spec.label() + ".csv")).string());
      ds.spec = spec;
      result.datasets.push_back(std::move(ds));
    }
    return result;
  }

  CampaignResult result = run_campaign(cfg);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (!ec) {
    bool ok = true;
    for (const auto& ds : result.datasets)
      ok = ok && save_dataset(ds, (dir / (ds.spec.label() + ".csv")).string());
    if (ok) {
      std::ofstream m(meta);
      m << "datasets=" << result.datasets.size() << "\n";
    }
  }
  return result;
}

}  // namespace dfv::sim
