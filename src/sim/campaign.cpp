#include "sim/campaign.hpp"

#include <algorithm>
#include <bit>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "common/integrity.hpp"
#include "common/log.hpp"
#include "exec/exec.hpp"
#include "sim/cache_gc.hpp"
#include "sim/campaign_store.hpp"

namespace dfv::sim {

namespace fs = std::filesystem;

CampaignConfig CampaignConfig::small(std::uint64_t seed) {
  CampaignConfig c;
  c.seed = seed;
  c.machine = net::DragonflyConfig::small(8);
  c.machine.nodes_per_router = 4;  // 8 groups x 12 routers x 4 nodes = 384 nodes
  c.days = 10;
  c.jobs_per_day = 1.5;
  c.warmup_days = 0.5;
  c.quiet_users = 6;
  c.neighborhood_min_nodes = 32;
  c.max_bg_job_nodes = 96;
  // 384-node machine running 128-node instrumented jobs: keep headroom.
  c.cluster.max_bg_utilization = 0.55;
  c.datasets = {{"AMG", 128}, {"MILC", 128}, {"miniVite", 128}, {"UMT", 128}};
  c.validate();  // the factory guarantees a runnable config
  return c;
}

CampaignBuilder CampaignConfig::cori() { return CampaignBuilder(CampaignConfig{}); }

CampaignBuilder CampaignConfig::small_machine(std::uint64_t seed) {
  return CampaignBuilder(CampaignConfig::small(seed));
}

void CampaignConfig::validate() const {
  DFV_CHECK_MSG(days >= 1, "campaign days must be >= 1 (got " << days << ")");
  DFV_CHECK_MSG(jobs_per_day >= 0.0,
                "jobs_per_day must be >= 0 (got " << jobs_per_day << ")");
  DFV_CHECK_MSG(warmup_days >= 0.0, "warmup_days must be >= 0 (got " << warmup_days << ")");
  DFV_CHECK_MSG(quiet_users >= 0, "quiet_users must be >= 0 (got " << quiet_users << ")");
  DFV_CHECK_MSG(neighborhood_min_nodes >= 0, "neighborhood_min_nodes must be >= 0");
  DFV_CHECK_MSG(max_bg_job_nodes >= 1, "max_bg_job_nodes must be >= 1");
  DFV_CHECK_MSG(threads >= 0, "threads must be >= 0 (0 = global default)");
  DFV_CHECK_MSG(machine.groups >= 2 && machine.row_size >= 1 && machine.col_size >= 1 &&
                    machine.nodes_per_router >= 1,
                "machine shape is degenerate (groups " << machine.groups << ", row "
                                                       << machine.row_size << ", col "
                                                       << machine.col_size << ")");
  DFV_CHECK_MSG(!datasets.empty(), "campaign needs at least one dataset");
  for (const auto& d : datasets) {
    DFV_CHECK_MSG(!d.app.empty(), "dataset with empty app name");
    DFV_CHECK_MSG(d.nodes >= 1, "dataset " << d.app << " has nodes " << d.nodes);
  }
  DFV_CHECK_MSG(cluster.bg_refresh_interval_s > 0.0, "bg_refresh_interval_s must be > 0");
  DFV_CHECK_MSG(cluster.max_bg_utilization > 0.0 && cluster.max_bg_utilization <= 1.0,
                "max_bg_utilization must be in (0, 1]");
  DFV_CHECK_MSG(cluster.mpi_noise_sigma >= 0.0, "mpi_noise_sigma must be >= 0");
  DFV_CHECK_MSG(cluster.io_routers_per_group >= 1, "io_routers_per_group must be >= 1");
  faults.validate();
}

CampaignBuilder& CampaignBuilder::dataset(std::string app, int nodes) {
  DFV_CHECK_MSG(!app.empty() && nodes >= 1, "dataset needs a name and >= 1 nodes");
  if (!datasets_replaced_) {
    cfg_.datasets.clear();
    datasets_replaced_ = true;
  }
  cfg_.datasets.push_back({std::move(app), nodes});
  return *this;
}

CampaignConfig CampaignBuilder::build() const {
  cfg_.validate();
  return cfg_;
}

namespace {

/// The campaign account's *other* jobs: the paper's User 8 submitted many
/// jobs (several apps x node counts per day); since instrumented runs are
/// simulated sequentially, concurrent submissions from the same account
/// are represented as background jobs with MILC-like traffic.
sched::UserArchetype campaign_account_archetype(int max_nodes) {
  sched::UserArchetype u;
  u.user_id = sched::kCampaignUserId;
  u.description = "controlled experiments (this study)";
  u.jobs_per_day = 5.0;
  u.min_nodes = std::min(128, max_nodes);
  u.max_nodes = std::min(512, max_nodes);
  u.duration_mean_s = 700.0;
  u.duration_sigma = 0.25;
  u.traffic.net_bytes_per_node_per_s = 0.5e9;
  u.traffic.io_bytes_per_node_per_s = 0.01e9;
  u.traffic.pattern = sched::BgPattern::NearestNeighbor;
  return u;
}

std::vector<sched::UserArchetype> build_population(const CampaignConfig& cfg) {
  auto users = sched::default_user_population(cfg.quiet_users);
  for (auto& u : users) {
    u.min_nodes = std::min(u.min_nodes, cfg.max_bg_job_nodes);
    u.max_nodes = std::min(u.max_nodes, cfg.max_bg_job_nodes);
  }
  users.push_back(campaign_account_archetype(cfg.max_bg_job_nodes));
  return users;
}

}  // namespace

const Dataset& CampaignResult::dataset(const std::string& app, int nodes) const {
  for (const auto& d : datasets)
    if (d.spec.app == app && d.spec.nodes == nodes) return d;
  DFV_CHECK_MSG(false, "no dataset " << app << "-" << nodes << " in campaign result");
  static const Dataset kEmpty;
  return kEmpty;  // unreachable
}

CampaignResult run_campaign(const CampaignConfig& cfg) {
  cfg.validate();
  if (cfg.threads > 0) exec::ThreadPool::instance().resize(cfg.threads);
  CampaignResult result;
  Cluster cluster(cfg.machine, cfg.cluster, build_population(cfg), cfg.seed);
  Rng rng(hash_combine(cfg.seed, 0xca3b));

  // Instantiate the app models once per dataset.
  std::vector<std::unique_ptr<apps::AppModel>> models;
  result.datasets.resize(cfg.datasets.size());
  for (std::size_t i = 0; i < cfg.datasets.size(); ++i) {
    result.datasets[i].spec = cfg.datasets[i];
    models.push_back(apps::make_app(cfg.datasets[i].app, cfg.datasets[i].nodes));
  }

  // Let the background fill the machine before the first run.
  cluster.slurm().advance_to(cfg.warmup_days * 86400.0);

  // Build the submission schedule: 1-2 jobs per dataset per day at random
  // times, exactly the paper's protocol.
  struct Submission {
    double time;
    std::size_t dataset;
  };
  std::vector<Submission> schedule;
  for (int day = 0; day < cfg.days; ++day) {
    const double day_start = (cfg.warmup_days + double(day)) * 86400.0;
    for (std::size_t i = 0; i < cfg.datasets.size(); ++i) {
      int count = 1;
      if (cfg.jobs_per_day > 1.0 && rng.bernoulli(cfg.jobs_per_day - 1.0)) count = 2;
      for (int j = 0; j < count; ++j)
        schedule.push_back({day_start + rng.uniform(0.0, 86400.0), i});
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const Submission& a, const Submission& b) { return a.time < b.time; });

  for (std::size_t s = 0; s < schedule.size(); ++s) {
    const Submission& sub = schedule[s];
    if (sub.time > cluster.slurm().now()) {
      const double gap = sub.time - cluster.slurm().now();
      cluster.slurm().advance_to(sub.time);
      cluster.slurm().step_intensities(gap);
      cluster.invalidate_background();
    }
    RunRecord rec = cluster.run_app(*models[sub.dataset]);
    result.datasets[sub.dataset].runs.push_back(std::move(rec));
    if (s % 100 == 0)
      DFV_LOG_INFO("campaign: " << s << "/" << schedule.size() << " runs, day "
                                << cluster.slurm().now() / 86400.0 << ", utilization "
                                << cluster.slurm().utilization());
  }

  // Fill each run's neighborhood from the accounting log: users with at
  // least one qualified job overlapping the run, excluding the run itself.
  // Runs are independent (each writes only its own record), so the scan is
  // parallel over the flattened run list.
  result.sacct = cluster.slurm().sacct();
  std::vector<RunRecord*> all_runs;
  for (auto& ds : result.datasets)
    for (auto& run : ds.runs) all_runs.push_back(&run);
  exec::parallel_for(0, all_runs.size(), 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      RunRecord& run = *all_runs[i];
      std::vector<int> users;
      for (const auto& rec : result.sacct) {
        if (rec.job_id == run.job_id || rec.num_nodes < cfg.neighborhood_min_nodes)
          continue;
        const double end =
            rec.end_s < 0.0 ? std::numeric_limits<double>::infinity() : rec.end_s;
        if (rec.start_s < run.end_time_s && end > run.start_time_s)
          users.push_back(rec.user_id);
      }
      std::sort(users.begin(), users.end());
      users.erase(std::unique(users.begin(), users.end()), users.end());
      run.neighborhood_users = std::move(users);
    }
  });

  // Degrade the finished telemetry per the fault spec. Each dataset gets
  // its own fault stream keyed off (campaign seed, fault seed, dataset
  // index); each run within it draws from a substream, so the result is
  // bit-identical for any thread count.
  if (cfg.faults.enabled()) {
    const std::uint64_t base = hash_combine(cfg.seed, cfg.faults.seed);
    for (std::size_t i = 0; i < result.datasets.size(); ++i)
      inject_faults(result.datasets[i], cfg.faults,
                    hash_combine(base, 0xfa0175ULL + i));
    DFV_LOG_INFO("campaign: injected faults (rate " << cfg.faults.rate << ", kinds "
                                                    << faults::fault_kinds_to_string(
                                                           cfg.faults.kinds)
                                                    << ")");
  }
  return result;
}

std::uint64_t config_fingerprint(const CampaignConfig& cfg) {
  DFV_CHECK(cfg.machine.groups >= 1);
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t v) { h = hash_combine(h, v); };
  // Doubles are mixed by bit pattern: any change to any numeric knob must
  // produce a different cache entry, without quantization collisions.
  auto mix_d = [&mix](double v) { mix(std::bit_cast<std::uint64_t>(v)); };
  mix(cfg.seed);
  // -- machine: every field, including bandwidths/latencies/clocks -------
  const net::DragonflyConfig& m = cfg.machine;
  mix(std::uint64_t(m.groups));
  mix(std::uint64_t(m.row_size));
  mix(std::uint64_t(m.col_size));
  mix(std::uint64_t(m.nodes_per_router));
  mix(std::uint64_t(m.global_ports_per_router));
  mix_d(m.green_bw);
  mix_d(m.black_bw);
  mix_d(m.blue_bw);
  mix_d(m.endpoint_bw);
  mix_d(m.hop_latency);
  mix_d(m.global_latency);
  mix_d(m.flit_bytes);
  mix_d(m.flits_per_packet);
  mix_d(m.clock_hz);
  // -- campaign protocol -------------------------------------------------
  mix(std::uint64_t(cfg.days));
  mix_d(cfg.jobs_per_day);
  mix_d(cfg.warmup_days);
  mix(std::uint64_t(cfg.quiet_users));
  mix(std::uint64_t(cfg.neighborhood_min_nodes));
  mix(std::uint64_t(cfg.max_bg_job_nodes));
  // NOTE: cfg.threads is deliberately excluded — output is bit-identical
  // for any thread count, so caches are shared across thread settings.
  // -- cluster: flow model, routing, counters, scheduler knobs -----------
  const ClusterParams& cl = cfg.cluster;
  mix_d(cl.flow.capacity_headroom);
  mix_d(cl.flow.min_residual_frac);
  mix_d(cl.flow.chunk_bytes);
  mix(std::uint64_t(cl.flow.max_chunks));
  mix(std::uint64_t(cl.flow.routing.minimal_candidates));
  mix(std::uint64_t(cl.flow.routing.valiant_candidates));
  mix_d(cl.flow.routing.congestion_weight);
  mix_d(cl.flow.routing.valiant_hop_penalty);
  mix_d(cl.counters.response_fraction);
  mix_d(cl.counters.in_stall_weight);
  mix_d(cl.counters.out_stall_weight);
  mix_d(cl.counters.cb_endpoint_weight);
  mix_d(cl.counters.cb_transit_weight);
  mix(std::uint64_t(int(cl.policy)));
  mix_d(cl.bg_refresh_interval_s);
  mix(std::uint64_t(cl.io_routers_per_group));
  mix_d(cl.max_bg_utilization);
  mix_d(cl.mpi_noise_sigma);
  for (const auto& d : cfg.datasets) {
    for (char c : d.app) mix(std::uint64_t(c));
    mix(std::uint64_t(d.nodes));
  }
  // -- fault injection: faulted and clean campaigns must never collide ---
  mix_d(cfg.faults.rate);
  mix(cfg.faults.seed);
  mix(std::uint64_t(cfg.faults.kinds));
  mix_d(cfg.faults.spike_magnitude);
  mix_d(cfg.faults.truncate_min_keep);
  // Version tag: bump when the generator's behavior or the cache format
  // changes so stale caches are not reused. 08: quality/profile_missing
  // CSV columns + integrity footers.
  mix(0xDFC0DE08);
  return h;
}

/// Auto-format threshold: campaigns at or above this many total runs are
/// published as column stores (mmap open amortizes the extra files).
constexpr std::size_t kStoreAutoRuns = 4096;

CampaignResult run_campaign_cached(const CampaignConfig& cfg, const std::string& cache_dir,
                                   CacheFormat format) {
  DFV_CHECK_MSG(!cache_dir.empty(), "cache_dir must not be empty");
  std::ostringstream dir_name;
  dir_name << cache_dir << "/campaign_" << std::hex << config_fingerprint(cfg);
  const fs::path dir(dir_name.str());
  const fs::path meta = dir / "META";
  const std::string store_dir = dir_name.str() + ".store";

  // Store-format entries are preferred on read: they carry the same
  // content and open by mmap instead of a full text parse.
  if (format != CacheFormat::Csv && campaign_store_exists(store_dir)) {
    try {
      DFV_LOG_INFO("loading campaign store from " << store_dir);
      CampaignResult result = CampaignStorePin::open(store_dir).load_all();
      DFV_CHECK_MSG(result.datasets.size() == cfg.datasets.size(),
                    "campaign store: dataset count does not match the config");
      for (std::size_t i = 0; i < result.datasets.size(); ++i)
        result.datasets[i].spec = cfg.datasets[i];
      touch_cache_entry(store_dir);
      return result;
    } catch (const ContractError& e) {
      DFV_LOG_WARN("campaign store entry " << store_dir << " is corrupt (" << e.what()
                                           << "); evicting and regenerating");
      std::error_code ec;
      fs::remove_all(store_dir, ec);
    }
  }

  if (format != CacheFormat::Store && fs::exists(meta)) {
    // Trust nothing: every entry must carry a matching integrity footer.
    // Any corruption (bit flips, partial writes, zero-byte files) evicts
    // the whole entry and regenerates it from scratch.
    try {
      DFV_LOG_INFO("loading cached campaign from " << dir.string());
      CampaignResult result;
      for (const auto& spec : cfg.datasets) {
        // Keep: cached faulted telemetry must round-trip verbatim; repair
        // policy is applied downstream, not at the cache boundary.
        Dataset ds = load_dataset((dir / (spec.label() + ".csv")).string(),
                                  /*require_checksum=*/true, faults::RepairPolicy::Keep);
        ds.spec = spec;
        result.datasets.push_back(std::move(ds));
      }
      touch_cache_entry(dir.string());
      return result;
    } catch (const ContractError& e) {
      DFV_LOG_WARN("campaign cache entry " << dir.string() << " is corrupt ("
                                           << e.what() << "); evicting and regenerating");
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
  }

  CampaignResult result = run_campaign(cfg);
  std::size_t total_runs = 0;
  for (const auto& ds : result.datasets) total_runs += ds.runs.size();
  const bool as_store =
      format == CacheFormat::Store ||
      (format == CacheFormat::Auto && total_runs >= kStoreAutoRuns);
  if (as_store) {
    if (!save_campaign_store(result, store_dir))
      DFV_LOG_WARN("failed to publish campaign store entry " << store_dir);
  } else {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (!ec) {
      // Publish datasets first (each one atomically), then META last: the
      // META file is the commit point a reader keys on, so a crash mid-
      // publish leaves no entry rather than a half-written one.
      bool ok = true;
      for (const auto& ds : result.datasets)
        ok = ok && save_dataset(ds, (dir / (ds.spec.label() + ".csv")).string());
      if (ok) {
        std::ostringstream m;
        m << "format=dfc0de08\n";
        m << "datasets=" << result.datasets.size() << "\n";
        ok = atomic_write_file(meta.string(), m.str());
      }
      if (!ok)
        DFV_LOG_WARN("failed to publish campaign cache entry " << dir.string());
    }
  }
  enforce_cache_budget_from_env(cache_dir);
  return result;
}

}  // namespace dfv::sim
