// Congestion-aware scheduling: the paper's motivating use case and
// stated future work ("a resource manager can use such historical data
// to delay scheduling jobs that are communication-sensitive when certain
// other jobs are already running", §V-A; "we plan to exploit this
// predictive power to improve scheduling and placement", §VII).
//
// Two admission gates built from the paper's analyses:
//  * blame gate — hold the job while any user from the neighborhood
//    analysis's blamed list (Table III) runs a qualified job;
//  * congestion gate — probe a tentative placement's CongestionView and
//    hold while the predicted slowdown of this app exceeds a threshold
//    (the deviation analysis's counters drive the same quantities).
#pragma once

#include <vector>

#include "apps/app_model.hpp"
#include "sim/cluster.hpp"

namespace dfv::sim {

struct CongestionAwarePolicy {
  /// Users whose presence (running a job of at least `min_blamed_nodes`
  /// nodes) holds admission; typically analysis::blamed_users() output.
  std::vector<int> blamed_users;
  int min_blamed_nodes = 128;

  /// Hold while the app's predicted MPI slowdown factor at a probe
  /// placement exceeds this (1.0 = any congestion holds; <= 0 disables).
  double max_predicted_slowdown = 1.35;

  double max_delay_s = 12 * 3600.0;  ///< give up waiting after this
  double check_interval_s = 1800.0;  ///< re-evaluate cadence
};

struct ScheduleDecision {
  double waited_s = 0.0;        ///< queue delay the policy added
  bool gave_up = false;         ///< max_delay_s reached; ran anyway
  int holds_blame = 0;          ///< checks held by the blame gate
  int holds_congestion = 0;     ///< checks held by the congestion gate
  double predicted_slowdown = 1.0;  ///< at admission time
};

/// Result of one congestion-aware run.
struct AwareRun {
  RunRecord record;
  ScheduleDecision decision;
};

class CongestionAwareScheduler {
 public:
  CongestionAwareScheduler(Cluster& cluster, CongestionAwarePolicy policy)
      : cluster_(&cluster), policy_(std::move(policy)) {}

  /// Predicted MPI slowdown factor of `app` if started right now: probes a
  /// tentative placement, reads its CongestionView, applies the app's
  /// sensitivity coefficients, and releases the probe.
  [[nodiscard]] double predicted_slowdown(const apps::AppModel& app);

  /// True if any blamed user currently runs a qualified job.
  [[nodiscard]] bool blamed_user_active() const;

  /// Delay (bounded) until both gates clear, then run the app.
  [[nodiscard]] AwareRun run_when_clear(const apps::AppModel& app,
                                        int user_id = sched::kCampaignUserId);

  [[nodiscard]] const CongestionAwarePolicy& policy() const noexcept { return policy_; }

 private:
  Cluster* cluster_;
  CongestionAwarePolicy policy_;
};

}  // namespace dfv::sim
