// Size accounting and LRU eviction for the on-disk cache directory.
// Entries are the direct subdirectories of the cache root (CSV campaign
// blobs, campaign-store entries, longitudinal stores); recency is the
// mtime of the entry's commit-point file (META / MANIFEST), which load
// paths touch on every cache hit. `dfv cache` fronts this module, and
// run_campaign_cached enforces the DFV_CACHE_MAX_BYTES budget after
// each publish so the cache can no longer grow without bound.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace dfv::sim {

struct CacheEntryInfo {
  std::string name;           ///< directory name under the cache root
  std::string kind;           ///< "campaign-csv" | "campaign-store" | "store" | "other"
  std::uintmax_t bytes = 0;   ///< recursive size
  std::filesystem::file_time_type mtime{};  ///< commit-point recency
};

/// All entries of `cache_dir`, sorted by name (deterministic listing).
/// A missing cache directory yields an empty list.
[[nodiscard]] std::vector<CacheEntryInfo> list_cache_entries(const std::string& cache_dir);

/// Mark an entry as recently used (bump its commit-point mtime). Load
/// paths call this on cache hits; unknown paths are ignored.
void touch_cache_entry(const std::string& entry_dir);

/// Evict least-recently-used entries until the cache fits `max_bytes`
/// (ties broken by name). Returns the evicted entry names, oldest first.
[[nodiscard]] std::vector<std::string> evict_cache_lru(const std::string& cache_dir,
                                                       std::uintmax_t max_bytes);

/// Apply the DFV_CACHE_MAX_BYTES env budget (unset or 0 = unlimited).
void enforce_cache_budget_from_env(const std::string& cache_dir);

}  // namespace dfv::sim
