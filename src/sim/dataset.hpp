// Run records and datasets: the output of the controlled experiment
// campaign, and the input to every analysis in the paper.
//
// A dataset corresponds to one (application, node count) pair and holds
// 175-225 runs, each with per-step execution times, per-step AriesNCL
// counter deltas, per-step LDMS io/sys aggregates, placement features,
// and the run's user neighborhood.
//
// Telemetry is allowed to be degraded: each step carries a quality mask
// (dfv::faults) and every aggregate here skips unusable or non-finite
// entries, so faulted datasets flow through the pipeline without
// poisoning the statistics. `Dataset::repair` is the choke point that
// detects and (per policy) fixes anomalies before analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "faults/repair.hpp"
#include "mon/counters.hpp"
#include "mon/ldms.hpp"
#include "mon/mpip.hpp"

namespace dfv::sim {

/// One instrumented application run.
struct RunRecord {
  int job_id = 0;
  double submit_time_s = 0.0;  ///< campaign time of submission
  double start_time_s = 0.0;
  double end_time_s = 0.0;
  int num_routers = 0;  ///< NUM_ROUTERS placement feature
  int num_groups = 0;   ///< NUM_GROUPS placement feature

  std::vector<double> step_times;                ///< T entries
  std::vector<mon::CounterVec> step_counters;    ///< T x 13 AriesNCL deltas
  std::vector<mon::LdmsFeatures> step_ldms;      ///< T x (4 io + 4 sys)
  mon::MpiProfile profile;                       ///< whole-run mpiP profile
  std::vector<int> neighborhood_users;           ///< users with >=128-node overlapping jobs

  /// Per-step quality bits (dfv::faults::kQuality*). Empty means the run
  /// predates fault tracking: every step is pristine.
  std::vector<std::uint8_t> step_quality;
  bool profile_missing = false;  ///< mpiP profile lost for this run

  /// Total of the finite step times (a corrupt step cannot poison it).
  [[nodiscard]] double total_time_s() const;
  [[nodiscard]] int steps() const noexcept { return int(step_times.size()); }
  [[nodiscard]] std::uint8_t quality(int t) const noexcept {
    return step_quality.empty() ? std::uint8_t(faults::kQualityOk)
                                : step_quality[std::size_t(t)];
  }
  [[nodiscard]] bool step_usable(int t) const noexcept {
    return faults::step_usable(quality(t));
  }
  /// Non-owning fault-surface view for dfv::faults inject/repair.
  [[nodiscard]] faults::RunTelemetry telemetry() {
    return {step_times, step_counters, step_ldms, step_quality, profile, profile_missing};
  }
};

/// Aggregate outcome of `Dataset::repair` (one dataset).
struct RepairReport {
  faults::RepairPolicy policy = faults::RepairPolicy::Keep;
  int runs_in = 0;
  int runs_dropped = 0;     ///< truncated or beyond-repair runs removed
  int truncated_runs = 0;
  int bad_steps = 0;        ///< steps flagged dropped/corrupt across all runs
  int imputed_steps = 0;
  int wrapped_cells = 0;    ///< 2^32 wraparounds detected (unwound, Repair)
  int corrupt_cells = 0;
  int profiles_missing = 0;

  [[nodiscard]] bool any_anomaly() const noexcept {
    return runs_dropped > 0 || truncated_runs > 0 || bad_steps > 0 ||
           wrapped_cells > 0 || corrupt_cells > 0 || profiles_missing > 0;
  }
  [[nodiscard]] std::string summary() const;
};

/// All runs of one (application, node count) dataset.
struct Dataset {
  apps::DatasetSpec spec;
  std::vector<RunRecord> runs;

  [[nodiscard]] std::size_t num_runs() const noexcept { return runs.size(); }
  /// Nominal step count: the modal run length (robust to truncated runs).
  [[nodiscard]] int steps_per_run() const;

  /// Mean time per step across runs (Fig. 3's curves). Unusable or
  /// non-finite entries are skipped; each step averages over the runs
  /// that actually observed it.
  [[nodiscard]] std::vector<double> mean_step_curve() const;
  /// Mean per-step curve of one counter across runs (Fig. 7).
  [[nodiscard]] std::vector<double> mean_counter_curve(mon::Counter c) const;
  /// Total run times of all runs.
  [[nodiscard]] std::vector<double> total_times() const;

  /// Detect and handle degraded telemetry per `policy` (see
  /// faults::repair_run). Strict throws ContractError on any anomaly;
  /// Repair unwinds wraps and imputes gaps; Drop flags bad steps for
  /// consumers to skip; Keep is a no-op. Truncated or beyond-repair runs
  /// are removed under Repair/Drop. Deterministic and parallel-safe.
  [[nodiscard]] RepairReport repair(faults::RepairPolicy policy, const faults::RepairOptions& opt = {});
};

/// Inject faults into every run of `ds` per `spec`. Each run draws from
/// its own substream seed derived from (`stream_seed`, run index), so the
/// result is bit-identical for any thread count.
void inject_faults(Dataset& ds, const faults::FaultSpec& spec, std::uint64_t stream_seed);

/// Serialize a dataset to CSV (one row per run-step plus run metadata
/// columns) and back; used both for the on-disk campaign cache and so the
/// generated data can be inspected with external tools.
///
/// Parsing validates structure (column count per row, full numeric
/// consumption of every numeric field) and throws ContractError with the
/// offending row on malformed input; the repair `policy` is then applied
/// to the parsed dataset (default Strict: any telemetry anomaly throws).
[[nodiscard]] std::string dataset_to_csv(const Dataset& ds);
[[nodiscard]] Dataset dataset_from_csv(
    const std::string& csv_text,
    faults::RepairPolicy policy = faults::RepairPolicy::Strict);

/// Atomic (temp + rename) write with a trailing integrity checksum.
[[nodiscard]] bool save_dataset(const Dataset& ds, const std::string& path);
/// Load and verify: a checksum mismatch always throws ContractError; a
/// missing footer throws only when `require_checksum` is set (the
/// campaign cache requires it; ad-hoc CSVs need not carry one).
[[nodiscard]] Dataset load_dataset(
    const std::string& path, bool require_checksum = false,
    faults::RepairPolicy policy = faults::RepairPolicy::Strict);

}  // namespace dfv::sim
