// Run records and datasets: the output of the controlled experiment
// campaign, and the input to every analysis in the paper.
//
// A dataset corresponds to one (application, node count) pair and holds
// 175-225 runs, each with per-step execution times, per-step AriesNCL
// counter deltas, per-step LDMS io/sys aggregates, placement features,
// and the run's user neighborhood.
#pragma once

#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "mon/counters.hpp"
#include "mon/ldms.hpp"
#include "mon/mpip.hpp"

namespace dfv::sim {

/// One instrumented application run.
struct RunRecord {
  int job_id = 0;
  double submit_time_s = 0.0;  ///< campaign time of submission
  double start_time_s = 0.0;
  double end_time_s = 0.0;
  int num_routers = 0;  ///< NUM_ROUTERS placement feature
  int num_groups = 0;   ///< NUM_GROUPS placement feature

  std::vector<double> step_times;                ///< T entries
  std::vector<mon::CounterVec> step_counters;    ///< T x 13 AriesNCL deltas
  std::vector<mon::LdmsFeatures> step_ldms;      ///< T x (4 io + 4 sys)
  mon::MpiProfile profile;                       ///< whole-run mpiP profile
  std::vector<int> neighborhood_users;           ///< users with >=128-node overlapping jobs

  [[nodiscard]] double total_time_s() const;
  [[nodiscard]] int steps() const noexcept { return int(step_times.size()); }
};

/// All runs of one (application, node count) dataset.
struct Dataset {
  apps::DatasetSpec spec;
  std::vector<RunRecord> runs;

  [[nodiscard]] std::size_t num_runs() const noexcept { return runs.size(); }
  [[nodiscard]] int steps_per_run() const;

  /// Mean time per step across runs (Fig. 3's curves).
  [[nodiscard]] std::vector<double> mean_step_curve() const;
  /// Mean per-step curve of one counter across runs (Fig. 7).
  [[nodiscard]] std::vector<double> mean_counter_curve(mon::Counter c) const;
  /// Total run times of all runs.
  [[nodiscard]] std::vector<double> total_times() const;
};

/// Serialize a dataset to CSV (one row per run-step plus run metadata
/// columns) and back; used both for the on-disk campaign cache and so the
/// generated data can be inspected with external tools.
[[nodiscard]] std::string dataset_to_csv(const Dataset& ds);
[[nodiscard]] Dataset dataset_from_csv(const std::string& csv_text);

bool save_dataset(const Dataset& ds, const std::string& path);
[[nodiscard]] Dataset load_dataset(const std::string& path);

}  // namespace dfv::sim
