// Cluster: ties the network engine, scheduler, and monitoring together
// and executes instrumented application runs step by step.
//
// Background jobs contribute sustained link loads (refreshed when the
// running-job set changes or every bg_refresh_interval_s of simulated
// time, with per-job OU intensity modulation). The instrumented job's
// phases are routed against that background; phase durations combine a
// latency/software baseline scaled by the app's congestion sensitivities
// with the measured transfer makespan.
#pragma once

#include <memory>

#include "apps/app_model.hpp"
#include "mon/counter_model.hpp"
#include "mon/ldms.hpp"
#include "net/flow_model.hpp"
#include "sched/slurm.hpp"
#include "sim/dataset.hpp"

namespace dfv::sim {

struct ClusterParams {
  net::FlowModelParams flow;
  mon::CounterModelParams counters;
  net::RoutingPolicy policy = net::RoutingPolicy::Ugal;
  /// Background load cache lifetime in simulated seconds.
  double bg_refresh_interval_s = 30.0;
  int io_routers_per_group = 1;
  /// Headroom cap on background utilization (see SlurmSim). On small
  /// machines set this low enough that the instrumented jobs always fit.
  double max_bg_utilization = 0.88;
  /// Residual (unexplained) multiplicative noise on MPI phase times:
  /// OS jitter and everything else the counters cannot see.
  double mpi_noise_sigma = 0.03;
};

/// Congestion factors observed by a job at a point in time.
struct CongestionView {
  double pt_stall = 0.0;   ///< endpoint stall-fraction summary over job routers
  double transit = 1.0;    ///< congestion_factor over job links (>= 1)
};

class Cluster {
 public:
  Cluster(const net::DragonflyConfig& cfg, ClusterParams params,
          std::vector<sched::UserArchetype> users, std::uint64_t seed);

  [[nodiscard]] const net::Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] sched::SlurmSim& slurm() noexcept { return slurm_; }
  [[nodiscard]] const sched::SlurmSim& slurm() const noexcept { return slurm_; }
  [[nodiscard]] const mon::LdmsSampler& ldms() const noexcept { return ldms_; }
  [[nodiscard]] const ClusterParams& params() const noexcept { return params_; }

  /// Execute one instrumented run of `app` under `user_id`, advancing
  /// simulated time. Returns the populated record (neighborhood not yet
  /// filled; the campaign fills it from sacct once the run window is
  /// known). Throws ContractError if the job cannot be placed after
  /// `max_wait_s` of queue waiting.
  [[nodiscard]] RunRecord run_app(const apps::AppModel& app,
                                  int user_id = sched::kCampaignUserId,
                                  double max_wait_s = 6 * 3600.0);

  /// Current congestion factors for an ad-hoc router set (examples use
  /// this to show interference directly).
  [[nodiscard]] CongestionView congestion(std::span<const net::RouterId> routers);

  /// Force a background-load refresh on next access (tests).
  void invalidate_background() noexcept { bg_valid_ = false; }

  /// Direct access to the flow model for examples / what-if studies.
  [[nodiscard]] const net::FlowModel& flow_model() const noexcept { return flow_; }
  /// Current background loads (refreshing if stale).
  [[nodiscard]] const net::RateLoads& background_loads();

 private:
  void refresh_background_if_needed();
  [[nodiscard]] CongestionView congestion_of(std::span<const net::RouterId> routers) const;

  net::Topology topo_;
  ClusterParams params_;
  net::FlowModel flow_;
  mon::CounterModel counter_model_;
  mon::LdmsSampler ldms_;
  sched::SlurmSim slurm_;
  Rng rng_;

  net::RateLoads bg_loads_;
  bool bg_valid_ = false;
  double bg_refresh_time_ = -1.0;
  std::uint64_t bg_epoch_seen_ = ~0ull;

  /// Per-job routed link loads at intensity 1, stored sparsely so a
  /// refresh is a weighted sum instead of a full re-route. Paths are
  /// frozen at job start (realistic: placements do not move).
  struct SparseLoads {
    std::vector<std::pair<net::LinkId, double>> links;
    std::vector<std::pair<net::RouterId, double>> inject;
    std::vector<std::pair<net::RouterId, double>> eject;
  };
  std::vector<std::pair<int, SparseLoads>> bg_cache_;  ///< job_id -> loads
  net::RateLoads route_scratch_;

  net::ByteLoads step_loads_;  ///< scratch: instrumented job's bytes this step
};

}  // namespace dfv::sim
