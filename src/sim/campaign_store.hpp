// Column-store cache format for campaigns: each dataset becomes three
// sub-stores (per-run scalars, per-step telemetry, neighborhood lists)
// under one entry directory, with a checksummed META as the commit
// point. Against the CSV blob format this opens in O(MANIFEST parse +
// mmap) instead of O(full text parse) — datasets materialize lazily,
// one at a time, straight off the mappings — and it is the substrate
// `dfv serve` uses to bring campaigns resident by mmap.
//
// Layout:
//   <dir>/META                    "dfv-campaign-store" + dataset table,
//                                 `#dfv-crc` footer, written last
//   <dir>/<label>/runs/           store::ColumnStore (job/placement/
//                                 profile scalars, one row per run)
//   <dir>/<label>/steps/          step times + 13 counters + 8 LDMS
//                                 features + quality, one row per step
//   <dir>/<label>/neigh/          flattened neighborhood user ids
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/campaign.hpp"
#include "store/column_store.hpp"

namespace dfv::sim {

/// True when `dir` holds a committed campaign-store entry (META present).
[[nodiscard]] bool campaign_store_exists(const std::string& dir);

/// Publish `result` as a campaign-store entry at `dir`: every sub-store
/// is written and published first, META strictly last. Returns false on
/// I/O failure (the entry is then not committed).
[[nodiscard]] bool save_campaign_store(const CampaignResult& result,
                                       const std::string& dir);

/// Cheap open handle over a committed entry: parses META and pins the
/// sub-stores (mmap; no rows are materialized). Throws ContractError on
/// any inconsistency — callers treat that as a corrupt cache entry.
class CampaignStorePin {
 public:
  [[nodiscard]] static CampaignStorePin open(const std::string& dir);

  [[nodiscard]] std::size_t num_datasets() const noexcept { return specs_.size(); }
  [[nodiscard]] const std::vector<apps::DatasetSpec>& specs() const noexcept {
    return specs_;
  }

  /// Materialize one dataset from the pinned columns (bit-exact round
  /// trip of what save_campaign_store was given, including NaNs, quality
  /// masks, and the empty-vs-all-ok quality distinction).
  [[nodiscard]] Dataset load_dataset(std::size_t i) const;

  /// Materialize everything (the run_campaign_cached load path).
  [[nodiscard]] CampaignResult load_all() const;

 private:
  struct DatasetPins {
    std::shared_ptr<const store::StorePin> runs;
    std::shared_ptr<const store::StorePin> steps;
    std::shared_ptr<const store::StorePin> neigh;
  };

  std::vector<apps::DatasetSpec> specs_;
  std::vector<DatasetPins> pins_;
};

}  // namespace dfv::sim
