#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/log.hpp"
#include "exec/exec.hpp"

namespace dfv::sim {

Cluster::Cluster(const net::DragonflyConfig& cfg, ClusterParams params,
                 std::vector<sched::UserArchetype> users, std::uint64_t seed)
    : topo_(cfg),
      params_(params),
      flow_(topo_, params.flow),
      counter_model_(topo_, params.counters),
      ldms_(counter_model_, mon::make_default_io_routers(topo_, params.io_routers_per_group)),
      slurm_(topo_, std::move(users), ldms_.io_routers(), hash_combine(seed, 0x51ce),
             sched::AllocPolicy::Clustered),
      rng_(hash_combine(seed, 0xc1057e2)) {
  DFV_CHECK(params_.max_bg_utilization > 0.0 && params_.max_bg_utilization <= 1.0);
  slurm_.set_max_background_utilization(params_.max_bg_utilization);
  bg_loads_.resize(topo_);
  step_loads_.resize(topo_);
}

void Cluster::refresh_background_if_needed() {
  const double now = slurm_.now();
  const std::uint64_t epoch = slurm_.background_epoch();
  if (bg_valid_ && epoch == bg_epoch_seen_ &&
      now - bg_refresh_time_ < params_.bg_refresh_interval_s)
    return;

  // Evict cache entries for finished jobs, then route newly arrived jobs
  // once (at intensity 1) and cache their sparse link loads.
  const auto& running = slurm_.running_background();
  std::erase_if(bg_cache_, [&](const auto& entry) {
    for (const auto& job : running)
      if (job.job_id == entry.first) return false;
    return true;
  });
  for (const auto& job : running) {
    bool cached = false;
    for (const auto& entry : bg_cache_)
      if (entry.first == job.job_id) {
        cached = true;
        break;
      }
    if (cached || job.demands_per_s.empty()) continue;
    if (route_scratch_.link_rate.empty()) route_scratch_.resize(topo_);
    route_scratch_.clear();
    Rng route_rng = rng_.split(std::uint64_t(job.job_id) * 0x9e37u);
    flow_.route_background(job.demands_per_s, params_.policy, 1.0, route_rng,
                           route_scratch_);
    SparseLoads sparse;
    for (std::size_t e = 0; e < route_scratch_.link_rate.size(); ++e)
      if (route_scratch_.link_rate[e] > 0.0)
        sparse.links.emplace_back(net::LinkId(e), route_scratch_.link_rate[e]);
    for (std::size_t r = 0; r < route_scratch_.inject_rate.size(); ++r) {
      if (route_scratch_.inject_rate[r] > 0.0)
        sparse.inject.emplace_back(net::RouterId(r), route_scratch_.inject_rate[r]);
      if (route_scratch_.eject_rate[r] > 0.0)
        sparse.eject.emplace_back(net::RouterId(r), route_scratch_.eject_rate[r]);
    }
    bg_cache_.emplace_back(job.job_id, std::move(sparse));
  }

  // Combine: weighted sparse sum with each job's current OU intensity.
  // Parallelized by partitioning the resource-id space: each chunk owns a
  // disjoint dense range and scans every job's sorted sparse list (binary
  // search to its start), so per-element accumulation order equals the
  // serial job order and the result is thread-count independent.
  std::vector<std::pair<const SparseLoads*, double>> active;
  active.reserve(running.size());
  for (const auto& job : running) {
    const double mult = job.intensity();
    if (mult <= 0.0) continue;
    for (const auto& entry : bg_cache_) {
      if (entry.first != job.job_id) continue;
      active.emplace_back(&entry.second, mult);
      break;
    }
  }
  bg_loads_.clear();
  exec::parallel_for(0, bg_loads_.link_rate.size(), 16384,
                     [&](std::size_t lo, std::size_t hi) {
                       for (const auto& [sp, mult] : active) {
                         auto it = std::lower_bound(
                             sp->links.begin(), sp->links.end(), lo,
                             [](const auto& a, std::size_t v) { return std::size_t(a.first) < v; });
                         for (; it != sp->links.end() && std::size_t(it->first) < hi; ++it)
                           bg_loads_.link_rate[std::size_t(it->first)] += it->second * mult;
                       }
                     });
  exec::parallel_for(0, bg_loads_.inject_rate.size(), 512,
                     [&](std::size_t lo, std::size_t hi) {
                       for (const auto& [sp, mult] : active) {
                         auto it = std::lower_bound(
                             sp->inject.begin(), sp->inject.end(), lo,
                             [](const auto& a, std::size_t v) { return std::size_t(a.first) < v; });
                         for (; it != sp->inject.end() && std::size_t(it->first) < hi; ++it)
                           bg_loads_.inject_rate[std::size_t(it->first)] += it->second * mult;
                         auto jt = std::lower_bound(
                             sp->eject.begin(), sp->eject.end(), lo,
                             [](const auto& a, std::size_t v) { return std::size_t(a.first) < v; });
                         for (; jt != sp->eject.end() && std::size_t(jt->first) < hi; ++jt)
                           bg_loads_.eject_rate[std::size_t(jt->first)] += jt->second * mult;
                       }
                     });
  bg_valid_ = true;
  bg_refresh_time_ = now;
  bg_epoch_seen_ = epoch;
}

const net::RateLoads& Cluster::background_loads() {
  refresh_background_if_needed();
  return bg_loads_;
}

CongestionView Cluster::congestion_of(std::span<const net::RouterId> routers) const {
  CongestionView v;
  if (routers.empty()) return v;
  const double ep_bw = topo_.config().endpoint_bw;
  DFV_CHECK(ep_bw > 0.0);
  for (net::RouterId r : routers) DFV_CHECK(std::size_t(r) < bg_loads_.inject_rate.size());
  std::vector<double> stalls;
  stalls.reserve(routers.size());
  double sum = 0.0;
  for (net::RouterId r : routers) {
    const double u_inj = bg_loads_.inject_rate[std::size_t(r)] / ep_bw;
    const double u_ej = bg_loads_.eject_rate[std::size_t(r)] / ep_bw;
    const double s = 0.5 * (net::stall_fraction(u_inj) + net::stall_fraction(u_ej));
    sum += s;
    stalls.push_back(s);
  }
  // Mean captures diffuse endpoint pressure; the upper tail (p95) captures
  // the few shared routers that stall a tightly synchronized code without
  // letting a single saturated router dominate large placements.
  const std::size_t q = stalls.size() - 1 - (stalls.size() - 1) / 20;
  std::nth_element(stalls.begin(), stalls.begin() + q, stalls.end());
  v.pt_stall = sum / double(routers.size()) + 0.35 * stalls[q];
  v.transit = flow_.congestion_factor(routers, bg_loads_);
  return v;
}

// dfv-lint: allow(contract): thin forwarder; congestion_of validates the placement
CongestionView Cluster::congestion(std::span<const net::RouterId> routers) {
  refresh_background_if_needed();
  return congestion_of(routers);
}

RunRecord Cluster::run_app(const apps::AppModel& app, int user_id, double max_wait_s) {
  const auto& info = app.info();
  const double submit_time = slurm_.now();

  // Queue until the allocator can place the job (the paper's jobs waited
  // in Cori's production queue).
  std::optional<int> job_id;
  for (double waited = 0.0; waited <= max_wait_s;) {
    job_id = slurm_.start_instrumented_job(info.name, info.nodes, user_id);
    if (job_id) break;
    const double wait = 600.0;
    slurm_.advance_to(slurm_.now() + wait);
    slurm_.step_intensities(wait);
    waited += wait;
  }
  DFV_CHECK_MSG(job_id.has_value(),
                "could not place " << info.name << " on " << info.nodes << " nodes after "
                                   << max_wait_s << "s of queue wait");

  const sched::Placement placement = slurm_.placement_of(*job_id);
  RunRecord rec;
  rec.job_id = *job_id;
  rec.submit_time_s = submit_time;
  rec.start_time_s = slurm_.now();
  rec.num_routers = placement.num_routers();
  rec.num_groups = placement.num_groups;

  Rng app_rng = rng_.split(std::uint64_t(*job_id));
  const apps::AppCoefficients& coeff = app.coefficients();

  for (int t = 0; t < app.num_steps(); ++t) {
    refresh_background_if_needed();
    const apps::StepSpec spec = app.step(t, placement, topo_, app_rng);
    const CongestionView cong = congestion_of(placement.routers);

    step_loads_.clear();
    double step_time = spec.compute_s;
    mon::MpiProfile step_profile;
    step_profile.add_compute(spec.compute_s);

    for (const apps::PhaseSpec& phase : spec.phases) {
      double phase_time = 0.0;
      const double noise = std::exp(params_.mpi_noise_sigma * app_rng.normal());
      switch (phase.kind) {
        case apps::PhaseSpec::Kind::PointToPoint: {
          const auto xfer = flow_.transfer(phase.demands, params_.policy, bg_loads_,
                                           app_rng, &step_loads_);
          phase_time = phase.base_seconds *
                           (1.0 + coeff.pt_weight * cong.pt_stall +
                            coeff.rt_weight * (cong.transit - 1.0)) *
                           noise +
                       xfer.makespan;
          break;
        }
        case apps::PhaseSpec::Kind::Allreduce:
        case apps::PhaseSpec::Kind::Barrier: {
          phase_time = phase.base_seconds *
                       (1.0 + coeff.coll_weight * (cong.transit - 1.0) +
                        0.5 * coeff.pt_weight * cong.pt_stall) *
                       noise;
          // Collective payloads touch every router's processor tiles.
          const double coll_bytes = phase.rounds * phase.bytes;
          if (coll_bytes > 0.0)
            for (net::RouterId r : placement.routers) {
              step_loads_.inject_bytes[std::size_t(r)] += coll_bytes;
              step_loads_.eject_bytes[std::size_t(r)] += coll_bytes;
            }
          break;
        }
      }
      step_time += phase_time;
      for (const apps::RoutineShare& rs : phase.attribution)
        step_profile.add(rs.routine, rs.share * phase_time);
    }

    // Advance the world by the step's duration, then measure: counter
    // deltas integrate background traffic over exactly this interval.
    slurm_.advance_to(slurm_.now() + step_time);
    slurm_.step_intensities(step_time);

    DFV_LOG_DEBUG("step " << t << ": " << step_time << "s (compute " << spec.compute_s
                          << ", pt_stall " << cong.pt_stall << ", transit "
                          << cong.transit << ")");
    rec.step_times.push_back(step_time);
    rec.step_counters.push_back(
        counter_model_.aggregate(placement.routers, bg_loads_, step_loads_, step_time));
    rec.step_ldms.push_back(
        ldms_.sample(bg_loads_, step_loads_, step_time, placement.routers));
    rec.profile.add(step_profile);
  }

  slurm_.end_instrumented_job(*job_id);
  rec.end_time_s = slurm_.now();
  return rec;
}

}  // namespace dfv::sim
