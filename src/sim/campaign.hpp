// Campaign driver: reproduces the paper's data-collection protocol
// (§III-A): between December 2018 and April 2019, one or two jobs per
// application and node count were submitted to Cori's production queue
// every day under a single user account (the paper's User 8); each of
// the six (app, nodes) datasets ends up with 175-225 runs.
#pragma once

#include <string>
#include <vector>

#include "sim/cluster.hpp"

namespace dfv::sim {

struct CampaignConfig {
  std::uint64_t seed = 20181203;
  net::DragonflyConfig machine = net::DragonflyConfig::cori();
  ClusterParams cluster;
  int days = 120;              ///< campaign length (Dec..Apr)
  double jobs_per_day = 1.6;   ///< per dataset ("one or two jobs per day")
  double warmup_days = 2.0;    ///< fill the machine before the first run
  int quiet_users = 24;
  int neighborhood_min_nodes = 128;  ///< job-size qualification for blame lists
  int max_bg_job_nodes = 1024;       ///< clamp background job sizes (small machines)
  /// Datasets to collect; defaults to the paper's six (app, nodes) pairs.
  std::vector<apps::DatasetSpec> datasets = apps::paper_datasets();

  /// Scaled-down configuration for tests: small machine, few days.
  [[nodiscard]] static CampaignConfig small(std::uint64_t seed = 42);
};

struct CampaignResult {
  std::vector<Dataset> datasets;  ///< in apps::paper_datasets() order
  std::vector<sched::JobRecord> sacct;

  [[nodiscard]] const Dataset& dataset(const std::string& app, int nodes) const;
};

/// Run the full campaign.
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

/// Run the campaign, or load it from `cache_dir` if a cache produced with
/// an identical configuration exists there (benches share one campaign).
[[nodiscard]] CampaignResult run_campaign_cached(const CampaignConfig& config,
                                                 const std::string& cache_dir);

/// Stable hash of a configuration (names the cache directory entry).
[[nodiscard]] std::uint64_t config_fingerprint(const CampaignConfig& config);

}  // namespace dfv::sim
