// Campaign driver: reproduces the paper's data-collection protocol
// (§III-A): between December 2018 and April 2019, one or two jobs per
// application and node count were submitted to Cori's production queue
// every day under a single user account (the paper's User 8); each of
// the six (app, nodes) datasets ends up with 175-225 runs.
#pragma once

#include <string>
#include <vector>

#include "faults/faults.hpp"
#include "sim/cluster.hpp"

namespace dfv::sim {

class CampaignBuilder;

struct CampaignConfig {
  std::uint64_t seed = 20181203;
  net::DragonflyConfig machine = net::DragonflyConfig::cori();
  ClusterParams cluster;
  int days = 120;              ///< campaign length (Dec..Apr)
  double jobs_per_day = 1.6;   ///< per dataset ("one or two jobs per day")
  double warmup_days = 2.0;    ///< fill the machine before the first run
  int quiet_users = 24;
  int neighborhood_min_nodes = 128;  ///< job-size qualification for blame lists
  int max_bg_job_nodes = 1024;       ///< clamp background job sizes (small machines)
  /// Worker threads while this campaign runs (0 = keep the global pool as
  /// configured by --threads / DFV_THREADS). Deliberately NOT part of the
  /// config fingerprint: results are bit-identical for any thread count
  /// (enforced by test_campaign's determinism test), so the cache entry
  /// must not depend on it.
  int threads = 0;
  /// Telemetry fault injection applied to the finished datasets (disabled
  /// by default). Every field participates in config_fingerprint(), so
  /// clean and faulted campaigns never share a cache entry. Injection is
  /// seeded per run and bit-identical across thread counts.
  faults::FaultSpec faults;
  /// Datasets to collect; defaults to the paper's six (app, nodes) pairs.
  std::vector<apps::DatasetSpec> datasets = apps::paper_datasets();

  /// Scaled-down configuration for tests: small machine, few days.
  [[nodiscard]] static CampaignConfig small(std::uint64_t seed = 42);

  /// Fluent builders over the two base configurations:
  ///   auto cfg = CampaignConfig::cori().days(30).seed(7).threads(4).build();
  [[nodiscard]] static CampaignBuilder cori();
  [[nodiscard]] static CampaignBuilder small_machine(std::uint64_t seed = 42);

  /// Throws ContractError on nonsense (days <= 0, jobs_per_day < 0, empty
  /// or malformed datasets, bad machine shape, out-of-range cluster
  /// parameters). run_campaign() validates on entry.
  void validate() const;
};

/// Fluent construction of a CampaignConfig. Methods mirror the config
/// fields; build() validates and returns the finished value.
class CampaignBuilder {
 public:
  explicit CampaignBuilder(CampaignConfig base) : cfg_(std::move(base)) {}

  CampaignBuilder& seed(std::uint64_t v) { cfg_.seed = v; return *this; }
  CampaignBuilder& machine(net::DragonflyConfig v) { cfg_.machine = v; return *this; }
  CampaignBuilder& cluster(ClusterParams v) { cfg_.cluster = std::move(v); return *this; }
  CampaignBuilder& days(int v) { cfg_.days = v; return *this; }
  CampaignBuilder& jobs_per_day(double v) { cfg_.jobs_per_day = v; return *this; }
  CampaignBuilder& warmup_days(double v) { cfg_.warmup_days = v; return *this; }
  CampaignBuilder& quiet_users(int v) { cfg_.quiet_users = v; return *this; }
  CampaignBuilder& neighborhood_min_nodes(int v) {
    cfg_.neighborhood_min_nodes = v;
    return *this;
  }
  CampaignBuilder& max_bg_job_nodes(int v) { cfg_.max_bg_job_nodes = v; return *this; }
  CampaignBuilder& threads(int v) { cfg_.threads = v; return *this; }
  CampaignBuilder& faults(faults::FaultSpec v) { cfg_.faults = v; return *this; }
  CampaignBuilder& datasets(std::vector<apps::DatasetSpec> v) {
    cfg_.datasets = std::move(v);
    return *this;
  }
  /// Append one dataset (clears the paper defaults on first use).
  CampaignBuilder& dataset(std::string app, int nodes);

  /// Validate and return the finished configuration.
  [[nodiscard]] CampaignConfig build() const;

 private:
  CampaignConfig cfg_;
  bool datasets_replaced_ = false;
};

struct CampaignResult {
  std::vector<Dataset> datasets;  ///< in apps::paper_datasets() order
  std::vector<sched::JobRecord> sacct;

  [[nodiscard]] const Dataset& dataset(const std::string& app, int nodes) const;
};

/// Run the full campaign.
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

/// On-disk format for campaign cache entries.
enum class CacheFormat {
  Auto,   ///< read whichever format exists; write the column store for
          ///< large campaigns (>= 4096 runs total), CSV otherwise
  Csv,    ///< one checksummed CSV blob per dataset (the legacy format)
  Store,  ///< mmap'd column-store entry (see sim/campaign_store.hpp)
};

/// Run the campaign, or load it from `cache_dir` if a cache produced with
/// an identical configuration exists there (benches share one campaign).
/// Store-format entries open by mmap and materialize per dataset; both
/// formats verify integrity and evict+regenerate corrupt entries. After a
/// publish the DFV_CACHE_MAX_BYTES budget (if set) is enforced by LRU
/// eviction over the cache directory.
[[nodiscard]] CampaignResult run_campaign_cached(const CampaignConfig& config,
                                                 const std::string& cache_dir,
                                                 CacheFormat format = CacheFormat::Auto);

/// Stable hash of a configuration (names the cache directory entry).
[[nodiscard]] std::uint64_t config_fingerprint(const CampaignConfig& config);

}  // namespace dfv::sim
