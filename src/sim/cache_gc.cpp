#include "sim/cache_gc.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "common/log.hpp"

namespace dfv::sim {

namespace fs = std::filesystem;

namespace {

/// The file whose presence commits the entry and whose mtime is recency.
[[nodiscard]] fs::path commit_point(const fs::path& entry) {
  if (fs::exists(entry / "META")) return entry / "META";
  if (fs::exists(entry / "MANIFEST")) return entry / "MANIFEST";
  return entry;
}

[[nodiscard]] std::string classify(const fs::path& entry) {
  std::error_code ec;
  if (fs::exists(entry / "MANIFEST", ec)) return "store";
  if (!fs::exists(entry / "META", ec)) return "other";
  // Both campaign formats carry a META commit point; the store format
  // nests per-dataset sub-stores, the CSV format holds .csv blobs.
  for (const auto& sub : fs::directory_iterator(entry, ec))
    if (sub.is_directory(ec)) return "campaign-store";
  return "campaign-csv";
}

[[nodiscard]] std::uintmax_t tree_bytes(const fs::path& entry) {
  std::uintmax_t total = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(entry, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      const std::uintmax_t sz = it->file_size(ec);
      if (!ec) total += sz;
    }
  }
  return total;
}

}  // namespace

std::vector<CacheEntryInfo> list_cache_entries(const std::string& cache_dir) {
  DFV_CHECK_MSG(!cache_dir.empty(), "cache dir must not be empty");
  std::vector<CacheEntryInfo> entries;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(cache_dir, ec)) {
    if (!item.is_directory(ec)) continue;
    CacheEntryInfo info;
    info.name = item.path().filename().string();
    info.kind = classify(item.path());
    info.bytes = tree_bytes(item.path());
    info.mtime = fs::last_write_time(commit_point(item.path()), ec);
    entries.push_back(std::move(info));
  }
  std::sort(entries.begin(), entries.end(),
            [](const CacheEntryInfo& a, const CacheEntryInfo& b) { return a.name < b.name; });
  return entries;
}

void touch_cache_entry(const std::string& entry_dir) {
  DFV_CHECK_MSG(!entry_dir.empty(), "cache entry dir must not be empty");
  std::error_code ec;
  const fs::path p = commit_point(entry_dir);
  if (fs::exists(p, ec))
    fs::last_write_time(p, fs::file_time_type::clock::now(), ec);
}

std::vector<std::string> evict_cache_lru(const std::string& cache_dir,
                                         std::uintmax_t max_bytes) {
  DFV_CHECK_MSG(!cache_dir.empty(), "cache dir must not be empty");
  std::vector<CacheEntryInfo> entries = list_cache_entries(cache_dir);
  std::uintmax_t total = 0;
  for (const CacheEntryInfo& e : entries) total += e.bytes;

  // Oldest commit point first; name breaks ties so eviction order is
  // reproducible when mtimes collide (coarse filesystem clocks).
  std::sort(entries.begin(), entries.end(),
            [](const CacheEntryInfo& a, const CacheEntryInfo& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.name < b.name;
            });

  std::vector<std::string> evicted;
  for (const CacheEntryInfo& e : entries) {
    if (total <= max_bytes) break;
    std::error_code ec;
    fs::remove_all(fs::path(cache_dir) / e.name, ec);
    if (ec) {
      DFV_LOG_WARN("cache: failed to evict " << e.name << ": " << ec.message());
      continue;
    }
    total -= e.bytes;
    evicted.push_back(e.name);
  }
  return evicted;
}

void enforce_cache_budget_from_env(const std::string& cache_dir) {
  DFV_CHECK_MSG(!cache_dir.empty(), "cache dir must not be empty");
  const char* env = std::getenv("DFV_CACHE_MAX_BYTES");
  if (env == nullptr || *env == '\0') return;
  char* end = nullptr;
  const unsigned long long budget = std::strtoull(env, &end, 10);
  if (end == env || budget == 0) return;
  const std::vector<std::string> evicted =
      evict_cache_lru(cache_dir, std::uintmax_t(budget));
  if (!evicted.empty())
    DFV_LOG_INFO("cache: budget " << budget << " bytes, evicted " << evicted.size()
                                  << " entries");
}

}  // namespace dfv::sim
