#include "sim/dataset.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

namespace dfv::sim {

double RunRecord::total_time_s() const { return stats::sum(step_times); }

int Dataset::steps_per_run() const {
  return runs.empty() ? 0 : int(runs.front().step_times.size());
}

std::vector<double> Dataset::mean_step_curve() const {
  const int T = steps_per_run();
  std::vector<double> mean(std::size_t(T), 0.0);
  if (runs.empty()) return mean;
  for (const auto& r : runs) {
    DFV_CHECK(int(r.step_times.size()) == T);
    for (int t = 0; t < T; ++t) mean[std::size_t(t)] += r.step_times[std::size_t(t)];
  }
  for (double& v : mean) v /= double(runs.size());
  return mean;
}

std::vector<double> Dataset::mean_counter_curve(mon::Counter c) const {
  const int T = steps_per_run();
  std::vector<double> mean(std::size_t(T), 0.0);
  if (runs.empty()) return mean;
  for (const auto& r : runs)
    for (int t = 0; t < T; ++t)
      mean[std::size_t(t)] += r.step_counters[std::size_t(t)][std::size_t(int(c))];
  for (double& v : mean) v /= double(runs.size());
  return mean;
}

std::vector<double> Dataset::total_times() const {
  std::vector<double> out;
  out.reserve(runs.size());
  for (const auto& r : runs) out.push_back(r.total_time_s());
  return out;
}

namespace {

std::string join_ints(const std::vector<int>& v) {
  std::ostringstream os;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ';';
    os << v[i];
  }
  return os.str();
}

std::vector<int> split_ints(const std::string& s) {
  std::vector<int> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ';'))
    if (!tok.empty()) out.push_back(std::stoi(tok));
  return out;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

std::string dataset_to_csv(const Dataset& ds) {
  Csv csv;
  csv.header = {"app",        "nodes",     "run",        "job_id",    "submit_s",
                "start_s",    "end_s",     "num_routers", "num_groups", "neighborhood",
                "compute_s",  "step",      "step_time"};
  for (int c = 0; c < mon::kNumCounters; ++c)
    csv.header.push_back(mon::counter_name(mon::counter_from_index(c)));
  for (const char* n : mon::ldms_io_feature_names()) csv.header.emplace_back(n);
  for (const char* n : mon::ldms_sys_feature_names()) csv.header.emplace_back(n);
  for (int r = 0; r < mon::kNumRoutines; ++r)
    csv.header.push_back(std::string("mpi_") +
                         mon::routine_name(static_cast<mon::MpiRoutine>(r)));

  for (std::size_t ri = 0; ri < ds.runs.size(); ++ri) {
    const RunRecord& run = ds.runs[ri];
    for (int t = 0; t < run.steps(); ++t) {
      std::vector<std::string> row = {
          ds.spec.app,
          std::to_string(ds.spec.nodes),
          std::to_string(ri),
          std::to_string(run.job_id),
          fmt(run.submit_time_s),
          fmt(run.start_time_s),
          fmt(run.end_time_s),
          std::to_string(run.num_routers),
          std::to_string(run.num_groups),
          join_ints(run.neighborhood_users),
          fmt(run.profile.compute_s),
          std::to_string(t),
          fmt(run.step_times[std::size_t(t)]),
      };
      for (int c = 0; c < mon::kNumCounters; ++c)
        row.push_back(fmt(run.step_counters[std::size_t(t)][std::size_t(c)]));
      const auto& l = run.step_ldms[std::size_t(t)];
      for (double v : l.io) row.push_back(fmt(v));
      for (double v : l.sys) row.push_back(fmt(v));
      for (int r = 0; r < mon::kNumRoutines; ++r)
        row.push_back(fmt(run.profile.routine_s[std::size_t(r)]));
      csv.rows.push_back(std::move(row));
    }
  }
  return csv.str();
}

Dataset dataset_from_csv(const std::string& text) {
  const Csv csv = parse_csv(text);
  Dataset ds;
  if (csv.rows.empty()) return ds;

  const std::size_t c_app = csv.col("app"), c_nodes = csv.col("nodes"),
                    c_run = csv.col("run"), c_job = csv.col("job_id"),
                    c_submit = csv.col("submit_s"), c_start = csv.col("start_s"),
                    c_end = csv.col("end_s"), c_nr = csv.col("num_routers"),
                    c_ng = csv.col("num_groups"), c_nb = csv.col("neighborhood"),
                    c_comp = csv.col("compute_s"), c_time = csv.col("step_time");
  const std::size_t c_counters0 =
      csv.col(mon::counter_name(mon::counter_from_index(0)));
  const std::size_t c_io0 = csv.col("IO_RT_FLIT_TOT");
  const std::size_t c_sys0 = csv.col("SYS_RT_FLIT_TOT");
  const std::size_t c_mpi0 = csv.col("mpi_Allreduce");

  ds.spec.app = csv.rows.front()[c_app];
  ds.spec.nodes = std::stoi(csv.rows.front()[c_nodes]);

  long current_run = -1;
  for (const auto& row : csv.rows) {
    const long run_idx = std::stol(row[c_run]);
    if (run_idx != current_run) {
      current_run = run_idx;
      RunRecord r;
      r.job_id = std::stoi(row[c_job]);
      r.submit_time_s = std::stod(row[c_submit]);
      r.start_time_s = std::stod(row[c_start]);
      r.end_time_s = std::stod(row[c_end]);
      r.num_routers = std::stoi(row[c_nr]);
      r.num_groups = std::stoi(row[c_ng]);
      r.neighborhood_users = split_ints(row[c_nb]);
      r.profile.compute_s = std::stod(row[c_comp]);
      for (int i = 0; i < mon::kNumRoutines; ++i)
        r.profile.routine_s[std::size_t(i)] = std::stod(row[c_mpi0 + std::size_t(i)]);
      ds.runs.push_back(std::move(r));
    }
    RunRecord& r = ds.runs.back();
    r.step_times.push_back(std::stod(row[c_time]));
    mon::CounterVec cv{};
    for (int i = 0; i < mon::kNumCounters; ++i)
      cv[std::size_t(i)] = std::stod(row[c_counters0 + std::size_t(i)]);
    r.step_counters.push_back(cv);
    mon::LdmsFeatures lf;
    for (int i = 0; i < mon::kNumIoFeatures; ++i)
      lf.io[std::size_t(i)] = std::stod(row[c_io0 + std::size_t(i)]);
    for (int i = 0; i < mon::kNumSysFeatures; ++i)
      lf.sys[std::size_t(i)] = std::stod(row[c_sys0 + std::size_t(i)]);
    r.step_ldms.push_back(lf);
  }
  return ds;
}

bool save_dataset(const Dataset& ds, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << dataset_to_csv(ds);
  return bool(f);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream f(path);
  DFV_CHECK_MSG(bool(f), "cannot open dataset file '" << path << "'");
  std::ostringstream os;
  os << f.rdbuf();
  return dataset_from_csv(os.str());
}

}  // namespace dfv::sim
