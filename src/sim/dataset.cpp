#include "sim/dataset.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/integrity.hpp"
#include "exec/exec.hpp"

namespace dfv::sim {

double RunRecord::total_time_s() const {
  double total = 0.0;
  for (double v : step_times)
    if (std::isfinite(v)) total += v;
  return total;
}

int Dataset::steps_per_run() const {
  // Modal run length: robust to a minority of truncated runs. Ties go to
  // the longer length (truncation only ever shortens).
  std::vector<std::pair<int, int>> freq;  // (length, count)
  for (const auto& r : runs) {
    const int len = r.steps();
    bool found = false;
    for (auto& [l, n] : freq)
      if (l == len) {
        ++n;
        found = true;
      }
    if (!found) freq.emplace_back(len, 1);
  }
  int best_len = 0, best_n = 0;
  for (const auto& [l, n] : freq)
    if (n > best_n || (n == best_n && l > best_len)) {
      best_len = l;
      best_n = n;
    }
  return best_len;
}

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Average `value(run, t)` over runs where step t exists, is usable, and
/// the value is finite. Steps nobody observed come back NaN.
template <typename Value>
std::vector<double> tolerant_mean_curve(const Dataset& ds, int T, Value value) {
  std::vector<double> sum(std::size_t(T), 0.0);
  std::vector<int> count(std::size_t(T), 0);
  for (const auto& r : ds.runs) {
    const int steps = std::min(T, r.steps());
    for (int t = 0; t < steps; ++t) {
      if (!r.step_usable(t)) continue;
      const double v = value(r, t);
      if (!std::isfinite(v)) continue;
      sum[std::size_t(t)] += v;
      count[std::size_t(t)] += 1;
    }
  }
  for (int t = 0; t < T; ++t)
    sum[std::size_t(t)] =
        count[std::size_t(t)] > 0 ? sum[std::size_t(t)] / double(count[std::size_t(t)]) : kNaN;
  return sum;
}

}  // namespace

std::vector<double> Dataset::mean_step_curve() const {
  const int T = steps_per_run();
  if (runs.empty()) return std::vector<double>(std::size_t(T), 0.0);
  return tolerant_mean_curve(*this, T, [](const RunRecord& r, int t) {
    return r.step_times[std::size_t(t)];
  });
}

std::vector<double> Dataset::mean_counter_curve(mon::Counter c) const {
  DFV_CHECK(int(c) >= 0 && int(c) < mon::kNumCounters);
  const int T = steps_per_run();
  if (runs.empty()) return std::vector<double>(std::size_t(T), 0.0);
  return tolerant_mean_curve(*this, T, [c](const RunRecord& r, int t) {
    return r.step_counters[std::size_t(t)][std::size_t(int(c))];
  });
}

std::vector<double> Dataset::total_times() const {
  std::vector<double> out;
  out.reserve(runs.size());
  for (const auto& r : runs) out.push_back(r.total_time_s());
  return out;
}

std::string RepairReport::summary() const {
  std::ostringstream os;
  os << "policy=" << faults::to_string(policy) << " runs=" << runs_in
     << " dropped_runs=" << runs_dropped << " truncated=" << truncated_runs
     << " bad_steps=" << bad_steps << " imputed=" << imputed_steps
     << " wraps=" << wrapped_cells << " corrupt_cells=" << corrupt_cells
     << " profiles_missing=" << profiles_missing;
  return os.str();
}

RepairReport Dataset::repair(faults::RepairPolicy policy, const faults::RepairOptions& opt) {
  RepairReport rep;
  rep.policy = policy;
  rep.runs_in = int(runs.size());
  if (policy == faults::RepairPolicy::Keep || runs.empty()) return rep;

  const int expected = steps_per_run();
  std::vector<faults::RunRepairStats> stats(runs.size());
  exec::parallel_for(0, runs.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      stats[i] = faults::repair_run(runs[i].telemetry(), policy, opt, expected);
  });

  for (const auto& s : stats) {
    rep.bad_steps += s.bad_steps;
    rep.imputed_steps += s.imputed_steps;
    rep.wrapped_cells += s.wrapped_cells;
    rep.corrupt_cells += s.corrupt_cells;
    if (s.truncated) rep.truncated_runs += 1;
    if (s.dropped) rep.runs_dropped += 1;
    if (s.profile_missing) rep.profiles_missing += 1;
  }
  DFV_CHECK_MSG(policy != faults::RepairPolicy::Strict || !rep.any_anomaly(),
                "strict repair policy: dataset '" << spec.app << "/" << spec.nodes
                                                  << "' has degraded telemetry ("
                                                  << rep.summary() << ")");

  if (rep.runs_dropped > 0) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < runs.size(); ++i)
      if (!stats[i].dropped) {
        if (w != i) runs[w] = std::move(runs[i]);
        ++w;
      }
    runs.resize(w);
  }
  return rep;
}

void inject_faults(Dataset& ds, const faults::FaultSpec& spec, std::uint64_t stream_seed) {
  if (!spec.enabled()) return;
  spec.validate();
  exec::parallel_for(0, ds.runs.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      (void)faults::inject_run(ds.runs[i].telemetry(), spec,
                               exec::substream_seed(stream_seed, i));
  });
}

namespace {

std::string join_ints(const std::vector<int>& v) {
  std::ostringstream os;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ';';
    os << v[i];
  }
  return os.str();
}

std::string fmt(double v) {
  // Shortest round-trip representation: cache entries must reproduce the
  // in-memory dataset bit-exactly (including NaN placeholders).
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

/// Strict full-consumption numeric parse; accepts nan/inf spellings
/// (degraded telemetry round-trips through the cache).
double parse_num(const std::string& cell, std::size_t row, const char* what) {
  DFV_CHECK_MSG(!cell.empty(),
                "dataset CSV data row " << row << ": empty '" << what << "' field");
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  DFV_CHECK_MSG(end == cell.c_str() + cell.size(),
                "dataset CSV data row " << row << ": field '" << what
                                        << "' is not a number: '" << cell << "'");
  return v;
}

long parse_long(const std::string& cell, std::size_t row, const char* what) {
  DFV_CHECK_MSG(!cell.empty(),
                "dataset CSV data row " << row << ": empty '" << what << "' field");
  char* end = nullptr;
  const long v = std::strtol(cell.c_str(), &end, 10);
  DFV_CHECK_MSG(end == cell.c_str() + cell.size(),
                "dataset CSV data row " << row << ": field '" << what
                                        << "' is not an integer: '" << cell << "'");
  return v;
}

int parse_int(const std::string& cell, std::size_t row, const char* what) {
  return int(parse_long(cell, row, what));
}

std::vector<int> split_ints(const std::string& s, std::size_t row) {
  std::vector<int> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ';'))
    if (!tok.empty()) out.push_back(parse_int(tok, row, "neighborhood"));
  return out;
}

}  // namespace

std::string dataset_to_csv(const Dataset& ds) {
  for (const auto& r : ds.runs) DFV_CHECK(r.step_counters.size() == r.step_times.size());
  Csv csv;
  csv.header = {"app",        "nodes",     "run",        "job_id",    "submit_s",
                "start_s",    "end_s",     "num_routers", "num_groups", "neighborhood",
                "compute_s",  "step",      "step_time"};
  for (int c = 0; c < mon::kNumCounters; ++c)
    csv.header.push_back(mon::counter_name(mon::counter_from_index(c)));
  for (const char* n : mon::ldms_io_feature_names()) csv.header.emplace_back(n);
  for (const char* n : mon::ldms_sys_feature_names()) csv.header.emplace_back(n);
  for (int r = 0; r < mon::kNumRoutines; ++r)
    csv.header.push_back(std::string("mpi_") +
                         mon::routine_name(static_cast<mon::MpiRoutine>(r)));
  csv.header.emplace_back("quality");
  csv.header.emplace_back("profile_missing");

  for (std::size_t ri = 0; ri < ds.runs.size(); ++ri) {
    const RunRecord& run = ds.runs[ri];
    for (int t = 0; t < run.steps(); ++t) {
      std::vector<std::string> row = {
          ds.spec.app,
          std::to_string(ds.spec.nodes),
          std::to_string(ri),
          std::to_string(run.job_id),
          fmt(run.submit_time_s),
          fmt(run.start_time_s),
          fmt(run.end_time_s),
          std::to_string(run.num_routers),
          std::to_string(run.num_groups),
          join_ints(run.neighborhood_users),
          fmt(run.profile.compute_s),
          std::to_string(t),
          fmt(run.step_times[std::size_t(t)]),
      };
      for (int c = 0; c < mon::kNumCounters; ++c)
        row.push_back(fmt(run.step_counters[std::size_t(t)][std::size_t(c)]));
      const auto& l = run.step_ldms[std::size_t(t)];
      for (double v : l.io) row.push_back(fmt(v));
      for (double v : l.sys) row.push_back(fmt(v));
      for (int r = 0; r < mon::kNumRoutines; ++r)
        row.push_back(fmt(run.profile.routine_s[std::size_t(r)]));
      row.push_back(std::to_string(int(run.quality(t))));
      row.push_back(run.profile_missing ? "1" : "0");
      csv.rows.push_back(std::move(row));
    }
  }
  return csv.str();
}

Dataset dataset_from_csv(const std::string& text, faults::RepairPolicy policy) {
  const Csv csv = parse_csv(text);
  Dataset ds;
  if (csv.rows.empty()) return ds;
  DFV_CHECK_MSG(!csv.header.empty(), "dataset CSV has no header row");
  for (std::size_t i = 0; i < csv.rows.size(); ++i)
    DFV_CHECK_MSG(csv.rows[i].size() == csv.header.size(),
                  "dataset CSV data row " << (i + 1) << " has " << csv.rows[i].size()
                                          << " fields, expected " << csv.header.size()
                                          << " (truncated or malformed line?)");

  const std::size_t c_app = csv.col("app"), c_nodes = csv.col("nodes"),
                    c_run = csv.col("run"), c_job = csv.col("job_id"),
                    c_submit = csv.col("submit_s"), c_start = csv.col("start_s"),
                    c_end = csv.col("end_s"), c_nr = csv.col("num_routers"),
                    c_ng = csv.col("num_groups"), c_nb = csv.col("neighborhood"),
                    c_comp = csv.col("compute_s"), c_step = csv.col("step"),
                    c_time = csv.col("step_time");
  const std::size_t c_counters0 =
      csv.col(mon::counter_name(mon::counter_from_index(0)));
  const std::size_t c_io0 = csv.col("IO_RT_FLIT_TOT");
  const std::size_t c_sys0 = csv.col("SYS_RT_FLIT_TOT");
  const std::size_t c_mpi0 = csv.col("mpi_Allreduce");
  // Quality columns are optional so pre-fault CSVs still load.
  const std::size_t c_q = csv.col_if("quality");
  const std::size_t c_pm = csv.col_if("profile_missing");

  ds.spec.app = csv.rows.front()[c_app];
  ds.spec.nodes = parse_int(csv.rows.front()[c_nodes], 1, "nodes");

  long current_run = -1;
  for (std::size_t i = 0; i < csv.rows.size(); ++i) {
    const auto& row = csv.rows[i];
    const std::size_t rn = i + 1;
    DFV_CHECK_MSG(row[c_app] == ds.spec.app,
                  "dataset CSV data row " << rn << ": app changed mid-file ('"
                                          << row[c_app] << "' vs '" << ds.spec.app << "')");
    const long run_idx = parse_long(row[c_run], rn, "run");
    if (run_idx != current_run) {
      current_run = run_idx;
      RunRecord r;
      r.job_id = parse_int(row[c_job], rn, "job_id");
      r.submit_time_s = parse_num(row[c_submit], rn, "submit_s");
      r.start_time_s = parse_num(row[c_start], rn, "start_s");
      r.end_time_s = parse_num(row[c_end], rn, "end_s");
      r.num_routers = parse_int(row[c_nr], rn, "num_routers");
      r.num_groups = parse_int(row[c_ng], rn, "num_groups");
      r.neighborhood_users = split_ints(row[c_nb], rn);
      r.profile.compute_s = parse_num(row[c_comp], rn, "compute_s");
      for (int k = 0; k < mon::kNumRoutines; ++k)
        r.profile.routine_s[std::size_t(k)] =
            parse_num(row[c_mpi0 + std::size_t(k)], rn, "mpi routine");
      if (c_pm != Csv::npos) r.profile_missing = parse_int(row[c_pm], rn, "profile_missing") != 0;
      ds.runs.push_back(std::move(r));
    }
    RunRecord& r = ds.runs.back();
    const int step = parse_int(row[c_step], rn, "step");
    DFV_CHECK_MSG(step == r.steps(),
                  "dataset CSV data row " << rn << ": step index " << step
                                          << " out of order (expected " << r.steps() << ")");
    r.step_times.push_back(parse_num(row[c_time], rn, "step_time"));
    mon::CounterVec cv{};
    for (int k = 0; k < mon::kNumCounters; ++k)
      cv[std::size_t(k)] = parse_num(row[c_counters0 + std::size_t(k)], rn, "counter");
    r.step_counters.push_back(cv);
    mon::LdmsFeatures lf;
    for (int k = 0; k < mon::kNumIoFeatures; ++k)
      lf.io[std::size_t(k)] = parse_num(row[c_io0 + std::size_t(k)], rn, "ldms io");
    for (int k = 0; k < mon::kNumSysFeatures; ++k)
      lf.sys[std::size_t(k)] = parse_num(row[c_sys0 + std::size_t(k)], rn, "ldms sys");
    r.step_ldms.push_back(lf);
    if (c_q != Csv::npos) {
      const int q = parse_int(row[c_q], rn, "quality");
      DFV_CHECK_MSG(q >= 0 && q <= 255,
                    "dataset CSV data row " << rn << ": quality " << q << " out of range");
      r.step_quality.push_back(std::uint8_t(q));
    }
  }
  if (policy != faults::RepairPolicy::Keep) (void)ds.repair(policy);
  return ds;
}

bool save_dataset(const Dataset& ds, const std::string& path) {
  DFV_CHECK_MSG(!path.empty(), "save_dataset: empty path");
  std::string text = dataset_to_csv(ds);
  append_checksum_footer(text);
  return atomic_write_file(path, text);
}

Dataset load_dataset(const std::string& path, bool require_checksum,
                     faults::RepairPolicy policy) {
  std::ifstream f(path, std::ios::binary);
  DFV_CHECK_MSG(bool(f), "cannot open dataset file '" << path << "'");
  std::ostringstream os;
  os << f.rdbuf();
  std::string text = os.str();
  const ChecksumStatus status = verify_and_strip_checksum(text);
  DFV_CHECK_MSG(status != ChecksumStatus::Mismatch,
                "dataset file '" << path << "' failed its integrity check (corrupt entry)");
  DFV_CHECK_MSG(!require_checksum || status == ChecksumStatus::Ok,
                "dataset file '" << path << "' lacks an integrity footer");
  return dataset_from_csv(text, policy);
}

}  // namespace dfv::sim
