#include "sim/congestion_aware.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dfv::sim {

double CongestionAwareScheduler::predicted_slowdown(const apps::AppModel& app) {
  DFV_CHECK(cluster_ != nullptr);
  // Probe: allocate the job's nodes, read the congestion view of that
  // placement, release. This is what a resource manager with live counter
  // feeds (the paper's proposal) could evaluate before starting a job.
  auto job_id = cluster_->slurm().start_instrumented_job("probe", app.info().nodes,
                                                         sched::kCampaignUserId);
  if (!job_id) return 1.0;  // cannot place now; admission handles waiting
  const sched::Placement placement = cluster_->slurm().placement_of(*job_id);
  const CongestionView view = cluster_->congestion(placement.routers);
  cluster_->slurm().end_instrumented_job(*job_id);

  const apps::AppCoefficients& c = app.coefficients();
  return 1.0 + c.pt_weight * view.pt_stall + c.rt_weight * (view.transit - 1.0);
}

bool CongestionAwareScheduler::blamed_user_active() const {
  if (policy_.blamed_users.empty()) return false;
  for (const auto& job : cluster_->slurm().running_background()) {
    if (job.placement.num_nodes() < policy_.min_blamed_nodes) continue;
    if (std::find(policy_.blamed_users.begin(), policy_.blamed_users.end(),
                  job.user_id) != policy_.blamed_users.end())
      return true;
  }
  return false;
}

AwareRun CongestionAwareScheduler::run_when_clear(const apps::AppModel& app,
                                                  int user_id) {
  DFV_CHECK(policy_.check_interval_s > 0.0);
  AwareRun out;
  while (out.decision.waited_s < policy_.max_delay_s) {
    bool hold = false;
    if (blamed_user_active()) {
      ++out.decision.holds_blame;
      hold = true;
    }
    if (!hold && policy_.max_predicted_slowdown > 0.0) {
      out.decision.predicted_slowdown = predicted_slowdown(app);
      if (out.decision.predicted_slowdown > policy_.max_predicted_slowdown) {
        ++out.decision.holds_congestion;
        hold = true;
      }
    }
    if (!hold) break;
    cluster_->slurm().advance_to(cluster_->slurm().now() + policy_.check_interval_s);
    cluster_->slurm().step_intensities(policy_.check_interval_s);
    cluster_->invalidate_background();
    out.decision.waited_s += policy_.check_interval_s;
  }
  out.decision.gave_up = out.decision.waited_s >= policy_.max_delay_s;
  out.record = cluster_->run_app(app, user_id);
  return out;
}

}  // namespace dfv::sim
