// Audited low-level file primitives for the out-of-core column store:
// read-only memory mappings, positioned reads, and append-only writes.
// This is the one module allowed to touch the raw mmap/pread/pwrite
// syscall family (dfv-lint `blocking-io` enforces that); everything
// above it works in terms of these RAII wrappers, so lifetime, error
// handling, and truncation semantics are centralized here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace dfv::store {

/// Read-only memory mapping of a file prefix. Movable, not copyable;
/// unmaps on destruction. An empty mapping (size 0) holds no resources.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// Map the first `length` bytes of `path` read-only. The file must be
  /// at least `length` bytes long (a shorter file is a truncated-segment
  /// corruption: throws ContractError). length == 0 yields an empty map.
  [[nodiscard]] static MappedFile map_prefix(const std::string& path,
                                             std::size_t length);

  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Positioned (pread) access to a file, for streaming passes that must
/// not grow the process mapping — quantile sampling and code building
/// read through a small fixed buffer instead of faulting columns in.
class RandomReadFile {
 public:
  RandomReadFile() = default;
  RandomReadFile(RandomReadFile&& other) noexcept;
  RandomReadFile& operator=(RandomReadFile&& other) noexcept;
  RandomReadFile(const RandomReadFile&) = delete;
  RandomReadFile& operator=(const RandomReadFile&) = delete;
  ~RandomReadFile();

  /// Open for reading; throws ContractError when the file cannot be opened.
  [[nodiscard]] static RandomReadFile open(const std::string& path);

  /// Read exactly `n` bytes at `offset`; throws ContractError on a short
  /// read (EOF inside the requested range) or I/O error.
  void read_at(std::uint64_t offset, void* dst, std::size_t n) const;

  [[nodiscard]] std::uint64_t size() const;

 private:
  int fd_ = -1;
};

/// Append-only writer with explicit truncation, used for column segment
/// files. Appends are buffered by the kernel only (no user-space buffer),
/// so a crash can leave a partial tail — the store's MANIFEST records the
/// committed extent and open-for-append truncates anything beyond it.
class AppendFile {
 public:
  AppendFile() = default;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  /// Open (creating if needed) for writing; throws ContractError on failure.
  [[nodiscard]] static AppendFile open(const std::string& path);

  /// Append `n` bytes at the current end; throws ContractError on failure.
  void append(const void* data, std::size_t n);
  /// Truncate the file to exactly `length` bytes (drops torn tails).
  void truncate_to(std::uint64_t length);
  /// Flush file data to stable storage (fdatasync).
  void sync();
  [[nodiscard]] std::uint64_t size() const;

 private:
  int fd_ = -1;
};

/// Size of `path` in bytes, or 0 when it does not exist / is unreadable.
[[nodiscard]] std::uint64_t file_size_or_zero(const std::string& path) noexcept;

}  // namespace dfv::store
