#include "store/column_store.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/integrity.hpp"
#include "common/rng.hpp"

namespace dfv::store {

namespace {

constexpr std::string_view kMagic = "dfv-store";
constexpr int kVersion = 1;

[[nodiscard]] bool valid_column_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

[[nodiscard]] std::string column_path(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".col";
}

[[nodiscard]] std::string manifest_path(const std::string& dir) {
  return dir + "/MANIFEST";
}

[[nodiscard]] std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

[[nodiscard]] std::uint64_t parse_hex64(const std::string& tok) {
  DFV_CHECK_MSG(tok.size() == 16, "store: bad hex field in MANIFEST");
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(tok.c_str(), &end, 16);
  DFV_CHECK_MSG(end == tok.c_str() + tok.size(), "store: bad hex field in MANIFEST");
  return v;
}

[[nodiscard]] std::size_t segments_for(std::uint64_t rows, std::uint32_t seg_rows) {
  return std::size_t((rows + seg_rows - 1) / seg_rows);
}

/// Fold `n` values into the per-segment zone maps, walking fixed segment
/// boundaries from absolute row `start_row`. The grouping depends only on
/// absolute row index — never on how callers batched their appends — so
/// zone stats and CRCs are append-chunking invariant by construction.
template <typename T>
void fold_values(std::vector<ZoneMap>& zones, std::uint64_t start_row,
                 std::uint32_t seg_rows, const T* vals, std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t row = start_row + i;
    const std::size_t seg = std::size_t(row / seg_rows);
    if (zones.size() == seg) {
      ZoneMap z;
      z.min = z.max = std::numeric_limits<double>::quiet_NaN();
      z.crc = kFnvBasis;
      zones.push_back(z);
    }
    DFV_CHECK(zones.size() == seg + 1);
    const std::uint64_t seg_end = (std::uint64_t(seg) + 1) * seg_rows;
    const std::size_t run = std::size_t(std::min<std::uint64_t>(n - i, seg_end - row));
    ZoneMap& z = zones[seg];
    for (std::size_t k = 0; k < run; ++k) {
      const double v = double(vals[i + k]);
      z.min = std::fmin(z.min, v);
      z.max = std::fmax(z.max, v);
      z.sum += v;
    }
    z.crc = fnv1a64_update(z.crc, vals + i, run * sizeof(T));
    z.count += run;
    i += run;
  }
}

struct Manifest {
  std::uint32_t segment_rows = 0;
  std::uint64_t epoch = 0;
  std::uint64_t rows = 0;
  std::vector<ColumnSpec> specs;
  std::vector<std::vector<ZoneMap>> zones;
};

[[nodiscard]] std::string manifest_to_text(std::uint32_t segment_rows,
                                           std::uint64_t epoch, std::uint64_t rows,
                                           std::span<const ColumnSpec> specs,
                                           const std::vector<std::vector<ZoneMap>>& zones) {
  std::ostringstream os;
  os << kMagic << ' ' << kVersion << '\n';
  os << "segment_rows " << segment_rows << '\n';
  os << "epoch " << epoch << '\n';
  os << "rows " << rows << '\n';
  os << "columns " << specs.size() << '\n';
  for (const ColumnSpec& s : specs)
    os << "column " << s.name << ' ' << (s.kind == ColumnKind::F64 ? "f64" : "u8")
       << '\n';
  for (std::size_t c = 0; c < zones.size(); ++c)
    for (std::size_t g = 0; g < zones[c].size(); ++g) {
      const ZoneMap& z = zones[c][g];
      os << "zone " << c << ' ' << g << ' ' << z.count << ' '
         << hex64(std::bit_cast<std::uint64_t>(z.min)) << ' '
         << hex64(std::bit_cast<std::uint64_t>(z.max)) << ' '
         << hex64(std::bit_cast<std::uint64_t>(z.sum)) << ' ' << hex64(z.crc)
         << '\n';
    }
  return os.str();
}

[[nodiscard]] Manifest parse_manifest(const std::string& dir) {
  std::ifstream in(manifest_path(dir), std::ios::binary);
  DFV_CHECK_MSG(bool(in), "store: missing MANIFEST in " + dir);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  DFV_CHECK_MSG(verify_and_strip_checksum(text) == ChecksumStatus::Ok,
                "store: corrupt MANIFEST (bad or missing checksum) in " + dir);

  Manifest m;
  std::istringstream is(text);
  std::string kw;
  int version = 0;
  is >> kw >> version;
  DFV_CHECK_MSG(kw == kMagic && version == kVersion,
                "store: unrecognized MANIFEST header in " + dir);
  is >> kw >> m.segment_rows;
  DFV_CHECK_MSG(kw == "segment_rows" && m.segment_rows > 0,
                "store: bad segment_rows in " + dir);
  is >> kw >> m.epoch;
  DFV_CHECK(kw == "epoch");
  is >> kw >> m.rows;
  DFV_CHECK(kw == "rows");
  std::size_t columns = 0;
  is >> kw >> columns;
  DFV_CHECK_MSG(kw == "columns" && columns > 0, "store: bad column count in " + dir);
  for (std::size_t c = 0; c < columns; ++c) {
    std::string name, kind;
    is >> kw >> name >> kind;
    DFV_CHECK_MSG(kw == "column" && valid_column_name(name) &&
                      (kind == "f64" || kind == "u8"),
                  "store: bad column line in " + dir);
    m.specs.push_back({name, kind == "f64" ? ColumnKind::F64 : ColumnKind::U8});
  }
  const std::size_t nseg = segments_for(m.rows, m.segment_rows);
  m.zones.assign(columns, {});
  for (std::size_t c = 0; c < columns; ++c) {
    m.zones[c].resize(nseg);
    for (std::size_t g = 0; g < nseg; ++g) {
      std::size_t col = 0, seg = 0;
      std::string min_h, max_h, sum_h, crc_h;
      ZoneMap z;
      is >> kw >> col >> seg >> z.count >> min_h >> max_h >> sum_h >> crc_h;
      DFV_CHECK_MSG(bool(is) && kw == "zone" && col == c && seg == g,
                    "store: bad zone table in " + dir);
      z.min = std::bit_cast<double>(parse_hex64(min_h));
      z.max = std::bit_cast<double>(parse_hex64(max_h));
      z.sum = std::bit_cast<double>(parse_hex64(sum_h));
      z.crc = parse_hex64(crc_h);
      const std::uint64_t expect =
          std::min<std::uint64_t>(m.segment_rows,
                                  m.rows - std::uint64_t(g) * m.segment_rows);
      DFV_CHECK_MSG(z.count == expect, "store: zone row count mismatch in " + dir);
      m.zones[c][g] = z;
    }
  }
  return m;
}

}  // namespace

// ---------------------------------------------------------------- StorePin

std::shared_ptr<const StorePin> StorePin::load(const std::string& dir) {
  DFV_CHECK_MSG(!dir.empty(), "store dir must not be empty");
  Manifest m = parse_manifest(dir);
  auto pin = std::make_shared<StorePin>();
  pin->dir_ = dir;
  pin->epoch_ = m.epoch;
  pin->rows_ = m.rows;
  pin->segment_rows_ = m.segment_rows;
  pin->specs_ = std::move(m.specs);
  pin->zones_ = std::move(m.zones);
  pin->maps_.reserve(pin->specs_.size());
  for (const ColumnSpec& s : pin->specs_)
    pin->maps_.push_back(MappedFile::map_prefix(
        column_path(dir, s.name), std::size_t(m.rows) * column_elem_size(s.kind)));
  return pin;
}

std::size_t StorePin::column_index(const std::string& name) const {
  for (std::size_t c = 0; c < specs_.size(); ++c)
    if (specs_[c].name == name) return c;
  DFV_CHECK_MSG(false, "store: no such column: " + name);
  return 0;  // unreachable
}

std::span<const double> StorePin::f64(const std::string& name) const {
  const std::size_t c = column_index(name);
  DFV_CHECK_MSG(specs_[c].kind == ColumnKind::F64, "store: column is not f64: " + name);
  return {reinterpret_cast<const double*>(maps_[c].data()), std::size_t(rows_)};
}

std::span<const std::uint8_t> StorePin::u8(const std::string& name) const {
  const std::size_t c = column_index(name);
  DFV_CHECK_MSG(specs_[c].kind == ColumnKind::U8, "store: column is not u8: " + name);
  return {maps_[c].data(), std::size_t(rows_)};
}

std::span<const ZoneMap> StorePin::zones(std::size_t col) const {
  DFV_CHECK(col < zones_.size());
  return zones_[col];
}

double StorePin::mean(const std::string& name) const {
  const std::size_t c = column_index(name);
  DFV_CHECK_MSG(specs_[c].kind == ColumnKind::F64, "store: column is not f64: " + name);
  DFV_CHECK_MSG(rows_ > 0, "store: mean of an empty store");
  // Serial combine in segment order: the association is fixed by the
  // store's segment size, so the result never depends on append batching.
  double sum = 0.0;
  for (const ZoneMap& z : zones_[c]) sum += z.sum;
  return sum / double(rows_);
}

std::uint64_t StorePin::content_fingerprint() const {
  std::uint64_t h = hash_combine(rows_, segment_rows_);
  for (std::size_t c = 0; c < specs_.size(); ++c) {
    h = hash_combine(h, fnv1a64(specs_[c].name));
    h = hash_combine(h, std::uint64_t(specs_[c].kind));
    for (const ZoneMap& z : zones_[c]) h = hash_combine(h, z.crc);
  }
  return h;
}

void StorePin::verify_integrity() const {
  for (std::size_t c = 0; c < specs_.size(); ++c) {
    const std::size_t elem = column_elem_size(specs_[c].kind);
    for (std::size_t g = 0; g < zones_[c].size(); ++g) {
      const ZoneMap& z = zones_[c][g];
      const std::size_t off = g * std::size_t(segment_rows_) * elem;
      const std::uint64_t crc = fnv1a64_update(
          kFnvBasis, maps_[c].data() + off, std::size_t(z.count) * elem);
      DFV_CHECK_MSG(crc == z.crc, "store: segment CRC mismatch in column " +
                                      specs_[c].name + " of " + dir_);
    }
  }
}

void StorePin::snapshot_to(const std::string& dest_dir) const {
  namespace fs = std::filesystem;
  fs::create_directories(dest_dir);
  DFV_CHECK_MSG(file_size_or_zero(manifest_path(dest_dir)) == 0,
                "store: snapshot destination already holds a store: " + dest_dir);
  // Column bytes first (tmp + rename per file), MANIFEST strictly last:
  // a reader of dest_dir either sees no store yet or a complete one.
  for (std::size_t c = 0; c < specs_.size(); ++c) {
    const std::string final_path = column_path(dest_dir, specs_[c].name);
    const std::string tmp_path = final_path + ".tmp";
    {
      AppendFile out = AppendFile::open(tmp_path);
      out.truncate_to(0);
      out.append(maps_[c].data(), maps_[c].size());
      out.sync();
    }
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    DFV_CHECK_MSG(!ec, "store: snapshot rename failed for " + final_path);
  }
  std::string text = manifest_to_text(segment_rows_, epoch_, rows_, specs_, zones_);
  append_checksum_footer(text);
  DFV_CHECK_MSG(atomic_write_file(manifest_path(dest_dir), text),
                "store: snapshot MANIFEST publish failed in " + dest_dir);
}

// -------------------------------------------------------------- ColumnStore

ColumnStore ColumnStore::create(const std::string& dir, std::vector<ColumnSpec> specs,
                                const StoreOptions& opts) {
  namespace fs = std::filesystem;
  DFV_CHECK_MSG(!specs.empty(), "store: a store needs at least one column");
  DFV_CHECK_MSG(opts.segment_rows > 0, "store: segment_rows must be positive");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    DFV_CHECK_MSG(valid_column_name(specs[i].name),
                  "store: bad column name: '" + specs[i].name + "'");
    for (std::size_t j = i + 1; j < specs.size(); ++j)
      DFV_CHECK_MSG(specs[i].name != specs[j].name,
                    "store: duplicate column name: " + specs[i].name);
  }
  fs::create_directories(dir);
  DFV_CHECK_MSG(file_size_or_zero(manifest_path(dir)) == 0,
                "store: directory already holds a store: " + dir);

  ColumnStore s;
  s.dir_ = dir;
  s.specs_ = std::move(specs);
  s.segment_rows_ = opts.segment_rows;
  s.cols_.resize(s.specs_.size());
  for (std::size_t c = 0; c < s.specs_.size(); ++c) {
    s.cols_[c].file = AppendFile::open(column_path(dir, s.specs_[c].name));
    s.cols_[c].file.truncate_to(0);  // drop stale bytes from a dead store
  }
  s.publish();  // epoch 1, rows 0: readers can pin immediately
  return s;
}

ColumnStore ColumnStore::open(const std::string& dir) {
  Manifest m = parse_manifest(dir);
  ColumnStore s;
  s.dir_ = dir;
  s.specs_ = std::move(m.specs);
  s.segment_rows_ = m.segment_rows;
  s.rows_ = m.rows;
  s.epoch_ = m.epoch;
  s.pub_rows_ = m.rows;
  s.cols_.resize(s.specs_.size());
  for (std::size_t c = 0; c < s.specs_.size(); ++c) {
    ColState& col = s.cols_[c];
    col.file = AppendFile::open(column_path(dir, s.specs_[c].name));
    col.zones = std::move(m.zones[c]);
    const std::uint64_t committed = m.rows * column_elem_size(s.specs_[c].kind);
    DFV_CHECK_MSG(col.file.size() >= committed,
                  "store: column shorter than committed extent: " +
                      s.specs_[c].name + " in " + dir);
    // Anything past the committed extent is a torn write from a writer
    // that died between append and publish — recover by dropping it.
    if (col.file.size() > committed) col.file.truncate_to(committed);
  }
  return s;
}

ColumnStore ColumnStore::open_or_create(const std::string& dir,
                                        std::vector<ColumnSpec> specs,
                                        const StoreOptions& opts) {
  if (file_size_or_zero(manifest_path(dir)) == 0)
    return create(dir, std::move(specs), opts);
  ColumnStore s = open(dir);
  DFV_CHECK_MSG(s.specs_.size() == specs.size(), "store: schema mismatch in " + dir);
  for (std::size_t c = 0; c < specs.size(); ++c)
    DFV_CHECK_MSG(s.specs_[c].name == specs[c].name && s.specs_[c].kind == specs[c].kind,
                  "store: schema mismatch in " + dir);
  return s;
}

std::shared_ptr<const StorePin> ColumnStore::open_pin(const std::string& dir) {
  return StorePin::load(dir);
}

std::uint64_t ColumnStore::rows() const {
  std::lock_guard<std::mutex> lk(*mu_);
  return rows_;
}

std::uint64_t ColumnStore::published_rows() const {
  std::lock_guard<std::mutex> lk(*mu_);
  return pub_rows_;
}

void ColumnStore::append(const AppendChunk& chunk) {
  std::lock_guard<std::mutex> lk(*mu_);
  DFV_CHECK_MSG(chunk.rows > 0, "store: empty append");
  std::size_t n_f64 = 0, n_u8 = 0;
  for (const ColumnSpec& s : specs_) (s.kind == ColumnKind::F64 ? n_f64 : n_u8) += 1;
  DFV_CHECK_MSG(chunk.f64.size() == n_f64 && chunk.u8.size() == n_u8,
                "store: append chunk does not match the store schema");
  for (const auto& sp : chunk.f64) DFV_CHECK(sp.size() == chunk.rows);
  for (const auto& sp : chunk.u8) DFV_CHECK(sp.size() == chunk.rows);

  std::size_t i_f64 = 0, i_u8 = 0;
  for (std::size_t c = 0; c < specs_.size(); ++c) {
    ColState& col = cols_[c];
    if (specs_[c].kind == ColumnKind::F64) {
      const std::span<const double> v = chunk.f64[i_f64++];
      col.file.append(v.data(), v.size_bytes());
      fold_values(col.zones, rows_, segment_rows_, v.data(), v.size());
    } else {
      const std::span<const std::uint8_t> v = chunk.u8[i_u8++];
      col.file.append(v.data(), v.size_bytes());
      fold_values(col.zones, rows_, segment_rows_, v.data(), v.size());
    }
  }
  rows_ += chunk.rows;
}

void ColumnStore::publish() {
  std::lock_guard<std::mutex> lk(*mu_);
  for (ColState& col : cols_) col.file.sync();
  epoch_ += 1;
  std::string text = manifest_text();
  append_checksum_footer(text);
  DFV_CHECK_MSG(atomic_write_file(manifest_path(dir_), text),
                "store: MANIFEST publish failed in " + dir_);
  pub_rows_ = rows_;
}

std::shared_ptr<const StorePin> ColumnStore::pin() const {
  // The on-disk MANIFEST is exactly the last published state, and its
  // publish is an atomic rename — loading it races safely with publish().
  return StorePin::load(dir_);
}

std::string ColumnStore::manifest_text() const {
  std::vector<std::vector<ZoneMap>> zones;
  zones.reserve(cols_.size());
  for (const ColState& col : cols_) zones.push_back(col.zones);
  return manifest_to_text(segment_rows_, epoch_, rows_, specs_, zones);
}

}  // namespace dfv::store
