// Zero-copy training views over a pinned column store: a quantile-edge
// sidecar plus a feature-major uint8 bin-code region, both derived files
// keyed by (store content fingerprint, feature selection, bins) and
// published atomically next to the columns. `ml::BinnedDataset` is
// handed the mmap'd code block directly, so GBR/RFE training reads bin
// codes straight off disk — no row materialization, no code copy.
//
// Bit-identity contract: edges are computed with exactly the in-RAM
// `BinnedDataset(Matrix, bins)` scheme (stride-subsampled quantile
// sketch, identical tie handling), and codes with the same lower_bound
// rule — so a fit over this view EXPECT_EQ-matches a fit over the same
// rows materialized in RAM. The builder samples and streams through
// pread, keeping resident set bounded by its fixed chunk buffer instead
// of the column size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/binned.hpp"
#include "store/column_store.hpp"

namespace dfv::store {

struct TrainingSpec {
  std::vector<std::string> features;  ///< F64 column names, feature order
  std::string target;                 ///< F64 column name
  int bins = 24;                      ///< quantile bins (TreeParams default)
};

class TrainingView {
 public:
  /// Open (or build and publish) the sidecars for `spec` over the pinned
  /// content, then map them. Sidecars from an older store content or a
  /// different spec are ignored; corrupt sidecars are rebuilt in place.
  [[nodiscard]] static TrainingView build(std::shared_ptr<const StorePin> pin,
                                          const TrainingSpec& spec);

  /// External-memory binned view (has_source() == false) over the codes.
  [[nodiscard]] const ml::BinnedDataset& binned() const noexcept { return binned_; }
  /// The target column, straight off the store mapping.
  [[nodiscard]] std::span<const double> y() const { return pin_->f64(spec_.target); }
  /// Streaming mean of the target from the zone maps (mean-centering
  /// without a column scan; deterministic per the store's combine order).
  [[nodiscard]] double y_mean() const { return pin_->mean(spec_.target); }

  [[nodiscard]] std::size_t rows() const noexcept { return binned_.rows(); }
  [[nodiscard]] std::size_t features() const noexcept { return binned_.features(); }
  [[nodiscard]] const StorePin& pin() const noexcept { return *pin_; }
  /// True when existing sidecars were reused (the cold-open fast path).
  [[nodiscard]] bool reused_sidecars() const noexcept { return reused_; }

  /// Drop view sidecars in the store directory that no longer match the
  /// pinned content (stale after appends); returns files removed.
  [[nodiscard]] static std::size_t gc_stale_views(const StorePin& pin);

 private:
  TrainingView() = default;

  std::shared_ptr<const StorePin> pin_;
  TrainingSpec spec_;
  MappedFile codes_map_;
  ml::BinnedDataset binned_;
  bool reused_ = false;
};

}  // namespace dfv::store
