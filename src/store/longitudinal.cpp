#include "store/longitudinal.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dfv::store {

namespace {

constexpr std::size_t kCounters = 13;  ///< matches mon::CounterVec width
constexpr double kTwoPi = 6.283185307179586;
constexpr std::size_t kGenChunkRows = 1u << 16;

[[nodiscard]] std::string idx2(const char* prefix, std::size_t k) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%02zu", prefix, k);
  return buf;
}

/// One generated run row: the feature vector (longitudinal_features()
/// order), the target, and the telemetry-quality flag.
struct RunRow {
  std::vector<double> features;
  double run_time_s = 0.0;
  std::uint8_t quality = 1;
};

/// Draw run `i` from its own substream. The dependence of run time on
/// the features is deliberately nonlinear (saturating congestion,
/// multiplicative placement interaction, heavy-tailed I/O excursions):
/// a GBR finds it, the ridge baseline mostly cannot — mirroring the
/// paper's Fig. 9 setting at longitudinal scale.
[[nodiscard]] RunRow generate_run(const LongitudinalSpec& spec, std::uint64_t i) {
  Rng g = Rng(spec.seed).split(i);
  RunRow row;
  row.features.reserve(7 + 2 * kCounters + 8);

  const double day = double(i / spec.runs_per_day);
  const double season = std::sin(kTwoPi * day / 28.0);
  const double daily =
      std::sin(kTwoPi * double(i % spec.runs_per_day) / double(spec.runs_per_day));
  const double background =
      std::clamp(0.45 + 0.18 * season + 0.10 * daily +
                     0.20 * std::tanh(spec.drift_per_day * day) + 0.08 * g.normal(),
                 0.02, 0.98);

  const double num_groups = double(g.uniform_int(4, 16));
  const double num_routers = double(g.uniform_int(8, 96));
  const double alloc_spread = g.uniform();
  const double neighbor_pressure = background * g.uniform(0.5, 1.5);
  const double inj_rate = g.uniform(0.05, 0.9);
  const double msg_bytes = g.lognormal(8.0, 1.2);

  const double congestion = std::max(
      0.0, background * (0.4 + 0.6 * alloc_spread) + 0.3 * inj_rate +
               0.05 * neighbor_pressure + 0.04 * g.normal());
  const double stall = congestion / (1.0 + congestion);  // saturating

  row.features.push_back(day);
  row.features.push_back(num_routers);
  row.features.push_back(num_groups);
  row.features.push_back(alloc_spread);
  row.features.push_back(neighbor_pressure);
  row.features.push_back(inj_rate);
  row.features.push_back(msg_bytes);

  std::vector<double> cmean(kCounters);
  for (std::size_t k = 0; k < kCounters; ++k) {
    cmean[k] = std::max(0.0, stall * (0.5 + 0.5 * std::sin(1.7 * double(k) + 0.9)) +
                                 0.2 * inj_rate * std::cos(0.6 * double(k)) +
                                 0.05 * g.normal());
    row.features.push_back(cmean[k]);
  }
  for (std::size_t k = 0; k < kCounters; ++k)
    row.features.push_back(cmean[k] * (1.5 + 0.2 * g.pareto(1.0, 3.0)));

  const double io_read = g.lognormal(4.0, 1.0);
  const double io_write = g.lognormal(3.5, 1.1);
  const double io_meta = g.lognormal(1.0, 0.8);
  const double io_wait = std::max(0.0, background * g.uniform(0.0, 0.6) +
                                           0.02 * g.normal());
  row.features.push_back(io_read);
  row.features.push_back(io_write);
  row.features.push_back(io_meta);
  row.features.push_back(io_wait);
  row.features.push_back(background + 0.05 * g.normal());   // sys_load
  row.features.push_back(g.uniform(0.2, 0.9));              // sys_mem
  row.features.push_back(background * g.uniform(0.3, 1.2)); // sys_net
  row.features.push_back(g.uniform(0.0, 0.15));             // sys_irq

  const double slowdown = 1.0 + 1.8 * stall * stall + 0.6 * io_wait +
                          0.25 * stall * alloc_spread +
                          0.15 * cmean[5] * neighbor_pressure;
  row.run_time_s = spec.base_time_s * slowdown * g.lognormal(0.0, 0.03);
  row.quality = g.bernoulli(0.01) ? std::uint8_t(2) : std::uint8_t(1);
  return row;
}

}  // namespace

std::vector<std::string> longitudinal_features() {
  std::vector<std::string> names = {"day",          "num_routers", "num_groups",
                                    "alloc_spread", "neigh_press", "inj_rate",
                                    "msg_bytes"};
  for (std::size_t k = 0; k < kCounters; ++k) names.push_back(idx2("cmean_", k));
  for (std::size_t k = 0; k < kCounters; ++k) names.push_back(idx2("cmax_", k));
  for (const char* n : {"io_read", "io_write", "io_meta", "io_wait", "sys_load",
                        "sys_mem", "sys_net", "sys_irq"})
    names.push_back(n);
  return names;
}

std::string longitudinal_target() { return "run_time_s"; }

std::vector<ColumnSpec> longitudinal_schema() {
  std::vector<ColumnSpec> specs;
  for (const std::string& n : longitudinal_features())
    specs.push_back({n, ColumnKind::F64});
  specs.push_back({longitudinal_target(), ColumnKind::F64});
  specs.push_back({"quality", ColumnKind::U8});
  return specs;
}

ColumnStore open_longitudinal_store(const std::string& dir, const StoreOptions& opts) {
  return ColumnStore::open_or_create(dir, longitudinal_schema(), opts);
}

void append_longitudinal_runs(ColumnStore& cs, const LongitudinalSpec& spec,
                              std::uint64_t first_run, std::uint64_t count) {
  DFV_CHECK_MSG(spec.runs_per_day > 0, "longitudinal: runs_per_day must be positive");
  DFV_CHECK_MSG(cs.rows() == first_run,
                "longitudinal: append must continue at the store's row count");
  const std::size_t n_features = longitudinal_features().size();

  std::vector<std::vector<double>> f64(n_features + 1);  // features + target
  std::vector<std::uint8_t> quality;
  std::uint64_t done = 0;
  while (done < count) {
    const std::size_t n =
        std::size_t(std::min<std::uint64_t>(kGenChunkRows, count - done));
    for (auto& col : f64) {
      col.clear();
      col.reserve(n);
    }
    quality.clear();
    quality.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
      const RunRow row = generate_run(spec, first_run + done + r);
      DFV_CHECK(row.features.size() == n_features);
      for (std::size_t f = 0; f < n_features; ++f) f64[f].push_back(row.features[f]);
      f64[n_features].push_back(row.run_time_s);
      quality.push_back(row.quality);
    }
    AppendChunk chunk;
    chunk.rows = n;
    for (const auto& col : f64) chunk.f64.emplace_back(col.data(), col.size());
    chunk.u8.emplace_back(quality.data(), quality.size());
    cs.append(chunk);
    done += n;
  }
  cs.publish();
}

}  // namespace dfv::store
