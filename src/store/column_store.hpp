// Append-only, memory-mapped column store for million-run campaigns.
//
// Layout (one directory per store):
//   <dir>/MANIFEST        text, `#dfv-crc` footer, atomically published —
//                         the single commit point (schema, committed row
//                         count, epoch, per-segment zone maps + CRCs)
//   <dir>/<name>.col      raw little-endian column bytes (f64 or u8),
//                         append-only, chunked into fixed-size row
//                         segments; bytes beyond the committed extent
//                         are torn writes and are truncated on reopen
//   <dir>/view_<fp>.*     training-view sidecars (see training_view.hpp)
//
// Readers pin a published MANIFEST and mmap each column's committed
// prefix: append-only means pinned byte ranges never mutate, so any
// number of pins coexist with one live writer without locks on the data
// path. Zone maps accumulate per *fixed-size* segment — the grouping
// depends only on absolute row index, never on append batch sizes — so
// streaming statistics (mean-centering, quantile sketch sampling) combine
// deterministically: the same rows give bit-identical stats and CRCs no
// matter how they were chunked across appends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "store/mmap_io.hpp"

namespace dfv::store {

enum class ColumnKind : std::uint8_t { F64, U8 };

struct ColumnSpec {
  std::string name;  ///< [A-Za-z0-9_]+, unique within the store
  ColumnKind kind = ColumnKind::F64;
};

/// Per-(column, segment) summary. min/max skip NaN (fmin/fmax semantics);
/// sum is NaN-poisoning, so a segment holding missing telemetry reports
/// an honest NaN mean. `crc` is the running FNV-1a of the segment's
/// committed bytes — for sealed segments the full-segment hash, for the
/// unsealed tail the hash of the bytes committed so far.
struct ZoneMap {
  std::uint64_t count = 0;  ///< committed rows in this segment
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t crc = 0;
};

struct StoreOptions {
  /// Rows per segment; fixed at create time (a store-level constant so
  /// zone-map grouping is independent of append batching).
  std::uint32_t segment_rows = 1u << 16;
};

/// One append chunk: spans ordered as the store's specs (F64 columns in
/// spec order, then U8 columns in spec order), all exactly `rows` long.
struct AppendChunk {
  std::size_t rows = 0;
  std::vector<std::span<const double>> f64;
  std::vector<std::span<const std::uint8_t>> u8;
};

/// Immutable point-in-time view of a store: a published MANIFEST plus a
/// read-only mapping of every column's committed prefix. Safe to share
/// across threads; outlives the writer it was pinned from.
class StorePin {
 public:
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t segment_rows() const noexcept { return segment_rows_; }
  [[nodiscard]] std::span<const ColumnSpec> columns() const noexcept { return specs_; }

  /// Index of the named column; throws ContractError when absent.
  [[nodiscard]] std::size_t column_index(const std::string& name) const;
  /// The committed values of an F64 / U8 column, straight off the mapping.
  [[nodiscard]] std::span<const double> f64(const std::string& name) const;
  [[nodiscard]] std::span<const std::uint8_t> u8(const std::string& name) const;
  [[nodiscard]] std::span<const ZoneMap> zones(std::size_t col) const;

  /// Mean of an F64 column from the zone maps: per-segment sums combined
  /// serially in segment order — O(segments), no column scan, and
  /// bit-identical for a given committed content however it was appended.
  [[nodiscard]] double mean(const std::string& name) const;

  /// Deterministic digest of the committed content (schema, row count,
  /// every segment CRC). Two pins agree iff their committed bytes agree.
  [[nodiscard]] std::uint64_t content_fingerprint() const;

  /// Recompute every segment CRC against the mapped bytes and compare
  /// with the MANIFEST; throws ContractError on any mismatch.
  void verify_integrity() const;

  /// Copy this pinned state into a fresh store directory: column bytes
  /// first (via tmp + rename), MANIFEST last — so the snapshot directory
  /// is itself atomically published and byte-stable across replays of
  /// the same pinned content. `dest_dir` must not already hold a store.
  void snapshot_to(const std::string& dest_dir) const;

 private:
  friend class ColumnStore;
  [[nodiscard]] static std::shared_ptr<const StorePin> load(const std::string& dir);

  std::string dir_;
  std::uint64_t epoch_ = 0;
  std::uint64_t rows_ = 0;
  std::uint32_t segment_rows_ = 0;
  std::vector<ColumnSpec> specs_;
  std::vector<std::vector<ZoneMap>> zones_;  ///< [col][segment]
  std::vector<MappedFile> maps_;             ///< [col], committed prefix
};

/// Single-writer handle: appends rows, publishes commit points, hands out
/// pins of the last published state. Appends and publishes are mutually
/// serialized internally; pins may be taken from any thread.
class ColumnStore {
 public:
  /// Create a fresh store (directory is created; a row-0 MANIFEST is
  /// published immediately so readers can pin an empty store).
  [[nodiscard]] static ColumnStore create(const std::string& dir,
                                          std::vector<ColumnSpec> specs,
                                          const StoreOptions& opts = {});
  /// Open an existing store for appending. Bytes beyond the committed
  /// extent (torn writes from a crashed writer) are truncated away;
  /// a column file *shorter* than the committed extent is corruption and
  /// throws ContractError.
  [[nodiscard]] static ColumnStore open(const std::string& dir);
  /// open() when a MANIFEST exists (validating `specs` against it),
  /// create() otherwise.
  [[nodiscard]] static ColumnStore open_or_create(const std::string& dir,
                                                  std::vector<ColumnSpec> specs,
                                                  const StoreOptions& opts = {});
  /// Pin an existing store read-only, without a writer.
  [[nodiscard]] static std::shared_ptr<const StorePin> open_pin(const std::string& dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::span<const ColumnSpec> specs() const noexcept { return specs_; }
  [[nodiscard]] std::uint32_t segment_rows() const noexcept { return segment_rows_; }
  /// Rows appended so far (committed + not-yet-published).
  [[nodiscard]] std::uint64_t rows() const;
  /// Rows covered by the last published MANIFEST.
  [[nodiscard]] std::uint64_t published_rows() const;

  /// Append `chunk.rows` rows across every column. Data is written to the
  /// column files immediately but only becomes visible to (new) pins
  /// after the next publish().
  void append(const AppendChunk& chunk);

  /// Publish the current appended state as a new epoch: fdatasync every
  /// column file, then atomically rewrite the MANIFEST.
  void publish();

  /// Pin the last published state (fresh mappings; immutable).
  [[nodiscard]] std::shared_ptr<const StorePin> pin() const;

 private:
  ColumnStore() = default;

  struct ColState {
    AppendFile file;
    std::vector<ZoneMap> zones;  ///< includes the unsealed tail segment
  };

  [[nodiscard]] std::string manifest_text() const;  // caller holds mu_

  std::string dir_;
  std::vector<ColumnSpec> specs_;
  std::uint32_t segment_rows_ = 0;

  /// Heap-held so the handle stays movable (factory-returned).
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::uint64_t rows_ = 0;       ///< appended rows (guarded by mu_)
  std::uint64_t epoch_ = 0;      ///< last published epoch (guarded by mu_)
  std::uint64_t pub_rows_ = 0;   ///< rows in last published MANIFEST
  std::vector<ColState> cols_;   ///< guarded by mu_
};

/// Element size in bytes for a column kind.
[[nodiscard]] constexpr std::size_t column_elem_size(ColumnKind k) noexcept {
  return k == ColumnKind::F64 ? sizeof(double) : sizeof(std::uint8_t);
}

}  // namespace dfv::store
