// Seeded synthetic longitudinal campaign: the months-of-telemetry
// workload the Costello–Bhatele monitoring setting implies, generated as
// a stream of per-run aggregate feature rows (counter means/maxes, LDMS
// I/O and system telemetry, placement and workload descriptors) plus a
// run-time target with genuine nonlinear structure for GBR/RFE to find.
//
// Every run is drawn from a per-run substream of a single campaign seed,
// so the content of run i depends only on (seed, i): appending runs
// [0,1M) in one chunk or in a thousand uneven increments produces
// byte-identical column files — the property the `dfv campaign --append`
// path and the snapshot byte-stability tests rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "store/column_store.hpp"

namespace dfv::store {

struct LongitudinalSpec {
  std::uint64_t seed = 0x10d6;  ///< campaign seed (per-run substreams)
  std::uint32_t runs_per_day = 4096;
  double base_time_s = 120.0;   ///< congestion-free run time
  double drift_per_day = 0.02;  ///< slow background-load drift
};

/// Column names of the longitudinal schema: `features()` (all F64), the
/// run-time target, and a per-run u8 quality flag.
[[nodiscard]] std::vector<std::string> longitudinal_features();
[[nodiscard]] std::string longitudinal_target();
/// Full schema in store column order (features, target, quality).
[[nodiscard]] std::vector<ColumnSpec> longitudinal_schema();

/// Open (or create) the longitudinal store at `dir`.
[[nodiscard]] ColumnStore open_longitudinal_store(const std::string& dir,
                                                  const StoreOptions& opts = {});

/// Append runs [first_run, first_run + count) and publish. Content is a
/// pure function of (spec.seed, run index); batching only affects how
/// many publish points exist, never the bytes.
void append_longitudinal_runs(ColumnStore& cs, const LongitudinalSpec& spec,
                              std::uint64_t first_run, std::uint64_t count);

}  // namespace dfv::store
