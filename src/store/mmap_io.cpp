#include "store/mmap_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/check.hpp"

namespace dfv::store {

namespace {

/// One no-resource sentinel mapping target so empty maps need no branch
/// in data()/size() accessors.
const std::uint8_t kEmpty[1] = {0};

}  // namespace

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr && data_ != kEmpty && size_ > 0)
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  data_ = nullptr;
  size_ = 0;
}

MappedFile MappedFile::map_prefix(const std::string& path, std::size_t length) {
  MappedFile m;
  if (length == 0) {
    m.data_ = kEmpty;
    return m;
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  DFV_CHECK_MSG(fd >= 0, "store: cannot open for mmap: " + path);
  struct ::stat st{};
  const bool stat_ok = ::fstat(fd, &st) == 0;
  if (!stat_ok || std::uint64_t(st.st_size) < length) {
    ::close(fd);
    DFV_CHECK_MSG(false, "store: truncated file (shorter than committed "
                         "extent): " + path);
  }
  void* p = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  DFV_CHECK_MSG(p != MAP_FAILED, "store: mmap failed: " + path);
  m.data_ = static_cast<const std::uint8_t*>(p);
  m.size_ = length;
  return m;
}

RandomReadFile::RandomReadFile(RandomReadFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

RandomReadFile& RandomReadFile::operator=(RandomReadFile&& other) noexcept {
  if (this != &other) {
    this->~RandomReadFile();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

RandomReadFile::~RandomReadFile() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

RandomReadFile RandomReadFile::open(const std::string& path) {
  RandomReadFile f;
  f.fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  DFV_CHECK_MSG(f.fd_ >= 0, "store: cannot open for read: " + path);
  return f;
}

void RandomReadFile::read_at(std::uint64_t offset, void* dst, std::size_t n) const {
  DFV_CHECK(fd_ >= 0);
  std::uint8_t* out = static_cast<std::uint8_t*>(dst);
  while (n > 0) {
    const ::ssize_t got = ::pread(fd_, out, n, ::off_t(offset));
    if (got < 0 && errno == EINTR) continue;
    DFV_CHECK_MSG(got > 0, "store: short read (truncated segment?)");
    out += got;
    offset += std::uint64_t(got);
    n -= std::size_t(got);
  }
}

std::uint64_t RandomReadFile::size() const {
  DFV_CHECK(fd_ >= 0);
  struct ::stat st{};
  DFV_CHECK_MSG(::fstat(fd_, &st) == 0, "store: fstat failed");
  return std::uint64_t(st.st_size);
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    this->~AppendFile();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

AppendFile AppendFile::open(const std::string& path) {
  AppendFile f;
  f.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  DFV_CHECK_MSG(f.fd_ >= 0, "store: cannot open for append: " + path);
  return f;
}

void AppendFile::append(const void* data, std::size_t n) {
  DFV_CHECK(fd_ >= 0);
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ::ssize_t put = ::write(fd_, p, n);
    if (put < 0 && errno == EINTR) continue;
    DFV_CHECK_MSG(put > 0, "store: append write failed");
    p += put;
    n -= std::size_t(put);
  }
}

void AppendFile::truncate_to(std::uint64_t length) {
  DFV_CHECK(fd_ >= 0);
  DFV_CHECK_MSG(::ftruncate(fd_, ::off_t(length)) == 0, "store: ftruncate failed");
}

void AppendFile::sync() {
  DFV_CHECK(fd_ >= 0);
  DFV_CHECK_MSG(::fdatasync(fd_) == 0, "store: fdatasync failed");
}

std::uint64_t AppendFile::size() const {
  DFV_CHECK(fd_ >= 0);
  struct ::stat st{};
  DFV_CHECK_MSG(::fstat(fd_, &st) == 0, "store: fstat failed");
  return std::uint64_t(st.st_size);
}

std::uint64_t file_size_or_zero(const std::string& path) noexcept {
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return std::uint64_t(st.st_size);
}

}  // namespace dfv::store
