#include "store/training_view.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/integrity.hpp"
#include "common/rng.hpp"

namespace dfv::store {

namespace {

constexpr std::string_view kEdgesMagic = "dfv-view";
constexpr std::uint64_t kCodesMagic = 0x3145444f43564644ull;  // "DFVCODE1" LE
constexpr std::size_t kCodesHeader = 3 * sizeof(std::uint64_t);
constexpr std::size_t kChunkRows = 1u << 16;  ///< pread streaming buffer

[[nodiscard]] std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

[[nodiscard]] std::uint64_t spec_fingerprint(const TrainingSpec& spec) {
  std::uint64_t h = fnv1a64(spec.target);
  h = hash_combine(h, std::uint64_t(spec.bins));
  for (const std::string& f : spec.features) h = hash_combine(h, fnv1a64(f));
  return h;
}

[[nodiscard]] std::string view_stem(const StorePin& pin, const TrainingSpec& spec) {
  return pin.dir() + "/view_" + hex64(pin.content_fingerprint()) + "_" +
         hex64(spec_fingerprint(spec));
}

/// Quantile edges for one column, reproducing BinnedDataset(Matrix, bins)
/// bit for bit: sample every `stride`-th row, sort, take value at index
/// min(size-1, q*size) per candidate quantile, keep strictly ascending.
/// Samples arrive via pread so the column never enters our resident set.
[[nodiscard]] std::vector<double> column_edges(const RandomReadFile& file,
                                               std::uint64_t rows, int bins) {
  const std::uint64_t stride = std::max<std::uint64_t>(1, rows / 4096);
  std::vector<double> vals;
  vals.reserve(std::size_t(rows / stride) + 1);
  for (std::uint64_t r = 0; r < rows; r += stride) {
    double v = 0.0;
    file.read_at(r * sizeof(double), &v, sizeof v);
    vals.push_back(v);
  }
  std::sort(vals.begin(), vals.end());
  std::vector<double> edges;
  for (std::size_t b = 1; b < std::size_t(bins); ++b) {
    const double q = double(b) / double(bins);
    const double v =
        vals[std::min(vals.size() - 1, std::size_t(q * double(vals.size())))];
    if (edges.empty() || v > edges.back()) edges.push_back(v);
  }
  return edges;
}

[[nodiscard]] std::string edges_to_text(const StorePin& pin, const TrainingSpec& spec,
                                        const std::vector<std::vector<double>>& edges) {
  std::ostringstream os;
  os << kEdgesMagic << " 1\n";
  os << "store " << hex64(pin.content_fingerprint()) << '\n';
  os << "rows " << pin.rows() << '\n';
  os << "bins " << spec.bins << '\n';
  os << "target " << spec.target << '\n';
  os << "features " << spec.features.size() << '\n';
  for (std::size_t f = 0; f < spec.features.size(); ++f) {
    os << "feature " << spec.features[f] << ' ' << edges[f].size();
    for (double e : edges[f]) os << ' ' << hex64(std::bit_cast<std::uint64_t>(e));
    os << '\n';
  }
  return os.str();
}

/// Parse and validate an edges sidecar against (pin, spec). Returns an
/// empty vector when the sidecar is absent, stale, or corrupt — the
/// caller rebuilds in all three cases.
[[nodiscard]] std::vector<std::vector<double>> try_load_edges(
    const std::string& path, const StorePin& pin, const TrainingSpec& spec) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  if (verify_and_strip_checksum(text) != ChecksumStatus::Ok) return {};

  std::istringstream is(text);
  std::string kw, tok;
  int version = 0;
  is >> kw >> version;
  if (kw != kEdgesMagic || version != 1) return {};
  is >> kw >> tok;
  if (kw != "store" || tok != hex64(pin.content_fingerprint())) return {};
  std::uint64_t rows = 0;
  int bins = 0;
  is >> kw >> rows;
  if (kw != "rows" || rows != pin.rows()) return {};
  is >> kw >> bins;
  if (kw != "bins" || bins != spec.bins) return {};
  is >> kw >> tok;
  if (kw != "target" || tok != spec.target) return {};
  std::size_t features = 0;
  is >> kw >> features;
  if (kw != "features" || features != spec.features.size()) return {};

  std::vector<std::vector<double>> edges(features);
  for (std::size_t f = 0; f < features; ++f) {
    std::size_t n = 0;
    is >> kw >> tok >> n;
    if (!is || kw != "feature" || tok != spec.features[f] || n >= 256) return {};
    edges[f].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      is >> tok;
      if (!is || tok.size() != 16) return {};
      edges[f][i] = std::bit_cast<double>(std::strtoull(tok.c_str(), nullptr, 16));
    }
  }
  return edges;
}

/// Build and atomically publish the feature-major code region:
/// header (magic, rows, features), F*rows codes, trailing FNV of all
/// preceding bytes. Streams each column through a fixed chunk buffer.
void build_codes_file(const std::string& final_path, const StorePin& pin,
                      const TrainingSpec& spec,
                      const std::vector<std::vector<double>>& edges) {
  const std::string tmp_path = final_path + ".tmp";
  std::uint64_t crc = kFnvBasis;
  {
    AppendFile out = AppendFile::open(tmp_path);
    out.truncate_to(0);
    const std::uint64_t header[3] = {kCodesMagic, pin.rows(), spec.features.size()};
    out.append(header, sizeof header);
    crc = fnv1a64_update(crc, header, sizeof header);

    std::vector<double> vals(kChunkRows);
    std::vector<std::uint8_t> codes(kChunkRows);
    for (std::size_t f = 0; f < spec.features.size(); ++f) {
      const RandomReadFile col = RandomReadFile::open(
          pin.dir() + "/" + spec.features[f] + ".col");
      const std::vector<double>& e = edges[f];
      for (std::uint64_t r = 0; r < pin.rows(); r += kChunkRows) {
        const std::size_t n =
            std::size_t(std::min<std::uint64_t>(kChunkRows, pin.rows() - r));
        col.read_at(r * sizeof(double), vals.data(), n * sizeof(double));
        for (std::size_t i = 0; i < n; ++i) {
          const auto it = std::lower_bound(e.begin(), e.end(), vals[i]);
          codes[i] = std::uint8_t(it - e.begin());
        }
        out.append(codes.data(), n);
        crc = fnv1a64_update(crc, codes.data(), n);
      }
    }
    out.append(&crc, sizeof crc);
    out.sync();
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  DFV_CHECK_MSG(!ec, "store: code region publish failed for " + final_path);
}

/// Map and validate a code region; empty mapping when absent or corrupt.
[[nodiscard]] MappedFile try_map_codes(const std::string& path, std::uint64_t rows,
                                       std::size_t features) {
  const std::uint64_t want = kCodesHeader + rows * features + sizeof(std::uint64_t);
  if (file_size_or_zero(path) != want) return {};
  MappedFile m = MappedFile::map_prefix(path, std::size_t(want));
  std::uint64_t header[3];
  std::memcpy(header, m.data(), sizeof header);
  if (header[0] != kCodesMagic || header[1] != rows || header[2] != features)
    return {};
  std::uint64_t stored = 0;
  std::memcpy(&stored, m.data() + want - sizeof stored, sizeof stored);
  if (fnv1a64_update(kFnvBasis, m.data(), std::size_t(want) - sizeof stored) != stored)
    return {};
  return m;
}

}  // namespace

TrainingView TrainingView::build(std::shared_ptr<const StorePin> pin,
                                 const TrainingSpec& spec) {
  DFV_CHECK(pin != nullptr);
  DFV_CHECK_MSG(pin->rows() > 0, "store: cannot build a training view over 0 rows");
  DFV_CHECK_MSG(!spec.features.empty(), "store: training view needs features");
  DFV_CHECK(spec.bins >= 2 && spec.bins <= 256);
  for (const std::string& f : spec.features)
    DFV_CHECK_MSG(pin->columns()[pin->column_index(f)].kind == ColumnKind::F64,
                  "store: feature column must be f64: " + f);
  (void)pin->f64(spec.target);  // validates presence + kind

  const std::string stem = view_stem(*pin, spec);
  const std::string edges_path = stem + ".edges";
  const std::string codes_path = stem + ".codes";

  TrainingView view;
  view.spec_ = spec;

  std::vector<std::vector<double>> edges = try_load_edges(edges_path, *pin, spec);
  bool reused = !edges.empty();
  if (!reused) {
    edges.resize(spec.features.size());
    for (std::size_t f = 0; f < spec.features.size(); ++f) {
      const RandomReadFile col =
          RandomReadFile::open(pin->dir() + "/" + spec.features[f] + ".col");
      edges[f] = column_edges(col, pin->rows(), spec.bins);
    }
    std::string text = edges_to_text(*pin, spec, edges);
    append_checksum_footer(text);
    DFV_CHECK_MSG(atomic_write_file(edges_path, text),
                  "store: edges sidecar publish failed: " + edges_path);
  }

  MappedFile codes = try_map_codes(codes_path, pin->rows(), spec.features.size());
  if (codes.empty()) {
    build_codes_file(codes_path, *pin, spec, edges);
    codes = try_map_codes(codes_path, pin->rows(), spec.features.size());
    DFV_CHECK_MSG(!codes.empty(), "store: rebuilt code region failed validation: " +
                                      codes_path);
    reused = false;
  }

  view.reused_ = reused;
  view.binned_ = ml::BinnedDataset(std::move(edges), codes.data() + kCodesHeader,
                                   std::size_t(pin->rows()));
  view.codes_map_ = std::move(codes);
  view.pin_ = std::move(pin);
  return view;
}

std::size_t TrainingView::gc_stale_views(const StorePin& pin) {
  namespace fs = std::filesystem;
  DFV_CHECK_MSG(!pin.dir().empty(), "store pin has no directory");
  const std::string live_prefix = "view_" + hex64(pin.content_fingerprint()) + "_";
  std::size_t removed = 0;
  std::vector<fs::path> stale;
  for (const auto& entry : fs::directory_iterator(pin.dir())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("view_", 0) != 0) continue;
    if (name.rfind(live_prefix, 0) == 0) continue;
    stale.push_back(entry.path());
  }
  for (const fs::path& p : stale) {
    std::error_code ec;
    if (fs::remove(p, ec)) ++removed;
  }
  return removed;
}

}  // namespace dfv::store
