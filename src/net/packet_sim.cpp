#include "net/packet_sim.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace dfv::net {

const char* to_string(TrafficPattern p) noexcept {
  switch (p) {
    case TrafficPattern::Uniform: return "uniform";
    case TrafficPattern::AdversarialShift: return "adversarial-shift";
    case TrafficPattern::Hotspot: return "hotspot";
  }
  return "?";
}

PacketSim::PacketSim(const Topology& topo, PacketSimParams params, std::uint64_t seed)
    : topo_(&topo), params_(params), chooser_(topo, params.routing), rng_(seed) {
  link_free_.assign(std::size_t(topo.num_links()), 0.0);
  queue_rate_.assign(std::size_t(topo.num_links()), 0.0);
  stats_.router_flits.assign(std::size_t(topo.config().num_routers()), 0.0);
  stats_.router_stall_cycles.assign(std::size_t(topo.config().num_routers()), 0.0);
}

void PacketSim::inject(double t, RouterId src, RouterId dst) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.inject_time = t;
  packets_.push_back(std::move(p));
  ++stats_.injected;
  pending_heap_.push(Pending{t, std::uint32_t(packets_.size() - 1)});
}

PacketStats PacketSim::run() {
  const double flit_s = params_.flit_bytes;
  const double clock = topo_->config().clock_hz;
  std::vector<double> delivered_latencies;
  delivered_latencies.reserve(packets_.size());
  double total_hops = 0.0;

  while (!pending_heap_.empty()) {
    const Pending ev = pending_heap_.top();
    pending_heap_.pop();
    Packet& p = packets_[ev.id];
    const double now = ev.time;

    if (!p.routed) {
      // Path chosen per-packet when it enters the network, against the
      // *current* backlog state — the approximation of Aries' per-hop
      // back-pressure-driven adaptive choice.
      Path path = chooser_.choose(p.src, p.dst, params_.policy, queue_rate_, rng_);
      p.path = std::move(path.links);
      p.routed = true;
    }

    if (p.hop >= p.path.size()) {
      // Arrived at destination router: eject.
      const double lat = now - p.inject_time;
      delivered_latencies.push_back(lat);
      total_hops += double(p.path.size());
      ++stats_.delivered;
      stats_.delivered_bytes += double(params_.packet_flits) * flit_s;
      stats_.sim_time = std::max(stats_.sim_time, now);
      continue;
    }

    const LinkId e = p.path[p.hop];
    const LinkInfo& li = topo_->link(e);
    const double ser = double(params_.packet_flits) * flit_s / li.capacity;
    const double depart = std::max(now, link_free_[std::size_t(e)]);
    link_free_[std::size_t(e)] = depart + ser;
    // Backlog expressed as queued packets, scaled so PathChooser's
    // normalized cost (load/capacity * congestion_weight) charges about
    // one hop-equivalent per queued packet — the UGAL comparison.
    const double queued_packets = std::max(0.0, link_free_[std::size_t(e)] - now) / ser;
    queue_rate_[std::size_t(e)] =
        queued_packets * li.capacity / chooser_.params().congestion_weight;

    const double wait = depart - now;
    if (wait > 0.0) stats_.router_stall_cycles[std::size_t(li.from)] += wait * clock;
    stats_.router_flits[std::size_t(li.to)] += double(params_.packet_flits);

    p.hop += 1;
    pending_heap_.push(Pending{depart + ser + li.latency, ev.id});
  }

  if (!delivered_latencies.empty()) {
    stats_.mean_latency = stats::mean(delivered_latencies);
    stats_.p99_latency = stats::percentile(delivered_latencies, 0.99);
    stats_.mean_hops = total_hops / double(delivered_latencies.size());
  }
  if (stats_.sim_time > 0.0) stats_.throughput = stats_.delivered_bytes / stats_.sim_time;
  return stats_;
}

PacketStats PacketSim::run_synthetic(TrafficPattern pattern, double offered_load,
                                     int packets_per_router) {
  DFV_CHECK(offered_load > 0.0);
  const auto& cfg = topo_->config();
  const int R = cfg.num_routers();
  const int G = cfg.groups;
  const double pkt_bytes = double(params_.packet_flits) * params_.flit_bytes;
  // Offered load is a fraction of one green link's bandwidth per router.
  const double rate = offered_load * cfg.green_bw / pkt_bytes;  // packets/s per router
  const RouterId hotspot = RouterId(R / 2);

  for (RouterId src = 0; src < R; ++src) {
    double t = 0.0;
    for (int i = 0; i < packets_per_router; ++i) {
      t += rng_.exponential(rate);
      RouterId dst = src;
      switch (pattern) {
        case TrafficPattern::Uniform:
          while (dst == src) dst = RouterId(rng_.uniform_index(std::uint64_t(R)));
          break;
        case TrafficPattern::AdversarialShift: {
          const GroupId g = topo_->group_of(src);
          const GroupId tg = GroupId((g + 1) % std::max(1, G));
          dst = RouterId(tg * cfg.routers_per_group() +
                         int(rng_.uniform_index(std::uint64_t(cfg.routers_per_group()))));
          break;
        }
        case TrafficPattern::Hotspot:
          if (rng_.bernoulli(0.2)) {
            dst = hotspot;
            if (dst == src) dst = RouterId((hotspot + 1) % R);
          } else {
            while (dst == src) dst = RouterId(rng_.uniform_index(std::uint64_t(R)));
          }
          break;
      }
      inject(t, src, dst);
    }
  }
  return run();
}

}  // namespace dfv::net
