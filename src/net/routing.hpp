// Routing policies for the dragonfly: minimal, Valiant, and UGAL-style
// adaptive routing (Cray XC systems route adaptively based on link
// back-pressure; §II-A of the paper).
#pragma once

#include <span>

#include "common/rng.hpp"
#include "net/topology.hpp"
#include "net/traffic.hpp"

namespace dfv::net {

enum class RoutingPolicy : std::uint8_t {
  Minimal,  ///< always a shortest path (random blue copy / intra order)
  Valiant,  ///< always via a random intermediate group
  Ugal,     ///< adaptive: cheapest of sampled minimal and Valiant candidates
};

[[nodiscard]] const char* to_string(RoutingPolicy p) noexcept;

/// Tuning knobs for adaptive path choice.
struct RoutingParams {
  int minimal_candidates = 2;  ///< minimal paths sampled per decision
  int valiant_candidates = 2;  ///< Valiant paths sampled per decision
  /// Weight of normalized link load vs. hop count in the path cost
  /// (cost = hops + congestion_weight * sum(load_e / cap_e)).
  double congestion_weight = 6.0;
  /// Extra cost per hop charged to non-minimal paths (UGAL's reluctance
  /// to take the longer route when the network is idle).
  double valiant_hop_penalty = 0.35;
};

/// Chooses paths given the current link-load estimate.
class PathChooser {
 public:
  PathChooser(const Topology& topo, RoutingParams params = {})
      : topo_(&topo), params_(params) {}

  /// Pick a path for (src, dst) under `policy`. `link_rate` is the current
  /// per-link load estimate in bytes/s (may be empty => uncongested).
  [[nodiscard]] Path choose(RouterId src, RouterId dst, RoutingPolicy policy,
                            std::span<const double> link_rate, Rng& rng) const;

  /// Cost used for comparisons: hops + congestion_weight * sum(util).
  [[nodiscard]] double path_cost(const Path& p, std::span<const double> link_rate,
                                 bool non_minimal) const;

  [[nodiscard]] const RoutingParams& params() const noexcept { return params_; }

 private:
  [[nodiscard]] Path sample_minimal(RouterId src, RouterId dst, Rng& rng) const;
  [[nodiscard]] Path sample_valiant(RouterId src, RouterId dst, Rng& rng) const;

  const Topology* topo_;
  RoutingParams params_;
};

}  // namespace dfv::net
