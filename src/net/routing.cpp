#include "net/routing.hpp"

#include <limits>

#include "common/check.hpp"

namespace dfv::net {

const char* to_string(RoutingPolicy p) noexcept {
  switch (p) {
    case RoutingPolicy::Minimal: return "minimal";
    case RoutingPolicy::Valiant: return "valiant";
    case RoutingPolicy::Ugal: return "ugal";
  }
  return "?";
}

double PathChooser::path_cost(const Path& p, std::span<const double> link_rate,
                              bool non_minimal) const {
  double cost = double(p.hops());
  if (non_minimal) cost += params_.valiant_hop_penalty * double(p.hops());
  if (!link_rate.empty()) {
    for (LinkId id : p.links) {
      const LinkInfo& li = topo_->link(id);
      cost += params_.congestion_weight * link_rate[std::size_t(id)] / li.capacity;
    }
  }
  return cost;
}

Path PathChooser::sample_minimal(RouterId src, RouterId dst, Rng& rng) const {
  const int copies = std::max(1, topo_->blue_copies());
  const int k = int(rng.uniform_index(std::uint64_t(copies)));
  const auto o1 = rng.bernoulli(0.5) ? IntraOrder::RowFirst : IntraOrder::ColFirst;
  const auto o2 = rng.bernoulli(0.5) ? IntraOrder::RowFirst : IntraOrder::ColFirst;
  return topo_->minimal_path(src, dst, k, o1, o2);
}

Path PathChooser::sample_valiant(RouterId src, RouterId dst, Rng& rng) const {
  const int G = topo_->config().groups;
  const GroupId ga = topo_->group_of(src), gb = topo_->group_of(dst);
  // Draw an intermediate group distinct from both endpoints' groups.
  GroupId via = GroupId(rng.uniform_index(std::uint64_t(G)));
  for (int tries = 0; (via == ga || via == gb) && tries < 8; ++tries)
    via = GroupId(rng.uniform_index(std::uint64_t(G)));
  if (via == ga || via == gb) return sample_minimal(src, dst, rng);
  const int copies = std::max(1, topo_->blue_copies());
  const int k1 = int(rng.uniform_index(std::uint64_t(copies)));
  const int k2 = int(rng.uniform_index(std::uint64_t(copies)));
  const auto order = rng.bernoulli(0.5) ? IntraOrder::RowFirst : IntraOrder::ColFirst;
  return topo_->valiant_path(src, dst, via, k1, k2, order);
}

Path PathChooser::choose(RouterId src, RouterId dst, RoutingPolicy policy,
                         std::span<const double> link_rate, Rng& rng) const {
  DFV_CHECK(src >= 0 && src < topo_->config().num_routers());
  DFV_CHECK(dst >= 0 && dst < topo_->config().num_routers());
  if (src == dst) return {};

  const bool can_valiant = topo_->config().groups > 2 ||
                           (topo_->config().groups == 2 &&
                            topo_->group_of(src) == topo_->group_of(dst));

  switch (policy) {
    case RoutingPolicy::Minimal:
      return sample_minimal(src, dst, rng);
    case RoutingPolicy::Valiant:
      if (!can_valiant) return sample_minimal(src, dst, rng);
      // Intra-group pairs still get a minimal route: Valiant through a
      // remote group for local traffic is not what Cray XC does.
      if (topo_->group_of(src) == topo_->group_of(dst) && topo_->config().groups < 2)
        return sample_minimal(src, dst, rng);
      return sample_valiant(src, dst, rng);
    case RoutingPolicy::Ugal: {
      Path best;
      double best_cost = std::numeric_limits<double>::infinity();
      for (int i = 0; i < params_.minimal_candidates; ++i) {
        Path p = sample_minimal(src, dst, rng);
        const double c = path_cost(p, link_rate, /*non_minimal=*/false);
        if (c < best_cost) {
          best_cost = c;
          best = std::move(p);
        }
      }
      if (can_valiant && topo_->group_of(src) != topo_->group_of(dst)) {
        for (int i = 0; i < params_.valiant_candidates; ++i) {
          Path p = sample_valiant(src, dst, rng);
          const double c = path_cost(p, link_rate, /*non_minimal=*/true);
          if (c < best_cost) {
            best_cost = c;
            best = std::move(p);
          }
        }
      }
      return best;
    }
  }
  return sample_minimal(src, dst, rng);
}

}  // namespace dfv::net
