#include "net/vc_sim.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace dfv::net {

double VcStats::total_stall_cycles() const {
  double s = 0.0;
  for (double v : stall_cycles_rq) s += v;
  for (double v : stall_cycles_rs) s += v;
  return s;
}

VcPacketSim::VcPacketSim(const Topology& topo, VcSimParams params, std::uint64_t seed)
    : topo_(&topo), params_(params), rng_(seed) {
  DFV_CHECK(params_.vcs >= 1 && params_.buffer_flits >= params_.packet_flits);
  link_free_.assign(std::size_t(topo.num_links()), 0.0);
  buffer_occupancy_.assign(std::size_t(topo.num_links()),
                           std::vector<int>(std::size_t(params_.vcs), 0));
  waiters_.assign(std::size_t(topo.num_links()), {});
  stats_.stall_cycles_rq.assign(std::size_t(topo.config().num_routers()), 0.0);
  stats_.stall_cycles_rs.assign(std::size_t(topo.config().num_routers()), 0.0);
}

void VcPacketSim::inject(double t, RouterId src, RouterId dst) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.at = src;
  p.inject_time = t;
  p.response = rng_.bernoulli(params_.response_fraction);
  packets_.push_back(p);
  ++stats_.injected;
  events_.push(Event{t, std::uint32_t(packets_.size() - 1), 0});
}

int VcPacketSim::credits(LinkId link, int vc) const {
  return params_.buffer_flits - buffer_occupancy_[std::size_t(link)][std::size_t(vc)];
}

void VcPacketSim::next_hop_candidates(RouterId at, RouterId target, LinkId out[2],
                                      int& n) {
  n = 0;
  if (at == target) return;
  const GroupId ga = topo_->group_of(at);
  const GroupId gt = topo_->group_of(target);
  const int row_a = topo_->row_of(at), col_a = topo_->col_of(at);

  if (ga == gt) {
    const int row_t = topo_->row_of(target), col_t = topo_->col_of(target);
    if (row_a == row_t) {
      out[n++] = topo_->green_link(ga, row_a, col_a, col_t);
    } else if (col_a == col_t) {
      out[n++] = topo_->black_link(ga, col_a, row_a, row_t);
    } else {
      out[n++] = topo_->green_link(ga, row_a, col_a, col_t);
      out[n++] = topo_->black_link(ga, col_a, row_a, row_t);
    }
    return;
  }

  // Inter-group: take a blue link to gt if this router terminates one;
  // otherwise head toward the gateway of a sampled copy.
  const int K = topo_->blue_copies();
  for (int k = 0; k < K && n < 2; ++k)
    if (topo_->gateway(ga, gt, k) == at) out[n++] = topo_->blue_link(ga, gt, k);
  if (n > 0) return;

  for (int attempt = 0; attempt < 2; ++attempt) {
    const int k = int(rng_.uniform_index(std::uint64_t(K)));
    const RouterId gw = topo_->gateway(ga, gt, k);
    if (gw == at) continue;  // handled above
    const int row_g = topo_->row_of(gw), col_g = topo_->col_of(gw);
    LinkId step;
    if (row_a == row_g) {
      step = topo_->green_link(ga, row_a, col_a, col_g);
    } else if (col_a == col_g) {
      step = topo_->black_link(ga, col_a, row_a, row_g);
    } else {
      step = rng_.bernoulli(0.5) ? topo_->green_link(ga, row_a, col_a, col_g)
                                 : topo_->black_link(ga, col_a, row_a, row_g);
    }
    if (n == 0 || out[0] != step) out[n++] = step;
  }
}

bool VcPacketSim::try_advance(std::uint32_t id, double now) {
  Packet& p = packets_[id];

  // Injection-time decision: Valiant always detours inter-group traffic;
  // UGAL detours when the minimal first hops are credit-starved.
  if (!p.routed_entry) {
    p.routed_entry = true;
    const GroupId gs = topo_->group_of(p.src), gd = topo_->group_of(p.dst);
    const int G = topo_->config().groups;
    if (gs != gd && G > 2) {
      bool go_valiant = false;
      if (params_.policy == RoutingPolicy::Valiant) {
        go_valiant = true;
      } else if (params_.policy == RoutingPolicy::Ugal) {
        LinkId cand[2];
        int n = 0;
        next_hop_candidates(p.at, p.dst, cand, n);
        int best_credits = 0;
        for (int i = 0; i < n; ++i)
          best_credits = std::max(best_credits, credits(cand[i], 0));
        go_valiant = best_credits < params_.packet_flits;
      }
      if (go_valiant) {
        GroupId via = GroupId(rng_.uniform_index(std::uint64_t(G)));
        for (int tries = 0; (via == gs || via == gd) && tries < 8; ++tries)
          via = GroupId(rng_.uniform_index(std::uint64_t(G)));
        if (via != gs && via != gd) p.via_group = via;
      }
    }
  }

  // Resolve the Valiant phase.
  if (p.via_group >= 0 && topo_->group_of(p.at) == p.via_group) p.via_group = -1;
  const RouterId target =
      p.via_group >= 0 ? topo_->gateway(p.via_group, topo_->group_of(p.dst), 0) : p.dst;

  auto charge_stall = [&](double until) {
    if (p.blocked_since >= 0.0) {
      const double cycles = (until - p.blocked_since) * topo_->config().clock_hz;
      (p.response ? stats_.stall_cycles_rs : stats_.stall_cycles_rq)[std::size_t(p.at)] +=
          std::max(0.0, cycles);
      p.blocked_since = -1.0;
    }
  };

  if (p.at == p.dst) {
    charge_stall(now);
    // Eject: release the held input buffer and wake upstream waiters.
    if (p.held_link != kInvalidLink) {
      buffer_occupancy_[std::size_t(p.held_link)][std::size_t(p.held_vc)] -=
          params_.packet_flits;
      wake_waiters(p.held_link, p.held_vc, now);
      p.held_link = kInvalidLink;
    }
    latencies_.push_back(now - p.inject_time);
    total_hops_ += double(p.hop);
    ++stats_.delivered;
    stats_.sim_time = std::max(stats_.sim_time, now);
    return true;
  }

  LinkId cand[2];
  int n = 0;
  next_hop_candidates(p.at, target, cand, n);
  DFV_CHECK_MSG(n > 0, "router " << p.at << " has no next hop toward " << target);

  // Adaptive pick: most credits on the packet's next VC, ties by link_free.
  const int vc = std::min<int>(p.hop, params_.vcs - 1);
  int best = -1;
  for (int i = 0; i < n; ++i) {
    if (credits(cand[i], vc) < params_.packet_flits) continue;
    if (best < 0 || credits(cand[i], vc) > credits(cand[best], vc) ||
        (credits(cand[i], vc) == credits(cand[best], vc) &&
         link_free_[std::size_t(cand[i])] < link_free_[std::size_t(cand[best])]))
      best = i;
  }

  if (best < 0) {
    // Credit-starved: block on both candidates and wait for a release.
    // The registered seq invalidates these entries if the packet advances
    // through the other candidate first.
    if (p.blocked_since < 0.0) p.blocked_since = now;
    for (int i = 0; i < n; ++i)
      waiters_[std::size_t(cand[i])].push_back(Event{now, id, p.seq, vc});
    return false;
  }

  const LinkId e = cand[best];
  const LinkInfo& li = topo_->link(e);
  const double ser = double(params_.packet_flits) * params_.flit_bytes / li.capacity;
  const double depart = std::max(now, link_free_[std::size_t(e)]);
  if (depart > now + ser * 0.01 && p.blocked_since < 0.0) {
    // Link busy (serialization): treat the wait as a stall too.
    p.blocked_since = now;
  }
  charge_stall(depart);
  link_free_[std::size_t(e)] = depart + ser;

  // Reserve the downstream buffer now (credit consumed), release ours.
  buffer_occupancy_[std::size_t(e)][std::size_t(vc)] += params_.packet_flits;
  if (p.held_link != kInvalidLink) {
    buffer_occupancy_[std::size_t(p.held_link)][std::size_t(p.held_vc)] -= params_.packet_flits;
    wake_waiters(p.held_link, p.held_vc, depart);
  }
  p.held_link = e;
  p.held_vc = vc;
  p.at = li.to;
  p.hop = std::uint8_t(std::min<int>(p.hop + 1, 255));
  ++p.seq;
  events_.push(Event{depart + ser + li.latency, id, p.seq});
  return true;
}

void VcPacketSim::wake_waiters(LinkId link, int vc, double now) {
  // Exactly one packet's worth of credits was released on (link, vc):
  // waking every blocked packet is a thundering herd (millions of no-op
  // events under congestion). Wake a bounded set: up to 3 valid waiters
  // on the matching VC, plus 1 on any VC as a stranding safety valve.
  auto& w = waiters_[std::size_t(link)];
  if (w.empty()) return;
  int matched = 0, any = 0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const Event& e = w[i];
    if (packets_[e.packet].seq != e.seq) continue;  // stale: drop
    bool wake = false;
    if (e.vc == vc && matched < 3) {
      wake = true;
      ++matched;
    } else if (any < 1) {
      wake = true;
      ++any;
    }
    if (wake)
      events_.push(Event{now, e.packet, e.seq, e.vc});
    else
      w[kept++] = e;
  }
  w.resize(kept);
}

VcStats VcPacketSim::run() {
  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    if (packets_[ev.packet].seq != ev.seq) continue;  // stale wake-up
    (void)try_advance(ev.packet, ev.time);
  }
  stats_.deadlocked = stats_.delivered < stats_.injected;
  if (!latencies_.empty()) {
    stats_.mean_latency = stats::mean(latencies_);
    stats_.p99_latency = stats::percentile(latencies_, 0.99);
    stats_.mean_hops = total_hops_ / double(latencies_.size());
  }
  const double bytes =
      double(stats_.delivered) * params_.packet_flits * params_.flit_bytes;
  if (stats_.sim_time > 0.0) stats_.throughput = bytes / stats_.sim_time;
  return stats_;
}

VcStats VcPacketSim::run_synthetic(TrafficPattern pattern, double offered_load,
                                   int packets_per_router) {
  DFV_CHECK(offered_load > 0.0);
  const auto& cfg = topo_->config();
  const int R = cfg.num_routers();
  const int G = cfg.groups;
  const double pkt_bytes = double(params_.packet_flits) * params_.flit_bytes;
  const double rate = offered_load * cfg.green_bw / pkt_bytes;
  const RouterId hotspot = RouterId(R / 2);

  for (RouterId src = 0; src < R; ++src) {
    double t = 0.0;
    for (int i = 0; i < packets_per_router; ++i) {
      t += rng_.exponential(rate);
      RouterId dst = src;
      switch (pattern) {
        case TrafficPattern::Uniform:
          while (dst == src) dst = RouterId(rng_.uniform_index(std::uint64_t(R)));
          break;
        case TrafficPattern::AdversarialShift: {
          const GroupId tg = GroupId((topo_->group_of(src) + 1) % std::max(1, G));
          dst = RouterId(tg * cfg.routers_per_group() +
                         int(rng_.uniform_index(std::uint64_t(cfg.routers_per_group()))));
          break;
        }
        case TrafficPattern::Hotspot:
          if (rng_.bernoulli(0.2)) {
            dst = hotspot == src ? RouterId((hotspot + 1) % R) : hotspot;
          } else {
            while (dst == src) dst = RouterId(rng_.uniform_index(std::uint64_t(R)));
          }
          break;
      }
      inject(t, src, dst);
    }
  }
  return run();
}

}  // namespace dfv::net
