// Packet-level discrete-event simulator for the dragonfly.
//
// This is the high-fidelity engine: every packet is injected, routed
// (path chosen per-packet at injection using current queue backlogs,
// which approximates Cray's per-hop adaptive routing), serialized over
// each link, and delivered. It is used to validate the flow-level model
// and to reproduce the classic dragonfly routing results (minimal
// routing collapses under adversarial group-to-group traffic; UGAL
// tracks minimal under uniform traffic and Valiant under adversarial).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "net/routing.hpp"
#include "net/traffic.hpp"

namespace dfv::net {

struct PacketSimParams {
  RoutingPolicy policy = RoutingPolicy::Ugal;
  RoutingParams routing;
  int packet_flits = 4;      ///< flits per packet
  double flit_bytes = 16.0;  ///< bytes per flit
};

/// Synthetic traffic patterns for throughput/latency studies.
enum class TrafficPattern : std::uint8_t {
  Uniform,           ///< destination router uniform over the system
  AdversarialShift,  ///< destination in group (g+1) mod G: the worst case
                     ///< for minimal dragonfly routing
  Hotspot,           ///< 20% of traffic to one router, rest uniform
};

[[nodiscard]] const char* to_string(TrafficPattern p) noexcept;

/// Aggregate results of one DES run.
struct PacketStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  double sim_time = 0.0;            ///< time of last delivery [s]
  double mean_latency = 0.0;        ///< seconds
  double p99_latency = 0.0;         ///< seconds
  double mean_hops = 0.0;
  double delivered_bytes = 0.0;
  double throughput = 0.0;          ///< delivered bytes / sim_time [bytes/s]
  std::vector<double> router_flits;        ///< flits forwarded per router
  std::vector<double> router_stall_cycles; ///< queueing delay in cycles per router
};

/// Event-driven packet simulator over a Topology.
class PacketSim {
 public:
  PacketSim(const Topology& topo, PacketSimParams params, std::uint64_t seed);

  /// Queue a packet for injection at absolute time `t` (seconds).
  void inject(double t, RouterId src, RouterId dst);

  /// Process all events; returns aggregate statistics.
  [[nodiscard]] PacketStats run();

  /// Convenience driver: inject `packets_per_router` packets per router
  /// according to `pattern` with exponential inter-arrival times targeting
  /// `offered_load` (fraction of per-router injection bandwidth), then run.
  [[nodiscard]] PacketStats run_synthetic(TrafficPattern pattern, double offered_load,
                                          int packets_per_router);

 private:
  struct Pending {
    double time = 0.0;       ///< next event time for this packet
    std::uint32_t id = 0;    ///< index into packets_
    bool operator>(const Pending& o) const noexcept { return time > o.time; }
  };
  struct Packet {
    RouterId src = kInvalidRouter;
    RouterId dst = kInvalidRouter;
    double inject_time = 0.0;
    std::vector<LinkId> path;  ///< chosen when the packet enters the network
    std::uint16_t hop = 0;
    bool routed = false;
  };
  using EventQueue =
      std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>;

  const Topology* topo_;
  PacketSimParams params_;
  PathChooser chooser_;
  Rng rng_;
  std::vector<Packet> packets_;
  std::vector<double> link_free_;   ///< absolute time each link becomes idle
  std::vector<double> queue_rate_;  ///< backlog estimate handed to the chooser
  PacketStats stats_;
  EventQueue pending_heap_;
};

}  // namespace dfv::net
