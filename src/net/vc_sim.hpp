// Credit-based virtual-channel packet simulator.
//
// The second, higher-fidelity DES: unlike PacketSim (source-routed,
// output-queued, infinite buffers), this engine models what Aries router
// tiles actually do and what the Table II stall counters actually count:
//
//  * per-hop routing: each router picks the next output among minimal
//    candidates by credit availability (Valiant detours decided at
//    injection, as on Cray XC);
//  * finite input buffers per (link, VC) with credit-based flow control —
//    a packet advances only when the downstream buffer has room;
//  * VC climbing (the packet's VC index increases every hop), the
//    standard dragonfly deadlock-avoidance scheme;
//  * stall accounting: cycles a packet spends blocked waiting for credits
//    are charged to the router where it waits, split into request/response
//    classes — the direct analogue of PT/RT_*_STL_RQ/RS.
//
// Used by tests and the buffer/VC ablation bench; the flow model remains
// the campaign engine.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "net/packet_sim.hpp"  // TrafficPattern
#include "net/routing.hpp"

namespace dfv::net {

struct VcSimParams {
  RoutingPolicy policy = RoutingPolicy::Ugal;
  int vcs = 8;              ///< virtual channels per link (>= max hops for deadlock freedom)
  int buffer_flits = 48;    ///< input buffer depth per (link, VC)
  int packet_flits = 4;
  double flit_bytes = 16.0;
  /// Fraction of packets on the response class (charged to *_RS stalls).
  double response_fraction = 0.25;
};

struct VcStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  bool deadlocked = false;  ///< events drained with packets still in flight
  double sim_time = 0.0;
  double mean_latency = 0.0;
  double p99_latency = 0.0;
  double mean_hops = 0.0;
  double throughput = 0.0;  ///< delivered bytes / sim_time

  /// Credit-stall cycles charged per router, split by traffic class
  /// (request vs. response) — the VcSim analogue of PT/RT stall counters.
  std::vector<double> stall_cycles_rq;
  std::vector<double> stall_cycles_rs;
  [[nodiscard]] double total_stall_cycles() const;
};

class VcPacketSim {
 public:
  VcPacketSim(const Topology& topo, VcSimParams params, std::uint64_t seed);

  /// Queue a packet for injection at absolute time `t`.
  void inject(double t, RouterId src, RouterId dst);

  /// Process all events.
  [[nodiscard]] VcStats run();

  /// Convenience driver mirroring PacketSim::run_synthetic.
  [[nodiscard]] VcStats run_synthetic(TrafficPattern pattern, double offered_load,
                                      int packets_per_router);

 private:
  struct Packet {
    RouterId src = kInvalidRouter;
    RouterId dst = kInvalidRouter;
    GroupId via_group = -1;  ///< Valiant intermediate (-1 = go minimal)
    RouterId at = kInvalidRouter;
    double inject_time = 0.0;
    double blocked_since = -1.0;
    std::uint8_t hop = 0;
    bool response = false;
    bool routed_entry = false;
    LinkId held_link = kInvalidLink;  ///< input buffer currently occupied
    int held_vc = 0;
    std::uint32_t seq = 0;  ///< guards against stale waiter wake-ups
  };
  struct Event {
    double time;
    std::uint32_t packet;
    std::uint32_t seq;
    int vc = 0;  ///< waited-for VC (waiter lists only)
    bool operator>(const Event& o) const noexcept { return time > o.time; }
  };

  /// Minimal next-hop candidates from `at` toward `target` (1 or 2 links).
  void next_hop_candidates(RouterId at, RouterId target, LinkId out[2], int& n);
  /// Credits currently available on (link, vc).
  [[nodiscard]] int credits(LinkId link, int vc) const;
  /// Try to advance a packet; returns true if it moved (or delivered).
  [[nodiscard]] bool try_advance(std::uint32_t id, double now);
  void wake_waiters(LinkId link, int vc, double now);

  const Topology* topo_;
  VcSimParams params_;
  Rng rng_;

  std::vector<Packet> packets_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::vector<double> link_free_;                    ///< serialization availability
  std::vector<std::vector<int>> buffer_occupancy_;   ///< [link][vc] flits held downstream
  std::vector<std::vector<Event>> waiters_;          ///< packets blocked on a link
  VcStats stats_;
  std::vector<double> latencies_;
  double total_hops_ = 0.0;
};

}  // namespace dfv::net
