// Dragonfly system configuration modeled after Cray XC (Cascade) systems
// with Aries routers, as described in §II-A of the paper: 96 routers per
// group arranged in a 16x6 grid, all-to-all "green" links within a row,
// all-to-all "black" links within a column, and "blue" global links
// between groups. Cori (NERSC) has 34 groups.
#pragma once

#include <cstdint>

namespace dfv::net {

/// Integral identifier types (flat indices into topology arrays).
using RouterId = std::int32_t;
using NodeId = std::int32_t;
using LinkId = std::int32_t;
using GroupId = std::int32_t;

inline constexpr RouterId kInvalidRouter = -1;
inline constexpr LinkId kInvalidLink = -1;

/// Static description of a dragonfly system.
///
/// Defaults approximate Cori's Aries deployment. `small()` provides a
/// scaled-down instance used by unit tests and the packet-level DES.
struct DragonflyConfig {
  int groups = 34;            ///< number of dragonfly groups
  int row_size = 16;          ///< routers per row (green all-to-all)
  int col_size = 6;           ///< routers per column (black all-to-all)
  int nodes_per_router = 4;   ///< compute nodes attached per Aries router
  int global_ports_per_router = 10;  ///< blue (optical) ports per router

  // Per-direction link bandwidths in bytes/second. Aries: electrical
  // green/black links ~5.25 GB/s, optical blue links ~4.7 GB/s.
  double green_bw = 5.25e9;
  double black_bw = 5.25e9;
  double blue_bw = 4.7e9;
  /// Aggregate NIC injection/ejection bandwidth per router (4 nodes share
  /// the 8 processor tiles of one Aries router).
  double endpoint_bw = 16.0e9;

  double hop_latency = 1.0e-7;     ///< per electrical hop [s]
  double global_latency = 1.2e-6;  ///< per optical (blue) hop [s]
  double flit_bytes = 16.0;        ///< bytes per flit for counter accounting
  double flits_per_packet = 4.0;   ///< average packet size for PKT counters
  double clock_hz = 8.75e8;        ///< router tile clock (stall counters are in cycles)

  [[nodiscard]] constexpr int routers_per_group() const noexcept {
    return row_size * col_size;
  }
  [[nodiscard]] constexpr int num_routers() const noexcept {
    return groups * routers_per_group();
  }
  [[nodiscard]] constexpr int num_nodes() const noexcept {
    return num_routers() * nodes_per_router;
  }
  /// Number of parallel blue links between each unordered group pair.
  [[nodiscard]] constexpr int links_per_group_pair() const noexcept {
    return groups <= 1
               ? 0
               : (routers_per_group() * global_ports_per_router) / (groups - 1);
  }

  /// Cori-scale configuration (34 groups, 3264 routers, ~13k nodes).
  [[nodiscard]] static DragonflyConfig cori() { return DragonflyConfig{}; }

  /// Small configuration for tests/DES: `groups` groups of 4x3 routers.
  [[nodiscard]] static DragonflyConfig small(int groups = 4) {
    DragonflyConfig c;
    c.groups = groups;
    c.row_size = 4;
    c.col_size = 3;
    c.nodes_per_router = 2;
    c.global_ports_per_router = 4;
    return c;
  }

  /// Throws ContractError when the parameters are inconsistent.
  void validate() const;
};

}  // namespace dfv::net
