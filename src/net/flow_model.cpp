#include "net/flow_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace dfv::net {

double stall_fraction(double utilization) noexcept {
  // Queueing-style growth: negligible below ~40% utilization, steep near
  // saturation. The value is "stall cycles per cycle" aggregated over the
  // VCs of a tile, so it may exceed 1; clamp to keep counters finite when
  // demand far exceeds capacity.
  const double u = std::min(utilization, 1.2);
  const double s = std::max(0.0, u - 0.15);
  return std::min(6.0, s * s / std::max(0.05, 1.02 - u));
}

FlowModel::FlowModel(const Topology& topo, FlowModelParams params)
    : topo_(&topo), params_(params), chooser_(topo, params.routing) {
  DFV_CHECK(params_.capacity_headroom > 0.0 && params_.capacity_headroom <= 1.0);
  DFV_CHECK(params_.min_residual_frac > 0.0 && params_.min_residual_frac < 1.0);
  DFV_CHECK(params_.max_chunks >= 1);
}

namespace {

int chunk_count(double bytes, const FlowModelParams& p) {
  if (bytes <= p.chunk_bytes) return 1;
  const double n = std::ceil(bytes / p.chunk_bytes);
  return int(std::min<double>(n, p.max_chunks));
}

}  // namespace

void FlowModel::route_background(std::span<const Demand> demands, RoutingPolicy policy,
                                 double dt, Rng& rng, RateLoads& out) const {
  DFV_CHECK(dt > 0.0);
  if (out.link_rate.size() != std::size_t(topo_->num_links())) out.resize(*topo_);
  for (const Demand& d : demands) {
    if (d.bytes <= 0.0 || d.src == d.dst) {
      if (d.src == d.dst && d.bytes > 0.0) {
        // Same-router traffic only touches the processor tiles.
        out.inject_rate[std::size_t(d.src)] += d.bytes / dt;
        out.eject_rate[std::size_t(d.dst)] += d.bytes / dt;
      }
      continue;
    }
    const int chunks = chunk_count(d.bytes, params_);
    const double chunk_rate = d.bytes / dt / double(chunks);
    for (int c = 0; c < chunks; ++c) {
      const Path p = chooser_.choose(d.src, d.dst, policy, out.link_rate, rng);
      for (LinkId id : p.links) out.link_rate[std::size_t(id)] += chunk_rate;
    }
    out.inject_rate[std::size_t(d.src)] += d.bytes / dt;
    out.eject_rate[std::size_t(d.dst)] += d.bytes / dt;
  }
}

TransferResult FlowModel::transfer(std::span<const Demand> messages, RoutingPolicy policy,
                                   const RateLoads& bg, Rng& rng, ByteLoads* ours) const {
  TransferResult result;
  if (messages.empty()) return result;

  const std::size_t L = std::size_t(topo_->num_links());
  const std::size_t R = std::size_t(topo_->config().num_routers());
  DFV_CHECK_MSG(bg.link_rate.size() == L, "background RateLoads not sized to topology");

  // Effective load seen by the adaptive path chooser: background plus our
  // own already-routed chunks (estimated as if transferred over ~100 ms).
  // A reused scratch buffer avoids reallocating ~1 MB per phase.
  scratch_rate_.assign(bg.link_rate.begin(), bg.link_rate.end());
  std::vector<double>& est_rate = scratch_rate_;
  constexpr double kSelfRateDt = 0.1;

  // Internal flow list; a message may be split into several chunk-flows.
  struct Flow {
    std::size_t msg = 0;
    double bytes = 0.0;
    std::vector<std::size_t> resources;  ///< link ids, then L+r (inject), L+R+r (eject)
    double rate = 0.0;
  };
  std::vector<Flow> flows;
  flows.reserve(messages.size());

  result.messages.resize(messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const Demand& d = messages[i];
    result.messages[i].demand = d;
    if (d.bytes <= 0.0) continue;
    const int chunks = d.src == d.dst ? 1 : chunk_count(d.bytes, params_);
    const double chunk_bytes = d.bytes / double(chunks);
    for (int c = 0; c < chunks; ++c) {
      Flow f;
      f.msg = i;
      f.bytes = chunk_bytes;
      if (d.src != d.dst) {
        Path p = chooser_.choose(d.src, d.dst, policy, est_rate, rng);
        for (LinkId id : p.links) {
          est_rate[std::size_t(id)] += chunk_bytes / kSelfRateDt;
          f.resources.push_back(std::size_t(id));
        }
        if (c == 0) result.messages[i].path = p;  // representative path
        if (ours != nullptr)
          for (LinkId id : p.links) ours->link_bytes[std::size_t(id)] += chunk_bytes;
      }
      f.resources.push_back(L + std::size_t(d.src));
      f.resources.push_back(L + R + std::size_t(d.dst));
      flows.push_back(std::move(f));
    }
    if (ours != nullptr) {
      ours->inject_bytes[std::size_t(d.src)] += d.bytes;
      ours->eject_bytes[std::size_t(d.dst)] += d.bytes;
    }
  }

  // Residual capacities after background traffic, floored so saturated
  // resources drain slowly instead of deadlocking the solve. Only the
  // resources actually touched by a flow participate.
  std::vector<std::size_t> used;
  used.reserve(flows.size() * 8);
  for (const Flow& f : flows) used.insert(used.end(), f.resources.begin(), f.resources.end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());

  std::vector<double> residual(L + 2 * R, 0.0);
  std::vector<int> nflows(L + 2 * R, 0);
  const double ep_bw = topo_->config().endpoint_bw;
  for (const Flow& f : flows)
    for (std::size_t r : f.resources) ++nflows[r];
  for (std::size_t e : used) {
    double cap, bg_rate;
    if (e < L) {
      cap = topo_->link(LinkId(e)).capacity;
      bg_rate = bg.link_rate[e];
    } else if (e < L + R) {
      cap = ep_bw;
      bg_rate = bg.inject_rate[e - L];
    } else {
      cap = ep_bw;
      bg_rate = bg.eject_rate[e - L - R];
    }
    residual[e] = std::max(cap * params_.capacity_headroom - bg_rate,
                           cap * params_.min_residual_frac);
  }

  // Progressive-filling max-min fairness. Rounds are capped: in practice a
  // phase has a handful of distinct bottlenecks; pathological inputs fall
  // back to a per-flow bottleneck approximation for the stragglers.
  std::vector<char> done(flows.size(), 0);
  std::size_t remaining = flows.size();
  constexpr int kMaxRounds = 256;
  for (int round = 0; round < kMaxRounds && remaining > 0; ++round) {
    // Find the bottleneck resource: min residual / flow-count.
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_e = 0;
    for (std::size_t e : used) {
      if (nflows[e] <= 0) continue;
      const double share = residual[e] / double(nflows[e]);
      if (share < best_share) {
        best_share = share;
        best_e = e;
      }
    }
    DFV_CHECK(std::isfinite(best_share));
    // Freeze every active flow crossing the bottleneck at the fair share.
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      if (done[fi]) continue;
      Flow& f = flows[fi];
      bool crosses = false;
      for (std::size_t r : f.resources)
        if (r == best_e) {
          crosses = true;
          break;
        }
      if (!crosses) continue;
      f.rate = best_share;
      done[fi] = 1;
      --remaining;
      for (std::size_t r : f.resources) {
        residual[r] -= best_share;
        --nflows[r];
      }
    }
  }
  if (remaining > 0) {
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      if (done[fi]) continue;
      Flow& f = flows[fi];
      double share = std::numeric_limits<double>::infinity();
      for (std::size_t r : f.resources)
        if (nflows[r] > 0) share = std::min(share, residual[r] / double(nflows[r]));
      f.rate = std::isfinite(share) ? std::max(share, 1.0) : 1.0;
    }
  }

  // Message completion time: max over its chunk flows.
  for (const Flow& f : flows) {
    RoutedMessage& m = result.messages[f.msg];
    const double latency =
        m.path.links.empty() ? 2.0e-7 : topo_->path_latency(m.path) + 2.0e-7;
    const double t = latency + f.bytes / std::max(f.rate, 1.0);
    m.time = std::max(m.time, t);
    m.rate = m.rate == 0.0 ? f.rate : std::min(m.rate, f.rate);
  }
  for (const RoutedMessage& m : result.messages)
    result.makespan = std::max(result.makespan, m.time);
  return result;
}

double FlowModel::congestion_factor(std::span<const RouterId> job_routers,
                                    const RateLoads& bg) const {
  if (job_routers.empty() || bg.link_rate.empty()) return 1.0;
  double util_sum = 0.0, stall_sum = 0.0, max_stall = 0.0;
  std::size_t n = 0;
  for (RouterId r : job_routers) {
    for (LinkId id : topo_->out_links(r)) {
      const LinkInfo& li = topo_->link(id);
      const double u = bg.link_rate[std::size_t(id)] / li.capacity;
      const double sf = stall_fraction(u);
      util_sum += std::min(u, 1.5);
      stall_sum += sf;
      max_stall = std::max(max_stall, sf);
      ++n;
    }
  }
  if (n == 0) return 1.0;
  const double mean_util = util_sum / double(n);
  const double mean_stall = stall_sum / double(n);
  // Mean terms capture diffuse congestion; the max term captures one hot
  // link on the job's routers (adaptive routing dilutes but does not hide
  // it, §II-A).
  return 1.0 + 1.0 * mean_util + 2.0 * mean_stall + 0.08 * max_stall;
}

}  // namespace dfv::net
