#include "net/flow_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "common/check.hpp"
#include "exec/exec.hpp"

namespace dfv::net {

double stall_fraction(double utilization) noexcept {
  // Queueing-style growth: negligible below ~40% utilization, steep near
  // saturation. The value is "stall cycles per cycle" aggregated over the
  // VCs of a tile, so it may exceed 1; clamp to keep counters finite when
  // demand far exceeds capacity.
  const double u = std::min(utilization, 1.2);
  const double s = std::max(0.0, u - 0.15);
  return std::min(6.0, s * s / std::max(0.05, 1.02 - u));
}

FlowModel::FlowModel(const Topology& topo, FlowModelParams params)
    : topo_(&topo), params_(params), chooser_(topo, params.routing) {
  DFV_CHECK(params_.capacity_headroom > 0.0 && params_.capacity_headroom <= 1.0);
  DFV_CHECK(params_.min_residual_frac > 0.0 && params_.min_residual_frac < 1.0);
  DFV_CHECK(params_.max_chunks >= 1);
}

namespace {

int chunk_count(double bytes, const FlowModelParams& p) {
  if (bytes <= p.chunk_bytes) return 1;
  const double n = std::ceil(bytes / p.chunk_bytes);
  return int(std::min<double>(n, p.max_chunks));
}

/// Demands per routing wave. Within a wave, paths are chosen in parallel
/// against a frozen load snapshot; the snapshot is refreshed between waves
/// so adaptive routing still reacts to earlier demands. The wave structure
/// (and hence every result) depends only on the input order, never on the
/// thread count.
constexpr std::size_t kRoutingWave = 64;

}  // namespace

void FlowModel::route_background(std::span<const Demand> demands, RoutingPolicy policy,
                                 double dt, Rng& rng, RateLoads& out) const {
  DFV_CHECK(dt > 0.0);
  if (out.link_rate.size() != std::size_t(topo_->num_links())) out.resize(*topo_);
  if (demands.empty()) return;

  // One draw from the caller's stream; each demand routes from its own
  // substream so wave-parallel execution consumes exactly the same random
  // sequence per demand regardless of scheduling.
  const std::uint64_t seed = rng();

  std::vector<std::vector<Path>> wave_paths(std::min(kRoutingWave, demands.size()));
  for (std::size_t wave_lo = 0; wave_lo < demands.size(); wave_lo += kRoutingWave) {
    const std::size_t wave_hi = std::min(wave_lo + kRoutingWave, demands.size());
    exec::parallel_for(wave_lo, wave_hi, 8, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        auto& slot = wave_paths[i - wave_lo];
        slot.clear();
        const Demand& d = demands[i];
        if (d.bytes <= 0.0 || d.src == d.dst) continue;
        Rng dr(exec::substream_seed(seed, i));
        const int chunks = chunk_count(d.bytes, params_);
        for (int c = 0; c < chunks; ++c)
          slot.push_back(chooser_.choose(d.src, d.dst, policy, out.link_rate, dr));
      }
    });
    // Apply in demand order so accumulation is independent of scheduling.
    for (std::size_t i = wave_lo; i < wave_hi; ++i) {
      const Demand& d = demands[i];
      if (d.bytes <= 0.0 || d.src == d.dst) {
        if (d.src == d.dst && d.bytes > 0.0) {
          // Same-router traffic only touches the processor tiles.
          out.inject_rate[std::size_t(d.src)] += d.bytes / dt;
          out.eject_rate[std::size_t(d.dst)] += d.bytes / dt;
        }
        continue;
      }
      const auto& slot = wave_paths[i - wave_lo];
      const double chunk_rate = d.bytes / dt / double(slot.size());
      for (const Path& p : slot)
        for (LinkId id : p.links) out.link_rate[std::size_t(id)] += chunk_rate;
      out.inject_rate[std::size_t(d.src)] += d.bytes / dt;
      out.eject_rate[std::size_t(d.dst)] += d.bytes / dt;
    }
  }
}

TransferResult FlowModel::transfer(std::span<const Demand> messages, RoutingPolicy policy,
                                   const RateLoads& bg, Rng& rng, ByteLoads* ours) const {
  TransferResult result;
  if (messages.empty()) return result;

  const std::size_t L = std::size_t(topo_->num_links());
  const std::size_t R = std::size_t(topo_->config().num_routers());
  DFV_CHECK_MSG(bg.link_rate.size() == L, "background RateLoads not sized to topology");

  // Effective load seen by the adaptive path chooser: background plus our
  // own already-routed chunks (estimated as if transferred over ~100 ms).
  // A reused scratch buffer avoids reallocating ~1 MB per phase.
  scratch_rate_.assign(bg.link_rate.begin(), bg.link_rate.end());
  std::vector<double>& est_rate = scratch_rate_;
  constexpr double kSelfRateDt = 0.1;

  // Internal flow list; a message may be split into several chunk-flows.
  struct Flow {
    std::size_t msg = 0;
    double bytes = 0.0;
    std::vector<std::size_t> resources;  ///< link ids, then L+r (inject), L+R+r (eject)
    double rate = 0.0;
  };
  std::vector<Flow> flows;
  flows.reserve(messages.size());

  // Skeleton pass: fix the flow decomposition (message -> chunk-flows)
  // before any routing so both the wave structure and the per-message RNG
  // substreams are functions of the input alone.
  result.messages.resize(messages.size());
  std::vector<std::pair<std::size_t, std::size_t>> msg_flows(messages.size(), {0, 0});
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const Demand& d = messages[i];
    result.messages[i].demand = d;
    if (d.bytes <= 0.0) continue;
    const int chunks = d.src == d.dst ? 1 : chunk_count(d.bytes, params_);
    const double chunk_bytes = d.bytes / double(chunks);
    msg_flows[i].first = flows.size();
    for (int c = 0; c < chunks; ++c) {
      Flow f;
      f.msg = i;
      f.bytes = chunk_bytes;
      flows.push_back(std::move(f));
    }
    msg_flows[i].second = flows.size();
    if (ours != nullptr) {
      ours->inject_bytes[std::size_t(d.src)] += d.bytes;
      ours->eject_bytes[std::size_t(d.dst)] += d.bytes;
    }
  }

  // Wave-parallel routing. One draw seeds per-message substreams; each
  // message routes its chunks sequentially from its own stream against the
  // load snapshot frozen at the wave boundary, so results are bit-identical
  // for any thread count. Self-load (est_rate) and byte accounting are
  // applied serially in message order between waves.
  const std::uint64_t phase_seed = rng();
  for (std::size_t wave_lo = 0; wave_lo < messages.size(); wave_lo += kRoutingWave) {
    const std::size_t wave_hi = std::min(wave_lo + kRoutingWave, messages.size());
    exec::parallel_for(wave_lo, wave_hi, 8, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const Demand& d = messages[i];
        if (d.bytes <= 0.0 || d.src == d.dst) continue;
        Rng mr(exec::substream_seed(phase_seed, i));
        for (std::size_t fi = msg_flows[i].first; fi < msg_flows[i].second; ++fi) {
          Path p = chooser_.choose(d.src, d.dst, policy, est_rate, mr);
          Flow& f = flows[fi];
          f.resources.reserve(p.links.size() + 2);
          for (LinkId id : p.links) f.resources.push_back(std::size_t(id));
          if (fi == msg_flows[i].first) result.messages[i].path = std::move(p);
        }
      }
    });
    for (std::size_t i = wave_lo; i < wave_hi; ++i) {
      const Demand& d = messages[i];
      if (d.bytes <= 0.0) continue;
      for (std::size_t fi = msg_flows[i].first; fi < msg_flows[i].second; ++fi) {
        Flow& f = flows[fi];
        for (std::size_t r : f.resources) {
          est_rate[r] += f.bytes / kSelfRateDt;
          if (ours != nullptr) ours->link_bytes[r] += f.bytes;
        }
        f.resources.push_back(L + std::size_t(d.src));
        f.resources.push_back(L + R + std::size_t(d.dst));
      }
    }
  }

  // Dense-index the touched resources in first-touch (flow) order via an
  // epoch-stamped lookup table: no O(refs log refs) sort, no O(L+2R) clear
  // per call. `refs` flattens each flow's resources as dense ids.
  if (res_stamp_.size() != L + 2 * R) {
    res_stamp_.assign(L + 2 * R, 0);
    res_dense_.assign(L + 2 * R, 0);
    res_epoch_ = 0;
  }
  if (++res_epoch_ == 0) {  // epoch wrapped: invalidate all stamps
    std::fill(res_stamp_.begin(), res_stamp_.end(), 0u);
    res_epoch_ = 1;
  }
  std::vector<std::size_t> used;  // dense id -> raw resource id
  std::vector<std::uint32_t> refs;
  std::vector<std::uint32_t> flow_off(flows.size() + 1, 0);
  refs.reserve(flows.size() * 8);
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    flow_off[fi] = std::uint32_t(refs.size());
    for (std::size_t r : flows[fi].resources) {
      if (res_stamp_[r] != res_epoch_) {
        res_stamp_[r] = res_epoch_;
        res_dense_[r] = std::uint32_t(used.size());
        used.push_back(r);
      }
      refs.push_back(res_dense_[r]);
    }
  }
  flow_off[flows.size()] = std::uint32_t(refs.size());
  const std::size_t U = used.size();

  // Residual capacities after background traffic, floored so saturated
  // resources drain slowly instead of deadlocking the solve.
  std::vector<double> residual(U, 0.0);
  std::vector<int> nflows(U, 0);
  const double ep_bw = topo_->config().endpoint_bw;
  for (std::uint32_t id : refs) ++nflows[id];
  for (std::size_t u = 0; u < U; ++u) {
    const std::size_t e = used[u];
    double cap, bg_rate;
    if (e < L) {
      cap = topo_->link(LinkId(e)).capacity;
      bg_rate = bg.link_rate[e];
    } else if (e < L + R) {
      cap = ep_bw;
      bg_rate = bg.inject_rate[e - L];
    } else {
      cap = ep_bw;
      bg_rate = bg.eject_rate[e - L - R];
    }
    residual[u] = std::max(cap * params_.capacity_headroom - bg_rate,
                           cap * params_.min_residual_frac);
  }

  // Inverted adjacency (resource -> flows crossing it) by counting sort;
  // per-resource flow lists come out in ascending flow order.
  std::vector<std::uint32_t> radj_off(U + 1, 0);
  for (std::uint32_t id : refs) ++radj_off[id + 1];
  for (std::size_t u = 0; u < U; ++u) radj_off[u + 1] += radj_off[u];
  std::vector<std::uint32_t> radj_items(refs.size());
  {
    std::vector<std::uint32_t> cursor(radj_off.begin(), radj_off.end() - 1);
    for (std::size_t fi = 0; fi < flows.size(); ++fi)
      for (std::uint32_t k = flow_off[fi]; k < flow_off[fi + 1]; ++k)
        radj_items[cursor[refs[k]]++] = std::uint32_t(fi);
  }

  // Progressive-filling max-min fairness with a lazy min-heap over
  // (residual/nflows, resource). Water-filling shares are non-decreasing,
  // so a popped entry is either current (freeze its flows) or stale
  // (re-push the recomputed share). The pop cap guards pathological
  // inputs; stragglers fall back to a per-flow bottleneck approximation.
  std::vector<char> done(flows.size(), 0);
  std::size_t remaining = flows.size();
  using HeapEntry = std::pair<double, std::uint32_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap;
  for (std::size_t u = 0; u < U; ++u)
    if (nflows[u] > 0) heap.push({residual[u] / double(nflows[u]), std::uint32_t(u)});
  std::size_t pops = 0;
  const std::size_t pop_cap = 64 * U + refs.size() + 1024;
  while (remaining > 0 && !heap.empty() && pops++ < pop_cap) {
    const auto [share, u] = heap.top();
    heap.pop();
    if (nflows[u] <= 0) continue;
    const double cur = residual[u] / double(nflows[u]);
    if (cur != share) {
      heap.push({cur, u});
      continue;
    }
    DFV_CHECK(std::isfinite(share));
    for (std::uint32_t k = radj_off[u]; k < radj_off[u + 1]; ++k) {
      const std::uint32_t fi = radj_items[k];
      if (done[fi]) continue;
      flows[fi].rate = share;
      done[fi] = 1;
      --remaining;
      for (std::uint32_t kk = flow_off[fi]; kk < flow_off[fi + 1]; ++kk) {
        residual[refs[kk]] -= share;
        --nflows[refs[kk]];
      }
    }
  }
  if (remaining > 0) {
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      if (done[fi]) continue;
      double share = std::numeric_limits<double>::infinity();
      for (std::uint32_t k = flow_off[fi]; k < flow_off[fi + 1]; ++k) {
        const std::uint32_t u = refs[k];
        if (nflows[u] > 0) share = std::min(share, residual[u] / double(nflows[u]));
      }
      flows[fi].rate = std::isfinite(share) ? std::max(share, 1.0) : 1.0;
    }
  }

  // Message completion time: max over its chunk flows.
  for (const Flow& f : flows) {
    RoutedMessage& m = result.messages[f.msg];
    const double latency =
        m.path.links.empty() ? 2.0e-7 : topo_->path_latency(m.path) + 2.0e-7;
    const double t = latency + f.bytes / std::max(f.rate, 1.0);
    m.time = std::max(m.time, t);
    m.rate = m.rate == 0.0 ? f.rate : std::min(m.rate, f.rate);
  }
  for (const RoutedMessage& m : result.messages)
    result.makespan = std::max(result.makespan, m.time);
  return result;
}

double FlowModel::congestion_factor(std::span<const RouterId> job_routers,
                                    const RateLoads& bg) const {
  if (job_routers.empty() || bg.link_rate.empty()) return 1.0;
  double util_sum = 0.0, stall_sum = 0.0, max_stall = 0.0;
  std::size_t n = 0;
  for (RouterId r : job_routers) {
    for (LinkId id : topo_->out_links(r)) {
      const LinkInfo& li = topo_->link(id);
      const double u = bg.link_rate[std::size_t(id)] / li.capacity;
      const double sf = stall_fraction(u);
      util_sum += std::min(u, 1.5);
      stall_sum += sf;
      max_stall = std::max(max_stall, sf);
      ++n;
    }
  }
  if (n == 0) return 1.0;
  const double mean_util = util_sum / double(n);
  const double mean_stall = stall_sum / double(n);
  // Mean terms capture diffuse congestion; the max term captures one hot
  // link on the job's routers (adaptive routing dilutes but does not hide
  // it, §II-A).
  return 1.0 + 1.0 * mean_util + 2.0 * mean_stall + 0.08 * max_stall;
}

}  // namespace dfv::net
