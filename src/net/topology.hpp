// Dragonfly topology: flat router/link indexing, coordinate math,
// global-link (blue) assignment, and path construction.
//
// Link model: every physical cable is represented as two *directed*
// links with independent capacity, which is how credit-based flow
// control behaves and what the per-tile Aries counters observe.
#pragma once

#include <string>
#include <vector>

#include "net/config.hpp"

namespace dfv::net {

/// Link color/class as in the Cray XC dragonfly (Fig. 2 of the paper).
enum class LinkType : std::uint8_t { Green, Black, Blue };

[[nodiscard]] const char* to_string(LinkType t) noexcept;

/// Endpoint/metadata record for one directed link.
struct LinkInfo {
  RouterId from = kInvalidRouter;
  RouterId to = kInvalidRouter;
  LinkType type = LinkType::Green;
  double capacity = 0.0;  ///< bytes/second, one direction
  double latency = 0.0;   ///< seconds
};

/// A route through the network: the ordered list of directed links.
/// An empty path means source and destination routers coincide.
struct Path {
  std::vector<LinkId> links;

  [[nodiscard]] std::size_t hops() const noexcept { return links.size(); }
};

/// Intra-group 2-hop ordering choice (row-then-column or column-then-row).
enum class IntraOrder : std::uint8_t { RowFirst, ColFirst };

/// Immutable dragonfly topology built from a DragonflyConfig.
class Topology {
 public:
  explicit Topology(const DragonflyConfig& cfg);

  [[nodiscard]] const DragonflyConfig& config() const noexcept { return cfg_; }

  // ---- Coordinate math -------------------------------------------------
  [[nodiscard]] GroupId group_of(RouterId r) const noexcept {
    return r / cfg_.routers_per_group();
  }
  [[nodiscard]] int local_index(RouterId r) const noexcept {
    return r % cfg_.routers_per_group();
  }
  [[nodiscard]] int row_of(RouterId r) const noexcept {
    return local_index(r) / cfg_.row_size;
  }
  [[nodiscard]] int col_of(RouterId r) const noexcept {
    return local_index(r) % cfg_.row_size;
  }
  [[nodiscard]] RouterId router_at(GroupId g, int row, int col) const noexcept {
    return RouterId(g * cfg_.routers_per_group() + row * cfg_.row_size + col);
  }
  [[nodiscard]] RouterId router_of_node(NodeId n) const noexcept {
    return RouterId(n / cfg_.nodes_per_router);
  }
  [[nodiscard]] NodeId first_node_of(RouterId r) const noexcept {
    return NodeId(r * cfg_.nodes_per_router);
  }

  // ---- Link identifiers ------------------------------------------------
  [[nodiscard]] int num_links() const noexcept { return int(links_.size()); }
  [[nodiscard]] const LinkInfo& link(LinkId id) const { return links_[std::size_t(id)]; }
  [[nodiscard]] const std::vector<LinkInfo>& links() const noexcept { return links_; }

  /// Directed green link within group g, row `row`, from column c1 to c2 (c1 != c2).
  [[nodiscard]] LinkId green_link(GroupId g, int row, int c1, int c2) const;
  /// Directed black link within group g, column `col`, from row r1 to r2 (r1 != r2).
  [[nodiscard]] LinkId black_link(GroupId g, int col, int r1, int r2) const;
  /// Directed blue link from group a to group b, parallel copy k.
  [[nodiscard]] LinkId blue_link(GroupId a, GroupId b, int k) const;

  /// Router inside group `g` that terminates copy `k` of the blue bundle
  /// toward peer group `peer` (the "gateway" for that copy).
  [[nodiscard]] RouterId gateway(GroupId g, GroupId peer, int k) const;

  /// Number of parallel blue links between any two groups.
  [[nodiscard]] int blue_copies() const noexcept { return blue_copies_; }

  /// Out-links of a router (used by the packet-level DES).
  [[nodiscard]] const std::vector<LinkId>& out_links(RouterId r) const {
    return out_links_[std::size_t(r)];
  }
  /// In-links of a router (used for per-router counter accounting).
  [[nodiscard]] const std::vector<LinkId>& in_links(RouterId r) const {
    return in_links_[std::size_t(r)];
  }

  // ---- Path construction ------------------------------------------------
  /// Minimal intra-group path (0, 1, or 2 hops) appended to `path`.
  void append_intra_path(GroupId g, int from_idx, int to_idx, IntraOrder order,
                         Path& path) const;

  /// Minimal path from src to dst using blue copy `k` and the given
  /// intra-group orders in the source and destination groups.
  [[nodiscard]] Path minimal_path(RouterId src, RouterId dst, int k,
                                  IntraOrder src_order = IntraOrder::RowFirst,
                                  IntraOrder dst_order = IntraOrder::RowFirst) const;

  /// Valiant (non-minimal) path: minimal to a router in `via_group`, then
  /// minimal to the destination. `via_group` must differ from both endpoints'
  /// groups; `k1`/`k2` pick the blue copies of the two legs.
  [[nodiscard]] Path valiant_path(RouterId src, RouterId dst, GroupId via_group, int k1,
                                  int k2, IntraOrder order = IntraOrder::RowFirst) const;

  /// Total path latency (sum of per-link latencies).
  [[nodiscard]] double path_latency(const Path& p) const;

  /// Validity check used by property tests: consecutive links connect, the
  /// path starts at src and ends at dst.
  [[nodiscard]] bool path_connects(const Path& p, RouterId src, RouterId dst) const;

  /// Human-readable summary (bench/fig02_topology).
  [[nodiscard]] std::string describe() const;

 private:
  void build_links();

  DragonflyConfig cfg_;
  int blue_copies_ = 0;
  int green_base_ = 0;  ///< LinkId offsets for each class
  int black_base_ = 0;
  int blue_base_ = 0;
  std::vector<LinkInfo> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::vector<std::vector<LinkId>> in_links_;
};

}  // namespace dfv::net
