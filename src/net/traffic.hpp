// Traffic demands and load containers shared by the flow-level model,
// the packet-level DES, and the monitoring layer.
#pragma once

#include <vector>

#include "net/config.hpp"
#include "net/topology.hpp"

namespace dfv::net {

/// One router-to-router transfer demand.
struct Demand {
  RouterId src = kInvalidRouter;
  RouterId dst = kInvalidRouter;
  double bytes = 0.0;
};

/// Sustained traffic rates (bytes/second) over directed links and router
/// endpoints. Used for *background* load that persists across many steps.
struct RateLoads {
  std::vector<double> link_rate;    ///< per directed link
  std::vector<double> inject_rate;  ///< per router, NIC -> router
  std::vector<double> eject_rate;   ///< per router, router -> NIC

  void resize(const Topology& topo) {
    link_rate.assign(std::size_t(topo.num_links()), 0.0);
    inject_rate.assign(std::size_t(topo.config().num_routers()), 0.0);
    eject_rate.assign(std::size_t(topo.config().num_routers()), 0.0);
  }
  void clear() {
    link_rate.assign(link_rate.size(), 0.0);
    inject_rate.assign(inject_rate.size(), 0.0);
    eject_rate.assign(eject_rate.size(), 0.0);
  }
  void add_scaled(const RateLoads& other, double f) {
    for (std::size_t i = 0; i < link_rate.size(); ++i) link_rate[i] += f * other.link_rate[i];
    for (std::size_t i = 0; i < inject_rate.size(); ++i) {
      inject_rate[i] += f * other.inject_rate[i];
      eject_rate[i] += f * other.eject_rate[i];
    }
  }
};

/// Byte totals accumulated over one application step (instantaneous
/// transfers, converted to utilizations with the step duration).
struct ByteLoads {
  std::vector<double> link_bytes;
  std::vector<double> inject_bytes;
  std::vector<double> eject_bytes;

  void resize(const Topology& topo) {
    link_bytes.assign(std::size_t(topo.num_links()), 0.0);
    inject_bytes.assign(std::size_t(topo.config().num_routers()), 0.0);
    eject_bytes.assign(std::size_t(topo.config().num_routers()), 0.0);
  }
  void clear() {
    link_bytes.assign(link_bytes.size(), 0.0);
    inject_bytes.assign(inject_bytes.size(), 0.0);
    eject_bytes.assign(eject_bytes.size(), 0.0);
  }
};

}  // namespace dfv::net
