// Flow-level congestion model.
//
// This is the fast network engine used for campaign generation: instead
// of simulating every flit, it (a) routes each demand along a policy-
// chosen path, (b) computes max-min fair bandwidth shares for the
// instrumented job's messages given the residual capacity left by
// background traffic, and (c) reports per-link byte totals from which
// the monitoring layer derives Aries-style counters. The packet-level
// DES in packet_sim.hpp validates its qualitative behavior.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "net/routing.hpp"
#include "net/traffic.hpp"

namespace dfv::net {

/// One message of the instrumented job after routing and rate solving.
struct RoutedMessage {
  Demand demand;
  Path path;
  double rate = 0.0;  ///< max-min fair bandwidth share [bytes/s]
  double time = 0.0;  ///< completion time = latency + bytes / rate [s]
};

/// Result of transferring a set of messages in one communication phase.
struct TransferResult {
  std::vector<RoutedMessage> messages;
  double makespan = 0.0;  ///< max completion time over all messages
};

struct FlowModelParams {
  RoutingParams routing;
  /// Fraction of nominal capacity available to payload (protocol overhead).
  double capacity_headroom = 0.95;
  /// Floor on residual capacity as a fraction of nominal capacity: even a
  /// saturated link drains slowly rather than stalling forever.
  double min_residual_frac = 0.04;
  /// Messages larger than this are split into up to `max_chunks` chunks
  /// routed independently (adaptive routing sprays large transfers).
  double chunk_bytes = 1.0e6;
  int max_chunks = 4;
};

/// Utilization -> stall-cycles-per-cycle shape: queueing-style growth that
/// stays near zero below ~60% utilization and explodes as u -> 1.
/// Exposed so the monitoring layer and tests share one definition.
[[nodiscard]] double stall_fraction(double utilization) noexcept;

class FlowModel {
 public:
  explicit FlowModel(const Topology& topo, FlowModelParams params = {});

  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }
  [[nodiscard]] const FlowModelParams& params() const noexcept { return params_; }

  /// Route sustained background demands (bytes over an interval of `dt`
  /// seconds) and accumulate the resulting rates into `out`.
  void route_background(std::span<const Demand> demands, RoutingPolicy policy, double dt,
                        Rng& rng, RateLoads& out) const;

  /// Route and rate-solve one communication phase of the instrumented job
  /// against background load `bg`. If `ours` is non-null, the job's own
  /// byte totals are accumulated there (for counter accounting).
  [[nodiscard]] TransferResult transfer(std::span<const Demand> messages,
                                        RoutingPolicy policy, const RateLoads& bg,
                                        Rng& rng, ByteLoads* ours = nullptr) const;

  /// Scalar congestion multiplier (>= 1) summarizing how loaded the links
  /// around `job_routers` are; used for collective (allreduce/barrier)
  /// latency scaling where per-message routing would be overkill.
  [[nodiscard]] double congestion_factor(std::span<const RouterId> job_routers,
                                         const RateLoads& bg) const;

 private:
  const Topology* topo_;
  FlowModelParams params_;
  PathChooser chooser_;
  /// Scratch buffers reused across transfer() calls (link rates plus the
  /// epoch-stamped resource->dense-index table of the max-min solve).
  /// FlowModel is therefore not safe for concurrent transfer() calls on
  /// one instance; transfer() itself parallelizes internally via dfv::exec.
  mutable std::vector<double> scratch_rate_;
  mutable std::vector<std::uint32_t> res_stamp_;
  mutable std::vector<std::uint32_t> res_dense_;
  mutable std::uint32_t res_epoch_ = 0;
};

}  // namespace dfv::net
