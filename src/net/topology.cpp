#include "net/topology.hpp"

#include <sstream>

#include "common/check.hpp"

namespace dfv::net {

const char* to_string(LinkType t) noexcept {
  switch (t) {
    case LinkType::Green: return "green";
    case LinkType::Black: return "black";
    case LinkType::Blue: return "blue";
  }
  return "?";
}

void DragonflyConfig::validate() const {
  DFV_CHECK_MSG(groups >= 1, "dragonfly needs at least one group");
  DFV_CHECK_MSG(row_size >= 2 && col_size >= 2, "group grid must be at least 2x2");
  DFV_CHECK_MSG(nodes_per_router >= 1, "each router needs at least one node");
  DFV_CHECK_MSG(groups == 1 || links_per_group_pair() >= 1,
                "not enough global ports to connect every group pair: "
                    << routers_per_group() * global_ports_per_router << " endpoints for "
                    << groups - 1 << " peers");
  DFV_CHECK(green_bw > 0 && black_bw > 0 && blue_bw > 0 && endpoint_bw > 0);
  DFV_CHECK(flit_bytes > 0 && clock_hz > 0);
}

Topology::Topology(const DragonflyConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  blue_copies_ = cfg_.links_per_group_pair();
  build_links();
}

void Topology::build_links() {
  const int G = cfg_.groups;
  const int R = cfg_.row_size;
  const int C = cfg_.col_size;
  const int rpg = cfg_.routers_per_group();

  const int green_per_group = C * R * (R - 1);
  const int black_per_group = R * C * (C - 1);
  green_base_ = 0;
  black_base_ = green_per_group * G;
  blue_base_ = black_base_ + black_per_group * G;
  const int blue_count = G * (G - 1) * blue_copies_;

  links_.resize(std::size_t(blue_base_ + blue_count));
  out_links_.assign(std::size_t(cfg_.num_routers()), {});
  in_links_.assign(std::size_t(cfg_.num_routers()), {});

  for (GroupId g = 0; g < G; ++g) {
    for (int row = 0; row < C; ++row)
      for (int c1 = 0; c1 < R; ++c1)
        for (int c2 = 0; c2 < R; ++c2) {
          if (c1 == c2) continue;
          const LinkId id = green_link(g, row, c1, c2);
          LinkInfo& li = links_[std::size_t(id)];
          li.from = router_at(g, row, c1);
          li.to = router_at(g, row, c2);
          li.type = LinkType::Green;
          li.capacity = cfg_.green_bw;
          li.latency = cfg_.hop_latency;
          out_links_[std::size_t(li.from)].push_back(id);
        }
    for (int col = 0; col < R; ++col)
      for (int r1 = 0; r1 < C; ++r1)
        for (int r2 = 0; r2 < C; ++r2) {
          if (r1 == r2) continue;
          const LinkId id = black_link(g, col, r1, r2);
          LinkInfo& li = links_[std::size_t(id)];
          li.from = router_at(g, r1, col);
          li.to = router_at(g, r2, col);
          li.type = LinkType::Black;
          li.capacity = cfg_.black_bw;
          li.latency = cfg_.hop_latency;
          out_links_[std::size_t(li.from)].push_back(id);
        }
  }

  for (GroupId a = 0; a < G; ++a)
    for (GroupId b = 0; b < G; ++b) {
      if (a == b) continue;
      for (int k = 0; k < blue_copies_; ++k) {
        const LinkId id = blue_link(a, b, k);
        LinkInfo& li = links_[std::size_t(id)];
        li.from = gateway(a, b, k);
        li.to = gateway(b, a, k);
        li.type = LinkType::Blue;
        li.capacity = cfg_.blue_bw;
        li.latency = cfg_.global_latency;
        out_links_[std::size_t(li.from)].push_back(id);
      }
    }

  for (LinkId id = 0; id < LinkId(links_.size()); ++id)
    in_links_[std::size_t(links_[std::size_t(id)].to)].push_back(id);
  (void)rpg;
}

LinkId Topology::green_link(GroupId g, int row, int c1, int c2) const {
  DFV_CHECK(c1 != c2);
  const int R = cfg_.row_size;
  const int per_group = cfg_.col_size * R * (R - 1);
  const int within = row * R * (R - 1) + c1 * (R - 1) + (c2 < c1 ? c2 : c2 - 1);
  return LinkId(green_base_ + g * per_group + within);
}

LinkId Topology::black_link(GroupId g, int col, int r1, int r2) const {
  DFV_CHECK(r1 != r2);
  const int C = cfg_.col_size;
  const int per_group = cfg_.row_size * C * (C - 1);
  const int within = col * C * (C - 1) + r1 * (C - 1) + (r2 < r1 ? r2 : r2 - 1);
  return LinkId(black_base_ + g * per_group + within);
}

LinkId Topology::blue_link(GroupId a, GroupId b, int k) const {
  DFV_CHECK(a != b);
  DFV_CHECK(k >= 0 && k < blue_copies_);
  const int pair_rank = a * (cfg_.groups - 1) + (b < a ? b : b - 1);
  return LinkId(blue_base_ + pair_rank * blue_copies_ + k);
}

RouterId Topology::gateway(GroupId g, GroupId peer, int k) const {
  DFV_CHECK(g != peer);
  DFV_CHECK(k >= 0 && k < blue_copies_);
  // Round-robin the (peer, copy) endpoints over the group's routers; with
  // K = floor(rpg * ports / (G-1)) this never exceeds the per-router port
  // budget and spreads gateways across rows and columns.
  const int peer_rank = peer < g ? peer : peer - 1;
  const int idx = peer_rank * blue_copies_ + k;
  return RouterId(g * cfg_.routers_per_group() + idx % cfg_.routers_per_group());
}

void Topology::append_intra_path(GroupId g, int from_idx, int to_idx, IntraOrder order,
                                 Path& path) const {
  if (from_idx == to_idx) return;
  const int R = cfg_.row_size;
  const int fr = from_idx / R, fc = from_idx % R;
  const int tr = to_idx / R, tc = to_idx % R;
  if (fr == tr) {
    path.links.push_back(green_link(g, fr, fc, tc));
    return;
  }
  if (fc == tc) {
    path.links.push_back(black_link(g, fc, fr, tr));
    return;
  }
  if (order == IntraOrder::RowFirst) {
    path.links.push_back(green_link(g, fr, fc, tc));
    path.links.push_back(black_link(g, tc, fr, tr));
  } else {
    path.links.push_back(black_link(g, fc, fr, tr));
    path.links.push_back(green_link(g, tr, fc, tc));
  }
}

Path Topology::minimal_path(RouterId src, RouterId dst, int k, IntraOrder src_order,
                            IntraOrder dst_order) const {
  Path p;
  if (src == dst) return p;
  const GroupId ga = group_of(src), gb = group_of(dst);
  if (ga == gb) {
    append_intra_path(ga, local_index(src), local_index(dst), src_order, p);
    return p;
  }
  const RouterId gwa = gateway(ga, gb, k);
  const RouterId gwb = gateway(gb, ga, k);
  append_intra_path(ga, local_index(src), local_index(gwa), src_order, p);
  p.links.push_back(blue_link(ga, gb, k));
  append_intra_path(gb, local_index(gwb), local_index(dst), dst_order, p);
  return p;
}

Path Topology::valiant_path(RouterId src, RouterId dst, GroupId via_group, int k1, int k2,
                            IntraOrder order) const {
  const GroupId ga = group_of(src), gb = group_of(dst);
  DFV_CHECK_MSG(via_group != ga && via_group != gb,
                "valiant intermediate group must differ from endpoint groups");
  Path p;
  // Leg 1: minimal to the intermediate group's gateway router.
  const RouterId gwa = gateway(ga, via_group, k1);
  append_intra_path(ga, local_index(src), local_index(gwa), order, p);
  p.links.push_back(blue_link(ga, via_group, k1));
  const RouterId mid = gateway(via_group, ga, k1);
  // Leg 2: minimal from the intermediate router to the destination.
  const RouterId gwv = gateway(via_group, gb, k2);
  append_intra_path(via_group, local_index(mid), local_index(gwv), order, p);
  p.links.push_back(blue_link(via_group, gb, k2));
  const RouterId gwb = gateway(gb, via_group, k2);
  append_intra_path(gb, local_index(gwb), local_index(dst), order, p);
  return p;
}

double Topology::path_latency(const Path& p) const {
  double t = 0.0;
  for (LinkId id : p.links) t += link(id).latency;
  return t;
}

bool Topology::path_connects(const Path& p, RouterId src, RouterId dst) const {
  RouterId cur = src;
  for (LinkId id : p.links) {
    if (id < 0 || id >= num_links()) return false;
    const LinkInfo& li = link(id);
    if (li.from != cur) return false;
    cur = li.to;
  }
  return cur == dst;
}

std::string Topology::describe() const {
  std::ostringstream os;
  int green = 0, black = 0, blue = 0;
  for (const auto& li : links_) {
    switch (li.type) {
      case LinkType::Green: ++green; break;
      case LinkType::Black: ++black; break;
      case LinkType::Blue: ++blue; break;
    }
  }
  os << "dragonfly: " << cfg_.groups << " groups of " << cfg_.col_size << "x"
     << cfg_.row_size << " routers (" << cfg_.num_routers() << " routers, "
     << cfg_.num_nodes() << " nodes)\n"
     << "  directed links: " << green << " green (row all-to-all), " << black
     << " black (column all-to-all), " << blue << " blue (" << blue_copies_
     << " copies per group pair)\n"
     << "  per-router ports: " << cfg_.row_size - 1 << " green, " << cfg_.col_size - 1
     << " black, <=" << cfg_.global_ports_per_router << " blue, "
     << cfg_.nodes_per_router << " nodes\n"
     << "  minimal diameter: <=5 router hops (2 intra + blue + 2 intra)\n";
  return os.str();
}

}  // namespace dfv::net
