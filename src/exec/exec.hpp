// dfv::exec — deterministic parallel execution engine.
//
// A small, dependency-free work-stealing thread pool plus data-parallel
// helpers (`parallel_for`, `parallel_map`, `parallel_reduce`) designed so
// that every parallel result is **bit-identical** to the serial run
// regardless of thread count:
//
//  * Work is split into chunks by an explicit `grain` that never depends
//    on the pool size. Each chunk computes into its own output slot, and
//    reductions combine per-chunk partials serially in chunk order, so
//    floating-point summation order is a function of (range, grain) only.
//  * Randomized chunks draw from SplitMix-derived RNG substreams keyed by
//    element index (`substream_seed`), never from a shared generator, so
//    the consumed random sequence is independent of execution order.
//
// Thread-count precedence: `--threads` flag (via `configure_threads`) >
// `DFV_THREADS` environment variable > `std::thread::hardware_concurrency`.
//
// Nested parallel calls are safe: a parallel region entered from inside a
// worker (or from a caller already inside a region) executes its chunks
// inline on the calling thread, which keeps determinism trivially intact.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace dfv::exec {

/// Resolve a thread count: `flag` (>0) wins, then DFV_THREADS, then the
/// hardware concurrency (at least 1).
[[nodiscard]] int resolve_threads(int flag = 0);

/// Seed for the RNG substream of task `index` under a parent `seed`
/// (SplitMix64-based; matches dfv::hash_combine).
[[nodiscard]] constexpr std::uint64_t substream_seed(std::uint64_t seed,
                                                     std::uint64_t index) noexcept {
  return hash_combine(seed, 0x5eed5u + index);
}

/// Work-stealing thread pool. One process-wide instance; `size()` lanes
/// (the caller participates, so `size() - 1` worker threads are spawned).
/// A parallel region partitions its chunk range across lanes; a lane that
/// drains its own range steals chunks from the other lanes.
class ThreadPool {
 public:
  /// The process-wide pool, created on first use with `resolve_threads()`.
  [[nodiscard]] static ThreadPool& instance();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Total lanes (worker threads + the calling thread). >= 1.
  [[nodiscard]] int size() const noexcept { return size_; }

  /// Re-create the pool with `n` lanes (n >= 1). Must not be called from
  /// inside a parallel region. Thread count never affects results — only
  /// wall-clock — so this is a pure resource knob.
  void resize(int n);

  /// Execute fn(chunk) for every chunk in [0, nchunks), blocking until all
  /// complete. The first exception thrown by any chunk is rethrown on the
  /// calling thread (remaining chunks are drained without running).
  /// Chunks run inline when the pool has one lane, when nchunks == 1, or
  /// when called from inside another parallel region (nested call).
  void run(std::size_t nchunks, const std::function<void(std::size_t)>& fn);

  /// True while the calling thread executes inside a parallel region
  /// (used by the helpers; exposed for tests).
  [[nodiscard]] static bool in_parallel_region() noexcept;

 private:
  explicit ThreadPool(int n);
  void spawn();
  void join_all();
  void worker_main(int lane);
  void work(int lane);
  [[nodiscard]] bool claim(int lane, std::size_t& chunk) noexcept;
  void finish_chunk();

  struct alignas(64) Lane {
    /// Packed (next:32 | end:32) chunk cursor, updated with CAS so a
    /// concurrent steal can never tear a half-published range.
    std::atomic<std::uint64_t> range{0};
  };

  int size_ = 1;
  std::vector<std::thread> workers_;
  std::vector<Lane> lanes_;

  std::mutex start_mu_;
  std::condition_variable start_cv_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> stop_{false};

  std::mutex run_mu_;  ///< serializes top-level parallel regions
  /// Current region's chunk function. Atomic because a straggler worker
  /// finishing the previous region may claim chunks of the next one; the
  /// release store of the lane ranges orders this for any such claimant.
  std::atomic<const std::function<void(std::size_t)>*> fn_{nullptr};
  std::atomic<std::int64_t> remaining_{0};
  std::atomic<bool> failed_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

/// Resize the global pool according to `resolve_threads(flag)` and return
/// the resulting lane count (CLI plumbing for `--threads`).
[[nodiscard]] int configure_threads(int flag = 0);

/// Number of grain-sized chunks covering [0, n).
[[nodiscard]] constexpr std::size_t num_chunks(std::size_t n, std::size_t grain) noexcept {
  const std::size_t g = grain == 0 ? 1 : grain;
  return (n + g - 1) / g;
}

/// Run `fn(lo, hi)` over consecutive chunks [lo, hi) of [begin, end),
/// each at most `grain` long. Chunk boundaries depend only on the range
/// and grain, never on the thread count.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain, Fn&& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = num_chunks(n, g);
  const std::function<void(std::size_t)> chunk_fn = [&](std::size_t c) {
    const std::size_t lo = begin + c * g;
    const std::size_t hi = lo + std::min(g, end - lo);
    fn(lo, hi);
  };
  ThreadPool::instance().run(chunks, chunk_fn);
}

/// Map i -> fn(i) over [0, n) into a vector (one slot per element; no
/// ordering hazards). `T` must be default-constructible.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(std::size_t n, std::size_t grain, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = fn(i);
  });
  return out;
}

/// Deterministic chunked reduction: `map_chunk(lo, hi)` produces one
/// partial per chunk; partials are combined **serially in chunk order**
/// with `combine`, so the floating-point evaluation order is fixed by
/// (range, grain) alone.
template <typename T, typename MapChunk, typename Combine>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                                T init, MapChunk&& map_chunk, Combine&& combine) {
  if (begin >= end) return init;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = num_chunks(end - begin, g);
  std::vector<T> partials(chunks, init);
  parallel_for(begin, end, g, [&](std::size_t lo, std::size_t hi) {
    partials[(lo - begin) / g] = map_chunk(lo, hi);
  });
  T acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c) acc = combine(std::move(acc), partials[c]);
  return acc;
}

}  // namespace dfv::exec
