#include "exec/exec.hpp"

#include <cstdlib>
#include <string>

#include "common/check.hpp"

namespace dfv::exec {

namespace {

/// Depth of nested parallel regions on this thread (workers and callers).
thread_local int tl_region_depth = 0;

constexpr std::uint64_t pack(std::uint32_t next, std::uint32_t end) noexcept {
  return (std::uint64_t(next) << 32) | std::uint64_t(end);
}
constexpr std::uint32_t unpack_next(std::uint64_t v) noexcept {
  return std::uint32_t(v >> 32);
}
constexpr std::uint32_t unpack_end(std::uint64_t v) noexcept {
  return std::uint32_t(v & 0xffffffffu);
}

}  // namespace

int resolve_threads(int flag) {
  if (flag > 0) return flag;
  if (const char* env = std::getenv("DFV_THREADS"); env != nullptr && *env != '\0') {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? int(hc) : 1;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(resolve_threads());
  return pool;
}

ThreadPool::ThreadPool(int n) {
  DFV_CHECK(n >= 1);
  size_ = n;
  lanes_ = std::vector<Lane>(std::size_t(n));
  spawn();
}

ThreadPool::~ThreadPool() { join_all(); }

bool ThreadPool::in_parallel_region() noexcept { return tl_region_depth > 0; }

void ThreadPool::spawn() {
  stop_.store(false, std::memory_order_relaxed);
  workers_.reserve(std::size_t(size_ - 1));
  for (int lane = 1; lane < size_; ++lane)
    workers_.emplace_back([this, lane] { worker_main(lane); });
}

void ThreadPool::join_all() {
  {
    std::lock_guard<std::mutex> l(start_mu_);
    stop_.store(true, std::memory_order_release);
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::resize(int n) {
  DFV_CHECK_MSG(n >= 1, "thread pool size must be >= 1");
  DFV_CHECK_MSG(!in_parallel_region(), "cannot resize the pool inside a parallel region");
  std::lock_guard<std::mutex> run_lock(run_mu_);
  if (n == size_) return;
  join_all();
  size_ = n;
  lanes_ = std::vector<Lane>(std::size_t(n));
  spawn();
}

bool ThreadPool::claim(int lane, std::size_t& chunk) noexcept {
  Lane& ln = lanes_[std::size_t(lane)];
  std::uint64_t v = ln.range.load(std::memory_order_acquire);
  while (true) {
    const std::uint32_t next = unpack_next(v);
    const std::uint32_t end = unpack_end(v);
    if (next >= end) return false;
    if (ln.range.compare_exchange_weak(v, pack(next + 1, end), std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      chunk = next;
      return true;
    }
  }
}

void ThreadPool::finish_chunk() {
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard<std::mutex> l(done_mu_);
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::work(int lane) {
  ++tl_region_depth;
  // Own lane first, then steal round-robin from the others.
  for (int probe = 0; probe < size_; ++probe) {
    const int victim = (lane + probe) % size_;
    std::size_t chunk = 0;
    while (claim(victim, chunk)) {
      // Read the region function only after a successful claim: the claim
      // synchronizes with the lane publication, which follows the fn_
      // store, so a claimed chunk always sees its own region's function.
      const std::function<void(std::size_t)>* fn =
          fn_.load(std::memory_order_acquire);
      if (!failed_.load(std::memory_order_acquire)) {
        try {
          (*fn)(chunk);
        } catch (...) {
          bool expected = false;
          if (failed_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
            std::lock_guard<std::mutex> l(error_mu_);
            error_ = std::current_exception();
          }
        }
      }
      finish_chunk();
    }
  }
  --tl_region_depth;
}

void ThreadPool::worker_main(int lane) {
  std::uint64_t seen = generation_.load(std::memory_order_acquire);
  while (true) {
    // Brief spin before sleeping: campaign phases issue many small
    // regions back to back, and a condvar round trip per region would
    // dominate them.
    for (int spin = 0; spin < 4096; ++spin) {
      if (generation_.load(std::memory_order_acquire) != seen ||
          stop_.load(std::memory_order_acquire))
        break;
      // Periodic yield keeps oversubscribed pools (threads > cores) from
      // starving the thread that is doing the actual work.
      if ((spin & 255) == 255) std::this_thread::yield();
    }
    if (generation_.load(std::memory_order_acquire) == seen &&
        !stop_.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> l(start_mu_);
      start_cv_.wait(l, [&] {
        return generation_.load(std::memory_order_acquire) != seen ||
               stop_.load(std::memory_order_acquire);
      });
    }
    if (stop_.load(std::memory_order_acquire)) return;
    seen = generation_.load(std::memory_order_acquire);
    work(lane);
  }
}

void ThreadPool::run(std::size_t nchunks, const std::function<void(std::size_t)>& fn) {
  if (nchunks == 0) return;
  DFV_CHECK_MSG(nchunks <= 0xffffffffull, "parallel region exceeds 2^32 chunks");
  if (size_ == 1 || nchunks == 1 || tl_region_depth > 0) {
    // Serial / nested fallback: identical chunk decomposition, inline.
    ++tl_region_depth;
    try {
      for (std::size_t c = 0; c < nchunks; ++c) fn(c);
    } catch (...) {
      --tl_region_depth;
      throw;
    }
    --tl_region_depth;
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  fn_.store(&fn, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> l(error_mu_);
    error_ = nullptr;
  }
  remaining_.store(std::int64_t(nchunks), std::memory_order_relaxed);
  // Partition chunks across lanes; release stores publish fn_/remaining_
  // to any lane that claims from them.
  const std::size_t lanes = std::size_t(size_);
  for (std::size_t l = 0; l < lanes; ++l) {
    const std::uint32_t lo = std::uint32_t(l * nchunks / lanes);
    const std::uint32_t hi = std::uint32_t((l + 1) * nchunks / lanes);
    lanes_[l].range.store(pack(lo, hi), std::memory_order_release);
  }
  generation_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> l(start_mu_);
  }
  start_cv_.notify_all();

  work(0);

  // Wait for stragglers (spin briefly, then sleep).
  for (int spin = 0; spin < 16384; ++spin) {
    if (remaining_.load(std::memory_order_acquire) == 0) break;
    if ((spin & 255) == 255) std::this_thread::yield();
  }
  if (remaining_.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> l(done_mu_);
    done_cv_.wait(l, [&] { return remaining_.load(std::memory_order_acquire) == 0; });
  }
  fn_.store(nullptr, std::memory_order_release);

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> l(error_mu_);
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

int configure_threads(int flag) {
  const int n = resolve_threads(flag);
  ThreadPool::instance().resize(n);
  return n;
}

}  // namespace dfv::exec
