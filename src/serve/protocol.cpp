#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <unistd.h>

#include "common/check.hpp"

namespace dfv::serve {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

[[nodiscard]] std::uint32_t get_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

}  // namespace

// dfv-lint: allow(contract): every u32 is a valid version to announce
std::string hello_payload(std::uint32_t version) {
  std::string out;
  put_u32(out, kMagic);
  put_u32(out, version);
  return out;
}

// dfv-lint: allow(contract): validation IS the job; bad hellos return nullopt
std::optional<std::uint32_t> parse_hello(std::string_view payload) {
  if (payload.size() != kHelloBytes) return std::nullopt;
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  if (get_u32(p) != kMagic) return std::nullopt;
  return get_u32(p + 4);
}

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += std::size_t(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF on a record boundary
      throw std::runtime_error("serve: connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("serve: read failed: ") + std::strerror(errno));
  }
  return true;
}

void write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const char*>(buf);
  std::size_t put = 0;
  while (put < n) {
    // send(MSG_NOSIGNAL), not write: a peer that already closed must
    // surface as EPIPE, never as a process-killing SIGPIPE.
    const ssize_t w = ::send(fd, p + put, n - put, MSG_NOSIGNAL);
    if (w >= 0) {
      put += std::size_t(w);
      continue;
    }
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("serve: write failed: ") + std::strerror(errno));
  }
}

void write_frame(int fd, std::string_view payload) {
  DFV_CHECK_MSG(payload.size() <= kMaxFrameBytes, "serve: frame payload too large");
  std::string header;
  put_u32(header, std::uint32_t(payload.size()));
  write_all(fd, header.data(), header.size());
  write_all(fd, payload.data(), payload.size());
}

std::optional<std::string> read_frame(int fd) {
  DFV_CHECK_MSG(fd >= 0, "serve: read_frame on a closed descriptor");
  unsigned char header[4];
  if (!read_exact(fd, header, 4)) return std::nullopt;
  const std::uint32_t len = get_u32(header);
  if (len > kMaxFrameBytes) throw std::runtime_error("serve: oversized frame announced");
  std::string payload(len, '\0');
  if (len > 0 && !read_exact(fd, payload.data(), len))
    throw std::runtime_error("serve: connection closed mid-frame");
  return payload;
}

}  // namespace dfv::serve
