#include "serve/protocol.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/check.hpp"

namespace dfv::serve {

namespace {

using Clock = std::chrono::steady_clock;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

[[nodiscard]] std::uint32_t get_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

[[nodiscard]] Clock::time_point deadline_from(std::int64_t timeout_ms) {
  return timeout_ms > 0 ? Clock::now() + std::chrono::milliseconds(timeout_ms)
                        : Clock::time_point::max();
}

[[nodiscard]] bool peer_gone_errno(int err) noexcept {
  return err == ECONNRESET || err == EPIPE || err == ETIMEDOUT;
}

/// Block until fd is ready for `events` or the deadline passes. A
/// deadline of time_point::max() skips the poll entirely (the fd is
/// blocking, so the subsequent syscall waits).
void wait_ready(int fd, short events, Clock::time_point deadline, const char* verb) {
  if (deadline == Clock::time_point::max()) return;
  while (true) {
    const auto now = Clock::now();
    if (now >= deadline)
      throw TimeoutError(std::string("serve: timed out waiting to ") + verb);
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, int(std::min<long long>(left + 1, 3'600'000)));
    if (rc > 0) return;
    if (rc == 0) continue;  // re-check the deadline
    if (errno == EINTR) continue;
    throw TransportError(std::string("serve: poll failed: ") + std::strerror(errno));
  }
}

[[nodiscard]] bool read_exact_until(int fd, void* buf, std::size_t n,
                                    Clock::time_point deadline) {
  auto* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    wait_ready(fd, POLLIN, deadline, "read");
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += std::size_t(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF on a record boundary
      throw PeerGoneError("serve: peer closed the connection mid-frame");
    }
    if (errno == EINTR) continue;
    if (peer_gone_errno(errno))
      throw PeerGoneError(std::string("serve: peer died: read failed: ") +
                          std::strerror(errno));
    throw TransportError(std::string("serve: read failed: ") + std::strerror(errno));
  }
  return true;
}

void write_all_until(int fd, const void* buf, std::size_t n,
                     Clock::time_point deadline) {
  const auto* p = static_cast<const char*>(buf);
  std::size_t put = 0;
  while (put < n) {
    wait_ready(fd, POLLOUT, deadline, "write");
    // send(MSG_NOSIGNAL), not write: a peer that already closed must
    // surface as EPIPE, never as a process-killing SIGPIPE.
    const ssize_t w = ::send(fd, p + put, n - put, MSG_NOSIGNAL);
    if (w >= 0) {
      put += std::size_t(w);
      continue;
    }
    if (errno == EINTR) continue;
    if (peer_gone_errno(errno))
      throw PeerGoneError(std::string("serve: peer died: write failed: ") +
                          std::strerror(errno));
    throw TransportError(std::string("serve: write failed: ") + std::strerror(errno));
  }
}

}  // namespace

// dfv-lint: allow(contract): every u32 is a valid version to announce
std::string hello_payload(std::uint32_t version) {
  std::string out;
  put_u32(out, kMagic);
  put_u32(out, version);
  return out;
}

// dfv-lint: allow(contract): validation IS the job; bad hellos return nullopt
std::optional<std::uint32_t> parse_hello(std::string_view payload) {
  if (payload.size() != kHelloBytes) return std::nullopt;
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  if (get_u32(p) != kMagic) return std::nullopt;
  return get_u32(p + 4);
}

bool read_exact(int fd, void* buf, std::size_t n, std::int64_t timeout_ms) {
  DFV_CHECK_MSG(timeout_ms >= 0, "serve: negative read timeout");
  return read_exact_until(fd, buf, n, deadline_from(timeout_ms));
}

void write_all(int fd, const void* buf, std::size_t n, std::int64_t timeout_ms) {
  DFV_CHECK_MSG(timeout_ms >= 0, "serve: negative write timeout");
  write_all_until(fd, buf, n, deadline_from(timeout_ms));
}

void write_frame(int fd, std::string_view payload, std::int64_t timeout_ms) {
  DFV_CHECK_MSG(payload.size() <= kMaxFrameBytes, "serve: frame payload too large");
  const auto deadline = deadline_from(timeout_ms);
  std::string header;
  put_u32(header, std::uint32_t(payload.size()));
  write_all_until(fd, header.data(), header.size(), deadline);
  write_all_until(fd, payload.data(), payload.size(), deadline);
}

std::optional<std::string> read_frame(int fd, std::int64_t timeout_ms) {
  DFV_CHECK_MSG(fd >= 0, "serve: read_frame on a closed descriptor");
  const auto deadline = deadline_from(timeout_ms);
  unsigned char header[4];
  if (!read_exact_until(fd, header, 4, deadline)) return std::nullopt;
  const std::uint32_t len = get_u32(header);
  if (len > kMaxFrameBytes)
    throw FrameError("serve: malformed frame (protocol bug): announced length " +
                     std::to_string(len) + " exceeds the " +
                     std::to_string(kMaxFrameBytes) + "-byte cap");
  std::string payload(len, '\0');
  if (len > 0 && !read_exact_until(fd, payload.data(), len, deadline))
    throw PeerGoneError("serve: peer closed the connection mid-frame");
  return payload;
}

}  // namespace dfv::serve
