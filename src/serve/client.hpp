// dfv::serve::Client — a blocking connection to a `dfv serve` server —
// and dfv::serve::RetryClient, the fault-tolerant wrapper bench and
// production callers should prefer.
//
// One Client is one TCP connection with strict request/response
// alternation: call() writes one encoded api::Request frame and blocks
// for the one api::Response frame that answers it. Wire failures throw
// the serve/protocol taxonomy — PeerGoneError (server died mid-exchange,
// retryable), FrameError (protocol bug, not retryable), TimeoutError
// (per-call deadline passed; the connection is poisoned and must be
// closed) — while application-level failures arrive as api::ErrorResponse
// inside the returned Response, exactly as Session would have produced
// them in-process.
//
// RetryClient turns one *logical* request into up-to-max_attempts wire
// attempts: every attempt of a logical request carries the same
// request_id (idempotent retries over an immutable store), transient
// failures (PeerGoneError, TimeoutError, refused connects, Overloaded
// responses) trigger a transparent reconnect plus capped exponential
// backoff whose jitter comes from a seeded Rng substream per request id
// — the retry schedule of a chaos scenario is exactly replayable.
// Protocol bugs (FrameError, malformed response payloads) and handshake
// version rejections are never retried. Exactly-once result semantics:
// the caller sees one response per call, and because the store is
// immutable a duplicated server-side execution returns the same bytes —
// test_serve_chaos pins byte-identity against the fault-free path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "api/api.hpp"
#include "common/rng.hpp"

namespace dfv::serve {

/// Per-call knobs of Client::call/call_raw.
struct CallOptions {
  std::uint64_t request_id = 0;  ///< envelope id; equal across retries of one call
  std::uint32_t deadline_ms = 0;  ///< server-side budget in the envelope; 0 = none
  std::int64_t timeout_ms = 0;    ///< client-side blocking cap per call; 0 = forever
};

/// The server structurally rejected the hello (version mismatch). Not a
/// transport fault: retrying the same client build cannot succeed.
class HandshakeRejected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to 127.0.0.1:port and run the hello handshake announcing
  /// `version` (defaults to the client's own api::kApiVersion; tests
  /// pass a wrong one to probe the mismatch path). Returns nullopt on
  /// success, or the server's structured rejection (the connection is
  /// closed in that case). Throws TransportError subclasses on socket
  /// failures. `timeout_ms` caps the handshake exchange (0 = forever).
  [[nodiscard]] std::optional<api::ErrorResponse> connect(
      std::uint16_t port, std::uint32_t version = api::kApiVersion,
      std::int64_t timeout_ms = 0);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Send one request, block for its response.
  [[nodiscard]] api::Response call(const api::Request& req, const CallOptions& opt = {});

  /// Like call(), but returns the raw encoded response payload (the
  /// determinism tests compare these bytes across shard counts).
  [[nodiscard]] std::string call_raw(const api::Request& req,
                                     const CallOptions& opt = {});

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Retry schedule of a RetryClient. Attempt a (0-based) that fails
/// transiently sleeps min(backoff_base_ms << a, backoff_max_ms),
/// half-jittered by the per-request substream of `jitter_seed` (an
/// Overloaded response additionally floors the sleep at the server's
/// retry_after_ms hint).
struct RetryPolicy {
  int max_attempts = 6;
  std::int64_t timeout_ms = 10'000;  ///< client-side cap per attempt; 0 = forever
  std::uint32_t deadline_ms = 0;     ///< server-side envelope deadline per attempt
  std::uint32_t backoff_base_ms = 5;
  std::uint32_t backoff_max_ms = 500;
  std::uint64_t jitter_seed = 0xd5a60f11u;
  void validate() const;
};

/// Wire-attempt accounting of a RetryClient (per client, not per call).
struct RetryStats {
  std::uint64_t calls = 0;             ///< logical requests issued
  std::uint64_t attempts = 0;          ///< wire attempts (>= calls)
  std::uint64_t reconnects = 0;        ///< handshakes after the first
  std::uint64_t retried_transport = 0; ///< attempts retried on PeerGone/connect
  std::uint64_t retried_timeout = 0;   ///< attempts retried on TimeoutError
  std::uint64_t retried_overload = 0;  ///< attempts retried on Overloaded
};

class RetryClient {
 public:
  /// Lazily connects on the first call (and re-connects as needed).
  explicit RetryClient(std::uint16_t port, RetryPolicy policy = {});

  RetryClient(const RetryClient&) = delete;
  RetryClient& operator=(const RetryClient&) = delete;
  RetryClient(RetryClient&&) noexcept = default;
  RetryClient& operator=(RetryClient&&) noexcept = default;

  /// One logical request: retries transient failures per the policy and
  /// returns the single response that settles it. Throws on protocol
  /// bugs, version rejection, or after max_attempts transient failures.
  [[nodiscard]] api::Response call(const api::Request& req);
  [[nodiscard]] std::string call_raw(const api::Request& req);

  [[nodiscard]] const RetryStats& stats() const noexcept { return stats_; }
  void close() noexcept { client_.close(); }

 private:
  [[nodiscard]] std::string attempt_once(const api::Request& req, std::uint64_t id);
  void sleep_backoff(Rng& jitter, int attempt, std::uint32_t floor_ms);

  std::uint16_t port_ = 0;
  RetryPolicy policy_;
  Client client_;
  Rng jitter_root_;
  RetryStats stats_;
  std::uint64_t next_request_id_ = 1;
  bool ever_connected_ = false;
};

}  // namespace dfv::serve
