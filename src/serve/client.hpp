// dfv::serve::Client — a blocking connection to a `dfv serve` server.
//
// One client is one TCP connection with strict request/response
// alternation: call() writes one encoded api::Request frame and blocks
// for the one api::Response frame that answers it. Wire failures
// (refused connection, truncated frames, unexpected EOF) throw
// std::runtime_error; application-level failures arrive as
// api::ErrorResponse inside the returned Response, exactly as Session
// would have produced them in-process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "api/api.hpp"

namespace dfv::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to 127.0.0.1:port and run the hello handshake announcing
  /// `version` (defaults to the client's own api::kApiVersion; tests
  /// pass a wrong one to probe the mismatch path). Returns nullopt on
  /// success, or the server's structured rejection (the connection is
  /// closed in that case). Throws std::runtime_error on socket errors.
  [[nodiscard]] std::optional<api::ErrorResponse> connect(
      std::uint16_t port, std::uint32_t version = api::kApiVersion);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Send one request, block for its response.
  [[nodiscard]] api::Response call(const api::Request& req);

  /// Like call(), but returns the raw encoded response payload (the
  /// determinism tests compare these bytes across shard counts).
  [[nodiscard]] std::string call_raw(const api::Request& req);

  void close() noexcept;

 private:
  int fd_ = -1;
};

}  // namespace dfv::serve
