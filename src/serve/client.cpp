#include "serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/wire.hpp"
#include "common/check.hpp"
#include "serve/protocol.hpp"

namespace dfv::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<api::ErrorResponse> Client::connect(std::uint16_t port,
                                                  std::uint32_t version,
                                                  std::int64_t timeout_ms) {
  DFV_CHECK_MSG(fd_ < 0, "serve: client already connected");
  DFV_CHECK_MSG(timeout_ms >= 0, "serve: negative connect timeout");

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw TransportError("serve: socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close();
    throw TransportError("serve: connect to 127.0.0.1:" + std::to_string(port) +
                         " failed: " + why);
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  try {
    write_frame(fd_, hello_payload(version), timeout_ms);
    auto reply = read_frame(fd_, timeout_ms);
    if (!reply) {
      close();
      throw PeerGoneError("serve: server closed during handshake");
    }
    if (const auto got = parse_hello(*reply); got && *got == api::kApiVersion)
      return std::nullopt;  // handshake accepted

    // Anything else must be a structured rejection; bytes that decode as
    // neither hello nor response are a protocol bug, not a dead peer.
    api::Response resp;
    try {
      resp = api::decode_response(*reply);
    } catch (const ContractError& e) {
      close();
      throw FrameError(
          std::string("serve: malformed handshake reply (protocol bug): ") + e.what());
    }
    close();
    if (auto* err = std::get_if<api::ErrorResponse>(&resp)) return *err;
    throw FrameError("serve: unexpected handshake reply (protocol bug)");
  } catch (...) {
    close();
    throw;
  }
}

api::Response Client::call(const api::Request& req, const CallOptions& opt) {
  return api::decode_response(call_raw(req, opt));
}

std::string Client::call_raw(const api::Request& req, const CallOptions& opt) {
  DFV_CHECK_MSG(fd_ >= 0, "serve: call on a disconnected client");
  write_frame(fd_, api::encode_request(req, {opt.request_id, opt.deadline_ms}),
              opt.timeout_ms);
  auto reply = read_frame(fd_, opt.timeout_ms);
  if (!reply) {
    close();
    throw PeerGoneError("serve: server closed before answering");
  }
  return std::move(*reply);
}

// ---------------------------------------------------------------------------
// RetryClient.
// ---------------------------------------------------------------------------

void RetryPolicy::validate() const {
  DFV_CHECK_MSG(max_attempts >= 1, "serve: retry policy needs max_attempts >= 1");
  DFV_CHECK_MSG(timeout_ms >= 0, "serve: negative retry timeout");
  DFV_CHECK_MSG(backoff_base_ms >= 1, "serve: backoff base must be positive");
  DFV_CHECK_MSG(backoff_max_ms >= backoff_base_ms, "serve: backoff cap below base");
}

RetryClient::RetryClient(std::uint16_t port, RetryPolicy policy)
    : port_(port), policy_(policy), jitter_root_(policy.jitter_seed) {
  policy_.validate();
}

api::Response RetryClient::call(const api::Request& req) {
  return api::decode_response(call_raw(req));
}

// dfv-lint: allow(contract): the policy was validated at construction
std::string RetryClient::call_raw(const api::Request& req) {
  const std::uint64_t id = next_request_id_++;
  // Per-request jitter substream: the backoff schedule of request id N is
  // a pure function of (jitter_seed, N, attempt), replayable under chaos.
  Rng jitter = jitter_root_.split(id);
  ++stats_.calls;
  std::string last_error = "no attempt made";
  for (int a = 0; a < policy_.max_attempts; ++a) {
    ++stats_.attempts;
    try {
      std::string raw = attempt_once(req, id);
      // An Overloaded shed is the one *response* that is transient:
      // honor the server's retry_after hint and try again.
      if (raw.size() >= 5 && raw[4] == 0) {  // [u32 version][u8 tag]; Error = 0
        api::Response resp;
        try {
          resp = api::decode_response(raw);
        } catch (const ContractError& e) {
          throw FrameError(
              std::string("serve: malformed response payload (protocol bug): ") +
              e.what());
        }
        const auto* err = std::get_if<api::ErrorResponse>(&resp);
        if (err != nullptr && err->code == api::ErrorCode::Overloaded) {
          ++stats_.retried_overload;
          last_error = "server overloaded (retry_after_ms=" +
                       std::to_string(err->retry_after_ms) + ")";
          if (a + 1 < policy_.max_attempts)
            sleep_backoff(jitter, a, err->retry_after_ms);
          continue;
        }
      }
      return raw;
    } catch (const FrameError&) {
      throw;  // protocol bug: retrying reproduces it
    } catch (const HandshakeRejected&) {
      throw;  // version skew: no retry from this build can succeed
    } catch (const TimeoutError& e) {
      ++stats_.retried_timeout;
      last_error = e.what();
      client_.close();  // poisoned: a late reply would desynchronize the stream
    } catch (const TransportError& e) {
      ++stats_.retried_transport;
      last_error = e.what();
      client_.close();
    }
    if (a + 1 < policy_.max_attempts) sleep_backoff(jitter, a, 0);
  }
  throw std::runtime_error("serve: request " + std::to_string(id) + " failed after " +
                           std::to_string(policy_.max_attempts) +
                           " attempts; last error: " + last_error);
}

// dfv-lint: allow(contract): private helper; call_raw owns the validated policy
std::string RetryClient::attempt_once(const api::Request& req, std::uint64_t id) {
  if (!client_.connected()) {
    if (ever_connected_) ++stats_.reconnects;
    auto rejected = client_.connect(port_, api::kApiVersion, policy_.timeout_ms);
    if (rejected)
      throw HandshakeRejected("serve: handshake rejected: " + rejected->message);
    ever_connected_ = true;
  }
  CallOptions opt;
  opt.request_id = id;
  opt.deadline_ms = policy_.deadline_ms;
  opt.timeout_ms = policy_.timeout_ms;
  return client_.call_raw(req, opt);
}

// dfv-lint: allow(contract): private helper; attempt comes from call_raw's loop
void RetryClient::sleep_backoff(Rng& jitter, int attempt, std::uint32_t floor_ms) {
  const auto shift = std::uint64_t(std::min(attempt, 16));
  std::uint64_t ms = std::min<std::uint64_t>(
      std::uint64_t(policy_.backoff_base_ms) << shift, policy_.backoff_max_ms);
  // Half-jitter in [ms/2, ms]: desynchronizes a retry herd while staying
  // deterministic given the substream.
  ms = ms / 2 + jitter.uniform_index(ms / 2 + 1);
  ms = std::max<std::uint64_t>(ms, floor_ms);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace dfv::serve
