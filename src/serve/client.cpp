#include "serve/client.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/wire.hpp"
#include "common/check.hpp"
#include "serve/protocol.hpp"

namespace dfv::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<api::ErrorResponse> Client::connect(std::uint16_t port,
                                                  std::uint32_t version) {
  DFV_CHECK_MSG(fd_ < 0, "serve: client already connected");

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("serve: socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close();
    throw std::runtime_error("serve: connect to 127.0.0.1:" + std::to_string(port) +
                             " failed: " + why);
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  write_frame(fd_, hello_payload(version));
  auto reply = read_frame(fd_);
  if (!reply) {
    close();
    throw std::runtime_error("serve: server closed during handshake");
  }
  if (const auto got = parse_hello(*reply); got && *got == api::kApiVersion)
    return std::nullopt;  // handshake accepted

  // Anything else must be a structured rejection.
  api::Response resp = api::decode_response(*reply);
  close();
  if (auto* err = std::get_if<api::ErrorResponse>(&resp)) return *err;
  throw std::runtime_error("serve: unexpected handshake reply");
}

api::Response Client::call(const api::Request& req) {
  return api::decode_response(call_raw(req));
}

std::string Client::call_raw(const api::Request& req) {
  DFV_CHECK_MSG(fd_ >= 0, "serve: call on a disconnected client");
  write_frame(fd_, api::encode_request(req));
  auto reply = read_frame(fd_);
  if (!reply) {
    close();
    throw std::runtime_error("serve: server closed before answering");
  }
  return std::move(*reply);
}

}  // namespace dfv::serve
