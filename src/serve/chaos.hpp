// dfv::serve::chaos — a deterministic in-process TCP fault proxy.
//
// chaos::Proxy sits between a client and a dfv serve server on loopback
// and injects network faults — delays, byte-level truncations, clean
// mid-frame disconnects, and hard connection resets (RST) — from a
// seeded dfv::Rng, reusing the substream discipline of dfv::faults:
// connection i, direction d draws from Rng(seed).split(i * 2 + d), so
// the entire fault schedule is a pure function of the spec seed and the
// byte counts that flow, never of TCP chunk boundaries or timing.
//
// Determinism mechanics: fault decisions are drawn at *event points* —
// deterministic byte offsets in each direction's stream, spaced
// event_stride_bytes apart (half-jittered by the same substream). Each
// event point draws exactly one decision, and the next event offset is
// derived from the previous offset (not from however many bytes a read
// happened to return), so a schedule replays exactly given the same
// seed and workload. test_serve_chaos leans on this: a fault scenario
// that fails can be re-run byte-for-byte.
//
// The proxy is one event-loop thread (poll over all links), so it never
// reorders bytes within a direction; a delay holds the whole direction
// FIFO. Faults hit both directions independently.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/check.hpp"

namespace dfv::serve::chaos {

/// Fault mix of a Proxy. Probabilities are per *event point* (roughly
/// one per event_stride_bytes of traffic per direction), they need not
/// sum to 1; the remainder means "no fault at this point".
struct ChaosSpec {
  std::uint64_t seed = 1;
  double delay_prob = 0.0;       ///< hold the direction for a drawn interval
  double truncate_prob = 0.0;    ///< forward a byte prefix, then close
  double disconnect_prob = 0.0;  ///< clean close (FIN) mid-stream
  double reset_prob = 0.0;       ///< hard close (RST via SO_LINGER{1,0})
  std::uint32_t delay_min_ms = 1;
  std::uint32_t delay_max_ms = 5;
  /// Mean spacing of fault event points, in bytes per direction.
  std::uint32_t event_stride_bytes = 1024;
  void validate() const;
};

/// Injection accounting (atomically maintained; readable while running).
struct ProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t bytes_forwarded = 0;
  std::uint64_t delays = 0;
  std::uint64_t truncations = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t resets = 0;
};

class Proxy {
 public:
  /// Proxies 127.0.0.1:<port()> to 127.0.0.1:<upstream_port>.
  Proxy(ChaosSpec spec, std::uint16_t upstream_port);
  ~Proxy();

  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  /// Bind a kernel-assigned loopback port and spawn the relay thread.
  void start();
  /// Close every link and join the relay thread. Idempotent.
  void stop();

  /// Listening port clients should connect to (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] ProxyStats stats() const noexcept;

 private:
  void loop();

  ChaosSpec spec_;
  std::uint16_t upstream_port_ = 0;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};

  std::atomic<std::uint64_t> stat_connections_{0};
  std::atomic<std::uint64_t> stat_bytes_{0};
  std::atomic<std::uint64_t> stat_delays_{0};
  std::atomic<std::uint64_t> stat_truncations_{0};
  std::atomic<std::uint64_t> stat_disconnects_{0};
  std::atomic<std::uint64_t> stat_resets_{0};
};

}  // namespace dfv::serve::chaos
