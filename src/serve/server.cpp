#include "serve/server.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/wire.hpp"
#include "common/check.hpp"
#include "common/log.hpp"
#include "serve/protocol.hpp"

namespace dfv::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Flooding cap on a connection's receive buffer: frames are consumed as
/// they complete, so the buffer only grows while a forwarded reply is
/// pending — a peer that pipelines past two maximal frames in that
/// window is shedding load onto us and gets evicted instead.
constexpr std::size_t kMaxConnBacklogBytes = std::size_t(kMaxFrameBytes) * 2;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= std::uint64_t(p[i]);
    h *= kFnvPrime;
  }
}

void fnv_u32(std::uint64_t& h, std::uint32_t v) noexcept {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = (unsigned char)((v >> (8 * i)) & 0xff);
  fnv_bytes(h, b, 4);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DFV_CHECK_MSG(flags >= 0, "serve: fcntl(F_GETFL) failed");
  DFV_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "serve: fcntl(F_SETFL) failed");
}

void set_nodelay(int fd) noexcept {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void append_frame(std::string& out, std::string_view payload) {
  DFV_CHECK_MSG(payload.size() <= kMaxFrameBytes, "serve: frame payload too large");
  const auto len = std::uint32_t(payload.size());
  for (int i = 0; i < 4; ++i) out.push_back(char((len >> (8 * i)) & 0xff));
  out.append(payload.data(), payload.size());
}

[[nodiscard]] std::uint32_t peek_u32(const std::string& buf) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= std::uint32_t((unsigned char)(buf[std::size_t(i)])) << (8 * i);
  return v;
}

template <class... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};
template <class... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;

}  // namespace

std::uint64_t key_fingerprint(std::string_view app, int nodes) noexcept {
  std::uint64_t h = kFnvOffset;
  fnv_bytes(h, app.data(), app.size());
  fnv_bytes(h, "\0", 1);
  fnv_u32(h, std::uint32_t(nodes));
  return h;
}

std::uint64_t key_fingerprint(std::string_view app, int nodes,
                              std::uint32_t run) noexcept {
  std::uint64_t h = key_fingerprint(app, nodes);
  fnv_bytes(h, "\0", 1);
  fnv_u32(h, run);
  return h;
}

std::uint64_t request_key(const api::Request& req) noexcept {
  return std::visit(
      Overloaded{
          [](const api::RunLookupRequest& q) {
            return key_fingerprint(q.app_name, q.node_count, q.run_index);
          },
          [](const api::ForecastRequest& q) {
            return key_fingerprint(q.app_name, q.node_count, q.run_index);
          },
          [](const api::NeighborhoodRequest& q) {
            return key_fingerprint(q.app_name, q.node_count);
          },
          [](const api::DeviationRequest& q) {
            return key_fingerprint(q.app_name, q.node_count);
          },
          [](const api::ForecastEvalRequest& q) {
            return key_fingerprint(q.app_name, q.node_count);
          },
          [](const api::ForecastGridRequest& q) {
            return key_fingerprint(q.app_name, q.node_count);
          },
          [](const auto&) { return std::uint64_t(0); },
      },
      req);
}

std::size_t shard_of(std::uint64_t key, std::size_t nshards) {
  DFV_CHECK_MSG(nshards > 0, "serve: shard_of needs at least one shard");
  return std::size_t(key % std::uint64_t(nshards));
}

// ---------------------------------------------------------------------------
// Shard: everything one shard thread owns. Only `mu`/`mailbox` and the
// `quiescent` flag are touched by other threads; the rest is private to
// `thread`.
// ---------------------------------------------------------------------------

struct Server::Shard {
  struct Msg {
    enum class Kind { NewConn, Work, Reply };
    Kind kind = Kind::NewConn;
    int fd = -1;                ///< NewConn: the accepted socket
    std::size_t origin = 0;     ///< Work: shard to send the Reply to
    std::uint64_t conn_id = 0;  ///< Work/Reply: connection on the origin shard
    std::string bytes;          ///< Work: request payload; Reply: encoded response
    std::uint32_t deadline_ms = 0;   ///< Work: effective deadline (0 = none)
    Clock::time_point deadline_at{};  ///< Work: absolute expiry when deadline_ms > 0
  };

  struct Conn {
    int fd = -1;
    bool hello_done = false;
    bool awaiting_remote = false;  ///< one request forwarded, reply pending
    bool peer_closed = false;      ///< read side saw EOF
    bool close_after_flush = false;
    std::string in;   ///< received, not yet framed
    std::string out;  ///< encoded frames, not yet written
    // Stall countdowns ({} = not counting): read_start is set while a
    // frame sits incomplete in `in`, write_start while `out` waits to
    // drain. Both reset whenever the respective buffer empties.
    Clock::time_point read_start{};
    Clock::time_point write_start{};
  };

  Shard(Server* srv, std::size_t idx, api::Session sess)
      : server(srv), index(idx), session(std::move(sess)) {}

  void post(Msg msg) {
    {
      std::lock_guard<std::mutex> lock(mu);
      mailbox.push_back(std::move(msg));
    }
    server->wake(*this);
  }

  /// Bounded admission for Work messages: refuses (returns false) when
  /// the mailbox is already `limit` deep, so an overwhelmed owner shard
  /// backpressures its origins instead of queueing without bound.
  [[nodiscard]] bool post_work(Msg msg, std::size_t limit) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (mailbox.size() >= limit) return false;
      mailbox.push_back(std::move(msg));
    }
    server->wake(*this);
    return true;
  }

  Server* server;
  std::size_t index;
  api::Session session;
  int wake_rd = -1;
  int wake_wr = -1;
  std::thread thread;
  std::atomic<bool> quiescent{false};

  std::mutex mu;
  std::vector<Msg> mailbox;  // guarded by mu

  // Shard-thread-private state.
  std::map<std::uint64_t, Conn> conns;
  std::uint64_t next_conn_id = 1;
  /// Forwarded requests whose Reply has not come back yet — the
  /// admission gate's in-flight dimension.
  std::size_t open_forwards = 0;
};

Server::Server(ServerOptions opt) : opt_(std::move(opt)) {
  DFV_CHECK_MSG(opt_.shards >= 1, "serve: server needs at least one shard");
  DFV_CHECK_MSG(opt_.listen_backlog >= 1, "serve: listen backlog must be positive");
  DFV_CHECK_MSG(opt_.max_inflight >= 1, "serve: max_inflight must be positive");
  DFV_CHECK_MSG(opt_.max_mailbox >= 1, "serve: max_mailbox must be positive");
  DFV_CHECK_MSG(opt_.drain_timeout_ms > 0, "serve: drain timeout must be positive");
}

Server::~Server() { stop(); }

void Server::wake(Shard& shard) const noexcept {
  const char byte = 1;
  // A full pipe already guarantees a pending wake-up; EAGAIN is fine.
  (void)::write(shard.wake_wr, &byte, 1);
}

void Server::start() {
  DFV_CHECK_MSG(!running_, "serve: start() called twice");

  // Load the campaign before opening the port: a resident server never
  // answers its first query cold.
  campaign_ = opt_.campaign ? opt_.campaign : api::ResidentCampaign::load(opt_.session);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DFV_CHECK_MSG(listen_fd_ >= 0, "serve: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    DFV_CHECK_MSG(false, "serve: bind failed: " + why);
  }
  DFV_CHECK_MSG(::listen(listen_fd_, opt_.listen_backlog) == 0, "serve: listen failed");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  DFV_CHECK_MSG(
      ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0,
      "serve: getsockname failed");
  port_ = ntohs(bound.sin_port);

  shards_.clear();
  for (int i = 0; i < opt_.shards; ++i) {
    auto shard = std::make_unique<Shard>(this, std::size_t(i),
                                         api::Session(opt_.session, campaign_));
    int fds[2] = {-1, -1};
    DFV_CHECK_MSG(::pipe(fds) == 0, "serve: pipe() failed");
    set_nonblocking(fds[0]);
    set_nonblocking(fds[1]);
    shard->wake_rd = fds[0];
    shard->wake_wr = fds[1];
    shards_.push_back(std::move(shard));
  }

  phase_.store(0);
  inflight_.store(0);
  running_.store(true);
  for (auto& shard : shards_)
    shard->thread = std::thread([this, s = shard.get()] { shard_main(*s); });
  acceptor_ = std::thread([this] { acceptor_main(); });

  DFV_LOG_INFO("serve: listening on 127.0.0.1:" << port_ << " with "
                                                << shards_.size() << " shard(s)");
}

void Server::stop() {
  if (!running_.exchange(false)) return;

  // Phase 1 (drain): stop accepting and stop reading; every request whose
  // frame was fully received keeps its right to a response.
  phase_.store(1);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& shard : shards_) wake(*shard);

  // Wait (bounded by drain_timeout_ms) until every shard is quiescent and
  // no cross-shard operation is in flight. Quiescent flags are re-read
  // after the inflight check: a Work/Reply can only exist while
  // inflight_ > 0, so two consistent passes mean the system is truly
  // idle. Requests still pending past the deadline are answered with a
  // structured ShuttingDown error in the phase-2 cleanup below.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(opt_.drain_timeout_ms);
  while (Clock::now() < deadline) {
    bool idle = inflight_.load() == 0;
    for (auto& shard : shards_) idle = idle && shard->quiescent.load();
    idle = idle && inflight_.load() == 0;
    if (idle) {
      bool confirmed = true;
      for (auto& shard : shards_) confirmed = confirmed && shard->quiescent.load();
      if (confirmed) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Phase 2 (exit): close everything and join.
  phase_.store(2);
  for (auto& shard : shards_) wake(*shard);
  for (auto& shard : shards_)
    if (shard->thread.joinable()) shard->thread.join();
  for (auto& shard : shards_) {
    if (shard->wake_rd >= 0) ::close(shard->wake_rd);
    if (shard->wake_wr >= 0) ::close(shard->wake_wr);
  }
  shards_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

ServerStats Server::stats() const noexcept {
  ServerStats s;
  s.connections = stat_connections_.load();
  s.requests = stat_requests_.load();
  s.local = stat_local_.load();
  s.forwarded = stat_forwarded_.load();
  s.shed_overload = stat_shed_overload_.load();
  s.shed_deadline = stat_shed_deadline_.load();
  s.evicted_stalled = stat_evicted_.load();
  s.shutdown_aborted = stat_shutdown_aborted_.load();
  return s;
}

std::string Server::encoded_stats_response() const {
  api::StatsResponse s;
  s.shards = std::uint32_t(shards_.size());
  s.connections = stat_connections_.load();
  s.requests = stat_requests_.load();
  s.local = stat_local_.load();
  s.forwarded = stat_forwarded_.load();
  s.shed_overload = stat_shed_overload_.load();
  s.shed_deadline = stat_shed_deadline_.load();
  s.evicted_stalled = stat_evicted_.load();
  s.shutdown_aborted = stat_shutdown_aborted_.load();
  return api::encode_response(api::Response{std::move(s)});
}

void Server::acceptor_main() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or real failure): stop accepting
    }
    if (phase_.load() != 0) {
      ::close(fd);
      continue;
    }
    stat_connections_.fetch_add(1);
    const std::size_t idx =
        std::size_t(next_conn_shard_.fetch_add(1) % std::uint64_t(shards_.size()));
    Shard::Msg msg;
    msg.kind = Shard::Msg::Kind::NewConn;
    msg.fd = fd;
    shards_[idx]->post(std::move(msg));
  }
}

void Server::shard_main(Shard& shard) {
  DFV_CHECK_MSG(shard.wake_rd >= 0, "serve: shard started without a wake pipe");

  const std::size_t nshards = shards_.size();

  // Deterministic error payloads (pure functions of their inputs — the
  // bytes never depend on timing, so shed responses are replayable too).
  const auto overloaded_error = [&] {
    return api::encode_response(
        api::ErrorResponse{api::ErrorCode::Overloaded,
                           "serve: shard overloaded; retry after backoff",
                           opt_.retry_after_ms});
  };
  const auto deadline_error = [&](std::uint32_t deadline_ms, const char* when) {
    return api::encode_response(api::ErrorResponse{
        api::ErrorCode::DeadlineExceeded, "serve: deadline of " +
                                              std::to_string(deadline_ms) +
                                              "ms expired " + when});
  };

  // Handle one framed request arriving on `conn` (already past hello).
  const auto route_request = [&](std::uint64_t conn_id, Shard::Conn& conn,
                                 std::string payload) {
    stat_requests_.fetch_add(1);
    api::RequestEnvelope env;
    bool decoded = true;
    try {
      env = api::decode_request_envelope(payload);
    } catch (...) {
      decoded = false;
    }
    if (!decoded) {
      // Malformed or version-skewed: handle_encoded turns it into a
      // structured ErrorResponse locally; no routing needed.
      append_frame(conn.out, api::handle_encoded(shard.session, payload));
      return;
    }
    // Keyless observability path, answered before the admission gate so
    // overload stays visible while it is happening.
    if (std::holds_alternative<api::StatsRequest>(env.request)) {
      stat_local_.fetch_add(1);
      append_frame(conn.out, encoded_stats_response());
      return;
    }
    // Admission gate: a shard saturated with unanswered forwards sheds
    // new work with a structured hint instead of queueing unboundedly.
    if (shard.open_forwards >= std::size_t(opt_.max_inflight)) {
      stat_shed_overload_.fetch_add(1);
      append_frame(conn.out, overloaded_error());
      return;
    }
    const std::uint32_t deadline_ms =
        env.meta.deadline_ms != 0 ? env.meta.deadline_ms : opt_.default_deadline_ms;
    const auto deadline_at = deadline_ms != 0
                                 ? Clock::now() + std::chrono::milliseconds(deadline_ms)
                                 : Clock::time_point{};
    const std::uint64_t key = request_key(env.request);
    const std::size_t owner = key == 0 ? shard.index : shard_of(key, nshards);
    if (owner == shard.index) {
      stat_local_.fetch_add(1);
      std::string resp = api::encode_response(shard.session.handle(env.request));
      if (deadline_ms != 0 && Clock::now() > deadline_at) {
        // Never ship a result the caller has already given up on: the
        // stale bytes are replaced by the structured expiry.
        stat_shed_deadline_.fetch_add(1);
        resp = deadline_error(deadline_ms, "while handling the request");
      }
      append_frame(conn.out, resp);
      return;
    }
    Shard::Msg msg;
    msg.kind = Shard::Msg::Kind::Work;
    msg.origin = shard.index;
    msg.conn_id = conn_id;
    msg.bytes = std::move(payload);
    msg.deadline_ms = deadline_ms;
    msg.deadline_at = deadline_at;
    inflight_.fetch_add(1);
    if (!shards_[owner]->post_work(std::move(msg), std::size_t(opt_.max_mailbox))) {
      // The owner's mailbox is full: shed at the origin, same hint.
      inflight_.fetch_sub(1);
      stat_shed_overload_.fetch_add(1);
      append_frame(conn.out, overloaded_error());
      return;
    }
    stat_forwarded_.fetch_add(1);
    ++shard.open_forwards;
    conn.awaiting_remote = true;
  };

  // Consume complete frames buffered in conn.in. Stops while a forwarded
  // request is outstanding so responses stay in request order.
  const auto drain_frames = [&](std::uint64_t conn_id, Shard::Conn& conn) {
    while (!conn.awaiting_remote && !conn.close_after_flush && conn.in.size() >= 4) {
      const std::uint32_t len = peek_u32(conn.in);
      if (len > kMaxFrameBytes) {
        conn.close_after_flush = true;  // malformed peer; drop it
        return;
      }
      if (conn.in.size() < std::size_t(4) + len) return;
      std::string payload = conn.in.substr(4, len);
      conn.in.erase(0, std::size_t(4) + len);
      if (!conn.hello_done) {
        const auto version = parse_hello(payload);
        if (!version) {
          append_frame(conn.out,
                       api::encode_response(api::ErrorResponse{
                           api::ErrorCode::BadRequest, "serve: bad handshake frame"}));
          conn.close_after_flush = true;
          return;
        }
        if (*version != api::kApiVersion) {
          append_frame(
              conn.out,
              api::encode_response(api::ErrorResponse{
                  api::ErrorCode::VersionMismatch,
                  "serve: protocol version " + std::to_string(*version) +
                      " not supported (server speaks " +
                      std::to_string(api::kApiVersion) + ")"}));
          conn.close_after_flush = true;
          return;
        }
        append_frame(conn.out, hello_payload(api::kApiVersion));
        conn.hello_done = true;
        continue;
      }
      route_request(conn_id, conn, std::move(payload));
    }
  };

  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = wake pipe)

  while (true) {
    const int phase = phase_.load();
    if (phase == 2) break;

    // Swap the mailbox out under the lock, process without it.
    std::vector<Shard::Msg> msgs;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      msgs.swap(shard.mailbox);
    }
    for (auto& msg : msgs) {
      switch (msg.kind) {
        case Shard::Msg::Kind::NewConn: {
          set_nonblocking(msg.fd);
          set_nodelay(msg.fd);
          Shard::Conn conn;
          conn.fd = msg.fd;
          shard.conns.emplace(shard.next_conn_id++, std::move(conn));
          break;
        }
        case Shard::Msg::Kind::Work: {
          Shard::Msg reply;
          reply.kind = Shard::Msg::Kind::Reply;
          reply.conn_id = msg.conn_id;
          if (msg.deadline_ms != 0 && Clock::now() > msg.deadline_at) {
            // Expired while queued: don't burn owner-shard time on an
            // answer nobody is waiting for.
            stat_shed_deadline_.fetch_add(1);
            reply.bytes = deadline_error(msg.deadline_ms,
                                         "while queued for the owner shard");
          } else {
            reply.bytes = api::handle_encoded(shard.session, msg.bytes);
            if (msg.deadline_ms != 0 && Clock::now() > msg.deadline_at) {
              stat_shed_deadline_.fetch_add(1);
              reply.bytes =
                  deadline_error(msg.deadline_ms, "while handling the request");
            }
          }
          shards_[msg.origin]->post(std::move(reply));
          break;
        }
        case Shard::Msg::Kind::Reply: {
          if (shard.open_forwards > 0) --shard.open_forwards;
          const auto it = shard.conns.find(msg.conn_id);
          if (it != shard.conns.end() && it->second.awaiting_remote) {
            append_frame(it->second.out, msg.bytes);
            it->second.awaiting_remote = false;
            drain_frames(it->first, it->second);  // buffered pipeline, if any
          }
          inflight_.fetch_sub(1);
          break;
        }
      }
    }

    // Flush pending writes; evict stalled peers; reap finished
    // connections. One `now` per pass keeps the sweep cheap.
    const auto now = Clock::now();
    for (auto it = shard.conns.begin(); it != shard.conns.end();) {
      Shard::Conn& conn = it->second;
      while (!conn.out.empty()) {
        const ssize_t w =
            ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
        if (w > 0) {
          conn.out.erase(0, std::size_t(w));
          continue;
        }
        if (w < 0 && errno == EINTR) continue;
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        conn.close_after_flush = true;  // broken pipe etc.: give up on it
        conn.out.clear();
        break;
      }
      // Stall countdowns run only while a frame or a flush is pending;
      // an idle connection between frames never ticks.
      if (conn.in.empty())
        conn.read_start = Clock::time_point{};
      else if (conn.read_start == Clock::time_point{})
        conn.read_start = now;
      if (conn.out.empty())
        conn.write_start = Clock::time_point{};
      else if (conn.write_start == Clock::time_point{})
        conn.write_start = now;
      const bool read_stalled =
          phase == 0 && opt_.read_timeout_ms != 0 && !conn.awaiting_remote &&
          conn.read_start != Clock::time_point{} &&
          now - conn.read_start > std::chrono::milliseconds(opt_.read_timeout_ms);
      const bool write_stalled =
          phase == 0 && opt_.write_timeout_ms != 0 &&
          conn.write_start != Clock::time_point{} &&
          now - conn.write_start > std::chrono::milliseconds(opt_.write_timeout_ms);
      const bool flooded = conn.in.size() > kMaxConnBacklogBytes;
      if (read_stalled || write_stalled || flooded) {
        // A peer that cannot complete a frame, cannot drain its
        // responses, or floods past the backlog cap is wedging shard
        // resources: cut it. (A pending Reply for this conn is dropped
        // harmlessly — the Reply handler tolerates a missing conn.)
        stat_evicted_.fetch_add(1);
        ::close(conn.fd);
        it = shard.conns.erase(it);
        continue;
      }
      const bool done = conn.out.empty() && !conn.awaiting_remote &&
                        (conn.close_after_flush || conn.peer_closed);
      if (done) {
        ::close(conn.fd);
        it = shard.conns.erase(it);
      } else {
        ++it;
      }
    }

    if (phase == 1) {
      // Frames fully received before the stop still get answers: process
      // whatever is already buffered even though reads are off.
      for (auto& [id, conn] : shard.conns) drain_frames(id, conn);
      // Drain bookkeeping: quiescent once nothing is buffered, pending,
      // or in flight on this shard. (New mailbox messages wake us and
      // the loop recomputes, so a stale `true` can only be observed
      // together with inflight_ > 0, which stop() rechecks.)
      bool idle = true;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        idle = shard.mailbox.empty();
      }
      for (const auto& [id, conn] : shard.conns) {
        (void)id;
        idle = idle && conn.out.empty() && !conn.awaiting_remote;
      }
      shard.quiescent.store(idle);
    }

    // Poll: wake pipe always; sockets for writes always, reads only
    // while serving (phase 0) and not awaiting a forwarded reply.
    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{shard.wake_rd, POLLIN, 0});
    fd_conn.push_back(0);
    for (const auto& [id, conn] : shard.conns) {
      short events = 0;
      if (!conn.out.empty()) events = short(events | POLLOUT);
      if (phase == 0 && !conn.awaiting_remote && !conn.close_after_flush)
        events = short(events | POLLIN);
      if (events == 0) continue;
      fds.push_back(pollfd{conn.fd, events, 0});
      fd_conn.push_back(id);
    }
    const int rc = ::poll(fds.data(), nfds_t(fds.size()), 200);
    if (rc < 0 && errno != EINTR) break;  // poll failure: shard gives up
    if (rc <= 0) continue;

    // Drain the wake pipe.
    if ((fds[0].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(shard.wake_rd, buf, sizeof(buf)) > 0) {
      }
    }

    for (std::size_t i = 1; i < fds.size(); ++i) {
      const auto it = shard.conns.find(fd_conn[i]);
      if (it == shard.conns.end()) continue;
      Shard::Conn& conn = it->second;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      // Read everything available, then frame it.
      char buf[16384];
      while (true) {
        const ssize_t r = ::read(conn.fd, buf, sizeof(buf));
        if (r > 0) {
          conn.in.append(buf, std::size_t(r));
          continue;
        }
        if (r == 0) {
          conn.peer_closed = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        conn.peer_closed = true;  // hard error: treat as closed
        break;
      }
      drain_frames(it->first, conn);
    }
  }

  // Phase 2 cleanup: anything still pending missed the drain window.
  // Answer it with a structured shutdown error and flush what we can
  // without blocking — best-effort courtesy, never a hang, and never a
  // silent drop of a request the peer is still waiting on.
  for (auto& [id, conn] : shard.conns) {
    (void)id;
    if (conn.awaiting_remote) {
      stat_shutdown_aborted_.fetch_add(1);
      conn.awaiting_remote = false;
      append_frame(conn.out,
                   api::encode_response(api::ErrorResponse{
                       api::ErrorCode::ShuttingDown,
                       "serve: server shut down before the response was ready"}));
    }
    while (!conn.out.empty()) {
      const ssize_t w = ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (w <= 0) break;  // EAGAIN/EPIPE/…: best effort only
      conn.out.erase(0, std::size_t(w));
    }
    ::close(conn.fd);
  }
  shard.conns.clear();
}

}  // namespace dfv::serve
