// Wire protocol of `dfv serve`: length-prefixed frames over TCP.
//
// Frame layout (little-endian):
//
//   [u32 length][payload of `length` bytes]
//
// The first frame on a connection must be the client hello:
//
//   [u32 magic = kMagic][u32 version = api::kApiVersion]
//
// The server answers with the same 8-byte hello on success, or with one
// encoded api::ErrorResponse (ErrorCode::VersionMismatch) and a close
// when the version is not supported — a structured reply, never a
// protocol guess. Every later frame is one encoded api::Request from
// the client and one encoded api::Response from the server, strictly
// alternating per connection (a request is answered before the next one
// is read, so responses can never be reordered).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dfv::serve {

/// "DFVS" read as a little-endian u32.
inline constexpr std::uint32_t kMagic = 0x53564644;

/// Upper bound on a frame payload; a peer announcing more is treated as
/// malformed and disconnected (protects the 4-byte length from driving
/// unbounded allocation).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Hello payload size (magic + version).
inline constexpr std::size_t kHelloBytes = 8;

[[nodiscard]] std::string hello_payload(std::uint32_t version);

/// Parse a hello payload. Returns the announced version, or nullopt when
/// the payload is not a hello (wrong size or magic).
[[nodiscard]] std::optional<std::uint32_t> parse_hello(std::string_view payload);

// ---------------------------------------------------------------------------
// Blocking fd helpers (client side and tests; the server shards use
// their own non-blocking buffers).
// ---------------------------------------------------------------------------

/// Read exactly n bytes. Returns false on clean EOF before the first
/// byte; throws std::runtime_error on errors or EOF mid-record.
[[nodiscard]] bool read_exact(int fd, void* buf, std::size_t n);

/// Write all n bytes (throws std::runtime_error on error).
void write_all(int fd, const void* buf, std::size_t n);

/// Write one length-prefixed frame.
void write_frame(int fd, std::string_view payload);

/// Read one frame; nullopt on clean EOF before the length prefix.
[[nodiscard]] std::optional<std::string> read_frame(int fd);

}  // namespace dfv::serve
