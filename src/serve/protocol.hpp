// Wire protocol of `dfv serve`: length-prefixed frames over TCP.
//
// Frame layout (little-endian):
//
//   [u32 length][payload of `length` bytes]
//
// The first frame on a connection must be the client hello:
//
//   [u32 magic = kMagic][u32 version = api::kApiVersion]
//
// The server answers with the same 8-byte hello on success, or with one
// encoded api::ErrorResponse (ErrorCode::VersionMismatch) and a close
// when the version is not supported — a structured reply, never a
// protocol guess. Every later frame is one encoded api::Request from
// the client and one encoded api::Response from the server, strictly
// alternating per connection (a request is answered before the next one
// is read, so responses can never be reordered).
//
// Failure taxonomy (the retry layer keys off these types):
//
//   PeerGoneError — the peer died: EOF or ECONNRESET/EPIPE mid-exchange.
//     Transient from the caller's view; a retrying client reconnects.
//   FrameError — the peer is alive but the framing is wrong (oversized
//     length, non-decoding bytes): a protocol bug. Never retried —
//     retrying a bug reproduces it.
//   TimeoutError — the deadline passed while waiting for the fd.
//     Transient; the connection is poisoned (a late reply would
//     desynchronize the alternation) and must be closed before reuse.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dfv::serve {

/// "DFVS" read as a little-endian u32.
inline constexpr std::uint32_t kMagic = 0x53564644;

/// Upper bound on a frame payload; a peer announcing more is treated as
/// malformed and disconnected (protects the 4-byte length from driving
/// unbounded allocation).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Hello payload size (magic + version).
inline constexpr std::size_t kHelloBytes = 8;

/// Base of every blocking-helper failure below.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The peer vanished: EOF inside a record, ECONNRESET, EPIPE. The local
/// protocol state was fine; reconnect-and-retry is sound.
class PeerGoneError : public TransportError {
 public:
  using TransportError::TransportError;
};

/// The peer is alive but violates the framing contract (a protocol bug,
/// not a network fault). Retrying would reproduce it.
class FrameError : public TransportError {
 public:
  using TransportError::TransportError;
};

/// A read/write deadline expired. The fd may still deliver the stale
/// bytes later, so the caller must close it before retrying.
class TimeoutError : public TransportError {
 public:
  using TransportError::TransportError;
};

[[nodiscard]] std::string hello_payload(std::uint32_t version);

/// Parse a hello payload. Returns the announced version, or nullopt when
/// the payload is not a hello (wrong size or magic).
[[nodiscard]] std::optional<std::uint32_t> parse_hello(std::string_view payload);

// ---------------------------------------------------------------------------
// Blocking fd helpers (client side and tests; the server shards use
// their own non-blocking buffers). `timeout_ms` is an overall deadline
// for the whole call measured from entry; 0 blocks forever.
// ---------------------------------------------------------------------------

/// Read exactly n bytes. Returns false on clean EOF before the first
/// byte; throws PeerGoneError on EOF/reset mid-record, TimeoutError past
/// the deadline, TransportError on other socket errors.
[[nodiscard]] bool read_exact(int fd, void* buf, std::size_t n,
                              std::int64_t timeout_ms = 0);

/// Write all n bytes (throws PeerGoneError/TimeoutError/TransportError).
void write_all(int fd, const void* buf, std::size_t n, std::int64_t timeout_ms = 0);

/// Write one length-prefixed frame.
void write_frame(int fd, std::string_view payload, std::int64_t timeout_ms = 0);

/// Read one frame; nullopt on clean EOF before the length prefix.
/// Throws FrameError when the announced length exceeds kMaxFrameBytes.
[[nodiscard]] std::optional<std::string> read_frame(int fd,
                                                    std::int64_t timeout_ms = 0);

}  // namespace dfv::serve
