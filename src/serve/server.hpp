// dfv::serve::Server — a sharded, resident query server over dfv::api.
//
// Architecture (DragonflyDB-style shard-per-thread, adapted to an
// immutable store):
//
//  * One acceptor thread owns the listening socket and deals new
//    connections to shards round-robin.
//  * N shard threads each own: a slice of the run keyspace (by
//    fingerprint hash), their connections, an api::Session whose model
//    caches are shard-private, and a mailbox for cross-shard messages.
//    The campaign itself is loaded once and shared read-only — the
//    mutable state (caches, buffers, connections) is shared-nothing.
//  * Hot path: a request whose key the receiving shard owns is decoded,
//    handled, and answered entirely on that thread — no locks, no
//    queues. A request owned by another shard hops to its owner via the
//    mailbox (one mutex-guarded swap per batch) and the encoded response
//    hops back; per-connection ordering is preserved because a
//    connection never has more than one request in flight.
//  * Requests with no key (topology, simulate, campaign summary) are
//    answered by whichever shard holds the connection; they are pure
//    functions of the immutable state, so placement cannot change bytes.
//
// Determinism: every response payload is a pure function of
// (SessionOptions, request) — never of shard count, connection
// interleaving, or timing. test_serve pins this by comparing encoded
// payload bytes from 1-shard and 8-shard servers.
//
// Shutdown: stop() closes the listener, stops reads, then drains —
// every request fully received before the stop is answered and flushed
// (including cross-shard ones) before sockets close.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "api/session.hpp"

namespace dfv::serve {

struct ServerOptions {
  int shards = 1;
  /// TCP port on 127.0.0.1; 0 = kernel-assigned (read back via port()).
  std::uint16_t port = 0;
  int listen_backlog = 128;
  api::SessionOptions session;
  /// Optional pre-loaded campaign matching `session` (shared read-only by
  /// every shard); when null, start() loads it from `session`. Lets tests
  /// and in-process embedders pay the load once across many servers.
  std::shared_ptr<const api::ResidentCampaign> campaign;
};

/// FNV-1a 64-bit fingerprint of a routing key. Stable across runs,
/// platforms, and shard counts (it names the owner, never the result).
[[nodiscard]] std::uint64_t key_fingerprint(std::string_view app, int nodes) noexcept;
[[nodiscard]] std::uint64_t key_fingerprint(std::string_view app, int nodes,
                                            std::uint32_t run) noexcept;

/// The routing key of a request: run-scoped requests hash (app, nodes,
/// run); dataset-scoped ones hash (app, nodes); stateless ones return 0
/// (handled wherever they arrive).
[[nodiscard]] std::uint64_t request_key(const api::Request& req) noexcept;

/// Owner shard of a key. Deterministic in (key, nshards) alone.
[[nodiscard]] std::size_t shard_of(std::uint64_t key, std::size_t nshards);

struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;        ///< decoded request frames
  std::uint64_t local = 0;           ///< answered on the receiving shard
  std::uint64_t forwarded = 0;       ///< hopped to the owner shard
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, load the campaign into resident memory, spawn shard threads
  /// and the acceptor. Throws on bind failure or campaign errors.
  void start();

  /// Graceful shutdown: stop accepting, drain in-flight requests, flush,
  /// close, join. Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  /// Actual listening port (after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int shards() const noexcept { return int(shards_.size()); }
  [[nodiscard]] ServerStats stats() const noexcept;

 private:
  struct Shard;

  void acceptor_main();
  void shard_main(Shard& shard);
  void wake(Shard& shard) const noexcept;

  ServerOptions opt_;
  std::shared_ptr<const api::ResidentCampaign> campaign_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  /// Lifecycle: 0 = serving, 1 = draining (no new reads), 2 = exit.
  std::atomic<int> phase_{0};
  /// Cross-shard operations posted but not yet answered-and-queued.
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> next_conn_shard_{0};

  mutable std::atomic<std::uint64_t> stat_connections_{0};
  mutable std::atomic<std::uint64_t> stat_requests_{0};
  mutable std::atomic<std::uint64_t> stat_local_{0};
  mutable std::atomic<std::uint64_t> stat_forwarded_{0};
};

}  // namespace dfv::serve
