// dfv::serve::Server — a sharded, resident query server over dfv::api.
//
// Architecture (DragonflyDB-style shard-per-thread, adapted to an
// immutable store):
//
//  * One acceptor thread owns the listening socket and deals new
//    connections to shards round-robin.
//  * N shard threads each own: a slice of the run keyspace (by
//    fingerprint hash), their connections, an api::Session whose model
//    caches are shard-private, and a mailbox for cross-shard messages.
//    The campaign itself is loaded once and shared read-only — the
//    mutable state (caches, buffers, connections) is shared-nothing.
//  * Hot path: a request whose key the receiving shard owns is decoded,
//    handled, and answered entirely on that thread — no locks, no
//    queues. A request owned by another shard hops to its owner via the
//    mailbox (one mutex-guarded swap per batch) and the encoded response
//    hops back; per-connection ordering is preserved because a
//    connection never has more than one request in flight.
//  * Requests with no key (topology, simulate, campaign summary, stats)
//    are answered by whichever shard holds the connection; they are pure
//    functions of the immutable state, so placement cannot change bytes.
//
// Robustness layer (the failure model is DESIGN.md §12):
//
//  * Admission gate: a shard with max_inflight forwarded requests still
//    unanswered, or whose target mailbox is max_mailbox deep, sheds new
//    requests with ErrorResponse{Overloaded, retry_after_ms} instead of
//    queueing unboundedly. StatsRequest bypasses the gate so overload is
//    observable while it happens.
//  * Deadlines: a request whose envelope deadline_ms (or the server's
//    default_deadline_ms) expires before or during handling is answered
//    ErrorResponse{DeadlineExceeded}; a stale result is never sent.
//  * Slow-peer defense: a connection that stalls mid-frame longer than
//    read_timeout_ms, or that does not drain its pending output within
//    write_timeout_ms, is evicted (closed, counted), so one bad peer can
//    never wedge a shard loop. Idle connections between frames are never
//    evicted.
//
// Determinism: every response payload is a pure function of
// (SessionOptions, request) — never of shard count, connection
// interleaving, or timing. test_serve pins this by comparing encoded
// payload bytes from 1-shard and 8-shard servers. (StatsRequest is the
// deliberate exception: it reports live counters and is excluded from
// byte-identity workloads.)
//
// Shutdown: stop() closes the listener, stops reads, then drains —
// every request fully received before the stop is answered and flushed
// (including cross-shard ones) before sockets close. If the drain has
// not converged within drain_timeout_ms, the remaining connections are
// answered with a structured ErrorResponse{ShuttingDown} (best-effort
// flush) and closed — never silently dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "api/session.hpp"

namespace dfv::serve {

struct ServerOptions {
  int shards = 1;
  /// TCP port on 127.0.0.1; 0 = kernel-assigned (read back via port()).
  std::uint16_t port = 0;
  int listen_backlog = 128;
  api::SessionOptions session;
  /// Optional pre-loaded campaign matching `session` (shared read-only by
  /// every shard); when null, start() loads it from `session`. Lets tests
  /// and in-process embedders pay the load once across many servers.
  std::shared_ptr<const api::ResidentCampaign> campaign;

  // --- robustness knobs -----------------------------------------------------
  /// Per-shard bound on forwarded requests awaiting their owner's reply;
  /// admissions beyond it are shed with ErrorResponse{Overloaded}.
  int max_inflight = 64;
  /// Per-shard bound on queued cross-shard Work messages; a full owner
  /// mailbox sheds the request at the origin shard.
  int max_mailbox = 1024;
  /// Backoff hint stamped into every Overloaded response.
  std::uint32_t retry_after_ms = 25;
  /// Server-side deadline applied to requests whose envelope carries
  /// none (0 = no default). The envelope value wins when nonzero.
  std::uint32_t default_deadline_ms = 0;
  /// Evict a connection that started a frame but has not completed it
  /// within this window (0 = never). Granularity is the poll tick
  /// (~200 ms), so values below ~400 ms are not meaningful.
  std::uint32_t read_timeout_ms = 5000;
  /// Evict a connection whose pending output has not fully drained
  /// within this window (0 = never).
  std::uint32_t write_timeout_ms = 5000;
  /// Graceful-drain budget of stop(); past it, still-pending requests
  /// are answered ShuttingDown and their connections closed.
  std::uint32_t drain_timeout_ms = 10'000;
};

/// FNV-1a 64-bit fingerprint of a routing key. Stable across runs,
/// platforms, and shard counts (it names the owner, never the result).
[[nodiscard]] std::uint64_t key_fingerprint(std::string_view app, int nodes) noexcept;
[[nodiscard]] std::uint64_t key_fingerprint(std::string_view app, int nodes,
                                            std::uint32_t run) noexcept;

/// The routing key of a request: run-scoped requests hash (app, nodes,
/// run); dataset-scoped ones hash (app, nodes); stateless ones return 0
/// (handled wherever they arrive).
[[nodiscard]] std::uint64_t request_key(const api::Request& req) noexcept;

/// Owner shard of a key. Deterministic in (key, nshards) alone.
[[nodiscard]] std::size_t shard_of(std::uint64_t key, std::size_t nshards);

struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;   ///< decoded request frames
  std::uint64_t local = 0;      ///< answered on the receiving shard
  std::uint64_t forwarded = 0;  ///< hopped to the owner shard
  // Robustness counters. Invariant: requests == local + forwarded +
  // shed_overload + undecodable frames; deadline sheds are a subset of
  // local/forwarded (the request was admitted, then expired).
  std::uint64_t shed_overload = 0;     ///< refused by the admission gate
  std::uint64_t shed_deadline = 0;     ///< answered DeadlineExceeded
  std::uint64_t evicted_stalled = 0;   ///< connections dropped by I/O timeouts
  std::uint64_t shutdown_aborted = 0;  ///< answered ShuttingDown at drain expiry
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, load the campaign into resident memory, spawn shard threads
  /// and the acceptor. Throws on bind failure or campaign errors.
  void start();

  /// Graceful shutdown: stop accepting, drain in-flight requests
  /// (bounded by drain_timeout_ms), flush, close, join. Idempotent;
  /// also run by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  /// Actual listening port (after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int shards() const noexcept { return int(shards_.size()); }
  [[nodiscard]] ServerStats stats() const noexcept;

 private:
  struct Shard;

  void acceptor_main();
  void shard_main(Shard& shard);
  void wake(Shard& shard) const noexcept;
  [[nodiscard]] std::string encoded_stats_response() const;

  ServerOptions opt_;
  std::shared_ptr<const api::ResidentCampaign> campaign_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  /// Lifecycle: 0 = serving, 1 = draining (no new reads), 2 = exit.
  std::atomic<int> phase_{0};
  /// Cross-shard operations posted but not yet answered-and-queued.
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> next_conn_shard_{0};

  mutable std::atomic<std::uint64_t> stat_connections_{0};
  mutable std::atomic<std::uint64_t> stat_requests_{0};
  mutable std::atomic<std::uint64_t> stat_local_{0};
  mutable std::atomic<std::uint64_t> stat_forwarded_{0};
  mutable std::atomic<std::uint64_t> stat_shed_overload_{0};
  mutable std::atomic<std::uint64_t> stat_shed_deadline_{0};
  mutable std::atomic<std::uint64_t> stat_evicted_{0};
  mutable std::atomic<std::uint64_t> stat_shutdown_aborted_{0};
};

}  // namespace dfv::serve
