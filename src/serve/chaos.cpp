#include "serve/chaos.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/rng.hpp"

namespace dfv::serve::chaos {

namespace {

using Clock = std::chrono::steady_clock;

enum class Fault { None, Delay, Truncate, Disconnect, Reset };

/// One decision per event point, from the direction's own substream.
[[nodiscard]] Fault draw_fault(Rng& rng, const ChaosSpec& spec) {
  const double u = rng.uniform();
  double acc = spec.reset_prob;
  if (u < acc) return Fault::Reset;
  acc += spec.disconnect_prob;
  if (u < acc) return Fault::Disconnect;
  acc += spec.truncate_prob;
  if (u < acc) return Fault::Truncate;
  acc += spec.delay_prob;
  if (u < acc) return Fault::Delay;
  return Fault::None;
}

/// Next event offset from the previous one — never from read_total, so
/// the schedule is independent of TCP chunk boundaries.
[[nodiscard]] std::uint64_t next_event_offset(Rng& rng, std::uint64_t prev,
                                              std::uint32_t stride) {
  return prev + stride / 2 + rng.uniform_index(std::uint64_t(stride) + 1);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DFV_CHECK_MSG(flags >= 0, "chaos: fcntl(F_GETFL) failed");
  DFV_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "chaos: fcntl(F_SETFL) failed");
}

/// Close with SO_LINGER{on, 0}: the kernel sends RST instead of FIN.
void close_with_reset(int fd) noexcept {
  struct linger lg {};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);
}

/// One relay direction (client->upstream or upstream->client).
struct Dir {
  int src = -1;
  int dst = -1;
  Rng rng{1};
  std::string buf;  ///< read from src, not yet forwarded to dst
  std::uint64_t read_total = 0;
  std::uint64_t sent_total = 0;
  std::uint64_t next_event = 0;
  Clock::time_point hold_until{};  ///< {} = not delayed
  bool src_eof = false;
  bool dst_shut = false;
};

struct Link {
  int client = -1;
  int upstream = -1;
  Dir dir[2];  ///< [0] client->upstream, [1] upstream->client
  bool close_after_flush = false;  ///< truncate/disconnect pending
  bool dead = false;
};

}  // namespace

void ChaosSpec::validate() const {
  const double total = delay_prob + truncate_prob + disconnect_prob + reset_prob;
  DFV_CHECK_MSG(delay_prob >= 0 && truncate_prob >= 0 && disconnect_prob >= 0 &&
                    reset_prob >= 0,
                "chaos: fault probabilities must be non-negative");
  DFV_CHECK_MSG(total <= 1.0, "chaos: fault probabilities must sum to <= 1");
  DFV_CHECK_MSG(delay_max_ms >= delay_min_ms, "chaos: delay_max_ms below delay_min_ms");
  DFV_CHECK_MSG(event_stride_bytes >= 1, "chaos: event stride must be positive");
}

Proxy::Proxy(ChaosSpec spec, std::uint16_t upstream_port)
    : spec_(spec), upstream_port_(upstream_port) {
  spec_.validate();
}

Proxy::~Proxy() { stop(); }

void Proxy::start() {
  DFV_CHECK_MSG(!running_, "chaos: start() called twice");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DFV_CHECK_MSG(listen_fd_ >= 0, "chaos: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // kernel-assigned
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  DFV_CHECK_MSG(
      ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
      "chaos: bind failed");
  DFV_CHECK_MSG(::listen(listen_fd_, 64) == 0, "chaos: listen failed");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  DFV_CHECK_MSG(
      ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0,
      "chaos: getsockname failed");
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);

  running_.store(true);
  thread_ = std::thread([this] { loop(); });
}

void Proxy::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

ProxyStats Proxy::stats() const noexcept {
  ProxyStats s;
  s.connections = stat_connections_.load();
  s.bytes_forwarded = stat_bytes_.load();
  s.delays = stat_delays_.load();
  s.truncations = stat_truncations_.load();
  s.disconnects = stat_disconnects_.load();
  s.resets = stat_resets_.load();
  return s;
}

void Proxy::loop() {
  std::vector<Link> links;
  std::uint64_t conn_index = 0;
  std::vector<pollfd> fds;

  const auto kill_link = [](Link& link) {
    if (link.client >= 0) ::close(link.client);
    if (link.upstream >= 0) ::close(link.upstream);
    link.client = link.upstream = -1;
    link.dead = true;
  };
  const auto reset_link = [](Link& link) {
    if (link.client >= 0) close_with_reset(link.client);
    if (link.upstream >= 0) close_with_reset(link.upstream);
    link.client = link.upstream = -1;
    link.dead = true;
  };

  while (running_.load()) {
    // Accept new connections and dial the upstream for each.
    while (true) {
      const int cfd = ::accept(listen_fd_, nullptr, nullptr);
      if (cfd < 0) break;  // EAGAIN/EWOULDBLOCK (or shutdown): no more pending
      const int ufd = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in up{};
      up.sin_family = AF_INET;
      up.sin_port = htons(upstream_port_);
      up.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (ufd < 0 ||
          ::connect(ufd, reinterpret_cast<const sockaddr*>(&up), sizeof(up)) != 0) {
        ::close(cfd);
        if (ufd >= 0) ::close(ufd);
        continue;  // upstream gone: the client sees a refused/odd close
      }
      int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::setsockopt(ufd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      set_nonblocking(cfd);
      set_nonblocking(ufd);

      Link link;
      link.client = cfd;
      link.upstream = ufd;
      // The substream discipline of dfv::faults: one child stream per
      // (connection, direction), so schedules never interleave.
      for (int d = 0; d < 2; ++d) {
        Dir& dir = link.dir[d];
        dir.src = d == 0 ? cfd : ufd;
        dir.dst = d == 0 ? ufd : cfd;
        dir.rng = Rng(spec_.seed).split(conn_index * 2 + std::uint64_t(d));
        dir.next_event = next_event_offset(dir.rng, 0, spec_.event_stride_bytes);
      }
      ++conn_index;
      stat_connections_.fetch_add(1);
      links.push_back(std::move(link));
    }

    // Relay + inject per link.
    const auto now = Clock::now();
    for (Link& link : links) {
      if (link.dead) continue;
      bool do_reset = false;
      for (Dir& dir : link.dir) {
        if (link.dead || do_reset) break;
        // 1) Read whatever the source has (unless already draining out).
        if (!dir.src_eof && !link.close_after_flush) {
          char buf[16384];
          while (true) {
            const ssize_t r = ::read(dir.src, buf, sizeof(buf));
            if (r > 0) {
              dir.buf.append(buf, std::size_t(r));
              dir.read_total += std::uint64_t(r);
              continue;
            }
            if (r == 0) {
              dir.src_eof = true;
              break;
            }
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            dir.src_eof = true;  // peer reset etc.: treat as end of stream
            break;
          }
        }
        // 2) Fault decisions at every event point the stream crossed.
        while (!link.close_after_flush && !do_reset &&
               dir.read_total >= dir.next_event) {
          const std::uint64_t at = dir.next_event;
          dir.next_event =
              next_event_offset(dir.rng, dir.next_event, spec_.event_stride_bytes);
          switch (draw_fault(dir.rng, spec_)) {
            case Fault::None:
              break;
            case Fault::Delay: {
              const auto ms = dir.rng.uniform_int(std::int64_t(spec_.delay_min_ms),
                                                  std::int64_t(spec_.delay_max_ms));
              dir.hold_until = now + std::chrono::milliseconds(ms);
              stat_delays_.fetch_add(1);
              break;
            }
            case Fault::Truncate: {
              // Forward only the prefix up to the event point, then FIN.
              const std::uint64_t keep = at > dir.sent_total ? at - dir.sent_total : 0;
              if (dir.buf.size() > keep) dir.buf.resize(std::size_t(keep));
              link.close_after_flush = true;
              stat_truncations_.fetch_add(1);
              break;
            }
            case Fault::Disconnect:
              dir.buf.clear();
              link.close_after_flush = true;
              stat_disconnects_.fetch_add(1);
              break;
            case Fault::Reset:
              do_reset = true;
              stat_resets_.fetch_add(1);
              break;
          }
        }
        if (do_reset) break;
        // 3) Flush (FIFO; a delay holds the whole direction).
        if (dir.hold_until != Clock::time_point{} && now < dir.hold_until) continue;
        dir.hold_until = Clock::time_point{};
        while (!dir.buf.empty()) {
          const ssize_t w =
              ::send(dir.dst, dir.buf.data(), dir.buf.size(), MSG_NOSIGNAL);
          if (w > 0) {
            dir.buf.erase(0, std::size_t(w));
            dir.sent_total += std::uint64_t(w);
            stat_bytes_.fetch_add(std::uint64_t(w));
            continue;
          }
          if (w < 0 && errno == EINTR) continue;
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          dir.src_eof = true;  // receiver gone: stop relaying this direction
          dir.buf.clear();
          break;
        }
        // 4) Propagate EOF once the buffered bytes are out.
        if (dir.src_eof && dir.buf.empty() && !dir.dst_shut) {
          ::shutdown(dir.dst, SHUT_WR);
          dir.dst_shut = true;
        }
      }
      if (do_reset) {
        reset_link(link);
        continue;
      }
      const bool drained =
          link.dir[0].buf.empty() && link.dir[1].buf.empty();
      if (link.close_after_flush && drained) {
        kill_link(link);
        continue;
      }
      if (link.dir[0].dst_shut && link.dir[1].dst_shut) kill_link(link);
    }
    links.erase(std::remove_if(links.begin(), links.end(),
                               [](const Link& l) { return l.dead; }),
                links.end());

    // Poll with a short tick so hold_until expiries are honored.
    fds.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Link& link : links) {
      for (const Dir& dir : link.dir) {
        short events = 0;
        if (!dir.src_eof && !link.close_after_flush) events = short(events | POLLIN);
        if (events != 0) fds.push_back(pollfd{dir.src, events, 0});
        if (!dir.buf.empty()) fds.push_back(pollfd{dir.dst, POLLOUT, 0});
      }
    }
    (void)::poll(fds.data(), nfds_t(fds.size()), 5);
  }

  for (Link& link : links) kill_link(link);
}

}  // namespace dfv::serve::chaos
