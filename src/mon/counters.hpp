// Aries network hardware performance counter catalog (Table II of the
// paper): 13 router-tile (RT_*) and processor-tile (PT_*) counters, some
// raw and some derived.
//
// Note on the paper's Table II: the printed descriptions of RT_PKT_TOT
// ("total number of cycles stalled") and PT_PKT_TOT ("PT_RB_STL_RQ +
// PT_RB_STL_RS") are typesetting errata — both are packet totals per the
// Aries counter documentation (S-0045-20). We implement packet-count
// semantics and record the erratum here and in EXPERIMENTS.md.
#pragma once

#include <array>
#include <span>
#include <string>

namespace dfv::mon {

/// Counter identifiers in Table II order (also the x-axis order of
/// Figures 9 and 11).
enum class Counter : int {
  RT_FLIT_TOT = 0,
  RT_PKT_TOT,
  RT_RB_2X_USG,
  RT_RB_STL,
  PT_CB_STL_RQ,
  PT_CB_STL_RS,
  PT_FLIT_VC0,
  PT_FLIT_VC4,
  PT_FLIT_TOT,
  PT_PKT_TOT,
  PT_RB_STL_RQ,
  PT_RB_STL_RS,
  PT_RB_2X_USG,
};

inline constexpr int kNumCounters = 13;

/// Catalog row for one counter.
struct CounterInfo {
  const char* aries_name;   ///< full AR_RTR_* hardware name
  const char* abbrev;       ///< abbreviation used in the paper's figures
  const char* description;  ///< semantics
  bool derived;             ///< true when computed from raw counters
};

/// Catalog lookup (Table II).
[[nodiscard]] const CounterInfo& counter_info(Counter c);
[[nodiscard]] const char* counter_name(Counter c);
[[nodiscard]] Counter counter_from_index(int i);

/// Fixed-size vector of the 13 counters for one router (or an aggregate).
using CounterVec = std::array<double, kNumCounters>;

inline void add_into(CounterVec& acc, const CounterVec& v) {
  for (int i = 0; i < kNumCounters; ++i) acc[size_t(i)] += v[size_t(i)];
}

[[nodiscard]] inline CounterVec zero_counters() {
  CounterVec v{};
  return v;
}

/// Names of the LDMS-derived system-wide features used by the forecasting
/// models (Fig. 11 right): IO_* aggregates over I/O-node routers, SYS_*
/// aggregates over routers disjoint from the instrumented job.
[[nodiscard]] std::span<const char* const> ldms_io_feature_names();
[[nodiscard]] std::span<const char* const> ldms_sys_feature_names();

inline constexpr int kNumIoFeatures = 4;   // IO_RT_FLIT_TOT, IO_RT_RB_STL, IO_PT_FLIT_TOT, IO_PT_PKT_TOT
inline constexpr int kNumSysFeatures = 4;  // SYS_RT_FLIT_TOT, SYS_RT_RB_STL, SYS_PT_FLIT_TOT, SYS_PT_PKT_TOT

}  // namespace dfv::mon
