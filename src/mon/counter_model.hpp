// Maps network state (background traffic rates + the instrumented job's
// per-step byte totals) to Aries-style hardware counter deltas.
//
// This plays the role of the router hardware itself: flits are counted
// from bytes crossing tiles; stall-cycle counters follow the queueing-
// style stall_fraction() of the flow model, applied to per-link
// utilizations over the step interval.
#pragma once

#include <span>

#include "mon/counters.hpp"
#include "net/flow_model.hpp"
#include "net/topology.hpp"
#include "net/traffic.hpp"

namespace dfv::mon {

struct CounterModelParams {
  /// Fraction of endpoint traffic on the response VC class (VC4):
  /// rendezvous replies, RMA get responses, acks.
  double response_fraction = 0.25;
  /// Weight of incoming vs. outgoing link congestion in RT stall counters
  /// (back-pressure shows up on both sides of a loaded tile).
  double in_stall_weight = 0.6;
  double out_stall_weight = 0.4;
  /// Column-buffer stalls couple endpoint and transit congestion.
  double cb_endpoint_weight = 0.5;
  double cb_transit_weight = 0.2;
};

/// Per-router Aries counter synthesis for one measurement interval.
class CounterModel {
 public:
  explicit CounterModel(const net::Topology& topo, CounterModelParams params = {});

  /// Utilization of directed link `e` over an interval of `dt` seconds:
  /// (background rate + job bytes / dt) / capacity.
  [[nodiscard]] double link_utilization(net::LinkId e, const net::RateLoads& bg,
                                        const net::ByteLoads& job, double dt) const;

  /// Counter deltas for router `r` over an interval of `dt` seconds.
  [[nodiscard]] CounterVec router_counters(net::RouterId r, const net::RateLoads& bg,
                                           const net::ByteLoads& job, double dt) const;

  /// Sum of router_counters over a set of routers (AriesNCL-style per-job
  /// collection: a user may only read counters of routers attached to the
  /// job's own nodes — §III-C of the paper).
  [[nodiscard]] CounterVec aggregate(std::span<const net::RouterId> routers,
                                     const net::RateLoads& bg, const net::ByteLoads& job,
                                     double dt) const;

  [[nodiscard]] const net::Topology& topology() const noexcept { return *topo_; }
  [[nodiscard]] const CounterModelParams& params() const noexcept { return params_; }

 private:
  const net::Topology* topo_;
  CounterModelParams params_;
};

}  // namespace dfv::mon
