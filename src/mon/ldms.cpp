#include "mon/ldms.hpp"

#include <algorithm>
#include <array>

#include "common/check.hpp"
#include "exec/exec.hpp"

namespace dfv::mon {

std::vector<net::RouterId> make_default_io_routers(const net::Topology& topo,
                                                   int per_group) {
  DFV_CHECK(per_group >= 1);
  const auto& cfg = topo.config();
  std::vector<net::RouterId> io;
  io.reserve(std::size_t(cfg.groups * per_group));
  for (net::GroupId g = 0; g < cfg.groups; ++g)
    for (int i = 0; i < per_group; ++i) {
      // Spread service routers across rows within the group.
      const int idx = (i * cfg.routers_per_group()) / per_group + cfg.row_size / 2;
      io.push_back(net::RouterId(g * cfg.routers_per_group() +
                                 idx % cfg.routers_per_group()));
    }
  std::sort(io.begin(), io.end());
  io.erase(std::unique(io.begin(), io.end()), io.end());
  return io;
}

LdmsSampler::LdmsSampler(const CounterModel& model, std::vector<net::RouterId> io_routers)
    : model_(&model), io_routers_(std::move(io_routers)) {
  std::sort(io_routers_.begin(), io_routers_.end());
}

LdmsFeatures LdmsSampler::sample(const net::RateLoads& bg, const net::ByteLoads& job,
                                 double dt,
                                 std::span<const net::RouterId> job_routers) const {
  const net::Topology& topo = model_->topology();
  const auto& cfg = topo.config();
  const double flit = cfg.flit_bytes;
  const double cycles = dt * cfg.clock_hz;
  LdmsFeatures f;

  // All four aggregates below are chunked reductions combined in chunk
  // order, so each sum is bit-identical for any thread count.
  using Acc = std::array<double, 4>;
  const auto add4 = [](Acc a, const Acc& b) {
    for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
    return a;
  };

  // ---- io aggregate: per-router counters over the I/O router set -------
  const Acc io = exec::parallel_reduce(
      0, io_routers_.size(), 4, Acc{},
      [&](std::size_t lo, std::size_t hi) {
        Acc p{};
        for (std::size_t i = lo; i < hi; ++i) {
          const CounterVec v = model_->router_counters(io_routers_[i], bg, job, dt);
          p[0] += v[size_t(Counter::RT_FLIT_TOT)];
          p[1] += v[size_t(Counter::RT_RB_STL)];
          p[2] += v[size_t(Counter::PT_FLIT_TOT)];
          p[3] += v[size_t(Counter::PT_PKT_TOT)];
        }
        return p;
      },
      add4);
  for (std::size_t i = 0; i < io.size(); ++i) f.io[i] = io[i];

  // ---- sys aggregate: system totals (one pass over links + router
  // endpoint arrays) minus the instrumented job's routers ----------------
  const auto& prm = model_->params();
  const Acc link_tot = exec::parallel_reduce(
      0, std::size_t(topo.num_links()), 16384, Acc{},
      [&](std::size_t lo, std::size_t hi) {
        Acc p{};
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const double bytes = bg.link_rate[idx] * dt + job.link_bytes[idx];
          if (bytes <= 0.0) continue;
          const double u = bytes / (topo.link(net::LinkId(int(idx))).capacity * dt);
          p[0] += bytes / flit;
          p[1] += cycles * (prm.in_stall_weight + prm.out_stall_weight) *
                  net::stall_fraction(u);
        }
        return p;
      },
      add4);
  const double tot_rt_flit = link_tot[0], tot_rt_stl = link_tot[1];
  const std::size_t R = std::size_t(cfg.num_routers());
  const double tot_pt_flit = exec::parallel_reduce(
      0, R, 512, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double p = 0.0;
        for (std::size_t r = lo; r < hi; ++r)
          p += (bg.inject_rate[r] * dt + job.inject_bytes[r] + bg.eject_rate[r] * dt +
                job.eject_bytes[r]) /
               flit;
        return p;
      },
      [](double a, double b) { return a + b; });

  const Acc job_tot = exec::parallel_reduce(
      0, job_routers.size(), 8, Acc{},
      [&](std::size_t lo, std::size_t hi) {
        Acc p{};
        for (std::size_t i = lo; i < hi; ++i) {
          const CounterVec v = model_->router_counters(job_routers[i], bg, job, dt);
          p[0] += v[size_t(Counter::RT_FLIT_TOT)];
          p[1] += v[size_t(Counter::RT_RB_STL)];
          p[2] += v[size_t(Counter::PT_FLIT_TOT)];
        }
        return p;
      },
      add4);
  const double job_rt_flit = job_tot[0], job_rt_stl = job_tot[1], job_pt_flit = job_tot[2];

  f.sys[0] = std::max(0.0, tot_rt_flit - job_rt_flit);
  f.sys[1] = std::max(0.0, tot_rt_stl - job_rt_stl);
  f.sys[2] = std::max(0.0, tot_pt_flit - job_pt_flit);
  f.sys[3] = f.sys[2] / cfg.flits_per_packet;
  return f;
}

}  // namespace dfv::mon
