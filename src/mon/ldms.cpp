#include "mon/ldms.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dfv::mon {

std::vector<net::RouterId> make_default_io_routers(const net::Topology& topo,
                                                   int per_group) {
  DFV_CHECK(per_group >= 1);
  const auto& cfg = topo.config();
  std::vector<net::RouterId> io;
  io.reserve(std::size_t(cfg.groups * per_group));
  for (net::GroupId g = 0; g < cfg.groups; ++g)
    for (int i = 0; i < per_group; ++i) {
      // Spread service routers across rows within the group.
      const int idx = (i * cfg.routers_per_group()) / per_group + cfg.row_size / 2;
      io.push_back(net::RouterId(g * cfg.routers_per_group() +
                                 idx % cfg.routers_per_group()));
    }
  std::sort(io.begin(), io.end());
  io.erase(std::unique(io.begin(), io.end()), io.end());
  return io;
}

LdmsSampler::LdmsSampler(const CounterModel& model, std::vector<net::RouterId> io_routers)
    : model_(&model), io_routers_(std::move(io_routers)) {
  std::sort(io_routers_.begin(), io_routers_.end());
}

LdmsFeatures LdmsSampler::sample(const net::RateLoads& bg, const net::ByteLoads& job,
                                 double dt,
                                 std::span<const net::RouterId> job_routers) const {
  const net::Topology& topo = model_->topology();
  const auto& cfg = topo.config();
  const double flit = cfg.flit_bytes;
  const double cycles = dt * cfg.clock_hz;
  LdmsFeatures f;

  // ---- io aggregate: per-router counters over the I/O router set -------
  for (net::RouterId r : io_routers_) {
    const CounterVec v = model_->router_counters(r, bg, job, dt);
    f.io[0] += v[size_t(Counter::RT_FLIT_TOT)];
    f.io[1] += v[size_t(Counter::RT_RB_STL)];
    f.io[2] += v[size_t(Counter::PT_FLIT_TOT)];
    f.io[3] += v[size_t(Counter::PT_PKT_TOT)];
  }

  // ---- sys aggregate: system totals (one pass over links + router
  // endpoint arrays) minus the instrumented job's routers ----------------
  const auto& prm = model_->params();
  double tot_rt_flit = 0.0, tot_rt_stl = 0.0;
  for (int e = 0; e < topo.num_links(); ++e) {
    const auto idx = std::size_t(e);
    const double bytes = bg.link_rate[idx] * dt + job.link_bytes[idx];
    if (bytes <= 0.0) continue;
    const double u = bytes / (topo.link(net::LinkId(e)).capacity * dt);
    tot_rt_flit += bytes / flit;
    tot_rt_stl += cycles * (prm.in_stall_weight + prm.out_stall_weight) *
                  net::stall_fraction(u);
  }
  double tot_pt_flit = 0.0;
  const std::size_t R = std::size_t(cfg.num_routers());
  for (std::size_t r = 0; r < R; ++r) {
    tot_pt_flit += (bg.inject_rate[r] * dt + job.inject_bytes[r] + bg.eject_rate[r] * dt +
                    job.eject_bytes[r]) /
                   flit;
  }

  double job_rt_flit = 0.0, job_rt_stl = 0.0, job_pt_flit = 0.0;
  for (net::RouterId r : job_routers) {
    const CounterVec v = model_->router_counters(r, bg, job, dt);
    job_rt_flit += v[size_t(Counter::RT_FLIT_TOT)];
    job_rt_stl += v[size_t(Counter::RT_RB_STL)];
    job_pt_flit += v[size_t(Counter::PT_FLIT_TOT)];
  }

  f.sys[0] = std::max(0.0, tot_rt_flit - job_rt_flit);
  f.sys[1] = std::max(0.0, tot_rt_stl - job_rt_stl);
  f.sys[2] = std::max(0.0, tot_pt_flit - job_pt_flit);
  f.sys[3] = f.sys[2] / cfg.flits_per_packet;
  return f;
}

}  // namespace dfv::mon
