// LDMS-style system-wide monitoring.
//
// On Cori, LDMS samples counters on *all* routers once per second
// (~5 TB/day). The analyses only consume two aggregates derived from it
// (§IV-C / Fig. 10):
//   io  — counters of routers whose nodes serve the filesystem (I/O nodes)
//   sys — counters of routers sharing no nodes with the instrumented job
#pragma once

#include <array>
#include <span>
#include <vector>

#include "mon/counter_model.hpp"

namespace dfv::mon {

/// The 4+4 aggregate features exposed to the forecasting models.
struct LdmsFeatures {
  std::array<double, kNumIoFeatures> io{};    ///< IO_RT_FLIT_TOT, IO_RT_RB_STL, IO_PT_FLIT_TOT, IO_PT_PKT_TOT
  std::array<double, kNumSysFeatures> sys{};  ///< SYS_* equivalents over non-job routers
};

/// Pick the default I/O router set: `per_group` routers per group
/// (deterministic, spread over rows) playing the role of service/LNET
/// routers that front the filesystem.
[[nodiscard]] std::vector<net::RouterId> make_default_io_routers(const net::Topology& topo,
                                                                 int per_group = 1);

class LdmsSampler {
 public:
  LdmsSampler(const CounterModel& model, std::vector<net::RouterId> io_routers);

  /// Aggregate features over one interval. `job_routers` must be sorted
  /// (they are excluded from the sys aggregate).
  [[nodiscard]] LdmsFeatures sample(const net::RateLoads& bg, const net::ByteLoads& job,
                                    double dt,
                                    std::span<const net::RouterId> job_routers) const;

  [[nodiscard]] const std::vector<net::RouterId>& io_routers() const noexcept {
    return io_routers_;
  }

 private:
  const CounterModel* model_;
  std::vector<net::RouterId> io_routers_;
};

}  // namespace dfv::mon
