#include "mon/counter_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "exec/exec.hpp"

namespace dfv::mon {

CounterModel::CounterModel(const net::Topology& topo, CounterModelParams params)
    : topo_(&topo), params_(params) {}

double CounterModel::link_utilization(net::LinkId e, const net::RateLoads& bg,
                                      const net::ByteLoads& job, double dt) const {
  const auto idx = std::size_t(e);
  const double rate = bg.link_rate[idx] + job.link_bytes[idx] / dt;
  return rate / topo_->link(e).capacity;
}

CounterVec CounterModel::router_counters(net::RouterId r, const net::RateLoads& bg,
                                         const net::ByteLoads& job, double dt) const {
  DFV_CHECK(dt > 0.0);
  const auto& cfg = topo_->config();
  const double flit = cfg.flit_bytes;
  const double cycles = dt * cfg.clock_hz;
  CounterVec v = zero_counters();

  // ---- Router (network) tiles: transit traffic ------------------------
  double in_flits = 0.0, in_stall = 0.0, two_x = 0.0, transit_util_sum = 0.0;
  const auto& ins = topo_->in_links(r);
  for (net::LinkId e : ins) {
    const auto idx = std::size_t(e);
    const double bytes = bg.link_rate[idx] * dt + job.link_bytes[idx];
    const double u = bytes / (topo_->link(e).capacity * dt);
    in_flits += bytes / flit;
    const double sf = net::stall_fraction(u);
    in_stall += params_.in_stall_weight * sf;
    two_x += sf * sf;
    transit_util_sum += std::min(u, 1.5);
  }
  double out_stall = 0.0;
  for (net::LinkId e : topo_->out_links(r)) {
    const double u = link_utilization(e, bg, job, dt);
    out_stall += params_.out_stall_weight * net::stall_fraction(u);
  }
  const double mean_transit_util =
      ins.empty() ? 0.0 : transit_util_sum / double(ins.size());

  v[size_t(Counter::RT_FLIT_TOT)] = in_flits;
  v[size_t(Counter::RT_PKT_TOT)] = in_flits / cfg.flits_per_packet;
  v[size_t(Counter::RT_RB_STL)] = cycles * (in_stall + out_stall);
  v[size_t(Counter::RT_RB_2X_USG)] = cycles * 0.1 * std::min(two_x, 16.0);

  // ---- Processor tiles: endpoint traffic -------------------------------
  const double inj = job.inject_bytes[std::size_t(r)] + bg.inject_rate[std::size_t(r)] * dt;
  const double ej = job.eject_bytes[std::size_t(r)] + bg.eject_rate[std::size_t(r)] * dt;
  const double u_inj = inj / (cfg.endpoint_bw * dt);
  const double u_ej = ej / (cfg.endpoint_bw * dt);
  const double rf = params_.response_fraction;

  const double pt_flits = (inj + ej) / flit;
  v[size_t(Counter::PT_FLIT_VC0)] = (1.0 - rf) * pt_flits;
  v[size_t(Counter::PT_FLIT_VC4)] = rf * pt_flits;
  v[size_t(Counter::PT_FLIT_TOT)] = pt_flits;
  v[size_t(Counter::PT_PKT_TOT)] = pt_flits / cfg.flits_per_packet;

  const double sf_inj = net::stall_fraction(u_inj);
  const double sf_ej = net::stall_fraction(u_ej);
  v[size_t(Counter::PT_RB_STL_RQ)] = cycles * sf_inj;
  v[size_t(Counter::PT_RB_STL_RS)] = cycles * sf_ej;
  v[size_t(Counter::PT_CB_STL_RQ)] =
      cycles * (params_.cb_endpoint_weight * sf_inj +
                params_.cb_transit_weight * net::stall_fraction(mean_transit_util));
  v[size_t(Counter::PT_CB_STL_RS)] =
      cycles * (params_.cb_endpoint_weight * sf_ej +
                params_.cb_transit_weight * net::stall_fraction(mean_transit_util));
  v[size_t(Counter::PT_RB_2X_USG)] = cycles * 0.2 * sf_inj * sf_ej +
                                     cycles * 0.05 * std::min(u_inj + u_ej, 2.0);
  return v;
}

CounterVec CounterModel::aggregate(std::span<const net::RouterId> routers,
                                   const net::RateLoads& bg, const net::ByteLoads& job,
                                   double dt) const {
  // Chunked in index order with an ordered combine, so the floating-point
  // sum is bit-identical for any thread count.
  return exec::parallel_reduce(
      0, routers.size(), 8, zero_counters(),
      [&](std::size_t lo, std::size_t hi) {
        CounterVec part = zero_counters();
        for (std::size_t i = lo; i < hi; ++i)
          add_into(part, router_counters(routers[i], bg, job, dt));
        return part;
      },
      [](CounterVec a, const CounterVec& b) {
        add_into(a, b);
        return a;
      });
}

}  // namespace dfv::mon
