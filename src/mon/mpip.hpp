// mpiP-style MPI profiling: per-run split into compute time and time per
// dominant MPI routine (Figures 4 and 5 of the paper).
#pragma once

#include <array>

#include "common/check.hpp"
#include <string>

namespace dfv::mon {

/// MPI routines that dominate the four applications' profiles.
enum class MpiRoutine : int {
  Allreduce = 0,
  Barrier,
  Wait,
  Waitall,
  Test,
  Testall,
  Iprobe,
  Isend,
  Irecv,
  Other,
};

inline constexpr int kNumRoutines = 10;

[[nodiscard]] const char* routine_name(MpiRoutine r);

/// Accumulated profile of one application run.
struct MpiProfile {
  double compute_s = 0.0;
  std::array<double, kNumRoutines> routine_s{};

  void add_compute(double s) noexcept { compute_s += s; }
  void add(MpiRoutine r, double s) noexcept { routine_s[std::size_t(enum_int(r))] += s; }
  void add(const MpiProfile& other) noexcept;

  [[nodiscard]] double mpi_s() const noexcept;
  [[nodiscard]] double total_s() const noexcept { return compute_s + mpi_s(); }
  /// Fraction of total time spent inside MPI (0 when no time recorded).
  [[nodiscard]] double mpi_fraction() const noexcept;
  [[nodiscard]] double routine(MpiRoutine r) const noexcept {
    return routine_s[std::size_t(enum_int(r))];
  }
};

}  // namespace dfv::mon
