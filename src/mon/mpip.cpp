#include "mon/mpip.hpp"

namespace dfv::mon {

const char* routine_name(MpiRoutine r) {
  switch (r) {
    case MpiRoutine::Allreduce: return "Allreduce";
    case MpiRoutine::Barrier: return "Barrier";
    case MpiRoutine::Wait: return "Wait";
    case MpiRoutine::Waitall: return "Waitall";
    case MpiRoutine::Test: return "Test";
    case MpiRoutine::Testall: return "Testall";
    case MpiRoutine::Iprobe: return "Iprobe";
    case MpiRoutine::Isend: return "Isend";
    case MpiRoutine::Irecv: return "Irecv";
    case MpiRoutine::Other: return "Other";
  }
  return "?";
}

void MpiProfile::add(const MpiProfile& other) noexcept {
  compute_s += other.compute_s;
  for (int i = 0; i < kNumRoutines; ++i) routine_s[std::size_t(i)] += other.routine_s[std::size_t(i)];
}

double MpiProfile::mpi_s() const noexcept {
  double s = 0.0;
  for (double v : routine_s) s += v;
  return s;
}

double MpiProfile::mpi_fraction() const noexcept {
  const double t = total_s();
  return t > 0.0 ? mpi_s() / t : 0.0;
}

}  // namespace dfv::mon
