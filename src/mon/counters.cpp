#include "mon/counters.hpp"

#include "common/check.hpp"

namespace dfv::mon {

namespace {
constexpr CounterInfo kCatalog[kNumCounters] = {
    {"AR_RTR_INQ_PRF_INCOMING_FLIT_TOTAL", "RT_FLIT_TOT",
     "(Derived) Total number of flits received on router tile", true},
    {"AR_RTR_INQ_PRF_INCOMING_PKT_TOTAL", "RT_PKT_TOT",
     "(Derived) Total number of packets received on router tile", true},
    {"AR_RTR_INQ_PRF_ROWBUS_2X_USAGE_CNT", "RT_RB_2X_USG",
     "Number of cycles in which two stalls occur on a router tile", false},
    {"AR_RTR_INQ_PRF_ROWBUS_STALL_CNT", "RT_RB_STL",
     "Total number of cycles stalled on router tile", false},
    {"AR_RTR_PT_COLBUF_PERF_STALL_RQ", "PT_CB_STL_RQ",
     "Number of cycles a processor tile is stalled for request VCs", false},
    {"AR_RTR_PT_COLBUF_PERF_STALL_RS", "PT_CB_STL_RS",
     "Number of cycles a processor tile is stalled for response VCs", false},
    {"AR_RTR_PT_INQ_PRF_INCOMING_FLIT_VC0", "PT_FLIT_VC0",
     "Number of flits received on processor tile on VC0", false},
    {"AR_RTR_PT_INQ_PRF_INCOMING_FLIT_VC4", "PT_FLIT_VC4",
     "Number of flits received on processor tile on VC4", false},
    {"AR_RTR_PT_INQ_PRF_INCOMING_FLIT_TOTAL", "PT_FLIT_TOT",
     "(Derived) Total number of flits received on processor tile", true},
    {"AR_RTR_PT_INQ_PRF_INCOMING_PKT_TOTAL", "PT_PKT_TOT",
     "(Derived) Total number of packets received on processor tile", true},
    {"AR_RTR_PT_INQ_PRF_REQ_ROWBUS_STALL_CNT", "PT_RB_STL_RQ",
     "Number of cycles stalled on processor tile request VCs", false},
    {"AR_RTR_PT_INQ_PRF_RSP_ROWBUS_STALL_CNT", "PT_RB_STL_RS",
     "Number of cycles stalled on processor tile response VCs", false},
    {"AR_RTR_PT_INQ_PRF_ROWBUS_2X_USAGE_CNT", "PT_RB_2X_USG",
     "Number of cycles in which two stalls occur on a processor tile", false},
};

constexpr const char* kIoNames[kNumIoFeatures] = {
    "IO_RT_FLIT_TOT", "IO_RT_RB_STL", "IO_PT_FLIT_TOT", "IO_PT_PKT_TOT"};
constexpr const char* kSysNames[kNumSysFeatures] = {
    "SYS_RT_FLIT_TOT", "SYS_RT_RB_STL", "SYS_PT_FLIT_TOT", "SYS_PT_PKT_TOT"};
}  // namespace

const CounterInfo& counter_info(Counter c) {
  const int i = enum_int(c);
  DFV_CHECK(i >= 0 && i < kNumCounters);
  return kCatalog[i];
}

const char* counter_name(Counter c) { return counter_info(c).abbrev; }

Counter counter_from_index(int i) {
  DFV_CHECK(i >= 0 && i < kNumCounters);
  return static_cast<Counter>(i);
}

std::span<const char* const> ldms_io_feature_names() {
  return {kIoNames, kNumIoFeatures};
}

std::span<const char* const> ldms_sys_feature_names() {
  return {kSysNames, kNumSysFeatures};
}

}  // namespace dfv::mon
