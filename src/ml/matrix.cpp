#include "ml/matrix.hpp"

#include <cmath>

#include "common/check.hpp"

namespace dfv::ml {

std::vector<double> Matrix::col(std::size_t c) const {
  DFV_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::append_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  DFV_CHECK_MSG(values.size() == cols_, "appending row of width " << values.size()
                                                                  << " to matrix with "
                                                                  << cols_ << " columns");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

Matrix Matrix::select_rows(std::span<const std::size_t> idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    DFV_CHECK(idx[i] < rows_);
    const auto src = row(idx[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

Matrix Matrix::select_cols(std::span<const std::size_t> idx) const {
  Matrix out(rows_, idx.size());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t i = 0; i < idx.size(); ++i) {
      DFV_CHECK(idx[i] < cols_);
      out(r, i) = (*this)(r, idx[i]);
    }
  return out;
}

Matrix Matrix::gram() const {
  // Tiled upper-triangle accumulation: the (i, j) output tile stays
  // cache-resident while all rows stream past it, which matters for the
  // wide matrices the attention/linear solvers produce. Every cell still
  // sums rows in ascending order into a single accumulator, so the
  // result is bit-identical to the naive triple loop. (The old
  // `xi == 0.0` skip was a branch-per-element pessimization on dense
  // standardized data and is gone.)
  constexpr std::size_t kTile = 64;
  Matrix g(cols_, cols_);
  for (std::size_t ib = 0; ib < cols_; ib += kTile) {
    const std::size_t i_hi = std::min(cols_, ib + kTile);
    for (std::size_t jb = ib; jb < cols_; jb += kTile) {
      const std::size_t j_hi = std::min(cols_, jb + kTile);
      for (std::size_t r = 0; r < rows_; ++r) {
        const double* x = data_.data() + r * cols_;
        for (std::size_t i = ib; i < i_hi; ++i) {
          const double xi = x[i];
          double* gi = g.data().data() + i * cols_;
          for (std::size_t j = std::max(i, jb); j < j_hi; ++j) gi[j] += xi * x[j];
        }
      }
    }
  }
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

std::vector<double> Matrix::tdot(std::span<const double> y) const {
  DFV_CHECK(y.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  // Rows are register-blocked in fours: each out[c] is read and written
  // once per block instead of once per row, while its additions keep the
  // exact ascending-row order of the naive loop (bit-identical result).
  std::size_t r = 0;
  for (; r + 4 <= rows_; r += 4) {
    const double* x0 = data_.data() + r * cols_;
    const double* x1 = x0 + cols_;
    const double* x2 = x1 + cols_;
    const double* x3 = x2 + cols_;
    const double y0 = y[r], y1 = y[r + 1], y2 = y[r + 2], y3 = y[r + 3];
    for (std::size_t c = 0; c < cols_; ++c) {
      double acc = out[c];
      acc += x0[c] * y0;
      acc += x1[c] * y1;
      acc += x2[c] * y2;
      acc += x3[c] * y3;
      out[c] = acc;
    }
  }
  for (; r < rows_; ++r) {
    const double* x = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += x[c] * y[r];
  }
  return out;
}

std::vector<double> Matrix::dot(std::span<const double> w) const {
  DFV_CHECK(w.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  // Four rows share each w[c] load; every row keeps its own accumulator
  // summed in ascending column order (bit-identical to the naive loop).
  std::size_t r = 0;
  for (; r + 4 <= rows_; r += 4) {
    const double* x0 = data_.data() + r * cols_;
    const double* x1 = x0 + cols_;
    const double* x2 = x1 + cols_;
    const double* x3 = x2 + cols_;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      const double wc = w[c];
      s0 += x0[c] * wc;
      s1 += x1[c] * wc;
      s2 += x2[c] * wc;
      s3 += x3[c] * wc;
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < rows_; ++r) {
    const double* x = data_.data() + r * cols_;
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += x[c] * w[c];
    out[r] = s;
  }
  return out;
}

std::vector<double> cholesky_solve(Matrix& a, std::vector<double> b) {
  const std::size_t n = a.rows();
  DFV_CHECK(a.cols() == n && b.size() == n);
  // In-place Cholesky: A = L L^T (lower triangle of `a` becomes L).
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    DFV_CHECK_MSG(d > 0.0, "matrix not positive definite at pivot " << j);
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  // Forward substitution: L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a(i, k) * b[k];
    b[i] = s / a(i, i);
  }
  // Back substitution: L^T x = z.
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= a(k, i) * b[k];
    b[i] = s / a(i, i);
  }
  return b;
}

}  // namespace dfv::ml
