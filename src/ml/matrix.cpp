#include "ml/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace dfv::ml {

std::vector<double> Matrix::col(std::size_t c) const {
  DFV_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::append_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  DFV_CHECK_MSG(values.size() == cols_, "appending row of width " << values.size()
                                                                  << " to matrix with "
                                                                  << cols_ << " columns");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

Matrix Matrix::select_rows(std::span<const std::size_t> idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    DFV_CHECK(idx[i] < rows_);
    const auto src = row(idx[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

Matrix Matrix::select_cols(std::span<const std::size_t> idx) const {
  Matrix out(rows_, idx.size());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t i = 0; i < idx.size(); ++i) {
      DFV_CHECK(idx[i] < cols_);
      out(r, i) = (*this)(r, idx[i]);
    }
  return out;
}

Matrix Matrix::gram() const {
  // Tiled upper-triangle accumulation: the (i, j) output tile stays
  // cache-resident while all rows stream past it, which matters for the
  // wide matrices the attention/linear solvers produce. Every cell still
  // sums rows in ascending order into a single accumulator, so the
  // result is bit-identical to the naive triple loop. (The old
  // `xi == 0.0` skip was a branch-per-element pessimization on dense
  // standardized data and is gone.)
  constexpr std::size_t kTile = 64;
  Matrix g(cols_, cols_);
  for (std::size_t ib = 0; ib < cols_; ib += kTile) {
    const std::size_t i_hi = std::min(cols_, ib + kTile);
    for (std::size_t jb = ib; jb < cols_; jb += kTile) {
      const std::size_t j_hi = std::min(cols_, jb + kTile);
      for (std::size_t r = 0; r < rows_; ++r) {
        const double* x = data_.data() + r * cols_;
        for (std::size_t i = ib; i < i_hi; ++i) {
          const double xi = x[i];
          double* gi = g.data().data() + i * cols_;
          for (std::size_t j = std::max(i, jb); j < j_hi; ++j) gi[j] += xi * x[j];
        }
      }
    }
  }
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

std::vector<double> Matrix::tdot(std::span<const double> y) const {
  DFV_CHECK(y.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  // Rows are register-blocked in fours: each out[c] is read and written
  // once per block instead of once per row, while its additions keep the
  // exact ascending-row order of the naive loop (bit-identical result).
  std::size_t r = 0;
  for (; r + 4 <= rows_; r += 4) {
    const double* x0 = data_.data() + r * cols_;
    const double* x1 = x0 + cols_;
    const double* x2 = x1 + cols_;
    const double* x3 = x2 + cols_;
    const double y0 = y[r], y1 = y[r + 1], y2 = y[r + 2], y3 = y[r + 3];
    for (std::size_t c = 0; c < cols_; ++c) {
      double acc = out[c];
      acc += x0[c] * y0;
      acc += x1[c] * y1;
      acc += x2[c] * y2;
      acc += x3[c] * y3;
      out[c] = acc;
    }
  }
  for (; r < rows_; ++r) {
    const double* x = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += x[c] * y[r];
  }
  return out;
}

std::vector<double> Matrix::dot(std::span<const double> w) const {
  DFV_CHECK(w.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  // Four rows share each w[c] load; every row keeps its own accumulator
  // summed in ascending column order (bit-identical to the naive loop).
  std::size_t r = 0;
  for (; r + 4 <= rows_; r += 4) {
    const double* x0 = data_.data() + r * cols_;
    const double* x1 = x0 + cols_;
    const double* x2 = x1 + cols_;
    const double* x3 = x2 + cols_;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      const double wc = w[c];
      s0 += x0[c] * wc;
      s1 += x1[c] * wc;
      s2 += x2[c] * wc;
      s3 += x3[c] * wc;
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < rows_; ++r) {
    const double* x = data_.data() + r * cols_;
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += x[c] * w[c];
    out[r] = s;
  }
  return out;
}

std::vector<const double*> row_pointers(const Matrix& x) {
  DFV_CHECK(x.rows() == 0 || x.cols() > 0);
  std::vector<const double*> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = x.row(r).data();
  return out;
}

// Per-ISA clones of the batched kernels: the container toolchain targets
// baseline x86-64, but the fleet CPUs have AVX2/AVX-512, so the hot
// loops dispatch at load time via ifunc. Combined with the ml-target
// -ffp-contract=off this is numerically safe: every clone executes the
// same unfused IEEE mul/add sequence, just more lanes per instruction.
// Clones are disabled under ThreadSanitizer: the ifunc resolvers run
// during relocation processing, before the TSan runtime has set up its
// TLS, and the instrumented resolver segfaults at startup. The default
// clone is bit-identical anyway, so TSan loses nothing but lanes.
#if defined(__SANITIZE_THREAD__)
#define DFV_ML_KERNEL
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DFV_ML_KERNEL
#endif
#endif
#if !defined(DFV_ML_KERNEL) && defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define DFV_ML_KERNEL __attribute__((target_clones("avx512f", "avx2", "default")))
#endif
#endif
#ifndef DFV_ML_KERNEL
#define DFV_ML_KERNEL
#endif

namespace {

// Fixed-width workers for the two GEMM-shaped kernels. The attention
// shapes put 12..23 doubles on the vectorized inner loop; with the trip
// count known at compile time GCC fully unrolls it and keeps the
// register-blocked accumulators in vector registers, instead of paying
// a runtime-trip prologue/epilogue on every iteration of the reduction
// loop. always_inline makes each instantiation compile *inside* the
// per-ISA clone that calls it, so it inherits that clone's target ISA.
// Accumulation order per output element is identical to the generic
// loops (ascending reduction index); only the interleaving across
// independent output elements changes, which cannot affect any result.
#define DFV_ML_INLINE inline __attribute__((always_inline))

template <std::size_t D>
DFV_ML_INLINE void affine_rows_fixed(const double* __restrict x, std::size_t n, std::size_t f,
                                     const double* __restrict wt, const double* __restrict init,
                                     std::size_t init_period, double* __restrict out) {
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const double* x0 = x + r * f;
    const double* x1 = x0 + f;
    const double* x2 = x1 + f;
    const double* x3 = x2 + f;
    const bool p = init_period > 1;
    const double* i0 = init + (p ? (r % init_period) * D : 0);
    const double* i1 = init + (p ? ((r + 1) % init_period) * D : 0);
    const double* i2 = init + (p ? ((r + 2) % init_period) * D : 0);
    const double* i3 = init + (p ? ((r + 3) % init_period) * D : 0);
    double a0[D], a1[D], a2[D], a3[D];
    for (std::size_t j = 0; j < D; ++j) {
      a0[j] = i0[j];
      a1[j] = i1[j];
      a2[j] = i2[j];
      a3[j] = i3[j];
    }
    for (std::size_t c = 0; c < f; ++c) {
      const double b0 = x0[c], b1 = x1[c], b2 = x2[c], b3 = x3[c];
      const double* wc = wt + c * D;
      for (std::size_t j = 0; j < D; ++j) {
        a0[j] += b0 * wc[j];
        a1[j] += b1 * wc[j];
        a2[j] += b2 * wc[j];
        a3[j] += b3 * wc[j];
      }
    }
    double* o = out + r * D;
    for (std::size_t j = 0; j < D; ++j) {
      o[j] = a0[j];
      o[j + D] = a1[j];
      o[j + 2 * D] = a2[j];
      o[j + 3 * D] = a3[j];
    }
  }
  for (; r < n; ++r) {
    const double* xr = x + r * f;
    const double* ir = init + (init_period > 1 ? (r % init_period) * D : 0);
    double a[D];
    for (std::size_t j = 0; j < D; ++j) a[j] = ir[j];
    for (std::size_t c = 0; c < f; ++c) {
      const double xc = xr[c];
      const double* wc = wt + c * D;
      for (std::size_t j = 0; j < D; ++j) a[j] += xc * wc[j];
    }
    double* o = out + r * D;
    for (std::size_t j = 0; j < D; ++j) o[j] = a[j];
  }
}

template <std::size_t D>
DFV_ML_INLINE void add_matmul_tn_fixed(const double* __restrict a, std::size_t n, std::size_t k,
                                       const double* __restrict b, double* __restrict out) {
  // i-outer / r-inner: each pair of out rows lives in registers across
  // the whole reduction; every out[i, j] still adds its r terms in
  // ascending order, exactly like the generic r-outer loop.
  std::size_t i = 0;
  for (; i + 2 <= k; i += 2) {
    double* p0 = out + i * D;
    double* p1 = p0 + D;
    double o0[D], o1[D];
    for (std::size_t j = 0; j < D; ++j) {
      o0[j] = p0[j];
      o1[j] = p1[j];
    }
    for (std::size_t r = 0; r < n; ++r) {
      const double a0 = a[r * k + i], a1 = a[r * k + i + 1];
      const double* br = b + r * D;
      for (std::size_t j = 0; j < D; ++j) {
        o0[j] += a0 * br[j];
        o1[j] += a1 * br[j];
      }
    }
    for (std::size_t j = 0; j < D; ++j) {
      p0[j] = o0[j];
      p1[j] = o1[j];
    }
  }
  for (; i < k; ++i) {
    double* p = out + i * D;
    double o[D];
    for (std::size_t j = 0; j < D; ++j) o[j] = p[j];
    for (std::size_t r = 0; r < n; ++r) {
      const double ar = a[r * k + i];
      const double* br = b + r * D;
      for (std::size_t j = 0; j < D; ++j) o[j] += ar * br[j];
    }
    for (std::size_t j = 0; j < D; ++j) p[j] = o[j];
  }
}

template <std::size_t D>
DFV_ML_INLINE void matmul_nn_fixed(const double* __restrict a, std::size_t n, std::size_t k,
                                   const double* __restrict w, double* __restrict out) {
  for (std::size_t r = 0; r < n; ++r) {
    const double* ar = a + r * k;
    double o[D];
    for (std::size_t j = 0; j < D; ++j) o[j] = 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double ak = ar[kk];
      const double* wk = w + kk * D;
      for (std::size_t j = 0; j < D; ++j) o[j] += ak * wk[j];
    }
    double* orow = out + r * D;
    for (std::size_t j = 0; j < D; ++j) orow[j] = o[j];
  }
}

}  // namespace

DFV_ML_KERNEL
void affine_rows(const double* __restrict x, std::size_t n, std::size_t f, const double* __restrict wt,
                 std::size_t d, const double* __restrict init, std::size_t init_period,
                 double* __restrict out) {
  // Fixed-width fast paths for the widths the attention model uses
  // (d_model, d_hidden defaults and nearby); the generic loop handles
  // anything else with the same per-element accumulation order.
  switch (d) {
    case 8: return affine_rows_fixed<8>(x, n, f, wt, init, init_period, out);
    case 12: return affine_rows_fixed<12>(x, n, f, wt, init, init_period, out);
    case 16: return affine_rows_fixed<16>(x, n, f, wt, init, init_period, out);
    case 24: return affine_rows_fixed<24>(x, n, f, wt, init, init_period, out);
    case 32: return affine_rows_fixed<32>(x, n, f, wt, init, init_period, out);
    default: break;
  }
  // c-outer / j-inner so the j loop vectorizes over the output row; each
  // out[r, j] still receives its products in ascending c on top of the
  // init seed, exactly like the scalar j-outer dot-product loop.
  for (std::size_t r = 0; r < n; ++r) {
    const double* xr = x + r * f;
    const double* ir = init + (init_period > 1 ? (r % init_period) * d : 0);
    double* o = out + r * d;
    for (std::size_t j = 0; j < d; ++j) o[j] = ir[j];
    for (std::size_t c = 0; c < f; ++c) {
      const double xc = xr[c];
      const double* wc = wt + c * d;
      for (std::size_t j = 0; j < d; ++j) o[j] += xc * wc[j];
    }
  }
}

DFV_ML_KERNEL
void matvec_rows(const double* __restrict x, std::size_t n, std::size_t f, const double* __restrict w,
                 double init, double* __restrict y) {
  // Four rows share each w[c] load; per-row accumulators keep ascending
  // column order (same recipe as Matrix::dot).
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const double* x0 = x + r * f;
    const double* x1 = x0 + f;
    const double* x2 = x1 + f;
    const double* x3 = x2 + f;
    double s0 = init, s1 = init, s2 = init, s3 = init;
    for (std::size_t c = 0; c < f; ++c) {
      const double wc = w[c];
      s0 += x0[c] * wc;
      s1 += x1[c] * wc;
      s2 += x2[c] * wc;
      s3 += x3[c] * wc;
    }
    y[r] = s0;
    y[r + 1] = s1;
    y[r + 2] = s2;
    y[r + 3] = s3;
  }
  for (; r < n; ++r) {
    const double* xr = x + r * f;
    double s = init;
    for (std::size_t c = 0; c < f; ++c) s += xr[c] * w[c];
    y[r] = s;
  }
}

DFV_ML_KERNEL
void matmul_nn(const double* __restrict a, std::size_t n, std::size_t k, const double* __restrict w,
               std::size_t d, double* __restrict out) {
  switch (d) {
    case 8: return matmul_nn_fixed<8>(a, n, k, w, out);
    case 12: return matmul_nn_fixed<12>(a, n, k, w, out);
    case 16: return matmul_nn_fixed<16>(a, n, k, w, out);
    default: break;
  }
  for (std::size_t r = 0; r < n; ++r) {
    const double* ar = a + r * k;
    double* o = out + r * d;
    for (std::size_t j = 0; j < d; ++j) o[j] = 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double ak = ar[kk];
      const double* wk = w + kk * d;
      for (std::size_t j = 0; j < d; ++j) o[j] += ak * wk[j];
    }
  }
}

DFV_ML_KERNEL
void add_matmul_tn(const double* __restrict a, std::size_t n, std::size_t k, const double* __restrict b,
                   std::size_t d, double* __restrict out) {
  // Fixed-width fast paths for the widths the attention model feeds in
  // (d_model and the per-feature-set window widths); same per-element
  // accumulation order as the generic loop below.
  switch (d) {
    case 12: return add_matmul_tn_fixed<12>(a, n, k, b, out);
    case 13: return add_matmul_tn_fixed<13>(a, n, k, b, out);
    case 15: return add_matmul_tn_fixed<15>(a, n, k, b, out);
    case 16: return add_matmul_tn_fixed<16>(a, n, k, b, out);
    case 19: return add_matmul_tn_fixed<19>(a, n, k, b, out);
    case 23: return add_matmul_tn_fixed<23>(a, n, k, b, out);
    default: break;
  }
  // r-outer keeps every out[i, j] accumulating in ascending r; the j
  // loop vectorizes and out rows stay cache-resident (k*d is small for
  // the attention shapes).
  for (std::size_t r = 0; r < n; ++r) {
    const double* ar = a + r * k;
    const double* br = b + r * d;
    for (std::size_t i = 0; i < k; ++i) {
      const double ai = ar[i];
      double* o = out + i * d;
      for (std::size_t j = 0; j < d; ++j) o[j] += ai * br[j];
    }
  }
}

DFV_ML_KERNEL
void add_tdot(const double* __restrict x, std::size_t n, std::size_t c, const double* __restrict y,
              double* __restrict out) {
  // Same 4-row register blocking as Matrix::tdot, accumulating into the
  // caller's buffer: each out[j] adds rows in ascending order.
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const double* x0 = x + r * c;
    const double* x1 = x0 + c;
    const double* x2 = x1 + c;
    const double* x3 = x2 + c;
    const double y0 = y[r], y1 = y[r + 1], y2 = y[r + 2], y3 = y[r + 3];
    for (std::size_t j = 0; j < c; ++j) {
      double acc = out[j];
      acc += x0[j] * y0;
      acc += x1[j] * y1;
      acc += x2[j] * y2;
      acc += x3[j] * y3;
      out[j] = acc;
    }
  }
  for (; r < n; ++r) {
    const double* xr = x + r * c;
    for (std::size_t j = 0; j < c; ++j) out[j] += xr[j] * y[r];
  }
}

DFV_ML_KERNEL
void add_colsum_periodic(const double* __restrict x, std::size_t n, std::size_t d,
                         std::size_t period, double* __restrict out) {
  for (std::size_t r = 0; r < n; ++r) {
    const double* xr = x + r * d;
    double* o = out + (period > 1 ? (r % period) * d : 0);
    for (std::size_t j = 0; j < d; ++j) o[j] += xr[j];
  }
}

DFV_ML_KERNEL
void dot_rows_grouped(const double* __restrict x, std::size_t n, std::size_t d,
                      const double* __restrict y, std::size_t group,
                      double* __restrict out) {
  // Rows of one group share the y vector; four independent per-row
  // accumulator chains keep each dot in ascending j.
  for (std::size_t base = 0, gi = 0; base < n; base += group, ++gi) {
    const double* yr = y + gi * d;
    const std::size_t lim = std::min(group, n - base);
    std::size_t r = 0;
    for (; r + 4 <= lim; r += 4) {
      const double* x0 = x + (base + r) * d;
      const double* x1 = x0 + d;
      const double* x2 = x1 + d;
      const double* x3 = x2 + d;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double yj = yr[j];
        s0 += x0[j] * yj;
        s1 += x1[j] * yj;
        s2 += x2[j] * yj;
        s3 += x3[j] * yj;
      }
      out[base + r] = s0;
      out[base + r + 1] = s1;
      out[base + r + 2] = s2;
      out[base + r + 3] = s3;
    }
    for (; r < lim; ++r) {
      const double* xr = x + (base + r) * d;
      double s = 0.0;
      for (std::size_t j = 0; j < d; ++j) s += xr[j] * yr[j];
      out[base + r] = s;
    }
  }
}

DFV_ML_KERNEL
void attn_dembed(const double* __restrict a, const double* __restrict b,
                 const double* __restrict yg, const double* __restrict q, std::size_t n,
                 std::size_t d, std::size_t group, double* __restrict de) {
  for (std::size_t r = 0; r < n; ++r) {
    const double ar = a[r], br = b[r];
    const double* yr = yg + (r / group) * d;
    double* o = de + r * d;
    for (std::size_t j = 0; j < d; ++j) o[j] = ar * yr[j] + br * q[j];
  }
}

DFV_ML_KERNEL
void tanh_backward_rows(const double* __restrict e, std::size_t n, double* __restrict de) {
  for (std::size_t i = 0; i < n; ++i) de[i] = de[i] * (1.0 - e[i] * e[i]);
}

DFV_ML_KERNEL
void acc_add(double* __restrict dst, const double* __restrict src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

DFV_ML_KERNEL
void adam_step(double* __restrict w, const double* __restrict g, double* __restrict m1,
               double* __restrict m2, std::size_t n, double lr, double wd, double b1,
               double b2, double bc1, double bc2, double eps) {
  for (std::size_t i = 0; i < n; ++i) {
    const double gi = g[i] + wd * w[i];
    m1[i] = b1 * m1[i] + (1.0 - b1) * gi;
    m2[i] = b2 * m2[i] + (1.0 - b2) * gi * gi;
    w[i] -= lr * (m1[i] / bc1) / (std::sqrt(m2[i] / bc2) + eps);
  }
}

DFV_ML_KERNEL
void tanh_rows(const double* __restrict z, std::size_t n, double* __restrict out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = tanh_poly(z[i]);
  for (std::size_t i = 0; i < n; ++i)
    if (std::fabs(z[i]) >= 3.0) out[i] = tanh_tail(z[i]);
}

std::vector<double> cholesky_solve(Matrix& a, std::vector<double> b) {
  const std::size_t n = a.rows();
  DFV_CHECK(a.cols() == n && b.size() == n);
  // In-place Cholesky: A = L L^T (lower triangle of `a` becomes L).
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    DFV_CHECK_MSG(d > 0.0, "matrix not positive definite at pivot " << j);
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  // Forward substitution: L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a(i, k) * b[k];
    b[i] = s / a(i, i);
  }
  // Back substitution: L^T x = z.
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= a(k, i) * b[k];
    b[i] = s / a(i, i);
  }
  return b;
}

}  // namespace dfv::ml
