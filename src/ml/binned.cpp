#include "ml/binned.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "exec/exec.hpp"

namespace dfv::ml {

const Matrix& BinnedDataset::source() const {
  DFV_CHECK_MSG(x_ != nullptr,
                "BinnedDataset: external-memory view has no source matrix");
  return *x_;
}

BinnedDataset::BinnedDataset(std::vector<std::vector<double>> edges,
                             const std::uint8_t* codes, std::size_t rows)
    : rows_(rows), features_(edges.size()), edges_(std::move(edges)),
      external_codes_(codes) {
  DFV_CHECK(rows_ > 0 && features_ > 0);
  DFV_CHECK(codes != nullptr);
}

BinnedDataset::BinnedDataset(const Matrix& x, int bins)
    : x_(&x), rows_(x.rows()), features_(x.cols()) {
  DFV_CHECK(rows_ > 0);
  DFV_CHECK(bins >= 2 && bins <= 256);
  edges_.assign(features_, {});
  codes_.assign(rows_ * features_, 0);

  // Features are independent: each task computes one feature's quantile
  // edges and writes that feature's disjoint code slab, so the parallel
  // build is trivially bit-identical to the serial one.
  const std::size_t stride = std::max<std::size_t>(1, rows_ / 4096);
  exec::parallel_for(0, features_, 1, [&](std::size_t f_lo, std::size_t f_hi) {
    std::vector<double> vals;
    for (std::size_t f = f_lo; f < f_hi; ++f) {
      vals.clear();
      for (std::size_t r = 0; r < rows_; r += stride) vals.push_back((*x_)(r, f));
      std::sort(vals.begin(), vals.end());
      auto& edges = edges_[f];
      for (std::size_t b = 1; b < std::size_t(bins); ++b) {
        const double q = double(b) / double(bins);
        const double v =
            vals[std::min(vals.size() - 1, std::size_t(q * double(vals.size())))];
        if (edges.empty() || v > edges.back()) edges.push_back(v);
      }
      std::uint8_t* codes = codes_.data() + f * rows_;
      for (std::size_t r = 0; r < rows_; ++r) {
        const auto it =
            std::lower_bound(edges.begin(), edges.end(), (*x_)(r, f));
        codes[r] = std::uint8_t(it - edges.begin());
      }
    }
  });
}

}  // namespace dfv::ml
