// Regression metrics. The paper reports MAPE (mean absolute percentage
// error) for both deviation prediction and forecasting.
#pragma once

#include <span>

namespace dfv::ml {

/// Mean absolute percentage error in percent. Targets with |y| below
/// `floor` are excluded (MAPE is undefined at zero).
[[nodiscard]] double mape(std::span<const double> y_true, std::span<const double> y_pred,
            double floor = 1e-12);

[[nodiscard]] double mae(std::span<const double> y_true, std::span<const double> y_pred);
[[nodiscard]] double rmse(std::span<const double> y_true, std::span<const double> y_pred);

/// Coefficient of determination; 1 is perfect, 0 matches predicting the
/// mean, negative is worse than the mean.
[[nodiscard]] double r2(std::span<const double> y_true, std::span<const double> y_pred);

}  // namespace dfv::ml
