#include "ml/attention.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "ml/metrics.hpp"

namespace dfv::ml {

struct AttentionForecaster::Workspace {
  // Forward activations for one sample.
  std::vector<double> x;       ///< standardized window, m x F (time-major)
  std::vector<double> embed;   ///< m x d (post-tanh)
  std::vector<double> scores;  ///< m
  std::vector<double> alpha;   ///< m (softmax)
  std::vector<double> context; ///< d
  std::vector<double> hidden;  ///< h (post-ReLU)
  double y_hat = 0.0;

  // Gradient accumulators (same shapes as the parameters).
  std::vector<double> g_w_embed, g_b_embed, g_pos_embed, g_query, g_w_head, g_b_head,
      g_w_out;
  double g_b_out = 0.0;

  // Backward scratch.
  std::vector<double> d_embed, d_context, d_hidden_pre, d_scores;
};

AttentionForecaster::AttentionForecaster(int m, int feat_dim, AttentionParams params)
    : m_(m), feat_dim_(feat_dim), params_(params) {
  DFV_CHECK(m >= 1 && feat_dim >= 1);
  DFV_CHECK(params_.d_model >= 1 && params_.d_hidden >= 1);
  const std::size_t d = std::size_t(params_.d_model);
  const std::size_t h = std::size_t(params_.d_hidden);
  const std::size_t f = std::size_t(feat_dim_);

  Rng rng(params_.seed);
  auto init = [&rng](std::vector<double>& w, std::size_t n, double scale) {
    w.resize(n);
    for (double& v : w) v = scale * (2.0 * rng.uniform() - 1.0);
  };
  init(w_embed_, d * f, 1.0 / std::sqrt(double(f)));
  init(b_embed_, d, 0.01);
  init(pos_embed_, std::size_t(m) * d, 0.3);
  init(query_, d, 1.0 / std::sqrt(double(d)));
  init(w_head_, h * d, 1.0 / std::sqrt(double(d)));
  init(b_head_, h, 0.01);
  init(w_out_, h, 1.0 / std::sqrt(double(h)));
  b_out_ = 0.0;
}

double AttentionForecaster::forward(std::span<const double> window, Workspace& ws) const {
  const std::size_t d = std::size_t(params_.d_model);
  const std::size_t h = std::size_t(params_.d_hidden);
  const std::size_t f = std::size_t(feat_dim_);
  const std::size_t m = std::size_t(m_);
  const double inv_sqrt_d = 1.0 / std::sqrt(double(d));

  ws.embed.assign(m * d, 0.0);
  ws.scores.assign(m, 0.0);
  ws.alpha.assign(m, 0.0);
  ws.context.assign(d, 0.0);
  ws.hidden.assign(h, 0.0);

  // Embed each time step with a learned positional encoding:
  // e_i = tanh(W_e x_i + b_e + p_i). Without the p_i term the attention
  // readout could not distinguish recent from old history.
  for (std::size_t i = 0; i < m; ++i) {
    const double* xi = window.data() + i * f;
    for (std::size_t j = 0; j < d; ++j) {
      double s = b_embed_[j] + pos_embed_[i * d + j];
      const double* wrow = w_embed_.data() + j * f;
      for (std::size_t c = 0; c < f; ++c) s += wrow[c] * xi[c];
      ws.embed[i * d + j] = std::tanh(s);
    }
  }
  // Scalar dot-product attention with a learned query.
  double max_score = -1e30;
  for (std::size_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < d; ++j) s += query_[j] * ws.embed[i * d + j];
    ws.scores[i] = s * inv_sqrt_d;
    max_score = std::max(max_score, ws.scores[i]);
  }
  double z = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    ws.alpha[i] = std::exp(ws.scores[i] - max_score);
    z += ws.alpha[i];
  }
  for (std::size_t i = 0; i < m; ++i) ws.alpha[i] /= z;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < d; ++j) ws.context[j] += ws.alpha[i] * ws.embed[i * d + j];

  // FC head: hidden = relu(W_h c + b_h), y = w_o . hidden + b_o.
  double y = b_out_;
  for (std::size_t k = 0; k < h; ++k) {
    double s = b_head_[k];
    const double* wrow = w_head_.data() + k * d;
    for (std::size_t j = 0; j < d; ++j) s += wrow[j] * ws.context[j];
    ws.hidden[k] = s > 0.0 ? s : 0.0;
    y += w_out_[k] * ws.hidden[k];
  }
  ws.y_hat = y;
  return y;
}

void AttentionForecaster::fit(const Matrix& x, std::span<const double> y) {
  DFV_CHECK(x.rows() == y.size());
  DFV_CHECK(x.cols() == std::size_t(m_) * std::size_t(feat_dim_));
  DFV_CHECK(x.rows() >= 2);

  Matrix xs = x;  // standardized copy
  scaler_.fit(xs);
  scaler_.transform(xs);
  scaler_.fit_target(y);

  const std::size_t n = xs.rows();
  const std::size_t d = std::size_t(params_.d_model);
  const std::size_t h = std::size_t(params_.d_hidden);
  const std::size_t f = std::size_t(feat_dim_);
  const std::size_t m = std::size_t(m_);
  const double inv_sqrt_d = 1.0 / std::sqrt(double(d));

  Workspace ws;
  ws.g_w_embed.assign(w_embed_.size(), 0.0);
  ws.g_b_embed.assign(b_embed_.size(), 0.0);
  ws.g_pos_embed.assign(pos_embed_.size(), 0.0);
  ws.g_query.assign(query_.size(), 0.0);
  ws.g_w_head.assign(w_head_.size(), 0.0);
  ws.g_b_head.assign(b_head_.size(), 0.0);
  ws.g_w_out.assign(w_out_.size(), 0.0);

  // Adam state, one slot per parameter vector (+1 scalar for b_out).
  struct AdamSlot {
    std::vector<double> m1, m2;
  };
  std::vector<double*> param_ptrs = {w_embed_.data(), b_embed_.data(),
                                     pos_embed_.data(), query_.data(),
                                     w_head_.data(),  b_head_.data(),  w_out_.data()};
  std::vector<double*> grad_ptrs = {ws.g_w_embed.data(), ws.g_b_embed.data(),
                                    ws.g_pos_embed.data(), ws.g_query.data(),
                                    ws.g_w_head.data(),  ws.g_b_head.data(),
                                    ws.g_w_out.data()};
  std::vector<std::size_t> sizes = {w_embed_.size(), b_embed_.size(),
                                    pos_embed_.size(), query_.size(),
                                    w_head_.size(),  b_head_.size(),  w_out_.size()};
  std::vector<AdamSlot> adam(sizes.size());
  for (std::size_t p = 0; p < sizes.size(); ++p) {
    adam[p].m1.assign(sizes[p], 0.0);
    adam[p].m2.assign(sizes[p], 0.0);
  }
  double b_out_m1 = 0.0, b_out_m2 = 0.0;
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  long adam_t = 0;

  Rng rng(hash_combine(params_.seed, 0xf17));
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  ws.d_embed.assign(m * d, 0.0);
  ws.d_context.assign(d, 0.0);
  ws.d_hidden_pre.assign(h, 0.0);
  ws.d_scores.assign(m, 0.0);

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < n; start += std::size_t(params_.batch)) {
      const std::size_t end = std::min(n, start + std::size_t(params_.batch));
      const double inv_b = 1.0 / double(end - start);

      for (std::size_t p = 0; p < sizes.size(); ++p)
        std::fill(grad_ptrs[p], grad_ptrs[p] + sizes[p], 0.0);
      ws.g_b_out = 0.0;

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t row = order[bi];
        const auto window = xs.row(row);
        forward(window, ws);
        const double target = scaler_.transform_target(y[row]);
        const double dy = 2.0 * (ws.y_hat - target) * inv_b;

        // ---- backward ----
        ws.g_b_out += dy;
        std::fill(ws.d_context.begin(), ws.d_context.end(), 0.0);
        for (std::size_t k = 0; k < h; ++k) {
          ws.g_w_out[k] += dy * ws.hidden[k];
          const double dh = dy * w_out_[k];
          const double dpre = ws.hidden[k] > 0.0 ? dh : 0.0;
          ws.g_b_head[k] += dpre;
          double* gw = ws.g_w_head.data() + k * d;
          const double* wrow = w_head_.data() + k * d;
          for (std::size_t j = 0; j < d; ++j) {
            gw[j] += dpre * ws.context[j];
            ws.d_context[j] += dpre * wrow[j];
          }
        }
        // context = sum_i alpha_i e_i
        std::fill(ws.d_embed.begin(), ws.d_embed.end(), 0.0);
        double alpha_dot = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          double da = 0.0;
          for (std::size_t j = 0; j < d; ++j) {
            da += ws.d_context[j] * ws.embed[i * d + j];
            ws.d_embed[i * d + j] += ws.alpha[i] * ws.d_context[j];
          }
          ws.d_scores[i] = da;  // temporarily d(alpha_i)
          alpha_dot += ws.alpha[i] * da;
        }
        // softmax backward
        for (std::size_t i = 0; i < m; ++i)
          ws.d_scores[i] = ws.alpha[i] * (ws.d_scores[i] - alpha_dot);
        // scores = (q . e_i) / sqrt(d)
        for (std::size_t i = 0; i < m; ++i) {
          const double ds = ws.d_scores[i] * inv_sqrt_d;
          for (std::size_t j = 0; j < d; ++j) {
            ws.g_query[j] += ds * ws.embed[i * d + j];
            ws.d_embed[i * d + j] += ds * query_[j];
          }
        }
        // embed = tanh(W_e x_i + b_e)
        const double* xw = window.data();
        for (std::size_t i = 0; i < m; ++i) {
          const double* xi = xw + i * f;
          for (std::size_t j = 0; j < d; ++j) {
            const double e = ws.embed[i * d + j];
            const double dz = ws.d_embed[i * d + j] * (1.0 - e * e);
            if (dz == 0.0) continue;
            ws.g_b_embed[j] += dz;
            ws.g_pos_embed[i * d + j] += dz;
            double* gw = ws.g_w_embed.data() + j * f;
            for (std::size_t c = 0; c < f; ++c) gw[c] += dz * xi[c];
          }
        }
      }

      // ---- Adam update ----
      ++adam_t;
      const double bc1 = 1.0 - std::pow(kBeta1, double(adam_t));
      const double bc2 = 1.0 - std::pow(kBeta2, double(adam_t));
      for (std::size_t p = 0; p < sizes.size(); ++p) {
        double* w = param_ptrs[p];
        double* g = grad_ptrs[p];
        auto& slot = adam[p];
        for (std::size_t i = 0; i < sizes[p]; ++i) {
          const double grad = g[i] + params_.weight_decay * w[i];
          slot.m1[i] = kBeta1 * slot.m1[i] + (1.0 - kBeta1) * grad;
          slot.m2[i] = kBeta2 * slot.m2[i] + (1.0 - kBeta2) * grad * grad;
          w[i] -= params_.lr * (slot.m1[i] / bc1) / (std::sqrt(slot.m2[i] / bc2) + kEps);
        }
      }
      b_out_m1 = kBeta1 * b_out_m1 + (1.0 - kBeta1) * ws.g_b_out;
      b_out_m2 = kBeta2 * b_out_m2 + (1.0 - kBeta2) * ws.g_b_out * ws.g_b_out;
      b_out_ -= params_.lr * (b_out_m1 / bc1) / (std::sqrt(b_out_m2 / bc2) + kEps);
    }
  }
}

double AttentionForecaster::predict_one(std::span<const double> window) const {
  DFV_CHECK(window.size() == std::size_t(m_) * std::size_t(feat_dim_));
  // Standardize the window with the training statistics.
  std::vector<double> z(window.size());
  const auto& mu = scaler_.means();
  const auto& sd = scaler_.stddevs();
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = (window[i] - mu[i]) / sd[i];
  Workspace ws;
  const double y_std = forward(z, ws);
  return scaler_.inverse_target(y_std);
}

std::vector<double> AttentionForecaster::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_one(x.row(r));
  return out;
}

std::vector<double> AttentionForecaster::attention_weights(
    std::span<const double> window) const {
  std::vector<double> z(window.size());
  const auto& mu = scaler_.means();
  const auto& sd = scaler_.stddevs();
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = (window[i] - mu[i]) / sd[i];
  Workspace ws;
  forward(z, ws);
  return ws.alpha;
}

std::vector<double> AttentionForecaster::permutation_importance(const Matrix& x,
                                                                std::span<const double> y,
                                                                Rng& rng,
                                                                int repeats) const {
  DFV_CHECK(x.rows() == y.size());
  const std::size_t F = std::size_t(feat_dim_);
  const std::vector<double> base_pred = predict(x);
  const double base_err = mape(y, base_pred);

  std::vector<double> importance(F, 0.0);
  std::vector<std::size_t> perm(x.rows());
  for (std::size_t f = 0; f < F; ++f) {
    double acc = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      rng.shuffle(perm);
      Matrix xp = x;
      // Shuffle feature f at every time position simultaneously.
      for (std::size_t r = 0; r < x.rows(); ++r)
        for (int t = 0; t < m_; ++t) {
          const std::size_t col = std::size_t(t) * F + f;
          xp(r, col) = x(perm[r], col);
        }
      acc += std::max(0.0, mape(y, predict(xp)) - base_err);
    }
    importance[f] = acc / double(repeats);
  }
  const double total = std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0.0)
    for (double& v : importance) v /= total;
  return importance;
}

}  // namespace dfv::ml
