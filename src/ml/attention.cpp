#include "ml/attention.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/check.hpp"
#include "exec/exec.hpp"
#include "ml/compiled.hpp"
#include "ml/metrics.hpp"

namespace dfv::ml {

namespace {

/// Samples per gradient slab. Every minibatch is cut into fixed
/// kSlabRows-sample slabs; each slab's forward/backward runs as one task
/// and produces a private partial gradient, and the partials combine in
/// ascending slab order. The slab structure is part of the training
/// semantics — the batched and the per-sample reference path both use
/// it — so results are bit-identical for any thread count and between
/// the two paths.
constexpr std::size_t kSlabRows = 8;

/// Offsets of each parameter's gradient inside the flat per-slab arena.
struct GradLayout {
  std::size_t w_embed, b_embed, pos, query, w_head, b_head, w_out, b_out, total;
  GradLayout(std::size_t m, std::size_t d, std::size_t h, std::size_t f) {
    w_embed = 0;
    b_embed = w_embed + d * f;
    pos = b_embed + d;
    query = pos + m * d;
    w_head = query + d;
    b_head = w_head + h * d;
    w_out = b_head + h;
    b_out = w_out + h;
    total = b_out + 1;
  }
};

}  // namespace

struct AttentionForecaster::Workspace {
  // Forward activations for up to kSlabRows samples (row-major slabs).
  std::vector<double> xs;       ///< S x (m*f) standardized windows
  std::vector<double> pre;      ///< (S*m) x d embed pre-activations
  std::vector<double> embed;    ///< (S*m) x d post-tanh
  std::vector<double> scores;   ///< S x m
  std::vector<double> alpha;    ///< S x m (softmax)
  std::vector<double> context;  ///< S x d
  std::vector<double> hidden;   ///< S x h (post-ReLU)
  std::vector<double> y_hat;    ///< S
  std::vector<double> tz;       ///< S standardized targets
  std::vector<double> dy;       ///< S loss gradients

  // Backward scratch + the slab's private flat gradient.
  std::vector<double> d_embed;   ///< (S*m) x d; reused in place for dz
  std::vector<double> d_context; ///< S x d
  std::vector<double> d_pre;     ///< S x h
  std::vector<double> d_scores;  ///< S x m (slab-wide d(alpha)/d(score) scratch)
  std::vector<double> grad;      ///< GradLayout::total

  // Shared per-minibatch tables (owned by the caller, same for all slabs).
  const double* wt_embed = nullptr;   ///< f x d transposed embed weights
  const double* wt_head = nullptr;    ///< d x h transposed head weights
  const double* init_embed = nullptr; ///< m x d (b_embed + pos_embed)
  double inv_b = 1.0;                 ///< 1 / minibatch size

  void init(std::size_t S, std::size_t m, std::size_t d, std::size_t h,
            std::size_t f, std::size_t gsize) {
    xs.resize(S * m * f);
    pre.resize(S * m * d);
    embed.resize(S * m * d);
    scores.resize(S * m);
    alpha.resize(S * m);
    context.resize(S * d);
    hidden.resize(S * h);
    y_hat.resize(S);
    tz.resize(S);
    dy.resize(S);
    d_embed.resize(S * m * d);
    d_context.resize(S * d);
    d_pre.resize(S * h);
    d_scores.resize(S * m);
    grad.resize(gsize);
  }
};

AttentionForecaster::AttentionForecaster(int m, int feat_dim, AttentionParams params)
    : m_(m), feat_dim_(feat_dim), params_(params) {
  DFV_CHECK(m >= 1 && feat_dim >= 1);
  DFV_CHECK(params_.d_model >= 1 && params_.d_hidden >= 1);
  const std::size_t d = std::size_t(params_.d_model);
  const std::size_t h = std::size_t(params_.d_hidden);
  const std::size_t f = std::size_t(feat_dim_);

  Rng rng(params_.seed);
  auto init = [&rng](std::vector<double>& w, std::size_t n, double scale) {
    w.resize(n);
    for (double& v : w) v = scale * (2.0 * rng.uniform() - 1.0);
  };
  init(w_embed_, d * f, 1.0 / std::sqrt(double(f)));
  init(b_embed_, d, 0.01);
  init(pos_embed_, std::size_t(m) * d, 0.3);
  init(query_, d, 1.0 / std::sqrt(double(d)));
  init(w_head_, h * d, 1.0 / std::sqrt(double(d)));
  init(b_head_, h, 0.01);
  init(w_out_, h, 1.0 / std::sqrt(double(h)));
  b_out_ = 0.0;
}

void AttentionForecaster::forward_slab(Workspace& ws, std::size_t rows) const {
  const std::size_t d = std::size_t(params_.d_model);
  const std::size_t h = std::size_t(params_.d_hidden);
  const std::size_t f = std::size_t(feat_dim_);
  const std::size_t m = std::size_t(m_);
  const double inv_sqrt_d = 1.0 / std::sqrt(double(d));
  const std::size_t steps = rows * m;
  DFV_CHECK(rows >= 1 && ws.xs.size() >= steps * f);

  // e_(b,i) = tanh(W_e x_(b,i) + b_e + p_i): all the slab's steps go
  // through the blocked kernels as one (rows*m) x f operand.
  affine_rows(ws.xs.data(), steps, f, ws.wt_embed, d, ws.init_embed, m,
              ws.pre.data());
  tanh_rows(ws.pre.data(), steps * d, ws.embed.data());

  // scores = (q . e_i) / sqrt(d), then per-sample softmax + context.
  matvec_rows(ws.embed.data(), steps, d, query_.data(), 0.0, ws.scores.data());
  for (std::size_t i = 0; i < steps; ++i) ws.scores[i] *= inv_sqrt_d;
  for (std::size_t b = 0; b < rows; ++b) {
    const double* sc = ws.scores.data() + b * m;
    double* al = ws.alpha.data() + b * m;
    double max_score = -1e30;
    for (std::size_t i = 0; i < m; ++i) max_score = std::max(max_score, sc[i]);
    double z = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      al[i] = std::exp(sc[i] - max_score);
      z += al[i];
    }
    for (std::size_t i = 0; i < m; ++i) al[i] /= z;
    // ctx = alpha (1 x m) * embed_b (m x d): zero-seeded, i ascending —
    // exactly the scalar accumulation loop.
    matmul_nn(al, 1, m, ws.embed.data() + b * m * d, d, ws.context.data() + b * d);
  }

  // FC head: hidden = relu(W_h c + b_h), y = b_o + w_o . hidden.
  affine_rows(ws.context.data(), rows, d, ws.wt_head, h, b_head_.data(), 1,
              ws.hidden.data());
  for (std::size_t i = 0; i < rows * h; ++i)
    ws.hidden[i] = ws.hidden[i] > 0.0 ? ws.hidden[i] : 0.0;
  matvec_rows(ws.hidden.data(), rows, h, w_out_.data(), b_out_, ws.y_hat.data());
}

void AttentionForecaster::backward_slab(Workspace& ws, std::size_t rows) const {
  const std::size_t d = std::size_t(params_.d_model);
  const std::size_t h = std::size_t(params_.d_hidden);
  const std::size_t f = std::size_t(feat_dim_);
  const std::size_t m = std::size_t(m_);
  const double inv_sqrt_d = 1.0 / std::sqrt(double(d));
  const std::size_t steps = rows * m;
  DFV_CHECK(rows >= 1 && ws.xs.size() >= steps * f);
  const GradLayout L(m, d, h, f);
  double* g = ws.grad.data();

  // Head backward. Each gradient element accumulates samples in
  // ascending order, matching the reference loop element for element.
  for (std::size_t b = 0; b < rows; ++b) g[L.b_out] += ws.dy[b];
  add_tdot(ws.hidden.data(), rows, h, ws.dy.data(), g + L.w_out);
  for (std::size_t b = 0; b < rows; ++b) {
    const double dyb = ws.dy[b];
    const double* hb = ws.hidden.data() + b * h;
    double* dp = ws.d_pre.data() + b * h;
    for (std::size_t k = 0; k < h; ++k)
      dp[k] = hb[k] > 0.0 ? dyb * w_out_[k] : 0.0;
  }
  add_colsum_periodic(ws.d_pre.data(), rows, h, 1, g + L.b_head);
  add_matmul_tn(ws.d_pre.data(), rows, h, ws.context.data(), d, g + L.w_head);
  matmul_nn(ws.d_pre.data(), rows, h, w_head_.data(), d, ws.d_context.data());

  // Attention backward (softmax + scores). Staged through kernels:
  // da[b,i] = ctxg_b . e_(b,i) (j ascending), the m-element softmax
  // Jacobian per sample stays scalar, then the embed gradient and the
  // query gradient run as one slab-wide pass each.
  double* ds = ws.d_scores.data();
  dot_rows_grouped(ws.embed.data(), steps, d, ws.d_context.data(), m, ds);
  for (std::size_t b = 0; b < rows; ++b) {
    const double* al = ws.alpha.data() + b * m;
    double* dab = ds + b * m;
    double alpha_dot = 0.0;
    for (std::size_t i = 0; i < m; ++i) alpha_dot += al[i] * dab[i];
    // dsc = al * (da - alpha_dot), then the 1/sqrt(d) score scale — the
    // same two multiplications, in the same order, as the scalar path.
    for (std::size_t i = 0; i < m; ++i) dab[i] = al[i] * (dab[i] - alpha_dot) * inv_sqrt_d;
  }
  // de = alpha * ctxg + ds * q (the scalar path's write-then-add pair),
  // and g_query accumulates ds-weighted embeddings in ascending (b, i).
  attn_dembed(ws.alpha.data(), ds, ws.d_context.data(), query_.data(), steps, d, m,
              ws.d_embed.data());
  add_matmul_tn(ds, steps, 1, ws.embed.data(), d, g + L.query);

  // Embed backward: dz = d_embed * (1 - e^2) in place, then the three
  // gradient reductions over all the slab's steps.
  tanh_backward_rows(ws.embed.data(), steps * d, ws.d_embed.data());
  add_colsum_periodic(ws.d_embed.data(), steps, d, 1, g + L.b_embed);
  add_colsum_periodic(ws.d_embed.data(), steps, d, m, g + L.pos);
  add_matmul_tn(ws.d_embed.data(), steps, d, ws.xs.data(), f, g + L.w_embed);
}

void AttentionForecaster::slab_reference(Workspace& ws, std::size_t rows) const {
  // The retained per-sample scalar path: identical math to
  // forward_slab/backward_slab (same activation functions, same
  // per-element accumulation orders, same slab-private gradient), just
  // written as the textbook loops. Tests pin bit-equality of the two.
  const std::size_t d = std::size_t(params_.d_model);
  const std::size_t h = std::size_t(params_.d_hidden);
  const std::size_t f = std::size_t(feat_dim_);
  const std::size_t m = std::size_t(m_);
  const double inv_sqrt_d = 1.0 / std::sqrt(double(d));
  const GradLayout L(m, d, h, f);
  double* g = ws.grad.data();
  DFV_CHECK(rows >= 1 && ws.xs.size() >= rows * m * f);

  for (std::size_t b = 0; b < rows; ++b) {
    const double* xw = ws.xs.data() + b * m * f;
    double* embed = ws.embed.data() + b * m * d;
    double* alpha = ws.alpha.data() + b * m;
    double* scores = ws.scores.data() + b * m;
    double* context = ws.context.data() + b * d;
    double* hidden = ws.hidden.data() + b * h;

    // ---- forward ----
    for (std::size_t i = 0; i < m; ++i) {
      const double* xi = xw + i * f;
      for (std::size_t j = 0; j < d; ++j) {
        double s = b_embed_[j] + pos_embed_[i * d + j];
        const double* wrow = w_embed_.data() + j * f;
        for (std::size_t c = 0; c < f; ++c) s += wrow[c] * xi[c];
        embed[i * d + j] = fast_tanh(s);
      }
    }
    double max_score = -1e30;
    for (std::size_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < d; ++j) s += query_[j] * embed[i * d + j];
      scores[i] = s * inv_sqrt_d;
      max_score = std::max(max_score, scores[i]);
    }
    double z = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      alpha[i] = std::exp(scores[i] - max_score);
      z += alpha[i];
    }
    for (std::size_t i = 0; i < m; ++i) alpha[i] /= z;
    for (std::size_t j = 0; j < d; ++j) context[j] = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < d; ++j) context[j] += alpha[i] * embed[i * d + j];
    double y = b_out_;
    for (std::size_t k = 0; k < h; ++k) {
      double s = b_head_[k];
      const double* wrow = w_head_.data() + k * d;
      for (std::size_t j = 0; j < d; ++j) s += wrow[j] * context[j];
      hidden[k] = s > 0.0 ? s : 0.0;
      y += w_out_[k] * hidden[k];
    }
    ws.y_hat[b] = y;
    const double dy = 2.0 * (y - ws.tz[b]) * ws.inv_b;
    ws.dy[b] = dy;

    // ---- backward ----
    g[L.b_out] += dy;
    double* d_context = ws.d_context.data();
    std::fill(d_context, d_context + d, 0.0);
    for (std::size_t k = 0; k < h; ++k) {
      g[L.w_out + k] += dy * hidden[k];
      const double dh = dy * w_out_[k];
      const double dpre = hidden[k] > 0.0 ? dh : 0.0;
      g[L.b_head + k] += dpre;
      double* gw = g + L.w_head + k * d;
      const double* wrow = w_head_.data() + k * d;
      for (std::size_t j = 0; j < d; ++j) {
        gw[j] += dpre * context[j];
        d_context[j] += dpre * wrow[j];
      }
    }
    double* d_embed = ws.d_embed.data();
    double* d_scores = ws.d_scores.data();
    double alpha_dot = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      double da = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        da += d_context[j] * embed[i * d + j];
        d_embed[i * d + j] = alpha[i] * d_context[j];
      }
      d_scores[i] = da;  // temporarily d(alpha_i)
      alpha_dot += alpha[i] * da;
    }
    for (std::size_t i = 0; i < m; ++i)
      d_scores[i] = alpha[i] * (d_scores[i] - alpha_dot);
    for (std::size_t i = 0; i < m; ++i) {
      const double ds = d_scores[i] * inv_sqrt_d;
      for (std::size_t j = 0; j < d; ++j) {
        g[L.query + j] += ds * embed[i * d + j];
        d_embed[i * d + j] += ds * query_[j];
      }
    }
    // embed = tanh(W_e x_i + b_e + p_i); note: no dz == 0 skip — the
    // blocked kernels accumulate every term, and skipping exact zeros
    // would flip ±0.0 sums in the last bit.
    for (std::size_t i = 0; i < m; ++i) {
      const double* xi = xw + i * f;
      for (std::size_t j = 0; j < d; ++j) {
        const double e = embed[i * d + j];
        const double dz = d_embed[i * d + j] * (1.0 - e * e);
        g[L.b_embed + j] += dz;
        g[L.pos + i * d + j] += dz;
        double* gw = g + L.w_embed + j * f;
        for (std::size_t c = 0; c < f; ++c) gw[c] += dz * xi[c];
      }
    }
  }
}

void AttentionForecaster::fit_impl(const RowBatch& x, std::span<const double> y,
                                   bool batched) {
  const std::size_t n = x.size();
  DFV_CHECK(n == y.size());
  DFV_CHECK(x.row_len() == std::size_t(m_) * std::size_t(feat_dim_));
  DFV_CHECK(n >= 2);

  scaler_.fit(x);
  scaler_.fit_target(y);

  const std::size_t d = std::size_t(params_.d_model);
  const std::size_t h = std::size_t(params_.d_hidden);
  const std::size_t f = std::size_t(feat_dim_);
  const std::size_t m = std::size_t(m_);
  const std::size_t mf = m * f;
  const GradLayout L(m, d, h, f);

  // Standardize every window once into a contiguous buffer; the
  // per-epoch minibatch gather is then a plain row copy. Elementwise, so
  // parallel chunking cannot change any value.
  const auto& mu = scaler_.means();
  const auto& sd = scaler_.stddevs();
  std::vector<double> xstd(n * mf);
  exec::parallel_for(0, n, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      double* row = xstd.data() + r * mf;
      x.gather(r, row);
      for (std::size_t c = 0; c < mf; ++c) row[c] = (row[c] - mu[c]) / sd[c];
    }
  });
  std::vector<double> tz(n);
  for (std::size_t i = 0; i < n; ++i) tz[i] = scaler_.transform_target(y[i]);

  // Per-slab arenas (slab s of every minibatch reuses arena s).
  const std::size_t batch = std::size_t(params_.batch);
  const std::size_t max_slabs = (batch + kSlabRows - 1) / kSlabRows;
  std::vector<Workspace> slabs(max_slabs);
  for (Workspace& ws : slabs) ws.init(kSlabRows, m, d, h, f, L.total);

  // Kernel-side weight tables, refreshed after every Adam step.
  std::vector<double> wt_embed(f * d), wt_head(d * h), init_embed(m * d);
  auto refresh_tables = [&] {
    for (std::size_t j = 0; j < d; ++j)
      for (std::size_t c = 0; c < f; ++c) wt_embed[c * d + j] = w_embed_[j * f + c];
    for (std::size_t k = 0; k < h; ++k)
      for (std::size_t j = 0; j < d; ++j) wt_head[j * h + k] = w_head_[k * d + j];
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < d; ++j)
        init_embed[i * d + j] = b_embed_[j] + pos_embed_[i * d + j];
  };

  // Adam over the flat gradient; b_out is excluded from weight decay.
  struct Region {
    double* w;
    std::size_t off, size;
    bool decay;
  };
  const Region regions[] = {
      {w_embed_.data(), L.w_embed, d * f, true},
      {b_embed_.data(), L.b_embed, d, true},
      {pos_embed_.data(), L.pos, m * d, true},
      {query_.data(), L.query, d, true},
      {w_head_.data(), L.w_head, h * d, true},
      {b_head_.data(), L.b_head, h, true},
      {w_out_.data(), L.w_out, h, true},
      {&b_out_, L.b_out, 1, false},
  };
  std::vector<double> grad(L.total), am1(L.total, 0.0), am2(L.total, 0.0);
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  long adam_t = 0;

  Rng rng(hash_combine(params_.seed, 0xf17));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t(0));

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < n; start += batch) {
      const std::size_t end = std::min(n, start + batch);
      const std::size_t bsz = end - start;
      const double inv_b = 1.0 / double(bsz);
      const std::size_t nslabs = (bsz + kSlabRows - 1) / kSlabRows;
      refresh_tables();

      // One task per slab; each writes only its own arena.
      exec::parallel_for(0, nslabs, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          Workspace& ws = slabs[s];
          const std::size_t sb = start + s * kSlabRows;
          const std::size_t rows = std::min(kSlabRows, end - sb);
          ws.wt_embed = wt_embed.data();
          ws.wt_head = wt_head.data();
          ws.init_embed = init_embed.data();
          ws.inv_b = inv_b;
          for (std::size_t b = 0; b < rows; ++b) {
            const std::size_t row = order[sb + b];
            std::memcpy(ws.xs.data() + b * mf, xstd.data() + row * mf,
                        mf * sizeof(double));
            ws.tz[b] = tz[row];
          }
          std::fill(ws.grad.begin(), ws.grad.end(), 0.0);
          if (batched) {
            forward_slab(ws, rows);
            for (std::size_t b = 0; b < rows; ++b)
              ws.dy[b] = 2.0 * (ws.y_hat[b] - ws.tz[b]) * inv_b;
            backward_slab(ws, rows);
          } else {
            slab_reference(ws, rows);
          }
        }
      });

      // Combine slab partials in ascending slab order.
      std::fill(grad.begin(), grad.end(), 0.0);
      for (std::size_t s = 0; s < nslabs; ++s)
        acc_add(grad.data(), slabs[s].grad.data(), L.total);

      // ---- Adam update ----
      ++adam_t;
      const double bc1 = 1.0 - std::pow(kBeta1, double(adam_t));
      const double bc2 = 1.0 - std::pow(kBeta2, double(adam_t));
      for (const Region& reg : regions) {
        const double wd = reg.decay ? params_.weight_decay : 0.0;
        adam_step(reg.w, grad.data() + reg.off, am1.data() + reg.off,
                  am2.data() + reg.off, reg.size, params_.lr, wd, kBeta1, kBeta2,
                  bc1, bc2, kEps);
      }
    }
  }
}

void AttentionForecaster::fit(const Matrix& x, std::span<const double> y) {
  DFV_CHECK(x.rows() == y.size());
  const auto ptrs = row_pointers(x);
  fit_impl(RowBatch{ptrs, 1, x.cols(), x.cols()}, y, /*batched=*/true);
}

void AttentionForecaster::fit(const RowBatch& x, std::span<const double> y) {
  fit_impl(x, y, /*batched=*/true);
}

void AttentionForecaster::fit_reference(const Matrix& x, std::span<const double> y) {
  DFV_CHECK(x.rows() == y.size());
  const auto ptrs = row_pointers(x);
  fit_impl(RowBatch{ptrs, 1, x.cols(), x.cols()}, y, /*batched=*/false);
}

std::vector<double> AttentionForecaster::predict(const RowBatch& x) const {
  // The compiled snapshot packs the same operand tables this body builds
  // per call and replays the same kernel sequence — bit-identical, just
  // without the per-call transpose work.
  if (compiled_enabled()) return compile().predict_many(x);
  const std::size_t d = std::size_t(params_.d_model);
  const std::size_t h = std::size_t(params_.d_hidden);
  const std::size_t f = std::size_t(feat_dim_);
  const std::size_t m = std::size_t(m_);
  const std::size_t mf = m * f;
  DFV_CHECK(x.row_len() == mf);
  const std::size_t n = x.size();
  const GradLayout L(m, d, h, f);

  std::vector<double> wt_embed(f * d), wt_head(d * h), init_embed(m * d);
  for (std::size_t j = 0; j < d; ++j)
    for (std::size_t c = 0; c < f; ++c) wt_embed[c * d + j] = w_embed_[j * f + c];
  for (std::size_t k = 0; k < h; ++k)
    for (std::size_t j = 0; j < d; ++j) wt_head[j * h + k] = w_head_[k * d + j];
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < d; ++j)
      init_embed[i * d + j] = b_embed_[j] + pos_embed_[i * d + j];

  const auto& mu = scaler_.means();
  const auto& sd = scaler_.stddevs();
  std::vector<double> out(n);
  // Rows are independent through the whole forward pass (the 4-row
  // blocking keeps per-row accumulators), so any chunking gives the
  // same bits; chunks only amortize the arena.
  exec::parallel_for(0, n, 4 * kSlabRows, [&](std::size_t lo, std::size_t hi) {
    Workspace ws;
    ws.init(kSlabRows, m, d, h, f, L.total);
    ws.wt_embed = wt_embed.data();
    ws.wt_head = wt_head.data();
    ws.init_embed = init_embed.data();
    for (std::size_t s = lo; s < hi; s += kSlabRows) {
      const std::size_t rows = std::min(kSlabRows, hi - s);
      for (std::size_t b = 0; b < rows; ++b) {
        double* row = ws.xs.data() + b * mf;
        x.gather(s + b, row);
        for (std::size_t c = 0; c < mf; ++c) row[c] = (row[c] - mu[c]) / sd[c];
      }
      forward_slab(ws, rows);
      for (std::size_t b = 0; b < rows; ++b)
        out[s + b] = scaler_.inverse_target(ws.y_hat[b]);
    }
  });
  return out;
}

std::vector<double> AttentionForecaster::predict(const Matrix& x) const {
  DFV_CHECK(x.cols() == std::size_t(m_) * std::size_t(feat_dim_));
  const auto ptrs = row_pointers(x);
  return predict(RowBatch{ptrs, 1, x.cols(), x.cols()});
}

double AttentionForecaster::predict_one(std::span<const double> window) const {
  DFV_CHECK(window.size() == std::size_t(m_) * std::size_t(feat_dim_));
  const double* base = window.data();
  return predict(RowBatch{{&base, 1}, 1, window.size(), window.size()})[0];
}

std::vector<double> AttentionForecaster::attention_weights(
    std::span<const double> window) const {
  DFV_CHECK(window.size() == std::size_t(m_) * std::size_t(feat_dim_));
  const std::size_t d = std::size_t(params_.d_model);
  const std::size_t h = std::size_t(params_.d_hidden);
  const std::size_t f = std::size_t(feat_dim_);
  const std::size_t m = std::size_t(m_);
  const GradLayout L(m, d, h, f);

  std::vector<double> wt_embed(f * d), wt_head(d * h), init_embed(m * d);
  for (std::size_t j = 0; j < d; ++j)
    for (std::size_t c = 0; c < f; ++c) wt_embed[c * d + j] = w_embed_[j * f + c];
  for (std::size_t k = 0; k < h; ++k)
    for (std::size_t j = 0; j < d; ++j) wt_head[j * h + k] = w_head_[k * d + j];
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < d; ++j)
      init_embed[i * d + j] = b_embed_[j] + pos_embed_[i * d + j];

  Workspace ws;
  ws.init(1, m, d, h, f, L.total);
  ws.wt_embed = wt_embed.data();
  ws.wt_head = wt_head.data();
  ws.init_embed = init_embed.data();
  const auto& mu = scaler_.means();
  const auto& sd = scaler_.stddevs();
  for (std::size_t i = 0; i < window.size(); ++i)
    ws.xs[i] = (window[i] - mu[i]) / sd[i];
  forward_slab(ws, 1);
  return {ws.alpha.begin(), ws.alpha.begin() + long(m)};
}

std::vector<double> AttentionForecaster::permutation_importance(const Matrix& x,
                                                                std::span<const double> y,
                                                                Rng& rng,
                                                                int repeats) const {
  DFV_CHECK(x.rows() == y.size());
  const std::size_t F = std::size_t(feat_dim_);
  const std::vector<double> base_pred = predict(x);
  const double base_err = mape(y, base_pred);

  // One working copy for the whole scan: shuffle feature f's columns in
  // place, predict, then restore them from the original (the old path
  // copied the full design matrix per feature per repeat).
  Matrix xp = x;
  const auto ptrs = row_pointers(xp);
  const RowBatch rb{ptrs, 1, xp.cols(), xp.cols()};
  std::vector<double> importance(F, 0.0);
  std::vector<std::size_t> perm(x.rows());
  for (std::size_t f = 0; f < F; ++f) {
    double acc = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      rng.shuffle(perm);
      // Shuffle feature f at every time position simultaneously.
      for (std::size_t r = 0; r < x.rows(); ++r)
        for (int t = 0; t < m_; ++t) {
          const std::size_t col = std::size_t(t) * F + f;
          xp(r, col) = x(perm[r], col);
        }
      acc += std::max(0.0, mape(y, predict(rb)) - base_err);
      for (std::size_t r = 0; r < x.rows(); ++r)
        for (int t = 0; t < m_; ++t) {
          const std::size_t col = std::size_t(t) * F + f;
          xp(r, col) = x(r, col);
        }
    }
    importance[f] = acc / double(repeats);
  }
  const double total = std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0.0)
    for (double& v : importance) v /= total;
  return importance;
}

}  // namespace dfv::ml
