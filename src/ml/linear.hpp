// Ridge-regularized linear regression: the baseline prior work used for
// counter-to-performance mapping (Groves et al. 2017, §VI) against which
// the GBR models are compared.
#pragma once

#include <vector>

#include "ml/matrix.hpp"

namespace dfv::ml {

class LinearRegression {
 public:
  explicit LinearRegression(double ridge = 1e-6) : ridge_(ridge) {}

  void fit(const Matrix& x, std::span<const double> y);
  [[nodiscard]] double predict_one(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;

  [[nodiscard]] const std::vector<double>& weights() const noexcept { return w_; }
  [[nodiscard]] double intercept() const noexcept { return b_; }

 private:
  double ridge_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace dfv::ml
