// Bin-once training substrate for the GBR stack: quantile bin edges and
// feature-major uint8 bin codes computed a single time per training
// matrix, then shared by every tree of a boosted fit (row-index views)
// and by every RFE stage/fold (feature masks). This removes the
// per-tree O(n·F·log bins) rebinning and the per-stage O(n·F)
// `select_cols` copies that used to dominate `rfe_cv`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace dfv::ml {

/// Which columns of a BinnedDataset a fit may split on. Trees fitted
/// under a mask keep reporting splits/gains in the *global* feature
/// index space, so masked models predict straight from full-width rows
/// and no column-subset matrix ever needs to be materialized.
struct FeatureMask {
  std::vector<std::uint8_t> active;  ///< size = features, nonzero = usable

  [[nodiscard]] static FeatureMask all(std::size_t features) {
    FeatureMask m;
    m.active.assign(features, 1);
    return m;
  }
  [[nodiscard]] static FeatureMask of(std::size_t features,
                                      std::span<const std::size_t> keep) {
    FeatureMask m;
    m.active.assign(features, 0);
    for (std::size_t f : keep) m.active[f] = 1;
    return m;
  }

  [[nodiscard]] bool test(std::size_t f) const noexcept { return active[f] != 0; }
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t c = 0;
    for (std::uint8_t a : active) c += a != 0;
    return c;
  }
};

/// Quantile-binned view of a matrix: per-feature ascending edges plus a
/// feature-major code table (`codes[f * rows + r]` = number of edges of
/// feature f strictly below x(r, f)). Built once; read-only afterwards,
/// so any number of concurrent fits may share one instance. Keeps a
/// pointer to the source matrix, which must outlive the view.
class BinnedDataset {
 public:
  BinnedDataset() = default;
  /// Bin every row of `x` into at most `bins` quantile bins per feature
  /// (edges from a stride-subsampled quantile sketch, exactly the scheme
  /// the per-tree binner used). bins must be in [2, 256].
  BinnedDataset(const Matrix& x, int bins);
  /// External-memory view: per-feature edges plus a caller-owned
  /// feature-major code block of edges.size() * rows codes (e.g. the
  /// column store's mmap'd bin-code region, so GBR/RFE train zero-copy
  /// off disk). The block must outlive the view. No source matrix is
  /// attached: has_source() is false and source() must not be called.
  BinnedDataset(std::vector<std::vector<double>> edges,
                const std::uint8_t* codes, std::size_t rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t features() const noexcept { return features_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }
  /// True when the view was built from an in-RAM Matrix it still points at.
  [[nodiscard]] bool has_source() const noexcept { return x_ != nullptr; }
  /// The backing matrix; contract-checked (external-memory views have none).
  [[nodiscard]] const Matrix& source() const;

  /// Ascending split-candidate values for feature f (size < bins).
  [[nodiscard]] const std::vector<double>& edges(std::size_t f) const {
    return edges_[f];
  }
  [[nodiscard]] std::uint8_t code(std::size_t r, std::size_t f) const {
    return code_block()[f * rows_ + r];
  }
  /// All rows' codes for one feature (the layout node scans iterate).
  [[nodiscard]] std::span<const std::uint8_t> feature_codes(std::size_t f) const {
    return {code_block() + f * rows_, rows_};
  }

 private:
  [[nodiscard]] const std::uint8_t* code_block() const noexcept {
    return external_codes_ != nullptr ? external_codes_ : codes_.data();
  }

  const Matrix* x_ = nullptr;
  std::size_t rows_ = 0, features_ = 0;
  std::vector<std::vector<double>> edges_;  ///< per feature, ascending
  std::vector<std::uint8_t> codes_;         ///< feature-major [f * rows + r]
  const std::uint8_t* external_codes_ = nullptr;  ///< caller-owned, or null
};

}  // namespace dfv::ml
