#include "ml/linear.hpp"

#include "common/check.hpp"
#include "common/stats.hpp"

namespace dfv::ml {

void LinearRegression::fit(const Matrix& x, std::span<const double> y) {
  DFV_CHECK(x.rows() == y.size());
  DFV_CHECK(x.rows() > 0);
  const std::size_t C = x.cols();

  // Center the target; fit weights on centered columns via the normal
  // equations with a ridge term for conditioning.
  std::vector<double> col_mean(C, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < C; ++c) col_mean[c] += row[c];
  }
  for (double& m : col_mean) m /= double(x.rows());
  const double y_mean = stats::mean(y);

  Matrix xc(x.rows(), C);
  std::vector<double> yc(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    auto dst = xc.row(r);
    for (std::size_t c = 0; c < C; ++c) dst[c] = row[c] - col_mean[c];
    yc[r] = y[r] - y_mean;
  }

  Matrix g = xc.gram();
  // Relative ridge: columns may span many orders of magnitude (flit
  // counters ~1e9) and derived counters are exactly collinear, so the
  // regularizer scales with the Gram diagonal.
  double diag_mean = 0.0;
  for (std::size_t i = 0; i < C; ++i) diag_mean += g(i, i);
  diag_mean = diag_mean / double(C) + 1e-12;
  for (std::size_t i = 0; i < C; ++i)
    g(i, i) += ridge_ * (g(i, i) + diag_mean) + 1e-10 * diag_mean;
  w_ = cholesky_solve(g, xc.tdot(yc));
  b_ = y_mean;
  for (std::size_t c = 0; c < C; ++c) b_ -= w_[c] * col_mean[c];
}

double LinearRegression::predict_one(std::span<const double> x) const {
  DFV_CHECK(x.size() == w_.size());
  double s = b_;
  for (std::size_t c = 0; c < w_.size(); ++c) s += w_[c] * x[c];
  return s;
}

std::vector<double> LinearRegression::predict(const Matrix& x) const {
  DFV_CHECK(x.cols() == w_.size());
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_one(x.row(r));
  return out;
}

}  // namespace dfv::ml
