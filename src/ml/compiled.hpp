// Compiled surrogate inference (ROADMAP item 3): serve-rate prediction
// for the fitted models the analysis stack trains once and then queries
// millions of times (SMART frames runtime prediction as a surrogate
// *serving* problem; the longitudinal-monitoring workflow assumes cheap
// repeated predictions over months of telemetry).
//
// A compile step snapshots a fitted model into an inference-only layout:
//
//  - CompiledGbr flattens every tree of a GradientBoostedRegressor into
//    one contiguous preorder node array ({payload, feature, skip, bin}
//    records; learning rate pre-folded into leaf payloads) traversed
//    branch-free over BinnedDataset uint8 codes or raw double rows — no
//    virtual dispatch, no per-tree allocation, no per-tree pointer hop.
//  - CompiledAttention pre-packs the attention operands the reference
//    predict path rebuilds per call (transposed embed/head weights,
//    fused bias + positional-embedding init rows) and rides the same
//    target_clones kernels from matrix.{hpp,cpp}.
//
// Bit-identity contract: every compiled prediction is bit-identical to
// the reference predict_* path for any thread count. Flattening only
// reorders storage; payload = learning_rate * leaf_value is the exact
// IEEE multiply the reference loop performs at query time, and the
// attention forward replays the reference kernel sequence on identical
// operands. tests/test_compiled.cpp pins this with EXPECT_EQ on doubles
// across 1/2/8 threads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/binned.hpp"
#include "ml/matrix.hpp"
#include "ml/scaler.hpp"

namespace dfv::ml {

class GradientBoostedRegressor;
class AttentionForecaster;

/// Process-wide toggle for the compiled inference fast path. Initialized
/// once from the environment (DFV_COMPILED=0/off/false disables; default
/// on) so serve deployments can A/B the compiled path without a rebuild;
/// tests flip it at runtime to compare against the reference path.
/// Because compiled predictions are bit-identical to the reference, the
/// toggle can never change a result — only the route that computes it.
[[nodiscard]] bool compiled_enabled() noexcept;
void set_compiled_enabled(bool on) noexcept;

/// Inference-only snapshot of a fitted GradientBoostedRegressor. Owns no
/// training state; cheap to build (one pass over the fitted trees) and
/// safe to keep after the source model is destroyed.
class CompiledGbr {
 public:
  /// One flattened tree node (24 bytes; the whole default ensemble fits
  /// in a few pages). Children are preorder *skips* from the node itself:
  /// the left child is always the next record (skip 1), the right child
  /// sits one past the left subtree. Leaves skip 0 (self-loop), so a
  /// fixed-depth descent parks on its leaf with no exit branch.
  struct Node {
    double payload = 0.0;       ///< internal: split threshold; leaf: lr * value
    std::int32_t feature = 0;   ///< split feature (leaves: 0, harmless read)
    std::uint32_t left = 0;     ///< skip to left child (1; leaves: 0)
    std::uint32_t right = 0;    ///< skip to right child (leaves: 0)
    std::uint8_t bin = 0;       ///< go left if code(feature) <= bin
  };

  /// Snapshot `model` (which may be unfitted: zero trees compile to an
  /// f0-only predictor, matching the reference).
  explicit CompiledGbr(const GradientBoostedRegressor& model);

  /// Bit-identical to GradientBoostedRegressor::predict_one(x).
  [[nodiscard]] double predict_one(std::span<const double> x) const;
  /// Bit-identical to GradientBoostedRegressor::predict(x).
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;
  /// Bit-identical to GradientBoostedRegressor::predict_binned(data, r).
  [[nodiscard]] double predict_binned(const BinnedDataset& data, std::size_t r) const;
  /// Batched uint8-code prediction for a row view; bit-identical to
  /// predict_rows on the reference model for any thread count (rows are
  /// independent; chunking never changes per-row accumulation order).
  [[nodiscard]] std::vector<double> predict_many(const BinnedDataset& data,
                                                 std::span<const std::size_t> rows) const;

  [[nodiscard]] std::size_t tree_count() const noexcept { return roots_.size(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  /// Highest feature index any split reads (-1 if the ensemble never
  /// splits); callers' rows/views must be wider than this.
  [[nodiscard]] int max_feature() const noexcept { return max_feature_; }

 private:
  void predict_span(const std::uint8_t* codes, std::size_t data_rows,
                    std::span<const std::size_t> rows, std::size_t lo, std::size_t hi,
                    double* out) const;

  std::vector<Node> nodes_;           ///< all trees, preorder, back to back
  std::vector<std::uint32_t> roots_;  ///< root index of each tree in nodes_
  std::vector<std::int32_t> depths_;  ///< fitted depth of each tree
  double f0_ = 0.0;
  int max_feature_ = -1;
};

/// Inference-only snapshot of a fitted AttentionForecaster: the operand
/// packing the reference predict path performs per call (weight
/// transposes, bias + positional-embedding fusion) is done once here, so
/// a resident server pays it at model-build time instead of per request.
class CompiledAttention {
 public:
  /// Reusable forward arena (the per-request predict_one allocation the
  /// serve hot path avoids by keeping one Scratch per resident model).
  /// Plain buffers; sized on first use, only grown after.
  struct Scratch {
    std::vector<double> xs;       ///< S x (m*f) standardized windows
    std::vector<double> pre;      ///< (S*m) x d embed pre-activations
    std::vector<double> embed;    ///< (S*m) x d post-tanh
    std::vector<double> scores;   ///< S x m
    std::vector<double> alpha;    ///< S x m (softmax)
    std::vector<double> context;  ///< S x d
    std::vector<double> hidden;   ///< S x h (post-ReLU)
    std::vector<double> y_hat;    ///< S
  };

  /// Snapshot `model`, which must be fitted (the scaler statistics the
  /// forward pass standardizes with only exist after fit).
  explicit CompiledAttention(const AttentionForecaster& model);

  /// Bit-identical to AttentionForecaster::predict_one(window).
  [[nodiscard]] double predict_one(std::span<const double> window) const;
  /// Same, reusing a caller-owned arena (no allocation after warmup).
  [[nodiscard]] double predict_one(std::span<const double> window, Scratch& ws) const;
  /// Slab-batched prediction over strided window views; bit-identical to
  /// AttentionForecaster::predict(x) for any thread count.
  [[nodiscard]] std::vector<double> predict_many(const RowBatch& x) const;

  [[nodiscard]] int history() const noexcept { return m_; }
  [[nodiscard]] int feat_dim() const noexcept { return feat_dim_; }

 private:
  void ensure(Scratch& ws, std::size_t slab) const;
  void forward(Scratch& ws, std::size_t rows) const;

  int m_ = 0;
  int feat_dim_ = 0;
  std::size_t d_ = 0;  ///< d_model
  std::size_t h_ = 0;  ///< d_hidden
  StandardScaler scaler_;

  // Pre-packed operands (layouts match the reference predict packing).
  std::vector<double> wt_embed_;    ///< f x d transposed embed weights
  std::vector<double> wt_head_;     ///< d x h transposed head weights
  std::vector<double> init_embed_;  ///< m x d fused b_embed + pos_embed
  std::vector<double> query_;       ///< d
  std::vector<double> b_head_;      ///< h
  std::vector<double> w_out_;       ///< h
  double b_out_ = 0.0;
};

}  // namespace dfv::ml
