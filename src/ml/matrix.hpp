// Row-major dense matrix: the feature-table container for the ML stack.
// Deliberately minimal — the heavy lifting (trees, attention) works on
// raw spans for speed; Matrix provides safe construction, views, and the
// few dense ops linear regression needs. Below the class live the free
// batched kernels the attention fast path is built from: every kernel
// documents (and tests pin) its per-element accumulation order, so the
// blocked/vectorized forms are bit-identical to the scalar loops they
// replace.
#pragma once

#include <cmath>
#include <span>
#include <vector>

namespace dfv::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::vector<double> col(std::size_t c) const;

  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

  void append_row(std::span<const double> values);
  /// Pre-size the backing store for `n` total rows (no-op if already that
  /// large); sample builders call this so append_row never reallocates.
  void reserve_rows(std::size_t n) { data_.reserve(n * cols_); }

  /// Select a subset of rows (copy).
  [[nodiscard]] Matrix select_rows(std::span<const std::size_t> idx) const;
  /// Select a subset of columns (copy).
  [[nodiscard]] Matrix select_cols(std::span<const std::size_t> idx) const;

  /// this^T * this (Gram matrix), used by ridge regression.
  [[nodiscard]] Matrix gram() const;
  /// this^T * y.
  [[nodiscard]] std::vector<double> tdot(std::span<const double> y) const;
  /// this * w.
  [[nodiscard]] std::vector<double> dot(std::span<const double> w) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b for symmetric positive-definite A via Cholesky; A is
/// modified in place. Throws ContractError if A is not SPD (after the
/// ridge term callers add, this indicates a logic error).
[[nodiscard]] std::vector<double> cholesky_solve(Matrix& a, std::vector<double> b);

/// Non-owning batch of equally shaped sample rows. Logical row r is
/// `groups` chunks of `width` contiguous doubles, chunk g starting at
/// base[r] + g * stride; a contiguous matrix row is the stride == width
/// special case. This is how the forecasting layer feeds m-step windows
/// as strided views into cached per-run feature tables (stride = the
/// table's full feature count) without materializing m x F copies.
struct RowBatch {
  std::span<const double* const> base;  ///< one pointer per logical row
  std::size_t groups = 1;   ///< chunks per row (window steps m)
  std::size_t width = 0;    ///< doubles per chunk (features per step)
  std::size_t stride = 0;   ///< doubles between chunk starts

  [[nodiscard]] std::size_t size() const noexcept { return base.size(); }
  [[nodiscard]] std::size_t row_len() const noexcept { return groups * width; }
  /// Copy logical row `r` contiguously into out[0 .. row_len()).
  void gather(std::size_t r, double* out) const noexcept {
    const double* src = base[r];
    for (std::size_t g = 0; g < groups; ++g, src += stride, out += width)
      for (std::size_t c = 0; c < width; ++c) out[c] = src[c];
  }
};

/// Row pointers of `x` (helper to view a Matrix as a RowBatch).
[[nodiscard]] std::vector<const double*> row_pointers(const Matrix& x);

// ---- batched kernels (attention fast path) --------------------------------
//
// All kernels are plain loops over raw row-major buffers, compiled per-ISA
// via target_clones and with FP contraction disabled for the whole ml
// target, so the vector forms produce exactly the scalar IEEE sequence
// they document. "r ascending" etc. states the per-output-element
// accumulation order, which is the determinism/bit-identity contract.

/// out[r,:] = init[(r % init_period),:] + x[r,:] * wt, with wt stored
/// transposed (f x d, wt[c*d + j]): per element (r, j) the products are
/// added in ascending c onto the init seed — the same order as the
/// scalar `s = init; for c: s += w[j,c] * x[c]` loop.
void affine_rows(const double* x, std::size_t n, std::size_t f, const double* wt,
                 std::size_t d, const double* init, std::size_t init_period,
                 double* out);

/// y[r] = init + sum_c x[r,c] * w[c], c ascending (4-row blocked).
void matvec_rows(const double* x, std::size_t n, std::size_t f, const double* w,
                 double init, double* y);

/// out[r,:] = a[r,:] * w (a: n x k, w: k x d): per element (r, j) the
/// products are added in ascending k onto a zero accumulator row.
void matmul_nn(const double* a, std::size_t n, std::size_t k, const double* w,
               std::size_t d, double* out);

/// out (k x d) += a^T * b (a: n x k, b: n x d): per element (i, j) rows
/// are accumulated in ascending r — the backprop weight-gradient kernel.
void add_matmul_tn(const double* a, std::size_t n, std::size_t k, const double* b,
                   std::size_t d, double* out);

/// out[c] += sum_r x[r,c] * y[r], r ascending (accumulating x^T y).
void add_tdot(const double* x, std::size_t n, std::size_t c, const double* y,
              double* out);

/// out[(r % period),:] += x[r,:], r ascending; period 1 gives plain
/// column sums, period m folds per-(sample,step) rows onto per-step rows
/// (the positional-embedding gradient).
void add_colsum_periodic(const double* x, std::size_t n, std::size_t d,
                         std::size_t period, double* out);

/// out[r] = sum_j x[r,j] * y[(r/group), j], j ascending — per-row dot
/// against a per-group vector (the attention d(alpha) reduction: group
/// = m steps share their sample's context gradient).
void dot_rows_grouped(const double* x, std::size_t n, std::size_t d,
                      const double* y, std::size_t group, double* out);

/// de[r,:] = a[r] * yg[(r/group),:] + b[r] * q[:] — the attention embed
/// gradient assembly; per element exactly the two-op sequence
/// `de = a*yg; de += b*q` of the scalar loops.
void attn_dembed(const double* a, const double* b, const double* yg,
                 const double* q, std::size_t n, std::size_t d,
                 std::size_t group, double* de);

/// de[i] = de[i] * (1 - e[i]*e[i]) — tanh backward through the stored
/// activations, in place.
void tanh_backward_rows(const double* e, std::size_t n, double* de);

/// dst[i] += src[i] (the ordered slab-partial combine).
void acc_add(double* dst, const double* src, std::size_t n);

/// One Adam step over a parameter region; per element exactly:
///   gi = g[i] + wd*w[i];
///   m1[i] = b1*m1[i] + (1-b1)*gi;   m2[i] = b2*m2[i] + (1-b2)*gi*gi;
///   w[i] -= lr * (m1[i]/bc1) / (sqrt(m2[i]/bc2) + eps);
void adam_step(double* w, const double* g, double* m1, double* m2, std::size_t n,
               double lr, double wd, double b1, double b2, double bc1, double bc2,
               double eps);

// ---- fast tanh ------------------------------------------------------------
//
// Rational approximation from the tanh continued fraction truncated at
// depth 12: tanh(x) = x * N(x^2) / D(x^2) with all-positive integer
// coefficients (every coefficient is exactly representable in a double
// and Horner never cancels), max relative error 5e-15 on |x| <= 3. The
// attention stack calls tanh m*d times per sample per epoch; libm tanh
// is ~4x the cost of this polynomial and cannot vectorize.

/// N/D convergent; accurate for |x| <= 3 only — callers branch to
/// tanh_tail beyond that.
[[nodiscard]] inline double tanh_poly(double x) noexcept {
  const double u = x * x;
  double n = 78.0;
  n = n * u + 75075.0;
  n = n * u + 18378360.0;
  n = n * u + 1571349780.0;
  n = n * u + 45831035250.0;
  n = n * u + 316234143225.0;
  double d = u + 3003.0;
  d = d * u + 1351350.0;
  d = d * u + 192972780.0;
  d = d * u + 9820936125.0;
  d = d * u + 151242416325.0;
  d = d * u + 316234143225.0;
  return x * n / d;
}

/// exp-based exact form for |x| >= 3 (rare on standardized activations);
/// saturates to +/-1 beyond |x| >= 20 where exp(-2x) underflows anyway.
[[nodiscard]] inline double tanh_tail(double x) noexcept {
  const double a = std::fabs(x);
  if (a >= 20.0) return x > 0.0 ? 1.0 : -1.0;
  const double e = std::exp(-2.0 * a);
  const double t = (1.0 - e) / (1.0 + e);
  return x < 0.0 ? -t : t;
}

[[nodiscard]] inline double fast_tanh(double x) noexcept {
  return std::fabs(x) < 3.0 ? tanh_poly(x) : tanh_tail(x);
}

/// out[i] = fast_tanh(z[i]): the polynomial pass runs branch-free over
/// every element (vectorizable, division included), then the rare
/// |z| >= 3 lanes are fixed up with tanh_tail — element-for-element
/// identical to calling fast_tanh in a scalar loop.
void tanh_rows(const double* z, std::size_t n, double* out);

}  // namespace dfv::ml
