// Row-major dense matrix: the feature-table container for the ML stack.
// Deliberately minimal — the heavy lifting (trees, attention) works on
// raw spans for speed; Matrix provides safe construction, views, and the
// few dense ops linear regression needs.
#pragma once

#include <span>
#include <vector>

namespace dfv::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::vector<double> col(std::size_t c) const;

  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

  void append_row(std::span<const double> values);
  /// Pre-size the backing store for `n` total rows (no-op if already that
  /// large); sample builders call this so append_row never reallocates.
  void reserve_rows(std::size_t n) { data_.reserve(n * cols_); }

  /// Select a subset of rows (copy).
  [[nodiscard]] Matrix select_rows(std::span<const std::size_t> idx) const;
  /// Select a subset of columns (copy).
  [[nodiscard]] Matrix select_cols(std::span<const std::size_t> idx) const;

  /// this^T * this (Gram matrix), used by ridge regression.
  [[nodiscard]] Matrix gram() const;
  /// this^T * y.
  [[nodiscard]] std::vector<double> tdot(std::span<const double> y) const;
  /// this * w.
  [[nodiscard]] std::vector<double> dot(std::span<const double> w) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b for symmetric positive-definite A via Cholesky; A is
/// modified in place. Throws ContractError if A is not SPD (after the
/// ridge term callers add, this indicates a logic error).
std::vector<double> cholesky_solve(Matrix& a, std::vector<double> b);

}  // namespace dfv::ml
