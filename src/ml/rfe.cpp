#include "ml/rfe.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "exec/exec.hpp"
#include "ml/kfold.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"

namespace dfv::ml {

namespace {

/// MAPE of predictions against targets, both shifted by the per-sample
/// offset (empty offset = zeros).
double offset_mape(std::span<const double> y, std::span<const double> pred,
                   std::span<const double> offset, std::span<const std::size_t> idx) {
  std::vector<double> t, p;
  t.reserve(idx.size());
  p.reserve(idx.size());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const double off = offset.empty() ? 0.0 : offset[idx[k]];
    t.push_back(y[idx[k]] + off);
    p.push_back(pred[k] + off);
  }
  return mape(t, p);
}

}  // namespace

RfeResult rfe_cv(const Matrix& x, std::span<const double> y, const RfeParams& params,
                 std::span<const double> offset, std::span<const std::size_t> groups) {
  DFV_CHECK(x.cols() >= 2);
  const BinnedDataset binned(x, params.gbr.tree.histogram_bins);
  return rfe_cv(binned, y, params, offset, groups);
}

RfeResult rfe_cv(const BinnedDataset& binned, std::span<const double> y,
                 const RfeParams& params, std::span<const double> offset,
                 std::span<const std::size_t> groups) {
  DFV_CHECK(binned.rows() == y.size());
  DFV_CHECK(offset.empty() || offset.size() == y.size());
  const std::size_t F = binned.features();
  DFV_CHECK(F >= 2);
  // The ridge baseline solves on raw feature rows, so it is the one stage
  // that cannot run over an external-memory (sourceless) binned view.
  DFV_CHECK_MSG(!params.with_linear_baseline || binned.has_source(),
                "rfe_cv: linear baseline needs the source matrix; disable "
                "with_linear_baseline for external-memory binned views");

  RfeResult result;
  result.relevance.assign(F, 0.0);
  result.survival.assign(F, 0.0);

  Rng rng(params.seed);
  const auto folds = groups.empty()
                         ? kfold(binned.rows(), std::size_t(params.folds), rng)
                         : group_kfold(groups, std::size_t(params.folds), rng);

  // Folds are independent given per-fold seeds, so they run as parallel
  // tasks writing fold-private partials; partials combine serially in fold
  // order below. Each stage's model is seeded from (fold, stage) rather
  // than a shared counter so results do not depend on scheduling. Every
  // GBR trains on (binned view, row view, feature mask) — the only matrix
  // copy per fold is the ridge baseline's train rows.
  struct FoldPartial {
    double mape_full = 0.0;
    double mape_linear = 0.0;
    std::vector<double> relevance;
    std::vector<double> survival;
  };
  std::vector<FoldPartial> parts(folds.size());

  run_folds(folds.size(), [&](std::size_t fold_i) {
    const FoldSplit& fold = folds[fold_i];
    FoldPartial& part = parts[fold_i];
    part.relevance.assign(F, 0.0);
    part.survival.assign(F, 0.0);
    const std::uint64_t fold_seed = hash_combine(params.gbr.seed, fold_i);

    // Full-feature reference models (GBR + linear baseline).
    {
      GbrParams gp = params.gbr;
      gp.seed = exec::substream_seed(fold_seed, 0);
      GradientBoostedRegressor full(gp);
      full.fit(binned, y, fold.train, FeatureMask::all(F));
      part.mape_full =
          offset_mape(y, full.predict_rows(binned, fold.test), offset, fold.test);

      if (params.with_linear_baseline) {
        const Matrix& x = binned.source();
        const Matrix x_train = x.select_rows(fold.train);
        std::vector<double> y_train(fold.train.size());
        for (std::size_t i = 0; i < fold.train.size(); ++i)
          y_train[i] = y[fold.train[i]];
        LinearRegression lin;
        lin.fit(x_train, y_train);
        std::vector<double> lin_pred(fold.test.size());
        for (std::size_t i = 0; i < fold.test.size(); ++i)
          lin_pred[i] = lin.predict_one(x.row(fold.test[i]));
        part.mape_linear = offset_mape(y, lin_pred, offset, fold.test);
      }
    }

    // Recursive elimination: the active set shrinks by the least-important
    // feature each stage. A stage is just a narrower feature mask over the
    // shared binned view; record every stage's held-out error.
    std::vector<std::size_t> active(F);
    for (std::size_t f = 0; f < F; ++f) active[f] = f;
    FeatureMask mask = FeatureMask::all(F);
    std::vector<std::size_t> elimination_order;  // first = dropped first
    std::vector<std::pair<double, std::vector<std::size_t>>> stages;  // err, subset

    std::uint64_t stage_i = 1;
    while (active.size() >= 2) {
      GbrParams gp = params.gbr;
      gp.seed = exec::substream_seed(fold_seed, stage_i++);
      GradientBoostedRegressor model(gp);
      model.fit(binned, y, fold.train, mask);

      stages.emplace_back(
          offset_mape(y, model.predict_rows(binned, fold.test), offset, fold.test),
          active);

      // Importances are global-indexed; pick the worst *active* feature
      // (strict `<`, so the earliest feature wins ties, exactly the old
      // column-local rule).
      const std::vector<double> imp = model.feature_importances();
      std::size_t worst = 0;
      for (std::size_t i = 1; i < active.size(); ++i)
        if (imp[active[i]] < imp[active[worst]]) worst = i;
      elimination_order.push_back(active[worst]);
      mask.active[active[worst]] = 0;
      active.erase(active.begin() + std::ptrdiff_t(worst));
    }
    elimination_order.push_back(active.front());  // the survivor

    // "Well-performing subset": the *smallest* stage whose error is within
    // 5% of the fold's best — parsimony keeps uninformative features from
    // free-riding in the full-feature stage.
    double best_err = std::numeric_limits<double>::infinity();
    for (const auto& [err, subset] : stages) best_err = std::min(best_err, err);
    const std::vector<std::size_t>* best_subset = &stages.front().second;
    for (const auto& [err, subset] : stages)
      if (err <= best_err * 1.05 && subset.size() <= best_subset->size())
        best_subset = &subset;

    for (std::size_t f : *best_subset) part.relevance[f] += 1.0;
    for (std::size_t pos = 0; pos < elimination_order.size(); ++pos)
      part.survival[elimination_order[pos]] += double(pos) / double(F - 1);
  });

  const double inv_folds = 1.0 / double(folds.size());
  for (const FoldPartial& part : parts) {
    result.cv_mape_full += part.mape_full * inv_folds;
    result.cv_mape_linear += part.mape_linear * inv_folds;
    for (std::size_t f = 0; f < F; ++f) {
      result.relevance[f] += part.relevance[f] * inv_folds;
      result.survival[f] += part.survival[f] * inv_folds;
    }
  }
  if (!params.with_linear_baseline)
    result.cv_mape_linear = std::numeric_limits<double>::quiet_NaN();
  return result;
}

}  // namespace dfv::ml
