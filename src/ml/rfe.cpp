#include "ml/rfe.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"

namespace dfv::ml {

namespace {

/// MAPE of predictions against targets, both shifted by the per-sample
/// offset (empty offset = zeros).
double offset_mape(std::span<const double> y, std::span<const double> pred,
                   std::span<const double> offset, std::span<const std::size_t> idx) {
  std::vector<double> t, p;
  t.reserve(idx.size());
  p.reserve(idx.size());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const double off = offset.empty() ? 0.0 : offset[idx[k]];
    t.push_back(y[idx[k]] + off);
    p.push_back(pred[k] + off);
  }
  return mape(t, p);
}

}  // namespace

RfeResult rfe_cv(const Matrix& x, std::span<const double> y, const RfeParams& params,
                 std::span<const double> offset, std::span<const std::size_t> groups) {
  DFV_CHECK(x.rows() == y.size());
  DFV_CHECK(offset.empty() || offset.size() == y.size());
  const std::size_t F = x.cols();
  DFV_CHECK(F >= 2);

  RfeResult result;
  result.relevance.assign(F, 0.0);
  result.survival.assign(F, 0.0);

  Rng rng(params.seed);
  const auto folds = groups.empty()
                         ? kfold(x.rows(), std::size_t(params.folds), rng)
                         : group_kfold(groups, std::size_t(params.folds), rng);

  std::uint64_t fit_seed = params.gbr.seed;
  for (const FoldSplit& fold : folds) {
    const Matrix x_train = x.select_rows(fold.train);
    const Matrix x_test = x.select_rows(fold.test);
    std::vector<double> y_train(fold.train.size());
    for (std::size_t i = 0; i < fold.train.size(); ++i) y_train[i] = y[fold.train[i]];

    // Full-feature reference models (GBR + linear baseline).
    {
      GbrParams gp = params.gbr;
      gp.seed = fit_seed++;
      GradientBoostedRegressor full(gp);
      full.fit(x_train, y_train);
      result.cv_mape_full +=
          offset_mape(y, full.predict(x_test), offset, fold.test) / double(folds.size());

      LinearRegression lin;
      lin.fit(x_train, y_train);
      result.cv_mape_linear +=
          offset_mape(y, lin.predict(x_test), offset, fold.test) / double(folds.size());
    }

    // Recursive elimination: active set shrinks by the least-important
    // feature each stage; record every stage's held-out error.
    std::vector<std::size_t> active(F);
    for (std::size_t f = 0; f < F; ++f) active[f] = f;
    std::vector<std::size_t> elimination_order;  // first = dropped first
    std::vector<std::pair<double, std::vector<std::size_t>>> stages;  // err, subset

    while (active.size() >= 2) {
      const Matrix xs_train = x_train.select_cols(active);
      const Matrix xs_test = x_test.select_cols(active);
      GbrParams gp = params.gbr;
      gp.seed = fit_seed++;
      GradientBoostedRegressor model(gp);
      model.fit(xs_train, y_train);

      stages.emplace_back(offset_mape(y, model.predict(xs_test), offset, fold.test),
                          active);

      const std::vector<double> imp = model.feature_importances();
      std::size_t worst = 0;
      for (std::size_t i = 1; i < imp.size(); ++i)
        if (imp[i] < imp[worst]) worst = i;
      elimination_order.push_back(active[worst]);
      active.erase(active.begin() + std::ptrdiff_t(worst));
    }
    elimination_order.push_back(active.front());  // the survivor

    // "Well-performing subset": the *smallest* stage whose error is within
    // 5% of the fold's best — parsimony keeps uninformative features from
    // free-riding in the full-feature stage.
    double best_err = std::numeric_limits<double>::infinity();
    for (const auto& [err, subset] : stages) best_err = std::min(best_err, err);
    const std::vector<std::size_t>* best_subset = &stages.front().second;
    for (const auto& [err, subset] : stages)
      if (err <= best_err * 1.05 && subset.size() <= best_subset->size())
        best_subset = &subset;

    for (std::size_t f : *best_subset) result.relevance[f] += 1.0 / double(folds.size());
    for (std::size_t pos = 0; pos < elimination_order.size(); ++pos)
      result.survival[elimination_order[pos]] +=
          double(pos) / double(F - 1) / double(folds.size());
  }
  return result;
}

}  // namespace dfv::ml
