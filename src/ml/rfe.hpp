// Recursive feature elimination with cross-validation (§IV-B): repeatedly
// fit GBR, drop the least-important feature, and rank features by when
// they were eliminated. The relevance score of a feature is the
// likelihood of it being part of the best-performing subset across the
// CV splits — exactly the quantity plotted in Fig. 9.
#pragma once

#include "ml/gbr.hpp"

namespace dfv::ml {

struct RfeParams {
  GbrParams gbr;
  int folds = 10;
  std::uint64_t seed = 0x4fe;
  /// Fit the ridge linear baseline alongside the GBR (Groves et al.).
  /// The baseline is the one consumer that needs the raw source matrix;
  /// out-of-core callers training over an external-memory BinnedDataset
  /// turn it off (cv_mape_linear then reports NaN).
  bool with_linear_baseline = true;
};

struct RfeResult {
  /// Per-feature likelihood (over folds) of belonging to the subset with
  /// the lowest held-out error — the Fig. 9 relevance score.
  std::vector<double> relevance;
  /// Per-feature mean normalized survival time (0 = always dropped first,
  /// 1 = always the last survivor); a smoother secondary ranking.
  std::vector<double> survival;
  /// Held-out MAPE of the full-feature GBR, averaged over folds, computed
  /// on offset + prediction vs. offset + target (see `offset` below).
  double cv_mape_full = 0.0;
  /// Same for the ridge linear-regression baseline (Groves et al.);
  /// NaN when the baseline was disabled (RfeParams::with_linear_baseline).
  double cv_mape_linear = 0.0;
};

/// Run RFE with k-fold CV.
///
/// `offset` (optional, same length as y): per-sample baseline added back
/// before computing MAPE. The deviation analysis predicts mean-centered
/// step times; MAPE is only meaningful on the reconstructed absolute
/// times (mean curve + deviation), so callers pass the mean curve here.
/// `groups` (optional): group ids for group-aware folds (e.g. run index,
/// so time steps of one run never straddle train/test).
///
/// Bins the matrix once and shares the BinnedDataset across every fold,
/// stage, and tree: folds are row-index views, stages are feature masks,
/// and no column- or row-subset matrix is ever materialized for the GBR
/// fits (the ridge baseline keeps one per-fold row copy for its solver).
[[nodiscard]] RfeResult rfe_cv(const Matrix& x, std::span<const double> y,
                               const RfeParams& params,
                               std::span<const double> offset = {},
                               std::span<const std::size_t> groups = {});

/// Same, over a caller-provided binned view (e.g. the deviation analysis
/// builds one binner for its sample matrix and hands it in).
[[nodiscard]] RfeResult rfe_cv(const BinnedDataset& binned, std::span<const double> y,
                               const RfeParams& params,
                               std::span<const double> offset = {},
                               std::span<const std::size_t> groups = {});

}  // namespace dfv::ml
