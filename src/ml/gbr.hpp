// Gradient boosted regression (Friedman 2001): squared-error boosting of
// histogram CART trees with row subsampling — the predictive model used
// for the paper's deviation analysis (§IV-B).
//
// Training runs on a BinnedDataset built once per training matrix: all
// trees share the same bin edges and uint8 codes through row-index
// views, and masked fits (RFE stages) share them too — no per-tree
// rebinning and no column-subset matrix copies anywhere.
#pragma once


#include "ml/binned.hpp"
#include "ml/tree.hpp"

namespace dfv::ml {

class CompiledGbr;

struct GbrParams {
  int n_trees = 60;
  double learning_rate = 0.10;
  double subsample = 0.40;  ///< fraction of rows per tree
  TreeParams tree;
  std::uint64_t seed = 0x6b05;
};

class GradientBoostedRegressor {
 public:
  explicit GradientBoostedRegressor(GbrParams params = {}) : params_(params) {}

  /// Convenience path: bins `x` once (all rows, all features) and
  /// delegates to the shared-view overload.
  void fit(const Matrix& x, std::span<const double> y);

  /// Fast path: boost over rows `rows` of a prebuilt binned view with
  /// the feature mask `mask`. `y` is indexed by absolute matrix row
  /// (y.size() == data.rows()). Masked-out features never split; the
  /// fitted model predicts from full-width rows (or binned codes).
  void fit(const BinnedDataset& data, std::span<const double> y,
           std::span<const std::size_t> rows, const FeatureMask& mask);

  /// All-rows variant: identical to passing the identity row list, but
  /// never materializes it — subsampled picks are already row ids. For
  /// million-row out-of-core fits this trims O(rows) from peak RSS.
  void fit(const BinnedDataset& data, std::span<const double> y,
           const FeatureMask& mask);

  [[nodiscard]] double predict_one(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;
  /// Predict row `r` of the binned view the model was trained on
  /// (uint8 code traversal; bit-identical to predict_one on the row).
  [[nodiscard]] double predict_binned(const BinnedDataset& data, std::size_t r) const;
  [[nodiscard]] std::vector<double> predict_rows(const BinnedDataset& data,
                                                 std::span<const std::size_t> rows) const;

  /// Split-gain importances summed over trees, normalized to sum to 1
  /// (all-zero if the model never split). Indexed by *global* feature;
  /// masked-out features report 0.
  [[nodiscard]] std::vector<double> feature_importances() const;

  [[nodiscard]] const GbrParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }

  /// Snapshot the fitted ensemble into the flattened inference layout
  /// (see ml/compiled.hpp); predictions are bit-identical to this
  /// model's predict_* methods. The batch predict paths take this route
  /// themselves while `compiled_enabled()` (the default).
  [[nodiscard]] CompiledGbr compile() const;

 private:
  friend class CompiledGbr;

  /// Shared boosting loop; an empty `rows` means the identity row list
  /// (every row of `data`, in order) without materializing it.
  void fit_impl(const BinnedDataset& data, std::span<const double> y,
                std::span<const std::size_t> rows, const FeatureMask& mask);

  GbrParams params_;
  double f0_ = 0.0;
  std::vector<RegressionTree> trees_;
  std::vector<double> gain_acc_;
};

}  // namespace dfv::ml
