// Gradient boosted regression (Friedman 2001): squared-error boosting of
// histogram CART trees with row subsampling — the predictive model used
// for the paper's deviation analysis (§IV-B).
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "ml/tree.hpp"

namespace dfv::ml {

struct GbrParams {
  int n_trees = 60;
  double learning_rate = 0.10;
  double subsample = 0.40;  ///< fraction of rows per tree
  TreeParams tree;
  std::uint64_t seed = 0x6b05;
};

class GradientBoostedRegressor {
 public:
  explicit GradientBoostedRegressor(GbrParams params = {}) : params_(params) {}

  void fit(const Matrix& x, std::span<const double> y);

  [[nodiscard]] double predict_one(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;

  /// Split-gain importances summed over trees, normalized to sum to 1
  /// (all-zero if the model never split).
  [[nodiscard]] std::vector<double> feature_importances() const;

  [[nodiscard]] const GbrParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }

 private:
  GbrParams params_;
  double f0_ = 0.0;
  std::vector<RegressionTree> trees_;
  std::vector<double> gain_acc_;
};

}  // namespace dfv::ml
