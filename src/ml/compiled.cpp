#include "ml/compiled.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

#include "common/check.hpp"
#include "exec/exec.hpp"
#include "ml/attention.hpp"
#include "ml/gbr.hpp"

namespace dfv::ml {

namespace {

std::atomic<bool>& compiled_flag() {
  // First touch reads the environment; later set_compiled_enabled calls
  // overwrite at runtime (tests and the serve A/B toggle).
  static std::atomic<bool> flag{[]() noexcept {
    const char* env = std::getenv("DFV_COMPILED");
    if (env == nullptr) return true;
    const std::string_view v(env);
    return !(v == "0" || v == "off" || v == "OFF" || v == "false" || v == "FALSE");
  }()};
  return flag;
}

// At -O3, GCC's -fsplit-paths duplicates the join after the child-select
// ternary, which replaces the cmov with data-dependent branches and makes
// interleaved tree traversal ~3x slower (bin codes are effectively random,
// so the branches mispredict constantly). Pin the kernel to branchless
// codegen; this is pure instruction selection, never a numeric change.
#if defined(__GNUC__) && !defined(__clang__)
#define DFV_ML_TRAVERSAL __attribute__((optimize("no-split-paths")))
#else
#define DFV_ML_TRAVERSAL
#endif

/// Recursively emit the subtree rooted at `src` in preorder and return
/// its flattened index. The left child always lands immediately after
/// its parent (skip 1); the right-child skip is the left subtree size
/// plus one. Leaf payloads fold the learning rate in: payload =
/// lr * value is exactly the multiply the reference update performs per
/// query, so summing payloads reproduces the reference bits.
std::uint32_t flatten_subtree(std::span<const RegressionTree::Node> tree,
                              std::int32_t src, double lr,
                              std::vector<CompiledGbr::Node>& out) {
  const auto idx = DFV_NARROW(std::uint32_t, out.size());
  const RegressionTree::Node sn = tree[std::size_t(src)];
  out.push_back(CompiledGbr::Node{});
  if (sn.feature < 0) {  // leaf (self-loops in the source table)
    out[idx].payload = lr * sn.value;
    return idx;
  }
  (void)flatten_subtree(tree, sn.left, lr, out);  // lands at idx + 1
  const std::uint32_t right = flatten_subtree(tree, sn.right, lr, out);
  out[idx].payload = sn.threshold;
  out[idx].feature = sn.feature;
  out[idx].bin = sn.bin;
  out[idx].left = 1;
  out[idx].right = right - idx;
  return idx;
}

}  // namespace

bool compiled_enabled() noexcept {
  return compiled_flag().load(std::memory_order_relaxed);
}

void set_compiled_enabled(bool on) noexcept {
  compiled_flag().store(on, std::memory_order_relaxed);
}

CompiledGbr::CompiledGbr(const GradientBoostedRegressor& model) : f0_(model.f0_) {
  DFV_CHECK(model.params_.learning_rate > 0.0);
  const double lr = model.params_.learning_rate;
  std::size_t total = 0;
  for (const RegressionTree& t : model.trees_) total += t.node_count();
  nodes_.reserve(total);
  roots_.reserve(model.trees_.size());
  depths_.reserve(model.trees_.size());
  for (const RegressionTree& t : model.trees_) {
    DFV_CHECK(t.node_count() > 0);
    roots_.push_back(flatten_subtree(t.nodes(), 0, lr, nodes_));
    depths_.push_back(t.fitted_depth());
    for (const RegressionTree::Node& n : t.nodes())
      max_feature_ = std::max(max_feature_, n.feature);
  }
}

DFV_ML_TRAVERSAL
double CompiledGbr::predict_one(std::span<const double> x) const {
  DFV_CHECK(std::size_t(max_feature_ + 1) <= x.size());
  double s = f0_;
  const Node* base = nodes_.data();
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const Node* nd = base + roots_[t];
    const std::int32_t depth = depths_[t];
    for (std::int32_t d = 0; d < depth; ++d)
      nd += x[std::size_t(nd->feature)] <= nd->payload ? nd->left : nd->right;
    s += nd->payload;
  }
  return s;
}

std::vector<double> CompiledGbr::predict(const Matrix& x) const {
  DFV_CHECK(x.rows() == 0 || std::size_t(max_feature_ + 1) <= x.cols());
  std::vector<double> out(x.rows());
  exec::parallel_for(0, x.rows(), 128, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) out[r] = predict_one(x.row(r));
  });
  return out;
}

DFV_ML_TRAVERSAL
double CompiledGbr::predict_binned(const BinnedDataset& data, std::size_t r) const {
  DFV_CHECK(r < data.rows() && std::size_t(max_feature_ + 1) <= data.features());
  const std::uint8_t* codes = data.features() > 0 ? data.feature_codes(0).data() : nullptr;
  const std::size_t R = data.rows();
  double s = f0_;
  const Node* base = nodes_.data();
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const Node* nd = base + roots_[t];
    const std::int32_t depth = depths_[t];
    for (std::int32_t d = 0; d < depth; ++d)
      nd += codes[std::size_t(nd->feature) * R + r] <= nd->bin ? nd->left : nd->right;
    s += nd->payload;
  }
  return s;
}

/// Batched kernel for one chunk: rows advance through each tree in
/// interleaved blocks of 16 so the per-row dependent-load chains overlap
/// (~1.6x over per-row traversal on the serve shapes). Per output
/// element the accumulation is f0, then tree 0, 1, ... — exactly the
/// reference predict_rows order, so the bits match row for row.
DFV_ML_TRAVERSAL
void CompiledGbr::predict_span(const std::uint8_t* codes, std::size_t data_rows,
                               std::span<const std::size_t> rows, std::size_t lo,
                               std::size_t hi, double* out) const {
  for (std::size_t j = lo; j < hi; ++j) out[j] = f0_;
  constexpr std::size_t kBlock = 16;
  const Node* nodes = nodes_.data();
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const Node* base = nodes + roots_[t];
    const std::int32_t depth = depths_[t];
    std::uint32_t cur[kBlock];
    for (std::size_t j0 = lo; j0 < hi; j0 += kBlock) {
      const std::size_t cnt = std::min(kBlock, hi - j0);
      for (std::size_t i = 0; i < cnt; ++i) cur[i] = 0;
      for (std::int32_t d = 0; d < depth; ++d)
        for (std::size_t i = 0; i < cnt; ++i) {
          const Node& nd = base[cur[i]];
          const std::uint8_t code =
              codes[std::size_t(nd.feature) * data_rows + rows[j0 + i]];
          cur[i] += code <= nd.bin ? nd.left : nd.right;
        }
      for (std::size_t i = 0; i < cnt; ++i) out[j0 + i] += base[cur[i]].payload;
    }
  }
}

std::vector<double> CompiledGbr::predict_many(const BinnedDataset& data,
                                              std::span<const std::size_t> rows) const {
  DFV_CHECK(rows.empty() || std::size_t(max_feature_ + 1) <= data.features());
  for (std::size_t r : rows) DFV_CHECK(r < data.rows());
  std::vector<double> out(rows.size());
  if (rows.empty()) return out;
  const std::uint8_t* codes = data.features() > 0 ? data.feature_codes(0).data() : nullptr;
  exec::parallel_for(0, rows.size(), 256, [&](std::size_t lo, std::size_t hi) {
    predict_span(codes, data.rows(), rows, lo, hi, out.data());
  });
  return out;
}

CompiledGbr GradientBoostedRegressor::compile() const { return CompiledGbr(*this); }

namespace {

/// Samples per prediction slab; mirrors the training-side constant (the
/// slab structure never changes bits on the forward pass — rows are
/// independent — but keeping the same shape keeps the kernels on the
/// operand sizes they were tuned for).
constexpr std::size_t kSlabRows = 8;

}  // namespace

CompiledAttention::CompiledAttention(const AttentionForecaster& model)
    : m_(model.m_),
      feat_dim_(model.feat_dim_),
      d_(std::size_t(model.params_.d_model)),
      h_(std::size_t(model.params_.d_hidden)),
      scaler_(model.scaler_),
      query_(model.query_),
      b_head_(model.b_head_),
      w_out_(model.w_out_),
      b_out_(model.b_out_) {
  const std::size_t m = std::size_t(m_);
  const std::size_t f = std::size_t(feat_dim_);
  // The scaler statistics only exist after fit; compiling an unfitted
  // forecaster is a logic error (the reference path would fault too).
  DFV_CHECK(scaler_.means().size() == m * f && scaler_.stddevs().size() == m * f);
  // Pack once what the reference predict packs per call: the layouts
  // below are byte-for-byte the ones predict builds, so the kernels see
  // identical operands.
  wt_embed_.resize(f * d_);
  wt_head_.resize(d_ * h_);
  init_embed_.resize(m * d_);
  for (std::size_t j = 0; j < d_; ++j)
    for (std::size_t c = 0; c < f; ++c)
      wt_embed_[c * d_ + j] = model.w_embed_[j * f + c];
  for (std::size_t k = 0; k < h_; ++k)
    for (std::size_t j = 0; j < d_; ++j)
      wt_head_[j * h_ + k] = model.w_head_[k * d_ + j];
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < d_; ++j)
      init_embed_[i * d_ + j] = model.b_embed_[j] + model.pos_embed_[i * d_ + j];
}

// dfv-lint: allow(contract): private arena sizing; the predict entry points validate shapes
void CompiledAttention::ensure(Scratch& ws, std::size_t slab) const {
  const std::size_t m = std::size_t(m_);
  const std::size_t f = std::size_t(feat_dim_);
  const std::size_t steps = slab * m;
  if (ws.xs.size() >= steps * f && ws.y_hat.size() >= slab) return;
  ws.xs.resize(steps * f);
  ws.pre.resize(steps * d_);
  ws.embed.resize(steps * d_);
  ws.scores.resize(steps);
  ws.alpha.resize(steps);
  ws.context.resize(slab * d_);
  ws.hidden.resize(slab * h_);
  ws.y_hat.resize(slab);
}

/// Forward pass over `rows` standardized windows sitting in ws.xs: the
/// exact kernel sequence of AttentionForecaster::forward_slab on the
/// pre-packed operands, hence bit-identical activations throughout.
void CompiledAttention::forward(Scratch& ws, std::size_t rows) const {
  const std::size_t m = std::size_t(m_);
  const std::size_t f = std::size_t(feat_dim_);
  const double inv_sqrt_d = 1.0 / std::sqrt(double(d_));
  const std::size_t steps = rows * m;
  DFV_CHECK(rows >= 1 && ws.xs.size() >= steps * f);

  // e_(b,i) = tanh(W_e x_(b,i) + b_e + p_i), all steps in one operand.
  affine_rows(ws.xs.data(), steps, f, wt_embed_.data(), d_, init_embed_.data(), m,
              ws.pre.data());
  tanh_rows(ws.pre.data(), steps * d_, ws.embed.data());

  // scores = (q . e_i) / sqrt(d), then per-sample softmax + context.
  matvec_rows(ws.embed.data(), steps, d_, query_.data(), 0.0, ws.scores.data());
  for (std::size_t i = 0; i < steps; ++i) ws.scores[i] *= inv_sqrt_d;
  for (std::size_t b = 0; b < rows; ++b) {
    const double* sc = ws.scores.data() + b * m;
    double* al = ws.alpha.data() + b * m;
    double max_score = -1e30;
    for (std::size_t i = 0; i < m; ++i) max_score = std::max(max_score, sc[i]);
    double z = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      al[i] = std::exp(sc[i] - max_score);
      z += al[i];
    }
    for (std::size_t i = 0; i < m; ++i) al[i] /= z;
    matmul_nn(al, 1, m, ws.embed.data() + b * m * d_, d_, ws.context.data() + b * d_);
  }

  // FC head: hidden = relu(W_h c + b_h), y = b_o + w_o . hidden.
  affine_rows(ws.context.data(), rows, d_, wt_head_.data(), h_, b_head_.data(), 1,
              ws.hidden.data());
  for (std::size_t i = 0; i < rows * h_; ++i)
    ws.hidden[i] = ws.hidden[i] > 0.0 ? ws.hidden[i] : 0.0;
  matvec_rows(ws.hidden.data(), rows, h_, w_out_.data(), b_out_, ws.y_hat.data());
}

// dfv-lint: allow(contract): delegates to the Scratch overload, which validates the window
double CompiledAttention::predict_one(std::span<const double> window) const {
  Scratch ws;
  return predict_one(window, ws);
}

double CompiledAttention::predict_one(std::span<const double> window,
                                      Scratch& ws) const {
  const std::size_t mf = std::size_t(m_) * std::size_t(feat_dim_);
  DFV_CHECK(window.size() == mf);
  ensure(ws, 1);
  const auto& mu = scaler_.means();
  const auto& sd = scaler_.stddevs();
  for (std::size_t c = 0; c < mf; ++c) ws.xs[c] = (window[c] - mu[c]) / sd[c];
  forward(ws, 1);
  return scaler_.inverse_target(ws.y_hat[0]);
}

std::vector<double> CompiledAttention::predict_many(const RowBatch& x) const {
  const std::size_t m = std::size_t(m_);
  const std::size_t f = std::size_t(feat_dim_);
  const std::size_t mf = m * f;
  DFV_CHECK(x.row_len() == mf);
  const std::size_t n = x.size();
  const auto& mu = scaler_.means();
  const auto& sd = scaler_.stddevs();
  std::vector<double> out(n);
  // Rows are independent through the whole forward pass, so any chunking
  // gives the same bits; chunks only amortize the arena.
  exec::parallel_for(0, n, 4 * kSlabRows, [&](std::size_t lo, std::size_t hi) {
    Scratch ws;
    ensure(ws, kSlabRows);
    for (std::size_t s = lo; s < hi; s += kSlabRows) {
      const std::size_t rows = std::min(kSlabRows, hi - s);
      for (std::size_t b = 0; b < rows; ++b) {
        double* row = ws.xs.data() + b * mf;
        x.gather(s + b, row);
        for (std::size_t c = 0; c < mf; ++c) row[c] = (row[c] - mu[c]) / sd[c];
      }
      forward(ws, rows);
      for (std::size_t b = 0; b < rows; ++b)
        out[s + b] = scaler_.inverse_target(ws.y_hat[b]);
    }
  });
  return out;
}

CompiledAttention AttentionForecaster::compile() const {
  return CompiledAttention(*this);
}

}  // namespace dfv::ml
