#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "exec/exec.hpp"

namespace dfv::ml {

void RegressionTree::fit(const Matrix& x, std::span<const double> y,
                         std::span<const std::size_t> idx, const TreeParams& params) {
  DFV_CHECK(x.rows() == y.size());
  DFV_CHECK(!idx.empty());
  DFV_CHECK(params.max_depth >= 1 && params.histogram_bins >= 2 &&
            params.histogram_bins <= 256);
  x_ = &x;
  y_ = y;
  params_ = params;
  nodes_.clear();
  gains_.assign(x.cols(), 0.0);

  const std::size_t n = idx.size();
  const std::size_t F = x.cols();
  local_rows_.assign(idx.begin(), idx.end());

  // Quantile bin edges per feature from the fit subset (subsampled for
  // speed on large subsets).
  const std::size_t bins = std::size_t(params.histogram_bins);
  bin_edges_.assign(F, {});
  std::vector<double> vals;
  const std::size_t stride = std::max<std::size_t>(1, n / 2048);
  for (std::size_t f = 0; f < F; ++f) {
    vals.clear();
    for (std::size_t i = 0; i < n; i += stride) vals.push_back(x(local_rows_[i], f));
    std::sort(vals.begin(), vals.end());
    auto& edges = bin_edges_[f];
    for (std::size_t b = 1; b < bins; ++b) {
      const double q = double(b) / double(bins);
      const double v = vals[std::min(vals.size() - 1, std::size_t(q * double(vals.size())))];
      if (edges.empty() || v > edges.back()) edges.push_back(v);
    }
  }

  // Bin every sample once. Rows are independent (disjoint writes).
  binned_.assign(n * F, 0);
  exec::parallel_for(0, n, 256, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto row = x.row(local_rows_[i]);
      for (std::size_t f = 0; f < F; ++f) {
        const auto& edges = bin_edges_[f];
        const auto it = std::lower_bound(edges.begin(), edges.end(), row[f]);
        binned_[i * F + f] = std::uint8_t(it - edges.begin());
      }
    }
  });

  std::vector<std::uint32_t> samples(n);
  for (std::size_t i = 0; i < n; ++i) samples[i] = std::uint32_t(i);
  build(samples, 0, n, 0);

  // Release fit-time buffers.
  binned_.clear();
  binned_.shrink_to_fit();
  local_rows_.clear();
  x_ = nullptr;
  y_ = {};
}

std::int32_t RegressionTree::build(std::vector<std::uint32_t>& samples, std::size_t begin,
                                   std::size_t end, int depth) {
  const std::size_t n = end - begin;
  const std::size_t F = x_->cols();

  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += y_[local_rows_[samples[i]]];
  const double mean = sum / double(n);

  const auto node_id = std::int32_t(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[std::size_t(node_id)].value = mean;

  if (depth >= params_.max_depth || n < 2 * std::size_t(params_.min_samples_leaf))
    return node_id;

  // Histogram scan for the best split across all features. The scan is
  // parallel over features for large nodes: every feature's gain is an
  // exact function of its own histogram, and the chunk-ordered combine
  // keeps strict `>` semantics, so the chosen split (earliest feature on
  // ties) is identical to the serial scan for any thread count. Small
  // nodes (fixed threshold, never thread-dependent) scan inline to avoid
  // dispatch overhead near the leaves.
  const std::size_t bins = std::size_t(params_.histogram_bins);
  const double parent_score = sum * sum / double(n);
  struct Best {
    double gain = 0.0;
    int feature = -1;
    std::uint8_t bin = 0;
  };
  const auto scan_features = [&](std::size_t f_lo, std::size_t f_hi) {
    Best best;
    std::vector<double> bin_sum(bins);
    std::vector<std::uint32_t> bin_cnt(bins);
    for (std::size_t f = f_lo; f < f_hi; ++f) {
      const std::size_t nb = bin_edges_[f].size() + 1;
      if (nb < 2) continue;
      std::fill(bin_sum.begin(), bin_sum.begin() + nb, 0.0);
      std::fill(bin_cnt.begin(), bin_cnt.begin() + nb, 0u);
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t s = samples[i];
        const std::uint8_t b = binned_[std::size_t(s) * F + f];
        bin_sum[b] += y_[local_rows_[s]];
        ++bin_cnt[b];
      }
      double left_sum = 0.0;
      std::size_t left_cnt = 0;
      for (std::size_t b = 0; b + 1 < nb; ++b) {
        left_sum += bin_sum[b];
        left_cnt += bin_cnt[b];
        const std::size_t right_cnt = n - left_cnt;
        if (left_cnt < std::size_t(params_.min_samples_leaf) ||
            right_cnt < std::size_t(params_.min_samples_leaf))
          continue;
        const double right_sum = sum - left_sum;
        const double gain = left_sum * left_sum / double(left_cnt) +
                            right_sum * right_sum / double(right_cnt) - parent_score;
        if (gain > best.gain) {
          best.gain = gain;
          best.feature = int(f);
          best.bin = std::uint8_t(b);
        }
      }
    }
    return best;
  };
  constexpr std::size_t kParallelNodeSize = 2048;
  const Best found =
      n >= kParallelNodeSize && F >= 2
          ? exec::parallel_reduce(0, F, 1, Best{}, scan_features,
                                  [](Best a, const Best& b) { return b.gain > a.gain ? b : a; })
          : scan_features(0, F);
  const double best_gain = found.gain;
  const int best_feature = found.feature;
  const std::uint8_t best_bin = found.bin;

  if (best_feature < 0 || best_gain <= 1e-12) return node_id;

  gains_[std::size_t(best_feature)] += best_gain;

  // Partition samples in place: bin <= best_bin goes left.
  std::size_t mid = begin;
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t s = samples[i];
    if (binned_[std::size_t(s) * F + std::size_t(best_feature)] <= best_bin)
      std::swap(samples[i], samples[mid++]);
  }
  DFV_CHECK(mid > begin && mid < end);

  const auto& edges = bin_edges_[std::size_t(best_feature)];
  nodes_[std::size_t(node_id)].feature = best_feature;
  nodes_[std::size_t(node_id)].threshold = edges[best_bin];

  const std::int32_t left = build(samples, begin, mid, depth + 1);
  const std::int32_t right = build(samples, mid, end, depth + 1);
  nodes_[std::size_t(node_id)].left = left;
  nodes_[std::size_t(node_id)].right = right;
  return node_id;
}

double RegressionTree::predict_one(std::span<const double> x) const {
  DFV_CHECK(!nodes_.empty());
  std::int32_t cur = 0;
  while (nodes_[std::size_t(cur)].feature >= 0) {
    const Node& nd = nodes_[std::size_t(cur)];
    // Binning used lower_bound (bin = #edges < v), so "bin <= b" is
    // exactly "v <= edges[b]"; predict consistently.
    cur = x[std::size_t(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[std::size_t(cur)].value;
}

std::vector<double> RegressionTree::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  exec::parallel_for(0, x.rows(), 512, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) out[r] = predict_one(x.row(r));
  });
  return out;
}

}  // namespace dfv::ml
