#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "exec/exec.hpp"

namespace dfv::ml {

namespace {

/// Nodes below this size scan inline; larger ones build their histograms
/// feature-parallel (each feature writes a disjoint slab in sample
/// order, so the result never depends on the thread count).
constexpr std::size_t kParallelNodeSize = 2048;

bool can_split(std::size_t n, int depth, const TreeParams& p) {
  return depth < p.max_depth && n >= 2 * std::size_t(p.min_samples_leaf);
}

}  // namespace

void RegressionTree::fit(const Matrix& x, std::span<const double> y,
                         std::span<const std::size_t> idx, const TreeParams& params) {
  DFV_CHECK(x.rows() == y.size());
  DFV_CHECK(!idx.empty());
  DFV_CHECK(params.max_depth >= 1 && params.histogram_bins >= 2 &&
            params.histogram_bins <= 256);
  const BinnedDataset data(x, params.histogram_bins);
  const FeatureMask mask = FeatureMask::all(x.cols());
  fit(data, y, idx, mask, params);
}

void RegressionTree::fit(const BinnedDataset& data, std::span<const double> y,
                         std::span<const std::size_t> rows, const FeatureMask& mask,
                         const TreeParams& params) {
  fit(data, y, {}, rows, mask, params);
}

void RegressionTree::fit(const BinnedDataset& data, std::span<const double> y,
                         std::span<const double> baseline,
                         std::span<const std::size_t> rows, const FeatureMask& mask,
                         const TreeParams& params) {
  DFV_CHECK(data.rows() == y.size());
  DFV_CHECK(baseline.empty() || baseline.size() == y.size());
  DFV_CHECK(!rows.empty());
  DFV_CHECK(mask.active.size() == data.features());
  DFV_CHECK(params.max_depth >= 1 && params.histogram_bins >= 2 &&
            params.histogram_bins <= 256);
  data_ = &data;
  mask_ = &mask;
  y_ = y;
  baseline_ = baseline;
  params_ = params;
  bins_ = std::size_t(params.histogram_bins);
  nodes_.clear();
  fit_depth_ = 0;
  gains_.assign(data.features(), 0.0);

  const std::size_t n = rows.size();
  local_rows_.assign(rows.begin(), rows.end());
  samples_.resize(n);
  for (std::size_t i = 0; i < n; ++i) samples_[i] = std::uint32_t(i);
  if (record_leaves_)
    fitted_leaf_.assign(n, -1);
  else
    fitted_leaf_ = std::vector<std::int32_t>();

  double sum = 0.0;
  if (const double* base = baseline.empty() ? nullptr : baseline.data()) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t r = local_rows_[i];
      sum += y_[r] - base[r];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) sum += y_[local_rows_[i]];
  }

  Hist* root_hist = nullptr;
  if (can_split(n, 0, params_)) {
    hist_arena_.resize(std::size_t(params_.max_depth) + 1);
    root_hist = &hist_arena_[0];
    scan_hist(0, n, *root_hist);
  }
  (void)build(0, n, 0, sum, root_hist);  // root lands at node index 0

  // Release fit-time references AND their capacity; keep nodes/gains/
  // fitted leaves. clear() — and `v = {}`, which resolves to the
  // initializer-list assign, not a move — would retain ~O(rows) of dead
  // capacity per tree; an ensemble holding hundreds of trees would pin
  // hundreds of MB of scratch for million-row fits. Move-assigning a
  // typed empty vector is guaranteed to free the buffer.
  hist_arena_ = std::vector<Hist>();
  local_rows_ = std::vector<std::uint32_t>();
  samples_ = std::vector<std::uint32_t>();
  scan_rows_ = std::vector<std::uint32_t>();
  scan_y_ = std::vector<double>();
  data_ = nullptr;
  mask_ = nullptr;
  y_ = {};
  baseline_ = {};
}

void RegressionTree::scan_hist(std::size_t begin, std::size_t end, Hist& h) {
  DFV_CHECK(data_ != nullptr && end <= samples_.size());
  const std::size_t F = data_->features();
  h.sum.assign(F * bins_, 0.0);
  h.cnt.assign(F * bins_, 0u);
  // Gather the node's matrix rows and targets once; every feature scan
  // then reads them sequentially instead of re-chasing samples_ ->
  // local_rows_ -> y_ per feature. The gather is deliberately NOT
  // chunked: sample order is a random permutation, so each feature's
  // code slab only stays cache-resident if it is scanned over the whole
  // node in one pass — fixed-size chunks force the slab to be refetched
  // per chunk and cost >50% on million-row fits for a few MB of buffer.
  // Same per-feature addition order, so the histograms (and everything
  // downstream) are bit-identical.
  const std::size_t n = end - begin;
  const double* base = baseline_.empty() ? nullptr : baseline_.data();
  scan_rows_.resize(n);
  scan_y_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t row = local_rows_[samples_[begin + i]];
    scan_rows_[i] = row;
    scan_y_[i] = base ? y_[row] - base[row] : y_[row];
  }
  const auto scan_feature_range = [&](std::size_t f_lo, std::size_t f_hi) {
    for (std::size_t f = f_lo; f < f_hi; ++f) {
      if (!mask_->test(f)) continue;
      const std::uint8_t* codes = data_->feature_codes(f).data();
      double* sum = h.sum.data() + f * bins_;
      std::uint32_t* cnt = h.cnt.data() + f * bins_;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t b = codes[scan_rows_[i]];
        sum[b] += scan_y_[i];
        ++cnt[b];
      }
    }
  };
  if (end - begin >= kParallelNodeSize && F >= 2)
    exec::parallel_for(0, F, 1, scan_feature_range);
  else
    scan_feature_range(0, F);
}

std::int32_t RegressionTree::build(std::size_t begin, std::size_t end, int depth,
                                   double node_sum, Hist* hist) {
  const std::size_t n = end - begin;
  const std::size_t F = data_->features();

  const auto node_id = std::int32_t(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[std::size_t(node_id)].value = node_sum / double(n);

  const auto make_leaf = [&] {
    // Leaves self-loop so fixed-depth traversal can overshoot safely.
    nodes_[std::size_t(node_id)].left = node_id;
    nodes_[std::size_t(node_id)].right = node_id;
    fit_depth_ = std::max(fit_depth_, depth);
    if (record_leaves_)
      for (std::size_t i = begin; i < end; ++i)
        fitted_leaf_[samples_[i]] = node_id;
    return node_id;
  };
  if (hist == nullptr) return make_leaf();

  // Best split over the node's histograms: strict `>` and ascending
  // feature order give the earliest feature on ties, independent of how
  // the histograms were built.
  const double parent_score = node_sum * node_sum / double(n);
  double best_gain = 0.0, best_left_sum = 0.0;
  int best_feature = -1;
  std::uint8_t best_bin = 0;
  std::size_t best_left_cnt = 0;
  for (std::size_t f = 0; f < F; ++f) {
    if (!mask_->test(f)) continue;
    const std::size_t nb = data_->edges(f).size() + 1;
    if (nb < 2) continue;
    const double* sum = hist->sum.data() + f * bins_;
    const std::uint32_t* cnt = hist->cnt.data() + f * bins_;
    double left_sum = 0.0;
    std::size_t left_cnt = 0;
    for (std::size_t b = 0; b + 1 < nb; ++b) {
      left_sum += sum[b];
      left_cnt += cnt[b];
      const std::size_t right_cnt = n - left_cnt;
      if (left_cnt < std::size_t(params_.min_samples_leaf) ||
          right_cnt < std::size_t(params_.min_samples_leaf))
        continue;
      const double right_sum = node_sum - left_sum;
      const double gain = left_sum * left_sum / double(left_cnt) +
                          right_sum * right_sum / double(right_cnt) - parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = int(f);
        best_bin = std::uint8_t(b);
        best_left_sum = left_sum;
        best_left_cnt = left_cnt;
      }
    }
  }
  if (best_feature < 0 || best_gain <= 1e-12) return make_leaf();

  gains_[std::size_t(best_feature)] += best_gain;

  // Partition samples in place: code <= best_bin goes left.
  const std::uint8_t* codes = data_->feature_codes(std::size_t(best_feature)).data();
  std::size_t mid = begin;
  for (std::size_t i = begin; i < end; ++i) {
    if (codes[local_rows_[samples_[i]]] <= best_bin)
      std::swap(samples_[i], samples_[mid++]);
  }
  DFV_CHECK(mid - begin == best_left_cnt);

  nodes_[std::size_t(node_id)].feature = best_feature;
  nodes_[std::size_t(node_id)].bin = best_bin;
  nodes_[std::size_t(node_id)].threshold =
      data_->edges(std::size_t(best_feature))[best_bin];

  // Child histograms by subtraction: scan only the smaller child, derive
  // the sibling as parent − child (in place, so the parent's buffer is
  // reused down the recursion and the arena stays one slab per level).
  // Which child is scanned depends only on the split, never on threads.
  const std::size_t left_n = mid - begin, right_n = end - mid;
  const double left_sum = best_left_sum, right_sum = node_sum - best_left_sum;
  const bool need_left = can_split(left_n, depth + 1, params_);
  const bool need_right = can_split(right_n, depth + 1, params_);
  Hist* left_hist = nullptr;
  Hist* right_hist = nullptr;
  if (need_left || need_right) {
    Hist& child = hist_arena_[std::size_t(depth) + 1];
    const bool scan_is_left = left_n <= right_n;
    if (scan_is_left)
      scan_hist(begin, mid, child);
    else
      scan_hist(mid, end, child);
    const bool need_sibling = scan_is_left ? need_right : need_left;
    if (need_sibling) {
      for (std::size_t i = 0; i < F * bins_; ++i) {
        hist->sum[i] -= child.sum[i];
        hist->cnt[i] -= child.cnt[i];
      }
    }
    if (need_left) left_hist = scan_is_left ? &child : hist;
    if (need_right) right_hist = scan_is_left ? hist : &child;
  }

  const std::int32_t left = build(begin, mid, depth + 1, left_sum, left_hist);
  const std::int32_t right = build(mid, end, depth + 1, right_sum, right_hist);
  nodes_[std::size_t(node_id)].left = left;
  nodes_[std::size_t(node_id)].right = right;
  return node_id;
}

double RegressionTree::predict_one(std::span<const double> x) const {
  DFV_CHECK(!nodes_.empty());
  // Fixed-depth descent: every path reaches its leaf within fit_depth_
  // steps and then self-loops, so the loop has no data-dependent exit
  // branch to mispredict. Leaves keep feature == -1; reading slot 0 for
  // them is harmless because both children point back at the leaf.
  std::int32_t cur = 0;
  for (int d = 0; d < fit_depth_; ++d) {
    const Node& nd = nodes_[std::size_t(cur)];
    const std::size_t f = std::size_t(nd.feature >= 0 ? nd.feature : 0);
    // Binning used lower_bound (code = #edges < v), so "code <= b" is
    // exactly "v <= edges[b]"; predict consistently.
    cur = x[f] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[std::size_t(cur)].value;
}

double RegressionTree::predict_binned(const BinnedDataset& data, std::size_t r) const {
  DFV_CHECK(!nodes_.empty());
  std::int32_t cur = 0;
  for (int d = 0; d < fit_depth_; ++d) {
    const Node& nd = nodes_[std::size_t(cur)];
    const std::size_t f = std::size_t(nd.feature >= 0 ? nd.feature : 0);
    cur = data.code(r, f) <= nd.bin ? nd.left : nd.right;
  }
  return nodes_[std::size_t(cur)].value;
}

std::vector<double> RegressionTree::predict(const Matrix& x) const {
  DFV_CHECK(!nodes_.empty());
  std::vector<double> out(x.rows());
  exec::parallel_for(0, x.rows(), 512, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) out[r] = predict_one(x.row(r));
  });
  return out;
}

}  // namespace dfv::ml
