// Attention-based forecaster (§IV-C): scalar dot-product attention over
// the embedded history window followed by a fully connected head, trained
// with Adam on standardized inputs/targets — a from-scratch implementation
// of the model family the paper uses ("the popular scalar dot-product
// attention along with a fully connected neural network").
//
// Input: a window of m time steps, each with `feat_dim` features
// (network counters, optionally placement / io / sys), flattened
// time-major into one row of length m * feat_dim.
// Output: y_tot^k(t_c), the sum of the next k step times.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/matrix.hpp"
#include "ml/scaler.hpp"

namespace dfv::ml {

class CompiledAttention;

struct AttentionParams {
  int d_model = 12;   ///< embedding width per time step
  int d_hidden = 16;  ///< FC head width
  int epochs = 40;
  int batch = 32;
  double lr = 3e-3;
  double weight_decay = 1e-5;
  std::uint64_t seed = 0xa77;
};

class AttentionForecaster {
 public:
  /// `m`: history length (time steps per window); `feat_dim`: features per step.
  AttentionForecaster(int m, int feat_dim, AttentionParams params = {});

  /// Train on windows (rows of length m*feat_dim) and targets. Features
  /// and targets are standardized internally.
  ///
  /// Training runs the batched fast path: each minibatch is cut into
  /// fixed kSlabRows-sample slabs whose forward/backward passes run as
  /// parallel tasks through the blocked matrix kernels, and whose
  /// partial gradients combine in slab order — bit-identical for any
  /// thread count and to fit_reference.
  void fit(const Matrix& x, std::span<const double> y);
  /// Same, over strided window views (no materialized design matrix).
  void fit(const RowBatch& x, std::span<const double> y);

  /// Per-sample scalar-loop implementation of exactly the same training
  /// semantics (same slab structure, same activation functions, same
  /// accumulation orders). Kept as the readability/equality reference:
  /// tests assert fit and fit_reference produce bit-identical models.
  void fit_reference(const Matrix& x, std::span<const double> y);

  [[nodiscard]] double predict_one(std::span<const double> window) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;
  /// Batched prediction over strided window views.
  [[nodiscard]] std::vector<double> predict(const RowBatch& x) const;

  /// Permutation importance per feature dimension (shuffling a feature
  /// across samples at all m time positions simultaneously) measured as
  /// the increase in MAPE; non-negative, normalized to sum to 1.
  [[nodiscard]] std::vector<double> permutation_importance(const Matrix& x,
                                                           std::span<const double> y,
                                                           Rng& rng,
                                                           int repeats = 2) const;

  [[nodiscard]] int history() const noexcept { return m_; }
  [[nodiscard]] int feat_dim() const noexcept { return feat_dim_; }
  /// Attention weights over the m history steps for one window (useful
  /// for inspecting what the model attends to).
  [[nodiscard]] std::vector<double> attention_weights(std::span<const double> window) const;

  /// Snapshot the fitted model into the pre-packed inference layout
  /// (see ml/compiled.hpp); predictions are bit-identical to this
  /// model's predict_* methods. Requires a fitted model. The batch
  /// predict path takes this route itself while `compiled_enabled()`
  /// (the default).
  [[nodiscard]] CompiledAttention compile() const;

 private:
  friend class CompiledAttention;

  struct Workspace;  // per-slab forward/backward arena (defined in .cpp)

  void fit_impl(const RowBatch& x, std::span<const double> y, bool batched);
  /// Batched forward/backward over one slab of `rows` samples whose
  /// standardized windows sit in the workspace arena.
  void forward_slab(Workspace& ws, std::size_t rows) const;
  void backward_slab(Workspace& ws, std::size_t rows) const;
  /// Scalar per-sample forward+backward for the same slab (the reference
  /// path; bit-identical to forward_slab + backward_slab).
  void slab_reference(Workspace& ws, std::size_t rows) const;

  int m_, feat_dim_;
  AttentionParams params_;
  StandardScaler scaler_;

  // Parameters (flattened):
  std::vector<double> w_embed_;    ///< d_model x feat_dim
  std::vector<double> b_embed_;    ///< d_model
  std::vector<double> pos_embed_;  ///< m x d_model learned positional encoding
  std::vector<double> query_;      ///< d_model
  std::vector<double> w_head_;   ///< d_hidden x d_model
  std::vector<double> b_head_;   ///< d_hidden
  std::vector<double> w_out_;    ///< d_hidden
  double b_out_ = 0.0;
};

}  // namespace dfv::ml
