#include "ml/gbr.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "exec/exec.hpp"
#include "ml/compiled.hpp"

namespace dfv::ml {

namespace {

// At -O3, GCC's -fsplit-paths duplicates the join after the child-select
// ternary, which replaces the cmov with data-dependent branches and makes
// interleaved tree traversal ~3x slower (bin codes are effectively random,
// so the branches mispredict constantly). Pin the kernel to branchless
// codegen; this is pure instruction selection, never a numeric change.
#if defined(__GNUC__) && !defined(__clang__)
#define DFV_ML_TRAVERSAL __attribute__((optimize("no-split-paths")))
#else
#define DFV_ML_TRAVERSAL
#endif

/// Advance a block of rows through one fitted tree in lock step and
/// accumulate `scale` x leaf value into f[rows[j]]. The per-row
/// dependent-load chains are independent, so interleaving them hides
/// node/code load latency (~1.6x over per-row predict_binned here).
/// Bit-identical to the per-row path: same leaf per row, same add.
/// `rows == nullptr` means the identity mapping (row j is matrix row j);
/// the branch is loop-invariant, so it predicts perfectly.
DFV_ML_TRAVERSAL
void add_scaled_leaves(const RegressionTree& tree, const BinnedDataset& data,
                       const std::size_t* rows, std::size_t lo, std::size_t hi,
                       double scale, double* f) {
  const auto nodes = tree.nodes();
  const int depth = tree.fitted_depth();
  const std::uint8_t* codes = data.feature_codes(0).data();
  const std::size_t R = data.rows();
  constexpr std::size_t kBlock = 16;
  std::int32_t cur[kBlock];
  std::size_t row[kBlock];
  for (std::size_t j0 = lo; j0 < hi; j0 += kBlock) {
    const std::size_t cnt = std::min(kBlock, hi - j0);
    for (std::size_t i = 0; i < cnt; ++i) {
      cur[i] = 0;
      row[i] = rows ? rows[j0 + i] : j0 + i;
    }
    for (int d = 0; d < depth; ++d)
      for (std::size_t i = 0; i < cnt; ++i) {
        const auto& nd = nodes[std::size_t(cur[i])];
        const std::size_t c = std::size_t(nd.feature >= 0 ? nd.feature : 0);
        cur[i] = codes[c * R + row[i]] <= nd.bin ? nd.left : nd.right;
      }
    for (std::size_t i = 0; i < cnt; ++i)
      f[row[i]] += scale * nodes[std::size_t(cur[i])].value;
  }
}

}  // namespace

void GradientBoostedRegressor::fit(const Matrix& x, std::span<const double> y) {
  DFV_CHECK(x.rows() == y.size());
  DFV_CHECK(x.rows() > 0);
  const BinnedDataset data(x, params_.tree.histogram_bins);
  const FeatureMask mask = FeatureMask::all(x.cols());
  fit_impl(data, y, {}, mask);
}

void GradientBoostedRegressor::fit(const BinnedDataset& data, std::span<const double> y,
                                   std::span<const std::size_t> rows,
                                   const FeatureMask& mask) {
  DFV_CHECK(!rows.empty());
  fit_impl(data, y, rows, mask);
}

void GradientBoostedRegressor::fit(const BinnedDataset& data, std::span<const double> y,
                                   const FeatureMask& mask) {
  fit_impl(data, y, {}, mask);
}

void GradientBoostedRegressor::fit_impl(const BinnedDataset& data,
                                        std::span<const double> y,
                                        std::span<const std::size_t> rows,
                                        const FeatureMask& mask) {
  DFV_CHECK(data.rows() == y.size());
  DFV_CHECK(data.rows() > 0);
  DFV_CHECK(params_.n_trees >= 1);
  DFV_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0);

  trees_.clear();
  gain_acc_.assign(data.features(), 0.0);

  // Empty `rows` is the identity row list, kept implicit: at a million
  // rows the materialized index array alone is 8 MB of peak RSS.
  const bool identity = rows.empty();
  const std::size_t n = identity ? data.rows() : rows.size();
  double y_sum = 0.0;
  if (identity)
    for (std::size_t r = 0; r < n; ++r) y_sum += y[r];
  else
    for (std::size_t r : rows) y_sum += y[r];
  f0_ = y_sum / double(n);

  // The boosted prediction is keyed by absolute matrix row; only entries
  // named in `rows` are ever touched. There is no residual array: each
  // tree fits against `y` with `f` as the baseline, so the negative
  // gradient y[r] - f[r] is formed inside the tree's node gather —
  // bit-identical to precomputing it, without a second 8-bytes/row
  // buffer at peak.
  std::vector<double> f(data.rows(), 0.0);
  if (identity)
    for (std::size_t r = 0; r < n; ++r) f[r] = f0_;
  else
    for (std::size_t r : rows) f[r] = f0_;
  Rng rng(params_.seed);

  const auto sub_n =
      std::max<std::size_t>(2, std::size_t(params_.subsample * double(n)));
  std::vector<std::size_t> sub_rows;       // per-tree subsample picks
  std::vector<std::size_t> identity_rows;  // only if identity + no subsample

  for (int t = 0; t < params_.n_trees; ++t) {
    std::span<const std::size_t> idx = rows;
    if (sub_n < n) {
      // The picks are indices into `rows`; under identity they already
      // ARE the matrix rows, so the remap (in place — each slot is read
      // before it is written) vanishes and no second buffer exists.
      // Last tree's picks are dead here; free them before the sampler
      // allocates so the two never coexist at peak.
      sub_rows = std::vector<std::size_t>();
      sub_rows = rng.sample_without_replacement(n, sub_n);
      if (!identity)
        for (std::size_t k = 0; k < sub_n; ++k) sub_rows[k] = rows[sub_rows[k]];
      idx = sub_rows;
    } else if (identity) {
      // Full-row trees need a real index array for the tree fit; built
      // once and reused (only reached with subsample == 1.0).
      if (identity_rows.empty()) {
        identity_rows.resize(n);
        for (std::size_t r = 0; r < n; ++r) identity_rows[r] = r;
      }
      idx = identity_rows;
    }
    RegressionTree tree;
    // The interleaved update below never reads the fitted partition, so
    // skip recording it: the stored ensemble keeps only nodes + gains,
    // not O(rows) per tree.
    tree.record_fitted_leaves(false);
    tree.fit(data, y, f, idx, mask, params_.tree);

    // Boosted-prediction update: every row walks the tree on uint8
    // codes via the interleaved fixed-depth traversal. That beats the
    // old stamp-and-skip scheme (its per-row in-sample test mispredicted
    // constantly); in-sample rows land in exactly the leaf the partition
    // assigned them, so the update is bit-identical either way.
    exec::parallel_for(0, n, 256, [&](std::size_t lo, std::size_t hi) {
      add_scaled_leaves(tree, data, identity ? nullptr : rows.data(), lo, hi,
                        params_.learning_rate, f.data());
    });
    for (std::size_t c = 0; c < data.features(); ++c)
      gain_acc_[c] += tree.feature_gains()[c];
    trees_.push_back(std::move(tree));
  }
}

double GradientBoostedRegressor::predict_one(std::span<const double> x) const {
  DFV_CHECK(params_.learning_rate > 0.0);
  double s = f0_;
  for (const auto& t : trees_) s += params_.learning_rate * t.predict_one(x);
  return s;
}

std::vector<double> GradientBoostedRegressor::predict(const Matrix& x) const {
  DFV_CHECK(params_.learning_rate > 0.0);
  // Flatten-then-predict is bit-identical to the per-tree walk below and
  // pays for the one-pass compile after a few dozen rows.
  if (compiled_enabled()) return compile().predict(x);
  std::vector<double> out(x.rows());
  exec::parallel_for(0, x.rows(), 128, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) out[r] = predict_one(x.row(r));
  });
  return out;
}

double GradientBoostedRegressor::predict_binned(const BinnedDataset& data,
                                                std::size_t r) const {
  DFV_CHECK(r < data.rows());
  double s = f0_;
  for (const auto& t : trees_) s += params_.learning_rate * t.predict_binned(data, r);
  return s;
}

std::vector<double> GradientBoostedRegressor::predict_rows(
    const BinnedDataset& data, std::span<const std::size_t> rows) const {
  DFV_CHECK(params_.learning_rate > 0.0);
  if (compiled_enabled()) return compile().predict_many(data, rows);
  std::vector<double> out(rows.size());
  exec::parallel_for(0, rows.size(), 128, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = predict_binned(data, rows[i]);
  });
  return out;
}

std::vector<double> GradientBoostedRegressor::feature_importances() const {
  std::vector<double> imp = gain_acc_;
  const double total = stats::sum(imp);
  if (total > 0.0)
    for (double& v : imp) v /= total;
  return imp;
}

}  // namespace dfv::ml
