#include "ml/gbr.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "exec/exec.hpp"

namespace dfv::ml {

void GradientBoostedRegressor::fit(const Matrix& x, std::span<const double> y) {
  DFV_CHECK(x.rows() == y.size());
  DFV_CHECK(x.rows() > 0);
  DFV_CHECK(params_.n_trees >= 1);
  DFV_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0);
  const BinnedDataset data(x, params_.tree.histogram_bins);
  std::vector<std::size_t> rows(x.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const FeatureMask mask = FeatureMask::all(x.cols());
  fit(data, y, rows, mask);
}

void GradientBoostedRegressor::fit(const BinnedDataset& data, std::span<const double> y,
                                   std::span<const std::size_t> rows,
                                   const FeatureMask& mask) {
  DFV_CHECK(data.rows() == y.size());
  DFV_CHECK(!rows.empty());
  DFV_CHECK(params_.n_trees >= 1);
  DFV_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0);

  trees_.clear();
  gain_acc_.assign(data.features(), 0.0);

  const std::size_t n = rows.size();
  double y_sum = 0.0;
  for (std::size_t r : rows) y_sum += y[r];
  f0_ = y_sum / double(n);

  // Residuals and the boosted prediction are keyed by absolute matrix
  // row; only entries named in `rows` are ever touched.
  std::vector<double> residual(data.rows(), 0.0);
  std::vector<double> f(data.rows(), 0.0);
  for (std::size_t r : rows) f[r] = f0_;
  // Per-tree in-sample marker (tick = tree index + 1): avoids clearing a
  // bitmap between trees.
  std::vector<std::uint32_t> stamp(data.rows(), 0);
  Rng rng(params_.seed);

  const auto sub_n =
      std::max<std::size_t>(2, std::size_t(params_.subsample * double(n)));
  std::vector<std::size_t> sub_rows;  // reused across trees; no subsample
                                      // means `rows` itself is the view
                                      // (no per-tree identity rebuild).

  for (int t = 0; t < params_.n_trees; ++t) {
    // Negative gradient of squared loss = residual.
    for (std::size_t r : rows) residual[r] = y[r] - f[r];

    std::span<const std::size_t> idx = rows;
    if (sub_n < n) {
      const std::vector<std::size_t> pick = rng.sample_without_replacement(n, sub_n);
      sub_rows.resize(sub_n);
      for (std::size_t k = 0; k < sub_n; ++k) sub_rows[k] = rows[pick[k]];
      idx = sub_rows;
    }

    RegressionTree tree;
    tree.fit(data, residual, idx, mask, params_.tree);

    // In-sample rows take their leaf output straight from the partition
    // the tree just computed — no traversal. Out-of-sample rows walk the
    // tree on uint8 codes. Row-disjoint writes either way.
    const auto leaves = tree.fitted_leaves();
    const std::uint32_t tick = std::uint32_t(t) + 1;
    for (std::size_t k = 0; k < idx.size(); ++k) {
      f[idx[k]] += params_.learning_rate * tree.leaf_value(leaves[k]);
      stamp[idx[k]] = tick;
    }
    exec::parallel_for(0, n, 256, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t j = lo; j < hi; ++j) {
        const std::size_t r = rows[j];
        if (stamp[r] != tick)
          f[r] += params_.learning_rate * tree.predict_binned(data, r);
      }
    });
    for (std::size_t c = 0; c < data.features(); ++c)
      gain_acc_[c] += tree.feature_gains()[c];
    trees_.push_back(std::move(tree));
  }
}

double GradientBoostedRegressor::predict_one(std::span<const double> x) const {
  DFV_CHECK(params_.learning_rate > 0.0);
  double s = f0_;
  for (const auto& t : trees_) s += params_.learning_rate * t.predict_one(x);
  return s;
}

std::vector<double> GradientBoostedRegressor::predict(const Matrix& x) const {
  DFV_CHECK(params_.learning_rate > 0.0);
  std::vector<double> out(x.rows());
  exec::parallel_for(0, x.rows(), 128, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) out[r] = predict_one(x.row(r));
  });
  return out;
}

double GradientBoostedRegressor::predict_binned(const BinnedDataset& data,
                                                std::size_t r) const {
  DFV_CHECK(r < data.rows());
  double s = f0_;
  for (const auto& t : trees_) s += params_.learning_rate * t.predict_binned(data, r);
  return s;
}

std::vector<double> GradientBoostedRegressor::predict_rows(
    const BinnedDataset& data, std::span<const std::size_t> rows) const {
  DFV_CHECK(params_.learning_rate > 0.0);
  std::vector<double> out(rows.size());
  exec::parallel_for(0, rows.size(), 128, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = predict_binned(data, rows[i]);
  });
  return out;
}

std::vector<double> GradientBoostedRegressor::feature_importances() const {
  std::vector<double> imp = gain_acc_;
  const double total = stats::sum(imp);
  if (total > 0.0)
    for (double& v : imp) v /= total;
  return imp;
}

}  // namespace dfv::ml
