#include "ml/gbr.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "exec/exec.hpp"

namespace dfv::ml {

void GradientBoostedRegressor::fit(const Matrix& x, std::span<const double> y) {
  DFV_CHECK(x.rows() == y.size());
  DFV_CHECK(x.rows() > 0);
  DFV_CHECK(params_.n_trees >= 1);
  DFV_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0);

  trees_.clear();
  gain_acc_.assign(x.cols(), 0.0);
  f0_ = stats::mean(y);

  const std::size_t n = x.rows();
  std::vector<double> residual(n);
  std::vector<double> f(n, f0_);
  Rng rng(params_.seed);

  const auto sub_n =
      std::max<std::size_t>(2, std::size_t(params_.subsample * double(n)));

  for (int t = 0; t < params_.n_trees; ++t) {
    // Negative gradient of squared loss = residual.
    for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - f[i];

    const std::vector<std::size_t> idx =
        sub_n >= n ? [&] {
          std::vector<std::size_t> all(n);
          for (std::size_t i = 0; i < n; ++i) all[i] = i;
          return all;
        }()
                   : rng.sample_without_replacement(n, sub_n);

    RegressionTree tree;
    tree.fit(x, residual, idx, params_.tree);
    // Row-disjoint writes; per-row arithmetic is order-independent.
    exec::parallel_for(0, n, 256, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        f[i] += params_.learning_rate * tree.predict_one(x.row(i));
    });
    for (std::size_t c = 0; c < x.cols(); ++c) gain_acc_[c] += tree.feature_gains()[c];
    trees_.push_back(std::move(tree));
  }
}

double GradientBoostedRegressor::predict_one(std::span<const double> x) const {
  double s = f0_;
  for (const auto& t : trees_) s += params_.learning_rate * t.predict_one(x);
  return s;
}

std::vector<double> GradientBoostedRegressor::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  exec::parallel_for(0, x.rows(), 128, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) out[r] = predict_one(x.row(r));
  });
  return out;
}

std::vector<double> GradientBoostedRegressor::feature_importances() const {
  std::vector<double> imp = gain_acc_;
  const double total = stats::sum(imp);
  if (total > 0.0)
    for (double& v : imp) v /= total;
  return imp;
}

}  // namespace dfv::ml
