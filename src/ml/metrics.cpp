#include "ml/metrics.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace dfv::ml {

double mape(std::span<const double> y_true, std::span<const double> y_pred, double floor) {
  DFV_CHECK(y_true.size() == y_pred.size());
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (std::abs(y_true[i]) < floor) continue;
    sum += std::abs((y_true[i] - y_pred[i]) / y_true[i]);
    ++n;
  }
  return n == 0 ? 0.0 : 100.0 * sum / double(n);
}

double mae(std::span<const double> y_true, std::span<const double> y_pred) {
  DFV_CHECK(y_true.size() == y_pred.size());
  if (y_true.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) sum += std::abs(y_true[i] - y_pred[i]);
  return sum / double(y_true.size());
}

double rmse(std::span<const double> y_true, std::span<const double> y_pred) {
  DFV_CHECK(y_true.size() == y_pred.size());
  if (y_true.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    sum += d * d;
  }
  return std::sqrt(sum / double(y_true.size()));
}

double r2(std::span<const double> y_true, std::span<const double> y_pred) {
  DFV_CHECK(y_true.size() == y_pred.size());
  if (y_true.size() < 2) return 0.0;
  const double mean = stats::mean(y_true);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace dfv::ml
