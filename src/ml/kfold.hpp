// Shuffled k-fold cross-validation splitter (the paper uses 10-fold CV
// for deviation prediction and CV splits for forecasting MAPE).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"

namespace dfv::ml {

struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Produce `k` shuffled folds over `n` samples. Every sample appears in
/// exactly one test set; fold sizes differ by at most one.
[[nodiscard]] std::vector<FoldSplit> kfold(std::size_t n, std::size_t k, Rng& rng);

/// Group-aware folds: samples sharing a group id (e.g. the run a step
/// belongs to) always land in the same fold, preventing leakage between
/// time steps of one run.
[[nodiscard]] std::vector<FoldSplit> group_kfold(std::span<const std::size_t> groups,
                                                 std::size_t k, Rng& rng);

/// Run `fn(fold_index)` once per fold on the global dfv::exec pool, one
/// task per fold. Fold bodies must write only fold-private state (e.g. a
/// partial-result slot indexed by fold); combine partials serially in fold
/// order afterwards so CV results are identical for any thread count.
/// Seed any per-fold model from the fold index (exec::substream_seed), not
/// from a shared mutable RNG.
void run_folds(std::size_t k, const std::function<void(std::size_t)>& fn);

}  // namespace dfv::ml
