// Standardization (zero mean, unit variance per column): all the models
// in the analysis pipeline train on standardized features.
#pragma once

#include <vector>

#include "ml/matrix.hpp"

namespace dfv::ml {

class StandardScaler {
 public:
  void fit(const Matrix& x);
  /// Same statistics over a strided-view batch (identical summation
  /// order, so a RowBatch over a Matrix's rows gives bit-equal results).
  void fit(const RowBatch& x);
  /// Transform in place; constant columns map to zero.
  void transform(Matrix& x) const;
  [[nodiscard]] Matrix fit_transform(Matrix x);

  [[nodiscard]] const std::vector<double>& means() const noexcept { return mean_; }
  [[nodiscard]] const std::vector<double>& stddevs() const noexcept { return std_; }

  /// Scalar target helpers (fit on a target vector).
  void fit_target(std::span<const double> y);
  [[nodiscard]] double transform_target(double y) const;
  [[nodiscard]] double inverse_target(double z) const;

 private:
  std::vector<double> mean_, std_;
  double y_mean_ = 0.0, y_std_ = 1.0;
};

}  // namespace dfv::ml
