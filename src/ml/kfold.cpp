#include "ml/kfold.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "exec/exec.hpp"

namespace dfv::ml {

std::vector<FoldSplit> kfold(std::size_t n, std::size_t k, Rng& rng) {
  DFV_CHECK(k >= 2 && n >= k);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.shuffle(idx);

  std::vector<FoldSplit> folds(k);
  for (std::size_t i = 0; i < n; ++i) folds[i % k].test.push_back(idx[i]);
  for (std::size_t f = 0; f < k; ++f) {
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      folds[f].train.insert(folds[f].train.end(), folds[g].test.begin(),
                            folds[g].test.end());
    }
    std::sort(folds[f].test.begin(), folds[f].test.end());
    std::sort(folds[f].train.begin(), folds[f].train.end());
  }
  return folds;
}

std::vector<FoldSplit> group_kfold(std::span<const std::size_t> groups, std::size_t k,
                                   Rng& rng) {
  // Unique group ids, shuffled, dealt round-robin into folds.
  std::vector<std::size_t> uniq(groups.begin(), groups.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  DFV_CHECK_MSG(uniq.size() >= k, "need at least k distinct groups for group k-fold");
  rng.shuffle(uniq);

  // group id -> fold
  std::vector<std::pair<std::size_t, std::size_t>> fold_of;
  fold_of.reserve(uniq.size());
  for (std::size_t i = 0; i < uniq.size(); ++i) fold_of.emplace_back(uniq[i], i % k);
  std::sort(fold_of.begin(), fold_of.end());
  auto lookup = [&](std::size_t g) {
    auto it = std::lower_bound(fold_of.begin(), fold_of.end(),
                               std::make_pair(g, std::size_t(0)));
    return it->second;
  };

  std::vector<FoldSplit> folds(k);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const std::size_t f = lookup(groups[i]);
    for (std::size_t g = 0; g < k; ++g)
      (g == f ? folds[g].test : folds[g].train).push_back(i);
  }
  return folds;
}

void run_folds(std::size_t k, const std::function<void(std::size_t)>& fn) {
  DFV_CHECK(fn != nullptr);
  exec::parallel_for(0, k, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t f = lo; f < hi; ++f) fn(f);
  });
}

}  // namespace dfv::ml
