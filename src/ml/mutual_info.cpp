#include "ml/mutual_info.hpp"

#include <cmath>
#include <map>
#include <vector>

#include "common/check.hpp"

namespace dfv::ml {

double mutual_information(std::span<const int> xs, std::span<const int> ys) {
  DFV_CHECK(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n == 0) return 0.0;

  std::map<int, double> px, py;
  std::map<std::pair<int, int>, double> pxy;
  const double w = 1.0 / double(n);
  for (std::size_t i = 0; i < n; ++i) {
    px[xs[i]] += w;
    py[ys[i]] += w;
    pxy[{xs[i], ys[i]}] += w;
  }

  double mi = 0.0;
  for (const auto& [key, p] : pxy) {
    if (p <= 0.0) continue;
    mi += p * std::log(p / (px[key.first] * py[key.second]));
  }
  return std::max(0.0, mi);
}

double mutual_information_binary(std::span<const double> xs, std::span<const double> ys) {
  DFV_CHECK(xs.size() == ys.size());
  std::vector<int> xi(xs.size()), yi(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xi[i] = xs[i] != 0.0 ? 1 : 0;
    yi[i] = ys[i] != 0.0 ? 1 : 0;
  }
  return mutual_information(xi, yi);
}

// dfv-lint: allow(contract): total over all int sequences; empty input is defined as zero entropy
double entropy(std::span<const int> xs) {
  if (xs.empty()) return 0.0;
  std::map<int, double> p;
  const double w = 1.0 / double(xs.size());
  for (int x : xs) p[x] += w;
  double h = 0.0;
  for (const auto& [_, v] : p)
    if (v > 0.0) h -= v * std::log(v);
  return h;
}

}  // namespace dfv::ml
