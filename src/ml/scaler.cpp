#include "ml/scaler.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace dfv::ml {

void StandardScaler::fit(const Matrix& x) {
  DFV_CHECK(x.rows() == 0 || x.cols() > 0);
  const std::size_t C = x.cols(), R = x.rows();
  mean_.assign(C, 0.0);
  std_.assign(C, 1.0);
  if (R == 0) return;
  for (std::size_t r = 0; r < R; ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < C; ++c) mean_[c] += row[c];
  }
  for (double& m : mean_) m /= double(R);
  std::vector<double> var(C, 0.0);
  for (std::size_t r = 0; r < R; ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < C; ++c) {
      const double d = row[c] - mean_[c];
      var[c] += d * d;
    }
  }
  for (std::size_t c = 0; c < C; ++c)
    std_[c] = var[c] > 0.0 ? std::sqrt(var[c] / double(R)) : 1.0;
}

void StandardScaler::fit(const RowBatch& x) {
  DFV_CHECK(x.size() == 0 || x.row_len() > 0);
  const std::size_t C = x.row_len(), R = x.size();
  mean_.assign(C, 0.0);
  std_.assign(C, 1.0);
  if (R == 0) return;
  std::vector<double> row(C);
  for (std::size_t r = 0; r < R; ++r) {
    x.gather(r, row.data());
    for (std::size_t c = 0; c < C; ++c) mean_[c] += row[c];
  }
  for (double& m : mean_) m /= double(R);
  std::vector<double> var(C, 0.0);
  for (std::size_t r = 0; r < R; ++r) {
    x.gather(r, row.data());
    for (std::size_t c = 0; c < C; ++c) {
      const double d = row[c] - mean_[c];
      var[c] += d * d;
    }
  }
  for (std::size_t c = 0; c < C; ++c)
    std_[c] = var[c] > 0.0 ? std::sqrt(var[c] / double(R)) : 1.0;
}

void StandardScaler::transform(Matrix& x) const {
  DFV_CHECK(x.cols() == mean_.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] = (row[c] - mean_[c]) / std_[c];
  }
}

Matrix StandardScaler::fit_transform(Matrix x) {
  DFV_CHECK(x.rows() == 0 || x.cols() > 0);
  fit(x);
  transform(x);
  return x;
}

void StandardScaler::fit_target(std::span<const double> y) {
  DFV_CHECK(!y.empty());
  y_mean_ = stats::mean(y);
  const double s = stats::stddev(y);
  y_std_ = s > 0.0 ? s : 1.0;
}

double StandardScaler::transform_target(double y) const { return (y - y_mean_) / y_std_; }

double StandardScaler::inverse_target(double z) const { return z * y_std_ + y_mean_; }

}  // namespace dfv::ml
