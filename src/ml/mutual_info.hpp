// Mutual information between discrete random variables (Eq. 1 of the
// paper), used by the neighborhood analysis to quantify the dependency
// between user co-occurrence and run optimality.
#pragma once

#include <span>

namespace dfv::ml {

/// MI in nats between two samples of non-negative small-integer labels
/// (joint distribution estimated from co-occurrence counts).
[[nodiscard]] double mutual_information(std::span<const int> xs, std::span<const int> ys);

/// Convenience for binary vectors stored as 0/1 doubles.
[[nodiscard]] double mutual_information_binary(std::span<const double> xs, std::span<const double> ys);

/// Entropy in nats of a discrete sample.
[[nodiscard]] double entropy(std::span<const int> xs);

}  // namespace dfv::ml
