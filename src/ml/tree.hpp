// Histogram-based CART regression tree: the base learner for gradient
// boosting (Friedman 2001, the model family the paper uses via GBR).
//
// Split finding uses per-feature quantile bins built once per fit, so a
// node costs O(samples * features + bins * features) instead of the
// exact-greedy O(samples log samples * features).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/matrix.hpp"

namespace dfv::ml {

struct TreeParams {
  int max_depth = 3;
  int min_samples_leaf = 20;
  int histogram_bins = 24;
};

class RegressionTree {
 public:
  /// Fit on rows `idx` of `x` against `y`. The tree may be refit; previous
  /// state is discarded.
  void fit(const Matrix& x, std::span<const double> y, std::span<const std::size_t> idx,
           const TreeParams& params);

  [[nodiscard]] double predict_one(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;

  /// Total squared-error reduction contributed by splits on each feature.
  [[nodiscard]] const std::vector<double>& feature_gains() const noexcept {
    return gains_;
  }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;          ///< -1 for leaves
    double threshold = 0.0;    ///< go left if x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;        ///< leaf prediction
  };

  std::int32_t build(std::vector<std::uint32_t>& samples, std::size_t begin,
                     std::size_t end, int depth);

  // Fit-time state (cleared after fit).
  const Matrix* x_ = nullptr;
  std::span<const double> y_;
  TreeParams params_;
  std::vector<std::uint8_t> binned_;              ///< idx-local sample x feature bins
  std::vector<std::vector<double>> bin_edges_;    ///< per feature, ascending
  std::vector<std::uint32_t> local_rows_;         ///< idx-local -> matrix row

  std::vector<Node> nodes_;
  std::vector<double> gains_;
};

}  // namespace dfv::ml
