// Histogram-based CART regression tree: the base learner for gradient
// boosting (Friedman 2001, the model family the paper uses via GBR).
//
// Split finding works on a shared BinnedDataset (quantile bins computed
// once per training matrix, not once per tree), restricted to a row
// view and an active-feature mask. Node histograms use the subtraction
// trick: only the smaller child of a split is scanned; the sibling's
// histogram is derived as parent − child, so a full level of the tree
// costs one pass over the node's samples instead of two.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/binned.hpp"
#include "ml/matrix.hpp"

namespace dfv::ml {

struct TreeParams {
  int max_depth = 3;
  int min_samples_leaf = 20;
  int histogram_bins = 24;
};

class RegressionTree {
 public:
  struct Node {
    int feature = -1;          ///< -1 for leaves
    double threshold = 0.0;    ///< go left if x[feature] <= threshold
    std::uint8_t bin = 0;      ///< go left if code(feature) <= bin
    std::int32_t left = -1;    ///< leaves self-loop (left == right == self)
    std::int32_t right = -1;
    double value = 0.0;        ///< leaf prediction
  };

  /// Fit on rows `idx` of `x` against `y` (convenience path: builds a
  /// private BinnedDataset over `x` and delegates to the shared-view
  /// overload with every feature active). The tree may be refit;
  /// previous state is discarded.
  void fit(const Matrix& x, std::span<const double> y, std::span<const std::size_t> idx,
           const TreeParams& params);

  /// Fast path: fit on rows `rows` of a prebuilt binned view, splitting
  /// only on features `mask` marks active. `y` is indexed by absolute
  /// matrix row (y.size() == data.rows()). Splits, gains, and thresholds
  /// are reported in the *global* feature index space, so the fitted
  /// tree predicts from full-width rows without any column selection.
  void fit(const BinnedDataset& data, std::span<const double> y,
           std::span<const std::size_t> rows, const FeatureMask& mask,
           const TreeParams& params);

  /// Residual-fitting path: identical to the overload above, except the
  /// tree fits the pointwise difference `y[r] - baseline[r]` (empty
  /// baseline means plain `y[r]`). Boosting passes its running
  /// prediction here so the residual is formed inside the node gather
  /// instead of being materialized — at a million rows that array is
  /// 8 MB of peak RSS per fit. Same subtraction, same accumulation
  /// order, so the fit is bit-identical to precomputing the residuals.
  void fit(const BinnedDataset& data, std::span<const double> y,
           std::span<const double> baseline, std::span<const std::size_t> rows,
           const FeatureMask& mask, const TreeParams& params);

  [[nodiscard]] double predict_one(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;
  /// Predict for a row of the binned view the tree was fitted on:
  /// traverses uint8 codes instead of doubles. Bit-identical to
  /// `predict_one(data.source().row(r))` because code(b) <= split_bin
  /// iff value <= edges[split_bin].
  [[nodiscard]] double predict_binned(const BinnedDataset& data, std::size_t r) const;

  /// Leaf node reached by the k-th fitted row (order of `rows`/`idx` as
  /// passed to fit). Valid until the next fit; pair with `leaf_value`
  /// so boosting can update in-sample predictions without re-traversal.
  /// Empty if recording was turned off before the fit.
  [[nodiscard]] std::span<const std::int32_t> fitted_leaves() const noexcept {
    return fitted_leaf_;
  }
  /// Opt out of per-sample leaf recording before calling fit. Owners
  /// that fit many trees but never read the partition (boosting uses
  /// code traversal for its update) skip an O(rows) allocation per tree.
  void record_fitted_leaves(bool on) noexcept { record_leaves_ = on; }
  [[nodiscard]] double leaf_value(std::int32_t node) const {
    return nodes_[std::size_t(node)].value;
  }

  /// Total squared-error reduction contributed by splits on each feature
  /// (global feature index space).
  [[nodiscard]] const std::vector<double>& feature_gains() const noexcept {
    return gains_;
  }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  /// Depth of the deepest fitted leaf (0 = the root is a leaf). Every
  /// root-to-leaf path ends within this many steps; leaves self-loop, so
  /// fixed-depth traversal is safe and branch-free.
  [[nodiscard]] int fitted_depth() const noexcept { return fit_depth_; }
  /// Immutable node table (preorder is not guaranteed; children are
  /// absolute indices). The compiled-inference flattener consumes this.
  [[nodiscard]] std::span<const Node> nodes() const noexcept { return nodes_; }

 private:
  /// Per-node histogram over the active features: flat [feature * bins]
  /// slabs of target sums and sample counts.
  struct Hist {
    std::vector<double> sum;
    std::vector<std::uint32_t> cnt;
  };

  void scan_hist(std::size_t begin, std::size_t end, Hist& h);
  [[nodiscard]] std::int32_t build(std::size_t begin, std::size_t end, int depth, double node_sum,
                     Hist* hist);

  // Fit-time state (released after fit).
  const BinnedDataset* data_ = nullptr;
  const FeatureMask* mask_ = nullptr;
  std::span<const double> y_;
  std::span<const double> baseline_;  ///< fit targets y_[r] - baseline_[r]
  TreeParams params_;
  std::size_t bins_ = 0;
  std::vector<std::uint32_t> local_rows_;  ///< local sample id -> matrix row
  std::vector<std::uint32_t> samples_;     ///< partition-ordered local ids
  std::vector<Hist> hist_arena_;           ///< one buffer per depth level
  std::vector<std::uint32_t> scan_rows_;   ///< per-scan gathered matrix rows
  std::vector<double> scan_y_;             ///< per-scan gathered targets

  std::vector<Node> nodes_;
  std::vector<double> gains_;
  std::vector<std::int32_t> fitted_leaf_;  ///< local sample id -> leaf node
  bool record_leaves_ = true;              ///< fill fitted_leaf_ during fit
  int fit_depth_ = 0;                      ///< depth of the deepest leaf
};

}  // namespace dfv::ml
