// Quickstart: build a small dragonfly cluster, run one instrumented MILC
// job with and without heavy background traffic, and inspect step times,
// the mpiP-style profile, and the Aries counter deltas.
//
//   ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "apps/registry.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "sim/cluster.hpp"

using namespace dfv;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // An 8-group dragonfly: 8 x (3x4 routers) x 4 nodes = 384 nodes.
  net::DragonflyConfig machine = net::DragonflyConfig::small(8);
  machine.nodes_per_router = 4;
  std::cout << net::Topology(machine).describe() << "\n";

  const auto milc = apps::make_milc(128);

  // --- Run 1: idle machine (no background users) ------------------------
  sim::Cluster quiet(machine, {}, /*users=*/{}, seed);
  const sim::RunRecord idle = quiet.run_app(*milc);

  // --- Run 2: machine shared with a heavy user population ---------------
  auto users = sched::default_user_population(/*quiet_users=*/6);
  for (auto& u : users) {  // scale job sizes to the small machine
    u.min_nodes = std::min(u.min_nodes, 64);
    u.max_nodes = std::min(u.max_nodes, 96);
  }
  sim::ClusterParams busy_params;
  busy_params.max_bg_utilization = 0.6;
  sim::Cluster busy(machine, busy_params, std::move(users), seed);
  busy.slurm().advance_to(12 * 3600.0);  // let the machine fill up
  const sim::RunRecord contended = busy.run_app(*milc);

  // --- Report -----------------------------------------------------------
  Table t({"run", "total (s)", "MPI %", "NUM_ROUTERS", "NUM_GROUPS"});
  t.add_row({"idle machine", format_double(idle.total_time_s(), 1),
             format_double(100.0 * idle.profile.mpi_fraction(), 1),
             std::to_string(idle.num_routers), std::to_string(idle.num_groups)});
  t.add_row({"contended machine", format_double(contended.total_time_s(), 1),
             format_double(100.0 * contended.profile.mpi_fraction(), 1),
             std::to_string(contended.num_routers), std::to_string(contended.num_groups)});
  std::cout << t.str() << "\n";
  std::cout << "slowdown from contention: "
            << format_double(contended.total_time_s() / idle.total_time_s(), 2)
            << "x\n\n";

  std::cout << line_plot({Series{"idle", idle.step_times},
                          Series{"contended", contended.step_times}},
                         {.width = 70,
                          .height = 12,
                          .title = "MILC time per step (s)",
                          .x_label = "step",
                          .y_from_zero = true});

  std::cout << "\nAries counter deltas, step 30 (per-job aggregate):\n";
  Table ct({"counter", "idle", "contended"});
  for (int c = 0; c < mon::kNumCounters; ++c) {
    ct.add_row({mon::counter_name(mon::counter_from_index(c)),
                format_sci(idle.step_counters[30][std::size_t(c)]),
                format_sci(contended.step_counters[30][std::size_t(c)])});
  }
  std::cout << ct.str();
  return 0;
}
