// Scheduler what-if: the paper's motivating use case for the analyses
// ("a resource manager can use such historical data to delay scheduling
// jobs that are communication-sensitive when certain other jobs are
// already running", §V-A; exploited further in the authors' future work).
//
// We (1) run a small campaign, (2) learn the blamed-user list via the
// neighborhood analysis, and (3) compare a victim app's run time when
// scheduled while a blamed user is active vs. delayed until it is not.
//
//   ./scheduler_whatif
#include <algorithm>
#include <iostream>

#include "analysis/neighborhood.hpp"
#include "common/table.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "core/study.hpp"

using namespace dfv;

namespace {

bool blamed_user_active(const sim::Cluster& cluster, const std::vector<int>& blamed) {
  for (const auto& job : cluster.slurm().running_background()) {
    if (job.placement.num_nodes() < 256) continue;  // only large jobs matter
    if (std::find(blamed.begin(), blamed.end(), job.user_id) != blamed.end()) return true;
  }
  return false;
}

}  // namespace

int main() {
  set_log_level(LogLevel::Warn);
  sim::CampaignConfig cfg = sim::CampaignConfig::small(/*seed=*/5);
  cfg.days = 12;
  cfg.datasets = {{"MILC", 128}};
  core::VariabilityStudy study(cfg);

  // Step 1+2: learn who to avoid from historical data.
  const auto blame = study.neighborhood("MILC", 128);
  const std::vector<int> blamed = analysis::blamed_users(blame, /*top_k=*/4);
  std::cout << "learned blamed users (top MI, negatively correlated):";
  for (int u : blamed) std::cout << " User-" << u;
  std::cout << "\n\n";

  // Step 3: schedule MILC jobs naively vs. congestion-aware, at Cori
  // scale where aggressor jobs are large enough to matter.
  const auto milc = apps::make_milc(128);
  auto make_cluster = [&](std::uint64_t seed) {
    sim::Cluster c(net::DragonflyConfig::cori(), {}, sched::default_user_population(24),
                   seed);
    c.slurm().advance_to(12 * 3600.0);
    return c;
  };

  std::vector<double> naive_times, aware_times;
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t seed = 1000 + std::uint64_t(i);
    {
      sim::Cluster c = make_cluster(seed);
      naive_times.push_back(c.run_app(*milc).total_time_s());
    }
    {
      sim::Cluster c = make_cluster(seed);
      // Congestion-aware: delay up to 12h in 30-minute slots until no
      // blamed user is running a large job.
      for (int slot = 0; slot < 24 && blamed_user_active(c, blamed); ++slot) {
        c.slurm().advance_to(c.slurm().now() + 1800.0);
        c.slurm().step_intensities(1800.0);
        c.invalidate_background();
      }
      aware_times.push_back(c.run_app(*milc).total_time_s());
    }
  }

  const double naive_mean = stats::mean(naive_times);
  const double aware_mean = stats::mean(aware_times);
  Table t({"policy", "mean MILC time (s)", "p90 (s)"});
  t.add_row({"schedule immediately", format_double(naive_mean, 1),
             format_double(stats::percentile(naive_times, 0.9), 1)});
  t.add_row({"delay while blamed user active", format_double(aware_mean, 1),
             format_double(stats::percentile(aware_times, 0.9), 1)});
  std::cout << t.str();
  std::cout << "\nmean speedup from congestion-aware scheduling: "
            << format_double(naive_mean / aware_mean, 2) << "x\n";
  return 0;
}
