// Forecast demo: generate a small campaign, train the attention
// forecaster on MILC windows, and forecast a held-out run step-segment
// by step-segment (a miniature of the paper's Fig. 12 workflow).
//
//   ./forecast_demo
#include <iostream>

#include "analysis/forecast.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "core/study.hpp"

using namespace dfv;

int main() {
  set_log_level(LogLevel::Warn);
  // Small machine + short campaign so the demo runs in seconds.
  sim::CampaignConfig cfg = sim::CampaignConfig::small(/*seed=*/3);
  cfg.days = 14;
  cfg.datasets = {{"MILC", 128}};
  core::VariabilityStudy study(cfg);

  const sim::Dataset& milc = study.dataset("MILC", 128);
  std::cout << "campaign generated " << milc.num_runs() << " MILC-128 runs of "
            << milc.steps_per_run() << " steps each\n\n";

  const analysis::WindowConfig wcfg{/*m=*/10, /*k=*/20, analysis::FeatureSet::App};
  analysis::ForecastConfig fcfg;
  fcfg.attention.epochs = 25;

  const analysis::ForecastEval eval = analysis::evaluate_forecast(milc, wcfg, fcfg);
  Table t({"model", "MAPE (%)"});
  t.add_row({"attention forecaster", format_double(eval.mape_attention, 2)});
  t.add_row({"persistence (k x mean of last m)", format_double(eval.mape_persistence, 2)});
  t.add_row({"dataset mean", format_double(eval.mape_mean, 2)});
  std::cout << t.str() << "\n";

  // Forecast the last run as if it were unseen: train on the rest.
  sim::Dataset train = milc;
  const sim::RunRecord held_out = train.runs.back();
  train.runs.pop_back();
  const analysis::WindowConfig seg_cfg{/*m=*/10, /*k=*/10, analysis::FeatureSet::App};
  const analysis::LongRunForecast lr =
      analysis::forecast_long_run(train, held_out, seg_cfg, fcfg);

  std::cout << "held-out run, " << lr.observed.size() << " segments of " << seg_cfg.k
            << " steps, MAPE " << format_double(lr.mape, 2) << "%\n";
  std::cout << line_plot({Series{"observed", lr.observed}, Series{"predicted", lr.predicted}},
                         {.width = 60,
                          .height = 10,
                          .title = "held-out MILC run: time per segment (s)",
                          .x_label = "segment"});
  return 0;
}
