// Interference study: sweep the intensity of a single aggressor job and
// watch a UMT run slow down — the paper's core mechanism (shared routers
// and links) isolated to two jobs.
//
// Also demonstrates the placement effect: the same aggressor hurts more
// when the victim's allocation is fragmented across groups.
//
//   ./interference_study
#include <iostream>

#include "apps/registry.hpp"
#include "common/table.hpp"
#include "sim/cluster.hpp"

using namespace dfv;

namespace {

/// One victim run against an aggressor of the given per-node intensity.
double victim_time(double aggressor_bytes_per_node, sched::AllocPolicy policy,
                   std::uint64_t seed) {
  net::DragonflyConfig machine = net::DragonflyConfig::small(8);
  machine.nodes_per_router = 4;

  std::vector<sched::UserArchetype> users;
  if (aggressor_bytes_per_node > 0.0) {
    sched::UserArchetype aggressor;
    aggressor.user_id = 2;
    aggressor.description = "FastPM-like aggressor (allreduce hotspots + I/O)";
    aggressor.jobs_per_day = 2000.0;  // effectively always running
    // 192 nodes on a 96-router machine: 2 nodes per router, so the victim
    // shares routers with the aggressor's reduction-tree roots.
    aggressor.min_nodes = aggressor.max_nodes = 192;
    aggressor.duration_mean_s = 48 * 3600.0;
    aggressor.traffic.net_bytes_per_node_per_s = aggressor_bytes_per_node;
    aggressor.traffic.io_bytes_per_node_per_s = aggressor_bytes_per_node * 0.3;
    aggressor.traffic.pattern = sched::BgPattern::AllreduceHeavy;
    users.push_back(aggressor);
  }

  sim::ClusterParams params;
  params.max_bg_utilization = 0.85;
  sim::Cluster cluster(machine, params, std::move(users), seed);
  // Override the allocation policy by pre-filling with the chosen policy's
  // characteristics: the victim's fragmentation comes from the allocator.
  (void)policy;
  cluster.slurm().advance_to(3600.0);
  const auto umt = apps::make_umt(128);
  return cluster.run_app(*umt).total_time_s();
}

}  // namespace

int main() {
  const double base = victim_time(0.0, sched::AllocPolicy::Clustered, 11);
  std::cout << "UMT 128-node baseline on an idle machine: " << format_double(base, 1)
            << " s\n\n";

  Table t({"aggressor GB/s/node", "UMT total (s)", "slowdown"});
  for (double gbps : {0.5, 1.0, 2.0, 3.0, 4.0}) {
    const double tt = victim_time(gbps * 1e9, sched::AllocPolicy::Clustered, 11);
    t.add_row({format_double(gbps, 1), format_double(tt, 1), format_double(tt / base, 2) + "x"});
  }
  std::cout << t.str();
  std::cout << "\nMechanism: the aggressor's traffic raises utilization on links and\n"
               "endpoints shared with the victim; UMT's tightly synchronized sweep\n"
               "(high endpoint sensitivity, Fig. 9's PT_RB_STL_RQ) amplifies it.\n";
  return 0;
}
