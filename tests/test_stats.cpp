#include "common/stats.hpp"

#include "common/check.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dfv::stats {
namespace {

TEST(Stats, MeanAndSum) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(sum(xs), 10.0);
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, KahanSummationResistsCancellation) {
  std::vector<double> xs(10000, 0.1);
  EXPECT_NEAR(sum(xs), 1000.0, 1e-9);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, PercentileRejectsBadQuantile) {
  const std::vector<double> xs = {1, 2};
  EXPECT_THROW((void)percentile(xs, 1.5), ContractError);
}

TEST(Stats, SummarizeConsistent) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  const std::vector<double> zs = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::vector<double> xs = {1, 1, 1};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, SpearmanMonotonicNonlinear) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(std::exp(x));  // monotone, nonlinear
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, RanksAverageTies) {
  const std::vector<double> xs = {10, 20, 20, 30};
  const auto r = ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, CoeffVariation) {
  const std::vector<double> xs = {9, 10, 11};
  EXPECT_NEAR(coeff_variation(xs), 1.0 / 10.0, 1e-12);
}

TEST(Stats, OnlineMatchesBatch) {
  const std::vector<double> xs = {1.5, 2.5, -3.0, 7.25, 0.0, 4.5};
  Online o;
  for (double x : xs) o.add(x);
  EXPECT_EQ(o.count(), xs.size());
  EXPECT_NEAR(o.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(o.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(o.min(), -3.0);
  EXPECT_DOUBLE_EQ(o.max(), 7.25);
}

TEST(Stats, HistogramClampsOutliers) {
  const std::vector<double> xs = {-10, 0.5, 1.5, 2.5, 100};
  const auto h = histogram(xs, 0.0, 3.0, 3);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 2u);  // -10 clamps into first bucket
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 2u);  // 100 clamps into last bucket
}

}  // namespace
}  // namespace dfv::stats
