#include "mon/ldms.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dfv::mon {
namespace {

class LdmsTest : public ::testing::Test {
 protected:
  LdmsTest()
      : topo_(net::DragonflyConfig::small(4)),
        model_(topo_),
        sampler_(model_, make_default_io_routers(topo_, 1)) {
    bg_.resize(topo_);
    job_.resize(topo_);
  }
  net::Topology topo_;
  CounterModel model_;
  LdmsSampler sampler_;
  net::RateLoads bg_;
  net::ByteLoads job_;
};

TEST_F(LdmsTest, DefaultIoRoutersOnePerGroup) {
  const auto io = make_default_io_routers(topo_, 1);
  EXPECT_EQ(io.size(), std::size_t(topo_.config().groups));
  std::vector<net::GroupId> groups;
  for (auto r : io) groups.push_back(topo_.group_of(r));
  std::sort(groups.begin(), groups.end());
  EXPECT_EQ(std::unique(groups.begin(), groups.end()) - groups.begin(),
            topo_.config().groups);
}

TEST_F(LdmsTest, MultipleIoRoutersPerGroupDistinct) {
  const auto io = make_default_io_routers(topo_, 3);
  EXPECT_EQ(io.size(), std::size_t(3 * topo_.config().groups));
}

TEST_F(LdmsTest, ZeroTrafficZeroFeatures) {
  const LdmsFeatures f = sampler_.sample(bg_, job_, 1.0, {});
  for (double v : f.io) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : f.sys) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_F(LdmsTest, IoAggregateSeesIoRouterTraffic) {
  const net::RouterId io_router = sampler_.io_routers().front();
  bg_.inject_rate[std::size_t(io_router)] = 1e9;
  const LdmsFeatures f = sampler_.sample(bg_, job_, 1.0, {});
  EXPECT_GT(f.io[2], 0.0);  // IO_PT_FLIT_TOT
  EXPECT_GT(f.io[3], 0.0);  // IO_PT_PKT_TOT
}

TEST_F(LdmsTest, SysAggregateExcludesJobRouters) {
  // Traffic injected only at the job's router must not appear in sys.
  const net::RouterId job_router = 5;
  ASSERT_EQ(std::count(sampler_.io_routers().begin(), sampler_.io_routers().end(),
                       job_router),
            0);
  job_.inject_bytes[std::size_t(job_router)] = 64e6;
  const std::vector<net::RouterId> job_routers = {job_router};

  const LdmsFeatures with_exclusion = sampler_.sample(bg_, job_, 1.0, job_routers);
  const LdmsFeatures without = sampler_.sample(bg_, job_, 1.0, {});
  EXPECT_NEAR(with_exclusion.sys[2], 0.0, 1e-6);
  EXPECT_GT(without.sys[2], 0.0);
}

TEST_F(LdmsTest, SysSeesRemoteTraffic) {
  // Traffic on a router that is neither ours nor I/O shows up in sys.
  net::RouterId remote = 9;
  while (std::count(sampler_.io_routers().begin(), sampler_.io_routers().end(), remote))
    ++remote;
  bg_.inject_rate[std::size_t(remote)] = 2e9;
  const std::vector<net::RouterId> job_routers = {0};
  const LdmsFeatures f = sampler_.sample(bg_, job_, 1.0, job_routers);
  EXPECT_GT(f.sys[2], 0.0);
  EXPECT_NEAR(f.sys[3], f.sys[2] / topo_.config().flits_per_packet, 1e-6);
}

TEST_F(LdmsTest, LinkStallsCountedSystemWide) {
  // Saturate one link not adjacent to the job: SYS_RT_RB_STL > 0.
  const net::LinkId e = topo_.green_link(2, 1, 0, 1);
  bg_.link_rate[std::size_t(e)] = topo_.link(e).capacity * 1.1;
  const std::vector<net::RouterId> job_routers = {0};
  const LdmsFeatures f = sampler_.sample(bg_, job_, 1.0, job_routers);
  EXPECT_GT(f.sys[1], 0.0);  // SYS_RT_RB_STL
  EXPECT_GT(f.sys[0], 0.0);  // SYS_RT_FLIT_TOT
}

}  // namespace
}  // namespace dfv::mon
