#include "mon/mpip.hpp"

#include <gtest/gtest.h>

namespace dfv::mon {
namespace {

TEST(MpiProfile, StartsEmpty) {
  const MpiProfile p;
  EXPECT_DOUBLE_EQ(p.total_s(), 0.0);
  EXPECT_DOUBLE_EQ(p.mpi_fraction(), 0.0);
}

TEST(MpiProfile, AccumulatesRoutinesAndCompute) {
  MpiProfile p;
  p.add_compute(10.0);
  p.add(MpiRoutine::Allreduce, 5.0);
  p.add(MpiRoutine::Allreduce, 2.0);
  p.add(MpiRoutine::Waitall, 3.0);
  EXPECT_DOUBLE_EQ(p.routine(MpiRoutine::Allreduce), 7.0);
  EXPECT_DOUBLE_EQ(p.mpi_s(), 10.0);
  EXPECT_DOUBLE_EQ(p.total_s(), 20.0);
  EXPECT_DOUBLE_EQ(p.mpi_fraction(), 0.5);
}

TEST(MpiProfile, MergeAddsFieldwise) {
  MpiProfile a, b;
  a.add_compute(1.0);
  a.add(MpiRoutine::Wait, 2.0);
  b.add_compute(3.0);
  b.add(MpiRoutine::Wait, 4.0);
  b.add(MpiRoutine::Iprobe, 1.0);
  a.add(b);
  EXPECT_DOUBLE_EQ(a.compute_s, 4.0);
  EXPECT_DOUBLE_EQ(a.routine(MpiRoutine::Wait), 6.0);
  EXPECT_DOUBLE_EQ(a.routine(MpiRoutine::Iprobe), 1.0);
}

TEST(MpiProfile, AllRoutineNamesDistinct) {
  for (int i = 0; i < kNumRoutines; ++i)
    for (int j = i + 1; j < kNumRoutines; ++j)
      EXPECT_STRNE(routine_name(static_cast<MpiRoutine>(i)),
                   routine_name(static_cast<MpiRoutine>(j)));
  EXPECT_STREQ(routine_name(MpiRoutine::Testall), "Testall");
}

}  // namespace
}  // namespace dfv::mon
