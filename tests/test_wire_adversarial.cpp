// Adversarial decoding of the api::wire codec: seeded fuzz-style
// truncations, byte flips, garbage tags, and forged length fields must
// never crash, never drive an unbounded allocation, and must surface as
// structured errors only — ContractError (or its VersionError subclass)
// from the raw decoders, ErrorResponse from the server entry point.
//
// Allocation bounds under attack, for the record:
//  * Reader::str()    — validates the announced length against the
//    remaining buffer *before* allocating, so a forged 4 GiB string
//    costs nothing.
//  * Reader::count()  — caps element counts at the buffer size, so a
//    forged element count fails before the element loop resizes.
//  * serve::read_frame — rejects any [u32 len] frame header above
//    kMaxFrameBytes (64 MiB) with FrameError before allocating.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/session.hpp"
#include "api/wire.hpp"
#include "common/rng.hpp"

namespace dfv::api {
namespace {

/// Valid encodings of every request type (v2 envelopes with non-zero
/// meta, so the id/deadline fields are exercised by the mutations too).
std::vector<std::string> request_corpus() {
  const std::vector<Request> reqs = {
      Request{CampaignSummaryRequest{}},
      Request{ExportRequest{}.out_dir("/tmp/x")},
      Request{RunLookupRequest{}.app("UMT").nodes(256).run(7)},
      Request{NeighborhoodRequest{}.app("MILC").nodes(128).threshold(1.25)},
      Request{DeviationRequest{}.app("HACC").nodes(64)},
      Request{ForecastRequest{}.app("MILC").nodes(128).run(3).center(17).m(5).k(9)},
      Request{ForecastEvalRequest{}.app("MILC").nodes(128).m(10).k(20)},
      Request{ForecastGridRequest{}.app("MILC").nodes(128).cell(
          {3, 5, analysis::FeatureSet::App})},
      Request{TopologyRequest{}.group_count(6)},
      Request{SimulateRequest{}.group_count(4).traffic("hotspot").routing("minimal")},
      Request{StatsRequest{}},
  };
  std::vector<std::string> out;
  std::uint64_t id = 1000;
  for (const Request& req : reqs)
    out.push_back(encode_request(req, RequestMeta{id++, 250}));
  return out;
}

std::vector<std::string> response_corpus() {
  ErrorResponse err;
  err.code = ErrorCode::Overloaded;
  err.message = "shed";
  err.retry_after_ms = 25;
  DeviationResponse dev;
  dev.result.relevance = {0.25, 0.5, 0.125};
  dev.result.survival = {1.0, 0.75};
  StatsResponse stats;
  stats.shards = 8;
  stats.requests = 42;
  TopologyResponse topo;
  topo.description = "a small dragonfly";
  return {encode_response(Response{err}), encode_response(Response{dev}),
          encode_response(Response{stats}), encode_response(Response{topo})};
}

TEST(WireAdversarial, EveryTruncationIsAStructuredError) {
  for (const std::string& bytes : request_corpus()) {
    for (std::size_t n = 0; n < bytes.size(); ++n) {
      EXPECT_THROW((void)decode_request_envelope(bytes.substr(0, n)), ContractError)
          << "request prefix of " << n << "/" << bytes.size() << " bytes";
    }
  }
  for (const std::string& bytes : response_corpus()) {
    for (std::size_t n = 0; n < bytes.size(); ++n) {
      EXPECT_THROW((void)decode_response(bytes.substr(0, n)), ContractError)
          << "response prefix of " << n << "/" << bytes.size() << " bytes";
    }
  }
}

TEST(WireAdversarial, SeededByteFlipsNeverEscapeTheContract) {
  Rng rng(20260808);
  const auto corpus = request_corpus();
  const auto responses = response_corpus();
  for (int trial = 0; trial < 2000; ++trial) {
    const bool is_request = rng.bernoulli(0.5);
    const auto& pool = is_request ? corpus : responses;
    std::string bytes = pool[rng.uniform_index(pool.size())];
    const int flips = 1 + int(rng.uniform_index(3));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.uniform_index(bytes.size());
      bytes[at] = char(std::uint8_t(bytes[at]) ^ std::uint8_t(1u << rng.uniform_index(8)));
    }
    // A flip may land in a payload byte and still decode — that is fine.
    // What must never happen is an escape from the ContractError taxonomy
    // (segfault, bad_alloc, std::length_error, ...).
    try {
      if (is_request)
        (void)decode_request_envelope(bytes);
      else
        (void)decode_response(bytes);
    } catch (const ContractError&) {
      // structured rejection: expected for most mutations
    }
  }
}

TEST(WireAdversarial, GarbageTagsAreStructuredErrors) {
  // A well-formed v2 envelope carrying every unassigned tag value.
  Rng rng(7);
  const std::string envelope =
      std::string("\x02\x00\x00\x00", 4) + std::string(12, '\0');
  for (int tag = 12; tag < 256; ++tag) {
    std::string bytes = envelope;
    bytes.push_back(char(tag));
    // Random trailing junk must not change the verdict.
    const std::size_t junk = rng.uniform_index(16);
    for (std::size_t i = 0; i < junk; ++i)
      bytes.push_back(char(rng.uniform_index(256)));
    EXPECT_THROW((void)decode_request_envelope(bytes), ContractError)
        << "request tag " << tag;
  }
}

TEST(WireAdversarial, ForgedLengthsFailBeforeAllocating) {
  // RunLookup whose app-name length claims ~4 GiB: Reader::str() checks
  // the remaining buffer first, so this is a cheap structured error,
  // not a 4 GiB allocation.
  std::string forged = std::string("\x02\x00\x00\x00", 4) + std::string(12, '\0');
  forged.push_back('\x03');                       // ReqTag::RunLookup
  forged += std::string("\xf0\xff\xff\xff", 4);   // str length 0xfffffff0
  forged += "abc";
  EXPECT_THROW((void)decode_request_envelope(forged), ContractError);

  // ForecastGrid whose cell count claims 1e9 entries: Reader::count()
  // caps counts at the buffer size before the element loop reserves.
  std::string counts = std::string("\x02\x00\x00\x00", 4) + std::string(12, '\0');
  counts.push_back('\x08');                      // ReqTag::ForecastGrid
  counts += std::string("\x01\x00\x00\x00", 4);  // app name "a"
  counts += "a";
  counts += std::string("\x80\x00\x00\x00", 4);  // node_count = 128
  counts += std::string("\x00\xca\x9a\x3b", 4);  // cell count = 1,000,000,000
  try {
    (void)decode_request_envelope(counts);
    FAIL() << "forged count decoded";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("element count exceeds buffer"),
              std::string::npos);
  }
}

TEST(WireAdversarial, ServerEntryPointAnswersGarbageWithOneStructuredError) {
  // A Session that never loads a campaign: decode failures are answered
  // before any state is touched, so this stays fast and allocation-free.
  Session session{SessionOptions{}};
  Rng rng(404);
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes(rng.uniform_index(64), '\0');
    for (char& c : bytes) c = char(rng.uniform_index(256));
    if (bytes.size() >= 4) bytes[0] = '\x63';  // never a valid version
    const auto resp = decode_response(handle_encoded(session, bytes));
    const auto* err = std::get_if<ErrorResponse>(&resp);
    ASSERT_NE(err, nullptr);
    EXPECT_TRUE(err->code == ErrorCode::BadRequest ||
                err->code == ErrorCode::VersionMismatch)
        << "code " << std::uint32_t(err->code);
  }
}

}  // namespace
}  // namespace dfv::api
