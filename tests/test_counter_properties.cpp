// Property sweeps over the counter model: non-negativity, monotonicity
// in traffic, and additivity across parameter settings (TEST_P).
#include <gtest/gtest.h>

#include "mon/counter_model.hpp"

namespace dfv::mon {
namespace {

class CounterProperties : public ::testing::TestWithParam<double /*traffic scale*/> {
 protected:
  CounterProperties() : topo_(net::DragonflyConfig::small(4)), model_(topo_) {
    bg_.resize(topo_);
    job_.resize(topo_);
  }
  net::Topology topo_;
  CounterModel model_;
  net::RateLoads bg_;
  net::ByteLoads job_;
};

TEST_P(CounterProperties, AllCountersNonNegative) {
  const double scale = GetParam();
  Rng rng(31);
  for (int e = 0; e < topo_.num_links(); e += 3)
    job_.link_bytes[std::size_t(e)] = scale * rng.uniform() * 1e8;
  for (int r = 0; r < topo_.config().num_routers(); r += 2) {
    job_.inject_bytes[std::size_t(r)] = scale * rng.uniform() * 1e9;
    job_.eject_bytes[std::size_t(r)] = scale * rng.uniform() * 1e9;
  }
  for (net::RouterId r = 0; r < topo_.config().num_routers(); r += 7) {
    const CounterVec v = model_.router_counters(r, bg_, job_, 1.0);
    for (int c = 0; c < kNumCounters; ++c)
      EXPECT_GE(v[std::size_t(c)], 0.0)
          << counter_name(counter_from_index(c)) << " scale=" << scale;
  }
}

TEST_P(CounterProperties, FlitCountersLinearInTraffic) {
  const double scale = GetParam();
  job_.inject_bytes[0] = 1e8;
  const CounterVec base = model_.router_counters(0, bg_, job_, 1.0);
  job_.inject_bytes[0] = 1e8 * scale;
  const CounterVec scaled = model_.router_counters(0, bg_, job_, 1.0);
  if (scale > 0.0) {
    EXPECT_NEAR(scaled[size_t(Counter::PT_FLIT_TOT)],
                base[size_t(Counter::PT_FLIT_TOT)] * scale,
                base[size_t(Counter::PT_FLIT_TOT)] * scale * 1e-9);
  }
}

TEST_P(CounterProperties, StallCountersMonotoneInLoad) {
  const double scale = GetParam();
  const net::LinkId e = topo_.green_link(0, 0, 0, 1);
  const net::RouterId r = topo_.link(e).to;

  job_.link_bytes[std::size_t(e)] = 0.4 * scale * topo_.link(e).capacity;
  const CounterVec low = model_.router_counters(r, bg_, job_, 1.0);
  job_.link_bytes[std::size_t(e)] = 0.8 * scale * topo_.link(e).capacity;
  const CounterVec high = model_.router_counters(r, bg_, job_, 1.0);
  EXPECT_GE(high[size_t(Counter::RT_RB_STL)], low[size_t(Counter::RT_RB_STL)]);
  EXPECT_GE(high[size_t(Counter::RT_RB_2X_USG)], low[size_t(Counter::RT_RB_2X_USG)]);
}

INSTANTIATE_TEST_SUITE_P(Scales, CounterProperties,
                         ::testing::Values(0.1, 0.5, 1.0, 1.5, 3.0));

TEST(CounterModelParams, WeightsShapeCbStalls) {
  const net::Topology topo(net::DragonflyConfig::small(4));
  CounterModelParams heavy_ep;
  heavy_ep.cb_endpoint_weight = 1.0;
  heavy_ep.cb_transit_weight = 0.0;
  CounterModelParams heavy_tr;
  heavy_tr.cb_endpoint_weight = 0.0;
  heavy_tr.cb_transit_weight = 1.0;
  const CounterModel ep_model(topo, heavy_ep);
  const CounterModel tr_model(topo, heavy_tr);

  net::RateLoads bg;
  bg.resize(topo);
  net::ByteLoads job;
  job.resize(topo);
  job.inject_bytes[0] = 1.2 * topo.config().endpoint_bw;  // endpoint congestion only

  const CounterVec ep = ep_model.router_counters(0, bg, job, 1.0);
  const CounterVec tr = tr_model.router_counters(0, bg, job, 1.0);
  EXPECT_GT(ep[size_t(Counter::PT_CB_STL_RQ)], 0.0);
  EXPECT_DOUBLE_EQ(tr[size_t(Counter::PT_CB_STL_RQ)], 0.0);
}

TEST(CounterModelParams, ResponseFractionBoundsVc4) {
  const net::Topology topo(net::DragonflyConfig::small(4));
  for (double rf : {0.0, 0.25, 0.5, 1.0}) {
    CounterModelParams p;
    p.response_fraction = rf;
    const CounterModel model(topo, p);
    net::RateLoads bg;
    bg.resize(topo);
    net::ByteLoads job;
    job.resize(topo);
    job.inject_bytes[0] = 1e8;
    const CounterVec v = model.router_counters(0, bg, job, 1.0);
    EXPECT_NEAR(v[size_t(Counter::PT_FLIT_VC4)], rf * v[size_t(Counter::PT_FLIT_TOT)],
                1e-6);
  }
}

}  // namespace
}  // namespace dfv::mon
