#include "sched/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dfv::sched {
namespace {

TEST(Placement, DerivesRoutersAndGroups) {
  const net::Topology topo(net::DragonflyConfig::small(4));
  const int npr = topo.config().nodes_per_router;
  // Two nodes on router 0, one on router 1, one in another group.
  const net::RouterId remote = topo.router_at(2, 1, 1);
  const std::vector<net::NodeId> nodes = {0, 1, net::NodeId(npr),
                                          topo.first_node_of(remote)};
  const Placement p = make_placement(nodes, topo);
  EXPECT_EQ(p.num_nodes(), 4);
  EXPECT_EQ(p.num_routers(), 3);  // routers 0, 1, remote
  EXPECT_EQ(p.num_groups, 2);
  EXPECT_TRUE(std::is_sorted(p.routers.begin(), p.routers.end()));
}

TEST(Placement, SingleRouterPlacement) {
  const net::Topology topo(net::DragonflyConfig::small(4));
  const std::vector<net::NodeId> nodes = {0, 1};
  const Placement p = make_placement(nodes, topo);
  EXPECT_EQ(p.num_routers(), 1);
  EXPECT_EQ(p.num_groups, 1);
}

TEST(Placement, PreservesNodeOrder) {
  const net::Topology topo(net::DragonflyConfig::small(4));
  const std::vector<net::NodeId> nodes = {9, 3, 7};
  const Placement p = make_placement(nodes, topo);
  EXPECT_EQ(p.nodes, nodes);  // rank order, not sorted
}

TEST(Placement, EmptyPlacement) {
  const net::Topology topo(net::DragonflyConfig::small(4));
  const Placement p = make_placement({}, topo);
  EXPECT_EQ(p.num_nodes(), 0);
  EXPECT_EQ(p.num_routers(), 0);
  EXPECT_EQ(p.num_groups, 0);
}

}  // namespace
}  // namespace dfv::sched
