// dfv serve: deterministic shard routing, handshake versioning,
// byte-identical responses across shard counts, concurrent clients
// (exercised under TSan in tier-1), and graceful shutdown that drains
// in-flight requests without ever emitting a torn frame.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/wire.hpp"
#include "common/log.hpp"
#include "ml/compiled.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"

namespace dfv::serve {
namespace {

api::SessionOptions small_options() {
  api::SessionOptions opt;
  sim::CampaignConfig cfg = sim::CampaignConfig::small(2026);
  cfg.days = 8;
  cfg.datasets = {{"MILC", 128}, {"UMT", 128}};
  opt.config = cfg;
  return opt;
}

/// One campaign load shared by every server in the suite (exactly the
/// ServerOptions::campaign embedding contract).
std::shared_ptr<const api::ResidentCampaign> shared_campaign() {
  static std::shared_ptr<const api::ResidentCampaign> campaign =
      api::ResidentCampaign::load(small_options());
  return campaign;
}

ServerOptions server_options(int shards) {
  ServerOptions opt;
  opt.shards = shards;
  opt.session = small_options();
  opt.campaign = shared_campaign();
  return opt;
}

/// A representative request mix: run-scoped, dataset-scoped, stateless,
/// and one guaranteed contract violation.
std::vector<api::Request> request_mix() {
  std::vector<api::Request> reqs;
  for (std::uint32_t r = 0; r < 6; ++r)
    reqs.push_back(api::RunLookupRequest{}.app(r % 2 ? "UMT" : "MILC").nodes(128).run(r));
  reqs.push_back(api::NeighborhoodRequest{}.app("MILC").nodes(128));
  reqs.push_back(api::ForecastRequest{}.app("MILC").nodes(128).run(1).center(12).m(3).k(5));
  reqs.push_back(api::TopologyRequest{}.group_count(4));
  reqs.push_back(api::CampaignSummaryRequest{});
  reqs.push_back(api::RunLookupRequest{}.app("MILC").nodes(128).run(1000000));
  return reqs;
}

TEST(ServeRouting, KeyFingerprintIsStableAndDiscriminates) {
  const auto a = key_fingerprint("MILC", 128);
  EXPECT_EQ(a, key_fingerprint("MILC", 128));     // stable
  EXPECT_NE(a, key_fingerprint("MILC", 256));     // nodes matter
  EXPECT_NE(a, key_fingerprint("UMT", 128));      // app matters
  EXPECT_NE(key_fingerprint("MILC", 128, 0), key_fingerprint("MILC", 128, 1));
}

TEST(ServeRouting, RequestKeyScopesMatchTheDesign) {
  // Run-scoped: lookup and point forecast of the same run share an owner.
  const auto lookup = request_key(api::RunLookupRequest{}.app("MILC").nodes(128).run(4));
  const auto forecast = request_key(api::ForecastRequest{}.app("MILC").nodes(128).run(4));
  EXPECT_EQ(lookup, forecast);
  EXPECT_EQ(lookup, key_fingerprint("MILC", 128, 4));
  // Dataset-scoped requests share the dataset key.
  EXPECT_EQ(request_key(api::DeviationRequest{}.app("UMT").nodes(128)),
            request_key(api::NeighborhoodRequest{}.app("UMT").nodes(128)));
  // Stateless requests have no owner.
  EXPECT_EQ(request_key(api::TopologyRequest{}), 0u);
  EXPECT_EQ(request_key(api::SimulateRequest{}), 0u);
  EXPECT_EQ(request_key(api::CampaignSummaryRequest{}), 0u);
}

TEST(ServeRouting, ShardOfIsDeterministicAndInRange) {
  for (std::uint64_t key : {0ull, 1ull, 12345678901234ull}) {
    for (std::size_t n : {std::size_t(1), std::size_t(4), std::size_t(8)}) {
      const std::size_t s = shard_of(key, n);
      EXPECT_LT(s, n);
      EXPECT_EQ(s, shard_of(key, n));
    }
  }
  EXPECT_THROW((void)shard_of(7, 0), ContractError);
}

class ServeEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::Warn); }
};

TEST_F(ServeEndToEnd, HandshakeAndBasicCalls) {
  Server server(server_options(2));
  server.start();
  ASSERT_GT(server.port(), 0);

  Client client;
  ASSERT_EQ(client.connect(server.port()), std::nullopt);
  const auto resp = client.call(api::RunLookupRequest{}.app("MILC").nodes(128).run(0));
  const auto* run = std::get_if<api::RunLookupResponse>(&resp);
  ASSERT_NE(run, nullptr);
  EXPECT_GT(run->total_time_s, 0.0);

  // A contract violation crosses the wire as a structured error.
  const auto bad = client.call(api::RunLookupRequest{}.app("MILC").nodes(128).run(999999));
  const auto* err = std::get_if<api::ErrorResponse>(&bad);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, api::ErrorCode::Contract);
  EXPECT_NE(err->message.find("out of range"), std::string::npos);

  client.close();
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_F(ServeEndToEnd, UnknownVersionHandshakeIsAStructuredError) {
  Server server(server_options(1));
  server.start();
  Client client;
  const auto rejected = client.connect(server.port(), api::kApiVersion + 17);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->code, api::ErrorCode::VersionMismatch);
  EXPECT_FALSE(client.connected());
  // The server survives the rejection and keeps serving current clients.
  Client ok;
  ASSERT_EQ(ok.connect(server.port()), std::nullopt);
  EXPECT_TRUE(
      std::holds_alternative<api::TopologyResponse>(ok.call(api::TopologyRequest{})));
  server.stop();
}

TEST_F(ServeEndToEnd, OneShardAndEightShardsAnswerByteIdentically) {
  Server one(server_options(1));
  Server eight(server_options(8));
  one.start();
  eight.start();

  Client c1, c8;
  ASSERT_EQ(c1.connect(one.port()), std::nullopt);
  ASSERT_EQ(c8.connect(eight.port()), std::nullopt);
  for (const api::Request& req : request_mix()) {
    const std::string r1 = c1.call_raw(req);
    const std::string r8 = c8.call_raw(req);
    EXPECT_EQ(r1, r8);  // byte-identical encoded payloads
  }
  // The 8-shard server actually exercised the cross-shard path.
  c1.close();
  c8.close();
  one.stop();
  eight.stop();
  EXPECT_GT(eight.stats().forwarded, 0u);
  EXPECT_EQ(one.stats().forwarded, 0u);
}

TEST_F(ServeEndToEnd, ConcurrentClientsGetCorrectAnswers) {
  Server server(server_options(4));
  server.start();

  // Expected payloads, computed in-process from an identical session.
  api::Session reference(small_options(), shared_campaign());
  const auto reqs = request_mix();
  std::vector<std::string> expected;
  expected.reserve(reqs.size());
  for (const auto& req : reqs) expected.push_back(api::encode_response(reference.handle(req)));

  constexpr int kClients = 8;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      if (client.connect(server.port()) != std::nullopt) {
        mismatches.fetch_add(1000);
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        // Offset the order per client so shards see interleaved traffic.
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          const std::size_t at = (i + std::size_t(c)) % reqs.size();
          if (client.call_raw(reqs[at]) != expected[at]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, std::uint64_t(kClients) * kRounds * reqs.size());
  EXPECT_EQ(stats.local + stats.forwarded, stats.requests);
  server.stop();
}

TEST_F(ServeEndToEnd, CompiledInferenceTogglePreservesServedBytes) {
  // Golden A/B for the compiled serve hot path (ml/compiled.hpp): the
  // bytes a server emits with the compiled path enabled (the default)
  // must equal the reference-path bytes computed with the toggle off —
  // point forecasts ride CompiledAttention, deviation rides the GBR
  // predict_rows route inside RFE/CV.
  std::vector<api::Request> reqs;
  for (std::uint32_t r = 0; r < 4; ++r)
    reqs.push_back(api::ForecastRequest{}.app("MILC").nodes(128).run(r).center(
        int(10 + r)).m(3).k(5));
  reqs.push_back(api::ForecastRequest{}.app("UMT").nodes(128).run(1).center(12).m(5).k(9));
  reqs.push_back(api::DeviationRequest{}.app("UMT").nodes(128));

  const bool prev = ml::compiled_enabled();
  std::vector<std::string> want;
  {
    ml::set_compiled_enabled(false);
    api::Session reference(small_options(), shared_campaign());
    want.reserve(reqs.size());
    for (const auto& req : reqs) want.push_back(api::encode_response(reference.handle(req)));
  }
  ml::set_compiled_enabled(true);

  Server server(server_options(2));
  server.start();
  Client client;
  ASSERT_EQ(client.connect(server.port()), std::nullopt);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(client.call_raw(reqs[i]), want[i]) << "request " << i;
  client.close();
  server.stop();
  ml::set_compiled_enabled(prev);
}

TEST_F(ServeEndToEnd, GracefulShutdownDrainsWithoutTornFrames) {
  Server server(server_options(4));
  server.start();

  constexpr int kClients = 6;
  std::atomic<bool> stop_clients{false};
  std::atomic<int> answered{0};
  std::atomic<int> torn{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        Client client;
        if (client.connect(server.port()) != std::nullopt) return;
        std::uint32_t run = std::uint32_t(c);
        while (!stop_clients.load()) {
          const auto resp = client.call(
              api::RunLookupRequest{}.app("MILC").nodes(128).run(run++ % 4));
          // Every delivered response decodes to the expected type — a
          // drained-then-closed connection throws instead.
          if (!std::holds_alternative<api::RunLookupResponse>(resp)) torn.fetch_add(1);
          answered.fetch_add(1);
        }
      } catch (const std::exception& e) {
        // Acceptable ends: a clean close between frames, or an RST/EPIPE
        // on a request the server never read. A tear is a frame cut
        // mid-record or bytes that no longer decode.
        const std::string what = e.what();
        if (what.find("mid-frame") != std::string::npos ||
            what.find("wire:") != std::string::npos)
          torn.fetch_add(1);
      }
    });
  }

  // Let traffic flow, then stop the server mid-stream.
  while (answered.load() < 50) std::this_thread::yield();
  server.stop();
  stop_clients.store(true);
  for (auto& t : clients) t.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_GE(answered.load(), 50);
  // Every request the server counted was answered or cleanly dropped at
  // a frame boundary; stats stayed consistent through the drain.
  const auto stats = server.stats();
  EXPECT_EQ(stats.local + stats.forwarded, stats.requests);
}

TEST_F(ServeEndToEnd, StopIsIdempotentAndRestartIsNotRequired) {
  Server server(server_options(1));
  server.start();
  server.stop();
  server.stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace dfv::serve
