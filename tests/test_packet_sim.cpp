#include "net/packet_sim.hpp"

#include <gtest/gtest.h>

namespace dfv::net {
namespace {

PacketSimParams params_with(RoutingPolicy p) {
  PacketSimParams ps;
  ps.policy = p;
  return ps;
}

TEST(PacketSim, DeliversEveryInjectedPacket) {
  const Topology topo(DragonflyConfig::small(4));
  PacketSim sim(topo, params_with(RoutingPolicy::Ugal), 1);
  const PacketStats stats = sim.run_synthetic(TrafficPattern::Uniform, 0.1, 20);
  EXPECT_EQ(stats.injected, stats.delivered);
  EXPECT_GT(stats.delivered, 0u);
}

TEST(PacketSim, LatencyAtLeastPathLatency) {
  const Topology topo(DragonflyConfig::small(4));
  PacketSim sim(topo, params_with(RoutingPolicy::Minimal), 2);
  sim.inject(0.0, 0, topo.router_at(2, 1, 1));
  const PacketStats stats = sim.run();
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_GE(stats.mean_latency, topo.config().global_latency);
  EXPECT_GE(stats.mean_hops, 1.0);
}

TEST(PacketSim, LatencyGrowsWithOfferedLoad) {
  const Topology topo(DragonflyConfig::small(4));
  PacketSim light(topo, params_with(RoutingPolicy::Ugal), 3);
  PacketSim heavy(topo, params_with(RoutingPolicy::Ugal), 3);
  const PacketStats low = light.run_synthetic(TrafficPattern::Uniform, 0.05, 60);
  const PacketStats high = heavy.run_synthetic(TrafficPattern::Uniform, 1.5, 60);
  EXPECT_GT(high.mean_latency, low.mean_latency);
}

TEST(PacketSim, AdversarialTrafficHurtsMinimalMoreThanValiant) {
  // The classic dragonfly result: group g -> g+1 saturates the direct
  // blue bundle under minimal routing; Valiant spreads it. Use a tapered
  // configuration (1 global port per router) so the direct bundle is the
  // bottleneck, as on under-provisioned dragonflies.
  // Valiant needs enough groups to spread over: 9 groups, 1 blue link
  // per group pair. Minimal concentrates each group's load on one link
  // (~4x overload at 0.3); Valiant spreads it across 8 detours.
  DragonflyConfig cfg = DragonflyConfig::small(9);
  cfg.global_ports_per_router = 1;
  const Topology topo(cfg);
  PacketSim minimal(topo, params_with(RoutingPolicy::Minimal), 4);
  PacketSim valiant(topo, params_with(RoutingPolicy::Valiant), 4);
  const PacketStats m =
      minimal.run_synthetic(TrafficPattern::AdversarialShift, 0.3, 800);
  const PacketStats v =
      valiant.run_synthetic(TrafficPattern::AdversarialShift, 0.3, 800);
  EXPECT_GT(m.p99_latency, v.p99_latency);
  EXPECT_GT(m.mean_latency, v.mean_latency);
}

TEST(PacketSim, UgalTracksMinimalUnderUniformLoad) {
  const Topology topo(DragonflyConfig::small(4));
  PacketSim minimal(topo, params_with(RoutingPolicy::Minimal), 5);
  PacketSim ugal(topo, params_with(RoutingPolicy::Ugal), 5);
  const PacketStats m = minimal.run_synthetic(TrafficPattern::Uniform, 0.2, 60);
  const PacketStats u = ugal.run_synthetic(TrafficPattern::Uniform, 0.2, 60);
  // UGAL should not be much worse than minimal when uncongested.
  EXPECT_LT(u.mean_latency, m.mean_latency * 2.0);
}

TEST(PacketSim, HotspotConcentratesFlits) {
  const Topology topo(DragonflyConfig::small(4));
  PacketSim sim(topo, params_with(RoutingPolicy::Ugal), 6);
  const PacketStats stats = sim.run_synthetic(TrafficPattern::Hotspot, 0.3, 60);
  const RouterId hotspot = RouterId(topo.config().num_routers() / 2);
  double max_flits = 0.0, sum = 0.0;
  for (double f : stats.router_flits) {
    max_flits = std::max(max_flits, f);
    sum += f;
  }
  const double mean_flits = sum / double(stats.router_flits.size());
  EXPECT_GT(stats.router_flits[std::size_t(hotspot)], 2.0 * mean_flits);
  (void)max_flits;
}

TEST(PacketSim, StallCyclesAppearUnderCongestion) {
  const Topology topo(DragonflyConfig::small(4));
  PacketSim sim(topo, params_with(RoutingPolicy::Minimal), 7);
  const PacketStats stats = sim.run_synthetic(TrafficPattern::AdversarialShift, 1.2, 80);
  double total_stall = 0.0;
  for (double s : stats.router_stall_cycles) total_stall += s;
  EXPECT_GT(total_stall, 0.0);
}

TEST(PacketSim, ThroughputReported) {
  const Topology topo(DragonflyConfig::small(4));
  PacketSim sim(topo, params_with(RoutingPolicy::Ugal), 8);
  const PacketStats stats = sim.run_synthetic(TrafficPattern::Uniform, 0.2, 40);
  EXPECT_GT(stats.throughput, 0.0);
  EXPECT_GT(stats.sim_time, 0.0);
  EXPECT_NEAR(stats.delivered_bytes,
              double(stats.delivered) * 4.0 * 16.0, 1e-6);
}

TEST(PacketSim, PatternNames) {
  EXPECT_STREQ(to_string(TrafficPattern::Uniform), "uniform");
  EXPECT_STREQ(to_string(TrafficPattern::AdversarialShift), "adversarial-shift");
  EXPECT_STREQ(to_string(TrafficPattern::Hotspot), "hotspot");
}

}  // namespace
}  // namespace dfv::net
