#include "ml/matrix.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dfv::ml {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, AppendRowGrowsAndChecksWidth) {
  Matrix m;
  m.append_row(std::vector<double>{1, 2});
  m.append_row(std::vector<double>{3, 4});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(m.append_row(std::vector<double>{1, 2, 3}), ContractError);
}

TEST(Matrix, RowViewIsMutable) {
  Matrix m(1, 2);
  m.row(0)[1] = 9.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
}

TEST(Matrix, ColumnExtraction) {
  Matrix m(2, 2);
  m(0, 1) = 5.0;
  m(1, 1) = 7.0;
  const auto c = m.col(1);
  EXPECT_EQ(c, (std::vector<double>{5.0, 7.0}));
  EXPECT_THROW((void)m.col(2), ContractError);
}

TEST(Matrix, SelectRowsAndCols) {
  Matrix m(3, 3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = double(10 * r + c);
  const std::vector<std::size_t> rows = {2, 0};
  const Matrix mr = m.select_rows(rows);
  EXPECT_DOUBLE_EQ(mr(0, 1), 21.0);
  EXPECT_DOUBLE_EQ(mr(1, 1), 1.0);

  const std::vector<std::size_t> cols = {1};
  const Matrix mc = m.select_cols(cols);
  EXPECT_EQ(mc.cols(), 1u);
  EXPECT_DOUBLE_EQ(mc(2, 0), 21.0);
}

TEST(Matrix, DotProducts) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const auto y = m.dot(std::vector<double>{1.0, 1.0});
  EXPECT_EQ(y, (std::vector<double>{3.0, 7.0}));
  const auto t = m.tdot(std::vector<double>{1.0, 1.0});
  EXPECT_EQ(t, (std::vector<double>{4.0, 6.0}));
}

TEST(Matrix, GramIsSymmetricPsd) {
  Matrix m(3, 2);
  m(0, 0) = 1;
  m(1, 1) = 2;
  m(2, 0) = 3;
  const Matrix g = m.gram();
  EXPECT_DOUBLE_EQ(g(0, 1), g(1, 0));
  EXPECT_DOUBLE_EQ(g(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 4.0);
}

TEST(Matrix, BlockedOpsMatchNaiveLoops) {
  // gram/dot/tdot are cache-blocked but keep each output cell's
  // accumulation order identical to the naive loops, so the results are
  // bit-equal — including on data with exact zeros (the old gram had a
  // zero-skip branch this test pins the removal of).
  Rng rng(42);
  const std::size_t n = 137, f = 71;  // odd sizes exercise tile remainders
  Matrix m(n, f);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < f; ++c)
      m(r, c) = (r + c) % 5 == 0 ? 0.0 : rng.normal();

  // Naive references.
  Matrix g_ref(f, f);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t i = 0; i < f; ++i)
      for (std::size_t j = i; j < f; ++j) g_ref(i, j) += m(r, i) * m(r, j);
  for (std::size_t i = 0; i < f; ++i)
    for (std::size_t j = 0; j < i; ++j) g_ref(i, j) = g_ref(j, i);

  std::vector<double> y(n), w(f);
  for (std::size_t r = 0; r < n; ++r) y[r] = rng.normal();
  for (std::size_t c = 0; c < f; ++c) w[c] = rng.normal();
  std::vector<double> tdot_ref(f, 0.0), dot_ref(n, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < f; ++c) tdot_ref[c] += m(r, c) * y[r];
  for (std::size_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < f; ++c) s += m(r, c) * w[c];
    dot_ref[r] = s;
  }

  const Matrix g = m.gram();
  for (std::size_t i = 0; i < f; ++i)
    for (std::size_t j = 0; j < f; ++j) ASSERT_DOUBLE_EQ(g(i, j), g_ref(i, j));
  EXPECT_EQ(m.tdot(y), tdot_ref);
  EXPECT_EQ(m.dot(w), dot_ref);
}

TEST(Cholesky, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  const auto x = cholesky_solve(a, {10, 9});
  EXPECT_NEAR(x[0], 1.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW((void)cholesky_solve(a, {1, 1}), ContractError);
}

}  // namespace
}  // namespace dfv::ml
