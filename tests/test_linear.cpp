#include "ml/linear.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace dfv::ml {
namespace {

TEST(Linear, RecoversExactLinearFunction) {
  // y = 3 x0 - 2 x1 + 5
  Rng rng(1);
  Matrix x(50, 2);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-1, 1);
    y[i] = 3.0 * x(i, 0) - 2.0 * x(i, 1) + 5.0;
  }
  LinearRegression lr(1e-10);
  lr.fit(x, y);
  EXPECT_NEAR(lr.weights()[0], 3.0, 1e-5);
  EXPECT_NEAR(lr.weights()[1], -2.0, 1e-5);
  EXPECT_NEAR(lr.intercept(), 5.0, 1e-5);
  EXPECT_LT(mape(y, lr.predict(x)), 1e-2);
}

TEST(Linear, RobustToNoise) {
  Rng rng(2);
  Matrix x(500, 1);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < 500; ++i) {
    x(i, 0) = rng.uniform(0, 10);
    y[i] = 2.0 * x(i, 0) + 1.0 + 0.1 * rng.normal();
  }
  LinearRegression lr;
  lr.fit(x, y);
  EXPECT_NEAR(lr.weights()[0], 2.0, 0.05);
  EXPECT_NEAR(lr.intercept(), 1.0, 0.1);
}

TEST(Linear, HandlesConstantColumn) {
  Rng rng(3);
  Matrix x(20, 2);
  std::vector<double> y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = 4.0;  // constant: ridge keeps the solve well-posed
    y[i] = x(i, 0);
  }
  LinearRegression lr(1e-4);
  lr.fit(x, y);
  EXPECT_NEAR(lr.weights()[0], 1.0, 0.01);
  EXPECT_NEAR(lr.predict_one(std::vector<double>{0.5, 4.0}), 0.5, 0.01);
}

TEST(Linear, PredictOneMatchesBatch) {
  Rng rng(4);
  Matrix x(10, 3);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x(i, c) = rng.normal();
    y[i] = rng.normal();
  }
  LinearRegression lr;
  lr.fit(x, y);
  const auto batch = lr.predict(x);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(batch[i], lr.predict_one(x.row(i)));
}

}  // namespace
}  // namespace dfv::ml
