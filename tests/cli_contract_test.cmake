# Drives the dfv CLI with invalid arguments and asserts the contract
# machinery rejects them: exit code 2 and a ContractError message on
# stderr. Usage:
#   cmake -DDFV_BIN=<path> -DARGS="<args>" -DEXPECT="<regex>" -P cli_contract_test.cmake
separate_arguments(args_list UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND "${DFV_BIN}" ${args_list}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "dfv ${ARGS}: expected exit code 2, got '${rc}'\nstderr: ${err}")
endif()
if(NOT err MATCHES "error: contract violation")
  message(FATAL_ERROR "dfv ${ARGS}: stderr lacks a contract violation:\n${err}")
endif()
if(NOT err MATCHES "${EXPECT}")
  message(FATAL_ERROR "dfv ${ARGS}: stderr does not match '${EXPECT}':\n${err}")
endif()
