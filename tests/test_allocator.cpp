#include "sched/allocator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "sched/placement.hpp"

namespace dfv::sched {
namespace {

class AllocatorTest : public ::testing::Test {
 protected:
  AllocatorTest() : topo_(net::DragonflyConfig::small(6)), alloc_(topo_) {}
  net::Topology topo_;
  NodeAllocator alloc_;
  Rng rng_{31};
};

TEST_F(AllocatorTest, AllocateMarksBusyAndReleaseFrees) {
  const int total = alloc_.total_nodes();
  const auto nodes = alloc_.allocate(10, AllocPolicy::Packed, rng_);
  ASSERT_EQ(nodes.size(), 10u);
  EXPECT_EQ(alloc_.free_nodes(), total - 10);
  for (auto n : nodes) EXPECT_TRUE(alloc_.is_busy(n));
  alloc_.release(nodes);
  EXPECT_EQ(alloc_.free_nodes(), total);
}

TEST_F(AllocatorTest, AllocationsAreDisjoint) {
  const auto a = alloc_.allocate(20, AllocPolicy::Clustered, rng_);
  const auto b = alloc_.allocate(20, AllocPolicy::Clustered, rng_);
  std::set<net::NodeId> seen(a.begin(), a.end());
  for (auto n : b) EXPECT_EQ(seen.count(n), 0u);
}

TEST_F(AllocatorTest, OverAllocationReturnsEmpty) {
  const auto all = alloc_.allocate(alloc_.total_nodes(), AllocPolicy::Packed, rng_);
  ASSERT_EQ(int(all.size()), alloc_.total_nodes());
  EXPECT_TRUE(alloc_.allocate(1, AllocPolicy::Packed, rng_).empty());
}

TEST_F(AllocatorTest, DoubleReleaseThrows) {
  const auto nodes = alloc_.allocate(4, AllocPolicy::Packed, rng_);
  alloc_.release(nodes);
  EXPECT_THROW(alloc_.release(nodes), ContractError);
}

TEST_F(AllocatorTest, PackedIsContiguousFromZeroOnEmptyMachine) {
  const auto nodes = alloc_.allocate(8, AllocPolicy::Packed, rng_);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(nodes[std::size_t(i)], net::NodeId(i));
}

TEST_F(AllocatorTest, FragmentedSpreadsOverMoreGroupsThanPacked) {
  NodeAllocator packed(topo_), frag(topo_);
  Rng r1(5), r2(5);
  const int n = 24;
  const Placement p_packed =
      make_placement(packed.allocate(n, AllocPolicy::Packed, r1), topo_);
  const Placement p_frag =
      make_placement(frag.allocate(n, AllocPolicy::Fragmented, r2), topo_);
  EXPECT_LT(p_packed.num_groups, p_frag.num_groups);
  EXPECT_LE(p_packed.num_routers(), p_frag.num_routers());
}

TEST_F(AllocatorTest, ClusteredUnderLoadStillSatisfiesRequest) {
  (void)alloc_.allocate(alloc_.total_nodes() * 3 / 5, AllocPolicy::Fragmented, rng_);
  const int want = alloc_.free_nodes() / 2;
  const auto nodes = alloc_.allocate(want, AllocPolicy::Clustered, rng_);
  EXPECT_EQ(int(nodes.size()), want);
}

TEST_F(AllocatorTest, AllPoliciesExactCountOrEmpty) {
  for (AllocPolicy p :
       {AllocPolicy::Packed, AllocPolicy::Fragmented, AllocPolicy::Clustered}) {
    NodeAllocator a(topo_);
    Rng r(7);
    const auto nodes = a.allocate(33, p, r);
    EXPECT_EQ(nodes.size(), 33u) << to_string(p);
    std::set<net::NodeId> uniq(nodes.begin(), nodes.end());
    EXPECT_EQ(uniq.size(), nodes.size()) << to_string(p);
  }
}

TEST_F(AllocatorTest, RejectsNonPositiveRequest) {
  EXPECT_THROW((void)alloc_.allocate(0, AllocPolicy::Packed, rng_), ContractError);
}

}  // namespace
}  // namespace dfv::sched
