#include "sim/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dfv::sim {
namespace {

Dataset make_synthetic(int runs, int steps, std::uint64_t seed) {
  Dataset ds;
  ds.spec = {"MILC", 128};
  Rng rng(seed);
  for (int r = 0; r < runs; ++r) {
    RunRecord rec;
    rec.job_id = 100 + r;
    rec.submit_time_s = r * 1000.0;
    rec.start_time_s = r * 1000.0 + 60.0;
    rec.num_routers = 32 + r;
    rec.num_groups = 3;
    rec.neighborhood_users = {2, 8, 100 + r};
    rec.profile.add_compute(12.5);
    rec.profile.add(mon::MpiRoutine::Wait, 30.0);
    for (int t = 0; t < steps; ++t) {
      rec.step_times.push_back(5.0 + t + rng.uniform());
      mon::CounterVec cv{};
      for (int c = 0; c < mon::kNumCounters; ++c) cv[std::size_t(c)] = rng.uniform(0, 1e9);
      rec.step_counters.push_back(cv);
      mon::LdmsFeatures lf;
      for (auto& v : lf.io) v = rng.uniform(0, 1e8);
      for (auto& v : lf.sys) v = rng.uniform(0, 1e8);
      rec.step_ldms.push_back(lf);
    }
    rec.end_time_s = rec.start_time_s + rec.total_time_s();
    ds.runs.push_back(std::move(rec));
  }
  return ds;
}

TEST(Dataset, MeanStepCurve) {
  Dataset ds;
  ds.spec = {"AMG", 128};
  for (double base : {1.0, 3.0}) {
    RunRecord r;
    r.step_times = {base, base + 1.0};
    r.step_counters.assign(2, mon::CounterVec{});
    r.step_ldms.assign(2, mon::LdmsFeatures{});
    ds.runs.push_back(r);
  }
  const auto curve = ds.mean_step_curve();
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0], 2.0);
  EXPECT_DOUBLE_EQ(curve[1], 3.0);
}

TEST(Dataset, MeanCounterCurve) {
  Dataset ds;
  ds.spec = {"AMG", 128};
  RunRecord r;
  r.step_times = {1.0};
  mon::CounterVec cv{};
  cv[size_t(mon::Counter::RT_RB_STL)] = 42.0;
  r.step_counters = {cv};
  r.step_ldms.assign(1, mon::LdmsFeatures{});
  ds.runs.push_back(r);
  const auto curve = ds.mean_counter_curve(mon::Counter::RT_RB_STL);
  EXPECT_DOUBLE_EQ(curve[0], 42.0);
}

TEST(Dataset, CsvRoundTripPreservesEverything) {
  const Dataset ds = make_synthetic(3, 4, 77);
  const Dataset back = dataset_from_csv(dataset_to_csv(ds));
  ASSERT_EQ(back.runs.size(), ds.runs.size());
  EXPECT_EQ(back.spec.app, "MILC");
  EXPECT_EQ(back.spec.nodes, 128);
  for (std::size_t r = 0; r < ds.runs.size(); ++r) {
    const RunRecord& a = ds.runs[r];
    const RunRecord& b = back.runs[r];
    EXPECT_EQ(a.job_id, b.job_id);
    EXPECT_EQ(a.num_routers, b.num_routers);
    EXPECT_EQ(a.num_groups, b.num_groups);
    EXPECT_EQ(a.neighborhood_users, b.neighborhood_users);
    ASSERT_EQ(a.step_times.size(), b.step_times.size());
    for (std::size_t t = 0; t < a.step_times.size(); ++t) {
      EXPECT_NEAR(a.step_times[t], b.step_times[t], 1e-9 * a.step_times[t]);
      for (int c = 0; c < mon::kNumCounters; ++c)
        EXPECT_NEAR(a.step_counters[t][std::size_t(c)], b.step_counters[t][std::size_t(c)],
                    1.0);
      for (int i = 0; i < mon::kNumIoFeatures; ++i)
        EXPECT_NEAR(a.step_ldms[t].io[std::size_t(i)], b.step_ldms[t].io[std::size_t(i)],
                    1.0);
    }
    EXPECT_NEAR(a.profile.compute_s, b.profile.compute_s, 1e-9);
    EXPECT_NEAR(a.profile.routine(mon::MpiRoutine::Wait),
                b.profile.routine(mon::MpiRoutine::Wait), 1e-9);
  }
}

TEST(Dataset, FileRoundTrip) {
  const Dataset ds = make_synthetic(2, 3, 5);
  const std::string path = testing::TempDir() + "/dfv_dataset_test.csv";
  ASSERT_TRUE(save_dataset(ds, path));
  const Dataset back = load_dataset(path);
  EXPECT_EQ(back.runs.size(), 2u);
  EXPECT_EQ(back.steps_per_run(), 3);
  EXPECT_THROW((void)load_dataset("/nonexistent/x.csv"), ContractError);
}

TEST(Dataset, TotalTimes) {
  const Dataset ds = make_synthetic(2, 3, 6);
  const auto totals = ds.total_times();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_NEAR(totals[0], ds.runs[0].total_time_s(), 1e-12);
}

// Split CSV text into lines (keeps it easy to mutate one row).
std::vector<std::string> csv_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

TEST(Dataset, MalformedCsvRejected) {
  const std::string good = dataset_to_csv(make_synthetic(2, 3, 9));
  ASSERT_NO_THROW((void)dataset_from_csv(good));
  std::vector<std::string> lines = csv_lines(good);
  ASSERT_GE(lines.size(), 3u);

  // Wrong column count: a data row missing its trailing field.
  {
    auto bad = lines;
    bad[1] = bad[1].substr(0, bad[1].rfind(','));
    EXPECT_THROW((void)dataset_from_csv(join_lines(bad)), ContractError);
  }
  // Non-numeric garbage in a numeric field (job_id).
  {
    auto bad = lines;
    std::size_t f = 0;
    for (int skip = 0; skip < 3; ++skip) f = bad[1].find(',', f) + 1;
    bad[1].replace(f, bad[1].find(',', f) - f, "oops");
    EXPECT_THROW((void)dataset_from_csv(join_lines(bad)), ContractError);
  }
  // Truncated final line (partial write / lost tail).
  {
    std::string cut = good.substr(0, good.size() - 25);
    EXPECT_THROW((void)dataset_from_csv(cut), ContractError);
  }
}

TEST(Dataset, DegradedTelemetryRoundTripsUnderKeep) {
  Dataset ds = make_synthetic(2, 4, 13);
  // Hand-degrade: one dropped step with NaN telemetry, one lost profile.
  auto& run = ds.runs[0];
  run.step_quality.assign(4, faults::kQualityOk);
  run.step_quality[2] = faults::kQualityDropped;
  run.step_counters[2].fill(std::numeric_limits<double>::quiet_NaN());
  run.step_ldms[2].io.fill(std::numeric_limits<double>::quiet_NaN());
  ds.runs[1].profile_missing = true;

  // Strict (the default) refuses degraded text; Keep passes it through.
  const std::string text = dataset_to_csv(ds);
  EXPECT_THROW((void)dataset_from_csv(text), ContractError);
  const Dataset back = dataset_from_csv(text, faults::RepairPolicy::Keep);
  ASSERT_EQ(back.runs.size(), 2u);
  EXPECT_EQ(back.runs[0].quality(2), faults::kQualityDropped);
  EXPECT_FALSE(back.runs[0].step_usable(2));
  EXPECT_TRUE(std::isnan(back.runs[0].step_counters[2][0]));
  EXPECT_TRUE(back.runs[1].profile_missing);
  // Repair on load imputes the gap instead.
  const Dataset fixed = dataset_from_csv(text, faults::RepairPolicy::Repair);
  EXPECT_TRUE(fixed.runs[0].step_usable(2));
  EXPECT_TRUE(std::isfinite(fixed.runs[0].step_counters[2][0]));
}

TEST(Dataset, EmptyDatasetHandled) {
  Dataset ds;
  EXPECT_EQ(ds.steps_per_run(), 0);
  EXPECT_TRUE(ds.mean_step_curve().empty());
  const Dataset back = dataset_from_csv(dataset_to_csv(ds));
  EXPECT_TRUE(back.runs.empty());
}

}  // namespace
}  // namespace dfv::sim
