#include "analysis/forecast.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "ml/metrics.hpp"
#include "synthetic.hpp"

namespace dfv::analysis {
namespace {

ForecastConfig fast_config() {
  ForecastConfig cfg;
  cfg.folds = 3;
  cfg.attention.epochs = 25;
  cfg.attention.d_model = 8;
  cfg.attention.d_hidden = 8;
  return cfg;
}

TEST(Forecast, FeatureSetSizesAndNames) {
  EXPECT_EQ(feature_count(FeatureSet::App), 13);
  EXPECT_EQ(feature_count(FeatureSet::AppPlacement), 15);
  EXPECT_EQ(feature_count(FeatureSet::AppPlacementIo), 19);
  EXPECT_EQ(feature_count(FeatureSet::AppPlacementIoSys), 23);
  const auto names = feature_names(FeatureSet::AppPlacementIoSys);
  ASSERT_EQ(names.size(), 23u);
  EXPECT_EQ(names[0], "RT_FLIT_TOT");
  EXPECT_EQ(names[13], "NUM_ROUTERS");
  EXPECT_EQ(names[15], "IO_RT_FLIT_TOT");
  EXPECT_EQ(names[19], "SYS_RT_FLIT_TOT");
  EXPECT_STREQ(to_string(FeatureSet::AppPlacementIo), "app+placement+io");
}

TEST(Forecast, WindowConstruction) {
  testutil::SyntheticSpec spec;
  spec.runs = 10;
  spec.steps = 12;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const WindowConfig wcfg{/*m=*/3, /*k=*/4, FeatureSet::AppPlacement};
  const WindowData wd = build_windows(ds, wcfg);

  // t_c slides from m to T-k: T - k - m + 1 windows per run.
  const std::size_t per_run = std::size_t(spec.steps - 3 - 4 + 1);
  EXPECT_EQ(wd.y.size(), per_run * std::size_t(spec.runs));
  EXPECT_EQ(wd.x.cols(), std::size_t(3 * 15));
  EXPECT_EQ(wd.run_of.front(), 0u);
  EXPECT_EQ(wd.run_of.back(), std::size_t(spec.runs - 1));

  // First window of run 0: target = sum of steps 3..6, persistence from
  // steps 0..2.
  const auto& run = ds.runs[0];
  double target = 0.0;
  for (int t = 3; t < 7; ++t) target += run.step_times[std::size_t(t)];
  EXPECT_NEAR(wd.y[0], target, 1e-12);
  double recent = 0.0;
  for (int t = 0; t < 3; ++t) recent += run.step_times[std::size_t(t)];
  EXPECT_NEAR(wd.persistence[0], recent / 3.0 * 4.0, 1e-12);

  // The window's first feature vector equals step 0's features.
  std::vector<double> f(15);
  step_features(run, 0, FeatureSet::AppPlacement, f);
  for (int i = 0; i < 15; ++i) EXPECT_DOUBLE_EQ(wd.x(0, std::size_t(i)), f[std::size_t(i)]);
}

TEST(Forecast, WindowTooLargeThrows) {
  testutil::SyntheticSpec spec;
  spec.runs = 4;
  spec.steps = 6;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  EXPECT_THROW((void)build_windows(ds, WindowConfig{4, 4, FeatureSet::App}),
               ContractError);
}

TEST(Forecast, AttentionBeatsMeanBaselineOnAutocorrelatedData) {
  // phi = 0.9 makes the counter history genuinely predictive of the next
  // k steps' total time.
  testutil::SyntheticSpec spec;
  spec.runs = 60;
  spec.steps = 24;
  spec.phi = 0.9;
  spec.driver_strength = 2.0;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const WindowConfig wcfg{/*m=*/4, /*k=*/6, FeatureSet::App};
  const ForecastEval eval = evaluate_forecast(ds, wcfg, fast_config());

  EXPECT_GT(eval.windows, 100u);
  EXPECT_LT(eval.mape_attention, eval.mape_mean);
  EXPECT_LT(eval.mape_attention, 20.0);
}

TEST(Forecast, ImportanceHighlightsDriverCounter) {
  testutil::SyntheticSpec spec;
  spec.runs = 60;
  spec.steps = 24;
  spec.phi = 0.9;
  spec.driver_strength = 3.0;
  spec.driver_counter = int(mon::Counter::RT_RB_STL);
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const WindowConfig wcfg{4, 6, FeatureSet::App};
  const auto imp = forecast_feature_importance(ds, wcfg, fast_config());
  ASSERT_EQ(imp.size(), 13u);
  // The driver counter dominates the permutation importance.
  for (int c = 0; c < mon::kNumCounters; ++c) {
    if (c == spec.driver_counter) continue;
    EXPECT_GE(imp[std::size_t(spec.driver_counter)], imp[std::size_t(c)]);
  }
}

TEST(Forecast, LongRunSegments) {
  testutil::SyntheticSpec spec;
  spec.runs = 40;
  spec.steps = 24;
  spec.phi = 0.9;
  const sim::Dataset train = testutil::make_planted_dataset(spec);

  testutil::SyntheticSpec long_spec = spec;
  long_spec.runs = 1;
  long_spec.steps = 120;
  long_spec.seed = 999;
  const sim::Dataset long_ds = testutil::make_planted_dataset(long_spec);

  const WindowConfig wcfg{/*m=*/4, /*k=*/6, FeatureSet::App};
  const LongRunForecast lr =
      forecast_long_run(train, long_ds.runs[0], wcfg, fast_config());

  // Segments tile [m, T): (120 - 4) / 6 full segments.
  EXPECT_EQ(lr.observed.size(), std::size_t((120 - 4) / 6));
  EXPECT_EQ(lr.observed.size(), lr.predicted.size());
  EXPECT_EQ(lr.segment_start.front(), 4);
  EXPECT_GT(lr.mape, 0.0);
  // Better than predicting the constant k * (train mean step time).
  const double mean_step = stats::mean(train.mean_step_curve());
  const std::vector<double> constant(lr.observed.size(), mean_step * wcfg.k);
  EXPECT_LT(lr.mape, ml::mape(lr.observed, constant));
}

}  // namespace
}  // namespace dfv::analysis
