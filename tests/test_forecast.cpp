#include "analysis/forecast.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/window_cache.hpp"
#include "common/check.hpp"
#include "common/stats.hpp"
#include "exec/exec.hpp"
#include "ml/metrics.hpp"
#include "synthetic.hpp"

namespace dfv::analysis {
namespace {

ForecastConfig fast_config() {
  ForecastConfig cfg;
  cfg.folds = 3;
  cfg.attention.epochs = 25;
  cfg.attention.d_model = 8;
  cfg.attention.d_hidden = 8;
  return cfg;
}

TEST(Forecast, FeatureSetSizesAndNames) {
  EXPECT_EQ(feature_count(FeatureSet::App), 13);
  EXPECT_EQ(feature_count(FeatureSet::AppPlacement), 15);
  EXPECT_EQ(feature_count(FeatureSet::AppPlacementIo), 19);
  EXPECT_EQ(feature_count(FeatureSet::AppPlacementIoSys), 23);
  const auto names = feature_names(FeatureSet::AppPlacementIoSys);
  ASSERT_EQ(names.size(), 23u);
  EXPECT_EQ(names[0], "RT_FLIT_TOT");
  EXPECT_EQ(names[13], "NUM_ROUTERS");
  EXPECT_EQ(names[15], "IO_RT_FLIT_TOT");
  EXPECT_EQ(names[19], "SYS_RT_FLIT_TOT");
  EXPECT_STREQ(to_string(FeatureSet::AppPlacementIo), "app+placement+io");
}

TEST(Forecast, FeatureVectorsSyncWithNamesAcrossAllSets) {
  // The names list, the advertised count, and the values step_features
  // actually writes must agree for every feature set — and each narrower
  // set must be an exact column prefix of the superset (the property the
  // window cache's shared tables rely on).
  testutil::SyntheticSpec spec;
  spec.runs = 2;
  spec.steps = 6;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const auto& run = ds.runs[0];

  std::vector<double> superset(std::size_t(superset_feature_count()),
                               std::numeric_limits<double>::quiet_NaN());
  step_features(run, 1, FeatureSet::AppPlacementIoSys, superset);

  for (FeatureSet fs : {FeatureSet::App, FeatureSet::AppPlacement,
                        FeatureSet::AppPlacementIo, FeatureSet::AppPlacementIoSys}) {
    const std::size_t F = std::size_t(feature_count(fs));
    EXPECT_EQ(feature_names(fs).size(), F) << to_string(fs);
    std::vector<double> out(F, std::numeric_limits<double>::quiet_NaN());
    step_features(run, 1, fs, out);
    for (std::size_t i = 0; i < F; ++i) {
      EXPECT_TRUE(std::isfinite(out[i])) << to_string(fs) << " feature " << i;
      EXPECT_EQ(out[i], superset[i]) << to_string(fs) << " is not a prefix at " << i;
    }
    // A too-small span is rejected rather than silently truncated.
    std::vector<double> small(F - 1);
    EXPECT_THROW(step_features(run, 1, fs, small), ContractError);
  }
}

TEST(Forecast, WindowCacheMatchesLegacyWindows) {
  testutil::SyntheticSpec spec;
  spec.runs = 8;
  spec.steps = 14;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const WindowConfig wcfg{3, 4, FeatureSet::AppPlacementIo};

  const WindowData wd = build_windows(ds, wcfg);
  const StepFeatureCache cache(ds);
  const WindowIndex index = build_window_index(ds, cache, wcfg.m, wcfg.k);
  ASSERT_EQ(index.size(), wd.y.size());
  EXPECT_EQ(index.run_of, wd.run_of);
  EXPECT_EQ(index.y, wd.y);
  EXPECT_EQ(index.persistence, wd.persistence);

  // Strided views gather bit-identically to the materialized rows.
  const WindowViews views = make_window_views(cache, index, wcfg.features);
  const ml::RowBatch batch = views.all();
  ASSERT_EQ(batch.size(), wd.x.rows());
  ASSERT_EQ(batch.row_len(), wd.x.cols());
  std::vector<double> row(batch.row_len());
  for (std::size_t w = 0; w < batch.size(); ++w) {
    batch.gather(w, row.data());
    for (std::size_t c = 0; c < row.size(); ++c)
      ASSERT_EQ(row[c], wd.x(w, c)) << "window " << w << " col " << c;
  }
}

TEST(Forecast, GridAndImportanceBitIdenticalAcrossThreadCounts) {
  testutil::SyntheticSpec spec;
  spec.runs = 18;
  spec.steps = 14;
  spec.phi = 0.8;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  ForecastConfig fcfg = fast_config();
  fcfg.attention.epochs = 8;
  const WindowConfig cells[] = {{2, 3, FeatureSet::App},
                                {4, 3, FeatureSet::App},
                                {4, 3, FeatureSet::AppPlacementIoSys}};
  const WindowConfig icfg{3, 3, FeatureSet::App};

  std::vector<std::vector<ForecastGridCell>> grids;
  std::vector<std::vector<double>> imps;
  for (int threads : {1, 2, 8}) {
    exec::ThreadPool::instance().resize(threads);
    grids.push_back(evaluate_forecast_grid(ds, cells, fcfg));
    imps.push_back(forecast_feature_importance(ds, icfg, fcfg));
  }
  exec::ThreadPool::instance().resize(4);

  for (std::size_t v = 1; v < grids.size(); ++v) {
    ASSERT_EQ(grids[v].size(), grids[0].size());
    for (std::size_t i = 0; i < grids[0].size(); ++i) {
      EXPECT_EQ(grids[v][i].eval.mape_attention, grids[0][i].eval.mape_attention)
          << "cell " << i << " variant " << v;
      EXPECT_EQ(grids[v][i].eval.mape_persistence, grids[0][i].eval.mape_persistence);
      EXPECT_EQ(grids[v][i].eval.mape_mean, grids[0][i].eval.mape_mean);
      EXPECT_EQ(grids[v][i].eval.windows, grids[0][i].eval.windows);
    }
    ASSERT_EQ(imps[v].size(), imps[0].size());
    for (std::size_t f = 0; f < imps[0].size(); ++f)
      EXPECT_EQ(imps[v][f], imps[0][f]) << "importance " << f << " variant " << v;
  }
}

TEST(Forecast, TooFewWindowsForFoldsReportsShape) {
  testutil::SyntheticSpec spec;
  spec.runs = 1;
  spec.steps = 9;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  ForecastConfig fcfg = fast_config();
  fcfg.folds = 4;  // 1 run x few windows cannot fill 2*4 windows
  try {
    (void)evaluate_forecast(ds, WindowConfig{4, 4, FeatureSet::App}, fcfg);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("folds"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(m=4, k=4)"), std::string::npos) << msg;
  }
}

TEST(Forecast, WindowConstruction) {
  testutil::SyntheticSpec spec;
  spec.runs = 10;
  spec.steps = 12;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const WindowConfig wcfg{/*m=*/3, /*k=*/4, FeatureSet::AppPlacement};
  const WindowData wd = build_windows(ds, wcfg);

  // t_c slides from m to T-k: T - k - m + 1 windows per run.
  const std::size_t per_run = std::size_t(spec.steps - 3 - 4 + 1);
  EXPECT_EQ(wd.y.size(), per_run * std::size_t(spec.runs));
  EXPECT_EQ(wd.x.cols(), std::size_t(3 * 15));
  EXPECT_EQ(wd.run_of.front(), 0u);
  EXPECT_EQ(wd.run_of.back(), std::size_t(spec.runs - 1));

  // First window of run 0: target = sum of steps 3..6, persistence from
  // steps 0..2.
  const auto& run = ds.runs[0];
  double target = 0.0;
  for (int t = 3; t < 7; ++t) target += run.step_times[std::size_t(t)];
  EXPECT_NEAR(wd.y[0], target, 1e-12);
  double recent = 0.0;
  for (int t = 0; t < 3; ++t) recent += run.step_times[std::size_t(t)];
  EXPECT_NEAR(wd.persistence[0], recent / 3.0 * 4.0, 1e-12);

  // The window's first feature vector equals step 0's features.
  std::vector<double> f(15);
  step_features(run, 0, FeatureSet::AppPlacement, f);
  for (int i = 0; i < 15; ++i) EXPECT_DOUBLE_EQ(wd.x(0, std::size_t(i)), f[std::size_t(i)]);
}

TEST(Forecast, WindowTooLargeThrows) {
  testutil::SyntheticSpec spec;
  spec.runs = 4;
  spec.steps = 6;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  EXPECT_THROW((void)build_windows(ds, WindowConfig{4, 4, FeatureSet::App}),
               ContractError);
}

TEST(Forecast, AttentionBeatsMeanBaselineOnAutocorrelatedData) {
  // phi = 0.9 makes the counter history genuinely predictive of the next
  // k steps' total time.
  testutil::SyntheticSpec spec;
  spec.runs = 60;
  spec.steps = 24;
  spec.phi = 0.9;
  spec.driver_strength = 2.0;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const WindowConfig wcfg{/*m=*/4, /*k=*/6, FeatureSet::App};
  const ForecastEval eval = evaluate_forecast(ds, wcfg, fast_config());

  EXPECT_GT(eval.windows, 100u);
  EXPECT_LT(eval.mape_attention, eval.mape_mean);
  EXPECT_LT(eval.mape_attention, 20.0);
}

TEST(Forecast, ImportanceHighlightsDriverCounter) {
  testutil::SyntheticSpec spec;
  spec.runs = 60;
  spec.steps = 24;
  spec.phi = 0.9;
  spec.driver_strength = 3.0;
  spec.driver_counter = int(mon::Counter::RT_RB_STL);
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const WindowConfig wcfg{4, 6, FeatureSet::App};
  const auto imp = forecast_feature_importance(ds, wcfg, fast_config());
  ASSERT_EQ(imp.size(), 13u);
  // The driver counter dominates the permutation importance.
  for (int c = 0; c < mon::kNumCounters; ++c) {
    if (c == spec.driver_counter) continue;
    EXPECT_GE(imp[std::size_t(spec.driver_counter)], imp[std::size_t(c)]);
  }
}

TEST(Forecast, LongRunSegments) {
  testutil::SyntheticSpec spec;
  spec.runs = 40;
  spec.steps = 24;
  spec.phi = 0.9;
  const sim::Dataset train = testutil::make_planted_dataset(spec);

  testutil::SyntheticSpec long_spec = spec;
  long_spec.runs = 1;
  long_spec.steps = 120;
  long_spec.seed = 999;
  const sim::Dataset long_ds = testutil::make_planted_dataset(long_spec);

  const WindowConfig wcfg{/*m=*/4, /*k=*/6, FeatureSet::App};
  const LongRunForecast lr =
      forecast_long_run(train, long_ds.runs[0], wcfg, fast_config());

  // Segments tile [m, T): (120 - 4) / 6 full segments.
  EXPECT_EQ(lr.observed.size(), std::size_t((120 - 4) / 6));
  EXPECT_EQ(lr.observed.size(), lr.predicted.size());
  EXPECT_EQ(lr.segment_start.front(), 4);
  EXPECT_GT(lr.mape, 0.0);
  // Better than predicting the constant k * (train mean step time).
  const double mean_step = stats::mean(train.mean_step_curve());
  const std::vector<double> constant(lr.observed.size(), mean_step * wcfg.k);
  EXPECT_LT(lr.mape, ml::mape(lr.observed, constant));
}

}  // namespace
}  // namespace dfv::analysis
