#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

#include "common/check.hpp"

namespace dfv::ml {
namespace {

TEST(Metrics, MapeBasics) {
  const std::vector<double> y = {100, 200};
  const std::vector<double> p = {110, 180};
  EXPECT_NEAR(mape(y, p), 10.0, 1e-9);  // (10% + 10%) / 2
  EXPECT_DOUBLE_EQ(mape(y, y), 0.0);
}

TEST(Metrics, MapeSkipsNearZeroTargets) {
  const std::vector<double> y = {0.0, 100.0};
  const std::vector<double> p = {50.0, 150.0};
  EXPECT_NEAR(mape(y, p, 1e-6), 50.0, 1e-9);  // only the second pair counts
}

TEST(Metrics, MaeAndRmse) {
  const std::vector<double> y = {1, 2, 3};
  const std::vector<double> p = {2, 2, 1};
  EXPECT_NEAR(mae(y, p), 1.0, 1e-12);
  EXPECT_NEAR(rmse(y, p), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Metrics, R2PerfectAndMeanPredictor) {
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r2(y, y), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(r2(y, mean_pred), 0.0, 1e-12);
  const std::vector<double> bad = {4, 3, 2, 1};
  EXPECT_LT(r2(y, bad), 0.0);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<double> y = {1, 2};
  const std::vector<double> p = {1};
  EXPECT_THROW((void)mape(y, p), ContractError);
  EXPECT_THROW((void)mae(y, p), ContractError);
  EXPECT_THROW((void)rmse(y, p), ContractError);
  EXPECT_THROW((void)r2(y, p), ContractError);
}

TEST(Metrics, EmptyInputsAreZero) {
  const std::vector<double> e;
  EXPECT_DOUBLE_EQ(mape(e, e), 0.0);
  EXPECT_DOUBLE_EQ(mae(e, e), 0.0);
  EXPECT_DOUBLE_EQ(rmse(e, e), 0.0);
}

}  // namespace
}  // namespace dfv::ml
