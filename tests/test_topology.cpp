#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dfv::net {
namespace {

TEST(Config, ValidatesParameters) {
  DragonflyConfig bad = DragonflyConfig::small(4);
  bad.row_size = 1;
  EXPECT_THROW(bad.validate(), ContractError);

  DragonflyConfig few_ports = DragonflyConfig::small(4);
  few_ports.groups = 64;
  few_ports.global_ports_per_router = 1;  // 12 * 1 < 63 peers
  EXPECT_THROW(few_ports.validate(), ContractError);

  EXPECT_NO_THROW(DragonflyConfig::cori().validate());
}

TEST(Config, DerivedCounts) {
  const DragonflyConfig cori = DragonflyConfig::cori();
  EXPECT_EQ(cori.routers_per_group(), 96);
  EXPECT_EQ(cori.num_routers(), 34 * 96);
  EXPECT_EQ(cori.num_nodes(), 34 * 96 * 4);
  EXPECT_EQ(cori.links_per_group_pair(), 96 * 10 / 33);
}

TEST(Topology, LinkCountsMatchFormula) {
  const DragonflyConfig cfg = DragonflyConfig::small(4);
  const Topology topo(cfg);
  const int R = cfg.row_size, C = cfg.col_size, G = cfg.groups;
  const int green = G * C * R * (R - 1);
  const int black = G * R * C * (C - 1);
  const int blue = G * (G - 1) * topo.blue_copies();
  EXPECT_EQ(topo.num_links(), green + black + blue);
}

TEST(Topology, CoordinateRoundTrip) {
  const Topology topo(DragonflyConfig::small(4));
  for (RouterId r = 0; r < topo.config().num_routers(); ++r) {
    EXPECT_EQ(topo.router_at(topo.group_of(r), topo.row_of(r), topo.col_of(r)), r);
  }
}

TEST(Topology, NodeRouterMapping) {
  const Topology topo(DragonflyConfig::small(4));
  const int npr = topo.config().nodes_per_router;
  for (NodeId n = 0; n < topo.config().num_nodes(); n += 3) {
    const RouterId r = topo.router_of_node(n);
    EXPECT_GE(n, topo.first_node_of(r));
    EXPECT_LT(n, topo.first_node_of(r) + npr);
  }
}

TEST(Topology, GreenLinksConnectSameRow) {
  const Topology topo(DragonflyConfig::small(4));
  for (const auto& li : topo.links()) {
    if (li.type != LinkType::Green) continue;
    EXPECT_EQ(topo.group_of(li.from), topo.group_of(li.to));
    EXPECT_EQ(topo.row_of(li.from), topo.row_of(li.to));
    EXPECT_NE(topo.col_of(li.from), topo.col_of(li.to));
  }
}

TEST(Topology, BlackLinksConnectSameColumn) {
  const Topology topo(DragonflyConfig::small(4));
  for (const auto& li : topo.links()) {
    if (li.type != LinkType::Black) continue;
    EXPECT_EQ(topo.group_of(li.from), topo.group_of(li.to));
    EXPECT_EQ(topo.col_of(li.from), topo.col_of(li.to));
    EXPECT_NE(topo.row_of(li.from), topo.row_of(li.to));
  }
}

TEST(Topology, BlueLinksConnectDistinctGroupsConsistently) {
  const Topology topo(DragonflyConfig::small(5));
  const int G = topo.config().groups;
  for (GroupId a = 0; a < G; ++a)
    for (GroupId b = 0; b < G; ++b) {
      if (a == b) continue;
      for (int k = 0; k < topo.blue_copies(); ++k) {
        const LinkInfo& li = topo.link(topo.blue_link(a, b, k));
        EXPECT_EQ(topo.group_of(li.from), a);
        EXPECT_EQ(topo.group_of(li.to), b);
        // The reverse directed link uses the same physical endpoints.
        const LinkInfo& rev = topo.link(topo.blue_link(b, a, k));
        EXPECT_EQ(rev.from, li.to);
        EXPECT_EQ(rev.to, li.from);
      }
    }
}

TEST(Topology, GlobalPortBudgetRespected) {
  for (int groups : {4, 8}) {
    const Topology topo(DragonflyConfig::small(groups));
    std::map<RouterId, int> degree;
    for (const auto& li : topo.links())
      if (li.type == LinkType::Blue) ++degree[li.from];
    for (const auto& [router, deg] : degree)
      EXPECT_LE(deg, topo.config().global_ports_per_router) << "router " << router;
  }
}

TEST(Topology, LinkIdsAreUniquePerPhysicalDirection) {
  const Topology topo(DragonflyConfig::small(4));
  std::set<std::pair<RouterId, RouterId>> seen_blue;
  int dup = 0;
  for (const auto& li : topo.links()) {
    if (li.type != LinkType::Blue) continue;
    if (!seen_blue.insert({li.from, li.to}).second) ++dup;
  }
  // Parallel blue copies may share endpoints; green/black may not.
  std::set<std::pair<RouterId, RouterId>> seen_local;
  for (const auto& li : topo.links()) {
    if (li.type == LinkType::Blue) continue;
    EXPECT_TRUE(seen_local.insert({li.from, li.to}).second);
  }
}

TEST(Topology, InOutAdjacencyConsistent) {
  const Topology topo(DragonflyConfig::small(4));
  std::size_t out_total = 0, in_total = 0;
  for (RouterId r = 0; r < topo.config().num_routers(); ++r) {
    out_total += topo.out_links(r).size();
    in_total += topo.in_links(r).size();
    for (LinkId id : topo.out_links(r)) EXPECT_EQ(topo.link(id).from, r);
    for (LinkId id : topo.in_links(r)) EXPECT_EQ(topo.link(id).to, r);
  }
  EXPECT_EQ(out_total, std::size_t(topo.num_links()));
  EXPECT_EQ(in_total, std::size_t(topo.num_links()));
}

// ---- Path property sweep over several configurations --------------------

class PathProperties : public ::testing::TestWithParam<int> {};

TEST_P(PathProperties, MinimalPathsConnectAndAreShort) {
  const Topology topo(DragonflyConfig::small(GetParam()));
  Rng rng(99);
  const int R = topo.config().num_routers();
  for (int trial = 0; trial < 500; ++trial) {
    const auto src = RouterId(rng.uniform_index(R));
    const auto dst = RouterId(rng.uniform_index(R));
    const int k = int(rng.uniform_index(std::uint64_t(topo.blue_copies())));
    const Path p = topo.minimal_path(src, dst, k);
    ASSERT_TRUE(topo.path_connects(p, src, dst))
        << "src=" << src << " dst=" << dst << " k=" << k;
    if (topo.group_of(src) == topo.group_of(dst))
      EXPECT_LE(p.hops(), 2u);
    else
      EXPECT_LE(p.hops(), 5u);
  }
}

TEST_P(PathProperties, ValiantPathsConnectAndVisitViaGroup) {
  const Topology topo(DragonflyConfig::small(GetParam()));
  Rng rng(100);
  const int R = topo.config().num_routers();
  const int G = topo.config().groups;
  if (G < 3) GTEST_SKIP();
  for (int trial = 0; trial < 300; ++trial) {
    const auto src = RouterId(rng.uniform_index(R));
    const auto dst = RouterId(rng.uniform_index(R));
    GroupId via = GroupId(rng.uniform_index(G));
    while (via == topo.group_of(src) || via == topo.group_of(dst))
      via = GroupId(rng.uniform_index(G));
    const int k1 = int(rng.uniform_index(std::uint64_t(topo.blue_copies())));
    const int k2 = int(rng.uniform_index(std::uint64_t(topo.blue_copies())));
    const Path p = topo.valiant_path(src, dst, via, k1, k2);
    ASSERT_TRUE(topo.path_connects(p, src, dst));
    EXPECT_LE(p.hops(), 10u);
    bool visits_via = false;
    for (LinkId id : p.links)
      if (topo.group_of(topo.link(id).to) == via) visits_via = true;
    EXPECT_TRUE(visits_via);
  }
}

TEST_P(PathProperties, PathLatencyPositiveForDistinctRouters) {
  const Topology topo(DragonflyConfig::small(GetParam()));
  const Path p = topo.minimal_path(0, topo.config().num_routers() - 1, 0);
  EXPECT_GT(topo.path_latency(p), 0.0);
  EXPECT_DOUBLE_EQ(topo.path_latency(Path{}), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PathProperties, ::testing::Values(2, 3, 4, 6, 8));

TEST(Topology, PathConnectsRejectsBrokenPaths) {
  const Topology topo(DragonflyConfig::small(4));
  Path p = topo.minimal_path(0, 30, 0);
  ASSERT_FALSE(p.links.empty());
  std::swap(p.links.front(), p.links.back());
  if (p.links.size() > 1) {
    EXPECT_FALSE(topo.path_connects(p, 0, 30));
  }
  EXPECT_FALSE(topo.path_connects(Path{}, 0, 30));
}

TEST(Topology, DescribeMentionsScale) {
  const Topology topo(DragonflyConfig::cori());
  const std::string d = topo.describe();
  EXPECT_NE(d.find("34 groups"), std::string::npos);
  EXPECT_NE(d.find("3264 routers"), std::string::npos);
}

}  // namespace
}  // namespace dfv::net
