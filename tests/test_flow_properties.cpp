// Property sweeps over the flow-level engine: conservation, fairness,
// and monotonicity must hold for every routing policy and several
// machine scales (TEST_P grid).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/check.hpp"
#include "net/flow_model.hpp"

namespace dfv::net {
namespace {

using Param = std::tuple<int /*groups*/, RoutingPolicy>;

class FlowProperties : public ::testing::TestWithParam<Param> {
 protected:
  FlowProperties()
      : topo_(DragonflyConfig::small(std::get<0>(GetParam()))),
        model_(topo_),
        policy_(std::get<1>(GetParam())) {
    bg_.resize(topo_);
  }

  std::vector<Demand> random_demands(int n, double bytes, Rng& rng) const {
    std::vector<Demand> ds;
    const int R = topo_.config().num_routers();
    for (int i = 0; i < n; ++i) {
      const auto src = RouterId(rng.uniform_index(R));
      auto dst = RouterId(rng.uniform_index(R));
      if (dst == src) dst = RouterId((dst + 1) % R);
      ds.push_back({src, dst, bytes});
    }
    return ds;
  }

  Topology topo_;
  FlowModel model_;
  RoutingPolicy policy_;
  RateLoads bg_;
  Rng rng_{12345};
};

TEST_P(FlowProperties, EveryMessageGetsPositiveRateAndFiniteTime) {
  const auto demands = random_demands(64, 4e6, rng_);
  const auto res = model_.transfer(demands, policy_, bg_, rng_);
  ASSERT_EQ(res.messages.size(), demands.size());
  for (const auto& m : res.messages) {
    EXPECT_GT(m.rate, 0.0);
    EXPECT_TRUE(std::isfinite(m.time));
    EXPECT_GT(m.time, 0.0);
    EXPECT_LE(m.time, res.makespan + 1e-12);
  }
}

TEST_P(FlowProperties, RoutedPathsConnectEndpoints) {
  const auto demands = random_demands(48, 1e5, rng_);
  const auto res = model_.transfer(demands, policy_, bg_, rng_);
  for (const auto& m : res.messages) {
    if (m.demand.src == m.demand.dst) continue;
    EXPECT_TRUE(topo_.path_connects(m.path, m.demand.src, m.demand.dst))
        << to_string(policy_);
  }
}

TEST_P(FlowProperties, ByteConservationAtEndpoints) {
  const auto demands = random_demands(32, 2e6, rng_);
  ByteLoads ours;
  ours.resize(topo_);
  (void)model_.transfer(demands, policy_, bg_, rng_, &ours);
  double inj = 0.0, ej = 0.0, expected = 0.0;
  for (double v : ours.inject_bytes) inj += v;
  for (double v : ours.eject_bytes) ej += v;
  for (const auto& d : demands) expected += d.bytes;
  EXPECT_NEAR(inj, expected, expected * 1e-9);
  EXPECT_NEAR(ej, expected, expected * 1e-9);
}

TEST_P(FlowProperties, LinkBytesAreAtLeastOneHopOfInterRouterVolume) {
  const auto demands = random_demands(32, 2e6, rng_);
  ByteLoads ours;
  ours.resize(topo_);
  (void)model_.transfer(demands, policy_, bg_, rng_, &ours);
  double link_bytes = 0.0, inter_router = 0.0;
  for (double v : ours.link_bytes) link_bytes += v;
  for (const auto& d : demands)
    if (d.src != d.dst) inter_router += d.bytes;
  EXPECT_GE(link_bytes, inter_router * 0.999);
  // And at most the diameter bound (valiant <= 10 hops).
  EXPECT_LE(link_bytes, inter_router * 10.001);
}

TEST_P(FlowProperties, MakespanMonotoneInBackgroundLoad) {
  const auto demands = random_demands(32, 8e6, rng_);
  double prev = 0.0;
  for (double util : {0.0, 0.5, 0.9}) {
    RateLoads bg;
    bg.resize(topo_);
    for (int e = 0; e < topo_.num_links(); ++e)
      bg.link_rate[std::size_t(e)] = util * topo_.link(LinkId(e)).capacity;
    Rng rng(777);  // identical path sampling across loads
    const auto res = model_.transfer(demands, policy_, bg, rng);
    EXPECT_GE(res.makespan, prev * 0.999) << "util=" << util;
    prev = res.makespan;
  }
}

TEST_P(FlowProperties, BackgroundRoutingDeterministicGivenRng) {
  const auto demands = random_demands(32, 1e6, rng_);
  RateLoads a, b;
  a.resize(topo_);
  b.resize(topo_);
  Rng r1(99), r2(99);
  model_.route_background(demands, policy_, 1.0, r1, a);
  model_.route_background(demands, policy_, 1.0, r2, b);
  for (std::size_t e = 0; e < a.link_rate.size(); ++e)
    ASSERT_DOUBLE_EQ(a.link_rate[e], b.link_rate[e]);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FlowProperties,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values(RoutingPolicy::Minimal, RoutingPolicy::Valiant,
                                         RoutingPolicy::Ugal)),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      return std::to_string(std::get<0>(pinfo.param)) + "groups_" +
             to_string(std::get<1>(pinfo.param));
    });

}  // namespace
}  // namespace dfv::net
