#include "net/routing.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dfv::net {
namespace {

class RoutingTest : public ::testing::Test {
 protected:
  RoutingTest() : topo_(DragonflyConfig::small(4)), chooser_(topo_) {}
  Topology topo_;
  PathChooser chooser_;
  Rng rng_{77};
};

TEST_F(RoutingTest, SameRouterYieldsEmptyPath) {
  const Path p = chooser_.choose(5, 5, RoutingPolicy::Ugal, {}, rng_);
  EXPECT_EQ(p.hops(), 0u);
}

TEST_F(RoutingTest, MinimalPolicyPathsAreMinimal) {
  const int R = topo_.config().num_routers();
  for (int trial = 0; trial < 200; ++trial) {
    const auto src = RouterId(rng_.uniform_index(R));
    const auto dst = RouterId(rng_.uniform_index(R));
    const Path p = chooser_.choose(src, dst, RoutingPolicy::Minimal, {}, rng_);
    ASSERT_TRUE(topo_.path_connects(p, src, dst));
    EXPECT_LE(p.hops(), topo_.group_of(src) == topo_.group_of(dst) ? 2u : 5u);
  }
}

TEST_F(RoutingTest, ValiantInterGroupUsesTwoBlueHops) {
  // Pick an inter-group pair.
  const RouterId src = 0;
  const RouterId dst = topo_.router_at(2, 1, 1);
  int blue_hops_seen = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const Path p = chooser_.choose(src, dst, RoutingPolicy::Valiant, {}, rng_);
    ASSERT_TRUE(topo_.path_connects(p, src, dst));
    int blue = 0;
    for (LinkId id : p.links)
      if (topo_.link(id).type == LinkType::Blue) ++blue;
    blue_hops_seen = std::max(blue_hops_seen, blue);
    EXPECT_LE(blue, 2);
  }
  EXPECT_EQ(blue_hops_seen, 2);  // valiant detours exist
}

TEST_F(RoutingTest, UgalOnIdleNetworkStaysMinimal) {
  std::vector<double> idle(std::size_t(topo_.num_links()), 0.0);
  const RouterId src = 0;
  const RouterId dst = topo_.router_at(3, 2, 3);
  for (int trial = 0; trial < 100; ++trial) {
    const Path p = chooser_.choose(src, dst, RoutingPolicy::Ugal, idle, rng_);
    EXPECT_LE(p.hops(), 5u) << "UGAL took a non-minimal path on an idle network";
  }
}

TEST_F(RoutingTest, UgalAvoidsCongestedMinimalRoute) {
  // Saturate every blue link between groups 0 and 1; UGAL should detour
  // through another group most of the time.
  std::vector<double> load(std::size_t(topo_.num_links()), 0.0);
  for (int k = 0; k < topo_.blue_copies(); ++k) {
    const LinkId direct = topo_.blue_link(0, 1, k);
    load[std::size_t(direct)] = topo_.link(direct).capacity * 10.0;
  }
  const RouterId src = 0;
  const RouterId dst = topo_.router_at(1, 1, 2);
  int detours = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    const Path p = chooser_.choose(src, dst, RoutingPolicy::Ugal, load, rng_);
    ASSERT_TRUE(topo_.path_connects(p, src, dst));
    bool used_direct = false;
    for (LinkId id : p.links) {
      const LinkInfo& li = topo_.link(id);
      if (li.type == LinkType::Blue && topo_.group_of(li.from) == 0 &&
          topo_.group_of(li.to) == 1)
        used_direct = true;
    }
    if (!used_direct) ++detours;
  }
  EXPECT_GT(detours, trials / 2);
}

TEST_F(RoutingTest, PathCostIncreasesWithLoad) {
  const Path p = topo_.minimal_path(0, topo_.router_at(2, 0, 0), 0);
  std::vector<double> idle(std::size_t(topo_.num_links()), 0.0);
  std::vector<double> busy(std::size_t(topo_.num_links()), 0.0);
  for (LinkId id : p.links) busy[std::size_t(id)] = topo_.link(id).capacity;
  EXPECT_GT(chooser_.path_cost(p, busy, false), chooser_.path_cost(p, idle, false));
}

TEST_F(RoutingTest, NonMinimalPenaltyApplied) {
  const Path p = topo_.minimal_path(0, topo_.router_at(2, 0, 0), 0);
  std::vector<double> idle(std::size_t(topo_.num_links()), 0.0);
  EXPECT_GT(chooser_.path_cost(p, idle, true), chooser_.path_cost(p, idle, false));
}

TEST_F(RoutingTest, BoundsCheckedOnRouterIds) {
  EXPECT_THROW((void)chooser_.choose(-1, 3, RoutingPolicy::Minimal, {}, rng_),
               ContractError);
  EXPECT_THROW((void)chooser_.choose(0, topo_.config().num_routers(),
                                     RoutingPolicy::Minimal, {}, rng_),
               ContractError);
}

TEST(RoutingNames, ToString) {
  EXPECT_STREQ(to_string(RoutingPolicy::Minimal), "minimal");
  EXPECT_STREQ(to_string(RoutingPolicy::Valiant), "valiant");
  EXPECT_STREQ(to_string(RoutingPolicy::Ugal), "ugal");
}

}  // namespace
}  // namespace dfv::net
