#include "sim/congestion_aware.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/registry.hpp"
#include "common/check.hpp"
#include "sched/workload.hpp"

namespace dfv::sim {
namespace {

net::DragonflyConfig small_machine() {
  net::DragonflyConfig m = net::DragonflyConfig::small(8);
  m.nodes_per_router = 4;
  return m;
}

std::vector<sched::UserArchetype> small_population() {
  auto users = sched::default_user_population(4);
  for (auto& u : users) {
    u.min_nodes = std::min(u.min_nodes, 48);
    u.max_nodes = std::min(u.max_nodes, 96);
  }
  return users;
}

ClusterParams capped() {
  ClusterParams p;
  p.max_bg_utilization = 0.6;
  return p;
}

TEST(CongestionAware, DisabledPolicyAdmitsImmediately) {
  Cluster cluster(small_machine(), capped(), small_population(), 31);
  cluster.slurm().advance_to(6 * 3600.0);
  CongestionAwarePolicy policy;
  policy.max_predicted_slowdown = 0.0;  // both gates off
  CongestionAwareScheduler sched(cluster, policy);
  const auto milc = apps::make_milc(128);
  const AwareRun r = sched.run_when_clear(*milc);
  EXPECT_DOUBLE_EQ(r.decision.waited_s, 0.0);
  EXPECT_FALSE(r.decision.gave_up);
  EXPECT_GT(r.record.total_time_s(), 0.0);
}

TEST(CongestionAware, BlameGateDetectsAggressors) {
  Cluster cluster(small_machine(), capped(), small_population(), 32);
  cluster.slurm().advance_to(12 * 3600.0);
  // Find a user actually running a big job and blame them: gate must trip.
  int running_user = -1;
  for (const auto& job : cluster.slurm().running_background())
    if (job.placement.num_nodes() >= 48) {
      running_user = job.user_id;
      break;
    }
  ASSERT_NE(running_user, -1);
  CongestionAwarePolicy policy;
  policy.blamed_users = {running_user};
  policy.min_blamed_nodes = 48;
  CongestionAwareScheduler sched(cluster, policy);
  EXPECT_TRUE(sched.blamed_user_active());

  CongestionAwarePolicy other;
  other.blamed_users = {987654};  // nobody
  CongestionAwareScheduler sched2(cluster, other);
  EXPECT_FALSE(sched2.blamed_user_active());
}

TEST(CongestionAware, ProbeReleasesItsAllocation) {
  Cluster cluster(small_machine(), capped(), small_population(), 33);
  cluster.slurm().advance_to(6 * 3600.0);
  CongestionAwareScheduler sched(cluster, CongestionAwarePolicy{});
  const auto milc = apps::make_milc(128);
  const int busy_before = cluster.slurm().busy_nodes();
  const double s = sched.predicted_slowdown(*milc);
  EXPECT_GE(s, 1.0);
  EXPECT_EQ(cluster.slurm().busy_nodes(), busy_before);
}

TEST(CongestionAware, GivesUpAfterMaxDelay) {
  Cluster cluster(small_machine(), capped(), small_population(), 34);
  cluster.slurm().advance_to(6 * 3600.0);
  CongestionAwarePolicy policy;
  // Impossible bar: any congestion (even zero) exceeds a 0.5 threshold,
  // because predicted slowdown is always >= 1.
  policy.max_predicted_slowdown = 0.5;
  policy.max_delay_s = 2 * 3600.0;
  policy.check_interval_s = 3600.0;
  CongestionAwareScheduler sched(cluster, policy);
  const auto umt = apps::make_umt(128);
  const AwareRun r = sched.run_when_clear(*umt);
  EXPECT_TRUE(r.decision.gave_up);
  EXPECT_GE(r.decision.waited_s, policy.max_delay_s);
  EXPECT_GT(r.decision.holds_congestion, 0);
  EXPECT_GT(r.record.total_time_s(), 0.0);  // still ran after giving up
}

TEST(CongestionAware, WaitingAdvancesSimulatedTime) {
  Cluster cluster(small_machine(), capped(), small_population(), 35);
  cluster.slurm().advance_to(6 * 3600.0);
  const double t0 = cluster.slurm().now();
  CongestionAwarePolicy policy;
  policy.max_predicted_slowdown = 0.5;  // always holds
  policy.max_delay_s = 3600.0;
  policy.check_interval_s = 1800.0;
  CongestionAwareScheduler sched(cluster, policy);
  const auto milc = apps::make_milc(128);
  const AwareRun r = sched.run_when_clear(*milc);
  EXPECT_GE(cluster.slurm().now() - t0, r.decision.waited_s);
}

TEST(CongestionAware, RejectsNonPositiveCheckInterval) {
  Cluster cluster(small_machine(), capped(), {}, 36);
  CongestionAwarePolicy policy;
  policy.check_interval_s = 0.0;
  CongestionAwareScheduler sched(cluster, policy);
  const auto milc = apps::make_milc(128);
  EXPECT_THROW((void)sched.run_when_clear(*milc), ContractError);
}

}  // namespace
}  // namespace dfv::sim
