// Bit-identity contract of the compiled inference path (ml/compiled.hpp):
// every CompiledGbr/CompiledAttention prediction must equal the reference
// predict_* result bit for bit, for any thread count, for batch and
// single-row APIs alike. All comparisons here are EXPECT_EQ on doubles —
// no tolerances anywhere.
#include "ml/compiled.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "exec/exec.hpp"
#include "ml/attention.hpp"
#include "ml/gbr.hpp"

namespace dfv::ml {
namespace {

/// Force the reference path for the enclosed scope regardless of the
/// DFV_COMPILED environment, then restore the prior setting.
class CompiledToggleGuard {
 public:
  explicit CompiledToggleGuard(bool on) : prev_(compiled_enabled()) {
    set_compiled_enabled(on);
  }
  ~CompiledToggleGuard() { set_compiled_enabled(prev_); }
  CompiledToggleGuard(const CompiledToggleGuard&) = delete;
  CompiledToggleGuard& operator=(const CompiledToggleGuard&) = delete;

 private:
  bool prev_;
};

/// Run `fn` under pool widths 1, 2, and 8 (restoring the default after)
/// and hand it the width for failure messages.
template <typename Fn>
void for_thread_counts(Fn&& fn) {
  for (const int threads : {1, 2, 8}) {
    exec::ThreadPool::instance().resize(threads);
    fn(threads);
  }
  exec::ThreadPool::instance().resize(exec::resolve_threads());
}

void make_design(std::size_t n, std::size_t f, std::uint64_t seed, Matrix& x,
                 std::vector<double>& y) {
  Rng rng(seed);
  x = Matrix(n, f);
  y.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < f; ++c) x(i, c) = rng.normal();
    y[i] = 2.0 * x(i, 1) + std::sin(3.0 * x(i, f - 1)) + 0.1 * rng.normal();
  }
}

// ---------------------------------------------------------------------------
// CompiledGbr.
// ---------------------------------------------------------------------------

class CompiledGbrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    make_design(600, 7, 41, x_, y_);
    rows_.resize(x_.rows());
    for (std::size_t i = 0; i < rows_.size(); ++i) rows_[i] = i;
    binned_ = std::make_unique<BinnedDataset>(x_, params_.tree.histogram_bins);
    gbr_ = std::make_unique<GradientBoostedRegressor>(params_);
    gbr_->fit(*binned_, y_, rows_, FeatureMask::all(x_.cols()));
  }

  Matrix x_;
  std::vector<double> y_;
  std::vector<std::size_t> rows_;
  GbrParams params_;
  std::unique_ptr<BinnedDataset> binned_;
  std::unique_ptr<GradientBoostedRegressor> gbr_;
};

TEST_F(CompiledGbrTest, PredictOneBitIdentical) {
  const CompiledGbr compiled = gbr_->compile();
  EXPECT_EQ(compiled.tree_count(), gbr_->tree_count());
  EXPECT_GT(compiled.node_count(), compiled.tree_count());  // real splits
  for (std::size_t r = 0; r < x_.rows(); ++r)
    EXPECT_EQ(compiled.predict_one(x_.row(r)), gbr_->predict_one(x_.row(r)));
}

TEST_F(CompiledGbrTest, PredictBinnedBitIdentical) {
  const CompiledGbr compiled = gbr_->compile();
  for (std::size_t r = 0; r < binned_->rows(); ++r) {
    EXPECT_EQ(compiled.predict_binned(*binned_, r), gbr_->predict_binned(*binned_, r));
    // The uint8-code walk and the double walk agree on the training view.
    EXPECT_EQ(compiled.predict_binned(*binned_, r), compiled.predict_one(x_.row(r)));
  }
}

TEST_F(CompiledGbrTest, PredictManyBitIdenticalAcrossThreadCounts) {
  const CompiledGbr compiled = gbr_->compile();
  // Reference from the scalar per-row path, explicitly not the compiled
  // route.
  std::vector<double> want(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i)
    want[i] = gbr_->predict_binned(*binned_, rows_[i]);
  for_thread_counts([&](int threads) {
    const std::vector<double> got = compiled.predict_many(*binned_, rows_);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i], want[i]) << "row " << i << " at " << threads << " threads";
  });
}

TEST_F(CompiledGbrTest, PredictManyHandlesShuffledSubsets) {
  const CompiledGbr compiled = gbr_->compile();
  // A CV-fold-shaped view: non-contiguous, unordered row indices.
  std::vector<std::size_t> fold;
  for (std::size_t r = 0; r < binned_->rows(); r += 3) fold.push_back(r);
  Rng rng(7);
  rng.shuffle(fold);
  const std::vector<double> got = compiled.predict_many(*binned_, fold);
  for (std::size_t i = 0; i < fold.size(); ++i)
    EXPECT_EQ(got[i], gbr_->predict_binned(*binned_, fold[i]));
}

TEST_F(CompiledGbrTest, ToggledBatchPathsMatchReference) {
  // The public predict/predict_rows entry points must give the same bits
  // whichever route the toggle selects.
  std::vector<double> ref_rows, ref_mat;
  {
    CompiledToggleGuard off(false);
    ref_rows = gbr_->predict_rows(*binned_, rows_);
    ref_mat = gbr_->predict(x_);
  }
  CompiledToggleGuard on(true);
  const std::vector<double> got_rows = gbr_->predict_rows(*binned_, rows_);
  const std::vector<double> got_mat = gbr_->predict(x_);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    EXPECT_EQ(got_rows[i], ref_rows[i]);
    EXPECT_EQ(got_mat[i], ref_mat[i]);
  }
}

TEST(CompiledGbrEdge, EmptyEnsemblePredictsZero) {
  // An unfitted model compiles to an f0-only predictor (f0 == 0).
  const GradientBoostedRegressor gbr;
  const CompiledGbr compiled = gbr.compile();
  EXPECT_EQ(compiled.tree_count(), 0u);
  EXPECT_EQ(compiled.node_count(), 0u);
  EXPECT_EQ(compiled.max_feature(), -1);
  const std::vector<double> row(3, 1.5);
  EXPECT_EQ(compiled.predict_one(row), 0.0);
  EXPECT_EQ(compiled.predict_one(std::span<const double>{}), 0.0);
}

TEST(CompiledGbrEdge, SingleLeafTreesFoldToConstant) {
  // min_samples_leaf so large no split is legal: every tree is one leaf
  // and the compiled model must reproduce f0 + sum(lr * leaf) exactly.
  Matrix x;
  std::vector<double> y;
  make_design(50, 3, 43, x, y);
  GbrParams params;
  params.n_trees = 5;
  params.tree.min_samples_leaf = 1000;
  GradientBoostedRegressor gbr(params);
  gbr.fit(x, y);
  const CompiledGbr compiled = gbr.compile();
  EXPECT_EQ(compiled.node_count(), 5u);  // one leaf per tree
  EXPECT_EQ(compiled.max_feature(), -1);
  EXPECT_EQ(compiled.predict_one(x.row(0)), gbr.predict_one(x.row(0)));
  EXPECT_EQ(compiled.predict_one(x.row(1)), gbr.predict_one(x.row(1)));
}

TEST(CompiledGbrEdge, DegenerateConstantFeaturesMatchReference) {
  // Constant columns bin to a single code (no edges); splits can only
  // use the informative column and the compiled walk must follow.
  Rng rng(44);
  Matrix x(300, 3);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    x(i, 0) = 2.5;  // constant
    x(i, 1) = rng.normal();
    x(i, 2) = -1.0;  // constant
    y[i] = x(i, 1) > 0.0 ? 1.0 : -1.0;
  }
  GradientBoostedRegressor gbr;
  gbr.fit(x, y);
  const CompiledGbr compiled = gbr.compile();
  EXPECT_EQ(compiled.max_feature(), 1);
  const BinnedDataset binned(x, gbr.params().tree.histogram_bins);
  for (std::size_t r = 0; r < 300; r += 7) {
    EXPECT_EQ(compiled.predict_one(x.row(r)), gbr.predict_one(x.row(r)));
    EXPECT_EQ(compiled.predict_binned(binned, r), gbr.predict_binned(binned, r));
  }
}

TEST_F(CompiledGbrTest, RejectsNarrowRows) {
  const CompiledGbr compiled = gbr_->compile();
  ASSERT_GE(compiled.max_feature(), 1);
  const std::vector<double> narrow(1, 0.0);
  EXPECT_THROW((void)compiled.predict_one(narrow), ContractError);
  EXPECT_THROW((void)compiled.predict_binned(*binned_, binned_->rows()), ContractError);
}

// ---------------------------------------------------------------------------
// CompiledAttention.
// ---------------------------------------------------------------------------

class CompiledAttentionTest : public ::testing::Test {
 protected:
  static constexpr int kM = 4;
  static constexpr int kF = 3;

  void SetUp() override {
    Rng rng(45);
    x_ = Matrix(120, std::size_t(kM) * std::size_t(kF));
    y_.resize(120);
    for (std::size_t i = 0; i < 120; ++i) {
      for (std::size_t c = 0; c < x_.cols(); ++c) x_(i, c) = rng.normal();
      y_[i] = 0.5 * x_(i, 2) + rng.normal() * 0.1;
    }
    AttentionParams params;
    params.epochs = 3;
    model_ = std::make_unique<AttentionForecaster>(kM, kF, params);
    model_->fit(x_, y_);
  }

  Matrix x_;
  std::vector<double> y_;
  std::unique_ptr<AttentionForecaster> model_;
};

TEST_F(CompiledAttentionTest, PredictOneBitIdentical) {
  const CompiledAttention compiled = model_->compile();
  EXPECT_EQ(compiled.history(), kM);
  EXPECT_EQ(compiled.feat_dim(), kF);
  CompiledAttention::Scratch ws;
  for (std::size_t r = 0; r < x_.rows(); ++r) {
    const double want = model_->predict_one(x_.row(r));
    EXPECT_EQ(compiled.predict_one(x_.row(r)), want);       // fresh scratch
    EXPECT_EQ(compiled.predict_one(x_.row(r), ws), want);   // reused scratch
  }
}

TEST_F(CompiledAttentionTest, PredictManyBitIdenticalAcrossThreadCounts) {
  const CompiledAttention compiled = model_->compile();
  std::vector<double> want;
  {
    CompiledToggleGuard off(false);
    want = model_->predict(x_);
  }
  const auto ptrs = row_pointers(x_);
  const RowBatch rb{ptrs, 1, x_.cols(), x_.cols()};
  for_thread_counts([&](int threads) {
    const std::vector<double> got = compiled.predict_many(rb);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i], want[i]) << "row " << i << " at " << threads << " threads";
  });
}

TEST_F(CompiledAttentionTest, StridedRowBatchMatchesContiguous) {
  // Feed the same windows as strided views into a wider table (the
  // forecast layer's layout: stride = full feature count, width = the
  // selected subset), and require bit-equality with the contiguous rows.
  const CompiledAttention compiled = model_->compile();
  const std::size_t wide = std::size_t(kF) + 2;
  const std::size_t n = 40;
  // Table of n windows, each kM steps of `wide` features; the first kF
  // of each step are the model's features, copied from x_.
  std::vector<double> table(n * std::size_t(kM) * wide, -99.0);
  std::vector<const double*> base(n);
  for (std::size_t r = 0; r < n; ++r) {
    base[r] = table.data() + r * std::size_t(kM) * wide;
    for (int g = 0; g < kM; ++g)
      for (int c = 0; c < kF; ++c)
        table[r * std::size_t(kM) * wide + std::size_t(g) * wide + std::size_t(c)] =
            x_(r, std::size_t(g) * std::size_t(kF) + std::size_t(c));
  }
  const RowBatch strided{base, std::size_t(kM), std::size_t(kF), wide};
  const std::vector<double> got = compiled.predict_many(strided);
  CompiledAttention::Scratch ws;
  for (std::size_t r = 0; r < n; ++r)
    EXPECT_EQ(got[r], compiled.predict_one(x_.row(r), ws)) << "strided row " << r;
}

TEST_F(CompiledAttentionTest, ToggledPredictMatchesReference) {
  std::vector<double> ref;
  {
    CompiledToggleGuard off(false);
    ref = model_->predict(x_);
  }
  CompiledToggleGuard on(true);
  const std::vector<double> got = model_->predict(x_);
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(got[i], ref[i]);
}

TEST_F(CompiledAttentionTest, RejectsWrongWindowLength) {
  const CompiledAttention compiled = model_->compile();
  const std::vector<double> short_window(std::size_t(kM) * std::size_t(kF) - 1, 0.0);
  EXPECT_THROW((void)compiled.predict_one(short_window), ContractError);
}

TEST(CompiledAttentionEdge, RefusesUnfittedModel) {
  // No fit -> no scaler statistics; compiling must fail loudly instead
  // of producing NaNs at serve time.
  const AttentionForecaster model(3, 2);
  EXPECT_THROW((void)model.compile(), ContractError);
}

// ---------------------------------------------------------------------------
// Toggle plumbing.
// ---------------------------------------------------------------------------

TEST(CompiledToggle, SetAndRestore) {
  const bool prev = compiled_enabled();
  set_compiled_enabled(false);
  EXPECT_FALSE(compiled_enabled());
  set_compiled_enabled(true);
  EXPECT_TRUE(compiled_enabled());
  set_compiled_enabled(prev);
  EXPECT_EQ(compiled_enabled(), prev);
}

}  // namespace
}  // namespace dfv::ml
