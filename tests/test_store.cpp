// Out-of-core column store: append/publish/pin round trips, zone-map
// statistics, append-batching byte invariance, torn-write and
// truncated-segment recovery, snapshot-under-concurrent-append
// consistency, zero-copy training-view bit-identity against the in-RAM
// BinnedDataset path, the campaign-store cache format, and cache GC.
#include "store/column_store.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "ml/gbr.hpp"
#include "ml/rfe.hpp"
#include "sim/cache_gc.hpp"
#include "sim/campaign.hpp"
#include "sim/campaign_store.hpp"
#include "store/longitudinal.hpp"
#include "store/training_view.hpp"

namespace dfv {
namespace {

namespace fs = std::filesystem;
using store::AppendChunk;
using store::ColumnKind;
using store::ColumnSpec;
using store::ColumnStore;
using store::StoreOptions;
using store::StorePin;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Fresh scratch directory under the test temp root.
std::string scratch(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

/// Bit-exact double comparison (NaN payloads included): the store
/// round-trip contract is byte fidelity, not numeric closeness.
bool bit_eq(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Deterministic column content keyed by absolute row index, so any
/// append batching must converge on the same bytes.
double val_a(std::uint64_t row) { return 0.25 * double(row) - 7.0; }
double val_b(std::uint64_t row) { return std::sin(double(row) * 0.1) * 100.0; }
std::uint8_t val_q(std::uint64_t row) { return std::uint8_t(row % 5); }

/// Append rows [first, first + count) of the (a, b, q) fixture schema.
void append_fixture_rows(ColumnStore& cs, std::uint64_t first, std::uint64_t count) {
  std::vector<double> a(count), b(count);
  std::vector<std::uint8_t> q(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    a[i] = val_a(first + i);
    b[i] = val_b(first + i);
    q[i] = val_q(first + i);
  }
  AppendChunk chunk;
  chunk.rows = count;
  chunk.f64 = {a, b};
  chunk.u8 = {q};
  cs.append(chunk);
}

std::vector<ColumnSpec> fixture_specs() {
  return {{"a", ColumnKind::F64}, {"b", ColumnKind::F64}, {"q", ColumnKind::U8}};
}

StoreOptions small_segments() {
  StoreOptions opt;
  opt.segment_rows = 64;  // many segments from few rows
  return opt;
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::Warn); }
};

// ---------------------------------------------------------------------------
// ColumnStore: round trip, zone maps, pins
// ---------------------------------------------------------------------------

TEST_F(StoreTest, RoundTripValuesAndZoneStats) {
  const std::string dir = scratch("store_roundtrip");
  ColumnStore cs = ColumnStore::create(dir, fixture_specs(), small_segments());
  append_fixture_rows(cs, 0, 200);
  cs.publish();

  const auto pin = cs.pin();
  EXPECT_EQ(pin->rows(), 200u);
  EXPECT_EQ(pin->segment_rows(), 64u);
  const auto a = pin->f64("a");
  const auto q = pin->u8("q");
  ASSERT_EQ(a.size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(bit_eq(a[i], val_a(i)));
    EXPECT_EQ(q[i], val_q(i));
  }

  // Zone maps: 200 rows at 64/segment -> 4 segments (64, 64, 64, 8).
  const auto zones = pin->zones(pin->column_index("a"));
  ASSERT_EQ(zones.size(), 4u);
  EXPECT_EQ(zones[0].count, 64u);
  EXPECT_EQ(zones[3].count, 8u);
  EXPECT_TRUE(bit_eq(zones[0].min, val_a(0)));
  EXPECT_TRUE(bit_eq(zones[0].max, val_a(63)));
  // Streaming mean from zone sums equals the direct mean combine.
  double sum = 0.0;
  for (const auto& z : zones) sum += z.sum;
  EXPECT_EQ(pin->mean("a"), sum / 200.0);

  EXPECT_NO_THROW(pin->verify_integrity());
  EXPECT_THROW((void)pin->f64("missing"), ContractError);
  EXPECT_THROW((void)pin->f64("q"), ContractError);  // u8 column via f64 accessor
}

TEST_F(StoreTest, NanSkipsMinMaxAndPoisonsMean) {
  const std::string dir = scratch("store_nan");
  ColumnStore cs =
      ColumnStore::create(dir, {{"v", ColumnKind::F64}}, small_segments());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> v = {3.0, nan, -2.0, 8.0};
  AppendChunk chunk;
  chunk.rows = v.size();
  chunk.f64 = {v};
  cs.append(chunk);
  cs.publish();

  const auto pin = cs.pin();
  const auto z = pin->zones(0);
  ASSERT_EQ(z.size(), 1u);
  EXPECT_EQ(z[0].min, -2.0);  // fmin/fmax skip the NaN
  EXPECT_EQ(z[0].max, 8.0);
  EXPECT_TRUE(std::isnan(pin->mean("v")));  // sum is NaN-poisoning: honest mean
  EXPECT_TRUE(bit_eq(pin->f64("v")[1], nan));
  EXPECT_NO_THROW(pin->verify_integrity());
}

TEST_F(StoreTest, AppendBatchingIsByteAndFingerprintInvariant) {
  const std::string one = scratch("store_batch_one");
  const std::string many = scratch("store_batch_many");

  ColumnStore cs1 = ColumnStore::create(one, fixture_specs(), small_segments());
  append_fixture_rows(cs1, 0, 333);
  cs1.publish();

  // Same rows in uneven chunks with publishes interleaved.
  ColumnStore cs2 = ColumnStore::create(many, fixture_specs(), small_segments());
  append_fixture_rows(cs2, 0, 7);
  cs2.publish();
  append_fixture_rows(cs2, 7, 130);
  append_fixture_rows(cs2, 137, 63);
  cs2.publish();
  append_fixture_rows(cs2, 200, 133);
  cs2.publish();

  for (const char* col : {"a.col", "b.col", "q.col"})
    EXPECT_EQ(slurp(fs::path(one) / col), slurp(fs::path(many) / col)) << col;
  // The content fingerprint (rows, schema, every segment CRC) agrees even
  // though the epochs differ; so do all zone statistics.
  EXPECT_EQ(cs1.pin()->content_fingerprint(), cs2.pin()->content_fingerprint());
  EXPECT_NE(cs1.pin()->epoch(), cs2.pin()->epoch());
  EXPECT_EQ(cs1.pin()->mean("b"), cs2.pin()->mean("b"));
}

TEST_F(StoreTest, PinIsPointInTimeAcrossAppends) {
  const std::string dir = scratch("store_pit");
  ColumnStore cs = ColumnStore::create(dir, fixture_specs(), small_segments());
  append_fixture_rows(cs, 0, 100);
  cs.publish();

  const auto old_pin = cs.pin();
  append_fixture_rows(cs, 100, 100);
  EXPECT_EQ(cs.rows(), 200u);
  EXPECT_EQ(cs.published_rows(), 100u);  // not yet visible
  EXPECT_EQ(cs.pin()->rows(), 100u);
  cs.publish();
  EXPECT_EQ(cs.pin()->rows(), 200u);

  // The old pin still sees exactly its committed prefix, CRC-clean.
  EXPECT_EQ(old_pin->rows(), 100u);
  EXPECT_NO_THROW(old_pin->verify_integrity());
  EXPECT_TRUE(bit_eq(old_pin->f64("a")[99], val_a(99)));
}

// ---------------------------------------------------------------------------
// Crash recovery: torn tails, truncated segments, corruption
// ---------------------------------------------------------------------------

TEST_F(StoreTest, TornTailIsTruncatedOnReopen) {
  const std::string dir = scratch("store_torn");
  {
    ColumnStore cs = ColumnStore::create(dir, fixture_specs(), small_segments());
    append_fixture_rows(cs, 0, 100);
    cs.publish();
    // A writer that dies between append and publish leaves bytes past the
    // committed extent in every column file.
    append_fixture_rows(cs, 100, 37);
    // no publish: simulate the crash by dropping the handle
  }
  ColumnStore reopened = ColumnStore::open(dir);
  EXPECT_EQ(reopened.rows(), 100u);
  EXPECT_EQ(fs::file_size(fs::path(dir) / "a.col"), 100 * sizeof(double));

  // Re-appending the same logical rows converges on the clean bytes.
  append_fixture_rows(reopened, 100, 237);
  reopened.publish();
  const std::string clean = scratch("store_torn_clean");
  ColumnStore ref = ColumnStore::create(clean, fixture_specs(), small_segments());
  append_fixture_rows(ref, 0, 337);
  ref.publish();
  EXPECT_EQ(slurp(fs::path(dir) / "a.col"), slurp(fs::path(clean) / "a.col"));
  EXPECT_EQ(reopened.pin()->content_fingerprint(), ref.pin()->content_fingerprint());
}

TEST_F(StoreTest, ColumnShorterThanCommittedExtentIsCorruption) {
  const std::string dir = scratch("store_short");
  {
    ColumnStore cs = ColumnStore::create(dir, fixture_specs(), small_segments());
    append_fixture_rows(cs, 0, 100);
    cs.publish();
  }
  fs::resize_file(fs::path(dir) / "b.col", 10 * sizeof(double));
  EXPECT_THROW((void)ColumnStore::open(dir), ContractError);
  EXPECT_THROW((void)ColumnStore::open_pin(dir), ContractError);
}

TEST_F(StoreTest, FlippedByteFailsVerifyIntegrity) {
  const std::string dir = scratch("store_flip");
  {
    ColumnStore cs = ColumnStore::create(dir, fixture_specs(), small_segments());
    append_fixture_rows(cs, 0, 150);
    cs.publish();
  }
  {
    std::fstream f(fs::path(dir) / "a.col",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(77 * std::streamoff(sizeof(double)));
    f.put('\x5a');
  }
  const auto pin = ColumnStore::open_pin(dir);  // mmap succeeds...
  EXPECT_THROW(pin->verify_integrity(), ContractError);  // ...the CRC does not

  // A damaged MANIFEST is caught by its checksum footer at open.
  std::string manifest = slurp(fs::path(dir) / "MANIFEST");
  manifest[manifest.size() / 2] ^= 0x01;
  std::ofstream(fs::path(dir) / "MANIFEST", std::ios::binary) << manifest;
  EXPECT_THROW((void)ColumnStore::open_pin(dir), ContractError);
}

// ---------------------------------------------------------------------------
// Snapshots: point-in-time under a concurrent writer, byte stability
// ---------------------------------------------------------------------------

TEST_F(StoreTest, SnapshotUnderConcurrentAppendIsConsistent) {
  const std::string dir = scratch("store_snap_conc");
  ColumnStore cs = ColumnStore::create(dir, fixture_specs(), small_segments());

  std::thread writer([&cs] {
    std::uint64_t row = 0;
    for (int batch = 0; batch < 40; ++batch) {
      append_fixture_rows(cs, row, 137);
      row += 137;
      cs.publish();
    }
  });

  // Concurrently pin published states and snapshot them: every snapshot
  // must be a CRC-clean point-in-time prefix of the logical content.
  std::vector<std::string> snap_dirs;
  for (int s = 0; s < 5; ++s) {
    const auto pin = cs.pin();
    EXPECT_NO_THROW(pin->verify_integrity());
    const std::string snap = scratch("store_snap_conc_out_" + std::to_string(s));
    pin->snapshot_to(snap);
    snap_dirs.push_back(snap);
  }
  writer.join();

  for (const std::string& snap : snap_dirs) {
    const auto pin = ColumnStore::open_pin(snap);
    EXPECT_NO_THROW(pin->verify_integrity());
    const auto a = pin->f64("a");
    const auto q = pin->u8("q");
    for (std::uint64_t i = 0; i < pin->rows(); ++i) {
      ASSERT_TRUE(bit_eq(a[i], val_a(i))) << "row " << i << " of " << snap;
      ASSERT_EQ(q[i], val_q(i)) << "row " << i << " of " << snap;
    }
    EXPECT_EQ(pin->rows() % 137, 0u) << "snapshot caught an unpublished state";
  }
  EXPECT_EQ(cs.pin()->rows(), 40u * 137u);
}

TEST_F(StoreTest, SnapshotReplayIsByteStable) {
  const std::string dir = scratch("store_snap_stable");
  ColumnStore cs = ColumnStore::create(dir, fixture_specs(), small_segments());
  append_fixture_rows(cs, 0, 321);
  cs.publish();

  const auto pin = cs.pin();
  const std::string s1 = scratch("store_snap_stable_1");
  const std::string s2 = scratch("store_snap_stable_2");
  pin->snapshot_to(s1);
  pin->snapshot_to(s2);
  for (const char* f : {"MANIFEST", "a.col", "b.col", "q.col"})
    EXPECT_EQ(slurp(fs::path(s1) / f), slurp(fs::path(s2) / f)) << f;
  EXPECT_EQ(ColumnStore::open_pin(s1)->content_fingerprint(),
            pin->content_fingerprint());
  // A snapshot refuses to land on an existing store.
  EXPECT_THROW(pin->snapshot_to(s1), ContractError);
}

// ---------------------------------------------------------------------------
// Training views: bit-identity with the in-RAM BinnedDataset path
// ---------------------------------------------------------------------------

/// Six nonlinear features plus a target, appended as one store; returns
/// the published pin.
std::shared_ptr<const StorePin> make_training_store(const std::string& dir,
                                                    std::size_t rows) {
  std::vector<ColumnSpec> specs;
  for (int f = 0; f < 6; ++f) {
    std::string name = "f";  // += sidesteps a GCC 12 -O3 -Wrestrict FP
    name += std::to_string(f);
    specs.push_back({std::move(name), ColumnKind::F64});
  }
  specs.push_back({"y", ColumnKind::F64});
  StoreOptions opt;
  opt.segment_rows = 256;
  ColumnStore cs = ColumnStore::create(dir, specs, opt);

  std::vector<std::vector<double>> cols(7, std::vector<double>(rows));
  Rng rng(0xbeef);
  for (std::size_t r = 0; r < rows; ++r) {
    for (int f = 0; f < 6; ++f) cols[std::size_t(f)][r] = rng.uniform(-1.0, 1.0);
    const double y = cols[0][r] + 2.0 * cols[1][r] * cols[2][r] +
                     (cols[3][r] > 0.3 ? 1.5 : 0.0) + 0.05 * rng.normal();
    cols[6][r] = y;
  }
  AppendChunk chunk;
  chunk.rows = rows;
  for (const auto& c : cols) chunk.f64.emplace_back(c.data(), c.size());
  cs.append(chunk);
  cs.publish();
  return cs.pin();
}

store::TrainingSpec training_spec() {
  store::TrainingSpec spec;
  // Built with += rather than `"f" + std::to_string(f)`: GCC 12 at -O3
  // flags the rvalue operator+ chain with a spurious -Wrestrict.
  for (int f = 0; f < 6; ++f) {
    std::string name = "f";
    name += std::to_string(f);
    spec.features.push_back(std::move(name));
  }
  spec.target = "y";
  return spec;
}

/// Materialize the pinned feature columns into an in-RAM Matrix (the
/// baseline the out-of-core path must match bit-for-bit).
ml::Matrix materialize(const StorePin& pin, const store::TrainingSpec& spec) {
  ml::Matrix x(pin.rows(), spec.features.size());
  for (std::size_t f = 0; f < spec.features.size(); ++f) {
    const auto col = pin.f64(spec.features[f]);
    for (std::size_t r = 0; r < col.size(); ++r) x(r, f) = col[r];
  }
  return x;
}

TEST_F(StoreTest, TrainingViewMatchesInRamBinningBitExact) {
  const std::string dir = scratch("store_view_bits");
  const auto pin = make_training_store(dir, 1500);
  const store::TrainingSpec spec = training_spec();
  const store::TrainingView view = store::TrainingView::build(pin, spec);
  EXPECT_FALSE(view.reused_sidecars());
  EXPECT_FALSE(view.binned().has_source());
  EXPECT_THROW((void)view.binned().source(), ContractError);

  const ml::Matrix x = materialize(*pin, spec);
  const ml::BinnedDataset ram(x, spec.bins);
  ASSERT_EQ(view.rows(), ram.rows());
  ASSERT_EQ(view.features(), ram.features());
  for (std::size_t f = 0; f < ram.features(); ++f) {
    ASSERT_EQ(view.binned().edges(f).size(), ram.edges(f).size()) << "feature " << f;
    for (std::size_t e = 0; e < ram.edges(f).size(); ++e)
      EXPECT_TRUE(bit_eq(view.binned().edges(f)[e], ram.edges(f)[e]));
    const auto vc = view.binned().feature_codes(f);
    const auto rc = ram.feature_codes(f);
    for (std::size_t r = 0; r < ram.rows(); ++r)
      ASSERT_EQ(vc[r], rc[r]) << "feature " << f << " row " << r;
  }
  // The streaming target mean equals the zone-map combine by definition;
  // it must also match a plain serial sum over the mapped column.
  double sum = 0.0;
  for (double v : view.y()) sum += v;
  EXPECT_DOUBLE_EQ(view.y_mean(), sum / double(view.rows()));
}

TEST_F(StoreTest, GbrOutOfCoreIsBitIdenticalToInRam) {
  const std::string dir = scratch("store_view_gbr");
  const auto pin = make_training_store(dir, 1200);
  const store::TrainingSpec spec = training_spec();
  const store::TrainingView view = store::TrainingView::build(pin, spec);
  const ml::Matrix x = materialize(*pin, spec);
  const auto y = view.y();

  ml::GbrParams params;
  params.n_trees = 12;

  ml::GradientBoostedRegressor in_ram(params);
  in_ram.fit(x, std::vector<double>(y.begin(), y.end()));

  ml::GradientBoostedRegressor ooc(params);
  std::vector<std::size_t> rows(view.rows());
  for (std::size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  ooc.fit(view.binned(), y, rows, ml::FeatureMask::all(view.features()));

  ASSERT_EQ(in_ram.tree_count(), ooc.tree_count());
  for (std::size_t r = 0; r < view.rows(); ++r)
    ASSERT_TRUE(bit_eq(in_ram.predict_one(x.row(r)), ooc.predict_one(x.row(r))))
        << "row " << r;
  const auto imp_ram = in_ram.feature_importances();
  const auto imp_ooc = ooc.feature_importances();
  for (std::size_t f = 0; f < imp_ram.size(); ++f)
    EXPECT_TRUE(bit_eq(imp_ram[f], imp_ooc[f]));
}

TEST_F(StoreTest, RfeOutOfCoreIsBitIdenticalToInRam) {
  const std::string dir = scratch("store_view_rfe");
  const auto pin = make_training_store(dir, 900);
  const store::TrainingSpec spec = training_spec();
  const store::TrainingView view = store::TrainingView::build(pin, spec);
  const ml::Matrix x = materialize(*pin, spec);
  const auto y = view.y();

  ml::RfeParams params;
  params.folds = 2;
  params.gbr.n_trees = 6;
  params.with_linear_baseline = false;  // the one consumer needing source()

  const ml::BinnedDataset ram(x, spec.bins);
  const ml::RfeResult a = ml::rfe_cv(ram, y, params);
  const ml::RfeResult b = ml::rfe_cv(view.binned(), y, params);

  ASSERT_EQ(a.relevance.size(), b.relevance.size());
  for (std::size_t f = 0; f < a.relevance.size(); ++f) {
    EXPECT_TRUE(bit_eq(a.relevance[f], b.relevance[f])) << "feature " << f;
    EXPECT_TRUE(bit_eq(a.survival[f], b.survival[f])) << "feature " << f;
  }
  EXPECT_TRUE(bit_eq(a.cv_mape_full, b.cv_mape_full));
  EXPECT_TRUE(std::isnan(a.cv_mape_linear));
  EXPECT_TRUE(std::isnan(b.cv_mape_linear));

  // Asking for the ridge baseline over an external-memory view is a
  // contract violation, not a silent fallback.
  params.with_linear_baseline = true;
  EXPECT_THROW((void)ml::rfe_cv(view.binned(), y, params), ContractError);
}

TEST_F(StoreTest, SidecarsAreReusedAndStaleOnesCollected) {
  const std::string dir = scratch("store_view_sidecar");
  {
    ColumnStore cs = ColumnStore::create(
        dir,
        {{"f0", ColumnKind::F64}, {"f1", ColumnKind::F64}, {"f2", ColumnKind::F64},
         {"f3", ColumnKind::F64}, {"f4", ColumnKind::F64}, {"f5", ColumnKind::F64},
         {"y", ColumnKind::F64}},
        small_segments());
    std::vector<std::vector<double>> cols(7, std::vector<double>(400));
    Rng rng(7);
    for (std::size_t r = 0; r < 400; ++r)
      for (std::size_t c = 0; c < 7; ++c) cols[c][r] = rng.uniform(-2.0, 2.0);
    AppendChunk chunk;
    chunk.rows = 400;
    for (const auto& c : cols) chunk.f64.emplace_back(c.data(), c.size());
    cs.append(chunk);
    cs.publish();

    const store::TrainingSpec spec = training_spec();
    const auto pin1 = cs.pin();
    EXPECT_FALSE(store::TrainingView::build(pin1, spec).reused_sidecars());
    EXPECT_TRUE(store::TrainingView::build(pin1, spec).reused_sidecars());

    // Appending invalidates the sidecars (fingerprint moved on): a view
    // over the new pin rebuilds, and GC sweeps the stale files.
    chunk.rows = 100;
    chunk.f64.clear();
    for (const auto& c : cols) chunk.f64.emplace_back(c.data(), 100);
    cs.append(chunk);
    cs.publish();
    const auto pin2 = cs.pin();
    const std::size_t removed = store::TrainingView::gc_stale_views(*pin2);
    EXPECT_EQ(removed, 2u);  // old .edges + .codes
    EXPECT_FALSE(store::TrainingView::build(pin2, spec).reused_sidecars());
    EXPECT_TRUE(store::TrainingView::build(pin2, spec).reused_sidecars());
    EXPECT_EQ(store::TrainingView::gc_stale_views(*pin2), 0u);
  }
}

// ---------------------------------------------------------------------------
// Longitudinal generator: append cadence never changes the bytes
// ---------------------------------------------------------------------------

TEST_F(StoreTest, LongitudinalAppendBatchingIsDeterministic) {
  const store::LongitudinalSpec spec;
  const std::string one = scratch("store_long_one");
  const std::string many = scratch("store_long_many");

  ColumnStore a = store::open_longitudinal_store(one);
  store::append_longitudinal_runs(a, spec, 0, 300);

  ColumnStore b = store::open_longitudinal_store(many);
  store::append_longitudinal_runs(b, spec, 0, 120);
  store::append_longitudinal_runs(b, spec, 120, 80);
  store::append_longitudinal_runs(b, spec, 200, 100);

  EXPECT_EQ(a.pin()->content_fingerprint(), b.pin()->content_fingerprint());
  EXPECT_EQ(slurp(fs::path(one) / "run_time_s.col"),
            slurp(fs::path(many) / "run_time_s.col"));
  // Appends must be contiguous: a gap is a contract violation.
  EXPECT_THROW(store::append_longitudinal_runs(b, spec, 500, 10), ContractError);
}

// ---------------------------------------------------------------------------
// Campaign store: faulted campaigns round-trip verbatim; corrupt entries
// are evicted and regenerated
// ---------------------------------------------------------------------------

sim::CampaignConfig tiny_config(std::uint64_t seed = 42, double fault_rate = 0.1) {
  sim::CampaignConfig cfg = sim::CampaignConfig::small(seed);
  cfg.days = 3;
  cfg.datasets = {{"MILC", 128}, {"UMT", 128}};
  cfg.faults.rate = fault_rate;
  return cfg;
}

void expect_dataset_eq(const sim::Dataset& a, const sim::Dataset& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  EXPECT_EQ(a.spec.app, b.spec.app);
  EXPECT_EQ(a.spec.nodes, b.spec.nodes);
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    const sim::RunRecord& x = a.runs[r];
    const sim::RunRecord& y = b.runs[r];
    EXPECT_EQ(x.job_id, y.job_id);
    EXPECT_TRUE(bit_eq(x.submit_time_s, y.submit_time_s));
    EXPECT_TRUE(bit_eq(x.start_time_s, y.start_time_s));
    EXPECT_TRUE(bit_eq(x.end_time_s, y.end_time_s));
    EXPECT_EQ(x.num_routers, y.num_routers);
    EXPECT_EQ(x.num_groups, y.num_groups);
    EXPECT_EQ(x.profile_missing, y.profile_missing);
    EXPECT_TRUE(bit_eq(x.profile.compute_s, y.profile.compute_s));
    for (std::size_t k = 0; k < x.profile.routine_s.size(); ++k)
      EXPECT_TRUE(bit_eq(x.profile.routine_s[k], y.profile.routine_s[k]));
    EXPECT_EQ(x.neighborhood_users, y.neighborhood_users);
    // The empty-vs-explicit quality distinction must survive the round
    // trip (empty means "predates fault tracking", not "all ok").
    EXPECT_EQ(x.step_quality, y.step_quality);
    ASSERT_EQ(x.step_times.size(), y.step_times.size());
    for (std::size_t t = 0; t < x.step_times.size(); ++t) {
      ASSERT_TRUE(bit_eq(x.step_times[t], y.step_times[t])) << "run " << r;
      for (std::size_t k = 0; k < x.step_counters[t].size(); ++k)
        ASSERT_TRUE(bit_eq(x.step_counters[t][k], y.step_counters[t][k]));
      for (std::size_t k = 0; k < x.step_ldms[t].io.size(); ++k)
        ASSERT_TRUE(bit_eq(x.step_ldms[t].io[k], y.step_ldms[t].io[k]));
      for (std::size_t k = 0; k < x.step_ldms[t].sys.size(); ++k)
        ASSERT_TRUE(bit_eq(x.step_ldms[t].sys[k], y.step_ldms[t].sys[k]));
    }
  }
}

TEST_F(StoreTest, FaultedCampaignRoundTripsVerbatim) {
  const sim::CampaignConfig cfg = tiny_config();
  const sim::CampaignResult original = sim::run_campaign(cfg);
  const std::string dir = scratch("campaign_store_rt");
  ASSERT_TRUE(sim::save_campaign_store(original, dir));
  ASSERT_TRUE(sim::campaign_store_exists(dir));

  const sim::CampaignStorePin pin = sim::CampaignStorePin::open(dir);
  ASSERT_EQ(pin.num_datasets(), original.datasets.size());
  const sim::CampaignResult loaded = pin.load_all();
  for (std::size_t i = 0; i < original.datasets.size(); ++i)
    expect_dataset_eq(original.datasets[i], loaded.datasets[i]);
}

TEST_F(StoreTest, CachedStoreFormatLoadsAndEvictsCorruptEntries) {
  const sim::CampaignConfig cfg = tiny_config(43);
  const std::string cache = scratch("campaign_store_cache");

  const sim::CampaignResult first =
      sim::run_campaign_cached(cfg, cache, sim::CacheFormat::Store);
  // Exactly one entry: the store directory (no CSV blob alongside).
  const auto entries = sim::list_cache_entries(cache);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, "campaign-store");

  // Auto format prefers the existing store entry on read.
  const sim::CampaignResult second =
      sim::run_campaign_cached(cfg, cache, sim::CacheFormat::Auto);
  for (std::size_t i = 0; i < first.datasets.size(); ++i)
    expect_dataset_eq(first.datasets[i], second.datasets[i]);

  // Flip one byte of one column: the load detects the CRC mismatch,
  // evicts the entry, and regenerates the identical campaign.
  const fs::path col = fs::path(cache) / entries[0].name / "MILC-128" / "steps" /
                       "step_time.col";
  ASSERT_TRUE(fs::exists(col));
  {
    std::fstream f(col, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    f.put('\x7f');
  }
  const sim::CampaignResult third =
      sim::run_campaign_cached(cfg, cache, sim::CacheFormat::Store);
  for (std::size_t i = 0; i < first.datasets.size(); ++i)
    expect_dataset_eq(first.datasets[i], third.datasets[i]);
  // The republished entry verifies clean again.
  EXPECT_NO_THROW((void)sim::CampaignStorePin::open(
                      (fs::path(cache) / entries[0].name).string())
                      .load_all());
}

// ---------------------------------------------------------------------------
// Cache GC: size accounting and LRU eviction
// ---------------------------------------------------------------------------

TEST_F(StoreTest, LruEvictionRespectsBudgetAndRecency) {
  const std::string cache = scratch("cache_gc");
  fs::create_directories(cache);
  const auto now = fs::file_time_type::clock::now();
  for (int i = 0; i < 3; ++i) {
    const fs::path entry = fs::path(cache) / ("entry_" + std::to_string(i));
    fs::create_directories(entry);
    std::ofstream(entry / "payload.bin", std::ios::binary)
        << std::string(1000, char('a' + i));
    // entry_0 oldest, entry_2 newest.
    fs::last_write_time(entry, now - std::chrono::hours(3 - i));
  }

  const auto entries = sim::list_cache_entries(cache);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "entry_0");
  EXPECT_EQ(entries[0].kind, "other");
  EXPECT_EQ(entries[0].bytes, 1000u);

  // Budget for two entries: the oldest goes first.
  const auto evicted = sim::evict_cache_lru(cache, 2000);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "entry_0");
  EXPECT_FALSE(fs::exists(fs::path(cache) / "entry_0"));

  // Touching an entry protects it: entry_1 becomes the most recent, so a
  // budget of one entry evicts entry_2 instead.
  sim::touch_cache_entry((fs::path(cache) / "entry_1").string());
  const auto evicted2 = sim::evict_cache_lru(cache, 1000);
  ASSERT_EQ(evicted2.size(), 1u);
  EXPECT_EQ(evicted2[0], "entry_2");

  // A budget of zero clears the directory; an unlimited budget is a no-op.
  EXPECT_EQ(sim::evict_cache_lru(cache, 0).size(), 1u);
  EXPECT_TRUE(sim::list_cache_entries(cache).empty());
  EXPECT_TRUE(sim::evict_cache_lru(cache, 1 << 30).empty());
}

}  // namespace
}  // namespace dfv
