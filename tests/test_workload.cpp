#include "sched/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "mon/ldms.hpp"
#include "sched/allocator.hpp"
#include "sched/slurm.hpp"

namespace dfv::sched {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : topo_(net::DragonflyConfig::small(6)) {
    NodeAllocator alloc(topo_);
    Rng rng(3);
    placement_ = make_placement(alloc.allocate(48, AllocPolicy::Clustered, rng), topo_);
    io_routers_ = mon::make_default_io_routers(topo_, 1);
  }

  double total_bytes(const std::vector<net::Demand>& demands) const {
    double sum = 0.0;
    for (const auto& d : demands) sum += d.bytes;
    return sum;
  }

  bool endpoints_within(const std::vector<net::Demand>& demands) const {
    std::set<net::RouterId> allowed(placement_.routers.begin(), placement_.routers.end());
    allowed.insert(io_routers_.begin(), io_routers_.end());
    return std::all_of(demands.begin(), demands.end(), [&](const net::Demand& d) {
      return allowed.count(d.src) && allowed.count(d.dst);
    });
  }

  net::Topology topo_;
  Placement placement_;
  std::vector<net::RouterId> io_routers_;
  Rng rng_{17};
};

TEST_F(WorkloadTest, DefaultPopulationContainsPaperUsers) {
  const auto users = default_user_population(10);
  std::set<int> ids;
  for (const auto& u : users) ids.insert(u.user_id);
  // All of the paper's recurring blamed users except 8 (the campaign
  // account itself, added by the campaign driver).
  for (int u : {1, 2, 3, 4, 5, 6, 7, 9, 10, 11, 12, 13, 14}) EXPECT_TRUE(ids.count(u));
  EXPECT_FALSE(ids.count(kCampaignUserId));
  EXPECT_EQ(users.size(), 13u + 10u);
}

TEST_F(WorkloadTest, AggressorsAreTheHeaviestUsers) {
  const auto users = default_user_population(10);
  const auto aggressors = ground_truth_aggressors();
  double min_aggressor = 1e18, max_quiet = 0.0;
  for (const auto& u : users) {
    const double load = u.traffic.net_bytes_per_node_per_s +
                        u.traffic.io_bytes_per_node_per_s;
    const bool is_aggr = std::find(aggressors.begin(), aggressors.end(), u.user_id) !=
                         aggressors.end();
    if (is_aggr) min_aggressor = std::min(min_aggressor, load);
    if (u.user_id >= 100) max_quiet = std::max(max_quiet, load);
  }
  EXPECT_GT(min_aggressor, 3.0 * max_quiet);
}

TEST_F(WorkloadTest, PatternsConserveVolumeAndStayInBounds) {
  for (BgPattern pat : {BgPattern::NearestNeighbor, BgPattern::UniformPairs,
                        BgPattern::AllreduceHeavy, BgPattern::IoHeavy}) {
    TrafficSpec spec;
    spec.net_bytes_per_node_per_s = 1e8;
    spec.io_bytes_per_node_per_s = 0.0;
    spec.pattern = pat;
    const auto demands =
        generate_background_demands(placement_, spec, io_routers_, topo_, rng_);
    EXPECT_TRUE(endpoints_within(demands)) << to_string(pat);
    const double expect_total = 1e8 * placement_.num_nodes();
    const double got = total_bytes(demands);
    // NN/UniformPairs/AllreduceHeavy conserve total volume; IoHeavy's
    // intra-job share is pairwise (n/2 flows), still bounded by total.
    EXPECT_LE(got, expect_total * 1.01) << to_string(pat);
    EXPECT_GT(got, expect_total * 0.2) << to_string(pat);
  }
}

TEST_F(WorkloadTest, IoShareFlowsToIoRouters) {
  TrafficSpec spec;
  spec.net_bytes_per_node_per_s = 0.0;
  spec.io_bytes_per_node_per_s = 1e8;
  spec.pattern = BgPattern::UniformPairs;
  const auto demands =
      generate_background_demands(placement_, spec, io_routers_, topo_, rng_);
  ASSERT_FALSE(demands.empty());
  std::set<net::RouterId> io_set(io_routers_.begin(), io_routers_.end());
  for (const auto& d : demands) EXPECT_TRUE(io_set.count(d.src) || io_set.count(d.dst));
  // Writes dominate reads 2:1.
  double to_io = 0.0, from_io = 0.0;
  for (const auto& d : demands) (io_set.count(d.dst) ? to_io : from_io) += d.bytes;
  EXPECT_NEAR(to_io / from_io, 2.0, 0.01);
}

TEST_F(WorkloadTest, AllreduceHeavyCreatesHotspots) {
  TrafficSpec spec;
  spec.net_bytes_per_node_per_s = 1e8;
  spec.pattern = BgPattern::AllreduceHeavy;
  const auto demands =
      generate_background_demands(placement_, spec, io_routers_, topo_, rng_);
  // Count per-router received bytes: roots should receive far more than
  // the median router.
  std::map<net::RouterId, double> rx;
  for (const auto& d : demands) rx[d.dst] += d.bytes;
  std::vector<double> values;
  for (auto& [r, v] : rx) values.push_back(v);
  std::sort(values.begin(), values.end());
  EXPECT_GT(values.back(), 3.0 * values[values.size() / 2]);
}

TEST_F(WorkloadTest, EmptyPlacementYieldsNoDemands) {
  TrafficSpec spec;
  spec.net_bytes_per_node_per_s = 1e8;
  const Placement empty;
  EXPECT_TRUE(generate_background_demands(empty, spec, io_routers_, topo_, rng_).empty());
}

TEST_F(WorkloadTest, BackgroundJobIntensityMedianNearOne) {
  BackgroundJob job;
  EXPECT_NEAR(job.intensity(), 1.0, 1e-9);  // OU starts at 0 on the log scale
}

}  // namespace
}  // namespace dfv::sched
