#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/log.hpp"
#include "exec/exec.hpp"

namespace dfv::sim {
namespace {

CampaignConfig tiny_config(std::uint64_t seed = 42) {
  CampaignConfig cfg = CampaignConfig::small(seed);
  cfg.days = 3;
  cfg.datasets = {{"MILC", 128}, {"UMT", 128}};
  return cfg;
}

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::Warn); }
};

TEST_F(CampaignTest, ProducesRequestedDatasets) {
  const CampaignResult res = run_campaign(tiny_config());
  ASSERT_EQ(res.datasets.size(), 2u);
  EXPECT_EQ(res.datasets[0].spec.label(), "MILC-128");
  EXPECT_EQ(res.datasets[1].spec.label(), "UMT-128");
  // ~1-2 jobs per dataset per day over 3 days.
  for (const auto& ds : res.datasets) {
    EXPECT_GE(ds.num_runs(), 3u);
    EXPECT_LE(ds.num_runs(), 6u);
  }
  EXPECT_EQ(res.datasets[0].steps_per_run(), 80);
  EXPECT_EQ(res.datasets[1].steps_per_run(), 7);
}

TEST_F(CampaignTest, RunsAreChronologicalAndDisjoint) {
  const CampaignResult res = run_campaign(tiny_config());
  for (const auto& ds : res.datasets) {
    for (std::size_t i = 1; i < ds.runs.size(); ++i)
      EXPECT_GE(ds.runs[i].start_time_s, ds.runs[i - 1].end_time_s);
  }
}

TEST_F(CampaignTest, NeighborhoodsFilledAndExcludeSelf) {
  const CampaignResult res = run_campaign(tiny_config());
  bool any_users = false;
  for (const auto& ds : res.datasets)
    for (const auto& run : ds.runs) {
      any_users |= !run.neighborhood_users.empty();
      EXPECT_TRUE(std::is_sorted(run.neighborhood_users.begin(),
                                 run.neighborhood_users.end()));
    }
  EXPECT_TRUE(any_users);
}

TEST_F(CampaignTest, SacctContainsInstrumentedAndBackgroundJobs) {
  const CampaignConfig cfg = tiny_config();
  const CampaignResult res = run_campaign(cfg);
  int ours = 0, theirs = 0;
  for (const auto& rec : res.sacct)
    (rec.user_id == sched::kCampaignUserId ? ours : theirs) += 1;
  // Our account has at least the instrumented runs; others ran too.
  std::size_t instrumented = 0;
  for (const auto& ds : res.datasets) instrumented += ds.num_runs();
  EXPECT_GE(std::size_t(ours), instrumented);
  EXPECT_GT(theirs, 0);
}

TEST_F(CampaignTest, DeterministicForSameSeed) {
  const CampaignResult a = run_campaign(tiny_config(7));
  const CampaignResult b = run_campaign(tiny_config(7));
  ASSERT_EQ(a.datasets[0].num_runs(), b.datasets[0].num_runs());
  for (std::size_t r = 0; r < a.datasets[0].runs.size(); ++r)
    EXPECT_DOUBLE_EQ(a.datasets[0].runs[r].total_time_s(),
                     b.datasets[0].runs[r].total_time_s());
}

TEST_F(CampaignTest, DifferentSeedsDiffer) {
  const CampaignResult a = run_campaign(tiny_config(7));
  const CampaignResult b = run_campaign(tiny_config(8));
  bool differs = a.datasets[0].num_runs() != b.datasets[0].num_runs();
  if (!differs)
    for (std::size_t r = 0; r < a.datasets[0].runs.size(); ++r)
      differs |= a.datasets[0].runs[r].total_time_s() !=
                 b.datasets[0].runs[r].total_time_s();
  EXPECT_TRUE(differs);
}

TEST_F(CampaignTest, FingerprintSensitivity) {
  const CampaignConfig base = tiny_config();
  CampaignConfig other = base;
  EXPECT_EQ(config_fingerprint(base), config_fingerprint(other));
  other.seed += 1;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(other));
  other = base;
  other.days += 1;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(other));
  other = base;
  other.datasets.pop_back();
  EXPECT_NE(config_fingerprint(base), config_fingerprint(other));
}

TEST_F(CampaignTest, CacheRoundTrip) {
  namespace fs = std::filesystem;
  const std::string cache = testing::TempDir() + "/dfv_campaign_cache";
  fs::remove_all(cache);
  const CampaignConfig cfg = tiny_config(11);

  const CampaignResult fresh = run_campaign_cached(cfg, cache);
  // A second call loads from disk and matches.
  const CampaignResult loaded = run_campaign_cached(cfg, cache);
  ASSERT_EQ(loaded.datasets.size(), fresh.datasets.size());
  for (std::size_t d = 0; d < fresh.datasets.size(); ++d) {
    ASSERT_EQ(loaded.datasets[d].num_runs(), fresh.datasets[d].num_runs());
    for (std::size_t r = 0; r < fresh.datasets[d].runs.size(); ++r)
      EXPECT_NEAR(loaded.datasets[d].runs[r].total_time_s(),
                  fresh.datasets[d].runs[r].total_time_s(), 1e-6);
  }
  fs::remove_all(cache);
}

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.datasets.size(), b.datasets.size());
  for (std::size_t d = 0; d < a.datasets.size(); ++d) {
    const Dataset& x = a.datasets[d];
    const Dataset& y = b.datasets[d];
    ASSERT_EQ(x.num_runs(), y.num_runs()) << x.spec.label();
    for (std::size_t r = 0; r < x.runs.size(); ++r) {
      const RunRecord& p = x.runs[r];
      const RunRecord& q = y.runs[r];
      EXPECT_EQ(p.job_id, q.job_id);
      // EXPECT_EQ on doubles is exact ==: the claim is bit-identical,
      // not approximately equal.
      EXPECT_EQ(p.submit_time_s, q.submit_time_s);
      EXPECT_EQ(p.start_time_s, q.start_time_s);
      EXPECT_EQ(p.end_time_s, q.end_time_s);
      EXPECT_EQ(p.num_routers, q.num_routers);
      EXPECT_EQ(p.num_groups, q.num_groups);
      EXPECT_EQ(p.step_times, q.step_times);
      EXPECT_EQ(p.step_counters, q.step_counters);
      ASSERT_EQ(p.step_ldms.size(), q.step_ldms.size());
      for (std::size_t s = 0; s < p.step_ldms.size(); ++s) {
        EXPECT_EQ(p.step_ldms[s].io, q.step_ldms[s].io);
        EXPECT_EQ(p.step_ldms[s].sys, q.step_ldms[s].sys);
      }
      EXPECT_EQ(p.profile.compute_s, q.profile.compute_s);
      EXPECT_EQ(p.profile.routine_s, q.profile.routine_s);
      EXPECT_EQ(p.neighborhood_users, q.neighborhood_users);
    }
  }
}

TEST_F(CampaignTest, BitIdenticalAcrossThreadCounts) {
  CampaignConfig serial = tiny_config(13);
  serial.threads = 1;
  const CampaignResult a = run_campaign(serial);

  CampaignConfig eight = tiny_config(13);
  eight.threads = 8;
  const CampaignResult b = run_campaign(eight);
  exec::ThreadPool::instance().resize(exec::resolve_threads());

  expect_bit_identical(a, b);
}

TEST_F(CampaignTest, ThreadCountInvariantCacheEntries) {
  namespace fs = std::filesystem;
  CampaignConfig c1 = tiny_config(17);
  c1.threads = 1;
  CampaignConfig c8 = tiny_config(17);
  c8.threads = 8;
  // The thread count is deliberately not fingerprinted: output is
  // thread-invariant, so caches are shared across --threads settings.
  ASSERT_EQ(config_fingerprint(c1), config_fingerprint(c8));

  const std::string dir1 = testing::TempDir() + "/dfv_det_t1";
  const std::string dir8 = testing::TempDir() + "/dfv_det_t8";
  fs::remove_all(dir1);
  fs::remove_all(dir8);
  (void)run_campaign_cached(c1, dir1);
  (void)run_campaign_cached(c8, dir8);
  exec::ThreadPool::instance().resize(exec::resolve_threads());

  // Same fingerprint-keyed entry name, byte-identical file contents.
  const auto slurp_tree = [](const std::string& root) {
    std::map<std::string, std::string> files;
    for (const auto& e : fs::recursive_directory_iterator(root)) {
      if (!e.is_regular_file()) continue;
      std::ifstream in(e.path(), std::ios::binary);
      std::ostringstream body;
      body << in.rdbuf();
      files[fs::relative(e.path(), root).string()] = body.str();
    }
    return files;
  };
  const auto t1 = slurp_tree(dir1);
  const auto t8 = slurp_tree(dir8);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t8);
  fs::remove_all(dir1);
  fs::remove_all(dir8);
}

TEST_F(CampaignTest, ValidateRejectsNonsense) {
  CampaignConfig cfg = tiny_config();
  EXPECT_NO_THROW(cfg.validate());
  cfg.days = 0;
  EXPECT_THROW(cfg.validate(), ContractError);
  cfg = tiny_config();
  cfg.datasets.clear();
  EXPECT_THROW(cfg.validate(), ContractError);
  cfg = tiny_config();
  cfg.datasets[0].nodes = -1;
  EXPECT_THROW(cfg.validate(), ContractError);
  cfg = tiny_config();
  cfg.threads = -2;
  EXPECT_THROW(cfg.validate(), ContractError);
}

TEST_F(CampaignTest, BuilderFluentConstruction) {
  const CampaignConfig cfg = CampaignConfig::small_machine(7)
                                 .days(3)
                                 .threads(2)
                                 .dataset("MILC", 128)
                                 .dataset("UMT", 128)
                                 .build();
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_EQ(cfg.days, 3);
  EXPECT_EQ(cfg.threads, 2);
  ASSERT_EQ(cfg.datasets.size(), 2u);  // dataset() replaced the defaults
  EXPECT_EQ(cfg.datasets[0].label(), "MILC-128");
  EXPECT_THROW((void)CampaignConfig::cori().days(-1).build(), ContractError);
}

TEST_F(CampaignTest, DatasetLookup) {
  const CampaignResult res = run_campaign(tiny_config());
  EXPECT_EQ(res.dataset("MILC", 128).spec.app, "MILC");
  EXPECT_THROW((void)res.dataset("AMG", 512), ContractError);
}

}  // namespace
}  // namespace dfv::sim
