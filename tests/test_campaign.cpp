#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <algorithm>
#include <filesystem>

#include "common/log.hpp"

namespace dfv::sim {
namespace {

CampaignConfig tiny_config(std::uint64_t seed = 42) {
  CampaignConfig cfg = CampaignConfig::small(seed);
  cfg.days = 3;
  cfg.datasets = {{"MILC", 128}, {"UMT", 128}};
  return cfg;
}

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::Warn); }
};

TEST_F(CampaignTest, ProducesRequestedDatasets) {
  const CampaignResult res = run_campaign(tiny_config());
  ASSERT_EQ(res.datasets.size(), 2u);
  EXPECT_EQ(res.datasets[0].spec.label(), "MILC-128");
  EXPECT_EQ(res.datasets[1].spec.label(), "UMT-128");
  // ~1-2 jobs per dataset per day over 3 days.
  for (const auto& ds : res.datasets) {
    EXPECT_GE(ds.num_runs(), 3u);
    EXPECT_LE(ds.num_runs(), 6u);
  }
  EXPECT_EQ(res.datasets[0].steps_per_run(), 80);
  EXPECT_EQ(res.datasets[1].steps_per_run(), 7);
}

TEST_F(CampaignTest, RunsAreChronologicalAndDisjoint) {
  const CampaignResult res = run_campaign(tiny_config());
  for (const auto& ds : res.datasets) {
    for (std::size_t i = 1; i < ds.runs.size(); ++i)
      EXPECT_GE(ds.runs[i].start_time_s, ds.runs[i - 1].end_time_s);
  }
}

TEST_F(CampaignTest, NeighborhoodsFilledAndExcludeSelf) {
  const CampaignResult res = run_campaign(tiny_config());
  bool any_users = false;
  for (const auto& ds : res.datasets)
    for (const auto& run : ds.runs) {
      any_users |= !run.neighborhood_users.empty();
      EXPECT_TRUE(std::is_sorted(run.neighborhood_users.begin(),
                                 run.neighborhood_users.end()));
    }
  EXPECT_TRUE(any_users);
}

TEST_F(CampaignTest, SacctContainsInstrumentedAndBackgroundJobs) {
  const CampaignConfig cfg = tiny_config();
  const CampaignResult res = run_campaign(cfg);
  int ours = 0, theirs = 0;
  for (const auto& rec : res.sacct)
    (rec.user_id == sched::kCampaignUserId ? ours : theirs) += 1;
  // Our account has at least the instrumented runs; others ran too.
  std::size_t instrumented = 0;
  for (const auto& ds : res.datasets) instrumented += ds.num_runs();
  EXPECT_GE(std::size_t(ours), instrumented);
  EXPECT_GT(theirs, 0);
}

TEST_F(CampaignTest, DeterministicForSameSeed) {
  const CampaignResult a = run_campaign(tiny_config(7));
  const CampaignResult b = run_campaign(tiny_config(7));
  ASSERT_EQ(a.datasets[0].num_runs(), b.datasets[0].num_runs());
  for (std::size_t r = 0; r < a.datasets[0].runs.size(); ++r)
    EXPECT_DOUBLE_EQ(a.datasets[0].runs[r].total_time_s(),
                     b.datasets[0].runs[r].total_time_s());
}

TEST_F(CampaignTest, DifferentSeedsDiffer) {
  const CampaignResult a = run_campaign(tiny_config(7));
  const CampaignResult b = run_campaign(tiny_config(8));
  bool differs = a.datasets[0].num_runs() != b.datasets[0].num_runs();
  if (!differs)
    for (std::size_t r = 0; r < a.datasets[0].runs.size(); ++r)
      differs |= a.datasets[0].runs[r].total_time_s() !=
                 b.datasets[0].runs[r].total_time_s();
  EXPECT_TRUE(differs);
}

TEST_F(CampaignTest, FingerprintSensitivity) {
  const CampaignConfig base = tiny_config();
  CampaignConfig other = base;
  EXPECT_EQ(config_fingerprint(base), config_fingerprint(other));
  other.seed += 1;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(other));
  other = base;
  other.days += 1;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(other));
  other = base;
  other.datasets.pop_back();
  EXPECT_NE(config_fingerprint(base), config_fingerprint(other));
}

TEST_F(CampaignTest, CacheRoundTrip) {
  namespace fs = std::filesystem;
  const std::string cache = testing::TempDir() + "/dfv_campaign_cache";
  fs::remove_all(cache);
  const CampaignConfig cfg = tiny_config(11);

  const CampaignResult fresh = run_campaign_cached(cfg, cache);
  // A second call loads from disk and matches.
  const CampaignResult loaded = run_campaign_cached(cfg, cache);
  ASSERT_EQ(loaded.datasets.size(), fresh.datasets.size());
  for (std::size_t d = 0; d < fresh.datasets.size(); ++d) {
    ASSERT_EQ(loaded.datasets[d].num_runs(), fresh.datasets[d].num_runs());
    for (std::size_t r = 0; r < fresh.datasets[d].runs.size(); ++r)
      EXPECT_NEAR(loaded.datasets[d].runs[r].total_time_s(),
                  fresh.datasets[d].runs[r].total_time_s(), 1e-6);
  }
  fs::remove_all(cache);
}

TEST_F(CampaignTest, DatasetLookup) {
  const CampaignResult res = run_campaign(tiny_config());
  EXPECT_EQ(res.dataset("MILC", 128).spec.app, "MILC");
  EXPECT_THROW((void)res.dataset("AMG", 512), ContractError);
}

}  // namespace
}  // namespace dfv::sim
