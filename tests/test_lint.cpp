// dfv-lint self-tests: every rule fires on its fixture at the expected
// line, clean files stay clean, and the suppression syntax behaves as
// documented (silences its rule, demands a reason, flags dead or
// misspelled allows). Fixtures live in tests/lint_fixtures/ and are
// linted via lint_file() with a rel_path chosen to trigger the rule's
// path scoping — the tree walk itself skips lint_fixtures directories.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace dfv::lint {
namespace {

std::string read_fixture(const std::string& name) {
  std::ifstream in(std::string(DFV_LINT_FIXTURE_DIR) + "/" + name);
  EXPECT_TRUE(bool(in)) << "missing fixture " << name;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Lint one fixture under a rel_path that places it in the wanted rule scope.
std::vector<Diagnostic> lint_fixture(const std::string& rel_path, const std::string& name,
                                     const std::string& header_name = {}) {
  const std::string header = header_name.empty() ? std::string{} : read_fixture(header_name);
  return lint_file(rel_path, read_fixture(name), header);
}

void expect_single(const std::vector<Diagnostic>& ds, const std::string& rule, int line) {
  ASSERT_EQ(ds.size(), 1u) << "expected exactly one " << rule << " diagnostic";
  EXPECT_EQ(ds[0].rule, rule);
  EXPECT_EQ(ds[0].line, line);
  EXPECT_FALSE(ds[0].message.empty());
}

TEST(LintRules, NoRand) {
  expect_single(lint_fixture("src/sim/no_rand.cpp", "no_rand.cpp"), "no-rand", 4);
}

TEST(LintRules, RandomDeviceOutsideRngModule) {
  expect_single(lint_fixture("src/ml/random_device.cpp", "random_device.cpp"),
                "random-device", 4);
}

TEST(LintRules, RandomDeviceAllowedInsideRngModule) {
  EXPECT_TRUE(lint_fixture("src/common/rng.cpp", "random_device.cpp").empty());
}

TEST(LintRules, WallClock) {
  expect_single(lint_fixture("src/sim/wall_clock.cpp", "wall_clock.cpp"), "wall-clock", 4);
}

TEST(LintRules, UnorderedIter) {
  expect_single(lint_fixture("src/sim/unordered_iter.cpp", "unordered_iter.cpp"),
                "unordered-iter", 7);
}

TEST(LintRules, ParallelMutate) {
  expect_single(lint_fixture("src/sim/parallel_mutate.cpp", "parallel_mutate.cpp"),
                "parallel-mutate", 8);
}

TEST(LintRules, NarrowCast) {
  expect_single(lint_fixture("src/ml/narrow.cpp", "narrow.cpp"), "narrow", 2);
}

TEST(LintRules, NarrowRuleOnlyAppliesUnderSrcAndTools) {
  EXPECT_TRUE(lint_fixture("tests/narrow.cpp", "narrow.cpp").empty());
}

TEST(LintRules, ContractMissingValidation) {
  expect_single(lint_fixture("src/analysis/contract.cpp", "contract.cpp", "contract.hpp"),
                "contract", 5);
}

TEST(LintRules, ContractScopedToAnalysisMlSim) {
  EXPECT_TRUE(lint_fixture("src/net/contract.cpp", "contract.cpp", "contract.hpp").empty());
}

TEST(LintRules, CompiledInferencePathIsCovered) {
  // The compiled fast path (src/ml/compiled.*) sits inside both rule
  // scopes: contract (ml .cpp path) and parallel-mutate (all files).
  // Pin that so a future rescoping cannot silently drop the hot path.
  expect_single(lint_fixture("src/ml/compiled.cpp", "contract.cpp", "contract.hpp"),
                "contract", 5);
  expect_single(lint_fixture("src/ml/compiled.cpp", "parallel_mutate.cpp"),
                "parallel-mutate", 8);
}

TEST(LintRules, NodiscardMissingOnPublicHeader) {
  expect_single(lint_fixture("src/ml/nodiscard.hpp", "nodiscard.hpp"), "nodiscard", 5);
}

TEST(LintRules, BlockingIoFlagsRawSyscallsOnly) {
  // Member calls, declarations, and namespace-scoped homonyms stay
  // clean; the bare and ::-global-qualified syscalls are flagged; the
  // reasoned allow silences its line.
  const auto ds = lint_fixture("src/net/blocking_io.cpp", "blocking_io.cpp");
  ASSERT_EQ(ds.size(), 2u) << "expected the ::send and bare connect hits";
  EXPECT_EQ(ds[0].rule, "blocking-io");
  EXPECT_EQ(ds[0].line, 23);
  EXPECT_EQ(ds[1].rule, "blocking-io");
  EXPECT_EQ(ds[1].line, 27);
}

TEST(LintRules, BlockingIoExemptsTheAuditedServeWrappers) {
  // Under src/serve/ the socket family does not run — which also turns
  // the fixture's allow into dead weight the meta rule reports.
  expect_single(lint_fixture("src/serve/blocking_io.cpp", "blocking_io.cpp"),
                "unused-allow", 31);
}

TEST(LintRules, BlockingIoFlagsRawMmapFamilyOnly) {
  // The mapped-file family mirrors the socket family: member calls and
  // namespace-scoped homonyms stay clean, bare and ::-qualified syscalls
  // are flagged, the reasoned allow silences its line.
  const auto ds = lint_fixture("src/sim/blocking_mmap.cpp", "blocking_mmap.cpp");
  ASSERT_EQ(ds.size(), 2u) << "expected the ::pread and bare fdatasync hits";
  EXPECT_EQ(ds[0].rule, "blocking-io");
  EXPECT_EQ(ds[0].line, 21);
  EXPECT_EQ(ds[1].rule, "blocking-io");
  EXPECT_EQ(ds[1].line, 25);
}

TEST(LintRules, BlockingIoExemptsTheAuditedStoreWrappers) {
  // Under src/store/ the mmap family does not run, but sockets still do
  // — and vice versa under src/serve/, where mmap calls stay flagged.
  expect_single(lint_fixture("src/store/blocking_mmap.cpp", "blocking_mmap.cpp"),
                "unused-allow", 29);
  const auto sockets_in_store = lint_fixture("src/store/blocking_io.cpp", "blocking_io.cpp");
  ASSERT_EQ(sockets_in_store.size(), 2u) << "socket family must still fire in src/store";
  const auto mmap_in_serve = lint_fixture("src/serve/blocking_mmap.cpp", "blocking_mmap.cpp");
  ASSERT_EQ(mmap_in_serve.size(), 2u) << "mmap family must still fire in src/serve";
}

TEST(LintRules, ContractCoversStoreModule) {
  expect_single(lint_fixture("src/store/contract.cpp", "contract.cpp", "contract.hpp"),
                "contract", 5);
}

TEST(LintRules, CleanFilesStayClean) {
  EXPECT_TRUE(lint_fixture("src/ml/clean.hpp", "clean.hpp").empty());
  EXPECT_TRUE(lint_fixture("src/ml/clean.cpp", "clean.cpp", "clean.hpp").empty());
}

TEST(LintSuppressions, AllowWithReasonSilencesTheRule) {
  EXPECT_TRUE(lint_fixture("src/sim/suppressed.cpp", "suppressed.cpp").empty());
}

TEST(LintSuppressions, AllowWithoutReasonIsFlagged) {
  // The allow still suppresses the no-rand hit, but the missing
  // justification is itself a (non-suppressible) violation.
  expect_single(lint_fixture("src/sim/allow_no_reason.cpp", "allow_no_reason.cpp"),
                "allow-reason", 4);
}

TEST(LintSuppressions, UnusedAllowIsFlagged) {
  expect_single(lint_fixture("src/sim/unused_allow.cpp", "unused_allow.cpp"),
                "unused-allow", 2);
}

TEST(LintSuppressions, UnknownRuleIsFlagged) {
  expect_single(lint_fixture("src/sim/unknown_rule.cpp", "unknown_rule.cpp"),
                "unknown-rule", 2);
}

TEST(LintCatalog, RuleIdsAreUniqueAndCoverFixtures) {
  std::set<std::string> ids;
  for (const RuleInfo& r : rule_catalog()) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate rule id " << r.id;
    EXPECT_NE(std::string(r.summary), "");
  }
  for (const char* id : {"no-rand", "random-device", "wall-clock", "unordered-iter",
                         "parallel-mutate", "contract", "narrow", "nodiscard",
                         "blocking-io", "allow-reason", "unused-allow", "unknown-rule"})
    EXPECT_TRUE(ids.count(id)) << "catalog is missing " << id;
}

}  // namespace
}  // namespace dfv::lint
