#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <algorithm>

#include "apps/registry.hpp"
#include "common/stats.hpp"

namespace dfv::sim {
namespace {

net::DragonflyConfig small_machine() {
  net::DragonflyConfig m = net::DragonflyConfig::small(8);
  m.nodes_per_router = 4;  // 384 nodes
  return m;
}

std::vector<sched::UserArchetype> small_population() {
  auto users = sched::default_user_population(4);
  for (auto& u : users) {
    u.min_nodes = std::min(u.min_nodes, 48);
    u.max_nodes = std::min(u.max_nodes, 96);
  }
  return users;
}

ClusterParams capped_params() {
  ClusterParams p;
  p.max_bg_utilization = 0.6;
  return p;
}

TEST(Cluster, RunRecordShapesMatchApp) {
  Cluster cluster(small_machine(), {}, {}, 3);
  const auto milc = apps::make_milc(128);
  const RunRecord rec = cluster.run_app(*milc);
  EXPECT_EQ(rec.steps(), 80);
  EXPECT_EQ(rec.step_counters.size(), 80u);
  EXPECT_EQ(rec.step_ldms.size(), 80u);
  EXPECT_GT(rec.num_routers, 0);
  EXPECT_GE(rec.num_routers, rec.num_groups);
  EXPECT_GT(rec.total_time_s(), 0.0);
  EXPECT_GT(rec.end_time_s, rec.start_time_s);
  // Run duration equals the sum of step times.
  EXPECT_NEAR(rec.end_time_s - rec.start_time_s, rec.total_time_s(), 1e-6);
}

TEST(Cluster, CountersNonZeroDuringRun) {
  Cluster cluster(small_machine(), {}, {}, 3);
  const auto milc = apps::make_milc(128);
  const RunRecord rec = cluster.run_app(*milc);
  // Flit counters reflect the app's own traffic even on an idle machine.
  EXPECT_GT(rec.step_counters[40][size_t(mon::Counter::RT_FLIT_TOT)], 0.0);
  EXPECT_GT(rec.step_counters[40][size_t(mon::Counter::PT_FLIT_TOT)], 0.0);
}

TEST(Cluster, MpiProfileConsistentWithRunTime) {
  Cluster cluster(small_machine(), {}, {}, 4);
  const auto umt = apps::make_umt(128);
  const RunRecord rec = cluster.run_app(*umt);
  EXPECT_NEAR(rec.profile.total_s(), rec.total_time_s(), rec.total_time_s() * 0.01);
  // UMT is compute-dominated (~30% MPI).
  EXPECT_LT(rec.profile.mpi_fraction(), 0.5);
  EXPECT_GT(rec.profile.routine(mon::MpiRoutine::Barrier), 0.0);
}

TEST(Cluster, ContentionSlowsRunsAndRaisesCounters) {
  const std::uint64_t seed = 9;
  const auto milc = apps::make_milc(128);

  Cluster idle(small_machine(), {}, {}, seed);
  const RunRecord quiet = idle.run_app(*milc);

  Cluster busy(small_machine(), capped_params(), small_population(), seed);
  busy.slurm().advance_to(12 * 3600.0);
  const RunRecord contended = busy.run_app(*milc);

  EXPECT_GT(contended.total_time_s(), quiet.total_time_s());
  // Counter deltas integrate background traffic: router-tile flits grow.
  const double quiet_flits =
      stats::mean(quiet.step_times) > 0
          ? quiet.step_counters[40][size_t(mon::Counter::RT_FLIT_TOT)]
          : 0;
  const double busy_flits =
      contended.step_counters[40][size_t(mon::Counter::RT_FLIT_TOT)];
  EXPECT_GT(busy_flits, quiet_flits);
}

TEST(Cluster, DeterministicGivenSeed) {
  const auto amg = apps::make_amg(128);
  Cluster a(small_machine(), capped_params(), small_population(), 21);
  Cluster b(small_machine(), capped_params(), small_population(), 21);
  a.slurm().advance_to(3600.0);
  b.slurm().advance_to(3600.0);
  const RunRecord ra = a.run_app(*amg);
  const RunRecord rb = b.run_app(*amg);
  ASSERT_EQ(ra.steps(), rb.steps());
  for (int t = 0; t < ra.steps(); ++t)
    EXPECT_DOUBLE_EQ(ra.step_times[std::size_t(t)], rb.step_times[std::size_t(t)]);
}

TEST(Cluster, CongestionViewBaseline) {
  Cluster cluster(small_machine(), {}, {}, 5);
  const std::vector<net::RouterId> routers = {0, 1, 2};
  const CongestionView v = cluster.congestion(routers);
  EXPECT_DOUBLE_EQ(v.pt_stall, 0.0);
  EXPECT_DOUBLE_EQ(v.transit, 1.0);
}

TEST(Cluster, BackgroundLoadsRefreshOnJobChurn) {
  Cluster cluster(small_machine(), capped_params(), small_population(), 6);
  cluster.slurm().advance_to(6 * 3600.0);
  const net::RateLoads& loads = cluster.background_loads();
  double total = 0.0;
  for (double v : loads.link_rate) total += v;
  EXPECT_GT(total, 0.0);
}

TEST(Cluster, ThrowsWhenJobCannotBePlaced) {
  // 2-group machine with 48 nodes total cannot host 128 nodes.
  net::DragonflyConfig tiny = net::DragonflyConfig::small(2);
  Cluster cluster(tiny, {}, {}, 7);
  const auto milc = apps::make_milc(128);
  EXPECT_THROW((void)cluster.run_app(*milc, sched::kCampaignUserId, 1800.0),
               ContractError);
}

}  // namespace
}  // namespace dfv::sim
