// Shared synthetic-dataset builders for analysis-layer tests: datasets
// with *planted* causal structure that the pipelines must recover.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "sim/dataset.hpp"

namespace dfv::testutil {

struct SyntheticSpec {
  int runs = 60;
  int steps = 20;
  std::uint64_t seed = 1234;
  /// Counter index that causally drives the time deviation.
  int driver_counter = int(mon::Counter::RT_RB_STL);
  double driver_strength = 1.0;  ///< seconds of deviation per unit z-score
  /// Aggressor user id: present in ~half the runs; when present, the
  /// driver counter (and hence the time) is elevated.
  int aggressor_user = 2;
  double aggressor_effect = 2.0;  ///< z-units of counter elevation
  int bystander_users = 6;        ///< users present at random, no effect
  /// Temporal autocorrelation of the driver within a run (AR(1) phi).
  double phi = 0.8;
};

/// Build a dataset with the planted structure above. Counter columns
/// other than the driver are white noise; the step-time mean curve is a
/// mild ramp so mean-centering has something to remove.
inline sim::Dataset make_planted_dataset(const SyntheticSpec& spec) {
  sim::Dataset ds;
  ds.spec = {"SYN", 128};
  Rng rng(spec.seed);
  for (int r = 0; r < spec.runs; ++r) {
    sim::RunRecord rec;
    rec.job_id = 1000 + r;
    rec.start_time_s = r * 2000.0;
    rec.num_routers = 30 + int(rng.uniform_index(10));
    rec.num_groups = 3 + int(rng.uniform_index(4));

    const bool aggressor_present = rng.bernoulli(0.5);
    if (aggressor_present) rec.neighborhood_users.push_back(spec.aggressor_user);
    for (int u = 0; u < spec.bystander_users; ++u)
      if (rng.bernoulli(0.4)) rec.neighborhood_users.push_back(100 + u);
    std::sort(rec.neighborhood_users.begin(), rec.neighborhood_users.end());

    double z = rng.normal();  // AR(1) driver state
    for (int t = 0; t < spec.steps; ++t) {
      z = spec.phi * z + std::sqrt(1 - spec.phi * spec.phi) * rng.normal();
      const double driver =
          z + (aggressor_present ? spec.aggressor_effect : 0.0);

      mon::CounterVec cv{};
      for (int c = 0; c < mon::kNumCounters; ++c)
        cv[std::size_t(c)] = 1e6 * (5.0 + rng.normal());
      cv[std::size_t(spec.driver_counter)] = 1e6 * (5.0 + driver);
      rec.step_counters.push_back(cv);

      // Bounded periodic mean curve so long runs stay within the
      // training distribution's target range.
      const double mean_curve = 10.0 + 1.5 * std::sin(0.25 * t);
      rec.step_times.push_back(mean_curve + spec.driver_strength * driver +
                               0.05 * rng.normal());

      mon::LdmsFeatures lf;
      for (auto& v : lf.io) v = 1e5 * (1.0 + 0.1 * rng.normal());
      for (auto& v : lf.sys) v = 1e5 * (1.0 + 0.1 * rng.normal());
      rec.step_ldms.push_back(lf);
    }
    rec.end_time_s = rec.start_time_s + rec.total_time_s();
    rec.profile.add_compute(rec.total_time_s() * 0.3);
    rec.profile.add(mon::MpiRoutine::Wait, rec.total_time_s() * 0.7);
    ds.runs.push_back(std::move(rec));
  }
  return ds;
}

}  // namespace dfv::testutil
