#include <unordered_map>

int fixture_unordered_iter() {
  std::unordered_map<int, int> scores;
  scores[1] = 2;
  int sum = 0;
  for (const auto& kv : scores) sum += kv.second;
  return sum;
}
