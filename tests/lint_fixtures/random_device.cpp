#include <random>

unsigned fixture_random_device() {
  std::random_device rd;
  return rd();
}
