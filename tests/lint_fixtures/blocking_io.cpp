#include <cstddef>

struct Channel {
  int send(const char* buf, std::size_t n);  // declaration: not the syscall
  int connect();
};

int fixture_member_call(Channel& ch) {
  return ch.send("x", 1) + ch.connect();  // member calls: not flagged
}

int fixture_namespace_qualified(Channel& ch);

namespace netlib {
int connect(int which);
}

int fixture_scoped_call() {
  return netlib::connect(3);  // namespace-scoped: not the syscall
}

long fixture_raw_send(int fd) {
  return ::send(fd, "x", 1, 0);  // flagged: global-qualified syscall
}

int fixture_raw_connect(int fd, const void* addr, unsigned len) {
  return connect(fd, addr, len);  // flagged: bare syscall
}

long fixture_suppressed_recv(int fd, char* buf) {
  // dfv-lint: allow(blocking-io): fixture exercising the reasoned escape hatch
  return ::recv(fd, buf, 16, 0);
}
